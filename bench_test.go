// Benchmarks regenerating every table and figure of the paper's
// evaluation section, at reduced scale so `go test -bench=.` finishes
// in minutes. The full-scale reproductions live behind the cmd/
// tools (cmd/table2 -paper, cmd/figures); see EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package borgmoea_test

import (
	"testing"

	"borgmoea"
)

// BenchmarkTable2 regenerates a reduced Table II: both problems, one
// unsaturated and one saturated processor count per delay, real Borg
// search on the virtual cluster plus both models.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := borgmoea.RunTable2(borgmoea.Table2Config{
			TFMeans:       []float64{0.001, 0.01},
			Processors:    []int{16, 128},
			Evaluations:   10000,
			Replicates:    1,
			SimReplicates: 1,
			TAOverride:    borgmoea.ConstantDist(0.000029),
			Seed:          uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 8 {
			b.Fatalf("expected 8 cells, got %d", len(cells))
		}
	}
}

// BenchmarkTable2MeasuredTA is the ablation for the instrumentation
// design choice: measured (real CPU) master time instead of a sampled
// distribution, as the paper's methodology prescribes.
func BenchmarkTable2MeasuredTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := borgmoea.RunTable2(borgmoea.Table2Config{
			Problems:      nil, // default both problems
			TFMeans:       []float64{0.01},
			Processors:    []int{16},
			Evaluations:   5000,
			Replicates:    1,
			SimReplicates: 1,
			Seed:          uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3DTLZ2 regenerates one reduced panel of Figure 3:
// hypervolume-threshold speedup on DTLZ2.
func BenchmarkFigure3DTLZ2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := borgmoea.RunSpeedup(borgmoea.SpeedupConfig{
			Problem:         borgmoea.NewDTLZ2(5),
			TFMean:          0.01,
			Processors:      []int{16, 64, 256},
			Evaluations:     10000,
			Replicates:      1,
			CheckpointEvery: 500,
			HVSamples:       5000,
			TAOverride:      borgmoea.ConstantDist(0.000029),
			Seed:            uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 3 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFigure4UF11 regenerates one reduced panel of Figure 4:
// hypervolume-threshold speedup on the non-separable UF11.
func BenchmarkFigure4UF11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := borgmoea.RunSpeedup(borgmoea.SpeedupConfig{
			Problem:         borgmoea.NewUF11(),
			TFMean:          0.01,
			Processors:      []int{16, 64, 256},
			Evaluations:     10000,
			Replicates:      1,
			CheckpointEvery: 500,
			HVSamples:       5000,
			TAOverride:      borgmoea.ConstantDist(0.000055),
			Seed:            uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 3 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFigure5Surface regenerates a reduced Figure 5: the
// synchronous (analytical) vs asynchronous (simulation model)
// efficiency surfaces over a log-log TF × P grid.
func BenchmarkFigure5Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := borgmoea.RunSurface(borgmoea.SurfaceConfig{
			TFValues: []float64{0.0001, 0.001, 0.01, 0.1, 1},
			PValues:  []int{2, 8, 32, 128, 512, 2048},
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Async.Eff) != 5 {
			b.Fatal("surface incomplete")
		}
	}
}

// BenchmarkFigure1And2Timelines regenerates the schematic timeline
// data of Figures 1–2 (trace-instrumented sync and async runs).
func BenchmarkFigure1And2Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		events := 0
		cfg := borgmoea.ParallelConfig{
			Problem:     borgmoea.NewDTLZ2(5),
			Algorithm:   borgmoea.Config{Epsilons: borgmoea.UniformEpsilons(5, 0.1)},
			Processors:  4,
			Evaluations: 12,
			TF:          borgmoea.GammaFromMeanCV(0.01, 0.3),
			TA:          borgmoea.ConstantDist(0.0025),
			TC:          borgmoea.ConstantDist(0.00125),
			Seed:        uint64(i),
			TraceHook:   func(float64, string, string, string) { events++ },
		}
		if _, err := borgmoea.RunSync(cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := borgmoea.RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
		if events == 0 {
			b.Fatal("no trace events")
		}
	}
}

// BenchmarkEquationSpotChecks exercises the closed-form model (Eqs.
// 1–4, 6) across the paper's whole Table II parameter range — cheap,
// but keeps the equations on the benchmark scoreboard next to the
// experiments they predict.
func BenchmarkEquationSpotChecks(b *testing.B) {
	times := borgmoea.Times{TF: 0.01, TA: 0.000029, TC: 0.000006}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range []int{16, 32, 64, 128, 256, 512, 1024} {
			sink += borgmoea.AsyncTime(100000, p, times)
			sink += borgmoea.SyncTime(100000, p, times)
			sink += borgmoea.AsyncEfficiency(p, times)
		}
		sink += borgmoea.ProcessorUpperBound(times)
		sink += borgmoea.ProcessorLowerBound(times)
	}
	_ = sink
}

// BenchmarkAblationContentionModel quantifies the design choice the
// paper's Section IV.B is about: the analytical model (no contention)
// versus the simulation model (FIFO queueing at the master) in the
// saturated regime. The benchmark reports how much simulated work the
// contention model costs relative to evaluating a closed form.
func BenchmarkAblationContentionModel(b *testing.B) {
	cfg := borgmoea.SimConfig{
		Processors:  1024,
		Evaluations: 50000,
		TF:          borgmoea.GammaFromMeanCV(0.001, 0.1),
		TA:          borgmoea.ConstantDist(0.000029),
		TC:          borgmoea.ConstantDist(0.000006),
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := borgmoea.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStragglers measures the straggler experiment (the
// paper's §VI-B variability claim): sync vs async under 25% workers
// running 4× slower.
func BenchmarkAblationStragglers(b *testing.B) {
	mk := func(seed uint64) borgmoea.ParallelConfig {
		return borgmoea.ParallelConfig{
			Problem:           borgmoea.NewDTLZ2(5),
			Algorithm:         borgmoea.Config{Epsilons: borgmoea.UniformEpsilons(5, 0.1)},
			Processors:        16,
			Evaluations:       4000,
			TF:                borgmoea.ConstantDist(0.005),
			TA:                borgmoea.ConstantDist(0.000029),
			Seed:              seed,
			StragglerFraction: 0.25,
			StragglerFactor:   4,
		}
	}
	for i := 0; i < b.N; i++ {
		async, err := borgmoea.RunAsync(mk(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		syn, err := borgmoea.RunSync(mk(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if syn.ElapsedTime <= async.ElapsedTime {
			b.Fatal("straggler asymmetry vanished")
		}
	}
}
