// Package borgmoea is a from-scratch Go implementation of the Borg
// multiobjective evolutionary algorithm and of the parallel
// scalability study "Scalability Analysis of the Asynchronous,
// Master-Slave Borg Multiobjective Evolutionary Algorithm" (Hadka,
// Madduri & Reed, IEEE IPDPSW 2013).
//
// The package is a facade over the internal implementation:
//
//   - The serial Borg MOEA (ε-dominance archive, auto-adaptive
//     operator ensemble, adaptive restarts): NewBorg / Algorithm.
//   - The asynchronous master-slave parallel algorithm on a
//     discrete-event virtual cluster (RunAsync), the synchronous
//     generational baseline (RunSync), a wall-clock goroutine
//     executor (RunAsyncRealtime), and a real TCP transport where
//     borgd worker daemons dial a listening master
//     (RunAsyncDistributed / RunWorker). Both virtual-time drivers are
//     fault-tolerant: a FaultPlan injects crashes, hangs and message
//     loss, and lease/barrier-timeout protocols recover lost work
//     (RunResilience measures the efficiency cost).
//   - The paper's analytical scalability model (SerialTime,
//     AsyncTime, ProcessorUpperBound, ProcessorLowerBound, SyncTime)
//     and its discrete-event simulation model (Simulate).
//   - Test problems (NewDTLZ2, NewUF11, NewDTLZ), quality metrics
//     (Hypervolume, HypervolumeMC, GenerationalDistance, ...), and
//     the experiment harness regenerating the paper's Table II and
//     Figures 3–5 (RunTable2, RunSpeedup, RunSurface).
//
// Quickstart:
//
//	problem := borgmoea.NewDTLZ2(2)
//	alg, _ := borgmoea.NewBorg(problem, borgmoea.Config{
//		Epsilons: borgmoea.UniformEpsilons(2, 0.01),
//	})
//	alg.Run(10000, nil)
//	front := alg.Archive().Objectives()
//
// See README.md for the architecture overview, DESIGN.md for the
// paper-to-module map, and EXPERIMENTS.md for reproduction results.
package borgmoea

import (
	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/experiment"
	"borgmoea/internal/fault"
	"borgmoea/internal/federation"
	"borgmoea/internal/jobs"
	"borgmoea/internal/master"
	"borgmoea/internal/metrics"
	"borgmoea/internal/model"
	"borgmoea/internal/nsga2"
	"borgmoea/internal/obs"
	"borgmoea/internal/operators"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

// Core algorithm types.
type (
	// Algorithm is the Borg MOEA state machine (Suggest/Accept/Run).
	Algorithm = core.Borg
	// Config parameterizes the Borg MOEA.
	Config = core.Config
	// Solution is one candidate solution.
	Solution = core.Solution
	// Archive is the ε-dominance archive.
	Archive = core.Archive
	// Population is Borg's adaptive working population.
	Population = core.Population
	// Diagnostics records Borg's runtime dynamics (archive growth,
	// restarts, operator probabilities).
	Diagnostics = core.Diagnostics
	// DiagRecord is one Diagnostics snapshot.
	DiagRecord = core.DiagRecord
)

// Baseline algorithm types.
type (
	// NSGA2 is the generational NSGA-II baseline.
	NSGA2 = nsga2.NSGA2
	// NSGA2Config parameterizes NSGA-II.
	NSGA2Config = nsga2.Config
)

// Baseline constructors.
var (
	// NewNSGA2 constructs the NSGA-II baseline; MustNewNSGA2 panics
	// on configuration errors.
	NewNSGA2     = nsga2.New
	MustNewNSGA2 = nsga2.MustNew
)

// Problem types.
type (
	// Problem is a real-valued multiobjective minimization problem.
	Problem = problems.Problem
	// ConstrainedProblem adds inequality constraints.
	ConstrainedProblem = problems.Constrained
	// DTLZ is a member of the DTLZ test suite.
	DTLZ = problems.DTLZ
	// UF is a member UF1–UF10 of the CEC 2009 competition suite.
	UF = problems.UF
	// ZDT is a member of the bi-objective Zitzler-Deb-Thiele suite.
	ZDT = problems.ZDT
	// UF11 is the CEC 2009 rotated, scaled 5-objective DTLZ2.
	UF11 = problems.UF11
)

// Operator types.
type (
	// Operator is a variation operator over decision vectors.
	Operator = operators.Operator
)

// Parallel driver types.
type (
	// ParallelConfig describes one parallel run.
	ParallelConfig = parallel.Config
	// ParallelResult summarizes a parallel run.
	ParallelResult = parallel.Result
	// IslandsConfig describes a hierarchical multi-island run (the
	// paper's proposed future topology).
	IslandsConfig = parallel.IslandsConfig
	// IslandsResult summarizes a multi-island run.
	IslandsResult = parallel.IslandsResult
	// DistributedConfig describes the network side of a distributed
	// TCP master-slave run (RunAsyncDistributed).
	DistributedConfig = parallel.DistributedConfig
	// WorkerConfig parameterizes one distributed worker (RunWorker /
	// the borgd daemon).
	WorkerConfig = wire.WorkerConfig
	// WireOptions tunes a wire connection's heartbeat and timeouts.
	WireOptions = wire.Options
)

// Fault-injection types (see internal/fault): a FaultPlan attached to
// ParallelConfig.Fault injects crash-stop, crash-recover, transient
// hangs and message loss into the virtual cluster, and the drivers'
// lease/barrier-timeout protocols recover the lost work.
type (
	// FaultPlan is a composable fault-injection schedule.
	FaultPlan = fault.Plan
	// FaultRule applies one failure model to a set of node ranks.
	FaultRule = fault.Rule
	// FaultStats counts injected fault events.
	FaultStats = fault.Stats
	// CrashStop kills a node once, permanently.
	CrashStop = fault.CrashStop
	// CrashRecover alternates a node between up (MTBF) and down
	// (MTTR) states.
	CrashRecover = fault.CrashRecover
	// TransientHang freezes a node for bounded intervals without
	// losing its state.
	TransientHang = fault.TransientHang
)

// FailedFractionPlan builds a crash-recover plan over all workers with
// exponential MTBF/MTTR such that the given fraction of workers is
// down at any instant.
var FailedFractionPlan = fault.FailedFractionPlan

// Observability types (see internal/obs): attach a MetricsRegistry
// and/or TraceRecorder to ParallelConfig (or WireOptions) and every
// driver journals protocol events and records T_A/T_F/T_C, lease and
// transport telemetry.
type (
	// MetricsRegistry collects counters, gauges and timing histograms;
	// nil disables telemetry at zero hot-path cost.
	MetricsRegistry = obs.Registry
	// TraceRecorder journals protocol events for JSONL export and
	// Chrome trace_event rendering (chrome://tracing, Perfetto).
	TraceRecorder = obs.Recorder
	// ProtocolEvent is one journal entry.
	ProtocolEvent = obs.Event
	// DebugServer serves /healthz, /debug/vars and /debug/pprof for a
	// running master or worker.
	DebugServer = obs.DebugServer
	// DebugOption extends the debug server at construction time (see
	// WithDebugHandler).
	DebugOption = obs.DebugOption
)

// Observability constructors and helpers.
var (
	// NewMetrics returns an empty metrics registry.
	NewMetrics = obs.NewRegistry
	// NewTraceRecorder returns an event journal with the given
	// retention limit (0 = default).
	NewTraceRecorder = obs.NewRecorder
	// ServeDebug starts the live debug HTTP listener.
	ServeDebug = obs.ServeDebug
	// WithDebugHandler mounts an extra handler on the debug mux (how
	// the scalability advisor's /debug/scaling endpoint is attached).
	WithDebugHandler = obs.WithHandler
	// StartMetricsSnapshots periodically appends one-line JSON registry
	// snapshots to a writer (borgd's -advise-out journal).
	StartMetricsSnapshots = obs.StartSnapshots
	// NewLogger is the shared leveled CLI logger (log/slog).
	NewLogger = obs.NewLogger
	// LogfAdapter adapts a slog.Logger to printf-style Logf callbacks.
	LogfAdapter = obs.Logf
	// ValidateChromeTrace checks `-trace` output against the Chrome
	// trace-event schema subset the exporter emits.
	ValidateChromeTrace = obs.ValidateChromeTrace
)

// Distributed evaluation tracing (see internal/obs): attach a
// TraceCollector to ParallelConfig.Trace (or FederationConfig.Tracers)
// and every evaluation becomes one trace — a span context minted at
// grant time travels to the worker on the wire, and the collector
// assembles per-evaluation span trees whose children are the paper's
// model terms (queue wait, T_C send/recv, T_F, T_A). The collector's
// sidecar (TraceSidecar) plus the BMEL protocol log reconstruct the
// identical forest offline (TracesFromProtocolLog); cmd/borgtrace
// renders the attribution and Chrome trace exports.
type (
	// TraceCollector assembles distributed evaluation traces.
	TraceCollector = obs.Collector
	// TraceCollectorConfig sets the collector's run id, sampling rate
	// and span budget.
	TraceCollectorConfig = obs.CollectorConfig
	// TraceSpan is one node of an assembled trace tree.
	TraceSpan = obs.Span
	// TraceForest is an assembled, deterministically ordered set of
	// trace trees.
	TraceForest = obs.Forest
	// TraceSidecar is the collector's replayable duration sidecar (the
	// BTRC file next to a BMEL log).
	TraceSidecar = obs.TraceLog
	// TraceTermStats aggregates one model term across a forest.
	TraceTermStats = obs.TermStats
	// TraceAttribution is a forest's per-term critical-path breakdown
	// (the empirical Eq. 2 decomposition).
	TraceAttribution = obs.Attribution
	// SpanContext is the trace identity an evaluation carries across
	// process boundaries.
	SpanContext = obs.SpanContext
	// ContinuousProfiler captures periodic pprof CPU/heap snapshots
	// into a bounded on-disk ring, served under /debug/profiles/.
	ContinuousProfiler = obs.Profiler
	// ProfileConfig tunes the profiler's cadence and retention.
	ProfileConfig = obs.ProfileConfig
)

var (
	// NewTraceCollector constructs a live trace collector.
	NewTraceCollector = obs.NewCollector
	// ReadTraceSidecar deserializes a sidecar written with
	// TraceSidecar.WriteTo.
	ReadTraceSidecar = obs.ReadTraceLog
	// TracesFromProtocolLog reconstructs a run's trace forest offline
	// from its BMEL protocol log and BTRC sidecar.
	TracesFromProtocolLog = obs.TracesFromLog
	// WriteChromeTraceForests renders one or more forests as a merged
	// Chrome trace_event file with cross-process flow arrows.
	WriteChromeTraceForests = obs.WriteChromeForests
	// StartContinuousProfiler starts the pprof snapshot ring.
	StartContinuousProfiler = obs.StartProfiler
)

// Live scalability advisor (see internal/advisor): attach a
// ScalingAdvisor to ParallelConfig.Advisor and the async drivers
// stream their timing telemetry through the paper's analytical model —
// predicted vs observed speedup/efficiency, processor bounds, model
// drift and per-worker straggler detection, served at /debug/scaling
// and journaled as JSONL snapshots (cmd/borgtop renders either).
type (
	// ScalingAdvisor fits the analytical model to a live run.
	ScalingAdvisor = advisor.Advisor
	// AdvisorConfig tunes the advisor's thresholds and snapshots.
	AdvisorConfig = advisor.Config
	// AdvisorReport is one full scalability analysis (the
	// /debug/scaling response body and JSONL snapshot record).
	AdvisorReport = advisor.Report
	// WorkerScalingReport is one worker's straggler analysis entry.
	WorkerScalingReport = advisor.WorkerReport
)

// NewScalingAdvisor constructs a live scalability advisor.
var NewScalingAdvisor = advisor.New

// Search-health observability (see internal/obs): attach a
// QualitySampler to ParallelConfig.Quality (or FederationConfig.Quality,
// or opt a job in via JobSpec.QualityEvery) and the drivers snapshot
// the ε-archive on a cadence — incremental hypervolume, ε-progress
// rate, archive/population ratio, front spread and the Borg adaptive
// state (operator probabilities, restarts, tournament size) — emitted
// as quality.* gauges, served at /debug/quality, and recorded as
// EvQuality points in the BMEL log so any run's quality timeline
// reconstructs byte-identically offline (the QLOG sidecar;
// cmd/timeline -quality renders one). Wire QualityConfig.OnSample to
// ScalingAdvisor.ObserveQuality for stall and restart-regression
// alerting in the /debug/scaling report.
type (
	// QualitySampler snapshots a live run's search quality.
	QualitySampler = obs.QualitySampler
	// QualitySamplerConfig sets the sampler's cadence, reference point
	// and hypervolume estimator bounds.
	QualitySamplerConfig = obs.QualityConfig
	// QualitySample is one quality snapshot.
	QualitySample = obs.QualitySample
	// QualityReport is the /debug/quality response body.
	QualityReport = obs.QualityReport
	// QualitySidecar is the sampler's replayable QLOG timeline (the
	// BQLG file next to a BMEL log).
	QualitySidecar = obs.QualityLog
	// QualityHealth is the advisor's stall/regression section of an
	// AdvisorReport.
	QualityHealth = advisor.QualityHealth
)

var (
	// NewQualitySampler constructs a quality sampler; attach it via
	// ParallelConfig.Quality.
	NewQualitySampler = obs.NewQualitySampler
	// ReadQualitySidecar deserializes a QLOG written with
	// QualitySidecar.WriteTo.
	ReadQualitySidecar = obs.ReadQualityLog
	// MeasureFront computes a front's hypervolume deterministically:
	// exact within maxExact points, seeded Monte Carlo beyond.
	MeasureFront = obs.MeasureFront
	// FrontSpread is the bounding-box diagonal of a front.
	FrontSpread = obs.FrontSpread
)

// Multi-master federation (see internal/federation): k island masters
// — each a full asynchronous master-slave instance over its own worker
// pool — exchange ε-archive members in a ring over TCP and optionally
// stream archive deltas to a merging root. The paper's Eq. 4 ceiling
// P_UB = T_F/(2·T_C + T_A) binds each island separately, so the
// federation's aggregate useful processor count approaches k·P_UB.
// cmd/borgfed runs a federation; borgtop -fed watches one.
type (
	// FederationConfig describes one TCP federation run.
	FederationConfig = federation.Config
	// FederationResult summarizes a federation run.
	FederationResult = federation.Result
	// FederationReplayResult is the offline reconstruction of a
	// federated run from its BMEL and migrant sidecar logs.
	FederationReplayResult = federation.ReplayResult
	// MigrantLog is the per-island sidecar log of outgoing migrants
	// that, together with the BMEL log, makes a federated run
	// replayable.
	MigrantLog = federation.MigrantLog
	// FederationRoot is the live merging root (FederationConfig.OnRoot
	// hands it out so merged-front quality can be served mid-run).
	FederationRoot = federation.Root
	// ScalingFederation rolls per-island scalability advisors up into
	// one federated analysis (the federation-level /debug/scaling).
	ScalingFederation = advisor.Federation
	// FederationScalingReport is the federated roll-up's response body.
	FederationScalingReport = advisor.FederationReport
)

var (
	// RunFederation executes a multi-master federation over loopback or
	// LAN TCP.
	RunFederation = federation.Run
	// ReplayFederation reconstructs a federated run offline from its
	// per-island logs.
	ReplayFederation = federation.Replay
	// ReplayFederationQuality is ReplayFederation with per-island
	// quality samplers regenerating each island's QLOG timeline.
	ReplayFederationQuality = federation.ReplayQuality
	// NewMigrantLog returns an empty migrant sidecar log.
	NewMigrantLog = federation.NewMigrantLog
	// ReadMigrantLog deserializes a log written with MigrantLog.WriteTo.
	ReadMigrantLog = federation.ReadMigrantLog
	// NewScalingFederation returns an empty federated advisor roll-up.
	NewScalingFederation = advisor.NewFederation
	// CompareFederationScaling runs the DES federation-vs-single-master
	// experiment past the single-master processor bound.
	CompareFederationScaling = experiment.CompareFederation
)

// Multi-tenant job service (see internal/jobs): a JobScheduler owns a
// shared borgd fleet and multiplexes many concurrent Borg runs over
// it — one master core per job, stride-scheduled fair sharing,
// per-job checkpoint streams that survive server restarts, and an
// HTTP job API served next to the /debug endpoints
// (JobScheduler.DebugOptions). cmd/borgsvc runs the service; borgq is
// its client.
type (
	// JobScheduler multiplexes submitted jobs over one borgd fleet.
	JobScheduler = jobs.Scheduler
	// JobServiceConfig parameterizes the scheduler (fleet listener,
	// backpressure bounds, persistence directory).
	JobServiceConfig = jobs.Config
	// JobSpec is one job submission: problem, budget, epsilons, seed,
	// fair-share priority.
	JobSpec = jobs.Spec
	// JobStatus is a job's externally visible state.
	JobStatus = jobs.Status
	// JobState is a job's lifecycle phase (queued/running/done/...).
	JobState = jobs.State
)

var (
	// NewJobScheduler starts a job scheduler on its fleet listener.
	NewJobScheduler = jobs.New
	// DecodeJobSubmit parses one job submission (the HTTP POST /jobs
	// body format).
	DecodeJobSubmit = jobs.DecodeSubmit
)

// Model types.
type (
	// Times bundles mean T_F, T_A, T_C.
	Times = model.Times
	// SimConfig parameterizes the simulation model.
	SimConfig = model.SimConfig
	// SimResult is a simulation model prediction.
	SimResult = model.SimResult
)

// Distribution types.
type (
	// Distribution is a sampleable probability distribution.
	Distribution = stats.Distribution
	// Rand is a deterministic random source for sampling
	// distributions (see NewRand).
	Rand = rng.Source
)

// NewRand returns a deterministic random source seeded from seed, for
// use with Distribution.Sample.
var NewRand = rng.New

// Experiment harness types.
type (
	// Table2Config / Table2Cell reproduce the paper's Table II.
	Table2Config = experiment.Table2Config
	Table2Cell   = experiment.Table2Cell
	// SpeedupConfig / SpeedupResult reproduce Figures 3–4.
	SpeedupConfig = experiment.SpeedupConfig
	SpeedupResult = experiment.SpeedupResult
	// SurfaceConfig / SurfaceResult reproduce Figure 5.
	SurfaceConfig = experiment.SurfaceConfig
	SurfaceResult = experiment.SurfaceResult
	// TimingReport is measured T_A data with fitted distributions.
	TimingReport = experiment.TimingReport
	// HierarchyPlan recommends an island decomposition.
	HierarchyPlan = experiment.HierarchyPlan
	// DynamicsConfig / DynamicsRow sweep the algorithm's adaptive
	// dynamics across processor counts (paper §VI-A).
	DynamicsConfig = experiment.DynamicsConfig
	DynamicsRow    = experiment.DynamicsRow
	// ResilienceConfig / ResilienceResult / ResilienceCell measure
	// efficiency versus worker-failure rate, sync vs async.
	ResilienceConfig = experiment.ResilienceConfig
	ResilienceResult = experiment.ResilienceResult
	ResilienceCell   = experiment.ResilienceCell
)

// Algorithm constructors.
var (
	// NewBorg constructs a Borg MOEA instance.
	NewBorg = core.New
	// MustNewBorg is NewBorg that panics on configuration errors.
	MustNewBorg = core.MustNew
	// UniformEpsilons broadcasts one ε across m objectives.
	UniformEpsilons = core.UniformEpsilons
	// InitUniform / InitLatinHypercube select the initial sampling
	// scheme in Config.Initialization.
	InitUniform        = core.InitUniform
	InitLatinHypercube = core.InitLatinHypercube
	// EvaluateSolution computes a solution's objectives in place.
	EvaluateSolution = core.EvaluateSolution
)

// Problem constructors.
var (
	// NewDTLZ2 returns the m-objective DTLZ2 problem.
	NewDTLZ2 = problems.NewDTLZ2
	// NewDTLZ returns DTLZ1–7 with m objectives.
	NewDTLZ = problems.NewDTLZ
	// NewUF returns UF1–UF10 with n variables.
	NewUF = problems.NewUF
	// NewUF11 returns the paper's 5-objective UF11 instance.
	NewUF11 = problems.NewUF11
	// NewUF11Custom builds a rotated-scaled DTLZ2 variant.
	NewUF11Custom = problems.NewUF11Custom
	// NewZDT returns ZDT1–4 or ZDT6.
	NewZDT = problems.NewZDT
	// ZDTFront samples a ZDT problem's Pareto front.
	ZDTFront = problems.ZDTFront
	// NewSchaffer, NewFonsecaFleming and NewKursawe are the classic
	// small bi-objective problems.
	NewSchaffer       = problems.NewSchaffer
	NewFonsecaFleming = problems.NewFonsecaFleming
	NewKursawe        = problems.NewKursawe
	// NewRotated wraps any problem with a fixed random orthogonal
	// rotation of its decision space (UF11's construction,
	// generalized).
	NewRotated = problems.NewRotated
	// SphereFront samples the DTLZ2/UF11 Pareto front.
	SphereFront = problems.SphereFront
	// IdealSphereHypervolume is the closed-form front hypervolume.
	IdealSphereHypervolume = problems.IdealSphereHypervolume
)

// Operator constructors (Borg defaults).
var (
	BorgEnsemble = operators.BorgEnsemble
	NewSBX       = operators.NewSBX
	NewDE        = operators.NewDE
	NewPCX       = operators.NewPCX
	NewSPX       = operators.NewSPX
	NewUNDX      = operators.NewUNDX
	NewUM        = operators.NewUM
	NewPM        = operators.NewPM
)

// Protocol event log (see internal/master): attach a ProtocolLog to
// ParallelConfig.Protocol and any transport's run records the exact
// event sequence its master state machine consumed; the log replays
// off-line to the identical Result with ReplayAsync.
type (
	// ProtocolLog records a master run's protocol events for replay.
	ProtocolLog = master.Log
	// MasterEvent is one recorded master protocol event (the OnRecord
	// hook's argument).
	MasterEvent = master.Event
	// ProtocolLogWriter streams a BMEL log to disk at event
	// granularity — wire it to a recording ProtocolLog through the
	// OnRecord hook and an interrupted run keeps every complete
	// record.
	ProtocolLogWriter = master.LogWriter
)

var (
	// NewProtocolLog returns an empty event log ready to attach to
	// ParallelConfig.Protocol.
	NewProtocolLog = master.NewLog
	// ReadProtocolLog deserializes a log written with ProtocolLog.WriteTo.
	ReadProtocolLog = master.ReadLog
	// NewProtocolLogWriter writes the streaming header and returns the
	// event-granular writer.
	NewProtocolLogWriter = master.NewLogWriter
	// ReplayAsync re-executes a recorded run from its event log.
	ReplayAsync = parallel.ReplayAsync
)

// Parallel drivers.
var (
	// RunAsync executes the asynchronous master-slave Borg MOEA on
	// the virtual cluster (virtual time).
	RunAsync = parallel.RunAsync
	// RunSync executes the synchronous generational baseline.
	RunSync = parallel.RunSync
	// RunAsyncRealtime executes with real goroutines and wall-clock
	// delays.
	RunAsyncRealtime = parallel.RunAsyncRealtime
	// RunIslands executes several concurrent master-slave instances
	// (the hierarchical topology of the paper's Section VI).
	RunIslands = parallel.RunIslands
	// RunAsyncDistributed executes the asynchronous master-slave
	// algorithm over real TCP: the master listens and borgd workers
	// dial in (see internal/wire).
	RunAsyncDistributed = parallel.RunAsyncDistributed
	// RunWorker runs one distributed worker until the master stops it
	// (the in-process equivalent of the borgd daemon).
	RunWorker = wire.RunWorker
)

// Problem resolution shared by the CLI tools and the distributed
// worker runtime.
var (
	// LookupProblem resolves a CLI-style problem name plus an
	// objective count ("DTLZ2" with m=5, "UF11", "ZDT3", ...).
	LookupProblem = problems.Lookup
	// LookupProblemByName resolves a canonical Problem.Name() string —
	// the form the distributed master announces in its handshake.
	LookupProblemByName = problems.ByName
)

// Archive persistence.
var (
	// SaveArchive writes an archive as JSON; LoadArchive reads it
	// back, re-applying ε-dominance.
	SaveArchive = core.SaveArchive
	LoadArchive = core.LoadArchive
)

// Scalability models (the paper's equations).
var (
	// SerialTime is Eq. 1: T_S = N(T_F + T_A).
	SerialTime = model.SerialTime
	// AsyncTime is Eq. 2: T_P = N/(P−1)·(T_F + 2T_C + T_A).
	AsyncTime = model.AsyncTime
	// AsyncSpeedup and AsyncEfficiency derive from Eqs. 1–2.
	AsyncSpeedup    = model.AsyncSpeedup
	AsyncEfficiency = model.AsyncEfficiency
	// ProcessorUpperBound is Eq. 3: P_UB = T_F/(2T_C + T_A).
	ProcessorUpperBound = model.ProcessorUpperBound
	// ProcessorLowerBound is Eq. 4: P_LB > 2 + 2T_C/(T_F + T_A).
	ProcessorLowerBound = model.ProcessorLowerBound
	// SyncTime is Eq. 6 (Cantú-Paz).
	SyncTime       = model.SyncTime
	SyncSpeedup    = model.SyncSpeedup
	SyncEfficiency = model.SyncEfficiency
	// RelativeError is Eq. 5.
	RelativeError = model.RelativeError
	// Simulate runs the discrete-event simulation model once;
	// SimulateMean averages replicates.
	Simulate     = model.Simulate
	SimulateMean = model.SimulateMean
	// SimEfficiency converts simulated elapsed time to efficiency.
	SimEfficiency = model.SimEfficiency
)

// Quality metrics.
var (
	// Hypervolume is the exact WFG hypervolume.
	Hypervolume = metrics.Hypervolume
	// HypervolumeMC is the Monte-Carlo estimator.
	HypervolumeMC = metrics.HypervolumeMC
	// GenerationalDistance, InvertedGenerationalDistance,
	// AdditiveEpsilon and Spacing are the standard set indicators.
	GenerationalDistance         = metrics.GenerationalDistance
	InvertedGenerationalDistance = metrics.InvertedGenerationalDistance
	AdditiveEpsilon              = metrics.AdditiveEpsilon
	Spacing                      = metrics.Spacing
	// Coverage is Zitzler's C-metric C(a, b).
	Coverage = metrics.Coverage
	// NondominatedFilter extracts the nondominated subset.
	NondominatedFilter = metrics.NondominatedFilter
	// Dominates is Pareto dominance on objective vectors.
	Dominates = metrics.Dominates
	// RefScale, RefPoint and RefPointFor are the shared hypervolume
	// reference-point conventions (see internal/metrics/refpoint.go).
	RefScale    = metrics.RefScale
	RefPoint    = metrics.RefPoint
	RefPointFor = metrics.RefPointFor
	// ReferenceFront samples a problem's analytic Pareto front when
	// one is known (nil otherwise).
	ReferenceFront = problems.ReferenceFront
)

// Reference-point constants shared by every hypervolume consumer.
const (
	// DefaultRefScale is the conventional unit-box reference
	// coordinate (ZDT problems use RefScale instead).
	DefaultRefScale = metrics.DefaultRefScale
	// DefaultHVSamples is the conventional Monte Carlo sample count.
	DefaultHVSamples = metrics.DefaultHVSamples
)

// Timing distributions.
var (
	// ConstantDist, UniformDist, etc. construct distributions for
	// T_F/T_A/T_C modeling.
	ConstantDist    = stats.NewConstant
	UniformDist     = stats.NewUniform
	NormalDist      = stats.NewNormal
	LogNormalDist   = stats.NewLogNormal
	ExponentialDist = stats.NewExponential
	GammaDist       = stats.NewGamma
	WeibullDist     = stats.NewWeibull
	// GammaFromMeanCV is the paper's controlled-delay distribution:
	// a Gamma with given mean and coefficient of variation.
	GammaFromMeanCV = stats.GammaFromMeanCV
	// FitDistributions fits all candidate families to a sample,
	// sorted by log-likelihood; SelectBestFit returns the winner.
	FitDistributions = stats.FitAll
	SelectBestFit    = stats.SelectBest
)

// Experiment harness.
var (
	// RunTable2 reproduces Table II.
	RunTable2 = experiment.RunTable2
	// RunSpeedup reproduces one Figure 3/4 panel.
	RunSpeedup = experiment.RunSpeedup
	// RunSurface reproduces Figure 5.
	RunSurface = experiment.RunSurface
	// CollectTimings measures T_A and fits distributions.
	CollectTimings = experiment.CollectTimings
	// PlanHierarchy sizes master-slave islands with the simulation
	// model.
	PlanHierarchy = experiment.PlanHierarchy
	// RunDynamics sweeps the adaptive dynamics across processor
	// counts; WriteDynamics renders the result.
	RunDynamics   = experiment.RunDynamics
	WriteDynamics = experiment.WriteDynamics
	// RunResilience measures efficiency versus failure rate;
	// WriteResilience renders the table.
	RunResilience   = experiment.RunResilience
	WriteResilience = experiment.WriteResilience
	// Renderers for harness outputs.
	WriteTable2       = experiment.WriteTable2
	WriteTable2CSV    = experiment.WriteTable2CSV
	WriteSpeedup      = experiment.WriteSpeedup
	WriteSpeedupCSV   = experiment.WriteSpeedupCSV
	WriteSurface      = experiment.WriteSurface
	WriteSurfaceCSV   = experiment.WriteSurfaceCSV
	WriteTimingReport = experiment.WriteTimingReport
)
