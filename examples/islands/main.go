// Islands: the hierarchical topology the paper's conclusion proposes
// for machines too large for a single master (P ≫ Eq. 3's bound).
// Runs one saturated 128-processor master-slave instance against
// 8 islands × 16 processors with ring migration, same total budget,
// and compares elapsed time and merged-front quality.
//
//	go run ./examples/islands
package main

import (
	"fmt"

	"borgmoea"
)

func main() {
	const (
		totalP     = 128
		totalEvals = 40000
		tfMean     = 0.001 // cheap evaluations: P_UB ≈ 24, so 128 saturates
	)
	base := borgmoea.ParallelConfig{
		Problem:     borgmoea.NewDTLZ2(5),
		Algorithm:   borgmoea.Config{Epsilons: borgmoea.UniformEpsilons(5, 0.15)},
		TF:          borgmoea.GammaFromMeanCV(tfMean, 0.1),
		TA:          borgmoea.ConstantDist(0.000029),
		TC:          borgmoea.ConstantDist(0.000006),
		Seed:        5,
		Processors:  totalP,
		Evaluations: totalEvals,
	}
	times := borgmoea.Times{TF: tfMean, TA: 0.000029, TC: 0.000006}
	fmt.Printf("TF=%.3fs ⇒ single-master saturation at P_UB = %.0f (Eq. 3); machine has %d processors\n\n",
		tfMean, borgmoea.ProcessorUpperBound(times), totalP)

	mono, err := borgmoea.RunAsync(base)
	if err != nil {
		panic(err)
	}
	fmt.Printf("monolithic master-slave (P=%d, N=%d):\n", totalP, totalEvals)
	fmt.Printf("  elapsed %.2fs, efficiency %.2f, master utilization %.2f\n\n",
		mono.ElapsedTime, mono.Efficiency(), mono.MasterUtilization)

	islandCfg := base
	islandCfg.Processors = 16
	islandCfg.Evaluations = totalEvals / 8
	res, err := borgmoea.RunIslands(borgmoea.IslandsConfig{
		Base:           islandCfg,
		Islands:        8,
		MigrationEvery: 1000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("8 islands × 16 processors, ring migration every 1000 evals:\n")
	fmt.Printf("  elapsed %.2fs (%.1f× faster), efficiency %.2f, %d migrants\n",
		res.ElapsedTime, mono.ElapsedTime/res.ElapsedTime,
		res.Efficiency(tfMean, 0.000029, totalP), res.Migrants)

	ref := []float64{1.1, 1.1, 1.1, 1.1, 1.1}
	hvMono := borgmoea.HypervolumeMC(mono.Final.Archive().Objectives(), ref, 50000, 1)
	hvIsl := borgmoea.HypervolumeMC(res.MergedFront, ref, 50000, 1)
	ideal := borgmoea.IdealSphereHypervolume(5, 1.1)
	fmt.Printf("\nsolution quality (normalized hypervolume):\n")
	fmt.Printf("  monolithic:     %.3f\n", hvMono/ideal)
	fmt.Printf("  islands merged: %.3f  (%d points)\n", hvIsl/ideal, len(res.MergedFront))
}
