// Capacity planning: the paper's Section VI use case. Given measured
// timing parameters and an evaluation cost, use the analytical bounds
// and the simulation model to (a) find the efficiency-maximizing
// processor count for a single master-slave instance and (b) size a
// hierarchical (multi-island) decomposition of a large machine —
// exactly what the paper proposes the simulation model be used for.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"

	"borgmoea"
)

func main() {
	// Timing parameters in the style of the paper's DTLZ2 rows:
	// cheap 1 ms evaluations, 29 µs master time, 6 µs messages.
	times := borgmoea.Times{TF: 0.001, TA: 0.000029, TC: 0.000006}
	const machine = 1024 // processors available

	fmt.Printf("capacity planning for TF=%.4fs, TA=%.0fµs, TC=%.0fµs on %d processors\n\n",
		times.TF, times.TA*1e6, times.TC*1e6, machine)

	fmt.Printf("analytical bounds:\n")
	fmt.Printf("  lower bound (Eq. 4): %.2f → at least 3 processors\n",
		borgmoea.ProcessorLowerBound(times))
	pub := borgmoea.ProcessorUpperBound(times)
	fmt.Printf("  upper bound (Eq. 3): %.0f (master saturation)\n\n", pub)

	// Sweep the simulation model over candidate processor counts —
	// the paper's observation: peak efficiency occurs well below the
	// Eq. 3 bound.
	fmt.Printf("simulation-model sweep (N = 20000 evaluations):\n")
	fmt.Printf("  %6s %12s %12s %12s\n", "P", "T_P (s)", "speedup", "efficiency")
	bestP, bestEff := 0, 0.0
	for _, p := range []int{4, 8, 16, 24, 32, 48, 64, 128, 256, 512, 1024} {
		cfg := borgmoea.SimConfig{
			Processors:  p,
			Evaluations: 20000,
			TF:          borgmoea.GammaFromMeanCV(times.TF, 0.1),
			TA:          borgmoea.ConstantDist(times.TA),
			TC:          borgmoea.ConstantDist(times.TC),
			Seed:        uint64(p),
		}
		sim, err := borgmoea.Simulate(cfg)
		if err != nil {
			panic(err)
		}
		eff := borgmoea.SimEfficiency(cfg, sim.Elapsed)
		ts := borgmoea.SerialTime(20000, times)
		fmt.Printf("  %6d %12.2f %12.1f %12.2f\n", p, sim.Elapsed, ts/sim.Elapsed, eff)
		if eff > bestEff {
			bestP, bestEff = p, eff
		}
	}
	fmt.Printf("\n  → single-instance sweet spot: P ≈ %d (efficiency %.2f), far below P_UB = %.0f\n\n",
		bestP, bestEff, pub)

	// Hierarchical decomposition of the full machine.
	plan, err := borgmoea.PlanHierarchy(machine, times, 0.1, 20000, 99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hierarchical topology recommendation:\n  %s\n", plan)
	fmt.Printf("\n  evaluated candidates:\n")
	for _, c := range plan.Evaluated {
		fmt.Printf("    island size %5d → efficiency %.2f\n", c.Size, c.Efficiency)
	}
}
