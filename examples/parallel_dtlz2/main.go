// Parallel DTLZ2: the paper's headline scenario. Runs the
// asynchronous master-slave Borg MOEA on the 5-objective DTLZ2 with a
// 10 ms simulated evaluation delay on a 64-node virtual cluster, then
// compares the measured elapsed time against the analytical model
// (Eq. 2) and the discrete-event simulation model.
//
//	go run ./examples/parallel_dtlz2
package main

import (
	"fmt"

	"borgmoea"
)

func main() {
	problem := borgmoea.NewDTLZ2(5)
	const (
		processors = 64
		budget     = 50000
		tfMean     = 0.01 // 10 ms controlled delay, CV 0.1
	)

	fmt.Printf("Asynchronous master-slave Borg MOEA\n")
	fmt.Printf("  problem: %s, P = %d (1 master + %d workers), N = %d, TF = %.3fs\n\n",
		problem.Name(), processors, processors-1, budget, tfMean)

	res, err := borgmoea.RunAsync(borgmoea.ParallelConfig{
		Problem: problem,
		Algorithm: borgmoea.Config{
			Epsilons: borgmoea.UniformEpsilons(5, 0.1),
		},
		Processors:  processors,
		Evaluations: budget,
		TF:          borgmoea.GammaFromMeanCV(tfMean, 0.1),
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("experiment (virtual cluster, real Borg search):\n")
	fmt.Printf("  elapsed T_P:        %8.1f s  (virtual)\n", res.ElapsedTime)
	fmt.Printf("  serial estimate:    %8.1f s  (T_S = N(TF+TA))\n", res.SerialTime())
	fmt.Printf("  speedup:            %8.1f\n", res.Speedup())
	fmt.Printf("  efficiency:         %8.2f\n", res.Efficiency())
	fmt.Printf("  master utilization: %8.2f\n", res.MasterUtilization)
	fmt.Printf("  measured mean T_A:  %8.1f µs\n", res.MeanTA*1e6)
	fmt.Printf("  archive size:       %8d\n", res.Final.Archive().Size())

	times := borgmoea.Times{TF: res.MeanTF, TA: res.MeanTA, TC: res.MeanTC}
	analytic := borgmoea.AsyncTime(budget, processors, times)
	fmt.Printf("\nanalytical model (Eq. 2):\n")
	fmt.Printf("  predicted T_P:      %8.1f s  (error %.1f%%)\n",
		analytic, 100*borgmoea.RelativeError(res.ElapsedTime, analytic))
	fmt.Printf("  P upper bound:      %8.0f    (Eq. 3 master saturation)\n",
		borgmoea.ProcessorUpperBound(times))

	simCfg := borgmoea.SimConfig{
		Processors:  processors,
		Evaluations: budget,
		TF:          borgmoea.GammaFromMeanCV(tfMean, 0.1),
		TA:          borgmoea.ConstantDist(res.MeanTA),
		TC:          borgmoea.ConstantDist(res.MeanTC),
		Seed:        11,
	}
	sim, err := borgmoea.Simulate(simCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsimulation model (queueing DES):\n")
	fmt.Printf("  predicted T_P:      %8.1f s  (error %.1f%%)\n",
		sim.Elapsed, 100*borgmoea.RelativeError(res.ElapsedTime, sim.Elapsed))
	fmt.Printf("  mean master queue:  %8.2f workers\n", sim.MeanQueueLength)
}
