// Fault tolerance walkthrough: runs the asynchronous master-slave
// Borg MOEA on a virtual cluster whose workers crash and recover
// mid-run, shows the lease protocol recovering every lost evaluation,
// contrasts it with the synchronous driver's barrier-timeout recovery,
// and finishes with a small efficiency-vs-failure-rate table
// (the experiment behind the resilience claim: asynchrony degrades
// gracefully as workers disappear).
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"os"

	"borgmoea"
)

func main() {
	problem := borgmoea.NewDTLZ2(5)
	const (
		processors = 64
		budget     = 20000
		tfMean     = 0.01 // 10 ms controlled delay, CV 0.1
	)

	base := borgmoea.ParallelConfig{
		Problem: problem,
		Algorithm: borgmoea.Config{
			Epsilons: borgmoea.UniformEpsilons(5, 0.1),
		},
		Processors:  processors,
		Evaluations: budget,
		TF:          borgmoea.GammaFromMeanCV(tfMean, 0.1),
		Seed:        7,
	}

	fmt.Printf("Fault-tolerant master-slave Borg MOEA\n")
	fmt.Printf("  problem: %s, P = %d, N = %d, TF = %.3fs\n\n",
		problem.Name(), processors, budget, tfMean)

	// 1. Fault-free baseline.
	clean, err := borgmoea.RunAsync(base)
	check(err)
	fmt.Printf("fault-free async baseline:\n")
	fmt.Printf("  elapsed T_P:   %8.1f s   efficiency: %.2f\n\n",
		clean.ElapsedTime, clean.Efficiency())

	// 2. The same run with 2%% of workers down at any instant:
	// crash-recover failures with exponential MTBF/MTTR. Crashed
	// workers lose their in-flight evaluation and their inbox; the
	// master's lease timeout detects the loss and resubmits a clone of
	// the unevaluated solution to the next live worker. A FaultPlan
	// has its own RNG stream, so the failure schedule replays
	// identically across runs.
	faulty := base
	faulty.Fault = borgmoea.FailedFractionPlan(0.02, 0.5, 42)
	res, err := borgmoea.RunAsync(faulty)
	check(err)
	fmt.Printf("async with crash-recover faults (2%% down, MTTR 0.5s):\n")
	fmt.Printf("  elapsed T_P:   %8.1f s   efficiency: %.2f\n", res.ElapsedTime, res.Efficiency())
	fmt.Printf("  completed:     %8v     (all %d evaluations accepted)\n", res.Completed, res.Evaluations)
	fmt.Printf("  crashes:       %8d     recoveries: %d\n", res.WorkerCrashes, res.WorkerRecoveries)
	fmt.Printf("  lost work:     %8d     resubmitted: %d, late duplicates discarded: %d\n",
		res.LostEvaluations, res.Resubmissions, res.DuplicateResults)
	fmt.Printf("  messages lost: %8d     (dead senders/receivers, flushed inboxes)\n\n",
		res.MessagesLost)

	// 3. The synchronous driver under the same failures: its
	// per-generation barrier is bounded by a timeout, so a dead worker
	// costs one barrier wait instead of a deadlock, and its offspring
	// re-enter the next generation's batch.
	sres, err := borgmoea.RunSync(faulty)
	check(err)
	fmt.Printf("sync with the same faults (barrier timeout recovery):\n")
	fmt.Printf("  elapsed T_P:   %8.1f s   efficiency: %.2f   generations: %d\n",
		sres.ElapsedTime, sres.Efficiency(), sres.Generations)
	fmt.Printf("  completed:     %8v     resubmitted: %d\n\n", sres.Completed, sres.Resubmissions)

	// 4. Efficiency vs failure rate, sync vs async (small instance of
	// the RunResilience experiment).
	fmt.Printf("efficiency vs failure rate (P=%d, N=%d):\n\n", 16, 5000)
	table, err := borgmoea.RunResilience(borgmoea.ResilienceConfig{
		Problems:        []borgmoea.Problem{problem},
		FailedFractions: []float64{0, 0.01, 0.05, 0.10},
		MTTR:            0.25,
		Processors:      16,
		Evaluations:     5000,
		TFMean:          tfMean,
		Replicates:      2,
		Seed:            7,
	})
	check(err)
	check(borgmoea.WriteResilience(os.Stdout, table))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
