// Operator adaptation: shows Borg's auto-adaptive operator ensemble
// specializing differently on the separable DTLZ2 versus the rotated,
// non-separable UF11 — the algorithmic mechanism the paper's results
// section ties to parallel scalability ("the effectiveness of the
// asynchronous Borg MOEA's auto-adaptive search is strongly shaped by
// parallel scalability and problem difficulty").
//
//	go run ./examples/operator_adaptation
package main

import (
	"fmt"
	"math"

	"borgmoea"
)

func run(problem borgmoea.Problem, budget uint64) *borgmoea.Algorithm {
	alg, err := borgmoea.NewBorg(problem, borgmoea.Config{
		Epsilons: borgmoea.UniformEpsilons(problem.NumObjs(), 0.1),
		Seed:     2024,
	})
	if err != nil {
		panic(err)
	}
	alg.Run(budget, nil)
	return alg
}

func main() {
	const budget = 30000
	dtlz2 := run(borgmoea.NewDTLZ2(5), budget)
	uf11 := run(borgmoea.NewUF11(), budget)

	fmt.Printf("auto-adapted operator probabilities after %d evaluations\n\n", budget)
	fmt.Printf("  %-10s %10s %10s\n", "operator", "DTLZ2_5", "UF11")
	names := dtlz2.OperatorNames()
	pd := dtlz2.OperatorProbabilities()
	pu := uf11.OperatorProbabilities()
	for i, name := range names {
		fmt.Printf("  %-10s %10.3f %10.3f\n", name, pd[i], pu[i])
	}

	fmt.Printf("\n  DTLZ2_5: archive %4d, restarts %d\n",
		dtlz2.Archive().Size(), dtlz2.Restarts())
	fmt.Printf("  UF11:    archive %4d, restarts %d\n",
		uf11.Archive().Size(), uf11.Restarts())

	// Convergence comparison at equal budget (distance to the shared
	// spherical Pareto front) — UF11's rotation makes it measurably
	// harder, which is why the paper pairs these two problems.
	fmt.Printf("\n  mean distance to Pareto front (lower is better):\n")
	for _, alg := range []*borgmoea.Algorithm{dtlz2, uf11} {
		dist, n := 0.0, 0
		for _, f := range alg.Archive().Objectives() {
			s := 0.0
			for _, x := range f {
				s += x * x
			}
			dist += math.Abs(math.Sqrt(s) - 1)
			n++
		}
		fmt.Printf("    %-8s %.4f\n", alg.Problem().Name(), dist/float64(n))
	}
}
