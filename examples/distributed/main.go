// Distributed walkthrough: the real-TCP transport end to end, in one
// process. A master listens on a loopback port, two in-process workers
// (the exact runtime the borgd daemon wraps) dial in, and the
// asynchronous master-slave Borg MOEA runs DTLZ2 (M=5) over actual
// sockets — handshake, heartbeats, lease-tracked evaluations and
// clean shutdown. The same run distributes across machines by
// swapping the in-process workers for borgd processes; the equivalent
// shell commands are printed at the end.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"net"
	"os"

	"borgmoea"
)

func main() {
	const (
		objectives  = 5
		evaluations = 10000
		workers     = 2
	)
	logger := borgmoea.NewLogger(os.Stderr, false)
	problem := borgmoea.NewDTLZ2(objectives)

	// Bind port 0 ourselves so the workers can learn the address
	// before the master starts serving.
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	addr := listener.Addr().String()
	fmt.Printf("master listening on %s\n", addr)

	// One registry observes both sides of the wire: the run attaches
	// it to the master, and the workers' connections share it too.
	metrics := borgmoea.NewMetrics()

	// Start the workers. borgmoea.RunWorker is exactly what borgd
	// runs after flag parsing: dial, resolve the announced problem,
	// evaluate until the master says stop.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			err := borgmoea.RunWorker(ctx, borgmoea.WorkerConfig{
				Addr: addr,
				Seed: uint64(w + 1),
				// A small synthetic delay stands in for an expensive
				// simulation (the paper's controlled T_F).
				Delay: borgmoea.GammaFromMeanCV(0.0005, 0.5),
				Conn:  borgmoea.WireOptions{Metrics: metrics},
			})
			if err != nil && err != context.Canceled {
				logger.Error("worker failed", "worker", w, "err", err)
			}
		}()
	}

	res, err := borgmoea.RunAsyncDistributed(borgmoea.ParallelConfig{
		Problem:     problem,
		Algorithm:   borgmoea.Config{Epsilons: borgmoea.UniformEpsilons(objectives, 0.1)},
		Evaluations: evaluations,
		Seed:        1,
		Metrics:     metrics,
	}, borgmoea.DistributedConfig{
		Listener: listener,
		Logf:     borgmoea.LogfAdapter(logger),
	})
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}

	fmt.Printf("\ndistributed run: N=%d over %d workers in %.2fs\n",
		res.Evaluations, res.Processors-1, res.ElapsedTime)
	fmt.Printf("  archive size:       %d\n", res.Final.Archive().Size())
	fmt.Printf("  mean T_F (workers): %.4fs\n", res.MeanTF)
	fmt.Printf("  mean T_A (master):  %.6fs\n", res.MeanTA)
	fmt.Printf("  master utilization: %.2f\n", res.MasterUtilization)

	front := res.Final.Archive().Objectives()
	ref := make([]float64, objectives)
	for i := range ref {
		ref[i] = 1.1
	}
	hv := borgmoea.HypervolumeMC(front, ref, 100000, 12345)
	fmt.Printf("  hypervolume:        %.4f (normalized %.3f)\n",
		hv, hv/borgmoea.IdealSphereHypervolume(objectives, 1.1))

	// The registry saw both ends of every connection: protocol frame
	// and byte counts are the run's actual communication volume.
	snap := metrics.Snapshot()
	fmt.Printf("\nwire telemetry (both ends):\n")
	for _, key := range []string{"wire.frames_sent", "wire.frames_recv", "wire.bytes_sent", "wire.bytes_recv"} {
		fmt.Printf("  %-18s %v\n", key, snap[key])
	}

	fmt.Printf("\nthe same run across machines:\n")
	fmt.Printf("  master$ borg -problem DTLZ2 -objectives 5 -evals %d -transport tcp -listen :7070\n", evaluations)
	fmt.Printf("  node1$  borgd -connect master:7070\n")
	fmt.Printf("  node2$  borgd -connect master:7070\n")
}
