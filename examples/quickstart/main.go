// Quickstart: run the serial Borg MOEA on the 2-objective DTLZ2
// problem and print the Pareto approximation with its quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"borgmoea"
)

func main() {
	problem := borgmoea.NewDTLZ2(2)
	alg, err := borgmoea.NewBorg(problem, borgmoea.Config{
		Epsilons: borgmoea.UniformEpsilons(2, 0.01),
		Seed:     42,
	})
	if err != nil {
		panic(err)
	}

	const budget = 20000
	alg.Run(budget, nil)

	front := alg.Archive().Objectives()
	sort.Slice(front, func(i, j int) bool { return front[i][0] < front[j][0] })

	fmt.Printf("Borg MOEA on %s after %d evaluations\n", problem.Name(), budget)
	fmt.Printf("  archive size:  %d\n", alg.Archive().Size())
	fmt.Printf("  restarts:      %d\n", alg.Restarts())

	ref := []float64{1.1, 1.1}
	hv := borgmoea.Hypervolume(front, ref)
	ideal := borgmoea.IdealSphereHypervolume(2, 1.1)
	fmt.Printf("  hypervolume:   %.4f (%.1f%% of the ideal front)\n", hv, 100*hv/ideal)

	refSet := borgmoea.SphereFront(2, 500, 1)
	fmt.Printf("  gen. distance: %.5f\n", borgmoea.GenerationalDistance(front, refSet))

	fmt.Println("\n  adapted operator probabilities:")
	names := alg.OperatorNames()
	for i, p := range alg.OperatorProbabilities() {
		fmt.Printf("    %-8s %.3f\n", names[i], p)
	}

	fmt.Println("\n  first points of the Pareto approximation (f1, f2):")
	for i, f := range front {
		if i >= 8 {
			fmt.Printf("    ... %d more\n", len(front)-8)
			break
		}
		fmt.Printf("    %.4f  %.4f\n", f[0], f[1])
	}
}
