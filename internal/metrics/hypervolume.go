package metrics

import (
	"fmt"
	"sort"

	"borgmoea/internal/rng"
)

// Hypervolume computes the exact hypervolume of the set relative to
// the reference point using the WFG algorithm (While, Bradstreet &
// Barone 2012). Points not strictly dominating the reference point
// contribute nothing. The input is not modified.
//
// Degenerate fronts are well-defined: an empty set, a set whose every
// point lies outside the reference box, or a set of non-finite points
// all yield 0; a single point yields its box volume; duplicates
// contribute no extra volume. Mismatched point dimensions panic.
//
// Complexity is exponential in the worst case but fast for the
// archive sizes produced by ε-dominance archives (hundreds of points,
// ≤ 10 objectives). For very large sets prefer HypervolumeMC.
func Hypervolume(set [][]float64, ref []float64) float64 {
	m := len(ref)
	pts := make([][]float64, 0, len(set))
	for _, p := range set {
		if len(p) != m {
			panic(fmt.Sprintf("metrics: point dimension %d != reference dimension %d", len(p), m))
		}
		if strictlyBelow(p, ref) {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	pts = NondominatedFilter(pts)
	// Sorting by the last objective (descending) improves limit-set
	// pruning substantially.
	sort.Slice(pts, func(i, j int) bool { return pts[i][m-1] > pts[j][m-1] })
	return wfg(pts, ref)
}

func strictlyBelow(p, ref []float64) bool {
	for i := range p {
		if p[i] >= ref[i] {
			return false
		}
	}
	return true
}

// wfg computes hypervolume of a mutually nondominated set.
func wfg(pts [][]float64, ref []float64) float64 {
	total := 0.0
	for i := range pts {
		total += exclhv(pts, i, ref)
	}
	return total
}

// exclhv is the hypervolume dominated exclusively by pts[i] relative
// to the points after it.
func exclhv(pts [][]float64, i int, ref []float64) float64 {
	v := inclhv(pts[i], ref)
	limited := limitSet(pts, i)
	if len(limited) > 0 {
		v -= wfg(NondominatedFilter(limited), ref)
	}
	return v
}

// inclhv is the hypervolume dominated by a single point.
func inclhv(p, ref []float64) float64 {
	v := 1.0
	for i := range p {
		v *= ref[i] - p[i]
	}
	return v
}

// limitSet worsens each later point to the component-wise maximum
// with pts[i], restricting to the box dominated by pts[i].
func limitSet(pts [][]float64, i int) [][]float64 {
	out := make([][]float64, 0, len(pts)-i-1)
	for _, q := range pts[i+1:] {
		lim := make([]float64, len(q))
		for j := range q {
			if q[j] > pts[i][j] {
				lim[j] = q[j]
			} else {
				lim[j] = pts[i][j]
			}
		}
		out = append(out, lim)
	}
	return out
}

// HypervolumeMC estimates hypervolume by Monte Carlo: the fraction of
// samples points uniform in the box [min(set), ref] that are dominated
// by the set, scaled by the box volume. A fixed seed gives
// reproducible estimates; the standard error is ≈ HV/√samples.
//
// The degenerate-front contract matches Hypervolume (empty or
// out-of-box sets yield 0, duplicates are fine); samples <= 0 panics.
func HypervolumeMC(set [][]float64, ref []float64, samples int, seed uint64) float64 {
	return hypervolumeMC(set, ref, samples, seed, true)
}

// HypervolumeMCNondominated is HypervolumeMC for a set that is already
// mutually nondominated (an ε-archive front, say), skipping the O(n²)
// dominance filter. The estimate is identical either way — a dominated
// point covers a subset of its dominator's region and cannot extend
// the sampling box — so this is purely the hot-path variant; the
// quality sampler uses it on every sample.
func HypervolumeMCNondominated(set [][]float64, ref []float64, samples int, seed uint64) float64 {
	return hypervolumeMC(set, ref, samples, seed, false)
}

func hypervolumeMC(set [][]float64, ref []float64, samples int, seed uint64, filter bool) float64 {
	m := len(ref)
	if samples <= 0 {
		panic("metrics: HypervolumeMC needs samples > 0")
	}
	pts := make([][]float64, 0, len(set))
	for _, p := range set {
		if len(p) != m {
			panic("metrics: dimension mismatch")
		}
		if strictlyBelow(p, ref) {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	if filter {
		pts = NondominatedFilter(pts)
	}
	// Tight sampling box: [component-wise min, ref].
	lo := append([]float64(nil), pts[0]...)
	for _, p := range pts[1:] {
		for j := range lo {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
		}
	}
	vol := 1.0
	for j := range lo {
		vol *= ref[j] - lo[j]
	}
	if vol <= 0 {
		return 0
	}
	// Sort points by first objective so the dominance scan can often
	// stop early.
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	r := rng.New(seed)
	x := make([]float64, m)
	hit := 0
	for s := 0; s < samples; s++ {
		for j := range x {
			x[j] = lo[j] + (ref[j]-lo[j])*r.Float64()
		}
		for _, p := range pts {
			if p[0] > x[0] {
				break // no later point can dominate x in objective 0
			}
			if weaklyDominates(p, x) {
				hit++
				break
			}
		}
	}
	return vol * float64(hit) / float64(samples)
}

func weaklyDominates(p, x []float64) bool {
	for j := range p {
		if p[j] > x[j] {
			return false
		}
	}
	return true
}
