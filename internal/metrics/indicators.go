package metrics

import "math"

// Degenerate-front contract (shared by every indicator here): an
// empty approximation or reference set yields 0, never NaN or a
// panic — a live sampler may observe an archive before its first
// accept. Duplicate points are legal inputs. Mismatched point
// dimensions between non-empty sets remain a programmer error and
// panic.

// GenerationalDistance returns the mean Euclidean distance from each
// point of the approximation set to its nearest reference-set point —
// a convergence measure. Either set empty yields 0.
func GenerationalDistance(approx, reference [][]float64) float64 {
	if !checkSets(approx, reference) {
		return 0
	}
	sum := 0.0
	for _, a := range approx {
		sum += nearestDistance(a, reference)
	}
	return sum / float64(len(approx))
}

// InvertedGenerationalDistance returns the mean distance from each
// reference point to its nearest approximation point — a combined
// convergence + diversity measure. Either set empty yields 0.
func InvertedGenerationalDistance(approx, reference [][]float64) float64 {
	if !checkSets(approx, reference) {
		return 0
	}
	sum := 0.0
	for _, r := range reference {
		sum += nearestDistance(r, approx)
	}
	return sum / float64(len(reference))
}

// AdditiveEpsilon returns the additive ε-indicator: the smallest ε
// such that every reference point is weakly dominated by some
// approximation point shifted down by ε (equivalently, how far the
// approximation must improve to cover the reference set). Either set
// empty yields 0.
func AdditiveEpsilon(approx, reference [][]float64) float64 {
	if !checkSets(approx, reference) {
		return 0
	}
	eps := math.Inf(-1)
	for _, r := range reference {
		best := math.Inf(1)
		for _, a := range approx {
			worst := math.Inf(-1)
			for j := range a {
				if d := a[j] - r[j]; d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps
}

// Spacing returns Schott's spacing metric: the standard deviation of
// nearest-neighbor L1 distances within the set. Zero means perfectly
// even spacing. Sets with fewer than 2 points have spacing 0.
func Spacing(set [][]float64) float64 {
	if len(set) < 2 {
		return 0
	}
	d := make([]float64, len(set))
	for i, a := range set {
		best := math.Inf(1)
		for j, b := range set {
			if i == j {
				continue
			}
			dist := 0.0
			for k := range a {
				dist += math.Abs(a[k] - b[k])
			}
			if dist < best {
				best = dist
			}
		}
		d[i] = best
	}
	mean := 0.0
	for _, x := range d {
		mean += x
	}
	mean /= float64(len(d))
	ss := 0.0
	for _, x := range d {
		dev := x - mean
		ss += dev * dev
	}
	return math.Sqrt(ss / float64(len(d)-1))
}

// Coverage returns Zitzler's C-metric C(a, b): the fraction of
// members of b that are weakly dominated by at least one member of a.
// C(a,b) = 1 means a covers b entirely; note C is not symmetric, so
// report both directions. Either set empty yields 0.
func Coverage(a, b [][]float64) float64 {
	if !checkSets(a, b) {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if weaklyDominates(p, q) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

func nearestDistance(p []float64, set [][]float64) float64 {
	best := math.Inf(1)
	for _, q := range set {
		d := 0.0
		for j := range p {
			dd := p[j] - q[j]
			d += dd * dd
		}
		if d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// checkSets reports whether both sets are non-empty (the indicator
// should proceed); mismatched dimensions between non-empty sets panic.
func checkSets(a, b [][]float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(a[0]) != len(b[0]) {
		panic("metrics: dimension mismatch between sets")
	}
	return true
}
