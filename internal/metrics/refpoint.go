package metrics

import "strings"

// Hypervolume reference-point conventions, shared by every consumer
// (cmd/borg, cmd/compare, internal/experiment, the quality sampler in
// internal/obs). Before these helpers each site assembled its own
// reference point with a hand-rolled loop and a magic scale; hoisting
// the convention here keeps the reported hypervolumes comparable
// across tools.

// DefaultRefScale is the conventional reference coordinate for
// problems whose Pareto fronts live in the unit box (DTLZ, UF):
// slightly outside the front so extremal points still contribute
// volume.
const DefaultRefScale = 1.1

// DefaultHVSamples is the conventional Monte Carlo sample count for
// HypervolumeMC when an exact computation is too expensive.
const DefaultHVSamples = 100000

// RefScale returns the per-problem-family reference coordinate: 2.0
// for the ZDT family (f2 can exceed 1 well into a run), otherwise
// DefaultRefScale.
func RefScale(problemName string) float64 {
	if strings.HasPrefix(problemName, "ZDT") {
		return 2.0
	}
	return DefaultRefScale
}

// RefPoint returns the uniform m-dimensional reference point
// {scale, ..., scale}. A scale of 0 means DefaultRefScale.
func RefPoint(m int, scale float64) []float64 {
	if scale == 0 {
		scale = DefaultRefScale
	}
	ref := make([]float64, m)
	for i := range ref {
		ref[i] = scale
	}
	return ref
}

// RefPointFor returns the conventional reference point for a named
// problem: RefPoint(m, RefScale(problemName)).
func RefPointFor(problemName string, m int) []float64 {
	return RefPoint(m, RefScale(problemName))
}
