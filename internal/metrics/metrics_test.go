package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"borgmoea/internal/problems"
	"borgmoea/internal/rng"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominanceProperties(t *testing.T) {
	r := rng.New(1)
	gen := func() []float64 {
		return []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	for i := 0; i < 2000; i++ {
		a, b, c := gen(), gen(), gen()
		// Irreflexive.
		if Dominates(a, a) {
			t.Fatal("Dominates is not irreflexive")
		}
		// Antisymmetric.
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatal("Dominates is not antisymmetric")
		}
		// Transitive.
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatal("Dominates is not transitive")
		}
	}
}

func TestNondominatedFilter(t *testing.T) {
	set := [][]float64{
		{1, 5}, {2, 2}, {5, 1}, {3, 3}, {6, 6},
	}
	out := NondominatedFilter(set)
	if len(out) != 3 {
		t.Fatalf("filter kept %d points, want 3: %v", len(out), out)
	}
	for _, p := range out {
		if p[0] == 3 || p[0] == 6 {
			t.Fatalf("dominated point survived: %v", p)
		}
	}
}

func TestNondominatedFilterDuplicates(t *testing.T) {
	set := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	out := NondominatedFilter(set)
	if len(out) != 1 {
		t.Fatalf("duplicates kept %d times, want 1", len(out))
	}
}

func TestNondominatedFilterMutualNondominance(t *testing.T) {
	// Property: no member of the output dominates another.
	r := rng.New(2)
	err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		set := make([][]float64, 20)
		for i := range set {
			set[i] = []float64{rr.Float64(), rr.Float64(), rr.Float64()}
		}
		out := NondominatedFilter(set)
		for i, p := range out {
			for j, q := range out {
				if i != j && Dominates(p, q) {
					return false
				}
			}
		}
		return len(out) > 0
	}, &quick.Config{MaxCount: 100, Rand: nil})
	_ = r
	if err != nil {
		t.Fatal(err)
	}
}

func TestHypervolumeSinglePoint(t *testing.T) {
	set := [][]float64{{0.25, 0.25}}
	ref := []float64{1, 1}
	if got := Hypervolume(set, ref); math.Abs(got-0.5625) > 1e-12 {
		t.Fatalf("HV = %v, want 0.75² = 0.5625", got)
	}
}

func TestHypervolumeTwoBoxes(t *testing.T) {
	// Classic 2D example: points (1,3) and (3,1), ref (4,4):
	// HV = 3·1 + 1·3 + ... draw it: total = 3*1 + (3-1)*... = union of
	// [1,4]×[3,4] and [3,4]×[1,4]: 3·1 + 1·3 − 1·1 = 5.
	set := [][]float64{{1, 3}, {3, 1}}
	ref := []float64{4, 4}
	if got := Hypervolume(set, ref); math.Abs(got-5) > 1e-12 {
		t.Fatalf("HV = %v, want 5", got)
	}
}

func TestHypervolumeDominatedPointIgnored(t *testing.T) {
	ref := []float64{1, 1}
	a := Hypervolume([][]float64{{0.2, 0.2}}, ref)
	b := Hypervolume([][]float64{{0.2, 0.2}, {0.5, 0.5}}, ref)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("dominated point changed HV: %v vs %v", a, b)
	}
}

func TestHypervolumePointsOutsideRefContributeNothing(t *testing.T) {
	ref := []float64{1, 1}
	if got := Hypervolume([][]float64{{2, 0.1}}, ref); got != 0 {
		t.Fatalf("point beyond reference contributed %v", got)
	}
	if got := Hypervolume(nil, ref); got != 0 {
		t.Fatalf("empty set HV = %v, want 0", got)
	}
}

func TestHypervolume3DKnown(t *testing.T) {
	// Single point at origin, ref (1,1,1): HV = 1.
	if got := Hypervolume([][]float64{{0, 0, 0}}, []float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("HV = %v, want 1", got)
	}
	// Two staircase points.
	set := [][]float64{{0, 0.5, 0.5}, {0.5, 0, 0}}
	// Volumes: box1 = 1·0.5·0.5 = 0.25; box2 = 0.5·1·1 = 0.5;
	// intersection = 0.5·0.5·0.5 = 0.125; union = 0.625.
	if got := Hypervolume(set, []float64{1, 1, 1}); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("HV = %v, want 0.625", got)
	}
}

func TestHypervolumeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Hypervolume([][]float64{{1, 2, 3}}, []float64{1, 1})
}

// TestHypervolumeMCAgreesWithExact cross-validates the two
// implementations on random 4-objective sets.
func TestHypervolumeMCAgreesWithExact(t *testing.T) {
	r := rng.New(3)
	ref := []float64{1, 1, 1, 1}
	for trial := 0; trial < 5; trial++ {
		set := make([][]float64, 30)
		for i := range set {
			set[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		}
		exact := Hypervolume(set, ref)
		mc := HypervolumeMC(set, ref, 200000, 42)
		if exact == 0 {
			continue
		}
		if math.Abs(mc-exact)/exact > 0.02 {
			t.Fatalf("MC HV %v deviates from exact %v by >2%%", mc, exact)
		}
	}
}

// TestHypervolumeSphereFrontApproachesIdeal: a dense sample of the
// 5-objective sphere front must have hypervolume close to (and below)
// the closed-form ideal.
func TestHypervolumeSphereFrontApproachesIdeal(t *testing.T) {
	ref := []float64{1.1, 1.1, 1.1, 1.1, 1.1}
	ideal := problems.IdealSphereHypervolume(5, 1.1)
	sparse := HypervolumeMC(problems.SphereFront(5, 100, 7), ref, 200000, 11)
	dense := HypervolumeMC(problems.SphereFront(5, 2000, 7), ref, 200000, 11)
	if dense > ideal+1e-9 {
		t.Fatalf("front HV %v exceeds ideal %v", dense, ideal)
	}
	// Finite samples of a 5-D front capture well under 100% of the
	// continuous ideal; density must monotonically close the gap.
	if dense < 0.80*ideal {
		t.Fatalf("2000-point front HV %v too far below ideal %v", dense, ideal)
	}
	if dense <= sparse {
		t.Fatalf("denser front did not increase HV: %v vs %v", dense, sparse)
	}
}

func TestHypervolumeMCReproducible(t *testing.T) {
	set := [][]float64{{0.3, 0.4}, {0.5, 0.2}}
	ref := []float64{1, 1}
	a := HypervolumeMC(set, ref, 10000, 5)
	b := HypervolumeMC(set, ref, 10000, 5)
	if a != b {
		t.Fatal("HypervolumeMC not reproducible under fixed seed")
	}
}

// TestHypervolumeMCNondominatedIdentical: skipping the dominance
// filter must not change the estimate at all — on any input, filtered
// or not, the dominated region and the RNG stream are the same. Random
// sets deliberately include dominated points.
func TestHypervolumeMCNondominatedIdentical(t *testing.T) {
	r := rng.New(9)
	ref := []float64{1, 1, 1}
	for trial := 0; trial < 10; trial++ {
		set := make([][]float64, 50)
		for i := range set {
			set[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		}
		a := HypervolumeMC(set, ref, 5000, uint64(trial))
		b := HypervolumeMCNondominated(set, ref, 5000, uint64(trial))
		if a != b {
			t.Fatalf("trial %d: filtered %v != unfiltered %v", trial, a, b)
		}
	}
}

func TestHypervolumeMCValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("samples=0 did not panic")
		}
	}()
	HypervolumeMC([][]float64{{0, 0}}, []float64{1, 1}, 0, 1)
}

func TestGenerationalDistanceZeroOnSubset(t *testing.T) {
	ref := problems.SphereFront(3, 100, 1)
	if gd := GenerationalDistance(ref[:10], ref); gd != 0 {
		t.Fatalf("GD of subset = %v, want 0", gd)
	}
}

func TestGenerationalDistanceKnown(t *testing.T) {
	approx := [][]float64{{0, 1}}
	ref := [][]float64{{0, 0}}
	if gd := GenerationalDistance(approx, ref); math.Abs(gd-1) > 1e-12 {
		t.Fatalf("GD = %v, want 1", gd)
	}
}

func TestIGDPenalizesPoorCoverage(t *testing.T) {
	ref := problems.SphereFront(3, 200, 2)
	full := ref
	partial := ref[:5]
	igdFull := InvertedGenerationalDistance(full, ref)
	igdPartial := InvertedGenerationalDistance(partial, ref)
	if igdFull != 0 {
		t.Fatalf("IGD of full coverage = %v, want 0", igdFull)
	}
	if igdPartial <= igdFull {
		t.Fatal("IGD did not penalize partial coverage")
	}
}

func TestAdditiveEpsilon(t *testing.T) {
	// Approx exactly matches reference: ε = 0.
	ref := [][]float64{{0, 1}, {1, 0}}
	if eps := AdditiveEpsilon(ref, ref); math.Abs(eps) > 1e-12 {
		t.Fatalf("ε of identical sets = %v, want 0", eps)
	}
	// Approx uniformly worse by 0.25.
	worse := [][]float64{{0.25, 1.25}, {1.25, 0.25}}
	if eps := AdditiveEpsilon(worse, ref); math.Abs(eps-0.25) > 1e-12 {
		t.Fatalf("ε = %v, want 0.25", eps)
	}
	// Approx better than reference: ε negative.
	better := [][]float64{{-0.5, 0.5}, {0.5, -0.5}}
	if eps := AdditiveEpsilon(better, ref); eps >= 0 {
		t.Fatalf("ε = %v, want negative for a strictly better set", eps)
	}
}

func TestSpacing(t *testing.T) {
	// Evenly spaced points: spacing 0.
	even := [][]float64{{0, 3}, {1, 2}, {2, 1}, {3, 0}}
	if s := Spacing(even); math.Abs(s) > 1e-12 {
		t.Fatalf("spacing of even set = %v, want 0", s)
	}
	// Uneven spacing: positive.
	uneven := [][]float64{{0, 3}, {0.1, 2.9}, {3, 0}}
	if s := Spacing(uneven); s <= 0 {
		t.Fatalf("spacing of uneven set = %v, want > 0", s)
	}
	// Degenerate sizes.
	if Spacing(nil) != 0 || Spacing([][]float64{{1, 1}}) != 0 {
		t.Fatal("spacing of tiny sets should be 0")
	}
}

func TestCoverage(t *testing.T) {
	a := [][]float64{{0, 0}}
	b := [][]float64{{1, 1}, {2, 2}}
	if c := Coverage(a, b); c != 1 {
		t.Errorf("C(a,b) = %v, want 1 (a dominates all of b)", c)
	}
	if c := Coverage(b, a); c != 0 {
		t.Errorf("C(b,a) = %v, want 0", c)
	}
	// Weak dominance: identical points count as covered.
	if c := Coverage(a, a); c != 1 {
		t.Errorf("C(a,a) = %v, want 1 (weak dominance)", c)
	}
	// Partial coverage.
	mixed := [][]float64{{-1, 5}, {5, 5}}
	if c := Coverage(a, mixed); c != 0.5 {
		t.Errorf("C = %v, want 0.5", c)
	}
}

func TestIndicatorsEmptySetsWellDefined(t *testing.T) {
	// The degenerate-front contract: empty inputs yield 0, never NaN
	// or a panic — a live quality sampler can hit a pre-first-accept
	// archive.
	one := [][]float64{{1}}
	for name, v := range map[string]float64{
		"GD empty approx":    GenerationalDistance(nil, one),
		"GD empty ref":       GenerationalDistance(one, nil),
		"IGD empty ref":      InvertedGenerationalDistance(one, nil),
		"IGD empty approx":   InvertedGenerationalDistance(nil, one),
		"eps both empty":     AdditiveEpsilon(nil, nil),
		"coverage empty b":   Coverage(one, nil),
		"coverage empty a":   Coverage(nil, one),
		"spacing empty":      Spacing(nil),
		"spacing single":     Spacing(one),
		"hv empty":           Hypervolume(nil, []float64{1, 1}),
		"hv MC empty":        HypervolumeMC(nil, []float64{1, 1}, 10, 1),
		"hv all outside box": Hypervolume([][]float64{{2, 2}}, []float64{1, 1}),
	} {
		if v != 0 {
			t.Errorf("%s = %v, want 0", name, v)
		}
	}
	// Dimension mismatch between non-empty sets stays a panic.
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	GenerationalDistance([][]float64{{1}}, [][]float64{{1, 2}})
}

func TestIndicatorsDuplicatePoints(t *testing.T) {
	dup := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	ref := []float64{1, 1}
	if hv, want := Hypervolume(dup, ref), 0.25; math.Abs(hv-want) > 1e-12 {
		t.Errorf("duplicate-point HV = %v, want %v", hv, want)
	}
	if s := Spacing(dup); s != 0 {
		t.Errorf("duplicate-point spacing = %v, want 0", s)
	}
	if c := Coverage(dup, dup); c != 1 {
		t.Errorf("duplicate-point coverage = %v, want 1", c)
	}
}

func TestRefPointHelpers(t *testing.T) {
	if s := RefScale("ZDT4"); s != 2.0 {
		t.Errorf("RefScale(ZDT4) = %v, want 2.0", s)
	}
	if s := RefScale("DTLZ2"); s != DefaultRefScale {
		t.Errorf("RefScale(DTLZ2) = %v, want %v", s, DefaultRefScale)
	}
	ref := RefPointFor("UF7", 3)
	if len(ref) != 3 {
		t.Fatalf("RefPointFor dim = %d, want 3", len(ref))
	}
	for _, v := range ref {
		if v != DefaultRefScale {
			t.Errorf("RefPointFor coord = %v, want %v", v, DefaultRefScale)
		}
	}
	// Scale 0 means the default.
	if got := RefPoint(2, 0)[0]; got != DefaultRefScale {
		t.Errorf("RefPoint(2, 0) coord = %v, want %v", got, DefaultRefScale)
	}
}

// TestHypervolumeMonotonicity: adding a nondominated point never
// decreases hypervolume.
func TestHypervolumeMonotonicity(t *testing.T) {
	r := rng.New(8)
	ref := []float64{1, 1, 1}
	set := [][]float64{}
	prev := 0.0
	for i := 0; i < 30; i++ {
		p := []float64{r.Float64(), r.Float64(), r.Float64()}
		set = append(set, p)
		hv := Hypervolume(set, ref)
		if hv < prev-1e-12 {
			t.Fatalf("HV decreased after adding a point: %v -> %v", prev, hv)
		}
		prev = hv
	}
}

func BenchmarkHypervolumeExact5D100(b *testing.B) {
	front := problems.SphereFront(5, 100, 1)
	ref := []float64{1.1, 1.1, 1.1, 1.1, 1.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hypervolume(front, ref)
	}
}

func BenchmarkHypervolumeMC5D300(b *testing.B) {
	front := problems.SphereFront(5, 300, 1)
	ref := []float64{1.1, 1.1, 1.1, 1.1, 1.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HypervolumeMC(front, ref, 10000, uint64(i))
	}
}
