// Package metrics implements the quality indicators used by the
// paper's evaluation — above all the hypervolume metric (Zitzler et
// al.), computed exactly with the WFG algorithm and approximately by
// Monte Carlo — plus generational distance, inverted generational
// distance, the additive ε-indicator, and spacing. All metrics treat
// objectives as minimized.
package metrics

// Dominates reports whether objective vector a Pareto-dominates b:
// a is no worse in every objective and strictly better in at least
// one.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		switch {
		case a[i] < b[i]:
			better = true
		case a[i] > b[i]:
			return false
		}
	}
	return better
}

// NondominatedFilter returns the subset of set whose members are not
// dominated by any other member (duplicates are kept once).
func NondominatedFilter(set [][]float64) [][]float64 {
	var out [][]float64
outer:
	for i, p := range set {
		for j, q := range set {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				continue outer
			}
			if j < i && equal(q, p) {
				continue outer // drop duplicate, keep first
			}
		}
		out = append(out, p)
	}
	return out
}

func equal(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
