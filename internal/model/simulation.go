package model

import (
	"fmt"

	"borgmoea/internal/des"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// SimConfig parameterizes the simulation model (Section IV.B): a
// queueing-only discrete-event model of the asynchronous master-slave
// interaction. Unlike the drivers in internal/parallel it performs no
// actual search — exactly like the paper's SimPy model, it only
// "holds" resources for sampled durations, which is why it can sweep
// thousands of configurations in seconds.
type SimConfig struct {
	// Processors is P (1 master + P−1 workers), >= 2.
	Processors int
	// Evaluations is N, the total evaluation budget.
	Evaluations uint64
	// TF, TA, TC are timing distributions. Constant distributions
	// reproduce the analytical model's assumptions (and the simulated
	// time then matches Eq. 2 while the master is unsaturated).
	TF, TA, TC stats.Distribution
	// Seed seeds the simulation's random streams.
	Seed uint64
}

// SimResult reports the simulated run.
type SimResult struct {
	// Elapsed is the simulated T_P.
	Elapsed float64
	// MasterUtilization is the master resource's busy fraction —
	// near 1.0 means saturation (P beyond Eq. 3's bound).
	MasterUtilization float64
	// MeanQueueLength is the time-averaged number of workers waiting
	// for the master, the contention the analytical model ignores.
	MeanQueueLength float64
	// MaxQueueLength is the worst instantaneous queue.
	MaxQueueLength int
	// Evaluations completed (== the configured budget).
	Evaluations uint64
}

// Simulate runs the simulation model once and returns the predicted
// timing. The worker process mirrors the paper's SimPy listing:
//
//	yield request, self, master
//	yield hold, self, sampleTc() + sampleTa() + sampleTc()
//	yield release, self, master
//	activate(worker, worker.evaluate())   // hold sampleTf()
//
// i.e. each evaluation cycle acquires the master (queueing if busy),
// holds it for T_C + T_A + T_C, releases it, then evaluates for T_F.
func Simulate(cfg SimConfig) (SimResult, error) {
	if cfg.Processors < 2 {
		return SimResult{}, fmt.Errorf("model: Simulate requires P >= 2, got %d", cfg.Processors)
	}
	if cfg.Evaluations == 0 {
		return SimResult{}, fmt.Errorf("model: Simulate requires a positive evaluation budget")
	}
	if cfg.TF == nil || cfg.TA == nil || cfg.TC == nil {
		return SimResult{}, fmt.Errorf("model: Simulate requires TF, TA and TC distributions")
	}

	eng := des.New()
	master := des.NewResource(eng, "master", 1)
	r := rng.New(cfg.Seed ^ 0x73696d) // "sim"

	completed := uint64(0)
	var elapsed float64
	for w := 1; w < cfg.Processors; w++ {
		wr := r.Split()
		eng.Go(fmt.Sprintf("worker%d", w), func(p *des.Process) {
			for {
				// Request the master: initial task hand-out and every
				// subsequent result-return + next-offspring exchange.
				master.Acquire(p)
				// Fitted timing distributions (e.g. a normal selected
				// for measured T_A) can sample below zero; durations
				// are clamped so the virtual clock never runs backward.
				p.Hold(max(0, cfg.TC.Sample(wr)+cfg.TA.Sample(wr)+cfg.TC.Sample(wr)))
				master.Release(p)
				if completed >= cfg.Evaluations {
					return
				}
				p.Hold(max(0, cfg.TF.Sample(wr)))
				completed++
				if completed >= cfg.Evaluations {
					elapsed = p.Now()
					return
				}
			}
		})
	}
	eng.Run()
	eng.Shutdown()

	st := master.Stats()
	res := SimResult{
		Elapsed:           elapsed,
		Evaluations:       completed,
		MeanQueueLength:   st.MeanQueueLen,
		MaxQueueLength:    st.MaxQueueLen,
		MasterUtilization: 0,
	}
	if elapsed > 0 {
		res.MasterUtilization = st.BusyTimeTotal / elapsed
	}
	return res, nil
}

// SimulateMean runs the simulation model `replicates` times with
// distinct seeds and returns the mean elapsed time — the quantity
// compared against experiment in Table II.
func SimulateMean(cfg SimConfig, replicates int) (float64, error) {
	if replicates < 1 {
		return 0, fmt.Errorf("model: need at least one replicate")
	}
	sum := 0.0
	for i := 0; i < replicates; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		r, err := Simulate(c)
		if err != nil {
			return 0, err
		}
		sum += r.Elapsed
	}
	return sum / float64(replicates), nil
}

// SimEfficiency converts a simulated elapsed time into efficiency
// E_P = T_S/(P·T_P) using the distribution means for T_S.
func SimEfficiency(cfg SimConfig, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	ts := float64(cfg.Evaluations) * (cfg.TF.Mean() + cfg.TA.Mean())
	return ts / (float64(cfg.Processors) * elapsed)
}
