package model

import (
	"math"
	"testing"
	"testing/quick"

	"borgmoea/internal/stats"
)

// paperTimes returns the DTLZ2 timing constants from the paper's
// worked example in Section VI.
func paperTimes() Times {
	return Times{TA: 0.000029, TC: 0.000006, TF: 0.01}
}

func TestSerialTime(t *testing.T) {
	// Table II back-derivation: N = 1e5, DTLZ2, TF = 0.01 gives
	// T_S ≈ 1002.9s and hence the observed efficiencies.
	ts := SerialTime(100000, paperTimes())
	if math.Abs(ts-1002.9) > 0.1 {
		t.Fatalf("T_S = %v, want ≈ 1002.9", ts)
	}
}

func TestAsyncTimeMatchesTable2(t *testing.T) {
	// Analytical predictions from Table II (DTLZ2, TF = 0.01):
	// P=16 → 67.1s, P=32 → 32.5s, P=64 → 16.0s, P=128 → 8.0s.
	cases := []struct {
		p    int
		want float64
	}{
		{16, 67.1}, {32, 32.5}, {64, 16.0}, {128, 8.0}, {1024, 1.0},
	}
	for _, c := range cases {
		got := AsyncTime(100000, c.p, paperTimes())
		if math.Abs(got-c.want) > 0.05*c.want {
			t.Errorf("analytical T_P(P=%d) = %v, want ≈ %v (Table II)", c.p, got, c.want)
		}
	}
}

// TestProcessorUpperBoundPaperExample reproduces the paper's worked
// Eq. 3 example: TA=0.000029, TC=0.000006, TF=0.01 → P_UB ≈ 244.
func TestProcessorUpperBoundPaperExample(t *testing.T) {
	pub := ProcessorUpperBound(paperTimes())
	if math.Abs(pub-244) > 1 {
		t.Fatalf("P_UB = %v, want ≈ 244 (paper Section VI)", pub)
	}
}

// TestProcessorLowerBoundAlwaysAtLeastThree verifies the paper's
// observation that the asynchronous model needs ≥ 3 processors
// regardless of TF, TC, TA.
func TestProcessorLowerBoundAlwaysAtLeastThree(t *testing.T) {
	err := quick.Check(func(tfRaw, taRaw, tcRaw uint16) bool {
		tm := Times{
			TF: 1e-6 + float64(tfRaw)/1000,
			TA: 1e-9 + float64(taRaw)/1e6,
			TC: float64(tcRaw) / 1e6,
		}
		plb := ProcessorLowerBound(tm)
		return plb > 2 && !math.IsNaN(plb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// And the bound approaches 2 as TC → 0.
	if plb := ProcessorLowerBound(Times{TF: 1, TA: 0, TC: 0}); plb != 2 {
		t.Fatalf("P_LB with TC=0 is %v, want exactly 2 (need >, hence 3 processors)", plb)
	}
}

func TestAsyncSpeedupEfficiencyConsistency(t *testing.T) {
	tm := paperTimes()
	for _, p := range []int{2, 16, 128, 1024} {
		s := AsyncSpeedup(p, tm)
		e := AsyncEfficiency(p, tm)
		if math.Abs(e-s/float64(p)) > 1e-12 {
			t.Fatalf("efficiency ≠ speedup/P at P=%d", p)
		}
		// Speedup from time ratio must agree.
		ratio := SerialTime(1000, tm) / AsyncTime(1000, p, tm)
		if math.Abs(s-ratio) > 1e-9 {
			t.Fatalf("speedup %v ≠ T_S/T_P %v", s, ratio)
		}
	}
}

func TestSyncTimeShape(t *testing.T) {
	tm := paperTimes()
	// Synchronous cost per generation grows with P (the P·TC and
	// P·TA terms), so efficiency must fall monotonically in P beyond
	// small counts.
	prev := SyncEfficiency(2, tm)
	for _, p := range []int{4, 16, 64, 256, 1024} {
		e := SyncEfficiency(p, tm)
		if e > prev {
			t.Fatalf("sync efficiency rose from %v to %v at P=%d", prev, e, p)
		}
		prev = e
	}
}

// TestAsyncScalesFurtherThanSync reproduces the paper's Figure 5
// qualitative claim: for a fixed TF there is a processor count where
// async efficiency exceeds sync efficiency, and async sustains
// efficiency to larger P.
func TestAsyncScalesFurtherThanSync(t *testing.T) {
	tm := Times{TF: 0.1, TA: 0.000060, TC: 0.000006}
	asyncAt := func(p int) float64 { return AsyncEfficiency(p, tm) }
	syncAt := func(p int) float64 { return SyncEfficiency(p, tm) }
	// At large P the synchronous barrier's P·TC + P·TA term bites.
	if asyncAt(1024) <= syncAt(1024) {
		t.Fatalf("async efficiency %v not above sync %v at P=1024",
			asyncAt(1024), syncAt(1024))
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(10, 9); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelativeError(10,9) = %v, want 0.1", e)
	}
	if e := RelativeError(10, 11); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelativeError(10,11) = %v, want 0.1", e)
	}
	if e := RelativeError(0, 0); e != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", e)
	}
	if e := RelativeError(0, 5); e != 1 {
		t.Errorf("RelativeError(0,5) = %v, want 1", e)
	}
	if e := RelativeError(-10, -9); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelativeError(-10,-9) = %v, want 0.1", e)
	}
}

func TestModelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { AsyncTime(10, 1, paperTimes()) },
		func() { SyncTime(10, 0, paperTimes()) },
		func() { ProcessorUpperBound(Times{}) },
		func() { ProcessorLowerBound(Times{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid model call did not panic")
				}
			}()
			fn()
		}()
	}
}

// constDists builds constant distributions from Times.
func constDists(tm Times) (tf, ta, tc stats.Distribution) {
	return stats.NewConstant(tm.TF), stats.NewConstant(tm.TA), stats.NewConstant(tm.TC)
}

// TestSimulationMatchesAnalyticalUnsaturated: with constant
// distributions and P well under P_UB, the simulation model must
// agree with Eq. 2 to within a cycle or two.
func TestSimulationMatchesAnalyticalUnsaturated(t *testing.T) {
	tm := paperTimes() // P_UB ≈ 244
	tf, ta, tc := constDists(tm)
	for _, p := range []int{4, 16, 64} {
		res, err := Simulate(SimConfig{
			Processors: p, Evaluations: 10000,
			TF: tf, TA: ta, TC: tc, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := AsyncTime(10000, p, tm)
		if RelativeError(want, res.Elapsed) > 0.02 {
			t.Errorf("P=%d: simulated %v vs analytical %v", p, res.Elapsed, want)
		}
	}
}

// TestSimulationShowsSaturation: past P_UB the simulation model's
// elapsed time stops following Eq. 2 (which keeps falling as 1/(P−1))
// and the master saturates — the central claim of Section IV.B.
func TestSimulationShowsSaturation(t *testing.T) {
	tm := paperTimes() // P_UB ≈ 244
	tf, ta, tc := constDists(tm)
	const n = 20000
	resLow, err := Simulate(SimConfig{Processors: 128, Evaluations: n, TF: tf, TA: ta, TC: tc, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resHigh, err := Simulate(SimConfig{Processors: 1024, Evaluations: n, TF: tf, TA: ta, TC: tc, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Analytical predicts an ~8x improvement; saturation caps the
	// real improvement near (and not below) the master service time
	// N·(2TC+TA).
	floor := float64(n) * (2*tm.TC + tm.TA)
	if resHigh.Elapsed < floor*0.99 {
		t.Fatalf("saturated run %v beat the master service floor %v", resHigh.Elapsed, floor)
	}
	analytical := AsyncTime(n, 1024, tm)
	if RelativeError(resHigh.Elapsed, analytical) < 0.3 {
		t.Fatalf("analytical model should be badly wrong at P=1024: sim %v vs analytic %v",
			resHigh.Elapsed, analytical)
	}
	if resHigh.MasterUtilization < 0.95 {
		t.Fatalf("master utilization %v at P=1024, want near saturation", resHigh.MasterUtilization)
	}
	if resHigh.MeanQueueLength <= resLow.MeanQueueLength {
		t.Fatal("queueing did not grow with processor count")
	}
}

// TestSimulationEfficiencyPeaksInterior reproduces the Table II
// observation that efficiency peaks at an interior P well below the
// Eq. 3 bound.
func TestSimulationEfficiencyPeaksInterior(t *testing.T) {
	tm := paperTimes()
	tf, ta, tc := constDists(tm)
	const n = 20000
	eff := map[int]float64{}
	for _, p := range []int{4, 16, 32, 256, 1024} {
		cfg := SimConfig{Processors: p, Evaluations: n, TF: tf, TA: ta, TC: tc, Seed: 3}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eff[p] = SimEfficiency(cfg, res.Elapsed)
	}
	if !(eff[16] > eff[4]) && !(eff[32] > eff[4]) {
		t.Fatalf("efficiency did not improve from P=4: %v", eff)
	}
	if !(eff[32] > eff[256] && eff[256] > eff[1024]) {
		t.Fatalf("efficiency did not decay past the peak: %v", eff)
	}
}

func TestSimulateValidation(t *testing.T) {
	tf, ta, tc := constDists(paperTimes())
	if _, err := Simulate(SimConfig{Processors: 1, Evaluations: 10, TF: tf, TA: ta, TC: tc}); err == nil {
		t.Error("P=1 accepted")
	}
	if _, err := Simulate(SimConfig{Processors: 4, Evaluations: 0, TF: tf, TA: ta, TC: tc}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Simulate(SimConfig{Processors: 4, Evaluations: 10}); err == nil {
		t.Error("missing distributions accepted")
	}
	if _, err := SimulateMean(SimConfig{Processors: 4, Evaluations: 10, TF: tf, TA: ta, TC: tc}, 0); err == nil {
		t.Error("zero replicates accepted")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	tm := paperTimes()
	cfg := SimConfig{
		Processors: 32, Evaluations: 5000,
		TF:   stats.GammaFromMeanCV(tm.TF, 0.1),
		TA:   stats.NewConstant(tm.TA),
		TC:   stats.NewConstant(tm.TC),
		Seed: 7,
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatal("simulation not deterministic for fixed seed")
	}
}

// TestSimulateStochasticTFIncreasesContention: with the same means, a
// high-variance TF should not *reduce* elapsed time for the
// asynchronous model (the paper argues async is robust — time stays
// ~unchanged — while sync degrades; here we pin the async side).
func TestSimulateStochasticTFRobustness(t *testing.T) {
	tm := paperTimes()
	base := SimConfig{
		Processors: 32, Evaluations: 20000,
		TA: stats.NewConstant(tm.TA), TC: stats.NewConstant(tm.TC), Seed: 8,
	}
	cfgConst := base
	cfgConst.TF = stats.NewConstant(tm.TF)
	cfgVar := base
	cfgVar.TF = stats.GammaFromMeanCV(tm.TF, 1.0) // wildly variable
	a, err := Simulate(cfgConst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfgVar)
	if err != nil {
		t.Fatal(err)
	}
	if RelativeError(a.Elapsed, b.Elapsed) > 0.10 {
		t.Fatalf("async elapsed should be robust to TF variance: const %v vs CV=1 %v",
			a.Elapsed, b.Elapsed)
	}
}

func BenchmarkSimulate32(b *testing.B) {
	tm := paperTimes()
	tf, ta, tc := constDists(tm)
	for i := 0; i < b.N; i++ {
		_, err := Simulate(SimConfig{
			Processors: 32, Evaluations: 10000,
			TF: tf, TA: ta, TC: tc, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
