package model

import (
	"math"
	"testing"
)

func TestAsyncSpeedupCappedMatchesUncappedBelowUB(t *testing.T) {
	ub := ProcessorUpperBound(paperTimes())
	for p := 2; float64(p-1) <= ub; p++ {
		got := AsyncSpeedupCapped(p, paperTimes())
		want := AsyncSpeedup(p, paperTimes())
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("P=%d: capped %v != uncapped %v below saturation", p, got, want)
		}
	}
}

func TestAsyncSpeedupCappedPlateausBeyondUB(t *testing.T) {
	ub := ProcessorUpperBound(paperTimes())
	atUB := ub * (paperTimes().TF + paperTimes().TA) /
		(paperTimes().TF + 2*paperTimes().TC + paperTimes().TA)
	for _, p := range []int{250, 500, 1000} {
		got := AsyncSpeedupCapped(p, paperTimes())
		if math.Abs(got-atUB) > 1e-9 {
			t.Fatalf("P=%d: capped speedup %v, want plateau %v", p, got, atUB)
		}
		if uncapped := AsyncSpeedup(p, paperTimes()); got >= uncapped {
			t.Fatalf("P=%d: capped %v should sit below the uncapped line %v", p, got, uncapped)
		}
	}
}

func TestAsyncSpeedupCappedDegenerate(t *testing.T) {
	if got := AsyncSpeedupCapped(1, paperTimes()); got != 0 {
		t.Fatalf("P=1: %v, want 0", got)
	}
	// Zero master cost never saturates and must not panic (unlike
	// ProcessorUpperBound) — the advisor calls this while estimates
	// are warming up.
	free := Times{TF: 0.001}
	if got, want := AsyncSpeedupCapped(9, free), AsyncSpeedup(9, free); got != want {
		t.Fatalf("zero master cost: %v, want %v", got, want)
	}
	if got := AsyncSpeedupCapped(9, Times{}); got != 0 {
		t.Fatalf("all-zero times: %v, want 0", got)
	}
}

func TestAsyncEfficiencyCapped(t *testing.T) {
	p := 16
	if got, want := AsyncEfficiencyCapped(p, paperTimes()), AsyncSpeedupCapped(p, paperTimes())/float64(p); got != want {
		t.Fatalf("efficiency %v, want %v", got, want)
	}
	if AsyncEfficiencyCapped(0, paperTimes()) != 0 {
		t.Fatal("P=0 efficiency should be 0")
	}
}

func TestEffectiveProcessorsInvertsSpeedup(t *testing.T) {
	for _, p := range []int{2, 8, 16, 28} {
		s := AsyncSpeedup(p, paperTimes())
		if got := EffectiveProcessors(s, paperTimes()); math.Abs(got-float64(p)) > 1e-9 {
			t.Fatalf("P=%d: EffectiveProcessors(AsyncSpeedup) = %v", p, got)
		}
	}
	if EffectiveProcessors(5, Times{}) != 0 {
		t.Fatal("zero work times should report 0")
	}
}

func TestSaturation(t *testing.T) {
	ub := ProcessorUpperBound(paperTimes())
	// At P = P_UB + 1 workers exactly fill the master's capacity.
	atUB := int(ub) + 1
	s := Saturation(atUB, paperTimes())
	if s < 0.9 || s > 1.1 {
		t.Fatalf("saturation at P_UB = %v, want ~1", s)
	}
	if lo := Saturation(2, paperTimes()); lo >= s {
		t.Fatalf("saturation should grow with P: %v !< %v", lo, s)
	}
	if Saturation(64, Times{TF: 0.001}) != 0 {
		t.Fatal("zero master cost should report 0 saturation")
	}
}

func TestAsyncTimeRemaining(t *testing.T) {
	const n = 10000
	// Consistency with the forward model below saturation.
	for _, p := range []int{4, 16} {
		got := AsyncTimeRemaining(n, p, paperTimes())
		want := AsyncTime(n, p, paperTimes())
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("P=%d: remaining %v, want %v", p, got, want)
		}
	}
	// Beyond saturation the estimate is the (longer) capped drain time.
	if capped, line := AsyncTimeRemaining(n, 1000, paperTimes()), AsyncTime(n, 1000, paperTimes()); capped <= line {
		t.Fatalf("saturated remaining %v should exceed the analytical line %v", capped, line)
	}
	if AsyncTimeRemaining(n, 1, paperTimes()) != 0 || AsyncTimeRemaining(n, 8, Times{}) != 0 {
		t.Fatal("degenerate inputs should report 0")
	}
}
