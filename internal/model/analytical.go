// Package model implements the paper's two scalability models for the
// asynchronous master-slave Borg MOEA: the closed-form analytical
// model (Section III–IV.A, Eqs. 1–4, plus Cantú-Paz's synchronous
// model, Eq. 6) and the discrete-event simulation model (Section
// IV.B) that additionally captures resource contention at the master
// and stochastic timing.
package model

import "fmt"

// Times bundles the mean timing parameters of a configuration.
type Times struct {
	TF float64 // function evaluation time
	TA float64 // master algorithm time per result
	TC float64 // one-way communication time
}

func (t Times) validate() error {
	if t.TF < 0 || t.TA < 0 || t.TC < 0 {
		return fmt.Errorf("model: negative time in %+v", t)
	}
	return nil
}

// SerialTime returns T_S = N·(T_F + T_A) (Eq. 1).
func SerialTime(n uint64, t Times) float64 {
	return float64(n) * (t.TF + t.TA)
}

// AsyncTime returns the analytical parallel runtime of the
// asynchronous master-slave MOEA (Eq. 2):
//
//	T_P = N/(P−1) · (T_F + 2·T_C + T_A)
//
// valid while the master is unsaturated (P ≤ ProcessorUpperBound); at
// larger P the analytical model underestimates T_P because it ignores
// queueing at the master — the paper's Table II quantifies exactly
// this error, and the simulation model repairs it.
func AsyncTime(n uint64, p int, t Times) float64 {
	if p < 2 {
		panic("model: AsyncTime requires P >= 2")
	}
	return float64(n) / float64(p-1) * (t.TF + 2*t.TC + t.TA)
}

// AsyncSpeedup returns S_P = T_S / T_P under the analytical model.
func AsyncSpeedup(p int, t Times) float64 {
	// N cancels.
	return float64(p-1) * (t.TF + t.TA) / (t.TF + 2*t.TC + t.TA)
}

// AsyncEfficiency returns E_P = T_S / (P·T_P) under the analytical
// model.
func AsyncEfficiency(p int, t Times) float64 {
	return AsyncSpeedup(p, t) / float64(p)
}

// ProcessorUpperBound returns the master-saturation processor count
// (Eq. 3):
//
//	P_UB = T_F / (2·T_C + T_A)
//
// the number of workers the master can keep fed; beyond it the master
// has no idle time left and adding processors only grows the queue.
func ProcessorUpperBound(t Times) float64 {
	d := 2*t.TC + t.TA
	if d == 0 {
		panic("model: ProcessorUpperBound with zero master cost")
	}
	return t.TF / d
}

// ProcessorLowerBound returns the minimum processor count for the
// parallel algorithm to beat the serial one (Eq. 4):
//
//	P_LB > 2 + 2·T_C/(T_F + T_A)
//
// so at least 3 processors are always required.
func ProcessorLowerBound(t Times) float64 {
	d := t.TF + t.TA
	if d == 0 {
		panic("model: ProcessorLowerBound with zero work time")
	}
	return 2 + 2*t.TC/d
}

// SyncTime returns Cantú-Paz's analytical runtime of the synchronous
// (generational) master-slave MOEA (Eq. 6):
//
//	T_P^sync = N/P · (T_F + P·T_C + T_A^sync),  T_A^sync ≈ P·T_A
//
// with one solution per node per generation (P is both processor
// count and population size).
func SyncTime(n uint64, p int, t Times) float64 {
	if p < 1 {
		panic("model: SyncTime requires P >= 1")
	}
	taSync := float64(p) * t.TA
	return float64(n) / float64(p) * (t.TF + float64(p)*t.TC + taSync)
}

// SyncSpeedup returns T_S / T_P^sync.
func SyncSpeedup(p int, t Times) float64 {
	return float64(p) * (t.TF + t.TA) / (t.TF + float64(p)*t.TC + float64(p)*t.TA)
}

// SyncEfficiency returns T_S / (P·T_P^sync).
func SyncEfficiency(p int, t Times) float64 {
	return SyncSpeedup(p, t) / float64(p)
}

// RelativeError returns |actual − predicted| / |actual|, the paper's
// Eq. 5 error measure.
func RelativeError(actual, predicted float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return 1
	}
	d := actual - predicted
	if d < 0 {
		d = -d
	}
	if actual < 0 {
		return d / -actual
	}
	return d / actual
}
