package model

// Inverse and prediction helpers for the live scalability advisor
// (internal/advisor): the same Eqs. 1–4 algebra, rearranged so a
// running system can be placed on the model's curves from observed
// quantities, with guarded variants that return 0 instead of
// panicking while the timing estimates are still warming up.

// AsyncSpeedupCapped is AsyncSpeedup with master saturation applied:
// Eq. 2 is only valid while the master has idle time (P − 1 worker
// requests per T_F do not exceed its 2·T_C + T_A service rate, Eq. 3);
// beyond P_UB the master is the bottleneck and speedup plateaus at
// the saturation value T_F/(2·T_C + T_A) + … instead of growing with
// P. This is the advisor's live prediction: unlike the off-line
// tables, a run at P > P_UB should be told the plateau, not the
// optimistic line the paper's Table II shows diverging.
func AsyncSpeedupCapped(p int, t Times) float64 {
	if p < 2 {
		return 0
	}
	workers := float64(p - 1)
	if d := 2*t.TC + t.TA; d > 0 {
		if ub := t.TF / d; workers > ub {
			workers = ub
		}
	}
	if d := t.TF + 2*t.TC + t.TA; d > 0 {
		return workers * (t.TF + t.TA) / d
	}
	return 0
}

// AsyncEfficiencyCapped is AsyncSpeedupCapped divided by P.
func AsyncEfficiencyCapped(p int, t Times) float64 {
	if p < 1 {
		return 0
	}
	return AsyncSpeedupCapped(p, t) / float64(p)
}

// EffectiveProcessors inverts Eq. 2: the processor count that would
// produce the given speedup under the analytical model,
//
//	P_eff = 1 + S · (T_F + 2·T_C + T_A)/(T_F + T_A)
//
// "you run P workers but get P_eff workers' worth" — the advisor's
// headline waste figure. Returns 0 when the work terms are zero.
func EffectiveProcessors(speedup float64, t Times) float64 {
	d := t.TF + t.TA
	if d == 0 {
		return 0
	}
	return 1 + speedup*(t.TF+2*t.TC+t.TA)/d
}

// Saturation returns (P−1)/P_UB: the fraction of the master's
// capacity the worker pool consumes. Below 1 the master has idle
// time and Eq. 2 holds; at and beyond 1 the master is saturated and
// queueing dominates (the regime the simulation model repairs).
// Returns 0 when the master cost is zero (an unsaturatable master).
func Saturation(p int, t Times) float64 {
	d := 2*t.TC + t.TA
	if d == 0 || t.TF == 0 {
		return 0
	}
	return float64(p-1) * d / t.TF
}

// AsyncTimeRemaining predicts the parallel time to finish the
// remaining n evaluations at processor count P under the analytical
// model, with the saturation cap applied (remaining work drains at
// the master's service rate once saturated). Returns 0 for P < 2 or
// degenerate times.
func AsyncTimeRemaining(n uint64, p int, t Times) float64 {
	if p < 2 {
		return 0
	}
	s := AsyncSpeedupCapped(p, t)
	if s == 0 {
		return 0
	}
	// T_remaining = T_S(n)/S with T_S = n·(T_F + T_A) (Eq. 1).
	return float64(n) * (t.TF + t.TA) / s
}
