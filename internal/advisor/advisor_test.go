package advisor_test

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/model"
	"borgmoea/internal/obs"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// trueTimes is the constant timing configuration the acceptance tests
// inject, so the advisor's fit can be compared against the analytical
// model evaluated on the exact parameters.
var trueTimes = model.Times{TF: 0.001, TA: 0.000023, TC: 0.000006}

func desConfig(p int, n uint64) parallel.Config {
	return parallel.Config{
		Problem:     problems.NewDTLZ2(5),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(5, 0.1)},
		Processors:  p,
		Evaluations: n,
		TF:          stats.NewConstant(trueTimes.TF),
		TA:          stats.NewConstant(trueTimes.TA),
		TC:          stats.NewConstant(trueTimes.TC),
		Seed:        1,
	}
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 || math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%s = %v, want %v within %.0f%%", name, got, want, 100*tol)
	}
}

// Satellite: an advisor fed the exact Times must reproduce the
// analytical model's predictions — the fit layer adds no error of its
// own on constant inputs.
func TestPredictionsMatchModelOnExactTimes(t *testing.T) {
	const p = 8
	a := advisor.New(advisor.Config{Processors: p})
	for i := 0; i < 200; i++ {
		a.ObserveTF(1+i%(p-1), trueTimes.TF)
		a.ObserveTA(trueTimes.TA)
		a.ObserveTC(trueTimes.TC)
	}
	r := a.Report()

	if r.Times.TF != trueTimes.TF || r.Times.TA != trueTimes.TA || r.Times.TC != trueTimes.TC {
		t.Fatalf("fitted times %+v, want exact %+v", r.Times, trueTimes)
	}
	within(t, "predicted speedup", r.PredictedSpeedup, model.AsyncSpeedup(p, trueTimes), 1e-9)
	within(t, "predicted efficiency", r.PredictedEfficiency, model.AsyncEfficiency(p, trueTimes), 1e-9)
	within(t, "P_UB", r.ProcessorUpperBound, model.ProcessorUpperBound(trueTimes), 1e-9)
	within(t, "P_LB", r.ProcessorLowerBound, model.ProcessorLowerBound(trueTimes), 1e-9)
	within(t, "saturation", r.Saturation, model.Saturation(p, trueTimes), 1e-9)
}

// Acceptance: a DES RunAsync with known injected times yields a live
// report whose predictions agree with the analytical model on the true
// parameters within 5% by mid-run.
func TestLiveReportMatchesModelMidRun(t *testing.T) {
	const (
		p = 8
		n = 5000
	)
	var snaps []advisor.Report
	adv := advisor.New(advisor.Config{
		SnapshotEvery: 0.05,
		OnSnapshot:    func(r advisor.Report) { snaps = append(snaps, r) },
	})
	cfg := desConfig(p, n)
	cfg.Advisor = adv
	if _, err := parallel.RunAsync(cfg); err != nil {
		t.Fatal(err)
	}

	var mid *advisor.Report
	for i := range snaps {
		if snaps[i].Completed >= n/2 {
			mid = &snaps[i]
			break
		}
	}
	if mid == nil {
		t.Fatalf("no mid-run snapshot among %d", len(snaps))
	}
	if mid.Processors != p || mid.Budget != n {
		t.Fatalf("snapshot config %d/%d, want %d/%d", mid.Processors, mid.Budget, p, n)
	}

	within(t, "predicted speedup", mid.PredictedSpeedup, model.AsyncSpeedup(p, trueTimes), 0.05)
	within(t, "predicted efficiency", mid.PredictedEfficiency, model.AsyncEfficiency(p, trueTimes), 0.05)
	within(t, "P_UB", mid.ProcessorUpperBound, model.ProcessorUpperBound(trueTimes), 0.05)
	within(t, "P_LB", mid.ProcessorLowerBound, model.ProcessorLowerBound(trueTimes), 0.05)

	// The DES run itself tracks the unsaturated model, so the observed
	// speedup should sit near the prediction and the drift stay quiet.
	within(t, "observed speedup", mid.ObservedSpeedup, mid.PredictedSpeedup, 0.10)
	if mid.DriftAlert {
		t.Errorf("drift alert on a model-conforming run (drift %v smoothed %v)",
			mid.DriftScore, mid.DriftSmoothed)
	}
	if mid.ETASeconds <= 0 {
		t.Errorf("mid-run ETA = %v, want positive", mid.ETASeconds)
	}
}

// Acceptance: a seeded straggler — one worker with 10× T_F — is
// flagged, and only it.
func TestStragglerIsFlagged(t *testing.T) {
	const p = 8
	adv := advisor.New(advisor.Config{SnapshotEvery: 0.05})
	cfg := desConfig(p, 3000)
	cfg.Advisor = adv
	cfg.StragglerFraction = 1.0 / float64(p-1) // exactly worker 1
	cfg.StragglerFactor = 10
	if _, err := parallel.RunAsync(cfg); err != nil {
		t.Fatal(err)
	}

	r := adv.Report()
	if len(r.Stragglers) != 1 || r.Stragglers[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", r.Stragglers)
	}
	if len(r.Workers) != p-1 {
		t.Fatalf("%d worker reports, want %d", len(r.Workers), p-1)
	}
	for _, w := range r.Workers {
		if w.Straggler != (w.Worker == 1) {
			t.Errorf("worker %d straggler=%v", w.Worker, w.Straggler)
		}
	}
	slow := r.Workers[0]
	if slow.Worker != 1 || slow.Ratio < 5 {
		t.Errorf("worker 1 decayed-T_F ratio %v, want ~10× the fleet median", slow.Ratio)
	}
}

// The advisor mirrors its headline figures into the metrics registry
// and serves the full report over /debug/scaling.
func TestGaugesAndHandler(t *testing.T) {
	reg := obs.NewRegistry()
	adv := advisor.New(advisor.Config{SnapshotEvery: 0.05, Registry: reg})
	cfg := desConfig(4, 1000)
	cfg.Advisor = adv
	if _, err := parallel.RunAsync(cfg); err != nil {
		t.Fatal(err)
	}

	g := reg.Gauge(advisor.MetricPredictedSpeedup).Value()
	within(t, "gauge "+advisor.MetricPredictedSpeedup, g, model.AsyncSpeedup(4, trueTimes), 0.05)

	rec := httptest.NewRecorder()
	adv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/scaling", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/scaling = %d", rec.Code)
	}
	var rep advisor.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON from handler: %v", err)
	}
	if rep.Completed != 1000 {
		t.Fatalf("handler report completed = %d, want 1000", rep.Completed)
	}
}

// A nil advisor must be safe to drive: every observation method is a
// no-op, so drivers can call unconditionally.
func TestNilAdvisorIsSafe(t *testing.T) {
	var a *advisor.Advisor
	a.Configure(8, 100)
	a.ObserveTF(1, 0.01)
	a.ObserveTA(1e-5)
	a.ObserveTC(1e-6)
	a.ObserveQueueWait(1e-6)
	a.ObserveRTT(1e-4)
	a.SetLive(3)
	a.ObserveAccept(1, 1, 0.01)
}

// An advised run must leave the optimization trajectory untouched:
// observation only, no effect on determinism.
func TestAdvisedRunIsDeterministic(t *testing.T) {
	bare, err := parallel.RunAsync(desConfig(6, 2000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := desConfig(6, 2000)
	cfg.Advisor = advisor.New(advisor.Config{SnapshotEvery: 0.01})
	advised, err := parallel.RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.ElapsedTime != advised.ElapsedTime || bare.Evaluations != advised.Evaluations ||
		bare.Final.Archive().Size() != advised.Final.Archive().Size() {
		t.Fatalf("advised run diverged: elapsed %v vs %v, evals %d vs %d, archive %d vs %d",
			bare.ElapsedTime, advised.ElapsedTime, bare.Evaluations, advised.Evaluations,
			bare.Final.Archive().Size(), advised.Final.Archive().Size())
	}
}
