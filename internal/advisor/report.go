package advisor

// FittedTimes is the advisor's live estimate of the paper's timing
// parameters, plus the shape of the T_F distribution (the analytical
// model assumes deterministic times; a high CV warns that the
// simulation model is the one to trust).
type FittedTimes struct {
	TF      float64 `json:"tf_seconds"`
	TA      float64 `json:"ta_seconds"`
	TC      float64 `json:"tc_seconds"`
	TFP50   float64 `json:"tf_p50_seconds"`
	TFP90   float64 `json:"tf_p90_seconds"`
	TFP99   float64 `json:"tf_p99_seconds"`
	TFCV    float64 `json:"tf_cv"`
	Samples uint64  `json:"tf_samples"`
}

// WorkerReport is one worker's view in the straggler analysis.
type WorkerReport struct {
	Worker    int     `json:"worker"`
	Evals     uint64  `json:"evals"`
	TFDecayed float64 `json:"tf_decayed_seconds"`
	// Ratio is TFDecayed over the fleet median (1 ≈ typical).
	Ratio float64 `json:"ratio"`
	// ZScore is the robust z-score against the fleet (median/MAD).
	ZScore    float64 `json:"z_score"`
	Straggler bool    `json:"straggler"`
}

// Report is one full scalability analysis: the /debug/scaling response
// body and the JSONL snapshot record. All float fields are finite
// (non-finite intermediate values are clamped to 0 so the report
// always marshals).
type Report struct {
	// Progress.
	Processors  int     `json:"processors"`
	LiveWorkers int     `json:"live_workers,omitempty"`
	Budget      uint64  `json:"budget,omitempty"`
	Completed   uint64  `json:"completed"`
	Elapsed     float64 `json:"elapsed_seconds"`

	// Fitted model parameters.
	Times         FittedTimes `json:"times"`
	QueueWaitMean float64     `json:"queue_wait_mean_seconds"`
	RTTMean       float64     `json:"rtt_mean_seconds,omitempty"`

	// The paper's model, evaluated live (Eqs. 2–4 on the fit).
	PredictedSpeedup    float64 `json:"predicted_speedup"`
	PredictedEfficiency float64 `json:"predicted_efficiency"`
	ObservedSpeedup     float64 `json:"observed_speedup"`
	ObservedEfficiency  float64 `json:"observed_efficiency"`
	ProcessorUpperBound float64 `json:"processor_upper_bound"`
	ProcessorLowerBound float64 `json:"processor_lower_bound"`
	Saturation          float64 `json:"saturation"`
	EffectiveProcessors float64 `json:"effective_processors"`
	MasterUtilization   float64 `json:"master_utilization"`
	ETASeconds          float64 `json:"eta_seconds,omitempty"`

	// Model drift: relative error (Eq. 5) between observed and
	// predicted speedup, raw and smoothed across snapshots.
	DriftScore    float64 `json:"drift_score"`
	DriftSmoothed float64 `json:"drift_smoothed"`
	DriftAlert    bool    `json:"drift_alert"`

	// Per-worker straggler analysis.
	Workers    []WorkerReport `json:"workers,omitempty"`
	Stragglers []int          `json:"stragglers,omitempty"`

	// Search-health analysis (present once quality samples flow; see
	// quality.go).
	Quality *QualityHealth `json:"quality,omitempty"`
}
