package advisor

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

// seedIsland builds one island advisor with constant timings so the
// fitted estimates are exact.
func seedIsland(procs int, budget uint64, tf, ta, tc float64, samples int, completed uint64, elapsed float64) *Advisor {
	a := New(Config{})
	a.Configure(procs, budget)
	for i := 0; i < samples; i++ {
		a.ObserveTF(1+i%4, tf)
		a.ObserveTA(ta)
		a.ObserveTC(tc)
	}
	a.ObserveAccept(1, completed, elapsed)
	return a
}

func TestFederationReportAggregates(t *testing.T) {
	fed := NewFederation()
	a1 := seedIsland(5, 1000, 0.1, 0.01, 0.001, 10, 100, 2.0)
	a2 := seedIsland(5, 1000, 0.3, 0.01, 0.001, 10, 200, 4.0)
	fed.Attach(a1)
	fed.Attach(a2)
	fed.Attach(nil) // nil-safe, not counted

	if fed.Islands() != 2 {
		t.Fatalf("Islands() = %d, want 2", fed.Islands())
	}
	fr := fed.Report()
	if fr.Islands != 2 || len(fr.Reports) != 2 {
		t.Fatalf("report rolls up %d islands (%d reports), want 2", fr.Islands, len(fr.Reports))
	}
	if fr.Processors != 10 || fr.Budget != 2000 || fr.Completed != 300 {
		t.Fatalf("sums: P=%d budget=%d completed=%d, want 10/2000/300", fr.Processors, fr.Budget, fr.Completed)
	}
	if fr.Elapsed != 4.0 {
		t.Fatalf("Elapsed = %v, want the slowest island's 4.0", fr.Elapsed)
	}
	// Equal sample counts: the pooled fit is the plain average.
	if math.Abs(fr.Times.TF-0.2) > 1e-9 || math.Abs(fr.Times.TA-0.01) > 1e-9 || math.Abs(fr.Times.TC-0.001) > 1e-9 {
		t.Fatalf("pooled fit = %+v, want TF=0.2 TA=0.01 TC=0.001", fr.Times)
	}
	if fr.Times.Samples != 20 {
		t.Fatalf("pooled samples = %d, want 20", fr.Times.Samples)
	}
	// Eq. 4 on the pooled fit: 0.2/(2*0.001 + 0.01).
	if want := 0.2 / 0.012; math.Abs(fr.SingleMasterPUB-want) > 1e-9 {
		t.Fatalf("SingleMasterPUB = %v, want %v", fr.SingleMasterPUB, want)
	}
	// Serial-equivalent work over federation elapsed:
	// (100*(0.1+0.01) + 200*(0.3+0.01)) / 4.
	if want := (100*0.11 + 200*0.31) / 4.0; math.Abs(fr.AggregateObservedSpeedup-want) > 1e-6 {
		t.Fatalf("AggregateObservedSpeedup = %v, want %v", fr.AggregateObservedSpeedup, want)
	}
	if fr.AggregateEfficiency <= 0 || fr.AggregateEfficiency > 2 {
		t.Fatalf("AggregateEfficiency = %v out of range", fr.AggregateEfficiency)
	}
	sum := fr.Reports[0].EffectiveProcessors + fr.Reports[1].EffectiveProcessors
	if math.Abs(fr.AggregateEffectiveProcessors-sum) > 1e-9 {
		t.Fatalf("AggregateEffectiveProcessors = %v, want the island sum %v", fr.AggregateEffectiveProcessors, sum)
	}
	if fr.SingleMasterPUB > 0 && math.Abs(fr.CeilingRatio-fr.AggregateEffectiveProcessors/fr.SingleMasterPUB) > 1e-9 {
		t.Fatalf("CeilingRatio = %v inconsistent", fr.CeilingRatio)
	}
}

func TestFederationEmptyAndNil(t *testing.T) {
	var nilFed *Federation
	if nilFed.Islands() != 0 {
		t.Fatal("nil federation reports islands")
	}
	if fr := nilFed.Report(); fr.Islands != 0 {
		t.Fatal("nil federation report not empty")
	}
	fr := NewFederation().Report()
	if fr.Islands != 0 || fr.AggregateObservedSpeedup != 0 || fr.SingleMasterPUB != 0 {
		t.Fatalf("empty federation report not zero: %+v", fr)
	}
}

func TestFederationHandler(t *testing.T) {
	fed := NewFederation()
	fed.Attach(seedIsland(3, 100, 0.1, 0.01, 0.001, 5, 50, 1.0))
	h := fed.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/scaling", nil))
	var fr FederationReport
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatalf("federated body does not decode: %v", err)
	}
	if fr.Islands != 1 || len(fr.Reports) != 1 {
		t.Fatalf("federated body rolls up %d islands, want 1", fr.Islands)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/scaling?island=0", nil))
	var r Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatalf("island body does not decode: %v", err)
	}
	if r.Completed != 50 {
		t.Fatalf("island report completed = %d, want 50", r.Completed)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/scaling?island=7", nil))
	if rec.Code != 404 {
		t.Fatalf("island=7 returned %d, want 404", rec.Code)
	}
}
