// Package advisor is the live scalability advisor: it streams the
// telemetry the drivers already emit (T_A, T_F, T_C, queue waits,
// heartbeat RTTs) through constant-memory estimators and continuously
// places the running system on the paper's analytical model — fitted
// model.Times, predicted vs observed asynchronous speedup and
// efficiency (Eqs. 2–3), the processor bounds (Eqs. 3–4), master
// utilization and saturation — plus a model-drift score and a
// per-worker straggler detector built on exponentially-decayed T_F.
//
// The advisor is strictly an observer: drivers feed it measurements
// and acceptance events, and nothing it computes flows back into the
// optimization. All methods are nil-safe (a nil *Advisor no-ops), so
// drivers wire it with the same zero-cost-when-absent convention as
// obs.Registry.
//
// Three consumers share one Advisor: the /debug/scaling HTTP endpoint
// (Handler), periodic JSONL snapshots (Config.OnSnapshot, driven by
// the driver's own clock so DES runs snapshot in virtual time), and
// cmd/borgtop, which renders either of the first two.
package advisor

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"

	"borgmoea/internal/model"
	"borgmoea/internal/obs"
)

// Defaults for the zero Config value.
const (
	DefaultDriftThreshold  = 0.25
	DefaultStragglerFactor = 3.0
	DefaultMinSamples      = 5
	DefaultWarmupEvals     = 100
	DefaultAlpha           = 0.05
	driftAlpha             = 0.3 // smoothing of the per-snapshot drift
)

// Config tunes an Advisor. The zero value works: drivers fill
// Processors and Budget via Configure, and every threshold has a
// default.
type Config struct {
	// Processors is the total processor count P (master + workers).
	// 0 means "infer from live workers" (SetLive), which is how the
	// distributed driver runs — its pool size is whatever daemons
	// happen to have joined.
	Processors int
	// Budget is the total evaluation budget N, used for the time-
	// remaining estimate. 0 disables the estimate.
	Budget uint64
	// SnapshotEvery is the interval between OnSnapshot callbacks in
	// seconds of the driver's clock — virtual seconds under DES, wall
	// seconds in the realtime and distributed drivers. <= 0 disables
	// periodic snapshots.
	SnapshotEvery float64
	// OnSnapshot, when set, receives a Report every SnapshotEvery
	// driver-clock seconds (evaluated at acceptance events, so an idle
	// system does not snapshot). Called without the advisor's lock.
	OnSnapshot func(Report)
	// DriftThreshold is the smoothed relative error between observed
	// and predicted speedup above which the report raises DriftAlert
	// (default 0.25: the analytical model is off by more than a
	// quarter — past the paper's Table II error at saturation, so
	// something the model does not capture is happening).
	DriftThreshold float64
	// StragglerFactor flags a worker whose decayed T_F is at least
	// this multiple of the fleet median (default 3).
	StragglerFactor float64
	// MinSamples is how many evaluations a worker needs before it
	// participates in straggler detection (default 5).
	MinSamples uint64
	// WarmupEvals suppresses the drift alert until this many results
	// have been accepted (default 100) — the first estimates are too
	// noisy to act on.
	WarmupEvals uint64
	// Alpha is the decay factor of the per-worker T_F average
	// (default 0.05 — roughly the last 20 evaluations dominate).
	Alpha float64
	// Registry, when set, receives the headline figures as gauges
	// (advisor.predicted_speedup, advisor.drift_score, …) so they ride
	// along in /debug/vars, -metrics-out and the Prometheus endpoint.
	Registry *obs.Registry
	// OnStraggler, when set, is called once per worker the first time
	// the straggler detector flags it — from Report or a periodic
	// snapshot, outside the advisor's lock. The tracing layer wires it
	// to obs.Collector.ForceWorker so a struggling worker's
	// evaluations are traced regardless of the sampling rate.
	OnStraggler func(worker int)
	// StallFraction: the search counts as stalled when the smoothed
	// ε-progress rate falls below this fraction of its own run peak
	// (default DefaultStallFraction). Needs ObserveQuality feeding.
	StallFraction float64
	// QualityWarmup suppresses quality alerts until this many quality
	// samples have arrived (default DefaultQualityWarmup).
	QualityWarmup int
	// RegressionTolerance is the relative hypervolume shortfall vs
	// the pre-restart level that counts as "quality regressed after
	// restart" (default DefaultRegressionTolerance).
	RegressionTolerance float64
	// OnQualityAlert, when set, is called on each rising edge of a
	// quality alert with a short description ("search stalled",
	// "quality regressed after restart"), outside the advisor's lock.
	OnQualityAlert func(alert string)
}

func (c *Config) fillDefaults() {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = DefaultStragglerFactor
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.WarmupEvals == 0 {
		c.WarmupEvals = DefaultWarmupEvals
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.StallFraction <= 0 {
		c.StallFraction = DefaultStallFraction
	}
	if c.QualityWarmup <= 0 {
		c.QualityWarmup = DefaultQualityWarmup
	}
	if c.RegressionTolerance <= 0 {
		c.RegressionTolerance = DefaultRegressionTolerance
	}
}

// gauges is the registry mirror of the report's headline figures.
type gauges struct {
	predSpeedup, obsSpeedup *obs.Gauge
	predEff, obsEff         *obs.Gauge
	drift, stragglers       *obs.Gauge
	pUB, pLB                *obs.Gauge
	effective, utilization  *obs.Gauge
}

// Gauge names the advisor registers on Config.Registry.
const (
	MetricPredictedSpeedup    = "advisor.predicted_speedup"
	MetricObservedSpeedup     = "advisor.observed_speedup"
	MetricPredictedEfficiency = "advisor.predicted_efficiency"
	MetricObservedEfficiency  = "advisor.observed_efficiency"
	MetricDriftScore          = "advisor.drift_score"
	MetricStragglers          = "advisor.stragglers"
	MetricProcessorUB         = "advisor.processor_upper_bound"
	MetricProcessorLB         = "advisor.processor_lower_bound"
	MetricEffectiveProcessors = "advisor.effective_processors"
	MetricMasterUtilization   = "advisor.master_utilization"
)

func newGauges(reg *obs.Registry) gauges {
	return gauges{
		predSpeedup: reg.Gauge(MetricPredictedSpeedup),
		obsSpeedup:  reg.Gauge(MetricObservedSpeedup),
		predEff:     reg.Gauge(MetricPredictedEfficiency),
		obsEff:      reg.Gauge(MetricObservedEfficiency),
		drift:       reg.Gauge(MetricDriftScore),
		stragglers:  reg.Gauge(MetricStragglers),
		pUB:         reg.Gauge(MetricProcessorUB),
		pLB:         reg.Gauge(MetricProcessorLB),
		effective:   reg.Gauge(MetricEffectiveProcessors),
		utilization: reg.Gauge(MetricMasterUtilization),
	}
}

// workerStat is one worker's decayed evaluation-time state.
type workerStat struct {
	tf *obs.EWMA
}

// Advisor is the online analysis state. Create with New; the zero
// value is not usable, but a nil *Advisor safely no-ops everywhere, so
// `var adv *advisor.Advisor` is the disabled configuration.
type Advisor struct {
	mu  sync.Mutex
	cfg Config
	g   gauges

	ta, tc, rtt, queue obs.Welford
	tf                 obs.Welford
	tfP50, tfP90       *obs.P2Quantile
	tfP99              *obs.P2Quantile

	workers map[int]*workerStat
	flagged map[int]bool // workers OnStraggler already fired for
	live    int

	completed uint64
	elapsed   float64 // driver-clock time of the latest acceptance
	busy      float64 // master busy time: Σ T_A + Σ T_C observed

	drift    *obs.EWMA // smoothed per-snapshot model drift
	lastSnap float64

	// quality is the search-health detector state (quality.go).
	quality qualityState
}

// New returns an advisor with defaults filled in.
func New(cfg Config) *Advisor {
	cfg.fillDefaults()
	return &Advisor{
		cfg:     cfg,
		g:       newGauges(cfg.Registry),
		tfP50:   obs.NewP2Quantile(0.50),
		tfP90:   obs.NewP2Quantile(0.90),
		tfP99:   obs.NewP2Quantile(0.99),
		workers: make(map[int]*workerStat),
		flagged: make(map[int]bool),
		drift:   obs.NewEWMA(driftAlpha),
	}
}

// Configure fills Processors and Budget if the construction-time
// Config left them unset — how drivers hand their own parameters to a
// user-supplied advisor without clobbering explicit choices. Nil-safe.
func (a *Advisor) Configure(processors int, budget uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.Processors == 0 {
		a.cfg.Processors = processors
	}
	if a.cfg.Budget == 0 {
		a.cfg.Budget = budget
	}
}

// ObserveTA records one master algorithm time T_A in seconds.
func (a *Advisor) ObserveTA(sec float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.ta.Observe(sec)
	a.busy += sec
	a.mu.Unlock()
}

// ObserveTC records one one-way communication time T_C in seconds.
func (a *Advisor) ObserveTC(sec float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tc.Observe(sec)
	a.busy += sec
	a.mu.Unlock()
}

// ObserveTF records one function evaluation time T_F in seconds,
// attributed to the given worker (1-based driver worker id).
func (a *Advisor) ObserveTF(worker int, sec float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tf.Observe(sec)
	a.tfP50.Observe(sec)
	a.tfP90.Observe(sec)
	a.tfP99.Observe(sec)
	ws := a.workers[worker]
	if ws == nil {
		ws = &workerStat{tf: obs.NewEWMA(a.cfg.Alpha)}
		a.workers[worker] = ws
	}
	ws.tf.Observe(sec)
	a.mu.Unlock()
}

// ObserveQueueWait records one master queue wait in seconds.
func (a *Advisor) ObserveQueueWait(sec float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.queue.Observe(sec)
	a.mu.Unlock()
}

// ObserveRTT records one heartbeat round-trip time in seconds. When no
// direct T_C measurements exist (the distributed driver cannot see
// one-way latency), the fit falls back to RTT/2.
func (a *Advisor) ObserveRTT(sec float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rtt.Observe(sec)
	a.mu.Unlock()
}

// SetLive records the current live worker count (distributed driver:
// joins and drops move it).
func (a *Advisor) SetLive(n int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.live = n
	a.mu.Unlock()
}

// ObserveAccept records one accepted result: the worker it came from,
// the cumulative completed count, and the event time on the driver's
// clock. This is the advisor's heartbeat — progress, drift smoothing
// and periodic snapshots all advance here.
func (a *Advisor) ObserveAccept(worker int, completed uint64, at float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.completed = completed
	if at > a.elapsed {
		a.elapsed = at
	}
	var (
		snap Report
		fire bool
	)
	if a.cfg.SnapshotEvery > 0 && at >= a.lastSnap+a.cfg.SnapshotEvery {
		a.lastSnap = at
		snap = a.report()
		a.drift.Observe(snap.DriftScore)
		snap.DriftSmoothed = sanitize(a.drift.Value())
		snap.DriftAlert = a.alert(snap.DriftSmoothed)
		a.mirror(snap)
		fire = a.cfg.OnSnapshot != nil
	}
	var fresh []int
	if fire {
		fresh = a.newlyFlagged(snap.Stragglers)
	}
	cb := a.cfg.OnSnapshot
	onStrag := a.cfg.OnStraggler
	a.mu.Unlock()
	if onStrag != nil {
		for _, w := range fresh {
			onStrag(w)
		}
	}
	if fire {
		cb(snap)
	}
	_ = worker // attribution lives in ObserveTF; kept for future per-worker accept rates
}

// newlyFlagged records which of the given stragglers have not been
// reported through OnStraggler yet; callers hold a.mu.
func (a *Advisor) newlyFlagged(stragglers []int) []int {
	var fresh []int
	for _, w := range stragglers {
		if !a.flagged[w] {
			a.flagged[w] = true
			fresh = append(fresh, w)
		}
	}
	return fresh
}

// Report computes the current analysis. Safe to call at any time, from
// any goroutine; polling does not perturb the drift smoothing.
func (a *Advisor) Report() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	r := a.report()
	if a.drift.Count() > 0 {
		r.DriftSmoothed = sanitize(a.drift.Value())
	} else {
		r.DriftSmoothed = r.DriftScore
	}
	r.DriftAlert = a.alert(r.DriftSmoothed)
	a.mirror(r)
	fresh := a.newlyFlagged(r.Stragglers)
	onStrag := a.cfg.OnStraggler
	a.mu.Unlock()
	if onStrag != nil {
		for _, w := range fresh {
			onStrag(w)
		}
	}
	return r
}

// alert reports whether the smoothed drift warrants an alert; callers
// hold a.mu.
func (a *Advisor) alert(smoothed float64) bool {
	return a.completed >= a.cfg.WarmupEvals && smoothed > a.cfg.DriftThreshold
}

// processors returns the effective P; callers hold a.mu.
func (a *Advisor) processors() int {
	if a.cfg.Processors > 0 {
		return a.cfg.Processors
	}
	if a.live > 0 {
		return a.live + 1 // master + live workers
	}
	return 0
}

// fitted returns the model.Times fit from the streams; callers hold
// a.mu. T_C falls back to half the heartbeat RTT when the driver has
// no direct one-way measurements.
func (a *Advisor) fitted() model.Times {
	t := model.Times{TF: a.tf.Mean(), TA: a.ta.Mean(), TC: a.tc.Mean()}
	if a.tc.Count() == 0 && a.rtt.Count() > 0 {
		t.TC = a.rtt.Mean() / 2
	}
	return t
}

// report builds the full Report; callers hold a.mu. DriftSmoothed and
// DriftAlert are filled by the callers, which know whether to advance
// the smoother.
func (a *Advisor) report() Report {
	p := a.processors()
	t := a.fitted()
	r := Report{
		Processors:  p,
		LiveWorkers: a.live,
		Budget:      a.cfg.Budget,
		Completed:   a.completed,
		Elapsed:     sanitize(a.elapsed),
		Times: FittedTimes{
			TF:      sanitize(t.TF),
			TA:      sanitize(t.TA),
			TC:      sanitize(t.TC),
			TFP50:   sanitize(a.tfP50.Value()),
			TFP90:   sanitize(a.tfP90.Value()),
			TFP99:   sanitize(a.tfP99.Value()),
			TFCV:    sanitize(a.tf.CV()),
			Samples: a.tf.Count(),
		},
		QueueWaitMean: sanitize(a.queue.Mean()),
		RTTMean:       sanitize(a.rtt.Mean()),
	}

	r.PredictedSpeedup = sanitize(model.AsyncSpeedupCapped(p, t))
	r.PredictedEfficiency = sanitize(model.AsyncEfficiencyCapped(p, t))
	if d := 2*t.TC + t.TA; d > 0 {
		r.ProcessorUpperBound = sanitize(t.TF / d)
	}
	if d := t.TF + t.TA; d > 0 {
		r.ProcessorLowerBound = sanitize(2 + 2*t.TC/d)
	}
	r.Saturation = sanitize(model.Saturation(p, t))

	if a.elapsed > 0 && a.completed > 0 {
		r.ObservedSpeedup = sanitize(model.SerialTime(a.completed, t) / a.elapsed)
		if p > 0 {
			r.ObservedEfficiency = sanitize(r.ObservedSpeedup / float64(p))
		}
		r.MasterUtilization = sanitize(math.Min(a.busy/a.elapsed, 1))
		r.EffectiveProcessors = sanitize(model.EffectiveProcessors(r.ObservedSpeedup, t))
		r.DriftScore = sanitize(model.RelativeError(r.ObservedSpeedup, r.PredictedSpeedup))
	}
	if a.cfg.Budget > a.completed {
		r.ETASeconds = sanitize(model.AsyncTimeRemaining(a.cfg.Budget-a.completed, p, t))
	}

	r.Workers, r.Stragglers = a.workerReports()
	r.Quality = a.qualityReport()
	return r
}

// workerReports builds the per-worker view and the straggler list;
// callers hold a.mu. A worker is a straggler when its decayed T_F is
// at least StragglerFactor times the fleet median, the worker has
// MinSamples evaluations, and at least three workers are comparable
// (a median of two is meaningless).
func (a *Advisor) workerReports() ([]WorkerReport, []int) {
	if len(a.workers) == 0 {
		return nil, nil
	}
	ids := make([]int, 0, len(a.workers))
	for id := range a.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Fleet median and MAD over workers with enough samples.
	var eligible []float64
	for _, id := range ids {
		ws := a.workers[id]
		if ws.tf.Count() >= a.cfg.MinSamples {
			eligible = append(eligible, ws.tf.Value())
		}
	}
	med := median(eligible)
	var mad float64
	if len(eligible) >= 3 {
		dev := make([]float64, len(eligible))
		for i, v := range eligible {
			dev[i] = math.Abs(v - med)
		}
		mad = median(dev) * 1.4826 // consistency constant for normal data
	}

	reports := make([]WorkerReport, 0, len(ids))
	var stragglers []int
	for _, id := range ids {
		ws := a.workers[id]
		wr := WorkerReport{
			Worker:    id,
			Evals:     ws.tf.Count(),
			TFDecayed: sanitize(ws.tf.Value()),
		}
		if med > 0 {
			wr.Ratio = sanitize(wr.TFDecayed / med)
		}
		if mad > 0 {
			wr.ZScore = sanitize((wr.TFDecayed - med) / mad)
		}
		if len(eligible) >= 3 && ws.tf.Count() >= a.cfg.MinSamples &&
			med > 0 && wr.TFDecayed >= a.cfg.StragglerFactor*med {
			wr.Straggler = true
			stragglers = append(stragglers, id)
		}
		reports = append(reports, wr)
	}
	return reports, stragglers
}

// mirror publishes the headline figures as registry gauges; callers
// hold a.mu (gauges themselves are atomic, but cfg is guarded).
func (a *Advisor) mirror(r Report) {
	a.g.predSpeedup.Set(r.PredictedSpeedup)
	a.g.obsSpeedup.Set(r.ObservedSpeedup)
	a.g.predEff.Set(r.PredictedEfficiency)
	a.g.obsEff.Set(r.ObservedEfficiency)
	a.g.drift.Set(r.DriftSmoothed)
	a.g.stragglers.Set(float64(len(r.Stragglers)))
	a.g.pUB.Set(r.ProcessorUpperBound)
	a.g.pLB.Set(r.ProcessorLowerBound)
	a.g.effective.Set(r.EffectiveProcessors)
	a.g.utilization.Set(r.MasterUtilization)
}

// Handler serves the current Report as JSON — mounted on the obs debug
// mux as /debug/scaling via obs.WithHandler.
func (a *Advisor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Report()) //nolint:errcheck // best-effort, like /debug/vars
	})
}

// median returns the middle value of vs (mean of the middle two for
// even lengths), 0 when empty. vs is sorted in place.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	m := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[m]
	}
	return (vs[m-1] + vs[m]) / 2
}

// sanitize clamps non-finite values to 0 so Report always marshals
// (encoding/json rejects NaN and ±Inf).
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
