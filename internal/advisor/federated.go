package advisor

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"borgmoea/internal/model"
)

// Federation rolls the advisors of a multi-master (island) run up into
// one federated scalability analysis. Each island master owns a plain
// Advisor fed by its own driver; the Federation only aggregates their
// Reports on demand, so it adds no contention to the hot paths.
//
// The headline comparison is the one ROADMAP item 1 asks for: the
// paper's Eq. 4 bound P_UB = T_F/(2·T_C + T_A) caps the processors a
// *single* master can use, and the federated roll-up shows the
// aggregate effective processor count of k masters sailing past it.
type Federation struct {
	mu       sync.Mutex
	advisors []*Advisor
}

// NewFederation returns an empty roll-up; islands join via Attach.
func NewFederation() *Federation { return &Federation{} }

// Attach adds one island's advisor to the roll-up. Island indices in
// reports follow attach order. Nil-safe on both sides.
func (f *Federation) Attach(a *Advisor) {
	if f == nil || a == nil {
		return
	}
	f.mu.Lock()
	f.advisors = append(f.advisors, a)
	f.mu.Unlock()
}

// Islands returns the number of attached island advisors.
func (f *Federation) Islands() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.advisors)
}

// FederationReport is the federated scalability analysis: per-island
// Reports plus the aggregate view against the single-master ceiling.
type FederationReport struct {
	Islands    int     `json:"islands"`
	Processors int     `json:"processors"`
	Budget     uint64  `json:"budget,omitempty"`
	Completed  uint64  `json:"completed"`
	Elapsed    float64 `json:"elapsed_seconds"`

	// Times is the federation-wide fit, pooled across islands weighted
	// by each island's T_F sample count.
	Times FittedTimes `json:"times"`

	// SingleMasterPUB is Eq. 4 evaluated on the pooled fit — the
	// processor ceiling one master would have with these timings.
	SingleMasterPUB float64 `json:"single_master_processor_upper_bound"`
	// AggregateObservedSpeedup is the federation's speedup over the
	// serial algorithm: the summed serial-equivalent work of all
	// islands divided by the federation's elapsed time (the slowest
	// island, since they run concurrently).
	AggregateObservedSpeedup float64 `json:"aggregate_observed_speedup"`
	// AggregateEffectiveProcessors sums the islands' effective
	// processor counts — the number of fully-utilized processors the
	// federation behaves as (Eq. 2 inverted on each island's observed
	// speedup).
	AggregateEffectiveProcessors float64 `json:"aggregate_effective_processors"`
	// AggregateEfficiency is AggregateObservedSpeedup over the total
	// processor count.
	AggregateEfficiency float64 `json:"aggregate_efficiency"`
	// CeilingRatio is AggregateEffectiveProcessors over
	// SingleMasterPUB: > 1 means the federation is doing useful work
	// past the single-master bound — the point of federating.
	CeilingRatio float64 `json:"ceiling_ratio"`

	Reports []Report `json:"island_reports"`
}

// Report computes the current federated analysis. Safe to call at any
// time, from any goroutine.
func (f *Federation) Report() FederationReport {
	if f == nil {
		return FederationReport{}
	}
	f.mu.Lock()
	advisors := append([]*Advisor(nil), f.advisors...)
	f.mu.Unlock()

	fr := FederationReport{Islands: len(advisors)}
	var (
		wSum                float64
		tfSum, taSum, tcSum float64
		p50Sum, p90Sum      float64
		p99Sum, cvSum       float64
		serialSum           float64
	)
	for _, a := range advisors {
		r := a.Report()
		fr.Reports = append(fr.Reports, r)
		fr.Processors += r.Processors
		fr.Budget += r.Budget
		fr.Completed += r.Completed
		if r.Elapsed > fr.Elapsed {
			fr.Elapsed = r.Elapsed
		}
		fr.AggregateEffectiveProcessors += r.EffectiveProcessors
		t := model.Times{TF: r.Times.TF, TA: r.Times.TA, TC: r.Times.TC}
		serialSum += model.SerialTime(r.Completed, t)
		if w := float64(r.Times.Samples); w > 0 {
			wSum += w
			fr.Times.Samples += r.Times.Samples
			tfSum += w * r.Times.TF
			taSum += w * r.Times.TA
			tcSum += w * r.Times.TC
			p50Sum += w * r.Times.TFP50
			p90Sum += w * r.Times.TFP90
			p99Sum += w * r.Times.TFP99
			cvSum += w * r.Times.TFCV
		}
	}
	if wSum > 0 {
		fr.Times.TF = tfSum / wSum
		fr.Times.TA = taSum / wSum
		fr.Times.TC = tcSum / wSum
		fr.Times.TFP50 = p50Sum / wSum
		fr.Times.TFP90 = p90Sum / wSum
		fr.Times.TFP99 = p99Sum / wSum
		fr.Times.TFCV = cvSum / wSum
	}
	pooled := model.Times{TF: fr.Times.TF, TA: fr.Times.TA, TC: fr.Times.TC}
	if 2*pooled.TC+pooled.TA > 0 {
		fr.SingleMasterPUB = sanitize(model.ProcessorUpperBound(pooled))
	}
	if fr.Elapsed > 0 {
		fr.AggregateObservedSpeedup = sanitize(serialSum / fr.Elapsed)
	}
	if fr.Processors > 0 {
		fr.AggregateEfficiency = sanitize(fr.AggregateObservedSpeedup / float64(fr.Processors))
	}
	if fr.SingleMasterPUB > 0 {
		fr.CeilingRatio = sanitize(fr.AggregateEffectiveProcessors / fr.SingleMasterPUB)
	}
	return fr
}

// Handler serves the federated report as JSON — the federation-level
// /debug/scaling. ?island=i narrows to one island's plain Report.
func (f *Federation) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := req.URL.Query().Get("island"); q != "" {
			i, err := strconv.Atoi(q)
			f.mu.Lock()
			n := len(f.advisors)
			var a *Advisor
			if err == nil && i >= 0 && i < n {
				a = f.advisors[i]
			}
			f.mu.Unlock()
			if a == nil {
				http.Error(w, "island out of range", http.StatusNotFound)
				return
			}
			enc.Encode(a.Report()) //nolint:errcheck // best-effort, like /debug/vars
			return
		}
		enc.Encode(f.Report()) //nolint:errcheck // best-effort, like /debug/vars
	})
}
