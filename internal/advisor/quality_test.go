package advisor

import (
	"testing"

	"borgmoea/internal/obs"
)

func newQualityAdvisor(alerts *[]string) *Advisor {
	return New(Config{
		OnQualityAlert: func(msg string) { *alerts = append(*alerts, msg) },
	})
}

// TestQualityStallDetector: the stall alert must raise when ε-progress
// dries up relative to the run's own peak rate, and the scaling report
// must carry the search-health section.
func TestQualityStallDetector(t *testing.T) {
	var alerts []string
	adv := newQualityAdvisor(&alerts)
	// Healthy phase: brisk, steady ε-progress.
	for i := 0; i < 10; i++ {
		adv.ObserveQuality(obs.QualitySample{
			Seq: uint64(i), At: float64(i), EpsProgress: uint64(100 * i), Hypervolume: 0.5,
		})
	}
	if r := adv.Report(); r.Quality == nil || r.Quality.Stalled {
		t.Fatalf("healthy phase misreported: %+v", r.Quality)
	}
	// Stalled phase: no new ε-boxes for a long stretch.
	for i := 10; i < 40; i++ {
		adv.ObserveQuality(obs.QualitySample{
			Seq: uint64(i), At: float64(i), EpsProgress: 1000, Hypervolume: 0.5,
		})
	}
	r := adv.Report()
	if r.Quality == nil || !r.Quality.Stalled {
		t.Fatalf("stall not detected: %+v", r.Quality)
	}
	if len(alerts) == 0 || alerts[0] != "search stalled" {
		t.Fatalf("stall alert not fired: %v", alerts)
	}
	if r.Quality.EpsRatePeak <= 0 || r.Quality.EpsRateSmoothed >= r.Quality.EpsRatePeak {
		t.Errorf("rate bookkeeping wrong: smoothed %v, peak %v", r.Quality.EpsRateSmoothed, r.Quality.EpsRatePeak)
	}
}

// TestQualityRestartRegression: a restart that fails to win back its
// pre-restart hypervolume must raise the regression alert; recovery
// must clear both the flag and the episode.
func TestQualityRestartRegression(t *testing.T) {
	var alerts []string
	adv := newQualityAdvisor(&alerts)
	for i := 0; i < 8; i++ {
		adv.ObserveQuality(obs.QualitySample{
			Seq: uint64(i), At: float64(i), EpsProgress: uint64(10 * i), Hypervolume: 0.8,
		})
	}
	// Restart ran between samples; hypervolume collapsed.
	adv.ObserveQuality(obs.QualitySample{Seq: 8, At: 8, EpsProgress: 90, Hypervolume: 0.4, Restarts: 1})
	r := adv.Report()
	if r.Quality == nil || !r.Quality.Regressed {
		t.Fatalf("regression not detected: %+v", r.Quality)
	}
	if r.Quality.PreRestartHypervolume != 0.8 {
		t.Errorf("pre-restart hypervolume %v, want 0.8", r.Quality.PreRestartHypervolume)
	}
	found := false
	for _, a := range alerts {
		if a == "quality regressed after restart" {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression alert not fired: %v", alerts)
	}
	// Recovery past the pre-restart level clears the flag and settles
	// the episode.
	adv.ObserveQuality(obs.QualitySample{Seq: 9, At: 9, EpsProgress: 100, Hypervolume: 0.85, Restarts: 1})
	if r := adv.Report(); r.Quality.Regressed {
		t.Fatal("regression flag not cleared after recovery")
	}
}

// TestQualityAlertsEdgeTriggered: holding a stalled state must not
// re-fire the callback every sample.
func TestQualityAlertsEdgeTriggered(t *testing.T) {
	var alerts []string
	adv := newQualityAdvisor(&alerts)
	for i := 0; i < 10; i++ {
		adv.ObserveQuality(obs.QualitySample{At: float64(i), EpsProgress: uint64(100 * i)})
	}
	for i := 10; i < 60; i++ {
		adv.ObserveQuality(obs.QualitySample{At: float64(i), EpsProgress: 1000})
	}
	if len(alerts) != 1 {
		t.Fatalf("stall alert fired %d times, want once: %v", len(alerts), alerts)
	}
}

// TestQualityNilAdvisor: feeding samples to a nil advisor is a no-op.
func TestQualityNilAdvisor(t *testing.T) {
	var adv *Advisor
	adv.ObserveQuality(obs.QualitySample{EpsProgress: 1})
	if r := adv.Report(); r.Quality != nil {
		t.Fatal("nil advisor reported quality health")
	}
}
