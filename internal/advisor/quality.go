package advisor

import (
	"borgmoea/internal/obs"
)

// The quality health detector: where the rest of the advisor fits the
// paper's timing model, this part watches the search itself via the
// obs.QualitySampler feed (wire ObserveQuality to
// QualityConfig.OnSample). Two alerts, next to the drift and straggler
// alerts:
//
//   - "search stalled": the smoothed ε-progress rate has collapsed to
//     a small fraction of its own peak. The threshold is
//     self-normalizing — rates depend on problem, cadence and clock,
//     so the run's own best rate is the only meaningful yardstick.
//   - "quality regressed after restart": an adaptive restart ran and
//     the hypervolume is still below its pre-restart level (beyond
//     tolerance). Restarts trade short-term quality for diversity;
//     this flags the ones that have not paid off yet.

// Quality-health defaults for the zero Config value.
const (
	// DefaultStallFraction: stalled when the smoothed ε-progress rate
	// drops below this fraction of its peak.
	DefaultStallFraction = 0.1
	// DefaultQualityWarmup is how many quality samples must arrive
	// before either alert can fire.
	DefaultQualityWarmup = 5
	// DefaultRegressionTolerance is the relative hypervolume shortfall
	// vs the pre-restart level that counts as a regression.
	DefaultRegressionTolerance = 0.02
	// qualityRateAlpha smooths the per-sample ε-progress rate.
	qualityRateAlpha = 0.3
)

// Gauge names the quality detector registers on Config.Registry.
const (
	MetricQualityStalled   = "advisor.quality_stalled"
	MetricQualityRegressed = "advisor.quality_regressed"
	MetricEpsRateSmoothed  = "advisor.eps_progress_rate_smoothed"
)

// QualityHealth is the search-health section of a Report, present
// once at least one quality sample has been observed.
type QualityHealth struct {
	// Samples counts quality samples observed.
	Samples uint64 `json:"samples"`
	// Hypervolume and EpsProgress echo the latest sample.
	Hypervolume float64 `json:"hypervolume"`
	EpsProgress uint64  `json:"eps_progress"`
	// EpsRateSmoothed is the EWMA ε-progress rate (boxes per
	// driver-second); EpsRatePeak its run maximum.
	EpsRateSmoothed float64 `json:"eps_rate_smoothed"`
	EpsRatePeak     float64 `json:"eps_rate_peak"`
	// Restarts echoes the cumulative restart count;
	// PreRestartHypervolume is the level just before the latest one.
	Restarts              uint64  `json:"restarts"`
	PreRestartHypervolume float64 `json:"pre_restart_hypervolume,omitempty"`
	// Stalled: ε-progress has collapsed relative to the run's own
	// peak rate. Regressed: hypervolume has not recovered its
	// pre-restart level.
	Stalled   bool `json:"stalled"`
	Regressed bool `json:"regressed"`
}

// qualityState is the advisor's stall/regression tracking, guarded by
// the advisor mutex like everything else.
type qualityState struct {
	samples  uint64
	last     obs.QualitySample
	rate     *obs.EWMA
	peakRate float64

	restartSeen bool
	preHV       float64 // hypervolume just before the latest restart

	stalled   bool
	regressed bool

	gStalled, gRegressed, gRate *obs.Gauge
}

// ObserveQuality feeds one quality sample into the stall/regression
// detector — wire it to obs.QualityConfig.OnSample. Nil-safe.
// Alert callbacks (Config.OnQualityAlert) fire on rising edges,
// outside the advisor's lock.
func (a *Advisor) ObserveQuality(q obs.QualitySample) {
	if a == nil {
		return
	}
	a.mu.Lock()
	s := &a.quality
	if s.rate == nil {
		s.rate = obs.NewEWMA(qualityRateAlpha)
		s.gStalled = a.cfg.Registry.Gauge(MetricQualityStalled)
		s.gRegressed = a.cfg.Registry.Gauge(MetricQualityRegressed)
		s.gRate = a.cfg.Registry.Gauge(MetricEpsRateSmoothed)
	}
	if s.samples > 0 {
		if dt := q.At - s.last.At; dt > 0 {
			s.rate.Observe(float64(q.EpsProgress-s.last.EpsProgress) / dt)
			if v := s.rate.Value(); v > s.peakRate {
				s.peakRate = v
			}
		}
		if q.Restarts > s.last.Restarts {
			// A restart ran since the previous sample: remember the
			// level it has to win back.
			s.restartSeen = true
			s.preHV = s.last.Hypervolume
		}
	}
	s.samples++
	s.last = q

	warm := s.samples >= uint64(a.cfg.QualityWarmup)
	wasStalled, wasRegressed := s.stalled, s.regressed
	s.stalled = warm && s.peakRate > 0 &&
		s.rate.Value() < a.cfg.StallFraction*s.peakRate
	s.regressed = warm && s.restartSeen &&
		q.Hypervolume < s.preHV*(1-a.cfg.RegressionTolerance)
	if s.regressed {
		// Still underwater; keep watching.
	} else if s.restartSeen && q.Hypervolume >= s.preHV {
		// Fully recovered: this restart episode is settled.
		s.restartSeen = false
	}

	s.gRate.Set(sanitize(s.rate.Value()))
	s.gStalled.Set(b2f(s.stalled))
	s.gRegressed.Set(b2f(s.regressed))

	var alerts []string
	if s.stalled && !wasStalled {
		alerts = append(alerts, "search stalled")
	}
	if s.regressed && !wasRegressed {
		alerts = append(alerts, "quality regressed after restart")
	}
	cb := a.cfg.OnQualityAlert
	a.mu.Unlock()

	if cb != nil {
		for _, msg := range alerts {
			cb(msg)
		}
	}
}

// qualityReport assembles the Report section; callers hold a.mu.
func (a *Advisor) qualityReport() *QualityHealth {
	s := &a.quality
	if s.samples == 0 {
		return nil
	}
	return &QualityHealth{
		Samples:               s.samples,
		Hypervolume:           sanitize(s.last.Hypervolume),
		EpsProgress:           s.last.EpsProgress,
		EpsRateSmoothed:       sanitize(s.rate.Value()),
		EpsRatePeak:           sanitize(s.peakRate),
		Restarts:              s.last.Restarts,
		PreRestartHypervolume: sanitize(s.preHV),
		Stalled:               s.stalled,
		Regressed:             s.regressed,
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
