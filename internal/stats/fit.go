package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrBadSample reports that a sample cannot be fit (too small, or
// violating a family's support).
var ErrBadSample = errors.New("stats: sample unsuitable for fitting")

// LogLikelihood returns the total log-likelihood of the sample under
// d: sum over x of d.LogPDF(x).
func LogLikelihood(d Distribution, xs []float64) float64 {
	ll := 0.0
	for _, x := range xs {
		ll += d.LogPDF(x)
	}
	return ll
}

// Fit holds one fitted candidate distribution and its goodness scores.
type Fit struct {
	Dist          Distribution
	LogLikelihood float64
	NumParams     int
	AIC           float64 // 2k - 2*loglik
}

// FitNormal returns the maximum-likelihood normal fit.
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) < 2 {
		return Normal{}, ErrBadSample
	}
	mean := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(xs))) // MLE uses n denominator
	if sigma == 0 {
		return Normal{}, ErrBadSample
	}
	return Normal{Mu: mean, Sigma: sigma}, nil
}

// FitLogNormal returns the maximum-likelihood log-normal fit. The
// sample must be strictly positive.
func FitLogNormal(xs []float64) (LogNormal, error) {
	if len(xs) < 2 {
		return LogNormal{}, ErrBadSample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogNormal{}, ErrBadSample
		}
		logs[i] = math.Log(x)
	}
	n, err := FitNormal(logs)
	if err != nil {
		return LogNormal{}, err
	}
	return LogNormal{Mu: n.Mu, Sigma: n.Sigma}, nil
}

// FitExponential returns the maximum-likelihood exponential fit. The
// sample must be non-negative with positive mean.
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) == 0 {
		return Exponential{}, ErrBadSample
	}
	for _, x := range xs {
		if x < 0 {
			return Exponential{}, ErrBadSample
		}
	}
	mean := Mean(xs)
	if mean <= 0 {
		return Exponential{}, ErrBadSample
	}
	return Exponential{Rate: 1 / mean}, nil
}

// FitUniform returns the maximum-likelihood uniform fit
// [min, max+ulp). The width is nudged so the sample maximum stays in
// the half-open support.
func FitUniform(xs []float64) (Uniform, error) {
	if len(xs) < 2 {
		return Uniform{}, ErrBadSample
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return Uniform{}, ErrBadSample
	}
	return Uniform{Lo: lo, Hi: math.Nextafter(hi, math.Inf(1))}, nil
}

// digamma returns the digamma function ψ(x) for x > 0, via the
// recurrence ψ(x) = ψ(x+1) - 1/x and an asymptotic expansion.
func digamma(x float64) float64 {
	result := 0.0
	for x < 12 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic series: ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6)
	result += math.Log(x) - 0.5*inv - inv2*(1.0/12-inv2*(1.0/120-inv2/252))
	return result
}

// trigamma returns ψ'(x) for x > 0.
func trigamma(x float64) float64 {
	result := 0.0
	for x < 12 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic: 1/x + 1/(2x^2) + 1/(6x^3) - 1/(30x^5) + 1/(42x^7)
	result += inv + 0.5*inv2 + inv2*inv*(1.0/6-inv2*(1.0/30-inv2/42))
	return result
}

// FitGamma returns the maximum-likelihood gamma fit using Newton
// iteration on the shape (Minka's update). The sample must be strictly
// positive.
func FitGamma(xs []float64) (Gamma, error) {
	if len(xs) < 2 {
		return Gamma{}, ErrBadSample
	}
	mean := 0.0
	meanLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			return Gamma{}, ErrBadSample
		}
		mean += x
		meanLog += math.Log(x)
	}
	n := float64(len(xs))
	mean /= n
	meanLog /= n
	s := math.Log(mean) - meanLog
	if s <= 0 {
		// Zero spread on the log scale: degenerate sample.
		return Gamma{}, ErrBadSample
	}
	// Initial guess (Minka 2002).
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 100; i++ {
		num := math.Log(k) - digamma(k) - s
		den := 1/k - trigamma(k)
		next := 1 / (1/k + num/(k*k*den))
		if next <= 0 || math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) {
		return Gamma{}, ErrBadSample
	}
	return Gamma{Shape: k, Scale: mean / k}, nil
}

// FitWeibull returns the maximum-likelihood Weibull fit using Newton
// iteration on the shape. The sample must be strictly positive.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 2 {
		return Weibull{}, ErrBadSample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Weibull{}, ErrBadSample
		}
		logs[i] = math.Log(x)
	}
	n := float64(len(xs))
	meanLog := Mean(logs)
	// Solve f(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog = 0.
	k := 1.0
	// A method-of-moments style start: k ≈ 1.2 / stddev(log x).
	sd := 0.0
	for _, l := range logs {
		d := l - meanLog
		sd += d * d
	}
	sd = math.Sqrt(sd / n)
	if sd > 0 {
		k = 1.2 / sd
	}
	for i := 0; i < 200; i++ {
		var sxk, sxkl, sxkl2 float64
		for j, x := range xs {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * logs[j]
			sxkl2 += xk * logs[j] * logs[j]
		}
		f := sxkl/sxk - 1/k - meanLog
		fp := (sxkl2*sxk-sxkl*sxkl)/(sxk*sxk) + 1/(k*k)
		if fp == 0 {
			break
		}
		next := k - f/fp
		if next <= 0 || math.IsNaN(next) || math.IsInf(next, 0) {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) {
		return Weibull{}, ErrBadSample
	}
	sxk := 0.0
	for _, x := range xs {
		sxk += math.Pow(x, k)
	}
	scale := math.Pow(sxk/n, 1/k)
	return Weibull{Shape: k, Scale: scale}, nil
}

// numParams maps a fitted family to its parameter count for AIC.
func numParams(d Distribution) int {
	switch d.(type) {
	case Constant:
		return 1
	case Exponential:
		return 1
	default:
		return 2
	}
}

// FitAll fits every applicable candidate family to the sample and
// returns the fits sorted by descending log-likelihood. Families whose
// support the sample violates are silently skipped. The paper's
// procedure — fit in R, compare log-likelihoods — maps to FitAll +
// SelectBest.
func FitAll(xs []float64) []Fit {
	var fits []Fit
	add := func(d Distribution, err error) {
		if err != nil {
			return
		}
		ll := LogLikelihood(d, xs)
		if math.IsNaN(ll) || math.IsInf(ll, 1) {
			return
		}
		k := numParams(d)
		fits = append(fits, Fit{
			Dist:          d,
			LogLikelihood: ll,
			NumParams:     k,
			AIC:           2*float64(k) - 2*ll,
		})
	}
	if len(xs) == 0 {
		return nil
	}
	// Degenerate sample: the constant "distribution" is the only honest
	// description and has infinite density; report just it.
	if allEqual(xs) {
		return []Fit{{Dist: NewConstant(xs[0]), LogLikelihood: 0, NumParams: 1, AIC: 2}}
	}
	if d, err := FitNormal(xs); err == nil {
		add(d, nil)
	}
	if d, err := FitLogNormal(xs); err == nil {
		add(d, nil)
	}
	if d, err := FitExponential(xs); err == nil {
		add(d, nil)
	}
	if d, err := FitUniform(xs); err == nil {
		add(d, nil)
	}
	if d, err := FitGamma(xs); err == nil {
		add(d, nil)
	}
	if d, err := FitWeibull(xs); err == nil {
		add(d, nil)
	}
	sort.Slice(fits, func(i, j int) bool {
		return fits[i].LogLikelihood > fits[j].LogLikelihood
	})
	return fits
}

// SelectBest fits all candidate families and returns the one with the
// highest log-likelihood, mirroring the paper's model-selection step.
func SelectBest(xs []float64) (Fit, error) {
	fits := FitAll(xs)
	if len(fits) == 0 {
		return Fit{}, ErrBadSample
	}
	return fits[0], nil
}

func allEqual(xs []float64) bool {
	for _, x := range xs[1:] {
		if x != xs[0] {
			return false
		}
	}
	return true
}
