// Package stats provides the probability distributions and the
// distribution-fitting machinery the paper's simulation model depends
// on. The paper sampled timing data (T_F, T_A, T_C) on TACC Ranger and
// used R to fit candidate distributions by maximum likelihood,
// selecting the best by log-likelihood; Fit and SelectBest reproduce
// that workflow.
package stats

import (
	"fmt"
	"math"

	"borgmoea/internal/rng"
)

// Distribution is a univariate probability distribution over
// non-negative durations (seconds). Implementations must be usable
// from a single goroutine at a time.
type Distribution interface {
	// Sample draws one value using the supplied random source.
	Sample(r *rng.Source) float64
	// LogPDF returns the log of the density (or log probability mass
	// for degenerate distributions) at x. It returns -Inf outside the
	// support.
	LogPDF(x float64) float64
	// Mean returns the expected value.
	Mean() float64
	// Var returns the variance.
	Var() float64
	// Name returns a short identifier such as "gamma".
	Name() string
	// String returns a human-readable parameterization.
	String() string
}

// CV returns the coefficient of variation (stddev/mean) of d, or 0 if
// the mean is 0.
func CV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return math.Sqrt(d.Var()) / m
}

// Constant is the degenerate distribution that always returns Value.
// It models the analytical-model assumption of fixed T_F, T_A, T_C.
type Constant struct{ Value float64 }

// NewConstant returns the degenerate distribution at v.
func NewConstant(v float64) Constant { return Constant{Value: v} }

func (c Constant) Sample(*rng.Source) float64 { return c.Value }

func (c Constant) LogPDF(x float64) float64 {
	if x == c.Value {
		return 0 // log(1): all mass at the point
	}
	return math.Inf(-1)
}

func (c Constant) Mean() float64  { return c.Value }
func (c Constant) Var() float64   { return 0 }
func (c Constant) Name() string   { return "constant" }
func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// NewUniform returns a uniform distribution on [lo, hi). It panics if
// hi <= lo.
func NewUniform(lo, hi float64) Uniform {
	if hi <= lo {
		panic("stats: NewUniform requires hi > lo")
	}
	return Uniform{Lo: lo, Hi: hi}
}

func (u Uniform) Sample(r *rng.Source) float64 { return r.Range(u.Lo, u.Hi) }

func (u Uniform) LogPDF(x float64) float64 {
	if x < u.Lo || x >= u.Hi {
		return math.Inf(-1)
	}
	return -math.Log(u.Hi - u.Lo)
}

func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }
func (u Uniform) Var() float64  { d := u.Hi - u.Lo; return d * d / 12 }
func (u Uniform) Name() string  { return "uniform" }
func (u Uniform) String() string {
	return fmt.Sprintf("uniform(%g, %g)", u.Lo, u.Hi)
}

// Normal is the Gaussian distribution. Sampled values are not
// truncated; use TruncatedNormal for durations that must stay
// non-negative.
type Normal struct{ Mu, Sigma float64 }

// NewNormal returns a normal distribution. It panics if sigma <= 0.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 {
		panic("stats: NewNormal requires sigma > 0")
	}
	return Normal{Mu: mu, Sigma: sigma}
}

func (n Normal) Sample(r *rng.Source) float64 { return r.NormMS(n.Mu, n.Sigma) }

func (n Normal) LogPDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return -0.5*z*z - math.Log(n.Sigma) - 0.5*math.Log(2*math.Pi)
}

func (n Normal) Mean() float64  { return n.Mu }
func (n Normal) Var() float64   { return n.Sigma * n.Sigma }
func (n Normal) Name() string   { return "normal" }
func (n Normal) String() string { return fmt.Sprintf("normal(%g, %g)", n.Mu, n.Sigma) }

// TruncatedNormal is a normal distribution resampled to be
// non-negative. It is the distribution used for the paper's controlled
// delays (nominal T_F with coefficient of variation 0.1): with CV 0.1
// the truncation probability is ~1e-23, so moments are effectively the
// parent's. LogPDF uses the untruncated density, which is exact to the
// same degree.
type TruncatedNormal struct{ Mu, Sigma float64 }

// NewTruncatedNormal returns a non-negative normal distribution. It
// panics if sigma <= 0 or mu < 0.
func NewTruncatedNormal(mu, sigma float64) TruncatedNormal {
	if sigma <= 0 {
		panic("stats: NewTruncatedNormal requires sigma > 0")
	}
	if mu < 0 {
		panic("stats: NewTruncatedNormal requires mu >= 0")
	}
	return TruncatedNormal{Mu: mu, Sigma: sigma}
}

func (n TruncatedNormal) Sample(r *rng.Source) float64 {
	for {
		x := r.NormMS(n.Mu, n.Sigma)
		if x >= 0 {
			return x
		}
	}
}

func (n TruncatedNormal) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return Normal{Mu: n.Mu, Sigma: n.Sigma}.LogPDF(x)
}

func (n TruncatedNormal) Mean() float64 { return n.Mu }
func (n TruncatedNormal) Var() float64  { return n.Sigma * n.Sigma }
func (n TruncatedNormal) Name() string  { return "truncnormal" }
func (n TruncatedNormal) String() string {
	return fmt.Sprintf("truncnormal(%g, %g)", n.Mu, n.Sigma)
}

// LogNormal is the log-normal distribution: exp(Normal(Mu, Sigma)).
type LogNormal struct{ Mu, Sigma float64 }

// NewLogNormal returns a log-normal distribution parameterized on the
// log scale. It panics if sigma <= 0.
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma <= 0 {
		panic("stats: NewLogNormal requires sigma > 0")
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

func (l LogNormal) Sample(r *rng.Source) float64 {
	return math.Exp(r.NormMS(l.Mu, l.Sigma))
}

func (l LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return -0.5*z*z - math.Log(x*l.Sigma) - 0.5*math.Log(2*math.Pi)
}

func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

func (l LogNormal) Name() string { return "lognormal" }
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(%g, %g)", l.Mu, l.Sigma)
}

// Exponential is the exponential distribution with the given Rate.
type Exponential struct{ Rate float64 }

// NewExponential returns an exponential distribution. It panics if
// rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic("stats: NewExponential requires rate > 0")
	}
	return Exponential{Rate: rate}
}

func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp(e.Rate) }

func (e Exponential) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(e.Rate) - e.Rate*x
}

func (e Exponential) Mean() float64  { return 1 / e.Rate }
func (e Exponential) Var() float64   { return 1 / (e.Rate * e.Rate) }
func (e Exponential) Name() string   { return "exponential" }
func (e Exponential) String() string { return fmt.Sprintf("exponential(%g)", e.Rate) }

// Gamma is the gamma distribution with the given Shape (k) and Scale
// (θ).
type Gamma struct{ Shape, Scale float64 }

// NewGamma returns a gamma distribution. It panics on non-positive
// parameters.
func NewGamma(shape, scale float64) Gamma {
	if shape <= 0 || scale <= 0 {
		panic("stats: NewGamma requires positive parameters")
	}
	return Gamma{Shape: shape, Scale: scale}
}

// GammaFromMeanCV returns the gamma distribution with the given mean
// and coefficient of variation. This is the paper's controlled-delay
// shape: a strictly positive distribution with precisely dialed CV.
func GammaFromMeanCV(mean, cv float64) Gamma {
	if mean <= 0 || cv <= 0 {
		panic("stats: GammaFromMeanCV requires positive mean and cv")
	}
	shape := 1 / (cv * cv)
	return Gamma{Shape: shape, Scale: mean / shape}
}

func (g Gamma) Sample(r *rng.Source) float64 { return r.Gamma(g.Shape, g.Scale) }

func (g Gamma) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(g.Shape)
	return (g.Shape-1)*math.Log(x) - x/g.Scale - lg - g.Shape*math.Log(g.Scale)
}

func (g Gamma) Mean() float64 { return g.Shape * g.Scale }
func (g Gamma) Var() float64  { return g.Shape * g.Scale * g.Scale }
func (g Gamma) Name() string  { return "gamma" }
func (g Gamma) String() string {
	return fmt.Sprintf("gamma(shape=%g, scale=%g)", g.Shape, g.Scale)
}

// Weibull is the Weibull distribution with the given Shape (k) and
// Scale (λ).
type Weibull struct{ Shape, Scale float64 }

// NewWeibull returns a Weibull distribution. It panics on non-positive
// parameters.
func NewWeibull(shape, scale float64) Weibull {
	if shape <= 0 || scale <= 0 {
		panic("stats: NewWeibull requires positive parameters")
	}
	return Weibull{Shape: shape, Scale: scale}
}

func (w Weibull) Sample(r *rng.Source) float64 {
	u := 1 - r.Float64() // in (0,1]
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

func (w Weibull) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := x / w.Scale
	return math.Log(w.Shape/w.Scale) + (w.Shape-1)*math.Log(z) - math.Pow(z, w.Shape)
}

func (w Weibull) Mean() float64 {
	g, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * math.Exp(g)
}

func (w Weibull) Var() float64 {
	g2, _ := math.Lgamma(1 + 2/w.Shape)
	g1, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * w.Scale * (math.Exp(g2) - math.Exp(2*g1))
}

func (w Weibull) Name() string { return "weibull" }
func (w Weibull) String() string {
	return fmt.Sprintf("weibull(shape=%g, scale=%g)", w.Shape, w.Scale)
}

// Shifted wraps a distribution and adds a constant offset to every
// sample: Offset + Base. It models a fixed floor (e.g. a minimum
// service time) plus stochastic jitter.
type Shifted struct {
	Base   Distribution
	Offset float64
}

// NewShifted returns base shifted right by offset.
func NewShifted(base Distribution, offset float64) Shifted {
	return Shifted{Base: base, Offset: offset}
}

func (s Shifted) Sample(r *rng.Source) float64 { return s.Offset + s.Base.Sample(r) }
func (s Shifted) LogPDF(x float64) float64     { return s.Base.LogPDF(x - s.Offset) }
func (s Shifted) Mean() float64                { return s.Offset + s.Base.Mean() }
func (s Shifted) Var() float64                 { return s.Base.Var() }
func (s Shifted) Name() string                 { return "shifted+" + s.Base.Name() }
func (s Shifted) String() string {
	return fmt.Sprintf("%g + %s", s.Offset, s.Base.String())
}
