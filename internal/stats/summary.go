package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Stddev   float64
	Min      float64
	Max      float64
	Median   float64
	Q1, Q3   float64
}

// Summarize computes descriptive statistics for xs. It panics on an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Stddev = math.Sqrt(s.Variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s
}

// CV returns the sample coefficient of variation.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g med=%.6g max=%.6g",
		s.N, s.Mean, s.Stddev, s.Min, s.Median, s.Max)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an
// already-sorted sample using linear interpolation between order
// statistics. It panics on an empty sample or q outside [0,1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q outside [0,1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram bins xs into n equal-width bins over [min, max] and
// returns the bin counts and the bin edges (n+1 values). It panics if
// n <= 0 or the sample is empty.
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	if len(xs) == 0 {
		panic("stats: Histogram of empty sample")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1 // all mass in one bin
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, edges
}
