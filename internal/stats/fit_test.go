package stats

import (
	"math"
	"testing"

	"borgmoea/internal/rng"
)

// draw produces n samples from d.
func draw(d Distribution, n int, seed uint64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func TestFitNormalRecovers(t *testing.T) {
	xs := draw(NewNormal(5, 2), 50000, 1)
	got, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-5) > 0.05 || math.Abs(got.Sigma-2) > 0.05 {
		t.Errorf("FitNormal = %v, want ~normal(5,2)", got)
	}
}

func TestFitLogNormalRecovers(t *testing.T) {
	xs := draw(NewLogNormal(-2, 0.7), 50000, 2)
	got, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu+2) > 0.03 || math.Abs(got.Sigma-0.7) > 0.03 {
		t.Errorf("FitLogNormal = %v, want ~lognormal(-2,0.7)", got)
	}
}

func TestFitExponentialRecovers(t *testing.T) {
	xs := draw(NewExponential(30), 50000, 3)
	got, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rate-30)/30 > 0.03 {
		t.Errorf("FitExponential = %v, want rate ~30", got)
	}
}

func TestFitUniformRecovers(t *testing.T) {
	xs := draw(NewUniform(3, 9), 50000, 4)
	got, err := FitUniform(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lo-3) > 0.01 || math.Abs(got.Hi-9) > 0.01 {
		t.Errorf("FitUniform = %v, want ~uniform(3,9)", got)
	}
	// The sample maximum must lie inside the fitted support.
	maxX := xs[0]
	for _, x := range xs {
		if x > maxX {
			maxX = x
		}
	}
	if !(maxX < got.Hi) {
		t.Errorf("sample max %v not inside fitted support [%v,%v)", maxX, got.Lo, got.Hi)
	}
}

func TestFitGammaRecovers(t *testing.T) {
	cases := []Gamma{
		NewGamma(100, 1e-4), // the paper's CV=0.1 controlled-delay shape
		NewGamma(2, 3),
		NewGamma(0.7, 1),
	}
	for _, want := range cases {
		xs := draw(want, 50000, 5)
		got, err := FitGamma(xs)
		if err != nil {
			t.Fatalf("FitGamma(%v): %v", want, err)
		}
		if math.Abs(got.Shape-want.Shape)/want.Shape > 0.08 {
			t.Errorf("FitGamma shape = %v, want ~%v", got.Shape, want.Shape)
		}
		if math.Abs(got.Mean()-want.Mean())/want.Mean() > 0.03 {
			t.Errorf("FitGamma mean = %v, want ~%v", got.Mean(), want.Mean())
		}
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	cases := []Weibull{
		NewWeibull(1.5, 2),
		NewWeibull(4, 0.01),
	}
	for _, want := range cases {
		xs := draw(want, 50000, 6)
		got, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("FitWeibull(%v): %v", want, err)
		}
		if math.Abs(got.Shape-want.Shape)/want.Shape > 0.05 {
			t.Errorf("FitWeibull shape = %v, want ~%v", got.Shape, want.Shape)
		}
		if math.Abs(got.Scale-want.Scale)/want.Scale > 0.05 {
			t.Errorf("FitWeibull scale = %v, want ~%v", got.Scale, want.Scale)
		}
	}
}

func TestFitErrorsOnBadSamples(t *testing.T) {
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("FitNormal accepted a single observation")
	}
	if _, err := FitNormal([]float64{2, 2, 2}); err == nil {
		t.Error("FitNormal accepted a zero-variance sample")
	}
	if _, err := FitLogNormal([]float64{1, -1}); err == nil {
		t.Error("FitLogNormal accepted a negative observation")
	}
	if _, err := FitExponential([]float64{-0.1, 1}); err == nil {
		t.Error("FitExponential accepted a negative observation")
	}
	if _, err := FitGamma([]float64{0, 1}); err == nil {
		t.Error("FitGamma accepted a zero observation")
	}
	if _, err := FitWeibull([]float64{1, 0}); err == nil {
		t.Error("FitWeibull accepted a zero observation")
	}
	if _, err := FitUniform([]float64{3, 3}); err == nil {
		t.Error("FitUniform accepted a degenerate sample")
	}
}

// TestSelectBestPrefersTrueFamily draws from a known family and checks
// that model selection by log-likelihood picks it (or an equivalent
// special case).
func TestSelectBestPrefersTrueFamily(t *testing.T) {
	cases := []struct {
		gen        Distribution
		acceptable map[string]bool
	}{
		// Gamma with CV 0.1 looks normal-ish; accept gamma or its
		// close relatives that achieve near-identical likelihood.
		{NewGamma(2, 1), map[string]bool{"gamma": true, "weibull": true}},
		{NewExponential(5), map[string]bool{"exponential": true, "gamma": true, "weibull": true}},
		{NewNormal(100, 1), map[string]bool{"normal": true, "gamma": true, "lognormal": true, "weibull": true}},
		{NewLogNormal(0, 1.5), map[string]bool{"lognormal": true}},
		{NewUniform(10, 11), map[string]bool{"uniform": true}},
	}
	for _, c := range cases {
		xs := draw(c.gen, 20000, 7)
		best, err := SelectBest(xs)
		if err != nil {
			t.Fatalf("SelectBest(%s): %v", c.gen, err)
		}
		if !c.acceptable[best.Dist.Name()] {
			t.Errorf("SelectBest for %s picked %s (ll=%v)", c.gen, best.Dist, best.LogLikelihood)
		}
	}
}

func TestSelectBestConstantSample(t *testing.T) {
	best, err := SelectBest([]float64{6e-6, 6e-6, 6e-6, 6e-6})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := best.Dist.(Constant)
	if !ok {
		t.Fatalf("degenerate sample fitted as %s, want constant", best.Dist)
	}
	if c.Value != 6e-6 {
		t.Errorf("constant value = %v, want 6e-6", c.Value)
	}
}

func TestSelectBestEmptySample(t *testing.T) {
	if _, err := SelectBest(nil); err == nil {
		t.Error("SelectBest(nil) did not error")
	}
}

func TestFitAllSortedByLogLikelihood(t *testing.T) {
	xs := draw(NewGamma(3, 2), 5000, 8)
	fits := FitAll(xs)
	if len(fits) < 4 {
		t.Fatalf("expected several candidate fits, got %d", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].LogLikelihood > fits[i-1].LogLikelihood {
			t.Fatalf("fits not sorted by log-likelihood at %d", i)
		}
	}
	for _, f := range fits {
		wantAIC := 2*float64(f.NumParams) - 2*f.LogLikelihood
		if math.Abs(f.AIC-wantAIC) > 1e-9 {
			t.Errorf("%s: AIC = %v, want %v", f.Dist, f.AIC, wantAIC)
		}
	}
}

func TestDigammaTrigamma(t *testing.T) {
	// ψ(1) = -γ (Euler–Mascheroni), ψ'(1) = π²/6.
	const euler = 0.57721566490153286
	if got := digamma(1); math.Abs(got+euler) > 1e-10 {
		t.Errorf("digamma(1) = %v, want %v", got, -euler)
	}
	if got := trigamma(1); math.Abs(got-math.Pi*math.Pi/6) > 1e-10 {
		t.Errorf("trigamma(1) = %v, want π²/6", got)
	}
	// Recurrence ψ(x+1) = ψ(x) + 1/x at a few points.
	for _, x := range []float64{0.5, 2.3, 7.7, 40} {
		if got, want := digamma(x+1), digamma(x)+1/x; math.Abs(got-want) > 1e-9 {
			t.Errorf("digamma recurrence broken at %v: %v vs %v", x, got, want)
		}
		if got, want := trigamma(x+1), trigamma(x)-1/(x*x); math.Abs(got-want) > 1e-9 {
			t.Errorf("trigamma recurrence broken at %v: %v vs %v", x, got, want)
		}
	}
}

func TestLogLikelihoodMatchesManualSum(t *testing.T) {
	d := NewNormal(0, 1)
	xs := []float64{-1, 0, 2}
	want := d.LogPDF(-1) + d.LogPDF(0) + d.LogPDF(2)
	if got := LogLikelihood(d, xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogLikelihood = %v, want %v", got, want)
	}
}
