package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Variance != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummaryCV(t *testing.T) {
	s := Summary{Mean: 10, Stddev: 1}
	if s.CV() != 0.1 {
		t.Errorf("CV = %v, want 0.1", s.CV())
	}
	if (Summary{}).CV() != 0 {
		t.Error("CV of zero-mean summary should be 0")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	counts, edges := Histogram(xs, 2)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("histogram shape wrong: %v %v", counts, edges)
	}
	if counts[0]+counts[1] != len(xs) {
		t.Errorf("histogram lost samples: %v", counts)
	}
	// 0.5 lands exactly on the second bin's left edge.
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("counts = %v, want [3 3]", counts)
	}
	if edges[0] != 0 || edges[2] != 1 {
		t.Errorf("edges = %v, want [0 0.5 1]", edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _ := Histogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost samples: %v", counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Histogram(nil, 3) },
		func() { Histogram([]float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Histogram did not panic on bad input")
				}
			}()
			fn()
		}()
	}
}
