package stats

import (
	"math"
	"testing"
	"testing/quick"

	"borgmoea/internal/rng"
)

// sampleMoments draws n samples and returns the empirical mean and
// variance.
func sampleMoments(t *testing.T, d Distribution, n int, seed uint64) (mean, variance float64) {
	t.Helper()
	r := rng.New(seed)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

// checkMoments verifies that sampling matches the declared Mean/Var.
func checkMoments(t *testing.T, d Distribution) {
	t.Helper()
	const n = 100000
	mean, variance := sampleMoments(t, d, n, 12345)
	wantMean, wantVar := d.Mean(), d.Var()
	tolM := 0.03*math.Abs(wantMean) + 4*math.Sqrt(wantVar/n) + 1e-12
	if math.Abs(mean-wantMean) > tolM {
		t.Errorf("%s: sample mean %v, declared %v", d, mean, wantMean)
	}
	if wantVar > 0 {
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("%s: sample variance %v, declared %v", d, variance, wantVar)
		}
	} else if math.Abs(variance) > 1e-12 {
		t.Errorf("%s: sample variance %v, declared 0", d, variance)
	}
}

func TestMomentsAllFamilies(t *testing.T) {
	dists := []Distribution{
		NewConstant(0.01),
		NewUniform(2, 5),
		NewNormal(10, 3),
		NewTruncatedNormal(0.01, 0.001),
		NewLogNormal(-1, 0.5),
		NewExponential(100),
		NewGamma(100, 1e-4),
		GammaFromMeanCV(0.01, 0.1),
		NewWeibull(2, 3),
		NewShifted(NewExponential(10), 5),
	}
	for _, d := range dists {
		d := d
		t.Run(d.Name(), func(t *testing.T) { checkMoments(t, d) })
	}
}

func TestGammaFromMeanCV(t *testing.T) {
	g := GammaFromMeanCV(0.01, 0.1)
	if math.Abs(g.Mean()-0.01) > 1e-12 {
		t.Errorf("mean = %v, want 0.01", g.Mean())
	}
	if cv := CV(g); math.Abs(cv-0.1) > 1e-12 {
		t.Errorf("cv = %v, want 0.1", cv)
	}
}

func TestCVConstantIsZero(t *testing.T) {
	if cv := CV(NewConstant(5)); cv != 0 {
		t.Errorf("CV(constant) = %v, want 0", cv)
	}
	if cv := CV(NewConstant(0)); cv != 0 {
		t.Errorf("CV(constant 0) = %v, want 0", cv)
	}
}

func TestTruncatedNormalNonNegative(t *testing.T) {
	// Aggressive truncation regime: mean near zero.
	d := NewTruncatedNormal(0.001, 0.01)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		if x := d.Sample(r); x < 0 {
			t.Fatalf("truncated normal produced negative sample %v", x)
		}
	}
}

func TestLogPDFSupport(t *testing.T) {
	cases := []struct {
		d Distribution
		x float64
	}{
		{NewUniform(0, 1), -0.5},
		{NewUniform(0, 1), 1.5},
		{NewExponential(1), -1},
		{NewGamma(2, 1), 0},
		{NewGamma(2, 1), -1},
		{NewWeibull(2, 1), -1},
		{NewLogNormal(0, 1), 0},
		{NewTruncatedNormal(1, 1), -0.1},
		{NewConstant(3), 2.9},
	}
	for _, c := range cases {
		if lp := c.d.LogPDF(c.x); !math.IsInf(lp, -1) {
			t.Errorf("%s: LogPDF(%v) = %v, want -Inf (outside support)", c.d, c.x, lp)
		}
	}
}

func TestLogPDFIntegratesToOne(t *testing.T) {
	// Crude trapezoid check that the densities are normalized.
	cases := []struct {
		d      Distribution
		lo, hi float64
	}{
		{NewNormal(0, 1), -8, 8},
		{NewUniform(1, 3), 1, 3},
		{NewExponential(2), 0, 20},
		{NewGamma(3, 0.5), 0, 20},
		{NewWeibull(1.5, 2), 0, 30},
		{NewLogNormal(0, 0.5), 1e-9, 20},
	}
	for _, c := range cases {
		const steps = 200000
		h := (c.hi - c.lo) / steps
		sum := 0.0
		for i := 0; i <= steps; i++ {
			x := c.lo + float64(i)*h
			p := math.Exp(c.d.LogPDF(x))
			if i == 0 || i == steps {
				p /= 2
			}
			sum += p
		}
		sum *= h
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("%s: density integrates to %v, want ~1", c.d, sum)
		}
	}
}

func TestConstantLogPDF(t *testing.T) {
	c := NewConstant(2)
	if lp := c.LogPDF(2); lp != 0 {
		t.Errorf("LogPDF at the point mass = %v, want 0", lp)
	}
}

func TestShiftedProperties(t *testing.T) {
	base := NewGamma(4, 0.25)
	s := NewShifted(base, 10)
	if got, want := s.Mean(), 10+base.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("shifted mean = %v, want %v", got, want)
	}
	if got, want := s.Var(), base.Var(); math.Abs(got-want) > 1e-12 {
		t.Errorf("shifted variance = %v, want %v", got, want)
	}
	if got, want := s.LogPDF(11), base.LogPDF(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("shifted LogPDF = %v, want %v", got, want)
	}
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		if x := s.Sample(r); x < 10 {
			t.Fatalf("shifted sample %v below offset", x)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"uniform hi<=lo", func() { NewUniform(1, 1) }},
		{"normal sigma<=0", func() { NewNormal(0, 0) }},
		{"truncnormal sigma<=0", func() { NewTruncatedNormal(1, 0) }},
		{"truncnormal mu<0", func() { NewTruncatedNormal(-1, 1) }},
		{"lognormal sigma<=0", func() { NewLogNormal(0, -1) }},
		{"exponential rate<=0", func() { NewExponential(0) }},
		{"gamma shape<=0", func() { NewGamma(0, 1) }},
		{"gamma scale<=0", func() { NewGamma(1, 0) }},
		{"weibull shape<=0", func() { NewWeibull(0, 1) }},
		{"gammaFromMeanCV mean<=0", func() { GammaFromMeanCV(0, 0.1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor did not panic")
				}
			}()
			c.fn()
		})
	}
}

func TestWeibullSampleSupport(t *testing.T) {
	err := quick.Check(func(shapeRaw, scaleRaw uint16) bool {
		shape := 0.3 + float64(shapeRaw%50)/10
		scale := 0.1 + float64(scaleRaw%100)/10
		d := NewWeibull(shape, scale)
		r := rng.New(uint64(shapeRaw)<<16 | uint64(scaleRaw))
		for i := 0; i < 100; i++ {
			if d.Sample(r) < 0 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
