// Package rng provides deterministic, splittable pseudo-random number
// streams for the Borg MOEA and its simulation substrates.
//
// Every stochastic component in this repository (operators, problems,
// timing distributions, the discrete-event simulation) draws from its
// own Source so that experiments are reproducible and components can
// be reseeded independently. The generator is xoshiro256++ seeded via
// splitmix64, the combination recommended by Blackman & Vigna.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not
// safe for concurrent use; split independent streams with Split.
type Source struct {
	s [4]uint64
	// cached second Gaussian from the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the seed and returns the next output. It is used
// to initialize xoshiro state so that similar seeds yield unrelated
// streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	r.hasGauss = false
}

// Split derives an independent child stream. The child is a function of
// the parent's current state, and the parent is advanced, so successive
// Split calls return distinct streams.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal deviate via the Box-Muller transform.
func (r *Source) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormMS returns a normal deviate with the given mean and standard
// deviation.
func (r *Source) NormMS(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	// 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Gamma returns a gamma deviate with the given shape and scale using
// the Marsaglia-Tsang method (with Ahrens-Dieter boosting for
// shape < 1).
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (r *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample picks k distinct indices from [0, n) without replacement,
// appending them to dst and returning it. It panics if k > n.
func (r *Source) Sample(n, k int, dst []int) []int {
	if k > n {
		panic("rng: Sample with k > n")
	}
	// Floyd's algorithm: O(k) expected work, no O(n) scratch.
	chosen := make(map[int]struct{}, k)
	start := len(dst)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		dst = append(dst, t)
	}
	// Shuffle the selected tail so order is uniform too.
	tail := dst[start:]
	r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return dst
}
