package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("successive Split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7): value %d drawn %d times out of 70000, grossly non-uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormMS(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormMS(10,2) mean = %v, want ~10", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(4)
		if x < 0 {
			t.Fatalf("Exp produced negative value %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1.0, 1.0}, {2.5, 0.4}, {100, 0.001},
	}
	for _, c := range cases {
		r := New(23)
		const n = 200000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative value", c.shape, c.scale)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+1e-9 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+1e-9 {
			t.Errorf("Gamma(%v,%v) variance = %v, want ~%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0, 1) did not panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := make([]int, 50)
	r.Perm(p)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw) % (n + 1)
		idx := r.Sample(n, k, nil)
		if len(idx) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range idx {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleAppends(t *testing.T) {
	r := New(37)
	dst := []int{99}
	dst = r.Sample(10, 3, dst)
	if len(dst) != 4 || dst[0] != 99 {
		t.Fatalf("Sample did not append: %v", dst)
	}
}

func TestSamplePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2, 3, nil) did not panic")
		}
	}()
	New(1).Sample(2, 3, nil)
}

func TestSampleCoversAll(t *testing.T) {
	// Sampling n of n must be a permutation.
	r := New(41)
	idx := r.Sample(12, 12, nil)
	seen := make([]bool, 12)
	for _, v := range idx {
		if seen[v] {
			t.Fatalf("Sample(12,12) repeated index %d: %v", v, idx)
		}
		seen[v] = true
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Over many shuffles of [0,1,2], each of the 6 orderings should
	// appear roughly 1/6 of the time.
	r := New(43)
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 orderings, got %d", len(counts))
	}
	for ord, c := range counts {
		if c < n/6-n/60 || c > n/6+n/60 {
			t.Fatalf("ordering %v appeared %d times, want ~%d", ord, c, n/6)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(47)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v out of bounds", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Gamma(100, 0.001)
	}
	_ = sink
}
