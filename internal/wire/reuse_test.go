package wire

import (
	"bytes"
	"net"
	"testing"
	"time"

	"borgmoea/internal/obs"
)

// TestDecodeFrameIntoMatchesDecodeFrame: the scratch decode accepts
// exactly what the fresh decode accepts and produces byte-identical
// messages — including when the scratch is dirty from a previous,
// larger message, the case where slice/string reuse could smear state.
func TestDecodeFrameIntoMatchesDecodeFrame(t *testing.T) {
	var sc DecodeScratch
	dirty := []Message{
		&Evaluate{Lease: 1, Problem: "SOMETHING_ELSE", Vars: make([]float64, 64)},
		&Result{Lease: 2, Objs: make([]float64, 64), Constrs: make([]float64, 8)},
		&Migrant{Island: 1, Vars: make([]float64, 64), Objs: make([]float64, 64), Constrs: make([]float64, 8)},
	}
	for _, m := range dirty {
		if _, err := DecodeFrameInto(EncodeFrame(m)[4:], &sc); err != nil {
			t.Fatalf("dirtying decode: %v", err)
		}
	}
	// Element pointers prove backing-array reuse when a smaller message
	// of the same tag arrives next. (Done before the sample sweep: a
	// nil-Vars sample legitimately drops the scratch backing array.)
	evalBacking := &sc.eval.Vars[0]
	small := EncodeFrame(&Evaluate{Lease: 3, Vars: []float64{0.5, 0.25}})
	got, err := DecodeFrameInto(small[4:], &sc)
	if err != nil {
		t.Fatal(err)
	}
	if ev := got.(*Evaluate); &ev.Vars[0] != evalBacking {
		t.Error("small Evaluate did not reuse the scratch Vars backing array")
	}

	for _, m := range sampleMessages() {
		frame := EncodeFrame(m)
		got, err := DecodeFrameInto(frame[4:], &sc)
		if err != nil {
			t.Fatalf("%s: scratch decode: %v", m.Tag(), err)
		}
		if re := EncodeFrame(got); !bytes.Equal(re, frame) {
			t.Errorf("%s: scratch decode re-encodes differently:\n  in  %x\n  out %x", m.Tag(), frame, re)
		}
		switch g := got.(type) {
		case *Evaluate:
			if g != &sc.eval {
				t.Errorf("%s: scratch decode allocated a fresh Evaluate", m.Tag())
			}
		case *Result:
			if g != &sc.result {
				t.Errorf("%s: scratch decode allocated a fresh Result", m.Tag())
			}
		case *Migrant:
			if g != &sc.migrant {
				t.Errorf("%s: scratch decode allocated a fresh Migrant", m.Tag())
			}
		}
	}

	// Malformed inputs must fail identically through both paths.
	bad := flip(EncodeFrame(&Result{Lease: 9, Objs: []float64{1, 2}})[4:], 10)
	if m, err := DecodeFrameInto(bad, &sc); err == nil {
		t.Fatalf("scratch decode accepted corrupt frame: %v", m)
	}
}

// TestReadMessageBufReusesBuffer: the threaded buffer grows to the
// largest frame seen (under ReuseLimit), stays stable in steady state,
// and is not grown by an oversized frame.
func TestReadMessageBufReusesBuffer(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMessage(&stream, m); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for _, want := range msgs {
		m, next, err := ReadMessageBuf(&stream, buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Tag(), err)
		}
		if !bytes.Equal(EncodeFrame(m), EncodeFrame(want)) {
			t.Fatalf("round-trip mismatch at %s", want.Tag())
		}
		buf = next
	}
	if stream.Len() != 0 {
		t.Fatalf("%d leftover bytes", stream.Len())
	}
	if cap(buf) == 0 || cap(buf) > ReuseLimit {
		t.Fatalf("buffer capacity %d after small frames, want (0, %d]", cap(buf), ReuseLimit)
	}

	// Steady state: re-reading frames that fit returns the same buffer.
	stable := cap(buf)
	for i := 0; i < 3; i++ {
		stream.Reset()
		if err := WriteMessage(&stream, msgs[4]); err != nil {
			t.Fatal(err)
		}
		_, next, err := ReadMessageBuf(&stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		if cap(next) != stable {
			t.Fatalf("steady-state read changed buffer capacity %d -> %d", stable, cap(next))
		}
		buf = next
	}

	// A frame above ReuseLimit decodes fine but must not be retained.
	big := &Evaluate{Lease: 1, Vars: make([]float64, ReuseLimit/8+16)}
	stream.Reset()
	if err := WriteMessage(&stream, big); err != nil {
		t.Fatal(err)
	}
	m, next, err := ReadMessageBuf(&stream, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Evaluate); len(got.Vars) != len(big.Vars) {
		t.Fatalf("oversized frame decoded %d vars, want %d", len(got.Vars), len(big.Vars))
	}
	if cap(next) != stable {
		t.Fatalf("oversized frame was retained: capacity %d -> %d", stable, cap(next))
	}
}

// TestRecvSteadyStateAllocs pins the zero-allocation receive: framing
// into the reused payload buffer plus scratch decode allocates nothing
// once warm.
func TestRecvSteadyStateAllocs(t *testing.T) {
	frame := EncodeFrame(&Result{
		Lease: 1, SolID: 2, Operator: 3, EvalNanos: 4,
		Objs: []float64{1, 2, 3, 4, 5}, Constrs: []float64{0.5},
		Trace: obs.SpanContext{TraceID: 7, SpanID: 9, Flags: obs.FlagSampled},
	})
	r := bytes.NewReader(frame)
	var buf []byte
	var sc DecodeScratch
	read := func() {
		r.Reset(frame)
		payload, next, err := readFrame(r, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = next
		if _, err := DecodeFrameInto(payload, &sc); err != nil {
			t.Fatal(err)
		}
	}
	read() // warm the buffer and scratch
	if avg := testing.AllocsPerRun(100, read); avg != 0 {
		t.Fatalf("steady-state receive allocates %v times per frame, want 0", avg)
	}
}

// TestConnRecvReuseMessages: with the option on, sequential receives
// of the same tag return the same message struct; with it off, they
// return distinct ones.
func TestConnRecvReuseMessages(t *testing.T) {
	recvTwo := func(reuse bool) (a, b *Evaluate) {
		t.Helper()
		pa, pb := net.Pipe()
		sender := newConn(pa, Options{Heartbeat: -1, WriteTimeout: time.Second})
		receiver := newConn(pb, Options{Heartbeat: -1, IdleTimeout: time.Second, ReuseMessages: reuse})
		defer sender.Close()
		defer receiver.Close()
		go func() {
			sender.Send(&Evaluate{Lease: 1, Vars: []float64{1, 2}})
			sender.Send(&Evaluate{Lease: 2, Vars: []float64{3, 4}})
		}()
		m1, err := receiver.Recv()
		if err != nil {
			t.Fatal(err)
		}
		a = m1.(*Evaluate)
		if a.Lease != 1 || len(a.Vars) != 2 || a.Vars[0] != 1 {
			t.Fatalf("first recv decoded %+v", a)
		}
		m2, err := receiver.Recv()
		if err != nil {
			t.Fatal(err)
		}
		b = m2.(*Evaluate)
		if b.Lease != 2 || len(b.Vars) != 2 || b.Vars[0] != 3 {
			t.Fatalf("second recv decoded %+v", b)
		}
		return a, b
	}
	if a, b := recvTwo(true); a != b {
		t.Error("ReuseMessages on: receives returned distinct structs")
	}
	if a, b := recvTwo(false); a == b {
		t.Error("ReuseMessages off: receives shared a struct")
	}
}

// BenchmarkGrantResultRoundTrip measures the full codec round trip of
// one evaluation — master encodes a grant, worker decodes it into
// scratch, fills a Result reusing its buffers, encodes it back, master
// decodes the result into scratch — the per-evaluation wire cost of
// the distributed driver. The acceptance bar is 0 allocs/op.
func BenchmarkGrantResultRoundTrip(b *testing.B) {
	vars := make([]float64, 11)
	for i := range vars {
		vars[i] = float64(i) / 11
	}
	ev := &Evaluate{
		Lease: 1, SolID: 1, Operator: 2, Vars: vars,
		Trace: obs.SpanContext{TraceID: 7, SpanID: 9, Flags: obs.FlagSampled},
	}
	var gbuf, rbuf []byte
	var workerSc, masterSc DecodeScratch
	var res Result
	roundTrip := func() {
		gbuf = AppendFrame(gbuf[:0], ev)
		m, err := DecodeFrameInto(gbuf[4:], &workerSc)
		if err != nil {
			b.Fatal(err)
		}
		req := m.(*Evaluate)
		res.Lease, res.SolID, res.Operator = req.Lease, req.SolID, req.Operator
		res.EvalNanos = 12345
		res.Objs = growF64(res.Objs, 5)
		for i := range res.Objs {
			res.Objs[i] = req.Vars[i] * 2
		}
		res.Trace = req.Trace
		rbuf = AppendFrame(rbuf[:0], &res)
		m2, err := DecodeFrameInto(rbuf[4:], &masterSc)
		if err != nil {
			b.Fatal(err)
		}
		if m2.(*Result).Lease != ev.Lease {
			b.Fatal("lease mismatch")
		}
	}
	roundTrip() // warm the frame buffers and scratches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Lease++
		roundTrip()
	}
}
