package wire

import (
	"context"
	"errors"
	"fmt"
	"time"

	"borgmoea/internal/problems"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// WorkerConfig parameterizes one worker runtime (the borgd daemon, or
// an in-process equivalent in tests and examples).
type WorkerConfig struct {
	// Addr is the master's host:port.
	Addr string
	// Resolve maps the master's announced problem name to a local
	// Problem. Nil uses problems.ByName. The returned problem's
	// dimensions are verified against the handshake in either case.
	Resolve func(name string) (problems.Problem, error)
	// Delay, when set, is an artificial per-evaluation hold sampled
	// and slept after each real evaluation — the distributed analogue
	// of the controlled T_F delays in the paper's experiment design.
	Delay stats.Distribution
	// Seed seeds the delay sampling stream; it is decorrelated across
	// workers by mixing in the master-assigned worker id.
	Seed uint64
	// Conn tunes heartbeats, idle and write timeouts.
	Conn Options
	// Backoff and MaxBackoff bound the reconnect backoff (defaults
	// 100ms and 5s). The worker redials with its assigned identity —
	// reconnect-with-hello — until the context is cancelled or the
	// master says Stop.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *WorkerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// errStopped signals a clean master-initiated shutdown.
var errStopped = errors.New("wire: master sent stop")

// RunWorker runs the worker side of the distributed master-slave
// protocol until the master sends Stop (returns nil) or ctx is
// cancelled (returns the context error). A lost connection is not
// fatal: the worker backs off and redials, re-registering under the
// worker id the master assigned it — the crash-recover path the
// fault-tolerant master already handles for virtual-time workers
// re-sending tagHello.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Addr == "" {
		return fmt.Errorf("wire: worker needs a master address")
	}
	resolve := cfg.Resolve
	if resolve == nil {
		resolve = problems.ByName
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}

	redials := cfg.Conn.Metrics.Counter(MetricRedials)

	// The serve loop is strictly sequential — each grant is fully
	// evaluated and answered before the next Recv — so the connection
	// can decode grants into reused scratch messages.
	connOpt := cfg.Conn
	connOpt.ReuseMessages = true

	var workerID uint64 // 0 until the master assigns one
	wait := backoff
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !first {
			redials.Inc()
		}
		first = false
		conn, welcome, err := Dial(cfg.Addr, Hello{WorkerID: workerID}, connOpt)
		if err != nil {
			cfg.logf("wire: dial %s: %v (retrying in %v)", cfg.Addr, err, wait)
			if err := sleep(ctx, wait); err != nil {
				return err
			}
			if wait *= 2; wait > maxBackoff {
				wait = maxBackoff
			}
			continue
		}
		wait = backoff
		workerID = welcome.WorkerID

		// A MultiProblem master names the problem per grant; the worker
		// resolves lazily in serve and reports per-grant failures as
		// empty Results instead of dropping the session.
		var problem problems.Problem
		if welcome.Problem != MultiProblem {
			problem, err = resolve(welcome.Problem)
			if err == nil {
				if problem.NumVars() != int(welcome.NumVars) || problem.NumObjs() != int(welcome.NumObjs) {
					err = fmt.Errorf("wire: problem %s resolves to %dv/%do locally, master expects %dv/%do",
						welcome.Problem, problem.NumVars(), problem.NumObjs(), welcome.NumVars, welcome.NumObjs)
				}
			}
			if err != nil {
				conn.Close()
				return err // reconnecting cannot fix a problem mismatch
			}
		}

		hb := cfg.Conn.Heartbeat
		if hb == 0 && welcome.HeartbeatMillis > 0 {
			hb = time.Duration(welcome.HeartbeatMillis) * time.Millisecond
		}
		conn.StartHeartbeat(hb)
		cfg.logf("wire: worker %d connected to %s (problem %s)", workerID, cfg.Addr, welcome.Problem)

		err = serve(ctx, conn, problem, &cfg, workerID)
		conn.Close()
		switch {
		case errors.Is(err, errStopped):
			cfg.logf("wire: worker %d stopped by master", workerID)
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		}
		cfg.logf("wire: worker %d lost connection: %v (reconnecting)", workerID, err)
	}
}

// serve runs the evaluate loop on one live connection: receive an
// Evaluate, compute the objectives (and constraint violations for
// constrained problems), hold the optional artificial delay, send the
// Result. Returns errStopped on a Stop, or the transport error.
//
// A nil problem makes the session multi-problem: each grant names its
// own problem, resolved on first use and cached for the connection. A
// grant that cannot be evaluated — unknown name, dimension mismatch —
// answers with an empty Result (Objs == nil) so the master fails only
// that job's lease, not the whole session.
func serve(ctx context.Context, conn *Conn, problem problems.Problem, cfg *WorkerConfig, workerID uint64) error {
	// Unblock the reader when the context dies.
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watch:
		}
	}()

	// Mixing the worker id into the seed decorrelates delay streams
	// across workers: splitmix64 seeding maps similar seeds to
	// unrelated xoshiro states.
	delayRng := rng.New(cfg.Seed ^ (workerID * 0x9e3779b97f4a7c15))
	resolve := cfg.Resolve
	if resolve == nil {
		resolve = problems.ByName
	}
	cache := make(map[string]problems.Problem) // multi-problem resolutions; nil = known-bad

	// res holds the objective/constraint buffers across grants; Send
	// copies the frame out before returning, so reusing them on the
	// next evaluation is safe.
	var res Result

	for {
		m, err := conn.Recv()
		if err != nil {
			return err
		}
		switch req := m.(type) {
		case *Evaluate:
			p := problem
			if p == nil {
				var hit bool
				if p, hit = cache[req.Problem]; !hit {
					var rerr error
					if p, rerr = resolve(req.Problem); rerr != nil {
						cfg.logf("wire: worker %d cannot resolve problem %q: %v", workerID, req.Problem, rerr)
						p = nil
					}
					cache[req.Problem] = p
				}
			}
			if p == nil || len(req.Vars) != p.NumVars() {
				if problem != nil {
					// Single-problem sessions validated dimensions at
					// the handshake; a mismatch is a protocol error.
					return fmt.Errorf("wire: evaluate with %d vars, problem %s wants %d",
						len(req.Vars), problem.Name(), problem.NumVars())
				}
				// Multi-problem: fail this lease, keep the session.
				empty := &Result{Lease: req.Lease, SolID: req.SolID, Operator: req.Operator, Trace: req.Trace}
				if err := conn.Send(empty); err != nil {
					return err
				}
				continue
			}
			start := time.Now()
			objs := growF64(res.Objs, p.NumObjs())
			var constrs []float64
			if cp, constrained := p.(problems.Constrained); constrained {
				constrs = growF64(res.Constrs, cp.NumConstraints())
				cp.EvaluateWithConstraints(req.Vars, objs, constrs)
			} else {
				p.Evaluate(req.Vars, objs)
			}
			if cfg.Delay != nil {
				d := time.Duration(cfg.Delay.Sample(delayRng) * float64(time.Second))
				if err := sleep(ctx, d); err != nil {
					return err
				}
			}
			res = Result{
				Lease:     req.Lease,
				SolID:     req.SolID,
				Operator:  req.Operator,
				EvalNanos: uint64(time.Since(start).Nanoseconds()),
				Objs:      objs,
				Constrs:   constrs,
				// Echo the span context so the master-side collector
				// closes the cross-process span.
				Trace: req.Trace,
			}
			if err := conn.Send(&res); err != nil {
				return err
			}
		case Stop:
			return errStopped
		default:
			// Unexpected but harmless (e.g. a duplicate Welcome).
		}
	}
}

// growF64 returns a length-n slice, reusing s's backing array when its
// capacity suffices.
func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// sleep holds for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
