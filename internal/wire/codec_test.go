package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
)

// sampleMessages returns one representative of every message tag,
// including edge contents (empty slices, NaN/Inf payloads, non-ASCII
// names).
func sampleMessages() []Message {
	return []Message{
		&Hello{},
		&Hello{WorkerID: 42},
		&Welcome{WorkerID: 7, Problem: "DTLZ2_5", NumVars: 14, NumObjs: 5, HeartbeatMillis: 2000},
		&Welcome{Problem: ""},
		&Evaluate{Lease: 1, SolID: 2, Operator: -1, Vars: []float64{0, 0.5, 1}},
		&Evaluate{Lease: math.MaxUint64, Vars: nil},
		&Evaluate{Lease: 9, Problem: "DTLZ2_5", Vars: []float64{0.25}},
		&Welcome{WorkerID: 3, Problem: MultiProblem},
		&Result{Lease: 3, SolID: 4, Operator: 5, EvalNanos: 123456, Objs: []float64{1, 2}, Constrs: []float64{0.25}},
		&Result{Objs: []float64{math.Inf(1), math.NaN(), -0}},
		Stop{},
		Ping{},
		Pong{},
		&Migrant{Island: 3, Epoch: 7, SolID: 99, Operator: 2, Vars: []float64{0.1, 0.9}, Objs: []float64{1, 2, 3}},
		&Migrant{Epoch: 1, Operator: -1, Objs: []float64{math.Inf(-1)}, Constrs: []float64{0}},
		// Traced variants: a Valid span context grows the VersionTraced
		// header; the codec must round-trip it on every carrier tag.
		&Evaluate{Lease: 11, SolID: 12, Vars: []float64{0.5}, Trace: obs.SpanContext{TraceID: 0xdead, SpanID: 0xbeef, Flags: obs.FlagSampled}},
		&Result{Lease: 11, EvalNanos: 77, Objs: []float64{1}, Trace: obs.SpanContext{TraceID: 1, SpanID: 2}},
		&Migrant{Island: 1, Epoch: 3, Objs: []float64{4}, Trace: obs.SpanContext{TraceID: math.MaxUint64, SpanID: math.MaxUint64, Flags: 0xff}},
		&Delta{Island: 1, Seq: 5, Completed: 640},
		&Delta{Island: 2, Seq: 1, Completed: 10, Members: []DeltaMember{
			{Operator: 0, Vars: []float64{0.5}, Objs: []float64{1, 2}},
			{Operator: -1, Objs: []float64{math.NaN()}, Constrs: []float64{3}},
		}},
	}
}

// TestRoundTripAllTags: encode → decode yields the original message
// for every protocol tag (NaN compared bitwise via re-encode).
func TestRoundTripAllTags(t *testing.T) {
	for _, m := range sampleMessages() {
		frame := EncodeFrame(m)
		got, err := DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Tag(), err)
		}
		if got.Tag() != m.Tag() {
			t.Fatalf("tag %s decoded as %s", m.Tag(), got.Tag())
		}
		if re := EncodeFrame(got); !bytes.Equal(re, frame) {
			t.Errorf("%s: re-encode differs:\n  in  %x\n  out %x", m.Tag(), frame, re)
		}
	}
}

// TestRoundTripRandomized: property test — random message contents
// survive the codec byte-identically and value-identically.
func TestRoundTripRandomized(t *testing.T) {
	r := rng.New(99)
	randFloats := func() []float64 {
		xs := make([]float64, r.Intn(20))
		for i := range xs {
			xs[i] = r.NormMS(0, 1e6)
		}
		if len(xs) == 0 {
			return nil // codec canonicalizes empty to nil
		}
		return xs
	}
	for i := 0; i < 500; i++ {
		msgs := []Message{
			&Hello{WorkerID: r.Uint64()},
			&Welcome{WorkerID: r.Uint64(), Problem: "UF11", NumVars: uint32(r.Intn(1000)), NumObjs: uint32(r.Intn(16))},
			&Evaluate{Lease: r.Uint64(), SolID: r.Uint64(), Operator: int32(r.Intn(7) - 1), Problem: []string{"", "ZDT1", MultiProblem}[r.Intn(3)], Vars: randFloats()},
			&Result{Lease: r.Uint64(), EvalNanos: r.Uint64(), Objs: randFloats(), Constrs: randFloats()},
			&Evaluate{Lease: r.Uint64(), Vars: randFloats(), Trace: obs.SpanContext{TraceID: r.Uint64() | 1, SpanID: r.Uint64(), Flags: uint8(r.Intn(256))}},
			&Result{Lease: r.Uint64(), Objs: randFloats(), Trace: obs.SpanContext{TraceID: r.Uint64() | 1, SpanID: r.Uint64(), Flags: uint8(r.Intn(256))}},
			&Migrant{Island: uint32(r.Intn(8)), Epoch: r.Uint64(), Vars: randFloats(), Objs: randFloats(), Trace: obs.SpanContext{TraceID: r.Uint64() | 1, SpanID: r.Uint64()}},
		}
		for _, m := range msgs {
			frame := EncodeFrame(m)
			got, err := DecodeFrame(frame[4:])
			if err != nil {
				t.Fatalf("decode %s: %v", m.Tag(), err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("%s round-trip mismatch:\n  in  %#v\n  out %#v", m.Tag(), m, got)
			}
		}
	}
}

// TestReadWriteMessage exercises the stream framing end to end.
func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	for _, m := range sampleMessages() {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range sampleMessages() {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Tag(), err)
		}
		if !bytes.Equal(EncodeFrame(got), EncodeFrame(want)) {
			t.Fatalf("stream round-trip mismatch at %s", want.Tag())
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d leftover bytes", buf.Len())
	}
}

// TestDecodeRejectsMalformed: every class of corruption is a clean
// error, never a panic and never a bogus message.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeFrame(&Evaluate{Lease: 1, Vars: []float64{1, 2, 3}})[4:]

	cases := map[string][]byte{
		"empty":        {},
		"one byte":     {Version},
		"short":        {Version, byte(TagStop), 0, 0, 0},
		"bad crc":      flip(valid, len(valid)-1),
		"bad body":     flip(valid, 10),
		"version":      flip(valid, 0),
		"trailing":     withCRC(append([]byte{Version, byte(TagStop)}, 0xff)),
		"unknown":      withCRC([]byte{Version, 0x7f}),
		"huge vars":    withCRC(append([]byte{Version, byte(TagEvaluate)}, hugeCountBody()...)),
		"huge members": withCRC(append([]byte{Version, byte(TagDelta)}, hugeDeltaBody()...)),
		// Trace-header defects: a header on a tag that cannot carry
		// one, a truncated header, a wrong header length, and the
		// non-canonical zero trace id (the encoder emits Version 1 for
		// untraced messages, so a traced frame claiming trace id 0 has
		// no canonical re-encoding and must be rejected).
		"trace on stop":      withCRC(append([]byte{VersionTraced, byte(TagStop)}, traceHeader(5, 6, 0)...)),
		"trace short header": withCRC([]byte{VersionTraced, byte(TagEvaluate), 17, 1, 2, 3}),
		"trace bad hdrlen":   withCRC(append([]byte{VersionTraced, byte(TagEvaluate)}, append([]byte{16}, traceHeader(5, 6, 0)[2:]...)...)),
		"trace zero id":      withCRC(append(append([]byte{VersionTraced, byte(TagEvaluate)}, traceHeader(0, 6, 1)...), evalBody()...)),
	}
	for name, payload := range cases {
		m, err := DecodeFrame(payload)
		if err == nil {
			t.Errorf("%s: decoded %v, want error", name, m)
		}
		if m != nil {
			t.Errorf("%s: non-nil message alongside error", name)
		}
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeFrame(valid[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestReadMessageLimits: a hostile length prefix is rejected before
// allocation, and a short stream is an error.
func TestReadMessageLimits(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadMessage(bytes.NewReader(hdr[:])); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length accepted: %v", err)
	}
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := ReadMessage(bytes.NewReader(append(hdr[:], 1, 2, 3))); err == nil {
		t.Fatal("short stream accepted")
	}
}

// flip returns a copy of b with one bit inverted at index i.
func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x01
	return c
}

// withCRC appends a valid CRC trailer to a hand-built content prefix,
// isolating body-level defects from checksum defects.
func withCRC(content []byte) []byte {
	frame := append([]byte(nil), content...)
	return appendU32(frame, crc32.ChecksumIEEE(content))
}

// hugeCountBody builds an Evaluate body whose vars count claims more
// floats than the body holds.
func hugeCountBody() []byte {
	var b []byte
	b = appendU64(b, 1) // lease
	b = appendU64(b, 2) // sol id
	b = appendU32(b, 0) // operator
	b = appendU32(b, 1<<30)
	return b
}

// traceHeader builds the VersionTraced header bytes: length byte +
// trace id + span id + flags.
func traceHeader(traceID, spanID uint64, flags uint8) []byte {
	b := []byte{traceHeaderLen}
	b = appendU64(b, traceID)
	b = appendU64(b, spanID)
	return append(b, flags)
}

// evalBody builds a minimal valid Evaluate body (no problem, no vars).
func evalBody() []byte {
	var b []byte
	b = appendU64(b, 1) // lease
	b = appendU64(b, 2) // sol id
	b = appendU32(b, 0) // operator
	b = appendU32(b, 0) // problem: empty
	b = appendU32(b, 0) // vars: empty
	return b
}

// hugeDeltaBody builds a Delta body whose member count claims far more
// archive members than the body could hold — the decoder must reject
// it before allocating.
func hugeDeltaBody() []byte {
	var b []byte
	b = appendU32(b, 1)     // island
	b = appendU64(b, 1)     // seq
	b = appendU64(b, 100)   // completed
	b = appendU32(b, 1<<30) // member count
	return b
}

// TestDecodeTruncatedDelta hardens the nested delta decoder: a valid
// multi-member frame cut at every byte offset is a clean error — never
// a panic, never a partial message — and so is a frame whose inner
// member slices over-claim.
func TestDecodeTruncatedDelta(t *testing.T) {
	frame := EncodeFrame(&Delta{Island: 9, Seq: 3, Completed: 512, Members: []DeltaMember{
		{Operator: 1, Vars: []float64{0.1, 0.2, 0.3}, Objs: []float64{1, 2}},
		{Operator: -1, Vars: []float64{0.4}, Objs: []float64{3, 4}, Constrs: []float64{0}},
	}})[4:]
	// Raw truncations trip the CRC; re-checksummed truncations reach
	// the body decoder. Both must fail cleanly at every cut point.
	content := frame[:len(frame)-4]
	for cut := 0; cut < len(frame); cut++ {
		if m, err := DecodeFrame(frame[:cut]); err == nil {
			t.Fatalf("raw truncation at %d accepted: %v", cut, m)
		}
	}
	for cut := 2; cut < len(content); cut++ {
		m, err := DecodeFrame(withCRC(content[:cut]))
		if err == nil {
			t.Fatalf("truncated body at %d accepted: %v", cut, m)
		}
		if m != nil {
			t.Fatalf("truncated body at %d returned non-nil message", cut)
		}
	}
	// Inner member slice over-claims: member 2's objs count says 1<<20.
	var b []byte
	b = appendU32(b, 1)     // island
	b = appendU64(b, 1)     // seq
	b = appendU64(b, 1)     // completed
	b = appendU32(b, 1)     // member count
	b = appendU32(b, 0)     // operator
	b = appendU32(b, 0)     // vars: empty
	b = appendU32(b, 1<<20) // objs: hostile count
	if m, err := DecodeFrame(withCRC(append([]byte{Version, byte(TagDelta)}, b...))); err == nil {
		t.Fatalf("hostile inner count accepted: %v", m)
	}
}
