// Package wire carries the master/worker protocol of the parallel
// Borg MOEA drivers over real TCP connections. It is the third
// transport of the reproduction — next to the virtual-time DES cluster
// (internal/cluster) and the in-process goroutine executor — and turns
// the paper's MPI point-to-point messaging into something that runs
// P>1 across processes and machines.
//
// The package has three layers:
//
//   - a compact binary codec (this file): length-prefixed frames, a
//     version byte, and a CRC32 trailer, with one message type per
//     protocol tag (Hello/Welcome/Evaluate/Result/Stop plus Ping/Pong
//     heartbeats);
//   - a connection layer (conn.go): dial/accept with a handshake,
//     per-connection read/write with deadlines, background heartbeats,
//     and idle timeouts;
//   - a worker runtime (worker.go): the evaluate loop run by the borgd
//     daemon, with reconnect-with-hello so a restarted worker
//     re-registers exactly as the fault-tolerant master's
//     crash-recover path expects.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"borgmoea/internal/master"
	"borgmoea/internal/obs"
)

// Version is the protocol version carried in every frame. A peer
// speaking a different version is rejected at decode time.
const Version = 1

// VersionTraced marks a frame carrying the optional trace header: a
// length byte (always traceHeaderLen for this version) followed by
// the span context — trace id, span id, flags — CRC-covered like the
// rest of the frame. Only the evaluation-path messages (Evaluate,
// Result, Migrant) may carry it, and only when the context is Valid;
// everything else still encodes as Version 1, so tracing-off runs
// put zero extra bytes on the wire and old logs decode unchanged.
const VersionTraced = 2

// traceHeaderLen is the trace header's payload size: trace id (8) +
// span id (8) + flags (1).
const traceHeaderLen = 17

// MaxFrame bounds the payload (version + tag + body + CRC) of one
// frame. It is far above any legitimate message — a 1 MiB frame holds
// a 128k-variable solution — and exists so a corrupt or hostile length
// prefix cannot make the reader allocate unbounded memory.
const MaxFrame = 1 << 20

// ReuseLimit is the largest frame payload ReadMessageBuf retains for
// reuse across calls. Frames above it (none of the steady-state
// evaluation traffic comes close) get a one-off allocation instead,
// so a single oversized message cannot pin its footprint on a
// long-lived connection's read buffer.
const ReuseLimit = 64 << 10

// Tag identifies a message type on the wire. The vocabulary is the
// canonical one in internal/master, shared with the virtual-time
// drivers' mailbox tags, so every transport speaks the same protocol:
// Hello/Welcome/Evaluate/Result/Stop plus the Ping/Pong
// transport-level liveness probes.
type Tag = master.Tag

const (
	TagHello    = master.TagHello
	TagWelcome  = master.TagWelcome
	TagEvaluate = master.TagEvaluate
	TagResult   = master.TagResult
	TagStop     = master.TagStop
	TagPing     = master.TagPing
	TagPong     = master.TagPong
	TagMigrant  = master.TagMigrant
	TagDelta    = master.TagDelta
)

// Message is one protocol message. Implementations are the exported
// structs below; Decode returns the concrete type for the frame's tag.
type Message interface {
	Tag() Tag
	appendBody(dst []byte) []byte
}

// Hello is the worker's (re-)registration, the first message on every
// connection. WorkerID is 0 on a first connect (the master assigns an
// identity in its Welcome) and the previously assigned id on a
// reconnect, which tells the master this is the crash-recover path:
// whatever the worker held died with the old connection.
type Hello struct {
	WorkerID uint64
}

// Welcome is the master's handshake reply: the worker's (possibly
// newly assigned) identity, the problem it must evaluate, the expected
// dimensions for validation, and the heartbeat interval the master
// wants the worker to honor (0 = worker's choice).
type Welcome struct {
	WorkerID        uint64
	Problem         string
	NumVars         uint32
	NumObjs         uint32
	HeartbeatMillis uint32
}

// MultiProblem is the Welcome.Problem sentinel of a multi-tenant
// session: the master multiplexes many problems over one fleet, so
// each Evaluate names its own (Evaluate.Problem) and the worker
// resolves per grant instead of once at handshake. The Welcome
// dimension fields are 0 and unchecked in this mode; per-grant
// failures come back as empty Results, not dropped connections.
const MultiProblem = "*"

// Evaluate grants one evaluation lease to a worker. Lease is the
// master's lease identifier (unique per dispatch — the dedup key of
// the fault-tolerance protocol), SolID/Operator are the solution's
// algorithm-level bookkeeping, echoed back in the Result. Problem
// names the problem to evaluate in a MultiProblem session; it is
// empty in single-problem sessions, where the handshake fixed it.
type Evaluate struct {
	Lease    uint64
	SolID    uint64
	Operator int32
	Problem  string
	Vars     []float64
	// Trace is the evaluation's span context, minted at grant time by
	// the master core's tracer. When Valid the frame encodes as
	// VersionTraced with the trace header; the worker echoes it on the
	// Result so the collector can close the cross-process span.
	Trace obs.SpanContext
}

// Result returns an evaluated solution. EvalNanos is the worker-side
// wall time of the evaluation (including any configured artificial
// delay), the distributed run's T_F observation. Constrs is empty for
// unconstrained problems.
type Result struct {
	Lease     uint64
	SolID     uint64
	Operator  int32
	EvalNanos uint64
	Objs      []float64
	Constrs   []float64
	// Trace echoes the Evaluate's span context (see Evaluate.Trace).
	Trace obs.SpanContext
}

// Stop tells a worker to shut down cleanly.
type Stop struct{}

// Migrant carries one ε-archive member between federated island
// masters — the wire form of the in-process island migration side
// channel. Island is the sending island's id, Epoch the migration
// round (accepted-evaluation count divided by the migration cadence):
// together they name the EvMigrant event the receiver records, so a
// federated run's BMEL logs plus its migrant sidecar logs replay to
// the identical merged Result. SolID and Operator preserve the
// solution's algorithm-level bookkeeping (operator credit on archive
// entry) across the hop.
type Migrant struct {
	Island   uint32
	Epoch    uint64
	SolID    uint64
	Operator int32
	Vars     []float64
	Objs     []float64
	Constrs  []float64
	// Trace is the sending island's emigrant span context; the
	// receiver links it to its migrant span, preserving cross-island
	// lineage in the trace forest.
	Trace obs.SpanContext
}

// DeltaMember is one archive member inside a Delta batch.
type DeltaMember struct {
	Operator int32
	Vars     []float64
	Objs     []float64
	Constrs  []float64
}

// Delta carries a batch of archive members from an island master up
// to the federation root, which folds them into the global ε-archive
// for live monitoring. Seq orders a single island's deltas; Completed
// is the island's accepted-evaluation count when the batch was cut.
// Deltas are monitoring traffic only — the root never feeds anything
// back — so they do not participate in replay.
type Delta struct {
	Island    uint32
	Seq       uint64
	Completed uint64
	Members   []DeltaMember
}

// Ping and Pong are heartbeat probes exchanged by the connection layer
// whenever a link is otherwise idle; they never surface from Recv.
type (
	Ping struct{}
	Pong struct{}
)

func (*Hello) Tag() Tag    { return TagHello }
func (*Welcome) Tag() Tag  { return TagWelcome }
func (*Evaluate) Tag() Tag { return TagEvaluate }
func (*Result) Tag() Tag   { return TagResult }
func (Stop) Tag() Tag      { return TagStop }
func (Ping) Tag() Tag      { return TagPing }
func (Pong) Tag() Tag      { return TagPong }
func (*Migrant) Tag() Tag  { return TagMigrant }
func (*Delta) Tag() Tag    { return TagDelta }

// --- encoding -------------------------------------------------------

func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func appendF64s(dst []byte, xs []float64) []byte {
	dst = appendU32(dst, uint32(len(xs)))
	for _, x := range xs {
		dst = appendU64(dst, math.Float64bits(x))
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func (m *Hello) appendBody(dst []byte) []byte { return appendU64(dst, m.WorkerID) }

func (m *Welcome) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.WorkerID)
	dst = appendString(dst, m.Problem)
	dst = appendU32(dst, m.NumVars)
	dst = appendU32(dst, m.NumObjs)
	return appendU32(dst, m.HeartbeatMillis)
}

func (m *Evaluate) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Lease)
	dst = appendU64(dst, m.SolID)
	dst = appendU32(dst, uint32(m.Operator))
	dst = appendString(dst, m.Problem)
	return appendF64s(dst, m.Vars)
}

func (m *Result) appendBody(dst []byte) []byte {
	dst = appendU64(dst, m.Lease)
	dst = appendU64(dst, m.SolID)
	dst = appendU32(dst, uint32(m.Operator))
	dst = appendU64(dst, m.EvalNanos)
	dst = appendF64s(dst, m.Objs)
	return appendF64s(dst, m.Constrs)
}

func (Stop) appendBody(dst []byte) []byte { return dst }
func (Ping) appendBody(dst []byte) []byte { return dst }
func (Pong) appendBody(dst []byte) []byte { return dst }

func (m *Migrant) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.Island)
	dst = appendU64(dst, m.Epoch)
	dst = appendU64(dst, m.SolID)
	dst = appendU32(dst, uint32(m.Operator))
	dst = appendF64s(dst, m.Vars)
	dst = appendF64s(dst, m.Objs)
	return appendF64s(dst, m.Constrs)
}

func (m *Delta) appendBody(dst []byte) []byte {
	dst = appendU32(dst, m.Island)
	dst = appendU64(dst, m.Seq)
	dst = appendU64(dst, m.Completed)
	dst = appendU32(dst, uint32(len(m.Members)))
	for i := range m.Members {
		dm := &m.Members[i]
		dst = appendU32(dst, uint32(dm.Operator))
		dst = appendF64s(dst, dm.Vars)
		dst = appendF64s(dst, dm.Objs)
		dst = appendF64s(dst, dm.Constrs)
	}
	return dst
}

// frameTrace returns the span context a message carries on the wire
// (the zero context for untraced messages and message types that
// never carry one).
func frameTrace(m Message) obs.SpanContext {
	switch t := m.(type) {
	case *Evaluate:
		return t.Trace
	case *Result:
		return t.Trace
	case *Migrant:
		return t.Trace
	}
	return obs.SpanContext{}
}

// AppendFrame serializes a message as one wire frame appended to dst:
//
//	uint32 length | version(1) tag(1) [traceHdr] body... crc32(4)
//
// where length counts everything after itself and the CRC (IEEE) is
// computed over version+tag+(header+)body. A message carrying a Valid
// span context encodes as VersionTraced with the trace header —
// hdrLen(1)=17, trace id(8), span id(8), flags(1) — between tag and
// body; all others encode as Version 1. Appending lets hot paths —
// the connection send loop, island migration — reuse one scratch
// buffer instead of allocating a frame per message.
func AppendFrame(dst []byte, m Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	if tc := frameTrace(m); tc.Valid() {
		dst = append(dst, VersionTraced, byte(m.Tag()), traceHeaderLen)
		dst = appendU64(dst, tc.TraceID)
		dst = appendU64(dst, tc.SpanID)
		dst = append(dst, tc.Flags)
	} else {
		dst = append(dst, Version, byte(m.Tag()))
	}
	dst = m.appendBody(dst)
	crc := crc32.ChecksumIEEE(dst[start+4:])
	dst = appendU32(dst, crc)
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

// EncodeFrame serializes a message as one freshly allocated wire
// frame. See AppendFrame for the layout.
func EncodeFrame(m Message) []byte {
	return AppendFrame(make([]byte, 0, 64), m)
}

// --- decoding -------------------------------------------------------

// bodyReader is a bounds-checked cursor over a frame body. All getters
// are no-ops once an error is recorded, so decoders can read
// straight-line and check the error once.
type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *bodyReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("truncated body: need %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *bodyReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *bodyReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *bodyReader) f64s() []float64 { return r.f64sInto(nil) }

// f64sInto decodes a float64 slice, reusing dst's backing array when
// its capacity suffices. Empty slices decode as nil — the canonical
// form every other decode path produces — which drops dst.
func (r *bodyReader) f64sInto(dst []float64) []float64 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n*8 > len(r.b) {
		r.fail("float64 slice length %d exceeds remaining %d bytes", n, len(r.b))
		return nil
	}
	if n == 0 {
		return nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(r.u64())
	}
	return dst
}

func (r *bodyReader) str() string { return r.strReuse("") }

// strReuse decodes a string, returning prev — no allocation — when the
// decoded bytes match it. The hot-path frames repeat the same problem
// name (usually the empty string) on every message, so a sequential
// reader's steady state never copies it.
func (r *bodyReader) strReuse(prev string) string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n > len(r.b) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.b))
		return ""
	}
	b := r.take(n)
	if string(b) == prev {
		return prev
	}
	return string(b)
}

// finish verifies the body was consumed exactly.
func (r *bodyReader) finish(m Message) (Message, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s body", len(r.b), m.Tag())
	}
	return m, nil
}

// DecodeScratch holds reusable decode targets for the hot-path
// messages: Evaluate, Result, Migrant. DecodeFrameInto decodes into
// them in place — reusing the message structs, their float64 slices,
// and (when unchanged) the problem string — so a steady-state decode
// allocates nothing. A scratch value belongs to one strictly
// sequential consumer: each successful decode invalidates the message
// returned by the previous one, so the caller must be done with a
// message before decoding the next frame.
type DecodeScratch struct {
	eval    Evaluate
	result  Result
	migrant Migrant
}

// DecodeFrame parses one frame payload (everything after the length
// prefix: version, tag, body, CRC) back into a Message. It never
// panics on malformed input; every defect — short payload, unknown
// version or tag, CRC mismatch, truncated or oversized body fields,
// trailing bytes — is a clean error.
func DecodeFrame(payload []byte) (Message, error) {
	return decodeFrame(payload, nil)
}

// DecodeFrameInto is DecodeFrame with allocation reuse: the hot-path
// messages decode into sc's scratch structs (see DecodeScratch for the
// aliasing contract); everything else — handshake, control, Delta —
// decodes fresh, exactly as DecodeFrame would. Accepted inputs, error
// cases, and decoded values are identical to DecodeFrame's.
func DecodeFrameInto(payload []byte, sc *DecodeScratch) (Message, error) {
	return decodeFrame(payload, sc)
}

func decodeFrame(payload []byte, sc *DecodeScratch) (Message, error) {
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	if len(payload) < 6 { // version + tag + crc32
		return nil, fmt.Errorf("wire: frame payload too short (%d bytes)", len(payload))
	}
	if payload[0] != Version && payload[0] != VersionTraced {
		return nil, fmt.Errorf("wire: protocol version %d, want %d or %d", payload[0], Version, VersionTraced)
	}
	content, trailer := payload[:len(payload)-4], payload[len(payload)-4:]
	if got, want := crc32.ChecksumIEEE(content), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("wire: CRC mismatch (computed %08x, frame says %08x)", got, want)
	}
	tag := Tag(payload[1])
	r := &bodyReader{b: content[2:]}

	// VersionTraced: the trace header sits between tag and body. The
	// decode is strict — traced tags only, exact header length, a
	// nonzero trace id — because the encoder never produces anything
	// else, and the fuzz invariant (successful decode ⇒ re-encoding is
	// byte-identical) requires one canonical wire form per message.
	var trace obs.SpanContext
	if payload[0] == VersionTraced {
		if tag != TagEvaluate && tag != TagResult && tag != TagMigrant {
			return nil, fmt.Errorf("wire: %s frame cannot carry a trace header", tag)
		}
		hdr := r.take(1 + traceHeaderLen)
		if hdr == nil {
			return nil, r.err
		}
		if hdr[0] != traceHeaderLen {
			return nil, fmt.Errorf("wire: trace header length %d, want %d", hdr[0], traceHeaderLen)
		}
		trace = obs.SpanContext{
			TraceID: binary.BigEndian.Uint64(hdr[1:]),
			SpanID:  binary.BigEndian.Uint64(hdr[9:]),
			Flags:   hdr[17],
		}
		if !trace.Valid() {
			return nil, fmt.Errorf("wire: traced frame with zero trace id")
		}
	}
	switch tag {
	case TagHello:
		m := &Hello{WorkerID: r.u64()}
		return r.finish(m)
	case TagWelcome:
		m := &Welcome{
			WorkerID:        r.u64(),
			Problem:         r.str(),
			NumVars:         r.u32(),
			NumObjs:         r.u32(),
			HeartbeatMillis: r.u32(),
		}
		return r.finish(m)
	case TagEvaluate:
		var m *Evaluate
		if sc != nil {
			m = &sc.eval
		} else {
			m = &Evaluate{}
		}
		*m = Evaluate{
			Lease:    r.u64(),
			SolID:    r.u64(),
			Operator: int32(r.u32()),
			Problem:  r.strReuse(m.Problem),
			Vars:     r.f64sInto(m.Vars),
			Trace:    trace,
		}
		return r.finish(m)
	case TagResult:
		var m *Result
		if sc != nil {
			m = &sc.result
		} else {
			m = &Result{}
		}
		*m = Result{
			Lease:     r.u64(),
			SolID:     r.u64(),
			Operator:  int32(r.u32()),
			EvalNanos: r.u64(),
			Objs:      r.f64sInto(m.Objs),
			Constrs:   r.f64sInto(m.Constrs),
			Trace:     trace,
		}
		return r.finish(m)
	case TagStop:
		return r.finish(Stop{})
	case TagPing:
		return r.finish(Ping{})
	case TagPong:
		return r.finish(Pong{})
	case TagMigrant:
		var m *Migrant
		if sc != nil {
			m = &sc.migrant
		} else {
			m = &Migrant{}
		}
		*m = Migrant{
			Island:   r.u32(),
			Epoch:    r.u64(),
			SolID:    r.u64(),
			Operator: int32(r.u32()),
			Vars:     r.f64sInto(m.Vars),
			Objs:     r.f64sInto(m.Objs),
			Constrs:  r.f64sInto(m.Constrs),
			Trace:    trace,
		}
		return r.finish(m)
	case TagDelta:
		m := &Delta{Island: r.u32(), Seq: r.u64(), Completed: r.u64()}
		n := int(r.u32())
		if r.err == nil {
			// A member is at least an operator plus three empty slices;
			// reject hostile counts before allocating.
			const minMember = 4 + 3*4
			if n*minMember > len(r.b) {
				r.fail("delta member count %d exceeds remaining %d bytes", n, len(r.b))
			} else if n > 0 {
				m.Members = make([]DeltaMember, n)
				for i := range m.Members {
					m.Members[i] = DeltaMember{
						Operator: int32(r.u32()),
						Vars:     r.f64s(),
						Objs:     r.f64s(),
						Constrs:  r.f64s(),
					}
				}
			}
		}
		return r.finish(m)
	}
	return nil, fmt.Errorf("wire: unknown message tag %d", uint8(tag))
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadMessage reads one length-prefixed frame and decodes it.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := ReadMessageBuf(r, nil)
	return m, err
}

// ReadMessageBuf is ReadMessage with payload-buffer reuse: the frame
// payload is read into buf when its capacity suffices, and the
// (possibly grown) buffer is returned for the caller to thread into
// the next call. Frames larger than ReuseLimit get a one-off
// allocation that is not retained. The returned Message never aliases
// the buffer — decoding copies every field out — so the buffer is free
// for reuse immediately.
func ReadMessageBuf(r io.Reader, buf []byte) (Message, []byte, error) {
	payload, buf, err := readFrame(r, buf)
	if err != nil {
		return nil, buf, err
	}
	m, err := DecodeFrame(payload)
	return m, buf, err
}

// readFrame reads one length-prefixed frame payload, into buf when
// possible (see ReadMessageBuf for the reuse contract). The length
// prefix is read into buf too — a stack array would escape into the
// io.ReadFull interface call and cost an allocation per frame.
func readFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, buf, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrame)
	}
	var payload []byte
	switch {
	case int(n) <= cap(buf):
		payload = buf[:n]
	case n <= ReuseLimit:
		buf = make([]byte, n)
		payload = buf
	default:
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, buf, fmt.Errorf("wire: short frame: %w", err)
	}
	return payload, buf, nil
}
