package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// pipePair returns two connected Conns over an in-memory pipe.
func pipePair(a, b Options) (*Conn, *Conn) {
	ca, cb := net.Pipe()
	return newConn(ca, a), newConn(cb, b)
}

// tcpPair returns two connected Conns over loopback TCP.
func tcpPair(t *testing.T, a, b Options) (*Conn, *Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := l.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	nca, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ncb := <-accepted
	return newConn(nca, a), newConn(ncb, b)
}

func TestConnSendRecv(t *testing.T) {
	opt := Options{Heartbeat: -1, IdleTimeout: 2 * time.Second}
	a, b := pipePair(opt, opt)
	defer a.Close()
	defer b.Close()

	want := &Evaluate{Lease: 5, Vars: []float64{1, 2}}
	go func() { _ = a.Send(want) }()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*Evaluate)
	if !ok || got.Lease != 5 || len(got.Vars) != 2 {
		t.Fatalf("got %#v", m)
	}
}

// TestIdleTimeoutFires: with heartbeats disabled on both ends, a
// silent peer trips the idle deadline.
func TestIdleTimeoutFires(t *testing.T) {
	opt := Options{Heartbeat: -1, IdleTimeout: 80 * time.Millisecond}
	a, b := pipePair(opt, opt)
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if _, err := a.Recv(); err == nil {
		t.Fatal("Recv on a silent connection returned a message")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle timeout took %v", elapsed)
	}
}

// TestHeartbeatKeepsIdleConnectionAlive: pings from the peer refresh
// the idle deadline (and are answered with pongs), so a protocol-idle
// but live link survives several idle windows. Runs over real TCP —
// the heartbeat exchange needs buffered transport, which net.Pipe's
// synchronous writes do not provide.
func TestHeartbeatKeepsIdleConnectionAlive(t *testing.T) {
	recvOpt := Options{Heartbeat: -1, IdleTimeout: 120 * time.Millisecond}
	sendOpt := Options{Heartbeat: 25 * time.Millisecond, IdleTimeout: 10 * time.Second}
	a, b := tcpPair(t, recvOpt, sendOpt)
	defer a.Close()
	defer b.Close()
	b.StartHeartbeat(0)

	type out struct {
		m   Message
		err error
	}
	res := make(chan out, 1)
	go func() {
		m, err := a.Recv()
		res <- out{m, err}
	}()
	// Several idle windows of silence (except heartbeats)…
	time.Sleep(400 * time.Millisecond)
	select {
	case o := <-res:
		t.Fatalf("connection died despite heartbeats: %v %v", o.m, o.err)
	default:
	}
	// …then a real message still arrives.
	go func() { _ = b.Send(Stop{}) }()
	select {
	case o := <-res:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if _, ok := o.m.(Stop); !ok {
			t.Fatalf("got %#v, want Stop", o.m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

// TestDialHandshake: Dial sends Hello, the server assigns an identity
// in its Welcome, and a reconnecting worker's id is echoed back —
// reconnect-with-hello at the transport level.
func TestDialHandshake(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	opt := Options{Heartbeat: -1, IdleTimeout: 2 * time.Second}

	helloIDs := make(chan uint64, 2)
	go func() {
		for assign := uint64(7); ; assign++ {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			conn, _, err := ServerHandshake(nc, opt, func(h Hello) (*Welcome, error) {
				helloIDs <- h.WorkerID
				id := assign
				if h.WorkerID != 0 {
					id = h.WorkerID
				}
				return &Welcome{WorkerID: id, Problem: "DTLZ2_5", NumVars: 14, NumObjs: 5}, nil
			})
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	c1, w1, err := Dial(l.Addr().String(), Hello{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if w1.WorkerID != 7 || <-helloIDs != 0 {
		t.Fatalf("first connect: welcome id %d", w1.WorkerID)
	}
	c2, w2, err := Dial(l.Addr().String(), Hello{WorkerID: 7}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if w2.WorkerID != 7 || <-helloIDs != 7 {
		t.Fatalf("reconnect: welcome id %d, want echoed 7", w2.WorkerID)
	}
}

// TestRunWorkerEvaluatesAndStops drives the full borgd runtime against
// a scripted master: one evaluation round-trip, then Stop.
func TestRunWorkerEvaluatesAndStops(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	opt := Options{Heartbeat: -1, IdleTimeout: 5 * time.Second}
	problem := problems.NewDTLZ2(5)

	result := make(chan *Result, 1)
	go func() {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		conn, _, err := ServerHandshake(nc, opt, func(h Hello) (*Welcome, error) {
			return &Welcome{
				WorkerID: 1,
				Problem:  problem.Name(),
				NumVars:  uint32(problem.NumVars()),
				NumObjs:  uint32(problem.NumObjs()),
			}, nil
		})
		if err != nil {
			return
		}
		defer conn.Close()
		vars := make([]float64, problem.NumVars())
		for i := range vars {
			vars[i] = 0.5
		}
		if err := conn.Send(&Evaluate{Lease: 11, SolID: 3, Operator: 2, Vars: vars}); err != nil {
			return
		}
		m, err := conn.Recv()
		if err != nil {
			return
		}
		if r, ok := m.(*Result); ok {
			result <- r
		}
		_ = conn.Send(Stop{})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = RunWorker(ctx, WorkerConfig{
		Addr:  l.Addr().String(),
		Conn:  opt,
		Delay: stats.NewConstant(0.001),
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	select {
	case r := <-result:
		if r.Lease != 11 || r.SolID != 3 || r.Operator != 2 {
			t.Fatalf("result echoed wrong ids: %#v", r)
		}
		if len(r.Objs) != problem.NumObjs() {
			t.Fatalf("result has %d objectives", len(r.Objs))
		}
		if r.EvalNanos == 0 {
			t.Error("EvalNanos not recorded")
		}
	default:
		t.Fatal("master never saw a result")
	}
}

// TestRunWorkerRejectsProblemMismatch: a resolvable problem whose
// dimensions disagree with the handshake is fatal, not retried.
func TestRunWorkerRejectsProblemMismatch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	opt := Options{Heartbeat: -1, IdleTimeout: 2 * time.Second}
	go func() {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		conn, _, err := ServerHandshake(nc, opt, func(Hello) (*Welcome, error) {
			return &Welcome{WorkerID: 1, Problem: "DTLZ2_5", NumVars: 999, NumObjs: 5}, nil
		})
		if err == nil {
			defer conn.Close()
			_, _ = conn.Recv() // hold until the worker bails
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = RunWorker(ctx, WorkerConfig{Addr: l.Addr().String(), Conn: opt})
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want dimension-mismatch error, got %v", err)
	}
}

// TestRunWorkerMultiProblem drives a multi-problem session: the master
// welcomes with the MultiProblem sentinel and names a different problem
// on each grant; an unresolvable name fails only its lease (empty
// Result), not the connection.
func TestRunWorkerMultiProblem(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	opt := Options{Heartbeat: -1, IdleTimeout: 5 * time.Second}
	zdt1 := problems.NewZDT(1)
	dtlz2 := problems.NewDTLZ2(5)

	results := make(chan *Result, 3)
	go func() {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		conn, _, err := ServerHandshake(nc, opt, func(h Hello) (*Welcome, error) {
			return &Welcome{WorkerID: 1, Problem: MultiProblem}, nil
		})
		if err != nil {
			return
		}
		defer conn.Close()
		send := func(lease uint64, name string, nvars int) bool {
			vars := make([]float64, nvars)
			for i := range vars {
				vars[i] = 0.5
			}
			if err := conn.Send(&Evaluate{Lease: lease, Problem: name, Vars: vars}); err != nil {
				return false
			}
			m, err := conn.Recv()
			if err != nil {
				return false
			}
			if r, ok := m.(*Result); ok {
				results <- r
			}
			return true
		}
		// Two different problems over one connection, then a bogus name.
		if !send(1, zdt1.Name(), zdt1.NumVars()) {
			return
		}
		if !send(2, dtlz2.Name(), dtlz2.NumVars()) {
			return
		}
		if !send(3, "NOSUCH", 4) {
			return
		}
		_ = conn.Send(Stop{})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{Addr: l.Addr().String(), Conn: opt}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	want := []struct {
		lease uint64
		objs  int
	}{{1, zdt1.NumObjs()}, {2, dtlz2.NumObjs()}, {3, 0}}
	for _, w := range want {
		select {
		case r := <-results:
			if r.Lease != w.lease || len(r.Objs) != w.objs {
				t.Fatalf("lease %d: got lease=%d objs=%d, want %d objs", w.lease, r.Lease, len(r.Objs), w.objs)
			}
		default:
			t.Fatalf("master never saw result for lease %d", w.lease)
		}
	}
}
