package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary (and seeded malformed) payloads to
// the frame decoder. Invariants: no panic ever; an error implies a nil
// message; a successful decode implies the payload was canonical — re-
// encoding the message reproduces it byte for byte (so there is exactly
// one wire form per message and corrupted-but-accepted frames are
// impossible).
//
// CI runs this as a short fuzz smoke (go test -fuzz=FuzzDecodeFrame
// -fuzztime=10s ./internal/wire); without -fuzz the seed corpus still
// executes as a regular test.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with every valid message…
	for _, m := range sampleMessages() {
		f.Add(EncodeFrame(m)[4:])
	}
	// …and hand-picked malformed shapes: truncations, bit flips,
	// hostile counts, wrong versions.
	valid := EncodeFrame(&Result{Lease: 9, Objs: []float64{1, 2, 3, 4, 5}})[4:]
	for cut := 0; cut <= len(valid); cut += 3 {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i += 5 {
		f.Add(flip(valid, i))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, byte(TagStop), 0, 0, 0, 0})
	f.Add(withCRC([]byte{Version, 0xee}))
	f.Add(withCRC(append([]byte{Version, byte(TagEvaluate)}, hugeCountBody()...)))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrame(payload)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside message %v", err, m)
			}
			return
		}
		re := EncodeFrame(m)
		if !bytes.Equal(re[4:], payload) {
			t.Fatalf("accepted non-canonical payload:\n  in  %x\n  out %x", payload, re[4:])
		}
	})
}
