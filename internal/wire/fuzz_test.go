package wire

import (
	"bytes"
	"testing"

	"borgmoea/internal/obs"
)

// FuzzDecodeFrame feeds arbitrary (and seeded malformed) payloads to
// the frame decoder. Invariants: no panic ever; an error implies a nil
// message; a successful decode implies the payload was canonical — re-
// encoding the message reproduces it byte for byte (so there is exactly
// one wire form per message and corrupted-but-accepted frames are
// impossible).
//
// CI runs this as a short fuzz smoke (go test -fuzz=FuzzDecodeFrame
// -fuzztime=10s ./internal/wire); without -fuzz the seed corpus still
// executes as a regular test.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with every valid message…
	for _, m := range sampleMessages() {
		f.Add(EncodeFrame(m)[4:])
	}
	// …and hand-picked malformed shapes: truncations, bit flips,
	// hostile counts, wrong versions.
	valid := EncodeFrame(&Result{Lease: 9, Objs: []float64{1, 2, 3, 4, 5}})[4:]
	for cut := 0; cut <= len(valid); cut += 3 {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i += 5 {
		f.Add(flip(valid, i))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, byte(TagStop), 0, 0, 0, 0})
	f.Add(withCRC([]byte{Version, 0xee}))
	f.Add(withCRC(append([]byte{Version, byte(TagEvaluate)}, hugeCountBody()...)))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrame(payload)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside message %v", err, m)
			}
			checkScratchDecode(t, payload, false)
			return
		}
		re := EncodeFrame(m)
		if !bytes.Equal(re[4:], payload) {
			t.Fatalf("accepted non-canonical payload:\n  in  %x\n  out %x", payload, re[4:])
		}
		checkScratchDecode(t, payload, true)
	})
}

// checkScratchDecode holds DecodeFrameInto to DecodeFrame's verdict on
// the same payload: same accept/reject decision, canonical re-encoding
// on accept, and — decoding twice into the same scratch — no smearing
// from the reused slices, strings, or structs.
func checkScratchDecode(t *testing.T, payload []byte, accepted bool) {
	t.Helper()
	var sc DecodeScratch
	for pass := 0; pass < 2; pass++ {
		m, err := DecodeFrameInto(payload, &sc)
		if err != nil {
			if accepted {
				t.Fatalf("scratch decode pass %d rejected an accepted payload: %v", pass, err)
			}
			if m != nil {
				t.Fatalf("scratch decode error %v alongside message %v", err, m)
			}
			return
		}
		if !accepted {
			t.Fatalf("scratch decode pass %d accepted a rejected payload: %v", pass, m)
		}
		if re := EncodeFrame(m); !bytes.Equal(re[4:], payload) {
			t.Fatalf("scratch decode pass %d not canonical:\n  in  %x\n  out %x", pass, payload, re[4:])
		}
	}
}

// FuzzDecodeTraced focuses the decoder invariants on the VersionTraced
// trace header: traced frames on every carrier tag, old-version frames
// without the header (backward compat must stay green), headers on
// non-carrier tags, truncated and wrong-length headers, and the
// non-canonical zero trace id. CI runs this as a third fuzz smoke.
func FuzzDecodeTraced(f *testing.F) {
	tc := obs.SpanContext{TraceID: 0x1234, SpanID: 0x5678, Flags: obs.FlagSampled}
	seeds := []Message{
		&Evaluate{Lease: 1, Vars: []float64{0.5}, Trace: tc},
		&Result{Lease: 1, EvalNanos: 9, Objs: []float64{1, 2}, Trace: tc},
		&Migrant{Island: 1, Epoch: 2, Objs: []float64{3}, Trace: tc},
		// The same messages untraced: their frames must stay Version 1.
		&Evaluate{Lease: 1, Vars: []float64{0.5}},
		&Result{Lease: 1, EvalNanos: 9, Objs: []float64{1, 2}},
		&Migrant{Island: 1, Epoch: 2, Objs: []float64{3}},
	}
	for _, m := range seeds {
		f.Add(EncodeFrame(m)[4:])
	}
	valid := EncodeFrame(seeds[0])[4:]
	for cut := 0; cut <= len(valid); cut++ {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i += 2 {
		f.Add(flip(valid, i))
	}
	f.Add(withCRC(append([]byte{VersionTraced, byte(TagStop)}, traceHeader(5, 6, 0)...)))
	f.Add(withCRC(append(append([]byte{VersionTraced, byte(TagEvaluate)}, traceHeader(0, 6, 1)...), evalBody()...)))
	f.Add(withCRC(append(append([]byte{VersionTraced, byte(TagEvaluate)}, append([]byte{16}, traceHeader(5, 6, 0)[2:]...)...), evalBody()...)))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrame(payload)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside message %v", err, m)
			}
			checkScratchDecode(t, payload, false)
			return
		}
		re := EncodeFrame(m)
		if !bytes.Equal(re[4:], payload) {
			t.Fatalf("accepted non-canonical payload:\n  in  %x\n  out %x", payload, re[4:])
		}
		checkScratchDecode(t, payload, true)
	})
}

// FuzzDecodeFederation focuses the same decoder invariants on the
// federation frames (Migrant, Delta), whose nested member layout has
// more length fields — and therefore more truncation and over-claim
// shapes — than the flat worker-protocol messages. CI runs this as a
// second fuzz smoke.
func FuzzDecodeFederation(f *testing.F) {
	seeds := []Message{
		&Migrant{Island: 1, Epoch: 2, SolID: 3, Operator: 4, Vars: []float64{0.5, 0.25}, Objs: []float64{1, 2, 3}},
		&Migrant{Operator: -1, Constrs: []float64{0}},
		&Delta{Island: 2, Seq: 9, Completed: 4096},
		&Delta{Island: 1, Seq: 1, Completed: 64, Members: []DeltaMember{
			{Operator: 5, Vars: []float64{0.1}, Objs: []float64{2, 4}},
			{Operator: -1, Objs: []float64{8, 16}, Constrs: []float64{1}},
		}},
	}
	for _, m := range seeds {
		f.Add(EncodeFrame(m)[4:])
	}
	valid := EncodeFrame(seeds[3])[4:]
	for cut := 0; cut <= len(valid); cut += 2 {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i += 3 {
		f.Add(flip(valid, i))
	}
	f.Add(withCRC(append([]byte{Version, byte(TagDelta)}, hugeDeltaBody()...)))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeFrame(payload)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside message %v", err, m)
			}
			checkScratchDecode(t, payload, false)
			return
		}
		re := EncodeFrame(m)
		if !bytes.Equal(re[4:], payload) {
			t.Fatalf("accepted non-canonical payload:\n  in  %x\n  out %x", payload, re[4:])
		}
		checkScratchDecode(t, payload, true)
	})
}
