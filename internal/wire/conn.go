package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"borgmoea/internal/obs"
)

// Options tunes a connection's liveness machinery. The zero value
// gives sane defaults; a negative Heartbeat disables the background
// pinger (useful in tests that exercise the idle timeout).
type Options struct {
	// Heartbeat is the interval between background Pings on an
	// otherwise idle link. 0 means DefaultHeartbeat; < 0 disables.
	Heartbeat time.Duration
	// IdleTimeout is how long Recv waits without any inbound frame
	// (heartbeats included) before declaring the peer dead. 0 means
	// 4× the effective heartbeat, or DefaultIdleTimeout when
	// heartbeats are disabled.
	IdleTimeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Metrics, when set, receives transport telemetry: frame and byte
	// counters in both directions, frame decode errors, and a
	// heartbeat round-trip-time histogram. Shared by every connection
	// built from these options; nil disables (zero hot-path cost).
	Metrics *obs.Registry
	// OnRTT, when set, receives every measured heartbeat round-trip
	// time in seconds, in addition to the Metrics histogram — the live
	// T_C feed of the scalability advisor (one-way communication time
	// ≈ RTT/2). Called from the connection's reader goroutine; keep it
	// fast and concurrency-safe.
	OnRTT func(seconds float64)
	// ReuseMessages makes Recv decode the hot-path messages (Evaluate,
	// Result, Migrant) into per-connection scratch structs, so a
	// steady-state receive allocates nothing. Only safe when every
	// message returned by Recv is fully consumed before the next Recv
	// call — the worker serve loop's pattern. Leave it off when
	// received messages are retained or handed to another goroutine
	// (the master's reader loops).
	ReuseMessages bool
}

// Wire-level metric names registered on Options.Metrics.
const (
	MetricFramesSent  = "wire.frames_sent"
	MetricFramesRecv  = "wire.frames_recv"
	MetricBytesSent   = "wire.bytes_sent"
	MetricBytesRecv   = "wire.bytes_recv"
	MetricFrameErrors = "wire.frame_errors"
	MetricRedials     = "wire.redials"
	MetricRTT         = "wire.heartbeat_rtt_seconds"
)

// connMetrics is the resolved instrument set of one connection. The
// zero value (from a nil registry) is fully inert.
type connMetrics struct {
	framesSent, framesRecv *obs.Counter
	bytesSent, bytesRecv   *obs.Counter
	frameErrors            *obs.Counter
	rtt                    *obs.Histogram
}

func newConnMetrics(reg *obs.Registry) connMetrics {
	return connMetrics{
		framesSent:  reg.Counter(MetricFramesSent),
		framesRecv:  reg.Counter(MetricFramesRecv),
		bytesSent:   reg.Counter(MetricBytesSent),
		bytesRecv:   reg.Counter(MetricBytesRecv),
		frameErrors: reg.Counter(MetricFrameErrors),
		rtt:         reg.Histogram(MetricRTT, nil),
	}
}

// countingReader counts bytes as they leave the socket, beneath the
// bufio layer, so read-ahead is attributed when it happens.
type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.n.Add(uint64(n))
	}
	return n, err
}

// Defaults for the zero Options value.
const (
	DefaultHeartbeat   = 2 * time.Second
	DefaultIdleTimeout = 30 * time.Second
)

func (o Options) heartbeat() time.Duration {
	switch {
	case o.Heartbeat < 0:
		return 0
	case o.Heartbeat == 0:
		return DefaultHeartbeat
	}
	return o.Heartbeat
}

func (o Options) idleTimeout() time.Duration {
	if o.IdleTimeout > 0 {
		return o.IdleTimeout
	}
	if hb := o.heartbeat(); hb > 0 {
		return 4 * hb
	}
	return DefaultIdleTimeout
}

func (o Options) writeTimeout() time.Duration {
	if o.WriteTimeout > 0 {
		return o.WriteTimeout
	}
	return 10 * time.Second
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 5 * time.Second
}

// Conn is one protocol connection: framed sends under a write deadline,
// framed receives under an idle deadline, and transparent Ping/Pong
// handling. Send is safe for concurrent use (the heartbeat goroutine
// shares it); Recv must be called from a single reader goroutine.
type Conn struct {
	nc       net.Conn
	br       *bufio.Reader
	opt      Options
	met      connMetrics
	pingNano atomic.Int64 // send time of the ping awaiting its pong
	wmu      sync.Mutex
	wbuf     []byte // frame scratch, reused under wmu
	rbuf     []byte // payload scratch, owned by the single Recv caller
	rsc      DecodeScratch
	done     chan struct{}
	once     sync.Once
}

func newConn(nc net.Conn, opt Options) *Conn {
	c := &Conn{
		nc:   nc,
		opt:  opt,
		met:  newConnMetrics(opt.Metrics),
		done: make(chan struct{}),
	}
	c.br = bufio.NewReader(&countingReader{r: nc, n: c.met.bytesRecv})
	return c
}

// RemoteAddr reports the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Send frames and writes one message under the write deadline. The
// frame is encoded into a per-connection scratch buffer guarded by
// the write lock, so steady-state sends allocate nothing.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], m)
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.opt.writeTimeout())); err != nil {
		return err
	}
	if _, err := c.nc.Write(c.wbuf); err != nil {
		return err
	}
	c.met.framesSent.Inc()
	c.met.bytesSent.Add(uint64(len(c.wbuf)))
	return nil
}

// Recv returns the next protocol message. Heartbeats are consumed
// internally: a Ping is answered with a Pong, and both refresh the
// idle deadline without surfacing. An idle timeout, a peer close, or a
// malformed frame all return an error — the connection is then dead.
//
// Frame payloads land in a per-connection buffer that decoding never
// leaks into a Message, so receives don't allocate a payload per
// frame. With Options.ReuseMessages the hot-path messages themselves
// are also reused (see the option's aliasing contract).
func (c *Conn) Recv() (Message, error) {
	for {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.opt.idleTimeout())); err != nil {
			return nil, err
		}
		var m Message
		payload, next, err := readFrame(c.br, c.rbuf)
		c.rbuf = next
		if err == nil {
			if c.opt.ReuseMessages {
				m, err = DecodeFrameInto(payload, &c.rsc)
			} else {
				m, err = DecodeFrame(payload)
			}
		}
		if err != nil {
			if !isTransportErr(err) {
				c.met.frameErrors.Inc()
			}
			return nil, err
		}
		c.met.framesRecv.Inc()
		switch m.(type) {
		case Ping:
			if err := c.Send(Pong{}); err != nil {
				return nil, err
			}
		case Pong:
			// Liveness only; the deadline reset above did the work —
			// but a pending ping's round trip is worth recording.
			if sent := c.pingNano.Swap(0); sent != 0 {
				rtt := time.Since(time.Unix(0, sent)).Seconds()
				c.met.rtt.Observe(rtt)
				if c.opt.OnRTT != nil {
					c.opt.OnRTT(rtt)
				}
			}
		default:
			return m, nil
		}
	}
}

// isTransportErr distinguishes connection-lifecycle errors (peer gone,
// idle timeout, shutdown) from protocol defects worth counting as
// frame errors (CRC mismatch, bad version, truncated body).
func isTransportErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// StartHeartbeat launches the background pinger at the given interval
// (0 = the connection's configured/default interval; disabled options
// make this a no-op). The pinger stops when the connection closes or a
// ping fails.
func (c *Conn) StartHeartbeat(interval time.Duration) {
	if interval <= 0 {
		interval = c.opt.heartbeat()
	}
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.pingNano.Store(time.Now().UnixNano())
				if err := c.Send(Ping{}); err != nil {
					return
				}
			}
		}
	}()
}

// Close tears the connection down; it is safe to call repeatedly and
// from any goroutine (Recv/Send unblock with errors).
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.nc.Close()
}

// Dial connects to a master, performs the client side of the handshake
// (send Hello, await Welcome), and returns the live connection. The
// caller decides when to StartHeartbeat — typically right after
// inspecting the Welcome.
func Dial(addr string, hello Hello, opt Options) (*Conn, *Welcome, error) {
	nc, err := net.DialTimeout("tcp", addr, opt.dialTimeout())
	if err != nil {
		return nil, nil, err
	}
	c := newConn(nc, opt)
	if err := c.Send(&hello); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	m, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	w, ok := m.(*Welcome)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake: got %s, want welcome", m.Tag())
	}
	return c, w, nil
}

// ServerHandshake performs the master side of the handshake on a
// freshly accepted connection: await the worker's Hello, let accept
// mint the Welcome (assigning or echoing the worker id), and send it.
// On any failure the connection is closed.
func ServerHandshake(nc net.Conn, opt Options, accept func(Hello) (*Welcome, error)) (*Conn, *Welcome, error) {
	c := newConn(nc, opt)
	m, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	h, ok := m.(*Hello)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake: got %s, want hello", m.Tag())
	}
	w, err := accept(*h)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	if err := c.Send(w); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	return c, w, nil
}
