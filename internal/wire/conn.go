package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Options tunes a connection's liveness machinery. The zero value
// gives sane defaults; a negative Heartbeat disables the background
// pinger (useful in tests that exercise the idle timeout).
type Options struct {
	// Heartbeat is the interval between background Pings on an
	// otherwise idle link. 0 means DefaultHeartbeat; < 0 disables.
	Heartbeat time.Duration
	// IdleTimeout is how long Recv waits without any inbound frame
	// (heartbeats included) before declaring the peer dead. 0 means
	// 4× the effective heartbeat, or DefaultIdleTimeout when
	// heartbeats are disabled.
	IdleTimeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
}

// Defaults for the zero Options value.
const (
	DefaultHeartbeat   = 2 * time.Second
	DefaultIdleTimeout = 30 * time.Second
)

func (o Options) heartbeat() time.Duration {
	switch {
	case o.Heartbeat < 0:
		return 0
	case o.Heartbeat == 0:
		return DefaultHeartbeat
	}
	return o.Heartbeat
}

func (o Options) idleTimeout() time.Duration {
	if o.IdleTimeout > 0 {
		return o.IdleTimeout
	}
	if hb := o.heartbeat(); hb > 0 {
		return 4 * hb
	}
	return DefaultIdleTimeout
}

func (o Options) writeTimeout() time.Duration {
	if o.WriteTimeout > 0 {
		return o.WriteTimeout
	}
	return 10 * time.Second
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 5 * time.Second
}

// Conn is one protocol connection: framed sends under a write deadline,
// framed receives under an idle deadline, and transparent Ping/Pong
// handling. Send is safe for concurrent use (the heartbeat goroutine
// shares it); Recv must be called from a single reader goroutine.
type Conn struct {
	nc   net.Conn
	br   *bufio.Reader
	opt  Options
	wmu  sync.Mutex
	done chan struct{}
	once sync.Once
}

func newConn(nc net.Conn, opt Options) *Conn {
	return &Conn{
		nc:   nc,
		br:   bufio.NewReader(nc),
		opt:  opt,
		done: make(chan struct{}),
	}
}

// RemoteAddr reports the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Send frames and writes one message under the write deadline.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.opt.writeTimeout())); err != nil {
		return err
	}
	return WriteMessage(c.nc, m)
}

// Recv returns the next protocol message. Heartbeats are consumed
// internally: a Ping is answered with a Pong, and both refresh the
// idle deadline without surfacing. An idle timeout, a peer close, or a
// malformed frame all return an error — the connection is then dead.
func (c *Conn) Recv() (Message, error) {
	for {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.opt.idleTimeout())); err != nil {
			return nil, err
		}
		m, err := ReadMessage(c.br)
		if err != nil {
			return nil, err
		}
		switch m.(type) {
		case Ping:
			if err := c.Send(Pong{}); err != nil {
				return nil, err
			}
		case Pong:
			// Liveness only; the deadline reset above did the work.
		default:
			return m, nil
		}
	}
}

// StartHeartbeat launches the background pinger at the given interval
// (0 = the connection's configured/default interval; disabled options
// make this a no-op). The pinger stops when the connection closes or a
// ping fails.
func (c *Conn) StartHeartbeat(interval time.Duration) {
	if interval <= 0 {
		interval = c.opt.heartbeat()
	}
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				if err := c.Send(Ping{}); err != nil {
					return
				}
			}
		}
	}()
}

// Close tears the connection down; it is safe to call repeatedly and
// from any goroutine (Recv/Send unblock with errors).
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.nc.Close()
}

// Dial connects to a master, performs the client side of the handshake
// (send Hello, await Welcome), and returns the live connection. The
// caller decides when to StartHeartbeat — typically right after
// inspecting the Welcome.
func Dial(addr string, hello Hello, opt Options) (*Conn, *Welcome, error) {
	nc, err := net.DialTimeout("tcp", addr, opt.dialTimeout())
	if err != nil {
		return nil, nil, err
	}
	c := newConn(nc, opt)
	if err := c.Send(&hello); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	m, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	w, ok := m.(*Welcome)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake: got %s, want welcome", m.Tag())
	}
	return c, w, nil
}

// ServerHandshake performs the master side of the handshake on a
// freshly accepted connection: await the worker's Hello, let accept
// mint the Welcome (assigning or echoing the worker id), and send it.
// On any failure the connection is closed.
func ServerHandshake(nc net.Conn, opt Options, accept func(Hello) (*Welcome, error)) (*Conn, *Welcome, error) {
	c := newConn(nc, opt)
	m, err := c.Recv()
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	h, ok := m.(*Hello)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake: got %s, want hello", m.Tag())
	}
	w, err := accept(*h)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	if err := c.Send(w); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	return c, w, nil
}
