package shutdown

import (
	"context"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestFlusherRunsOnceInOrder(t *testing.T) {
	var f Flusher
	var got []int
	f.Add(func() { got = append(got, 1) })
	f.Add(func() { got = append(got, 2) })
	f.Flush()
	f.Flush() // idempotent
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("hooks ran %v, want [1 2] exactly once", got)
	}
	// A hook added after the flush runs immediately.
	f.Add(func() { got = append(got, 3) })
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("late hook: got %v", got)
	}
}

func TestFlusherConcurrentFlush(t *testing.T) {
	var f Flusher
	var n int
	f.Add(func() { n++ })
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Flush()
		}()
	}
	wg.Wait()
	if n != 1 {
		t.Fatalf("hook ran %d times under concurrent flush", n)
	}
}

func TestNotifyContextCancelsOnSignal(t *testing.T) {
	sigC := make(chan os.Signal, 1)
	ctx, stop := NotifyContext(context.Background(), func(s os.Signal) { sigC <- s })
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
	select {
	case s := <-sigC:
		if s != syscall.SIGTERM {
			t.Fatalf("onSignal saw %v, want SIGTERM", s)
		}
	case <-time.After(time.Second):
		t.Fatal("onSignal never ran")
	}
}

func TestExitCode(t *testing.T) {
	if c := ExitCode(os.Interrupt); c != 130 {
		t.Fatalf("SIGINT exit code = %d, want 130", c)
	}
	if c := ExitCode(syscall.SIGTERM); c != 143 {
		t.Fatalf("SIGTERM exit code = %d, want 143", c)
	}
}
