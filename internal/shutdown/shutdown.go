// Package shutdown is the one SIGINT/SIGTERM path shared by the borg
// CLI, the borgd worker daemon and the borgsvc job server. It
// deduplicates the flush-on-signal logic those commands used to copy:
// cleanup hooks registered on a Flusher run exactly once — on the
// normal exit path or on the first signal — so interrupted runs keep
// their telemetry, journals and checkpoints.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Signals are the termination signals every daemon honors.
var Signals = []os.Signal{os.Interrupt, syscall.SIGTERM}

// Flusher runs registered cleanup hooks exactly once, in registration
// order. The zero value is ready to use; all methods are safe for
// concurrent use, because a signal goroutine may race the normal exit
// path.
type Flusher struct {
	mu   sync.Mutex
	fns  []func()
	done bool
}

// Add registers a hook. A hook added after the flush already ran is
// invoked immediately, so nothing registered is ever skipped.
func (f *Flusher) Add(fn func()) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		fn()
		return
	}
	f.fns = append(f.fns, fn)
	f.mu.Unlock()
}

// Flush runs the hooks once, in registration order; later calls are
// no-ops.
func (f *Flusher) Flush() {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	fns := f.fns
	f.fns = nil
	f.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// NotifyContext returns a context cancelled on the first termination
// signal, like signal.NotifyContext, additionally reporting that
// signal to onSignal (may be nil) from the watching goroutine — the
// daemons' "signal received; shutting down" log line. stop releases
// the signal registration and cancels the context.
func NotifyContext(parent context.Context, onSignal func(os.Signal)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, Signals...)
	go func() {
		select {
		case sig := <-ch:
			if onSignal != nil {
				onSignal(sig)
			}
			cancel()
		case <-ctx.Done():
		}
	}()
	stop := func() {
		signal.Stop(ch)
		cancel()
	}
	return ctx, stop
}

// ExitAfterFlush installs the CLI path: on the first termination
// signal, report it, run the Flusher's hooks, and exit with the
// conventional 128+signum code. Commands whose run loop can be
// interrupted cooperatively should prefer NotifyContext; this is for
// drivers that cannot be stopped mid-stride (the virtual-time runs)
// but whose telemetry must still survive the interrupt.
func ExitAfterFlush(f *Flusher, onSignal func(os.Signal)) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, Signals...)
	go func() {
		sig := <-ch
		if onSignal != nil {
			onSignal(sig)
		}
		f.Flush()
		os.Exit(ExitCode(sig))
	}()
}

// ExitCode maps a termination signal to the conventional shell exit
// code (130 for SIGINT, 143 for SIGTERM).
func ExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}
