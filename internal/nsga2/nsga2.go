// Package nsga2 implements NSGA-II (Deb et al. 2002): fast
// nondominated sorting, crowding distance, binary tournament
// selection, SBX crossover and polynomial mutation. It serves as the
// classical generational baseline against the steady-state Borg MOEA —
// the per-generation barrier of its evolutionary cycle is exactly what
// the paper's synchronous master-slave model (Eq. 6) prices, so the
// pairing lets the repository compare both the algorithms and their
// parallel coordination models.
package nsga2

import (
	"fmt"
	"math"
	"sort"

	"borgmoea/internal/operators"
	"borgmoea/internal/problems"
	"borgmoea/internal/rng"
)

// Config parameterizes NSGA-II.
type Config struct {
	// PopulationSize is the (even) population size. Default 100.
	PopulationSize int
	// Crossover is the recombination operator (default SBX with
	// rate 1.0, index 15). Must have arity 2.
	Crossover operators.Operator
	// Mutation is applied to every offspring (default polynomial
	// mutation, rate 1/L, index 20).
	Mutation operators.Operator
	// Seed seeds the random stream.
	Seed uint64
}

func (c *Config) normalize() error {
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.PopulationSize < 4 {
		return fmt.Errorf("nsga2: population size %d too small", c.PopulationSize)
	}
	if c.PopulationSize%2 != 0 {
		c.PopulationSize++ // pairs of offspring
	}
	if c.Crossover == nil {
		c.Crossover = operators.NewSBX()
	}
	if c.Crossover.Arity() != 2 {
		return fmt.Errorf("nsga2: crossover must take 2 parents, %s takes %d",
			c.Crossover.Name(), c.Crossover.Arity())
	}
	if c.Mutation == nil {
		c.Mutation = operators.NewPM()
	}
	if c.Mutation.Arity() != 1 {
		return fmt.Errorf("nsga2: mutation must take 1 parent")
	}
	return nil
}

// individual is one population member with its NSGA-II bookkeeping.
type individual struct {
	vars     []float64
	objs     []float64
	rank     int
	crowding float64
}

// NSGA2 is the algorithm state.
type NSGA2 struct {
	problem problems.Problem
	cfg     Config
	rng     *rng.Source
	lo, hi  []float64

	pop         []*individual
	evaluations uint64
	generations uint64
}

// New constructs an NSGA-II instance.
func New(problem problems.Problem, cfg Config) (*NSGA2, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	lo, hi := problem.Bounds()
	return &NSGA2{
		problem: problem,
		cfg:     cfg,
		rng:     rng.New(cfg.Seed ^ 0x6e73676132), // "nsga2"
		lo:      lo,
		hi:      hi,
	}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(problem problems.Problem, cfg Config) *NSGA2 {
	a, err := New(problem, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Evaluations returns the number of function evaluations consumed.
func (a *NSGA2) Evaluations() uint64 { return a.evaluations }

// Generations returns the number of completed generations.
func (a *NSGA2) Generations() uint64 { return a.generations }

// Front returns the objective vectors of the current first
// nondominated front.
func (a *NSGA2) Front() [][]float64 {
	var out [][]float64
	for _, ind := range a.pop {
		if ind.rank == 0 {
			out = append(out, append([]float64(nil), ind.objs...))
		}
	}
	return out
}

// FrontVars returns the decision vectors of the first front.
func (a *NSGA2) FrontVars() [][]float64 {
	var out [][]float64
	for _, ind := range a.pop {
		if ind.rank == 0 {
			out = append(out, append([]float64(nil), ind.vars...))
		}
	}
	return out
}

func (a *NSGA2) evaluate(vars []float64) *individual {
	ind := &individual{vars: vars, objs: make([]float64, a.problem.NumObjs())}
	a.problem.Evaluate(vars, ind.objs)
	a.evaluations++
	return ind
}

func (a *NSGA2) initialize() {
	a.pop = make([]*individual, a.cfg.PopulationSize)
	for i := range a.pop {
		vars := make([]float64, len(a.lo))
		for j := range vars {
			vars[j] = a.rng.Range(a.lo[j], a.hi[j])
		}
		a.pop[i] = a.evaluate(vars)
	}
	rankAndCrowd(a.pop)
}

// Run executes NSGA-II until the evaluation budget is exhausted.
func (a *NSGA2) Run(maxEvaluations uint64) {
	if a.pop == nil {
		a.initialize()
	}
	for a.evaluations < maxEvaluations {
		a.Generation()
	}
}

// Generation performs one full generational cycle (the synchronous
// unit of work priced by Eq. 6).
func (a *NSGA2) Generation() {
	if a.pop == nil {
		a.initialize()
		return
	}
	offspring := make([]*individual, 0, a.cfg.PopulationSize)
	for len(offspring) < a.cfg.PopulationSize {
		p1 := a.tournament()
		p2 := a.tournament()
		children := a.cfg.Crossover.Apply([][]float64{p1.vars, p2.vars}, a.lo, a.hi, a.rng)
		for _, c := range children {
			if len(offspring) >= a.cfg.PopulationSize {
				break
			}
			mutated := a.cfg.Mutation.Apply([][]float64{c}, a.lo, a.hi, a.rng)[0]
			offspring = append(offspring, a.evaluate(mutated))
		}
	}
	// Environmental selection over the combined population.
	combined := append(append([]*individual(nil), a.pop...), offspring...)
	fronts := fastNondominatedSort(combined)
	next := make([]*individual, 0, a.cfg.PopulationSize)
	for _, front := range fronts {
		assignCrowding(front)
		if len(next)+len(front) <= a.cfg.PopulationSize {
			next = append(next, front...)
			continue
		}
		sort.Slice(front, func(i, j int) bool {
			return front[i].crowding > front[j].crowding
		})
		next = append(next, front[:a.cfg.PopulationSize-len(next)]...)
		break
	}
	a.pop = next
	rankAndCrowd(a.pop)
	a.generations++
}

// tournament is NSGA-II's binary tournament on (rank, crowding).
func (a *NSGA2) tournament() *individual {
	x := a.pop[a.rng.Intn(len(a.pop))]
	y := a.pop[a.rng.Intn(len(a.pop))]
	if crowdedLess(x, y) {
		return x
	}
	return y
}

// crowdedLess is the crowded-comparison operator: lower rank wins,
// then larger crowding distance.
func crowdedLess(x, y *individual) bool {
	if x.rank != y.rank {
		return x.rank < y.rank
	}
	return x.crowding > y.crowding
}

// dominates is Pareto dominance on the individuals' objectives.
func dominates(x, y *individual) bool {
	better := false
	for i := range x.objs {
		switch {
		case x.objs[i] < y.objs[i]:
			better = true
		case x.objs[i] > y.objs[i]:
			return false
		}
	}
	return better
}

// fastNondominatedSort partitions the population into fronts and sets
// each individual's rank.
func fastNondominatedSort(pop []*individual) [][]*individual {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var first []*individual
	firstIdx := []int{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			first = append(first, pop[i])
			firstIdx = append(firstIdx, i)
		}
	}
	fronts := [][]*individual{first}
	frontIdx := firstIdx
	for rank := 0; len(frontIdx) > 0; rank++ {
		var nextIdx []int
		var next []*individual
		for _, i := range frontIdx {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					nextIdx = append(nextIdx, j)
					next = append(next, pop[j])
				}
			}
		}
		if len(next) > 0 {
			fronts = append(fronts, next)
		}
		frontIdx = nextIdx
	}
	return fronts
}

// assignCrowding computes crowding distances within one front.
func assignCrowding(front []*individual) {
	n := len(front)
	if n == 0 {
		return
	}
	for _, ind := range front {
		ind.crowding = 0
	}
	if n <= 2 {
		for _, ind := range front {
			ind.crowding = math.Inf(1)
		}
		return
	}
	m := len(front[0].objs)
	for k := 0; k < m; k++ {
		k := k
		sort.Slice(front, func(i, j int) bool { return front[i].objs[k] < front[j].objs[k] })
		lo, hi := front[0].objs[k], front[n-1].objs[k]
		front[0].crowding = math.Inf(1)
		front[n-1].crowding = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < n-1; i++ {
			front[i].crowding += (front[i+1].objs[k] - front[i-1].objs[k]) / (hi - lo)
		}
	}
}

// rankAndCrowd refreshes rank and crowding bookkeeping for the whole
// population.
func rankAndCrowd(pop []*individual) {
	for _, front := range fastNondominatedSort(pop) {
		assignCrowding(front)
	}
}
