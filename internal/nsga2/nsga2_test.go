package nsga2

import (
	"math"
	"testing"

	"borgmoea/internal/metrics"
	"borgmoea/internal/problems"
)

func mkInd(objs ...float64) *individual {
	return &individual{objs: objs}
}

func TestFastNondominatedSort(t *testing.T) {
	pop := []*individual{
		mkInd(1, 5), mkInd(2, 2), mkInd(5, 1), // front 0
		mkInd(3, 3), mkInd(6, 6), // fronts 1 and 2
	}
	fronts := fastNondominatedSort(pop)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts, want 3", len(fronts))
	}
	if len(fronts[0]) != 3 {
		t.Fatalf("front 0 has %d members, want 3", len(fronts[0]))
	}
	if pop[3].rank != 1 || pop[4].rank != 2 {
		t.Fatalf("ranks wrong: %d %d", pop[3].rank, pop[4].rank)
	}
	// Within-front mutual nondominance.
	for _, front := range fronts {
		for i, x := range front {
			for j, y := range front {
				if i != j && dominates(x, y) {
					t.Fatal("front member dominates a same-front member")
				}
			}
		}
	}
}

func TestCrowdingDistance(t *testing.T) {
	front := []*individual{
		mkInd(0, 1), mkInd(0.5, 0.5), mkInd(1, 0),
	}
	assignCrowding(front)
	// Boundary points get infinite crowding; the middle point gets
	// (1-0)/(1-0) + (1-0)/(1-0) = 2.
	inf := 0
	var mid *individual
	for _, ind := range front {
		if math.IsInf(ind.crowding, 1) {
			inf++
		} else {
			mid = ind
		}
	}
	if inf != 2 || mid == nil {
		t.Fatalf("boundary crowding wrong: %v", front)
	}
	if math.Abs(mid.crowding-2) > 1e-12 {
		t.Fatalf("middle crowding = %v, want 2", mid.crowding)
	}
}

func TestCrowdingSmallFronts(t *testing.T) {
	front := []*individual{mkInd(1, 1), mkInd(2, 0)}
	assignCrowding(front)
	for _, ind := range front {
		if !math.IsInf(ind.crowding, 1) {
			t.Fatal("2-member front should have infinite crowding")
		}
	}
	assignCrowding(nil) // must not panic
}

func TestCrowdedComparison(t *testing.T) {
	a := &individual{rank: 0, crowding: 1}
	b := &individual{rank: 1, crowding: 99}
	if !crowdedLess(a, b) {
		t.Fatal("lower rank must win")
	}
	c := &individual{rank: 0, crowding: 5}
	if !crowdedLess(c, a) {
		t.Fatal("same rank: larger crowding must win")
	}
}

func TestConfigValidation(t *testing.T) {
	p := problems.NewDTLZ2(2)
	if _, err := New(p, Config{PopulationSize: 2}); err == nil {
		t.Error("tiny population accepted")
	}
	// Odd population rounds up.
	a := MustNew(p, Config{PopulationSize: 101})
	if a.cfg.PopulationSize != 102 {
		t.Errorf("odd population size not rounded: %d", a.cfg.PopulationSize)
	}
}

func TestPopulationSizeStable(t *testing.T) {
	a := MustNew(problems.NewDTLZ2(2), Config{PopulationSize: 40, Seed: 1})
	a.Run(2000)
	if len(a.pop) != 40 {
		t.Fatalf("population drifted to %d members", len(a.pop))
	}
	if a.Generations() == 0 {
		t.Fatal("no generations recorded")
	}
	if a.Evaluations() < 2000 {
		t.Fatalf("budget not consumed: %d", a.Evaluations())
	}
}

func TestConvergenceZDTLikeDTLZ2(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence test skipped in -short mode")
	}
	a := MustNew(problems.NewDTLZ2(2), Config{Seed: 2})
	a.Run(20000)
	front := a.Front()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// Mean distance to the unit circle.
	sum := 0.0
	for _, f := range front {
		sum += math.Abs(math.Sqrt(f[0]*f[0]+f[1]*f[1]) - 1)
	}
	if gd := sum / float64(len(front)); gd > 0.02 {
		t.Fatalf("NSGA-II front distance = %v, want < 0.02", gd)
	}
	hv := metrics.Hypervolume(front, []float64{1.1, 1.1})
	ideal := problems.IdealSphereHypervolume(2, 1.1)
	if hv < 0.92*ideal {
		t.Fatalf("NSGA-II normalized HV = %v, want > 0.92", hv/ideal)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() [][]float64 {
		a := MustNew(problems.NewDTLZ2(2), Config{Seed: 7})
		a.Run(3000)
		return a.Front()
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("replays differ in front size: %d vs %d", len(x), len(y))
	}
	for i := range x {
		for j := range x[i] {
			if x[i][j] != y[i][j] {
				t.Fatal("identical seeds produced different fronts")
			}
		}
	}
}

func TestFrontVarsMatchFront(t *testing.T) {
	a := MustNew(problems.NewDTLZ2(3), Config{PopulationSize: 30, Seed: 3})
	a.Run(1500)
	objs := a.Front()
	vars := a.FrontVars()
	if len(objs) != len(vars) {
		t.Fatalf("front objs %d != vars %d", len(objs), len(vars))
	}
	// Re-evaluating the vars must give the recorded objectives.
	p := problems.NewDTLZ2(3)
	tmp := make([]float64, 3)
	for i := range vars {
		p.Evaluate(vars[i], tmp)
		for j := range tmp {
			if math.Abs(tmp[j]-objs[i][j]) > 1e-12 {
				t.Fatal("front vars do not reproduce front objectives")
			}
		}
	}
}

// TestBorgOutperformsNSGA2OnManyObjectives reproduces the motivation
// for Borg's ε-archive: on the 5-objective DTLZ2, NSGA-II's crowding
// selection degrades while Borg keeps converging (Hadka & Reed 2013).
func TestBorgStyleArchiveBeatsCrowdingAtFiveObjectives(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison skipped in -short mode")
	}
	a := MustNew(problems.NewDTLZ2(5), Config{Seed: 4})
	a.Run(20000)
	sum, n := 0.0, 0
	for _, f := range a.Front() {
		s := 0.0
		for _, x := range f {
			s += x * x
		}
		sum += math.Abs(math.Sqrt(s) - 1)
		n++
	}
	nsgaDist := sum / float64(n)
	// NSGA-II on 5 objectives typically stalls well off the front;
	// just require it produced a valid (finite, nonempty) answer and
	// record the gap — the cross-algorithm comparison lives in the
	// compare command and the core tests assert Borg's side.
	if n == 0 || math.IsNaN(nsgaDist) {
		t.Fatal("NSGA-II produced no usable front")
	}
	t.Logf("NSGA-II 5-objective mean front distance: %.4f", nsgaDist)
}

func BenchmarkGeneration(b *testing.B) {
	a := MustNew(problems.NewDTLZ2(5), Config{Seed: 1})
	a.Generation() // initialize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Generation()
	}
}
