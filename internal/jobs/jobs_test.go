package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

// startWorkers launches n in-process borgd-equivalent workers dialing
// addr, with fast redial backoff so kill-and-restart tests reconnect
// promptly. A non-nil delay slows each evaluation (the paper's T_F).
func startWorkers(ctx context.Context, n int, addr string, delay stats.Distribution) {
	for i := 0; i < n; i++ {
		go func(seed uint64) {
			wire.RunWorker(ctx, wire.WorkerConfig{ //nolint:errcheck // ctx cancel ends it
				Addr:       addr,
				Backoff:    20 * time.Millisecond,
				MaxBackoff: 300 * time.Millisecond,
				Delay:      delay,
				Seed:       seed,
			})
		}(uint64(i + 1))
	}
}

// obsServe mounts the scheduler's API on a loopback debug server.
func obsServe(s *Scheduler) (*obs.DebugServer, error) {
	return obs.ServeDebug("127.0.0.1:0", nil, s.DebugOptions()...)
}

// httpDo runs one request and returns (status code, body).
func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, url, err)
	}
	return resp.StatusCode, string(data)
}

func mustUnmarshal(t *testing.T, data string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(data), v); err != nil {
		t.Fatalf("unmarshal %.120q: %v", data, err)
	}
}

// waitJobs polls the scheduler until every listed job satisfies pred,
// failing the test at the deadline.
func waitJobs(t *testing.T, s *Scheduler, timeout time.Duration, pred func(Status) bool) []Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		list, err := s.List()
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		all := len(list) > 0
		for _, st := range list {
			if !pred(st) {
				all = false
				break
			}
		}
		if all {
			return list
		}
		if time.Now().After(deadline) {
			for _, st := range list {
				t.Logf("job %s: state=%s evals=%d/%d workers=%d pending=%d", st.ID, st.State, st.Evaluations, st.Budget, st.Workers, st.Pending)
			}
			t.Fatalf("jobs not settled after %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSpecNormalize(t *testing.T) {
	bad := []Spec{
		{},                                   // no problem
		{Problem: "NOSUCH", Evaluations: 10}, // unknown problem
		{Problem: "ZDT1"},                    // no budget
		{Problem: "ZDT1", Evaluations: MaxEvaluations + 1},
		{Problem: "ZDT1", Evaluations: 10, Priority: -1},
		{Problem: "ZDT1", Evaluations: 10, Priority: MaxPriority + 1},
		{Problem: "ZDT1", Evaluations: 10, Population: 2},
		{Problem: "ZDT1", Evaluations: 10, Population: MaxPopulation + 1},
		{Problem: "ZDT1", Evaluations: 10, Epsilon: -0.1},
		{Problem: "ZDT1", Evaluations: 10, Epsilons: []float64{0.1}}, // 1 for 2 objs
		{Problem: "ZDT1", Evaluations: 10, Epsilons: []float64{0.1, math.NaN()}},
		{Problem: "ZDT1", Evaluations: 10, Epsilons: []float64{0.1, math.Inf(1)}},
		{Problem: "DTLZ2", Evaluations: 10}, // family without objective count
	}
	for i, spec := range bad {
		sp := spec
		if _, _, err := sp.Normalize(); err == nil {
			t.Errorf("spec %d (%+v): expected an error", i, spec)
		}
	}

	sp := Spec{Problem: "DTLZ2", Objectives: 5, Evaluations: 100}
	p, cfg, err := sp.Normalize()
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if p.Name() != "DTLZ2_5" {
		t.Errorf("resolved %s, want DTLZ2_5", p.Name())
	}
	if sp.Priority != 1 || sp.Seed != 1 {
		t.Errorf("defaults not filled: priority=%d seed=%d", sp.Priority, sp.Seed)
	}
	if len(cfg.Epsilons) != 5 || cfg.Epsilons[0] != DefaultEpsilon {
		t.Errorf("epsilon defaults wrong: %v", cfg.Epsilons)
	}
}

func TestDecodeSubmit(t *testing.T) {
	spec, err := DecodeSubmit(strings.NewReader(`{"problem":"ZDT1","evaluations":50,"priority":2}`))
	if err != nil {
		t.Fatalf("valid submission rejected: %v", err)
	}
	if spec.Problem != "ZDT1" || spec.Evaluations != 50 || spec.Priority != 2 {
		t.Errorf("decoded %+v", spec)
	}
	for name, body := range map[string]string{
		"unknown field": `{"problem":"ZDT1","evaluations":50,"bogus":1}`,
		"trailing data": `{"problem":"ZDT1","evaluations":50} extra`,
		"not json":      `problem=ZDT1`,
		"negative nfe":  `{"problem":"ZDT1","evaluations":-5}`,
		"huge number":   `{"problem":"ZDT1","evaluations":1e99}`,
		"oversized":     `{"problem":"` + strings.Repeat("a", MaxSubmitBytes) + `"}`,
	} {
		if _, err := DecodeSubmit(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestManyConcurrentJobsFairShare is the multi-tenancy acceptance
// test: 64 jobs share an 8-worker loopback fleet and all complete,
// with stride fair-share spreading first results across every job
// before any single job can finish — no starvation.
func TestManyConcurrentJobsFairShare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	s, err := New(Config{
		FleetListen:  "127.0.0.1:0",
		LeaseTimeout: 5 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const jobsN = 64
	const budget = 30
	for i := 0; i < jobsN; i++ {
		spec := &Spec{Problem: "ZDT1", Evaluations: budget, Population: 8, Seed: uint64(i + 1)}
		if i%2 == 1 {
			spec.Problem = "DTLZ2"
			spec.Objectives = 3
		}
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 8, s.FleetAddr(), nil)

	list := waitJobs(t, s, 120*time.Second, func(st Status) bool { return st.State == StateDone })
	if len(list) != jobsN {
		t.Fatalf("listed %d jobs, want %d", len(list), jobsN)
	}
	var maxFirst, minFinished float64
	minFinished = math.Inf(1)
	for _, st := range list {
		if st.Evaluations != budget {
			t.Errorf("%s: %d evaluations, want %d", st.ID, st.Evaluations, budget)
		}
		if st.ArchiveSize == 0 {
			t.Errorf("%s: empty archive", st.ID)
		}
		if st.FirstResultSeconds == 0 || st.FinishedSeconds == 0 {
			t.Errorf("%s: missing timing (first=%v finished=%v)", st.ID, st.FirstResultSeconds, st.FinishedSeconds)
		}
		maxFirst = math.Max(maxFirst, st.FirstResultSeconds)
		minFinished = math.Min(minFinished, st.FinishedSeconds)
	}
	// Fair share: every job received its first accepted result before
	// any job was allowed to consume its whole budget. A starving
	// scheduler (FIFO job draining) fails this by construction.
	if maxFirst >= minFinished {
		t.Errorf("starvation: slowest first result at %.3fs, fastest completion at %.3fs", maxFirst, minFinished)
	}
}

// TestPriorityWeighting: a priority-4 job and a priority-1 job with
// equal budgets share a small fleet; the heavy one must finish first
// because it receives 4x the grants.
func TestPriorityWeighting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	s, err := New(Config{FleetListen: "127.0.0.1:0", LeaseTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const budget = 300
	high, err := s.Submit(&Spec{Problem: "ZDT1", Evaluations: budget, Population: 8, Priority: 4})
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(&Spec{Problem: "ZDT1", Evaluations: budget, Population: 8, Priority: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 3, s.FleetAddr(), nil)

	waitJobs(t, s, 120*time.Second, func(st Status) bool { return st.State == StateDone })
	hs, _ := s.Get(high.ID)
	ls, _ := s.Get(low.ID)
	if hs.FinishedSeconds >= ls.FinishedSeconds {
		t.Errorf("priority 4 finished at %.3fs, after priority 1 at %.3fs", hs.FinishedSeconds, ls.FinishedSeconds)
	}
}

// TestBackpressureAndCancel exercises the bounded queue (429 path) and
// cancellation of queued and running jobs.
func TestBackpressureAndCancel(t *testing.T) {
	s, err := New(Config{
		FleetListen: "127.0.0.1:0",
		MaxActive:   1,
		MaxQueue:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := func(seed uint64) *Spec {
		return &Spec{Problem: "ZDT1", Evaluations: 1000, Population: 8, Seed: seed}
	}
	running, err := s.Submit(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	q1, err := s.Submit(spec(2))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(spec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Get(running.ID); st.State != StateRunning {
		t.Fatalf("first job %s, want running", st.State)
	}
	if st, _ := s.Get(q1.ID); st.State != StateQueued {
		t.Fatalf("second job %s, want queued", st.State)
	}
	if _, err := s.Submit(spec(4)); err != ErrOverloaded {
		t.Fatalf("overflow submit: %v, want ErrOverloaded", err)
	}

	// Cancelling a queued job frees its backlog slot.
	if err := s.Cancel(q1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec(5)); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	// Cancelling the running job promotes the next queued one.
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Get(q2.ID); st.State != StateRunning {
		t.Fatalf("promoted job %s, want running", st.State)
	}
	if st, _ := s.Get(running.ID); st.State != StateCancelled {
		t.Fatalf("cancelled job %s", st.State)
	}
	if err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel is not idempotent: %v", err)
	}
	if err := s.Cancel("j999999"); err != ErrNotFound {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
}

// replayFromFile replays a persisted job checkpoint off-line and
// returns the reconstructed core and algorithm state — the test's
// independent implementation of what resume does.
func replayFromFile(t *testing.T, dir, id string, spec *Spec) (*master.Core, *core.Borg) {
	t.Helper()
	sp := *spec
	problem, algCfg, err := sp.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, id+".bmel"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := master.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(problem, algCfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := master.Replay(log, master.ReplayConfig{
		Alg:      &jobAlg{b: b},
		Evaluate: evalFor(problem),
	})
	if err != nil {
		t.Fatalf("replay %s: %v", id, err)
	}
	return mc, b
}

// archiveJSON serializes an archive the way the result endpoint does.
func archiveJSON(t *testing.T, b *core.Borg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveArchive(&buf, b.Archive()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKillAndRestartResume is the durability acceptance test: kill a
// scheduler mid-run, verify the persisted BMEL streams replay
// deterministically to the pre-kill state, restart on the same fleet
// address, and watch the resumed jobs run to completion — with the
// final archive identical to an independent replay of the full log.
func TestKillAndRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	cfg := Config{
		FleetListener:   ln,
		LeaseTimeout:    2 * time.Second,
		StateDir:        dir,
		CheckpointEvery: 50,
		Logf:            t.Logf,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	specs := []*Spec{
		{Problem: "ZDT1", Evaluations: 2000, Population: 16, Seed: 7},
		{Problem: "DTLZ2", Objectives: 5, Evaluations: 1500, Population: 16, Seed: 11},
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		st, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	// Workers outlive the scheduler: they redial until a new one binds
	// the same address — the restart story borgd already implements.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 3, addr, stats.NewConstant(0.002))

	waitJobs(t, s1, 120*time.Second, func(st Status) bool {
		return st.Evaluations >= 200
	})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The persisted event logs replay deterministically: two
	// independent replays agree exactly, both on protocol state and on
	// the reconstructed archive.
	preKill := make(map[string]uint64)
	for i, id := range ids {
		mc1, b1 := replayFromFile(t, dir, id, specs[i])
		mc2, b2 := replayFromFile(t, dir, id, specs[i])
		if mc1.Completed() != mc2.Completed() {
			t.Fatalf("%s: replays disagree on completed (%d vs %d)", id, mc1.Completed(), mc2.Completed())
		}
		if mc1.Completed() < 200 {
			t.Errorf("%s: replayed only %d evaluations, want >= 200", id, mc1.Completed())
		}
		if !bytes.Equal(archiveJSON(t, b1), archiveJSON(t, b2)) {
			t.Fatalf("%s: replays disagree on the archive", id)
		}
		preKill[id] = mc1.Completed()
	}

	// Restart on the same address; resumed jobs continue where the
	// replay left them.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FleetListener = ln2
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	list, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(ids) {
		t.Fatalf("resumed %d jobs, want %d", len(list), len(ids))
	}
	for _, st := range list {
		if st.State != StateRunning {
			t.Errorf("%s resumed as %s, want running", st.ID, st.State)
		}
		if st.Evaluations < preKill[st.ID] {
			t.Errorf("%s resumed at %d evaluations, pre-kill log had %d", st.ID, st.Evaluations, preKill[st.ID])
		}
	}

	waitJobs(t, s2, 120*time.Second, func(st Status) bool { return st.State == StateDone })
	for i, id := range ids {
		st, err := s2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Evaluations != specs[i].Evaluations {
			t.Errorf("%s finished with %d evaluations, want %d", id, st.Evaluations, specs[i].Evaluations)
		}
		// The full post-restart log — recorded prefix plus appended
		// continuation — replays to exactly the archive the server
		// serves: one coherent history across the kill.
		_, b := replayFromFile(t, dir, id, specs[i])
		served, err := s2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(archiveJSON(t, b), served) {
			t.Errorf("%s: full-log replay and served result disagree", id)
		}
	}
}

// TestResumeQueuedAndTerminal: jobs that never started re-queue on
// restart, and terminal jobs come back queryable with their results.
func TestResumeQueuedAndTerminal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{FleetListen: "127.0.0.1:0", StateDir: dir, MaxActive: 1}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No workers: the first job runs (idle), the second stays queued.
	a, err := s1.Submit(&Spec{Problem: "ZDT1", Evaluations: 100, Population: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.Submit(&Spec{Problem: "ZDT1", Evaluations: 100, Population: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sa, err := s2.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sa.State != StateCancelled {
		t.Errorf("cancelled job resumed as %s", sa.State)
	}
	sb, err := s2.Get(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The queued job re-queues and (with a free active slot) starts.
	if sb.State != StateQueued && sb.State != StateRunning {
		t.Errorf("queued job resumed as %s", sb.State)
	}
	// A third submission keeps monotone ids (no reuse after restart).
	c, err := s2.Submit(&Spec{Problem: "ZDT1", Evaluations: 100, Population: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID <= b.ID {
		t.Errorf("id %s not above resumed %s", c.ID, b.ID)
	}
}

// TestHTTPAPI drives the full stack over loopback HTTP: submit, list,
// status, watch, result, cancel, scaling, and the readiness flip on
// shutdown.
func TestHTTPAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	s, err := New(Config{FleetListen: "127.0.0.1:0", LeaseTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv, err := obsServe(s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 2, s.FleetAddr(), nil)

	// Bad submissions are 400s.
	if code, _ := httpDo(t, "POST", base+"/jobs", `{"problem":"NOSUCH","evaluations":10}`); code != 400 {
		t.Errorf("bad problem: HTTP %d, want 400", code)
	}
	if code, _ := httpDo(t, "POST", base+"/jobs", `{"bogus":true}`); code != 400 {
		t.Errorf("unknown field: HTTP %d, want 400", code)
	}

	code, body := httpDo(t, "POST", base+"/jobs", `{"problem":"ZDT1","evaluations":40,"population":8}`)
	if code != 201 {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	var st Status
	mustUnmarshal(t, body, &st)
	id := st.ID

	// Watch streams JSONL until the job completes.
	code, body = httpDo(t, "GET", base+"/jobs/"+id+"/watch?interval=100ms", "")
	if code != 200 {
		t.Fatalf("watch: HTTP %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var last Status
	mustUnmarshal(t, lines[len(lines)-1], &last)
	if last.State != StateDone || last.Evaluations != 40 {
		t.Fatalf("watch final state: %+v", last)
	}

	// Status includes the advisor report.
	code, body = httpDo(t, "GET", base+"/jobs/"+id, "")
	if code != 200 || !strings.Contains(body, "\"advisor\"") {
		t.Errorf("status: HTTP %d, advisor present=%v", code, strings.Contains(body, "\"advisor\""))
	}
	if code, _ := httpDo(t, "GET", base+"/jobs/nope", ""); code != 404 {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}

	// The result endpoint serves loadable archive JSON.
	code, body = httpDo(t, "GET", base+"/jobs/"+id+"/result", "")
	if code != 200 {
		t.Fatalf("result: HTTP %d", code)
	}
	arch, err := core.LoadArchive(strings.NewReader(body), 0)
	if err != nil {
		t.Fatalf("result not a loadable archive: %v", err)
	}
	if arch.Size() == 0 {
		t.Error("result archive empty")
	}

	// Per-job scaling report, in the single-run schema.
	code, body = httpDo(t, "GET", base+"/debug/scaling?job="+id, "")
	if code != 200 || !strings.Contains(body, "predicted") {
		t.Errorf("scaling?job: HTTP %d body %.80s", code, body)
	}
	code, body = httpDo(t, "GET", base+"/debug/scaling", "")
	if code != 200 || !strings.Contains(body, id) {
		t.Errorf("scaling map: HTTP %d", code)
	}

	// Cancel a fresh job over HTTP.
	code, body = httpDo(t, "POST", base+"/jobs", `{"problem":"ZDT1","evaluations":100000,"population":8,"seed":9}`)
	if code != 201 {
		t.Fatalf("second submit: HTTP %d", code)
	}
	var st2 Status
	mustUnmarshal(t, body, &st2)
	if code, _ = httpDo(t, "DELETE", base+"/jobs/"+st2.ID, ""); code != 200 {
		t.Errorf("cancel: HTTP %d", code)
	}

	// Liveness stays green while readiness flips on drain.
	if code, _ := httpDo(t, "GET", base+"/readyz", ""); code != 200 {
		t.Fatalf("readyz before drain: HTTP %d", code)
	}
	s.Close()
	if code, _ := httpDo(t, "GET", base+"/readyz", ""); code != 503 {
		t.Errorf("readyz after close: HTTP %d, want 503", code)
	}
	if code, _ := httpDo(t, "GET", base+"/healthz", ""); code != 200 {
		t.Errorf("healthz after close: HTTP %d, want 200", code)
	}
	if code, _ := httpDo(t, "POST", base+"/jobs", `{"problem":"ZDT1","evaluations":10}`); code != 503 {
		t.Errorf("submit after close: HTTP %d, want 503", code)
	}
}

// TestMultiProblemFleetPartialCapability: a worker that cannot
// evaluate a job's problem fails that job's lease, not the session —
// the job still completes on capable workers, and the limited worker
// keeps serving other jobs.
func TestMultiProblemFleetPartialCapability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	s, err := New(Config{FleetListen: "127.0.0.1:0", LeaseTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// One full worker and one that only knows ZDT1.
	startWorkers(ctx, 1, s.FleetAddr(), nil)
	go func() {
		wire.RunWorker(ctx, wire.WorkerConfig{ //nolint:errcheck
			Addr:       s.FleetAddr(),
			Backoff:    20 * time.Millisecond,
			MaxBackoff: 300 * time.Millisecond,
			Resolve: func(name string) (problems.Problem, error) {
				if name != "ZDT1" {
					return nil, fmt.Errorf("not in this worker's registry: %s", name)
				}
				return problems.ByName("ZDT1")
			},
		})
	}()

	zdt, err := s.Submit(&Spec{Problem: "ZDT1", Evaluations: 60, Population: 8})
	if err != nil {
		t.Fatal(err)
	}
	dtlz, err := s.Submit(&Spec{Problem: "DTLZ2", Objectives: 3, Evaluations: 60, Population: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, 120*time.Second, func(st Status) bool { return st.State == StateDone })
	for _, id := range []string{zdt.ID, dtlz.ID} {
		st, _ := s.Get(id)
		if st.Evaluations != 60 {
			t.Errorf("%s: %d evaluations, want 60", id, st.Evaluations)
		}
	}
}
