package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/metrics"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/wire"
)

// Scheduler metric names, registered on Config.Metrics.
const (
	MetricSubmitted    = "jobs.submitted_total"
	MetricRejected     = "jobs.rejected_total"
	MetricCompleted    = "jobs.completed_total"
	MetricCancelled    = "jobs.cancelled_total"
	MetricFailed       = "jobs.failed_total"
	MetricEvals        = "jobs.evals_total"
	MetricEvalFailures = "jobs.eval_failures_total"
	MetricActive       = "jobs.active"
	MetricQueued       = "jobs.queued"
	MetricWorkers      = "jobs.workers"
	MetricEvalSeconds  = "jobs.eval_seconds"
	MetricFirstResult  = "jobs.first_result_seconds"
)

// API errors, mapped to HTTP statuses by the handlers in server.go.
var (
	// ErrOverloaded: the queued-job backlog is at Config.MaxQueue
	// (HTTP 429) — the service's backpressure signal.
	ErrOverloaded = errors.New("jobs: queue full")
	// ErrDraining: the scheduler is shutting down (HTTP 503).
	ErrDraining = errors.New("jobs: draining")
	// ErrNotFound: no such job id (HTTP 404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrClosed: the scheduler has stopped.
	ErrClosed = errors.New("jobs: scheduler closed")
)

// Config parameterizes a Scheduler.
type Config struct {
	// FleetListen is the address borgd workers dial ("":0" picks a
	// port); FleetListener overrides it with a bound listener.
	FleetListen   string
	FleetListener net.Listener
	// Conn tunes the fleet connections (heartbeats, timeouts, wire
	// metrics).
	Conn wire.Options
	// LeaseTimeout bounds one evaluation lease (default 30s).
	LeaseTimeout time.Duration
	// MaxQueue bounds jobs accepted but not yet running; Submit past
	// it returns ErrOverloaded (default 1024).
	MaxQueue int
	// MaxActive bounds simultaneously running jobs (0 = unlimited).
	// Beyond it, submissions queue.
	MaxActive int
	// StateDir, when set, persists every job — spec at submission, a
	// streamed BMEL event log while running, archive snapshots every
	// CheckpointEvery accepts — and resumes whatever it finds there on
	// startup. Empty disables persistence.
	StateDir string
	// CheckpointEvery is the archive-snapshot cadence in accepted
	// evaluations (default 64).
	CheckpointEvery uint64
	// Metrics receives the scheduler's counters and gauges.
	Metrics *obs.Registry
	// TraceRate, when positive, gives every job its own distributed-
	// trace collector sampling evaluations at this rate (1 = every
	// evaluation; see internal/obs). Advisor-flagged stragglers are
	// always traced. Collectors are reachable via Traces.
	TraceRate float64
	// Logf, when set, receives lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// strideOne is the stride-scheduling numerator: a job's stride is
// strideOne / priority, so a priority-p job accumulates pass p times
// slower and receives p times the grants of a priority-1 job.
const strideOne = 1 << 20

// job is the scheduler's per-run state. All fields are owned by the
// event loop.
type job struct {
	id      string
	spec    *Spec
	problem problems.Problem
	algCfg  core.Config

	state  State
	errMsg string

	borg    *core.Borg
	mcore   *master.Core
	log     *master.Log
	adv     *advisor.Advisor
	trace   *obs.Collector      // nil unless Config.TraceRate > 0
	quality *obs.QualitySampler // nil unless Spec.QualityEvery > 0
	ck      *ckpt               // nil without StateDir

	// stride scheduling: next pass value and per-grant increment.
	pass, stride uint64

	// workers currently assigned to this job's core; failed holds
	// fleet workers that could not evaluate this problem (missing
	// locally, dimension drift) and must not be offered it again.
	workers map[uint64]struct{}
	failed  map[uint64]struct{}

	submittedWall time.Time
	submitted     float64 // scheduler-clock seconds
	firstResult   float64
	finished      float64

	replaying bool          // suppress checkpoint writes while replaying
	restored  *restoredMeta // terminal outcome restored from StateDir
}

// wantWork reports whether the job's core would grant an evaluation to
// a newly offered worker: it has resubmitted work pending, or head
// room under the budget for a fresh offspring chain.
func (j *job) wantWork() bool {
	if j.state != StateRunning || j.mcore == nil || j.mcore.Done() {
		return false
	}
	c := j.mcore
	return c.PendingLen() > 0 ||
		c.Completed()+uint64(c.Outstanding())+uint64(c.PendingLen()) < j.spec.Evaluations
}

// grantRef routes one outstanding wire lease back to the job and core
// lease it was granted for.
type grantRef struct {
	job  *job
	item uint64
}

// fleetWorker is one borgd session. A worker evaluates serially, but
// probe grants to a suspect worker can pipeline, so outstanding wire
// leases are a small map, not a single slot.
type fleetWorker struct {
	id     uint64
	conn   *wire.Conn
	gone   bool
	job    *job // current assignment (nil = unassigned)
	leases map[uint64]grantRef
}

type fleetEventKind uint8

const (
	fleetJoin fleetEventKind = iota
	fleetMsg
	fleetDead
)

type fleetEvent struct {
	kind fleetEventKind
	w    *fleetWorker
	msg  wire.Message
	err  error
}

// Scheduler owns the shared borgd fleet and multiplexes every
// submitted job over it: one ScheduledOffspring master.Core per active
// job, stride-scheduled fair sharing at per-evaluation granularity,
// and per-job checkpoint streams. All scheduling state lives in one
// event-loop goroutine — the public methods send it closures.
type Scheduler struct {
	cfg      Config
	ln       net.Listener
	leaseSec float64

	events chan fleetEvent
	cmds   chan func()
	quit   chan struct{}
	done   chan struct{}
	stopIt sync.Once

	draining atomic.Bool

	// metrics
	mSubmitted, mRejected, mCompleted, mCancelled, mFailed *obs.Counter
	mEvals, mEvalFailures                                  *obs.Counter
	gActive, gQueued, gWorkers                             *obs.Gauge
	hEval, hFirstResult                                    *obs.Histogram

	// --- event-loop state below ---
	jobs          map[string]*job
	order         []string // submission order
	queue         []*job
	active        int
	byID          map[uint64]*fleetWorker
	nextWID       atomic.Uint64
	nextWireLease uint64
	nextJob       uint64
	start         time.Time
	clockOff      float64
}

// New binds the fleet listener, resumes any jobs persisted in
// Config.StateDir, and starts the scheduler.
func New(cfg Config) (*Scheduler, error) {
	ln := cfg.FleetListener
	if ln == nil {
		if cfg.FleetListen == "" {
			return nil, errors.New("jobs: scheduler needs a fleet listen address or listener")
		}
		var err error
		ln, err = net.Listen("tcp", cfg.FleetListen)
		if err != nil {
			return nil, fmt.Errorf("jobs: fleet listen: %w", err)
		}
	}
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	reg := cfg.Metrics
	s := &Scheduler{
		cfg:      cfg,
		ln:       ln,
		leaseSec: cfg.LeaseTimeout.Seconds(),
		events:   make(chan fleetEvent, 256),
		cmds:     make(chan func()),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),

		mSubmitted:    reg.Counter(MetricSubmitted),
		mRejected:     reg.Counter(MetricRejected),
		mCompleted:    reg.Counter(MetricCompleted),
		mCancelled:    reg.Counter(MetricCancelled),
		mFailed:       reg.Counter(MetricFailed),
		mEvals:        reg.Counter(MetricEvals),
		mEvalFailures: reg.Counter(MetricEvalFailures),
		gActive:       reg.Gauge(MetricActive),
		gQueued:       reg.Gauge(MetricQueued),
		gWorkers:      reg.Gauge(MetricWorkers),
		hEval:         reg.Histogram(MetricEvalSeconds, nil),
		hFirstResult:  reg.Histogram(MetricFirstResult, nil),

		jobs:  make(map[string]*job),
		byID:  make(map[uint64]*fleetWorker),
		start: time.Now(),
	}
	if cfg.StateDir != "" {
		if err := s.resume(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	go s.acceptLoop()
	go s.loop()
	return s, nil
}

// FleetAddr returns the bound fleet listener address (useful with
// ":0").
func (s *Scheduler) FleetAddr() string { return s.ln.Addr().String() }

// Ready is the /readyz check: an error while draining or stopped.
func (s *Scheduler) Ready() error {
	if s.draining.Load() {
		return ErrDraining
	}
	return nil
}

// now returns seconds on the scheduler clock. The clock survives
// restarts: resume() advances the origin past the last persisted event
// so appended log timestamps stay monotone.
func (s *Scheduler) now() float64 {
	return time.Since(s.start).Seconds() + s.clockOff
}

// Close stops the scheduler: the fleet listener closes, every running
// job takes a final checkpoint, and all worker connections drop
// without a Stop — the fleet outlives any one server, so workers back
// off and redial until a new scheduler binds the port. Queued and
// running jobs resume from StateDir on the next New.
func (s *Scheduler) Close() error {
	s.draining.Store(true)
	s.ln.Close()
	s.do(func() { s.shutdown() }) //nolint:errcheck // best effort once closed
	s.stopIt.Do(func() { close(s.quit) })
	<-s.done
	return nil
}

// do runs fn on the event loop and waits for it.
func (s *Scheduler) do(fn func()) error {
	ran := make(chan struct{})
	select {
	case s.cmds <- func() { fn(); close(ran) }:
	case <-s.done:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// --- fleet transport ------------------------------------------------

// acceptLoop admits borgd workers. The handshake announces a
// multi-problem session (wire.MultiProblem), so each grant names its
// own problem and one fleet serves every job.
func (s *Scheduler) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: scheduler stopping
		}
		go func() {
			var id uint64
			conn, _, err := wire.ServerHandshake(nc, s.cfg.Conn, func(h wire.Hello) (*wire.Welcome, error) {
				if h.WorkerID != 0 {
					id = h.WorkerID // reconnect keeps its identity
					// Keep fresh assignments above every announced id.
					for {
						cur := s.nextWID.Load()
						if cur >= id || s.nextWID.CompareAndSwap(cur, id) {
							break
						}
					}
				} else {
					id = s.nextWID.Add(1)
				}
				return &wire.Welcome{
					WorkerID:        id,
					Problem:         wire.MultiProblem,
					HeartbeatMillis: uint32(s.cfg.Conn.Heartbeat.Milliseconds()),
				}, nil
			})
			if err != nil {
				return
			}
			conn.StartHeartbeat(0)
			w := &fleetWorker{id: id, conn: conn, leases: make(map[uint64]grantRef)}
			s.push(fleetEvent{kind: fleetJoin, w: w})
			for {
				msg, err := conn.Recv()
				if err != nil {
					s.push(fleetEvent{kind: fleetDead, w: w, err: err})
					return
				}
				s.push(fleetEvent{kind: fleetMsg, w: w, msg: msg})
			}
		}()
	}
}

func (s *Scheduler) push(e fleetEvent) {
	select {
	case s.events <- e:
	case <-s.done:
	}
}

// --- event loop -----------------------------------------------------

func (s *Scheduler) loop() {
	defer close(s.done)
	tickEvery := s.cfg.LeaseTimeout / 4
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	for {
		select {
		case e := <-s.events:
			s.onFleet(e)
		case fn := <-s.cmds:
			fn()
		case <-tick.C:
			s.onTick()
		case <-s.quit:
			return
		}
		s.updateGauges()
	}
}

func (s *Scheduler) updateGauges() {
	s.gActive.Set(float64(s.active))
	s.gQueued.Set(float64(len(s.queue)))
	n := 0
	for _, w := range s.byID {
		if !w.gone {
			n++
		}
	}
	s.gWorkers.Set(float64(n))
}

func (s *Scheduler) onFleet(e fleetEvent) {
	switch e.kind {
	case fleetJoin:
		if old := s.byID[e.w.id]; old != nil && old != e.w {
			// The fleet replaced this identity (borgd redial after a
			// half-dead link); retire the old session first.
			s.dropWorker(old)
		}
		s.byID[e.w.id] = e.w
		s.cfg.logf("jobs: worker %d joined (%d live)", e.w.id, len(s.byID))
		s.assign(e.w)
	case fleetDead:
		if s.byID[e.w.id] == e.w {
			s.cfg.logf("jobs: worker %d lost: %v", e.w.id, e.err)
		}
		s.dropWorker(e.w)
	case fleetMsg:
		if e.w.gone {
			return
		}
		msg, ok := e.msg.(*wire.Result)
		if !ok {
			return
		}
		s.onResult(e.w, msg)
	}
}

// dropWorker retires a dead session: every job holding one of its
// leases sees EvGone (resubmitting the work), as does its current
// assignment.
func (s *Scheduler) dropWorker(w *fleetWorker) {
	if w.gone {
		return
	}
	w.gone = true
	w.conn.Close()
	if s.byID[w.id] == w {
		delete(s.byID, w.id)
	}
	goneIn := make(map[*job]struct{})
	if w.job != nil {
		goneIn[w.job] = struct{}{}
	}
	for _, ref := range w.leases {
		goneIn[ref.job] = struct{}{}
	}
	w.leases = nil
	for j := range goneIn {
		s.detachGone(w, j)
	}
	w.job = nil
}

// detachGone removes w from j and declares it dead to j's core, which
// resubmits any live lease it held there.
func (s *Scheduler) detachGone(w *fleetWorker, j *job) {
	if _, ok := j.workers[w.id]; ok {
		delete(j.workers, w.id)
		j.adv.SetLive(len(j.workers))
	}
	if j.state == StateRunning && !j.mcore.Done() {
		s.exec(j, j.mcore.Handle(master.Event{Kind: master.EvGone, Worker: int(w.id), At: s.now()}))
	}
}

// detach gracefully withdraws a parked worker from j (EvLeave) when
// the scheduler lends it to another job.
func (s *Scheduler) detach(w *fleetWorker, j *job) {
	if _, ok := j.workers[w.id]; ok {
		delete(j.workers, w.id)
		j.adv.SetLive(len(j.workers))
	}
	if j.state == StateRunning && !j.mcore.Done() {
		s.exec(j, j.mcore.Handle(master.Event{Kind: master.EvLeave, Worker: int(w.id), At: s.now()}))
	}
}

func (s *Scheduler) onResult(w *fleetWorker, msg *wire.Result) {
	ref, ok := w.leases[msg.Lease]
	if !ok {
		return // lease of a job that was cancelled mid-flight, or noise
	}
	delete(w.leases, msg.Lease)
	j := ref.job
	if j.state != StateRunning || j.mcore.Done() {
		// The job ended while this evaluation was in flight; the
		// result has nowhere to go.
		s.assign(w)
		return
	}
	if len(msg.Objs) != j.problem.NumObjs() {
		// The worker could not evaluate this problem (not in its
		// registry, dimension drift): an empty Result fails the lease,
		// not the session. Resubmit the work and never offer this
		// worker the job again.
		j.failed[w.id] = struct{}{}
		s.mEvalFailures.Inc()
		s.cfg.logf("jobs: worker %d cannot evaluate %s for %s", w.id, j.problem.Name(), j.id)
		s.detachGone(w, j)
		if w.job == j {
			w.job = nil
		}
		s.assign(w)
		return
	}
	if worker, item, live := j.mcore.Lease(ref.item); live && worker == int(w.id) {
		item.S.Objs = msg.Objs
		item.S.Constrs = msg.Constrs
		sec := float64(msg.EvalNanos) / 1e9
		j.adv.ObserveTF(int(w.id), sec)
		j.trace.ObserveTF(ref.item, sec)
		var exemplar uint64
		if item.Trace.Sampled() {
			exemplar = item.Trace.TraceID
		}
		s.hEval.ObserveExemplar(sec, exemplar)
	}
	s.exec(j, j.mcore.Handle(master.Event{Kind: master.EvResult, Worker: int(w.id), Item: ref.item, At: s.now()}))
	// Quality cadence: the trigger detours through the job's core so
	// the sample point lands in its BMEL log (a restored job replays
	// its quality timeline too).
	if q := j.quality; q != nil && j.state == StateRunning && !j.mcore.Done() && q.Due(j.mcore.Completed(), s.now()) {
		s.exec(j, j.mcore.Handle(master.Event{Kind: master.EvQuality, Item: q.NextSeq(), At: s.now()}))
	}
	if !w.gone && len(w.leases) == 0 {
		s.assign(w)
	}
}

func (s *Scheduler) onTick() {
	now := s.now()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state == StateRunning && !j.mcore.Done() {
			s.exec(j, j.mcore.Handle(master.Event{Kind: master.EvTick, At: now}))
		}
	}
	// Re-offer every idle worker: lease expiries and newly started
	// jobs create demand between result boundaries.
	s.sweepAssign()
}

func (s *Scheduler) sweepAssign() {
	ids := make([]uint64, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		s.assign(s.byID[id])
	}
}

// assign offers an idle worker to the runnable job with the lowest
// stride pass — the fair-share decision point. Ties break by job id,
// so equal-priority jobs round-robin deterministically. The chosen
// job's core hears EvReady (worker already its) or EvJoin (worker
// migrates, with a graceful EvLeave to its previous job); both are
// ordinary events in the job's BMEL log, so replay reproduces every
// fair-share decision.
func (s *Scheduler) assign(w *fleetWorker) {
	if w == nil || w.gone || len(w.leases) > 0 {
		return
	}
	var best *job
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.wantWork() {
			continue
		}
		if _, bad := j.failed[w.id]; bad {
			continue
		}
		if best == nil || j.pass < best.pass {
			best = j
		}
	}
	if best == nil {
		return // nothing runnable wants work; stay parked where we are
	}
	best.pass += best.stride
	if w.job == best {
		s.exec(best, best.mcore.Handle(master.Event{Kind: master.EvReady, Worker: int(w.id), At: s.now()}))
		return
	}
	if w.job != nil {
		s.detach(w, w.job)
	}
	w.job = best
	best.workers[w.id] = struct{}{}
	best.adv.SetLive(len(best.workers))
	s.exec(best, best.mcore.Handle(master.Event{Kind: master.EvJoin, Worker: int(w.id), At: s.now()}))
}

// exec carries out a core's actions on the fleet. Grants become wire
// Evaluates under a fresh globally unique wire lease (core lease ids
// are per-job and collide across cores); ActStop releases the worker
// back to the pool — the fleet is shared, so a completed job never
// stops a worker process.
func (s *Scheduler) exec(j *job, acts []master.Action) {
	// Copy: a failed send re-enters Handle (EvGone) which recycles the
	// core's action buffer.
	acts = append([]master.Action(nil), acts...)
	for _, a := range acts {
		switch a.Kind {
		case master.ActGrant:
			w := s.byID[uint64(a.Worker)]
			if w == nil || w.gone || w.job != j {
				continue // stale grant to a worker the fleet lost
			}
			s.nextWireLease++
			wl := s.nextWireLease
			w.leases[wl] = grantRef{job: j, item: a.Item.ID}
			ev := &wire.Evaluate{
				Lease:    wl,
				SolID:    a.Item.S.ID,
				Operator: int32(a.Item.S.Operator),
				Problem:  j.problem.Name(),
				Vars:     a.Item.S.Vars,
				Trace:    a.Item.Trace,
			}
			sendStart := time.Now()
			if err := w.conn.Send(ev); err != nil {
				s.cfg.logf("jobs: send to worker %d failed: %v", a.Worker, err)
				s.dropWorker(w)
				continue
			}
			j.trace.ObserveTCSend(a.Item.ID, time.Since(sendStart).Seconds())
		case master.ActComplete:
			s.finishJob(j)
		case master.ActStop:
			// Release, don't stop: the worker belongs to the fleet.
			w := s.byID[uint64(a.Worker)]
			if w != nil && !w.gone && w.job == j && len(w.leases) == 0 {
				s.assign(w)
			}
		}
	}
}

// --- job lifecycle --------------------------------------------------

// jobAlg adapts a Borg instance for a job's core, metering the serial
// critical section (the paper's T_A) into the job's advisor.
type jobAlg struct {
	b   *core.Borg
	adv *advisor.Advisor
}

func (a *jobAlg) Suggest() *core.Solution {
	t := time.Now()
	s := a.b.Suggest()
	a.adv.ObserveTA(time.Since(t).Seconds())
	return s
}

func (a *jobAlg) Accept(sol *core.Solution) {
	t := time.Now()
	a.b.Accept(sol)
	a.adv.ObserveTA(time.Since(t).Seconds())
}

func (a *jobAlg) AcceptSuggest(sol *core.Solution) *core.Solution {
	a.Accept(sol)
	return a.Suggest()
}

func (s *Scheduler) submit(spec *Spec) (Status, error) {
	if s.draining.Load() {
		s.mRejected.Inc()
		return Status{}, ErrDraining
	}
	problem, algCfg, err := spec.Normalize()
	if err != nil {
		s.mRejected.Inc()
		return Status{}, err
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mRejected.Inc()
		return Status{}, ErrOverloaded
	}
	s.nextJob++
	j := &job{
		id:            fmt.Sprintf("j%06d", s.nextJob),
		spec:          spec,
		problem:       problem,
		algCfg:        algCfg,
		state:         StateQueued,
		stride:        strideOne / uint64(spec.Priority),
		workers:       make(map[uint64]struct{}),
		failed:        make(map[uint64]struct{}),
		submittedWall: time.Now(),
		submitted:     s.now(),
	}
	if s.cfg.StateDir != "" {
		ck, err := newCkpt(s.cfg.StateDir, j.id)
		if err != nil {
			s.mRejected.Inc()
			return Status{}, err
		}
		j.ck = ck
		if err := ck.writeSpec(spec, j.submittedWall, j.submitted); err != nil {
			s.mRejected.Inc()
			return Status{}, err
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.mSubmitted.Inc()
	s.cfg.logf("jobs: %s submitted: %s budget %d priority %d", j.id, problem.Name(), spec.Evaluations, spec.Priority)
	s.maybeStart()
	return s.status(j), nil
}

// maybeStart promotes queued jobs into running ones while active-job
// slots are free.
func (s *Scheduler) maybeStart() {
	for len(s.queue) > 0 && (s.cfg.MaxActive <= 0 || s.active < s.cfg.MaxActive) {
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != StateQueued {
			continue // cancelled while queued
		}
		s.startJob(j)
	}
}

// startJob builds the job's Borg instance, core and checkpoint stream,
// then pulls in any idle fleet workers.
func (s *Scheduler) startJob(j *job) {
	b, err := core.New(j.problem, j.algCfg)
	if err != nil {
		s.failJob(j, fmt.Sprintf("constructing algorithm: %v", err))
		return
	}
	j.borg = b
	advCfg := advisor.Config{}
	if s.cfg.TraceRate > 0 {
		j.trace = obs.NewCollector(obs.CollectorConfig{
			RunID: traceRunID(j.id),
			Rate:  s.cfg.TraceRate,
		})
		advCfg.OnStraggler = j.trace.ForceWorker
	}
	j.adv = advisor.New(advCfg)
	j.adv.Configure(0, j.spec.Evaluations)
	j.log = master.NewLog()
	mcfg := master.Config{
		Budget:       j.spec.Evaluations,
		LeaseTimeout: s.leaseSec,
		Policy:       master.ScheduledOffspring,
		// Fleet workers hold deep copies of granted work (wire frames
		// encode the solution), so an expired lease's wrapper and
		// Solution can be reissued in place instead of cloned.
		ReuseOnResubmit: true,
		Alg:             &jobAlg{b: b, adv: j.adv},
		Log:             j.log,
		OnAccept:        s.onAcceptHook(j),
		OnAcceptFrom:    s.onAcceptFromHook(j),
	}
	if j.trace != nil {
		mcfg.Tracer = j.trace
	}
	if q := newJobQuality(j); q != nil {
		q.Attach(b)
		mcfg.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	j.mcore = master.NewCore(mcfg)
	if j.ck != nil {
		if err := j.ck.openLog(j.log); err != nil {
			s.failJob(j, fmt.Sprintf("opening checkpoint log: %v", err))
			return
		}
	}
	j.state = StateRunning
	s.active++
	// Floor the new job's pass at the runnable minimum so it neither
	// monopolizes the fleet (pass 0 would win every assignment until
	// it caught up) nor waits behind long-running jobs' accumulated
	// passes.
	var minPass uint64
	found := false
	for _, id := range s.order {
		o := s.jobs[id]
		if o != j && o.wantWork() && (!found || o.pass < minPass) {
			minPass, found = o.pass, true
		}
	}
	if found && j.pass < minPass {
		j.pass = minPass
	}
	s.cfg.logf("jobs: %s running", j.id)
	s.sweepAssign()
}

// newJobQuality builds the job's quality sampler when the spec opted
// in (Spec.QualityEvery > 0), wiring its samples into the job's stall
// detector. Returns nil — everywhere nil-safe — otherwise.
func newJobQuality(j *job) *obs.QualitySampler {
	if j.spec.QualityEvery == 0 {
		return nil
	}
	j.quality = obs.NewQualitySampler(obs.QualityConfig{
		Every:    j.spec.QualityEvery,
		Ref:      metrics.RefPointFor(j.problem.Name(), j.problem.NumObjs()),
		OnSample: j.adv.ObserveQuality,
	})
	return j.quality
}

// onAcceptHook checkpoints the archive every CheckpointEvery accepts.
func (s *Scheduler) onAcceptHook(j *job) func(uint64) {
	return func(completed uint64) {
		if j.replaying {
			return
		}
		s.mEvals.Inc()
		if j.ck != nil && completed%s.cfg.CheckpointEvery == 0 {
			if err := j.ck.saveArchive(j.borg.Archive()); err != nil {
				s.cfg.logf("jobs: %s archive checkpoint: %v", j.id, err)
			}
		}
	}
}

// onAcceptFromHook records first-result latency on the scheduler
// clock. It fires during replay too — `at` is the recorded timestamp —
// so a resumed job keeps its original latency figures.
func (s *Scheduler) onAcceptFromHook(j *job) func(int, uint64, float64) {
	return func(worker int, completed uint64, at float64) {
		if completed == 1 {
			j.firstResult = at
			if !j.replaying {
				s.hFirstResult.Observe(at - j.submitted)
			}
		}
		j.adv.ObserveAccept(worker, completed, at)
	}
}

func (s *Scheduler) finishJob(j *job) {
	j.state = StateDone
	j.finished = s.now()
	s.active--
	s.mCompleted.Inc()
	s.cfg.logf("jobs: %s done: %d evaluations, archive %d", j.id, j.mcore.Completed(), j.borg.Archive().Size())
	if j.ck != nil {
		if err := j.ck.saveArchive(j.borg.Archive()); err != nil {
			s.cfg.logf("jobs: %s final archive: %v", j.id, err)
		}
		if err := j.ck.finalize(j, s.now()); err != nil {
			s.cfg.logf("jobs: %s finalize: %v", j.id, err)
		}
	}
	s.maybeStart()
}

func (s *Scheduler) failJob(j *job, msg string) {
	if j.state == StateRunning {
		s.active--
	}
	j.state = StateFailed
	j.errMsg = msg
	j.finished = s.now()
	s.mFailed.Inc()
	s.cfg.logf("jobs: %s failed: %s", j.id, msg)
	if j.ck != nil {
		if err := j.ck.finalize(j, s.now()); err != nil {
			s.cfg.logf("jobs: %s finalize: %v", j.id, err)
		}
	}
	s.maybeStart()
}

func (s *Scheduler) cancel(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.state.Terminal() {
		return nil // idempotent
	}
	if j.state == StateQueued {
		// Free the backlog slot so MaxQueue backpressure reflects jobs
		// that can still run.
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	}
	wasRunning := j.state == StateRunning
	j.state = StateCancelled
	j.finished = s.now()
	s.mCancelled.Inc()
	if wasRunning {
		s.active--
		// Workers park or return in-flight results that now route to a
		// cancelled job; either way they get reassigned. Clear the
		// assignment now so idle ones move immediately.
		for wid := range j.workers {
			if w := s.byID[wid]; w != nil && w.job == j {
				w.job = nil
			}
		}
		j.workers = make(map[uint64]struct{})
	}
	if j.ck != nil {
		if j.borg != nil {
			if err := j.ck.saveArchive(j.borg.Archive()); err != nil {
				s.cfg.logf("jobs: %s cancel archive: %v", j.id, err)
			}
		}
		if err := j.ck.finalize(j, s.now()); err != nil {
			s.cfg.logf("jobs: %s finalize: %v", j.id, err)
		}
	}
	s.cfg.logf("jobs: %s cancelled", j.id)
	s.maybeStart()
	s.sweepAssign()
	return nil
}

// shutdown runs on the event loop during Close: final checkpoints,
// then every fleet connection drops (no Stop — workers redial the next
// scheduler).
func (s *Scheduler) shutdown() {
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state == StateRunning && j.ck != nil {
			if err := j.ck.saveArchive(j.borg.Archive()); err != nil {
				s.cfg.logf("jobs: %s shutdown archive: %v", j.id, err)
			}
			j.ck.close()
		}
	}
	for _, w := range s.byID {
		w.conn.Close()
	}
}

// status builds a job's externally visible snapshot; loop-owned.
func (s *Scheduler) status(j *job) Status {
	st := Status{
		ID:                 j.id,
		State:              j.state,
		Problem:            j.problem.Name(),
		Priority:           j.spec.Priority,
		Budget:             j.spec.Evaluations,
		SubmittedAt:        j.submittedWall.Format(time.RFC3339Nano),
		SubmittedSeconds:   j.submitted,
		FirstResultSeconds: j.firstResult,
		FinishedSeconds:    j.finished,
		Error:              j.errMsg,
		Workers:            len(j.workers),
	}
	if j.mcore != nil {
		stats := j.mcore.Stats()
		st.Evaluations = stats.Completed
		st.Outstanding = j.mcore.Outstanding()
		st.Pending = j.mcore.PendingLen()
		st.Resubmissions = stats.Resubmissions
		st.Duplicates = stats.Duplicates
		st.Leaves = stats.Leaves
		st.Deaths = stats.Deaths
	}
	if j.borg != nil {
		st.ArchiveSize = j.borg.Archive().Size()
	} else if j.restored != nil {
		st.Evaluations = j.restored.Evaluations
		st.ArchiveSize = j.restored.ArchiveSize
	}
	if j.quality != nil {
		if latest, ok := j.quality.Latest(); ok {
			st.Quality = &latest
		}
	}
	return st
}

// --- public API (each call crosses into the event loop) -------------

// Submit validates and enqueues a job, returning its initial status.
func (s *Scheduler) Submit(spec *Spec) (Status, error) {
	var st Status
	var err error
	if derr := s.do(func() { st, err = s.submit(spec) }); derr != nil {
		return Status{}, derr
	}
	return st, err
}

// Get returns one job's status, including its advisor report.
func (s *Scheduler) Get(id string) (Status, error) {
	var st Status
	var adv *advisor.Advisor
	err := ErrNotFound
	if derr := s.do(func() {
		if j, ok := s.jobs[id]; ok {
			st, adv, err = s.status(j), j.adv, nil
		}
	}); derr != nil {
		return Status{}, derr
	}
	if err != nil {
		return Status{}, err
	}
	if adv != nil {
		// Report takes the advisor's own lock; do it off the loop.
		r := adv.Report()
		st.Advisor = &r
	}
	return st, nil
}

// List returns every job's status in submission order.
func (s *Scheduler) List() ([]Status, error) {
	var out []Status
	if derr := s.do(func() {
		out = make([]Status, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.status(s.jobs[id]))
		}
	}); derr != nil {
		return nil, derr
	}
	return out, nil
}

// Cancel stops a job. Cancelling a terminal job is a no-op; partial
// results stay fetchable.
func (s *Scheduler) Cancel(id string) error {
	var err error
	if derr := s.do(func() { err = s.cancel(id) }); derr != nil {
		return derr
	}
	return err
}

// Result returns a job's current ε-archive as the canonical archive
// JSON (core.SaveArchive format) — partial while the job runs, final
// once it is terminal. Jobs restored from a terminal marker serve
// their persisted snapshot.
func (s *Scheduler) Result(id string) ([]byte, error) {
	var out []byte
	var path string
	err := ErrNotFound
	if derr := s.do(func() {
		j, ok := s.jobs[id]
		if !ok {
			return
		}
		err = nil
		switch {
		case j.borg != nil:
			var buf bytes.Buffer
			err = core.SaveArchive(&buf, j.borg.Archive())
			out = buf.Bytes()
		case j.ck != nil:
			path = j.ck.path("archive.json")
		default:
			err = fmt.Errorf("jobs: %s has no results yet", id)
		}
	}); derr != nil {
		return nil, derr
	}
	if err != nil {
		return nil, err
	}
	if path != "" {
		data, rerr := os.ReadFile(path)
		if os.IsNotExist(rerr) {
			return nil, fmt.Errorf("jobs: %s has no results yet", id)
		}
		return data, rerr
	}
	return out, nil
}

// traceRunID derives a stable per-job trace run id from the job id
// (FNV-1a), so a job's trace ids are reproducible across restarts.
func traceRunID(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// Traces returns the live trace collector of every job that has one
// (Config.TraceRate > 0), keyed by job id.
func (s *Scheduler) Traces() (map[string]*obs.Collector, error) {
	out := make(map[string]*obs.Collector)
	if derr := s.do(func() {
		for id, j := range s.jobs {
			if j.trace != nil {
				out[id] = j.trace
			}
		}
	}); derr != nil {
		return nil, derr
	}
	return out, nil
}

// Advisors returns the live advisor of every job, for the per-job
// /debug/scaling report.
func (s *Scheduler) Advisors() (map[string]*advisor.Advisor, error) {
	out := make(map[string]*advisor.Advisor)
	if derr := s.do(func() {
		for id, j := range s.jobs {
			if j.adv != nil {
				out[id] = j.adv
			}
		}
	}); derr != nil {
		return nil, derr
	}
	return out, nil
}
