package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/problems"
)

// Per-job files under Config.StateDir:
//
//	<id>.spec.json     the submission, written once at accept time
//	<id>.bmel          the streamed master event log (append-only)
//	<id>.archive.json  the latest ε-archive snapshot (core.SaveArchive)
//	<id>.final.json    terminal-state marker; present once the job ends
//
// The BMEL stream is the source of truth for a running job: resume
// replays it through the deterministic core against a freshly seeded
// Borg, recomputing each accepted Result's objectives, which lands the
// job in its exact pre-kill state. The archive snapshot is what result
// queries serve after the job (or the server) is gone.

// specFile wraps the submission with its accept-time stamps.
type specFile struct {
	Spec             *Spec     `json:"spec"`
	SubmittedAt      time.Time `json:"submitted_at"`
	SubmittedSeconds float64   `json:"submitted_seconds"`
}

// restoredMeta is the terminal-state marker (<id>.final.json).
type restoredMeta struct {
	State              State   `json:"state"`
	Error              string  `json:"error,omitempty"`
	Evaluations        uint64  `json:"evaluations"`
	ArchiveSize        int     `json:"archive_size"`
	FirstResultSeconds float64 `json:"first_result_seconds,omitempty"`
	FinishedSeconds    float64 `json:"finished_seconds,omitempty"`
}

// ckpt owns one job's on-disk state.
type ckpt struct {
	dir, id string
	logF    *os.File
	lw      *master.LogWriter
}

func newCkpt(dir, id string) (*ckpt, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: state dir: %w", err)
	}
	return &ckpt{dir: dir, id: id}, nil
}

func (c *ckpt) path(ext string) string {
	return filepath.Join(c.dir, c.id+"."+ext)
}

// writeAtomic writes via tmp+rename so readers (and crashes) never see
// a half-written file.
func (c *ckpt) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (c *ckpt) writeSpec(spec *Spec, wall time.Time, at float64) error {
	data, err := json.MarshalIndent(specFile{Spec: spec, SubmittedAt: wall, SubmittedSeconds: at}, "", " ")
	if err != nil {
		return err
	}
	return c.writeAtomic(c.path("spec.json"), data)
}

// openLog starts a fresh checkpoint stream for l: header now, one
// record per event as the core handles it. Write errors are sticky on
// the LogWriter and surface at finalize — a run does not stop because
// its durability did.
func (c *ckpt) openLog(l *master.Log) error {
	f, err := os.Create(c.path("bmel"))
	if err != nil {
		return err
	}
	lw, err := master.NewLogWriter(f, l.Meta)
	if err != nil {
		f.Close()
		return err
	}
	c.logF, c.lw = f, lw
	l.OnRecord = func(ev master.Event) { lw.Record(ev) } //nolint:errcheck // sticky, read at finalize
	return nil
}

// resumeLog reopens an existing stream after replay consumed n events:
// any crash-torn partial record is truncated away, and appended events
// continue the same replayable stream.
func (c *ckpt) resumeLog(l *master.Log, n int) error {
	valid := int64(master.HeaderSize) + int64(n)*int64(master.EventSize)
	path := c.path("bmel")
	if err := os.Truncate(path, valid); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c.logF, c.lw = f, master.ResumeLogWriter(f)
	l.OnRecord = func(ev master.Event) { c.lw.Record(ev) } //nolint:errcheck // sticky, read at finalize
	return nil
}

func (c *ckpt) saveArchive(a *core.Archive) error {
	var buf strings.Builder
	if err := core.SaveArchive(&buf, a); err != nil {
		return err
	}
	return c.writeAtomic(c.path("archive.json"), []byte(buf.String()))
}

// finalize writes the terminal marker and closes the log stream. It
// returns the first durability error seen anywhere in the job's life.
func (c *ckpt) finalize(j *job, now float64) error {
	meta := restoredMeta{
		State:              j.state,
		Error:              j.errMsg,
		FirstResultSeconds: j.firstResult,
		FinishedSeconds:    j.finished,
	}
	if j.mcore != nil {
		meta.Evaluations = j.mcore.Completed()
	}
	if j.borg != nil {
		meta.ArchiveSize = j.borg.Archive().Size()
	}
	data, err := json.MarshalIndent(meta, "", " ")
	if err == nil {
		err = c.writeAtomic(c.path("final.json"), data)
	}
	if werr := c.close(); err == nil {
		err = werr
	}
	return err
}

// close flushes and closes the log stream, reporting any sticky write
// error.
func (c *ckpt) close() error {
	var err error
	if c.lw != nil {
		err = c.lw.Err()
		c.lw = nil
	}
	if c.logF != nil {
		if cerr := c.logF.Close(); err == nil {
			err = cerr
		}
		c.logF = nil
	}
	return err
}

// evalFor is the replay stand-in for a worker's evaluation: identical
// objectives for deterministic problems, so the replayed trajectory is
// bit-identical to the recorded run's.
func evalFor(p problems.Problem) func(*master.Item) {
	if cp, ok := p.(problems.Constrained); ok {
		return func(it *master.Item) {
			it.S.Objs = make([]float64, cp.NumObjs())
			it.S.Constrs = make([]float64, cp.NumConstraints())
			cp.EvaluateWithConstraints(it.S.Vars, it.S.Objs, it.S.Constrs)
		}
	}
	return func(it *master.Item) {
		it.S.Objs = make([]float64, p.NumObjs())
		p.Evaluate(it.S.Vars, it.S.Objs)
	}
}

// resume loads every job persisted in StateDir: terminal jobs come
// back as queryable records, jobs with a recorded event stream replay
// to their pre-kill state and continue, and jobs that never started
// re-queue. Runs before the event loop starts, so it may touch loop
// state freely.
func (s *Scheduler) resume() error {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("jobs: state dir: %w", err)
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("jobs: reading state dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".spec.json") {
			ids = append(ids, strings.TrimSuffix(name, ".spec.json"))
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		var n uint64
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > s.nextJob {
			s.nextJob = n
		}
		if err := s.resumeJob(id); err != nil {
			return fmt.Errorf("jobs: resuming %s: %w", id, err)
		}
	}
	if len(ids) > 0 {
		s.cfg.logf("jobs: resumed %d persisted jobs from %s", len(ids), s.cfg.StateDir)
	}
	return nil
}

func (s *Scheduler) resumeJob(id string) error {
	ck := &ckpt{dir: s.cfg.StateDir, id: id}
	data, err := os.ReadFile(ck.path("spec.json"))
	if err != nil {
		return err
	}
	var sf specFile
	if err := json.Unmarshal(data, &sf); err != nil || sf.Spec == nil {
		return fmt.Errorf("corrupt spec file: %v", err)
	}
	j := &job{
		id:            id,
		spec:          sf.Spec,
		state:         StateQueued,
		workers:       make(map[uint64]struct{}),
		failed:        make(map[uint64]struct{}),
		submittedWall: sf.SubmittedAt,
		submitted:     sf.SubmittedSeconds,
		ck:            ck,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)

	problem, algCfg, err := sf.Spec.Normalize()
	if err != nil {
		// The registry no longer accepts this spec (drift across a
		// binary upgrade): surface it as a failed job, not a dead
		// server.
		j.state = StateFailed
		j.errMsg = err.Error()
		return nil
	}
	j.problem, j.algCfg = problem, algCfg
	j.stride = strideOne / uint64(sf.Spec.Priority)

	// Already terminal: a marker records the outcome; the archive
	// snapshot serves result queries.
	if data, err := os.ReadFile(ck.path("final.json")); err == nil {
		var meta restoredMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("corrupt final marker: %v", err)
		}
		j.state = meta.State
		j.errMsg = meta.Error
		j.firstResult = meta.FirstResultSeconds
		j.finished = meta.FinishedSeconds
		j.restored = &meta
		if meta.FinishedSeconds > s.clockOff {
			s.clockOff = meta.FinishedSeconds
		}
		return nil
	}

	// No event stream (or an empty one): the job never ran; re-queue.
	if fi, err := os.Stat(ck.path("bmel")); err != nil || fi.Size() < int64(master.HeaderSize+master.EventSize) {
		s.queue = append(s.queue, j)
		return nil
	}
	return s.replayJob(j, ck)
}

// replayJob rebuilds a killed-while-running job: read its BMEL stream,
// replay it through a fresh core and freshly seeded Borg (recomputing
// accepted Results — deterministic problems make this exact), then
// reattach the log so continued events append to the same stream, and
// declare the dead fleet's workers gone so their leases resubmit.
func (s *Scheduler) replayJob(j *job, ck *ckpt) error {
	f, err := os.Open(ck.path("bmel"))
	if err != nil {
		return err
	}
	log, err := master.ReadLog(f)
	f.Close()
	if err != nil {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("unreadable checkpoint log: %v", err)
		return nil
	}
	b, err := core.New(j.problem, j.algCfg)
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		return nil
	}
	j.borg = b
	j.adv = advisor.New(advisor.Config{})
	j.adv.Configure(0, j.spec.Evaluations)
	j.replaying = true
	rc := master.ReplayConfig{
		Alg:          &jobAlg{b: b, adv: j.adv},
		Evaluate:     evalFor(j.problem),
		OnAccept:     s.onAcceptHook(j),
		OnAcceptFrom: s.onAcceptFromHook(j),
	}
	if q := newJobQuality(j); q != nil {
		// Recorded EvQuality points re-trigger sampling against the
		// replayed algorithm: the restored job's quality timeline (and
		// its stall detector) continue where the dead server's left off.
		q.Attach(b)
		rc.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	mc, err := master.Replay(log, rc)
	j.replaying = false
	if err != nil {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("replay: %v", err)
		return nil
	}
	j.mcore = mc
	j.log = log

	// Continue the clock past the recorded run and keep fresh worker
	// ids above every recorded one (redialing workers reclaim theirs).
	last := log.Events[len(log.Events)-1].At
	if last > s.clockOff {
		s.clockOff = last
	}
	for _, ev := range log.Events {
		if uint64(ev.Worker) > s.nextWID.Load() {
			s.nextWID.Store(uint64(ev.Worker))
		}
	}

	if err := ck.resumeLog(log, len(log.Events)); err != nil {
		return err
	}
	mc.AttachLog(log)

	if mc.Done() {
		// Completed, but the server died before finalizing.
		j.state = StateDone
		j.finished = last
		if err := ck.saveArchive(b.Archive()); err != nil {
			return err
		}
		return ck.finalize(j, last)
	}

	j.state = StateRunning
	s.active++
	// The recorded workers' transport died with the old server; until
	// each is declared gone its leases would wait out their timeouts.
	for _, wid := range mc.LiveWorkers() {
		s.exec(j, mc.Handle(master.Event{Kind: master.EvGone, Worker: wid, At: s.now()}))
	}
	s.cfg.logf("jobs: %s resumed at %d/%d evaluations", j.id, mc.Completed(), j.spec.Evaluations)
	return nil
}
