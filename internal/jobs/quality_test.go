package jobs

import (
	"context"
	"testing"
	"time"
)

// TestJobQualityOptIn: a spec with QualityEvery gets live quality
// samples in its status; one without stays quality-free.
func TestJobQualityOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s, err := New(Config{
		FleetListen:  "127.0.0.1:0",
		LeaseTimeout: 5 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sampled, err := s.Submit(&Spec{Problem: "DTLZ2", Objectives: 3, Evaluations: 200, QualityEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Submit(&Spec{Problem: "DTLZ2", Objectives: 3, Evaluations: 200})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 4, s.FleetAddr(), nil)
	waitJobs(t, s, 60*time.Second, func(st Status) bool { return st.State == StateDone })

	st, err := s.Get(sampled.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quality == nil {
		t.Fatal("opted-in job has no quality sample")
	}
	if st.Quality.Hypervolume <= 0 || st.Quality.ArchiveSize == 0 {
		t.Errorf("quality sample looks empty: %+v", st.Quality)
	}
	if st.Quality.Evaluations == 0 || st.Quality.Evaluations > 200 {
		t.Errorf("quality sample at %d evaluations, budget 200", st.Quality.Evaluations)
	}
	// The sampler feeds the job's advisor: the report carries the
	// search-health section.
	if st.Advisor == nil || st.Advisor.Quality == nil {
		t.Error("opted-in job's advisor report has no quality section")
	} else if st.Advisor.Quality.Samples == 0 {
		t.Error("advisor quality section saw no samples")
	}

	pst, err := s.Get(plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pst.Quality != nil {
		t.Error("job without QualityEvery reported a quality sample")
	}
}
