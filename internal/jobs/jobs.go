// Package jobs turns the one-shot distributed Borg master into a
// long-lived multi-tenant service: clients submit named problems with
// per-run configuration, a scheduler multiplexes every active run over
// one shared borgd fleet, and results stream back over HTTP while the
// runs are still going.
//
// The paper's scalability analysis motivates the design. A single
// asynchronous run saturates once T_F / (T_A + T_C) workers are busy —
// adding processors past the knee buys nothing for that run. A fleet
// sized for peak demand therefore spends most of its life past some
// run's knee; the only way to keep it busy is to run many searches at
// once. The scheduler does exactly that: one master.Core per job (the
// serial critical section stays per-run, as the paper requires),
// ScheduledOffspring policy so a worker finishing an evaluation parks
// until the fair-share scheduler speaks for it, and stride scheduling
// across jobs at per-evaluation granularity so no job starves and
// priorities mean something.
//
// Every scheduling decision lands in the job's own BMEL event log
// (EvReady/EvLeave are ordinary events), streamed to disk as it
// happens, so a killed server replays each job back to its exact
// pre-kill state and resumes it on whatever fleet redials in.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
)

// Submission limits. They bound hostile or fat-fingered requests, not
// legitimate experiments: the caps are orders of magnitude above the
// paper's largest runs.
const (
	// MaxSubmitBytes bounds a submission request body.
	MaxSubmitBytes = 1 << 16
	// MaxPriority bounds Spec.Priority (stride scheduling weight).
	MaxPriority = 16
	// MaxEvaluations bounds Spec.Evaluations.
	MaxEvaluations = 1_000_000_000
	// MaxPopulation bounds Spec.Population.
	MaxPopulation = 1_000_000
	// DefaultEpsilon is used when a spec names neither Epsilon nor
	// Epsilons.
	DefaultEpsilon = 0.01
)

// Spec is a job submission: which problem to optimize and how. The
// zero value of every optional field means "default".
type Spec struct {
	// Problem names a registry problem ("DTLZ2_5", "UF11", "ZDT1"...).
	// Families that need an objective count take it from Objectives
	// ("DTLZ2" + Objectives 5 ≡ "DTLZ2_5").
	Problem string `json:"problem"`
	// Objectives disambiguates problem families; 0 for problems whose
	// name already fixes the dimensions.
	Objectives int `json:"objectives,omitempty"`
	// Evaluations is the NFE budget (required).
	Evaluations uint64 `json:"evaluations"`
	// Epsilon is a uniform archive resolution applied to every
	// objective; Epsilons sets them per objective and wins when both
	// are given. Default DefaultEpsilon uniform.
	Epsilon  float64   `json:"epsilon,omitempty"`
	Epsilons []float64 `json:"epsilons,omitempty"`
	// Population is the initial population size (default 100).
	Population int `json:"population,omitempty"`
	// Seed seeds the run's random stream (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Priority is the job's fair-share weight, 1..MaxPriority
	// (default 1): a priority-4 job receives evaluation grants at 4x
	// the rate of a priority-1 job while both are runnable.
	Priority int `json:"priority,omitempty"`
	// QualityEvery opts the job into search-quality sampling: every
	// such number of accepted evaluations the scheduler snapshots the
	// job's hypervolume, ε-progress and operator adaptation, feeds its
	// advisor's stall detector, and reports the latest sample in the
	// job's Status. Sample points ride the job's BMEL log, so a
	// restored job replays its quality timeline too. 0 (default)
	// disables sampling.
	QualityEvery uint64 `json:"quality_every,omitempty"`
}

// Normalize validates the spec, fills defaults in place, and returns
// the resolved problem plus the algorithm config the spec implies.
// Hostile values — unknown problems, non-finite or non-positive
// epsilons, absurd budgets — come back as clean errors, never panics.
func (s *Spec) Normalize() (problems.Problem, core.Config, error) {
	var cfg core.Config
	if s.Problem == "" {
		return nil, cfg, errors.New("jobs: spec needs a problem name")
	}
	p, err := problems.Lookup(s.Problem, s.Objectives)
	if err != nil {
		return nil, cfg, fmt.Errorf("jobs: %w", err)
	}
	if s.Evaluations == 0 {
		return nil, cfg, errors.New("jobs: spec needs a positive evaluation budget")
	}
	if s.Evaluations > MaxEvaluations {
		return nil, cfg, fmt.Errorf("jobs: evaluation budget %d exceeds the %d cap", s.Evaluations, uint64(MaxEvaluations))
	}
	if s.Priority == 0 {
		s.Priority = 1
	}
	if s.Priority < 1 || s.Priority > MaxPriority {
		return nil, cfg, fmt.Errorf("jobs: priority %d outside 1..%d", s.Priority, MaxPriority)
	}
	if s.Population < 0 || s.Population > MaxPopulation {
		return nil, cfg, fmt.Errorf("jobs: population %d outside 0..%d", s.Population, MaxPopulation)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	eps := s.Epsilons
	if len(eps) == 0 {
		e := s.Epsilon
		if e == 0 {
			e = DefaultEpsilon
		}
		eps = core.UniformEpsilons(p.NumObjs(), e)
		s.Epsilons = eps
	}
	if len(eps) != p.NumObjs() {
		return nil, cfg, fmt.Errorf("jobs: %d epsilons for %d objectives", len(eps), p.NumObjs())
	}
	for _, e := range eps {
		// NaN fails e > 0 too, so this rejects every non-finite value.
		if !(e > 0) || math.IsInf(e, 1) {
			return nil, cfg, fmt.Errorf("jobs: epsilon %v is not a positive finite number", e)
		}
	}
	cfg = core.Config{
		Epsilons:              eps,
		InitialPopulationSize: s.Population,
		Seed:                  s.Seed,
	}
	if err := cfg.Normalize(); err != nil {
		return nil, cfg, fmt.Errorf("jobs: %w", err)
	}
	return p, cfg, nil
}

// DecodeSubmit parses one submission from r, rejecting unknown fields,
// bodies over MaxSubmitBytes, and trailing garbage. It only parses —
// callers still Normalize the result. This is the fuzzed entry point
// of the job API.
func DecodeSubmit(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSubmitBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobs: bad submission: %w", err)
	}
	if dec.More() {
		return nil, errors.New("jobs: trailing data after submission")
	}
	return &s, nil
}

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for an active-job slot.
	StateQueued State = "queued"
	// StateRunning: owns a master.Core; receiving fleet grants.
	StateRunning State = "running"
	// StateDone: budget reached; results final.
	StateDone State = "done"
	// StateCancelled: stopped by the client; partial results remain
	// fetchable.
	StateCancelled State = "cancelled"
	// StateFailed: the job cannot make progress (e.g. its checkpoint
	// would not replay); Error says why.
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Status is one job's externally visible state — what GET /jobs/{id}
// returns and what /jobs/{id}/watch streams.
type Status struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Problem  string `json:"problem"`
	Priority int    `json:"priority"`
	// Evaluations is the accepted NFE so far; Budget the target.
	Evaluations uint64 `json:"evaluations"`
	Budget      uint64 `json:"budget"`
	// ArchiveSize is the current ε-archive membership.
	ArchiveSize int `json:"archive_size"`
	// Workers is how many fleet workers are currently assigned to the
	// job; Outstanding its live leases; Pending its resubmission
	// backlog.
	Workers     int `json:"workers"`
	Outstanding int `json:"outstanding"`
	Pending     int `json:"pending"`
	// Protocol accounting, mirrored from master.Stats.
	Resubmissions uint64 `json:"resubmissions,omitempty"`
	Duplicates    uint64 `json:"duplicates,omitempty"`
	Leaves        uint64 `json:"leaves,omitempty"`
	Deaths        uint64 `json:"deaths,omitempty"`
	// SubmittedAt is RFC3339Nano wall time. The *Seconds fields are on
	// the scheduler's monotonic clock (which survives restarts — a
	// resumed job's times continue where the dead server's left off):
	// SubmittedSeconds when the job was accepted, FirstResultSeconds
	// when its first evaluation was accepted (0 until then),
	// FinishedSeconds when it reached a terminal state (0 until then).
	SubmittedAt        string  `json:"submitted_at"`
	SubmittedSeconds   float64 `json:"submitted_seconds"`
	FirstResultSeconds float64 `json:"first_result_seconds,omitempty"`
	FinishedSeconds    float64 `json:"finished_seconds,omitempty"`
	Error              string  `json:"error,omitempty"`
	// Advisor is the job's live scalability analysis — the same report
	// /debug/scaling serves — filled on single-job queries.
	Advisor *advisor.Report `json:"advisor,omitempty"`
	// Quality is the job's latest search-quality sample, present when
	// the spec opted in via QualityEvery and at least one sample has
	// been taken.
	Quality *obs.QualitySample `json:"quality,omitempty"`
}
