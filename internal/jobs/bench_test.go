package jobs

import (
	"context"
	"sort"
	"testing"
	"time"
)

// BenchmarkJobsLoad is the service's load-test smoke: b.N small jobs
// submitted up front and multiplexed over a 4-worker loopback fleet.
// Besides the usual ns/op it reports the p50/p99 submit-to-first-result
// latency across jobs — the multi-tenant responsiveness figure CI
// tracks head-vs-base in BENCH_jobs.json.
func BenchmarkJobsLoad(b *testing.B) {
	s, err := New(Config{FleetListen: "127.0.0.1:0", LeaseTimeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, 4, s.FleetAddr(), nil)

	b.ResetTimer()
	ids := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(&Spec{Problem: "ZDT1", Evaluations: 8, Population: 4, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		list, err := s.List()
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		for _, st := range list {
			if st.State.Terminal() {
				done++
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d jobs finished", done, len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.StopTimer()

	lat := make([]float64, 0, len(ids))
	for _, id := range ids {
		st, err := s.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone {
			b.Fatalf("%s ended %s: %s", id, st.State, st.Error)
		}
		lat = append(lat, st.FirstResultSeconds-st.SubmittedSeconds)
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	b.ReportMetric(q(0.50), "p50_first_result_s")
	b.ReportMetric(q(0.99), "p99_first_result_s")
}
