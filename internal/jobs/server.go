package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/obs"
)

// DebugOptions mounts the job API and the per-job scaling reports on
// an obs debug server, next to /debug/vars and /debug/pprof:
//
//	POST   /jobs              submit (201; 400 bad spec, 429 queue
//	                          full, 503 draining)
//	GET    /jobs              list every job, submission order
//	GET    /jobs/{id}         one job's status + advisor report
//	GET    /jobs/{id}/watch   stream status as JSONL until terminal
//	                          (?interval=duration, default 1s)
//	GET    /jobs/{id}/result  current ε-archive as archive JSON
//	DELETE /jobs/{id}         cancel (idempotent)
//	GET    /debug/scaling     per-job advisor reports; ?job=id serves
//	                          one job's report in the exact shape the
//	                          single-run master serves (borgtop -job)
//
// It also installs the scheduler's readiness check, so /readyz fails
// the moment the scheduler starts draining while /healthz stays green.
func (s *Scheduler) DebugOptions() []obs.DebugOption {
	return []obs.DebugOption{
		obs.WithHandler("POST /jobs", http.HandlerFunc(s.handleSubmit)),
		obs.WithHandler("GET /jobs", http.HandlerFunc(s.handleList)),
		obs.WithHandler("GET /jobs/{id}", http.HandlerFunc(s.handleStatus)),
		obs.WithHandler("GET /jobs/{id}/watch", http.HandlerFunc(s.handleWatch)),
		obs.WithHandler("GET /jobs/{id}/result", http.HandlerFunc(s.handleResult)),
		obs.WithHandler("DELETE /jobs/{id}", http.HandlerFunc(s.handleCancel)),
		obs.WithHandler("GET /debug/scaling", http.HandlerFunc(s.handleScaling)),
		obs.WithReadiness(s.Ready),
	}
}

// httpError maps scheduler errors onto statuses and writes a JSON
// error body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // mid-body failures are the client's problem
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSubmit(r.Body)
	if err != nil {
		httpError(w, err)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Scheduler) handleList(w http.ResponseWriter, _ *http.Request) {
	list, err := s.List()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Scheduler) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleWatch streams one status line per interval until the job is
// terminal or the client goes away — how borgq watch follows a run.
func (s *Scheduler) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	interval := time.Second
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			httpError(w, fmt.Errorf("jobs: bad interval %q", q))
			return
		}
		interval = d
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	st, err := s.Get(id)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		if st, err = s.Get(id); err != nil {
			return
		}
	}
}

func (s *Scheduler) handleResult(w http.ResponseWriter, r *http.Request) {
	data, err := s.Result(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(data) //nolint:errcheck
}

func (s *Scheduler) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled"})
}

// handleScaling serves the advisor analysis. With ?job=id the response
// is that job's advisor.Report verbatim — the same schema the
// single-run master serves on /debug/scaling, so borgtop points at a
// job unchanged. Without it, a map of every job's report.
func (s *Scheduler) handleScaling(w http.ResponseWriter, r *http.Request) {
	advs, err := s.Advisors()
	if err != nil {
		httpError(w, err)
		return
	}
	if id := r.URL.Query().Get("job"); id != "" {
		adv, ok := advs[id]
		if !ok {
			httpError(w, fmt.Errorf("%w: %s (or it has not started)", ErrNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, adv.Report())
		return
	}
	reports := make(map[string]advisor.Report, len(advs))
	for id, adv := range advs {
		reports[id] = adv.Report()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": reports})
}
