package jobs

import (
	"strings"
	"testing"
)

// FuzzDecodeSubmit hammers the job-submission decoder — the service's
// network-facing parse surface — with arbitrary bytes. It must never
// panic; anything it accepts must either normalize cleanly or be
// rejected by Normalize with an error, and a normalized spec must be
// internally consistent (defaults filled, one epsilon per objective).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add(`{"problem":"ZDT1","evaluations":100}`)
	f.Add(`{"problem":"DTLZ2","objectives":5,"evaluations":1000,"epsilon":0.05,"priority":4}`)
	f.Add(`{"problem":"UF1","evaluations":50,"epsilons":[0.1,0.2],"population":16,"seed":7}`)
	f.Add(`{"problem":"","evaluations":0}`)
	f.Add(`{"problem":"ZDT1","evaluations":1e308}`)
	f.Add(`{"problem":"ZDT1","evaluations":100,"epsilons":[1e-300]}`)
	f.Add(`[]`)
	f.Add(`nullnull`)
	f.Add("{}")
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := DecodeSubmit(strings.NewReader(data))
		if err != nil {
			return
		}
		p, cfg, err := spec.Normalize()
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("Normalize returned no error and no problem for %q", data)
		}
		if len(cfg.Epsilons) != p.NumObjs() {
			t.Fatalf("normalized %q: %d epsilons for %d objectives", data, len(cfg.Epsilons), p.NumObjs())
		}
		if spec.Priority < 1 || spec.Priority > MaxPriority {
			t.Fatalf("normalized %q: priority %d out of range", data, spec.Priority)
		}
		if spec.Seed == 0 || spec.Evaluations == 0 {
			t.Fatalf("normalized %q: zero seed or budget survived", data)
		}
	})
}
