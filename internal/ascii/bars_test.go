package ascii

import (
	"math"
	"testing"
	"unicode/utf8"
)

func TestBar(t *testing.T) {
	cases := []struct {
		frac  float64
		width int
		want  string
	}{
		{0, 4, "    "},
		{1, 4, "████"},
		{0.5, 4, "██  "},
		{0.5, 1, "▌"},
		{1.0 / 8, 1, "▏"},
		{7.0 / 8, 1, "▉"},
		// Out-of-range and non-finite inputs clamp instead of panicking
		// (the advisor's ratios can exceed 1, and warm-up divisions can
		// be NaN).
		{1.7, 3, "███"},
		{-0.2, 3, "   "},
		{math.NaN(), 3, "   "},
		{math.Inf(1), 3, "███"},
	}
	for _, tc := range cases {
		got := Bar(tc.frac, tc.width)
		if got != tc.want {
			t.Errorf("Bar(%v, %d) = %q, want %q", tc.frac, tc.width, got, tc.want)
		}
		if n := utf8.RuneCountInString(got); n != tc.width {
			t.Errorf("Bar(%v, %d) is %d cells wide", tc.frac, tc.width, n)
		}
	}
	if got := Bar(0.5, 0); got != "▌" {
		t.Errorf("zero width should be raised to one cell, got %q", got)
	}
}
