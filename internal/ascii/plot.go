// Package ascii renders small text-mode plots for the CLI tools: 2-D
// objective-space scatter charts and log-log line charts, so fronts
// and scaling curves can be inspected without leaving the terminal.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// Scatter renders the 2-D points as a text scatter plot of the given
// size (characters). Points beyond the axis ranges are clamped onto
// the border. Returns "" for an empty input.
func Scatter(points [][]float64, width, height int) string {
	if len(points) == 0 {
		return ""
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int((p[0] - minX) / (maxX - minX) * float64(width-1))
		row := int((p[1] - minY) / (maxY - minY) * float64(height-1))
		row = height - 1 - row // y grows upward
		grid[clampInt(row, 0, height-1)][clampInt(col, 0, width-1)] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10.4g ┌%s┐\n", maxY, strings.Repeat("─", width))
	for i, row := range grid {
		label := strings.Repeat(" ", 11)
		if i == height-1 {
			label = fmt.Sprintf("%10.4g ", minY)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "%s└%s┘\n", strings.Repeat(" ", 11), strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%s%-10.4g%s%10.4g\n", strings.Repeat(" ", 12), minX,
		strings.Repeat(" ", maxInt(1, width-20)), maxX)
	return sb.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
