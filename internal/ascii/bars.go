package ascii

// Bar renders frac (clamped to [0, 1]) as a fixed-width horizontal
// gauge using block-drawing characters, with eighth-block resolution
// in the final cell — the building block of cmd/borgtop's live view.
// Width values below 1 are raised to 1.
func Bar(frac float64, width int) string {
	if width < 1 {
		width = 1
	}
	if frac < 0 || frac != frac { // NaN renders empty
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// 8 sub-cells per character: index 0 is empty, 8 is a full block.
	eighths := []rune(" ▏▎▍▌▋▊▉█")
	cells := frac * float64(width)
	full := int(cells)
	rem := int((cells - float64(full)) * 8)
	out := make([]rune, width)
	for i := range out {
		switch {
		case i < full:
			out[i] = eighths[8]
		case i == full && rem > 0:
			out[i] = eighths[rem]
		default:
			out[i] = eighths[0]
		}
	}
	return string(out)
}
