package ascii

import (
	"strings"
	"testing"
)

func TestScatterEmpty(t *testing.T) {
	if out := Scatter(nil, 40, 10); out != "" {
		t.Fatalf("empty input rendered %q", out)
	}
}

func TestScatterContainsPoints(t *testing.T) {
	pts := [][]float64{{0, 1}, {0.5, 0.5}, {1, 0}}
	out := Scatter(pts, 40, 10)
	if strings.Count(out, "*") < 3 {
		t.Fatalf("expected 3 marks, got:\n%s", out)
	}
	// Axis labels present.
	for _, want := range []string{"0", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing axis label %q:\n%s", want, out)
		}
	}
}

func TestScatterCornersLandOnBorders(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	out := Scatter(pts, 20, 6)
	lines := strings.Split(out, "\n")
	// First grid line (max y) must hold the (1,1) mark at the right;
	// last grid line the (0,0) mark at the left.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 6 {
		t.Fatalf("expected 6 grid rows, got %d:\n%s", len(gridLines), out)
	}
	if !strings.Contains(gridLines[0], "*") {
		t.Fatalf("top row missing the (1,1) mark:\n%s", out)
	}
	if !strings.Contains(gridLines[5], "*") {
		t.Fatalf("bottom row missing the (0,0) mark:\n%s", out)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// All points identical: must not divide by zero.
	pts := [][]float64{{2, 3}, {2, 3}}
	out := Scatter(pts, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("degenerate range lost the points:\n%s", out)
	}
}

func TestScatterMinimumSize(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	out := Scatter(pts, 1, 1) // clamped up internally
	if out == "" || !strings.Contains(out, "*") {
		t.Fatal("minimum-size plot unusable")
	}
}
