package experiment

import (
	"fmt"
	"math"

	"borgmoea/internal/core"
	"borgmoea/internal/metrics"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// SpeedupConfig parameterizes the Figure 3/4 reproduction:
// hypervolume-threshold speedup S_P^h = T_S^h / T_P^h for thresholds
// h ∈ [0.1, 1.0], one panel per (problem, T_F).
type SpeedupConfig struct {
	// Problem under test (DTLZ2_5 for Fig. 3, UF11 for Fig. 4).
	Problem problems.Problem
	// TFMean is the controlled delay mean; TFCV its coefficient of
	// variation (default 0.1).
	TFMean float64
	TFCV   float64
	// Processors are the series (default {16, ..., 1024}).
	Processors []int
	// Evaluations is N (default 100000).
	Evaluations uint64
	// Replicates per configuration (default 3; the paper used 50).
	Replicates int
	// Thresholds are the fractions of the attainable hypervolume
	// (default 0.1, 0.2, ..., 1.0). "Attainable" is the minimum
	// final hypervolume across all configurations including serial,
	// so every series is defined at every threshold (see
	// EXPERIMENTS.md for the normalization discussion).
	Thresholds []float64
	// CheckpointEvery controls trajectory resolution in evaluations
	// (default N/100).
	CheckpointEvery uint64
	// HVSamples is the Monte-Carlo sample count per hypervolume
	// estimate (default 20000).
	HVSamples int
	// RefPointScale places the hypervolume reference point at this
	// value in every objective (default metrics.DefaultRefScale).
	RefPointScale float64
	// TAOverride fixes the master algorithm time (tests); nil
	// measures real CPU time.
	TAOverride stats.Distribution
	// Epsilon is the archive resolution (default 0.15, matching the
	// Table II experiments).
	Epsilon float64
	// Seed seeds the experiment.
	Seed uint64
	// Progress, when non-nil, receives one line per configuration.
	Progress func(string)
}

func (c *SpeedupConfig) normalize() error {
	if c.Problem == nil {
		return fmt.Errorf("experiment: SpeedupConfig.Problem required")
	}
	if c.TFMean <= 0 {
		return fmt.Errorf("experiment: TFMean must be positive")
	}
	if c.TFCV == 0 {
		c.TFCV = 0.1
	}
	if len(c.Processors) == 0 {
		c.Processors = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	if c.Evaluations == 0 {
		c.Evaluations = 100000
	}
	if c.Replicates == 0 {
		c.Replicates = 3
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = c.Evaluations / 100
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = 1
		}
	}
	if c.HVSamples == 0 {
		c.HVSamples = 20000
	}
	if c.RefPointScale == 0 {
		c.RefPointScale = metrics.DefaultRefScale
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.15 // matches the Table II resolution
	}
	return nil
}

// trajectory is one run's hypervolume-over-virtual-time curve.
type trajectory struct {
	times []float64 // virtual seconds at each checkpoint
	hv    []float64 // hypervolume at each checkpoint
}

// timeToThreshold returns the earliest checkpoint time at which hv >=
// h, or NaN if never reached.
func (tr trajectory) timeToThreshold(h float64) float64 {
	for i, v := range tr.hv {
		if v >= h {
			return tr.times[i]
		}
	}
	return math.NaN()
}

// finalHV returns the last checkpoint's hypervolume (0 if empty).
func (tr trajectory) finalHV() float64 {
	if len(tr.hv) == 0 {
		return 0
	}
	return tr.hv[len(tr.hv)-1]
}

// hvMeter computes reproducible Monte-Carlo hypervolume estimates
// with a shared sample stream so trajectories are comparable.
type hvMeter struct {
	ref     []float64
	samples int
	seed    uint64
}

func (h hvMeter) of(objs [][]float64) float64 {
	if len(objs) == 0 {
		return 0
	}
	return metrics.HypervolumeMC(objs, h.ref, h.samples, h.seed)
}

// SpeedupSeries is one line of a Figure 3/4 panel.
type SpeedupSeries struct {
	P       int
	Speedup []float64 // aligned with SpeedupResult.Thresholds
}

// SpeedupResult is one (problem, T_F) panel.
type SpeedupResult struct {
	Problem    string
	TFMean     float64
	Thresholds []float64 // absolute hypervolume values used
	// ThresholdFractions are the configured fractions of the
	// attainable hypervolume.
	ThresholdFractions []float64
	// AttainableHV is the min-across-configurations final
	// hypervolume that defines the h=1.0 threshold.
	AttainableHV float64
	Series       []SpeedupSeries
	// SerialTimeToThreshold are the serial T_S^h values.
	SerialTimeToThreshold []float64
}

// RunSpeedup reproduces one panel of Figure 3 (DTLZ2) or Figure 4
// (UF11).
func RunSpeedup(cfg SpeedupConfig) (*SpeedupResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m := cfg.Problem.NumObjs()
	ref := metrics.RefPoint(m, cfg.RefPointScale)
	meter := hvMeter{ref: ref, samples: cfg.HVSamples, seed: cfg.Seed ^ 0x4856}

	// Serial baseline trajectories.
	serial := make([]trajectory, cfg.Replicates)
	for r := range serial {
		serial[r] = runSerialTrajectory(&cfg, meter, cfg.Seed+uint64(r)*104729)
	}
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("%s TF=%g serial baseline done (final HV %.4f)",
			cfg.Problem.Name(), cfg.TFMean, meanFinalHV(serial)))
	}

	// Parallel trajectories per P.
	parTraj := make(map[int][]trajectory, len(cfg.Processors))
	for _, p := range cfg.Processors {
		trs := make([]trajectory, cfg.Replicates)
		for r := range trs {
			tr, err := runParallelTrajectory(&cfg, meter, p, cfg.Seed+uint64(p)*31+uint64(r)*104729)
			if err != nil {
				return nil, err
			}
			trs[r] = tr
		}
		parTraj[p] = trs
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s TF=%g P=%d done (final HV %.4f)",
				cfg.Problem.Name(), cfg.TFMean, p, meanFinalHV(trs)))
		}
	}

	// The attainable hypervolume: minimum final HV across every
	// configuration, so the h=1.0 threshold is reached by all.
	attainable := math.Inf(1)
	for _, tr := range serial {
		attainable = math.Min(attainable, tr.finalHV())
	}
	for _, trs := range parTraj {
		for _, tr := range trs {
			attainable = math.Min(attainable, tr.finalHV())
		}
	}

	res := &SpeedupResult{
		Problem:            cfg.Problem.Name(),
		TFMean:             cfg.TFMean,
		ThresholdFractions: cfg.Thresholds,
		AttainableHV:       attainable,
	}
	res.Thresholds = make([]float64, len(cfg.Thresholds))
	for i, f := range cfg.Thresholds {
		res.Thresholds[i] = f * attainable
	}
	res.SerialTimeToThreshold = meanTimesToThresholds(serial, res.Thresholds)
	for _, p := range cfg.Processors {
		pt := meanTimesToThresholds(parTraj[p], res.Thresholds)
		sp := make([]float64, len(res.Thresholds))
		for i := range sp {
			if pt[i] > 0 && !math.IsNaN(pt[i]) && !math.IsNaN(res.SerialTimeToThreshold[i]) {
				sp[i] = res.SerialTimeToThreshold[i] / pt[i]
			} else {
				sp[i] = math.NaN()
			}
		}
		res.Series = append(res.Series, SpeedupSeries{P: p, Speedup: sp})
	}
	return res, nil
}

func meanFinalHV(trs []trajectory) float64 {
	s := 0.0
	for _, tr := range trs {
		s += tr.finalHV()
	}
	return s / float64(len(trs))
}

// meanTimesToThresholds averages time-to-threshold across replicates
// (NaN if any replicate never reaches the threshold).
func meanTimesToThresholds(trs []trajectory, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	for i, h := range thresholds {
		sum := 0.0
		for _, tr := range trs {
			t := tr.timeToThreshold(h)
			if math.IsNaN(t) {
				sum = math.NaN()
				break
			}
			sum += t
		}
		out[i] = sum / float64(len(trs))
	}
	return out
}

// runSerialTrajectory runs the serial Borg MOEA, mapping evaluation
// counts to virtual serial time N·(T_F + T_A): T_F from the configured
// delay mean and T_A from the measured (or overridden) per-evaluation
// algorithm time.
func runSerialTrajectory(cfg *SpeedupConfig, meter hvMeter, seed uint64) trajectory {
	b := core.MustNew(cfg.Problem, core.Config{
		Epsilons: core.UniformEpsilons(cfg.Problem.NumObjs(), cfg.Epsilon),
		Seed:     seed,
	})
	var tr trajectory
	taMean := 0.0
	if cfg.TAOverride != nil {
		taMean = cfg.TAOverride.Mean()
	}
	taTimer := newWallTimer()
	for b.Evaluations() < cfg.Evaluations {
		taTimer.start()
		s := b.Suggest()
		taTimer.pause()
		core.EvaluateSolution(cfg.Problem, s)
		taTimer.start()
		b.Accept(s)
		taTimer.pause()
		if b.Evaluations()%cfg.CheckpointEvery == 0 {
			ta := taMean
			if cfg.TAOverride == nil {
				ta = taTimer.meanPer(b.Evaluations())
			}
			virtual := float64(b.Evaluations()) * (cfg.TFMean + ta)
			tr.times = append(tr.times, virtual)
			tr.hv = append(tr.hv, meter.of(b.Archive().Objectives()))
		}
	}
	return tr
}

func runParallelTrajectory(cfg *SpeedupConfig, meter hvMeter, p int, seed uint64) (trajectory, error) {
	var tr trajectory
	pc := parallel.Config{
		Problem: cfg.Problem,
		Algorithm: core.Config{
			Epsilons: core.UniformEpsilons(cfg.Problem.NumObjs(), cfg.Epsilon),
		},
		Processors:      p,
		Evaluations:     cfg.Evaluations,
		TF:              stats.GammaFromMeanCV(cfg.TFMean, cfg.TFCV),
		TA:              cfg.TAOverride,
		Seed:            seed,
		CheckpointEvery: cfg.CheckpointEvery,
		OnCheckpoint: func(vt float64, b *core.Borg) {
			tr.times = append(tr.times, vt)
			tr.hv = append(tr.hv, meter.of(b.Archive().Objectives()))
		},
	}
	if _, err := parallel.RunAsync(pc); err != nil {
		return trajectory{}, err
	}
	return tr, nil
}
