package experiment

import (
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// wallTimer accumulates wall-clock time across start/pause intervals,
// used to derive a mean per-evaluation T_A for the serial baseline.
// It deliberately measures elapsed wall time, not CPU time: the serial
// baseline runs single-threaded and undisturbed, where the two agree,
// and wall time is what the paper's T_P/T_S comparisons are built on.
type wallTimer struct {
	total   time.Duration
	started time.Time
	running bool
}

func newWallTimer() *wallTimer { return &wallTimer{} }

func (t *wallTimer) start() {
	t.started = time.Now()
	t.running = true
}

func (t *wallTimer) pause() {
	if t.running {
		t.total += time.Since(t.started)
		t.running = false
	}
}

// meanPer returns total accumulated seconds divided by n.
func (t *wallTimer) meanPer(n uint64) float64 {
	if n == 0 {
		return 0
	}
	return t.total.Seconds() / float64(n)
}

// TimingReport is the output of CollectTimings: measured T_A samples
// from an instrumented run and the maximum-likelihood fits, mirroring
// the paper's Ranger measurement + R fitting workflow (Section IV.B).
type TimingReport struct {
	Problem string
	// Summary of the T_A samples.
	Summary stats.Summary
	// Fits are the candidate distributions sorted by log-likelihood.
	Fits []stats.Fit
	// Samples are the raw measurements (seconds).
	Samples []float64
}

// Best returns the selected (highest log-likelihood) fit.
func (r *TimingReport) Best() stats.Fit { return r.Fits[0] }

// CollectTimings runs an instrumented asynchronous run (measured T_A)
// and fits candidate distributions to the observed master algorithm
// times. evaluations controls the sample count (one T_A sample per
// evaluation).
func CollectTimings(problem problems.Problem, evaluations uint64, seed uint64) (*TimingReport, error) {
	res, err := parallel.RunAsync(parallel.Config{
		Problem: problem,
		Algorithm: core.Config{
			Epsilons: core.UniformEpsilons(problem.NumObjs(), 0.15),
		},
		Processors:     8,
		Evaluations:    evaluations,
		TF:             stats.GammaFromMeanCV(0.001, 0.1),
		Seed:           seed,
		CaptureTimings: true,
	})
	if err != nil {
		return nil, err
	}
	report := &TimingReport{
		Problem: problem.Name(),
		Samples: res.TASamples,
		Summary: stats.Summarize(res.TASamples),
		Fits:    stats.FitAll(res.TASamples),
	}
	return report, nil
}
