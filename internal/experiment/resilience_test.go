package experiment

import (
	"strings"
	"testing"

	"borgmoea/internal/problems"
)

func TestResilienceSmall(t *testing.T) {
	cfg := ResilienceConfig{
		Problems:        []problems.Problem{problems.NewDTLZ2(5)},
		FailedFractions: []float64{0, 0.05},
		MTTR:            0.02,
		Processors:      8,
		Evaluations:     2000,
		TFMean:          0.001,
		Replicates:      2,
		Seed:            1,
	}
	res, err := RunResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	clean, faulty := res.Cells[0], res.Cells[1]
	if clean.FailedFraction != 0 || faulty.FailedFraction != 0.05 {
		t.Fatalf("cell order wrong: %+v", res.Cells)
	}
	if !clean.AsyncCompleted || !clean.SyncCompleted ||
		!faulty.AsyncCompleted || !faulty.SyncCompleted {
		t.Fatalf("incomplete cells: %+v", res.Cells)
	}
	if clean.AsyncResubmissions != 0 || clean.SyncResubmissions != 0 {
		t.Fatalf("fault-free baseline resubmitted work: %+v", clean)
	}
	if faulty.AsyncResubmissions == 0 {
		t.Fatalf("faulty cell shows no async resubmissions: %+v", faulty)
	}
	if clean.AsyncEfficiency <= 0 || clean.SyncEfficiency <= 0 {
		t.Fatalf("nonpositive efficiency: %+v", clean)
	}
	// The async driver must not fall behind sync under failures any
	// worse than it does fault-free (the graceful-degradation claim,
	// with slack for a small sample).
	if faulty.AsyncEfficiency < 0.5*faulty.SyncEfficiency {
		t.Fatalf("async efficiency %.3f collapsed vs sync %.3f under faults",
			faulty.AsyncEfficiency, faulty.SyncEfficiency)
	}

	var sb strings.Builder
	if err := WriteResilience(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Resilience:", "DTLZ2", "0.0%", "5.0%", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestResilienceValidation(t *testing.T) {
	for _, cfg := range []ResilienceConfig{
		{FailedFractions: []float64{-0.1}},
		{FailedFractions: []float64{1}},
		{MTTR: -1},
		{Processors: 1},
		{TFMean: -1},
	} {
		if _, err := RunResilience(cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}
