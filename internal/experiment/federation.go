package experiment

import (
	"fmt"

	"borgmoea/internal/core"
	"borgmoea/internal/model"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// FederationConfig parameterizes CompareFederation: one monolithic
// master over TotalProcessors vs a federation of Islands masters, each
// over TotalProcessors/Islands, same timing regime and same total
// evaluation budget — both on the DES cluster, so P ≥ 4096 runs in a
// unit test.
type FederationConfig struct {
	// Problem and Epsilons configure the Borg instances. Nil problem
	// defaults to DTLZ2 with 2 objectives (cheap to evaluate; the
	// experiment is about the protocol, not the search).
	Problem  problems.Problem
	Epsilons []float64
	// TotalProcessors is P, split evenly across Islands (each island
	// gets one master plus TotalProcessors/Islands − 1 workers).
	TotalProcessors int
	Islands         int
	// Evaluations is the total budget, split evenly across islands in
	// the federated leg.
	Evaluations uint64
	// Times sets the controlled T_F, T_A and T_C (constants, so the
	// analytical P_UB is exact).
	Times model.Times
	// MigrationEvery is the per-island migration cadence (0 disables).
	MigrationEvery uint64
	Seed           uint64
}

// FederationPoint is one leg of the comparison.
type FederationPoint struct {
	Processors  int
	Evaluations uint64
	// Elapsed is the leg's virtual T_P; Speedup is T_S/T_P against the
	// serial algorithm, Efficiency the speedup per processor.
	Elapsed    float64
	Speedup    float64
	Efficiency float64
}

// FederationComparison is the paper-extending result: the single
// master pinned at its Eq. 4 ceiling while the federation, with the
// identical processor count and budget, runs far past it.
type FederationComparison struct {
	Times model.Times
	// PUB is the analytical single-master bound P_UB = T_F/(2·T_C+T_A).
	PUB       float64
	Islands   int
	Single    FederationPoint
	Federated FederationPoint
	Migrants  uint64
}

func (c *FederationComparison) String() string {
	return fmt.Sprintf("P=%d P_UB=%.1f: single speedup %.1f (%.2fx P_UB) vs %d-island federation %.1f (%.2fx P_UB)",
		c.Single.Processors, c.PUB, c.Single.Speedup, c.Single.Speedup/c.PUB,
		c.Islands, c.Federated.Speedup, c.Federated.Speedup/c.PUB)
}

// CompareFederation runs both legs on the DES cluster and reports the
// speedups against the analytical ceiling.
func CompareFederation(cfg FederationConfig) (*FederationComparison, error) {
	if cfg.TotalProcessors < 4 {
		return nil, fmt.Errorf("experiment: need at least 4 processors, got %d", cfg.TotalProcessors)
	}
	if cfg.Islands < 1 || cfg.TotalProcessors%cfg.Islands != 0 {
		return nil, fmt.Errorf("experiment: %d processors do not split evenly into %d islands", cfg.TotalProcessors, cfg.Islands)
	}
	if cfg.Evaluations == 0 || cfg.Evaluations%uint64(cfg.Islands) != 0 {
		return nil, fmt.Errorf("experiment: budget %d does not split evenly into %d islands", cfg.Evaluations, cfg.Islands)
	}
	problem := cfg.Problem
	if problem == nil {
		problem = problems.NewDTLZ2(2)
	}
	eps := cfg.Epsilons
	if eps == nil {
		eps = core.UniformEpsilons(problem.NumObjs(), 0.1)
	}
	base := parallel.Config{
		Problem:     problem,
		Algorithm:   core.Config{Epsilons: eps},
		Evaluations: cfg.Evaluations,
		TF:          stats.NewConstant(cfg.Times.TF),
		TA:          stats.NewConstant(cfg.Times.TA),
		TC:          stats.NewConstant(cfg.Times.TC),
		Seed:        cfg.Seed,
	}
	serial := model.SerialTime(cfg.Evaluations, cfg.Times)
	out := &FederationComparison{
		Times:   cfg.Times,
		PUB:     model.ProcessorUpperBound(cfg.Times),
		Islands: cfg.Islands,
	}

	single := base
	single.Processors = cfg.TotalProcessors
	sres, err := parallel.RunAsync(single)
	if err != nil {
		return nil, err
	}
	out.Single = FederationPoint{
		Processors:  cfg.TotalProcessors,
		Evaluations: sres.Evaluations,
		Elapsed:     sres.ElapsedTime,
		Speedup:     serial / sres.ElapsedTime,
		Efficiency:  serial / sres.ElapsedTime / float64(cfg.TotalProcessors),
	}

	fedBase := base
	fedBase.Processors = cfg.TotalProcessors / cfg.Islands
	fedBase.Evaluations = cfg.Evaluations / uint64(cfg.Islands)
	fres, err := parallel.RunIslands(parallel.IslandsConfig{
		Base:           fedBase,
		Islands:        cfg.Islands,
		MigrationEvery: cfg.MigrationEvery,
	})
	if err != nil {
		return nil, err
	}
	out.Migrants = fres.Migrants
	out.Federated = FederationPoint{
		Processors:  cfg.TotalProcessors,
		Evaluations: fres.TotalEvaluations,
		Elapsed:     fres.ElapsedTime,
		Speedup:     serial / fres.ElapsedTime,
		Efficiency:  serial / fres.ElapsedTime / float64(cfg.TotalProcessors),
	}
	return out, nil
}
