package experiment

import (
	"math"
	"strings"
	"testing"

	"borgmoea/internal/model"
)

// TestCompareFederationBeatsPUB is the DES half of the ISSUE's
// acceptance demonstration at cluster scale: P = 4096 processors,
// T_F = 100ms, T_A = 1ms, T_C = 0.1ms, so the paper's Eq. 4 ceiling is
// P_UB = 0.1/(2·1e-4 + 1e-3) ≈ 83. The single master saturates right
// at that bound no matter that it holds 4096 processors; splitting the
// identical processor count and budget across 64 federated islands
// runs the aggregate speedup far past it.
func TestCompareFederationBeatsPUB(t *testing.T) {
	times := model.Times{TF: 0.1, TA: 1e-3, TC: 1e-4}
	cmp, err := CompareFederation(FederationConfig{
		TotalProcessors: 4096,
		Islands:         64,
		Evaluations:     16384,
		Times:           times,
		MigrationEvery:  64,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := model.ProcessorUpperBound(times)
	if math.Abs(cmp.PUB-pub) > 1e-9 || math.Abs(pub-83.333) > 0.01 {
		t.Fatalf("P_UB = %.3f, want 83.333", cmp.PUB)
	}

	// Both legs spent the full budget.
	if cmp.Single.Evaluations != 16384 || cmp.Federated.Evaluations != 16384 {
		t.Fatalf("budgets differ: single %d, federated %d", cmp.Single.Evaluations, cmp.Federated.Evaluations)
	}
	if cmp.Migrants == 0 {
		t.Fatal("federated leg exchanged no migrants")
	}

	// The single master is pinned at its ceiling: with P ≫ P_UB the
	// master's critical section is the bottleneck, so observed speedup
	// cannot meaningfully exceed P_UB.
	if cmp.Single.Speedup >= 1.5*pub {
		t.Fatalf("single master speedup %.1f exceeds 1.5x P_UB %.1f — the ceiling did not bind", cmp.Single.Speedup, pub)
	}
	// The federation, with the same 4096 processors and budget, runs
	// far past the bound.
	if cmp.Federated.Speedup <= 3*pub {
		t.Fatalf("federated speedup %.1f does not beat 3x P_UB %.1f", cmp.Federated.Speedup, pub)
	}
	if cmp.Federated.Speedup <= cmp.Single.Speedup {
		t.Fatalf("federated speedup %.1f not above single-master %.1f", cmp.Federated.Speedup, cmp.Single.Speedup)
	}

	s := cmp.String()
	for _, want := range []string{"P=4096", "P_UB=83.3", "64-island"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

// TestCompareFederationValidation covers the config error paths.
func TestCompareFederationValidation(t *testing.T) {
	times := model.Times{TF: 0.1, TA: 1e-3, TC: 1e-4}
	for name, cfg := range map[string]FederationConfig{
		"too few processors": {TotalProcessors: 2, Islands: 1, Evaluations: 64, Times: times},
		"uneven islands":     {TotalProcessors: 100, Islands: 3, Evaluations: 99, Times: times},
		"uneven budget":      {TotalProcessors: 64, Islands: 4, Evaluations: 63, Times: times},
		"zero budget":        {TotalProcessors: 64, Islands: 4, Times: times},
	} {
		if _, err := CompareFederation(cfg); err == nil {
			t.Errorf("%s: accepted an invalid config", name)
		}
	}
}
