package experiment

import (
	"math"
	"strings"
	"testing"

	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

func TestRunDynamicsShape(t *testing.T) {
	rows, err := RunDynamics(DynamicsConfig{
		Problem:     problems.NewDTLZ2(5),
		Processors:  []int{1, 16, 64},
		Evaluations: 5000,
		TAOverride:  stats.NewConstant(0.000029),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ArchiveSize <= 0 {
			t.Fatalf("P=%d: empty archive", r.P)
		}
		if r.Improvements == 0 {
			t.Fatalf("P=%d: no ε-progress", r.P)
		}
		sum := 0.0
		for _, p := range r.OperatorProbabilities {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("P=%d: probabilities sum to %v", r.P, sum)
		}
		if len(r.OperatorNames) != len(r.OperatorProbabilities) {
			t.Fatalf("P=%d: names/probabilities mismatch", r.P)
		}
	}
}

// TestDynamicsDifferAcrossP: the asynchronous completion order
// reshapes the adaptation trajectory, so different processor counts
// should end in measurably different adaptive states.
func TestDynamicsDifferAcrossP(t *testing.T) {
	rows, err := RunDynamics(DynamicsConfig{
		Problem:     problems.NewDTLZ2(5),
		Processors:  []int{1, 128},
		Evaluations: 8000,
		TAOverride:  stats.NewConstant(0.000029),
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rows[0].OperatorProbabilities, rows[1].OperatorProbabilities
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-6 {
		t.Fatal("serial and P=128 runs ended in identical operator mixes — suspicious")
	}
}

func TestRunDynamicsValidation(t *testing.T) {
	if _, err := RunDynamics(DynamicsConfig{}); err == nil {
		t.Error("missing problem accepted")
	}
}

func TestWriteDynamics(t *testing.T) {
	rows, err := RunDynamics(DynamicsConfig{
		Problem:     problems.NewDTLZ2(3),
		Processors:  []int{1, 8},
		Evaluations: 2000,
		TAOverride:  stats.NewConstant(0.000029),
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDynamics(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"restarts", "sbx+pm", "archive"} {
		if !strings.Contains(out, want) {
			t.Errorf("dynamics table missing %q:\n%s", want, out)
		}
	}
	if err := WriteDynamics(&sb, nil); err != nil {
		t.Fatal("empty rows must not error")
	}
}
