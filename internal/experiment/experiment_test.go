package experiment

import (
	"math"
	"strings"
	"testing"

	"borgmoea/internal/model"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// smallTable2Config returns a fast, deterministic Table II setup.
func smallTable2Config() Table2Config {
	return Table2Config{
		Problems:      []problems.Problem{problems.NewDTLZ2(5)},
		TFMeans:       []float64{0.01},
		Processors:    []int{8, 16},
		Evaluations:   4000,
		Replicates:    2,
		SimReplicates: 2,
		TAOverride:    stats.NewConstant(0.000029),
		Seed:          1,
	}
}

func TestRunTable2SmallShape(t *testing.T) {
	cells, err := RunTable2(smallTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Time <= 0 {
			t.Fatalf("cell %+v has no elapsed time", c)
		}
		if c.Efficiency <= 0 || c.Efficiency > 1.05 {
			t.Fatalf("efficiency %v out of range", c.Efficiency)
		}
		if c.AnalyticalTime <= 0 || c.SimulationTime <= 0 {
			t.Fatalf("model predictions missing: %+v", c)
		}
		// Unsaturated regime (P_UB ≈ 244): both models should be
		// close to experiment.
		if c.AnalyticalError > 0.1 || c.SimulationError > 0.1 {
			t.Fatalf("model errors too large in unsaturated regime: %+v", c)
		}
		if c.TA <= 0 || c.TF <= 0 || c.TC <= 0 {
			t.Fatalf("observed means missing: %+v", c)
		}
	}
}

// TestTable2SaturatedRegimeErrorOrdering reproduces the paper's key
// Table II finding: once the master saturates, the analytical model's
// error explodes while the simulation model stays accurate.
func TestTable2SaturatedRegimeErrorOrdering(t *testing.T) {
	cfg := smallTable2Config()
	cfg.TFMeans = []float64{0.001} // P_UB ≈ 24
	cfg.Processors = []int{64}
	cfg.Evaluations = 8000
	cells, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.AnalyticalError < 0.3 {
		t.Fatalf("analytical error %.0f%% too small for saturated master", 100*c.AnalyticalError)
	}
	if c.SimulationError > 0.15 {
		t.Fatalf("simulation error %.0f%% too large — contention model broken", 100*c.SimulationError)
	}
	if c.SimulationError >= c.AnalyticalError {
		t.Fatal("simulation model should beat analytical model at saturation")
	}
}

func TestTable2MeasuredTAMode(t *testing.T) {
	cfg := smallTable2Config()
	cfg.TAOverride = nil // measure real CPU time
	cfg.Processors = []int{8}
	cfg.Evaluations = 2000
	cfg.Replicates = 1
	cfg.SimReplicates = 1
	cells, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].TA <= 0 {
		t.Fatal("measured TA not recorded")
	}
	if cells[0].FittedTA == "" {
		t.Fatal("no TA distribution fitted")
	}
}

func TestWriteTable2Renders(t *testing.T) {
	cells := []Table2Cell{{
		Problem: "DTLZ2_5", P: 16, TA: 0.000023, TC: 0.000006, TF: 0.01,
		Time: 67.5, Efficiency: 0.93,
		AnalyticalTime: 67.1, AnalyticalError: 0.01,
		SimulationTime: 67.1, SimulationError: 0.01,
	}}
	var sb strings.Builder
	if err := WriteTable2(&sb, cells); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"DTLZ2_5", "67.5", "0.93", "1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteTable2CSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DTLZ2_5,16,") {
		t.Errorf("CSV output malformed:\n%s", sb.String())
	}
}

func smallSpeedupConfig() SpeedupConfig {
	return SpeedupConfig{
		Problem:         problems.NewDTLZ2(5),
		TFMean:          0.01,
		Processors:      []int{8, 16},
		Evaluations:     4000,
		Replicates:      1,
		CheckpointEvery: 200,
		HVSamples:       4000,
		TAOverride:      stats.NewConstant(0.000029),
		Seed:            2,
	}
}

func TestRunSpeedupShape(t *testing.T) {
	res, err := RunSpeedup(smallSpeedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	if res.AttainableHV <= 0 {
		t.Fatal("attainable hypervolume not positive")
	}
	if len(res.Thresholds) != 10 {
		t.Fatalf("got %d thresholds, want 10 defaults", len(res.Thresholds))
	}
	// Every series must reach the top threshold by construction of
	// the attainable HV.
	for _, s := range res.Series {
		last := s.Speedup[len(s.Speedup)-1]
		if math.IsNaN(last) || last <= 0 {
			t.Fatalf("P=%d speedup undefined at h=1.0: %v", s.P, s.Speedup)
		}
	}
	// In the efficient regime speedup grows with P.
	s8 := res.Series[0].Speedup[len(res.Series[0].Speedup)-1]
	s16 := res.Series[1].Speedup[len(res.Series[1].Speedup)-1]
	if s16 <= s8 {
		t.Fatalf("speedup did not grow with P in efficient regime: P=8 %.1f vs P=16 %.1f", s8, s16)
	}
}

func TestSpeedupValidation(t *testing.T) {
	cfg := smallSpeedupConfig()
	cfg.Problem = nil
	if _, err := RunSpeedup(cfg); err == nil {
		t.Error("missing problem accepted")
	}
	cfg = smallSpeedupConfig()
	cfg.TFMean = 0
	if _, err := RunSpeedup(cfg); err == nil {
		t.Error("zero TF accepted")
	}
}

func TestWriteSpeedupRenders(t *testing.T) {
	res, err := RunSpeedup(smallSpeedupConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSpeedup(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P=16") {
		t.Errorf("speedup table missing series header:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteSpeedupCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DTLZ2_5,0.01,16,") {
		t.Errorf("speedup CSV malformed:\n%s", sb.String())
	}
}

func TestTrajectoryThreshold(t *testing.T) {
	tr := trajectory{
		times: []float64{1, 2, 3},
		hv:    []float64{0.2, 0.5, 0.9},
	}
	if got := tr.timeToThreshold(0.5); got != 2 {
		t.Errorf("timeToThreshold(0.5) = %v, want 2", got)
	}
	if got := tr.timeToThreshold(0.95); !math.IsNaN(got) {
		t.Errorf("unreachable threshold returned %v, want NaN", got)
	}
	if tr.finalHV() != 0.9 {
		t.Errorf("finalHV = %v", tr.finalHV())
	}
	if (trajectory{}).finalHV() != 0 {
		t.Error("empty trajectory finalHV != 0")
	}
}

func TestRunSurfaceSmall(t *testing.T) {
	cfg := SurfaceConfig{
		TFValues: []float64{0.0001, 0.01, 1},
		PValues:  []int{2, 16, 4096},
		Seed:     3,
	}
	res, err := RunSurface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sync.Eff) != 3 || len(res.Async.Eff) != 3 {
		t.Fatalf("surface shape wrong")
	}
	for i := range res.Sync.Eff {
		for j := range res.Sync.Eff[i] {
			for _, e := range []float64{res.Sync.Eff[i][j], res.Async.Eff[i][j]} {
				if e < 0 || e > 1.1 || math.IsNaN(e) {
					t.Fatalf("efficiency out of range at (%d,%d): %v", i, j, e)
				}
			}
		}
	}
	// Figure 5 qualitative checks: with large TF (row 2) and large P,
	// the synchronous barrier's P·(TC+TA) term has degraded sync
	// while async stays efficient — the paper's headline claim that
	// async scales to larger processor counts at the same TF.
	if res.Async.Eff[2][2] < 0.85 {
		t.Errorf("async efficiency at TF=1s,P=4096 = %v, want > 0.85", res.Async.Eff[2][2])
	}
	if res.Async.Eff[2][2] <= res.Sync.Eff[2][2] {
		t.Errorf("async (%v) should beat sync (%v) at TF=1s,P=4096",
			res.Async.Eff[2][2], res.Sync.Eff[2][2])
	}
	// With tiny TF everything is inefficient at scale.
	if res.Async.Eff[0][2] > 0.2 {
		t.Errorf("async efficiency at TF=0.1ms,P=4096 = %v, want tiny", res.Async.Eff[0][2])
	}
}

func TestWriteSurfaceRenders(t *testing.T) {
	res, err := RunSurface(SurfaceConfig{
		TFValues:            []float64{0.001, 0.1},
		PValues:             []int{2, 8},
		EvaluationsPerPoint: 500,
		Seed:                4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSurface(&sb, "async", res.Async); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "async") {
		t.Error("surface render missing title")
	}
	sb.Reset()
	if err := WriteSurfaceCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sync,0.001,2,") || !strings.Contains(out, "async,0.1,8,") {
		t.Errorf("surface CSV malformed:\n%s", out)
	}
}

func TestCollectTimings(t *testing.T) {
	rep, err := CollectTimings(problems.NewDTLZ2(5), 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	if rep.Summary.Mean <= 0 {
		t.Fatal("non-positive mean TA")
	}
	if len(rep.Fits) == 0 {
		t.Fatal("no distributions fitted")
	}
	var sb strings.Builder
	if err := WriteTimingReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "T_A on DTLZ2_5") {
		t.Errorf("timing report malformed:\n%s", sb.String())
	}
}

// TestUF11TAHigherThanDTLZ2 reproduces the paper's Table II pattern
// that UF11's larger per-evaluation algorithm cost (driven by its
// 30-variable solutions and harder archive dynamics) exceeds DTLZ2's.
func TestUF11TAHigherThanDTLZ2(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	repD, err := CollectTimings(problems.NewDTLZ2(5), 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	repU, err := CollectTimings(problems.NewUF11(), 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Medians are robust to GC spikes.
	if repU.Summary.Median <= repD.Summary.Median {
		t.Logf("warning: UF11 median TA %.2e not above DTLZ2 %.2e (timing noise?)",
			repU.Summary.Median, repD.Summary.Median)
	}
}

func TestPlanHierarchy(t *testing.T) {
	// TF=0.001 saturates a single master near P_UB≈24; a 1024-core
	// machine must be split.
	times := model.Times{TF: 0.001, TA: 0.000029, TC: 0.000006}
	plan, err := PlanHierarchy(1024, times, 0.1, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IslandSize >= 1024 {
		t.Fatalf("planner kept the monolithic layout despite saturation: %+v", plan)
	}
	if plan.Islands*plan.IslandSize > 1024 {
		t.Fatalf("plan oversubscribes the machine: %+v", plan)
	}
	if plan.IslandEfficiency <= plan.SingleEfficiency {
		t.Fatalf("plan does not improve efficiency: %+v", plan)
	}
	if plan.String() == "" {
		t.Error("empty plan description")
	}
}

func TestPlanHierarchyLargeTFKeepsMonolith(t *testing.T) {
	// TF=1s: a single master handles thousands of workers; the best
	// "island" is the whole machine (or indistinguishable from it).
	times := model.Times{TF: 1, TA: 0.000029, TC: 0.000006}
	plan, err := PlanHierarchy(64, times, 0.1, 20000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IslandEfficiency < 0.95 {
		t.Fatalf("expensive evaluations should stay efficient: %+v", plan)
	}
}

func TestPlanHierarchyValidation(t *testing.T) {
	if _, err := PlanHierarchy(2, model.Times{TF: 1}, 0.1, 100, 1); err == nil {
		t.Error("tiny machine accepted")
	}
}
