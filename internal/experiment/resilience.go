package experiment

import (
	"fmt"
	"io"
	"strings"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// ResilienceConfig parameterizes the efficiency-vs-failure-rate table:
// for each problem and steady-state failed-worker fraction, the sync
// and async drivers run the same budget under a crash-recover fault
// plan and report efficiency, resubmissions and losses. It extends the
// paper's §VI discussion — asynchrony is claimed to degrade gracefully
// as workers disappear, while the generational barrier pays the full
// price of each missing worker — with a measurable experiment.
type ResilienceConfig struct {
	// Problems under test (default DTLZ2 with 5 objectives, UF11).
	Problems []problems.Problem
	// FailedFractions are the steady-state fractions of workers down
	// at any instant (default 0, 0.01, 0.05, 0.10). 0 is the
	// fault-free baseline row.
	FailedFractions []float64
	// MTTR is the mean repair time in virtual seconds (default 0.5).
	MTTR float64
	// Processors is P for every cell (default 64).
	Processors int
	// Evaluations is N (default 20000).
	Evaluations uint64
	// TFMean and TFCV describe the controlled evaluation delay
	// (default 0.01s Gamma with CV 0.1, like the paper's mid-range).
	TFMean float64
	TFCV   float64
	// TAOverride fixes the master algorithm time; defaults to the
	// paper's measured constant 29 µs so cells are deterministic.
	TAOverride stats.Distribution
	// LeaseTimeout and BarrierTimeout pass through to the drivers
	// (0 uses their fault defaults).
	LeaseTimeout, BarrierTimeout float64
	// Replicates per cell (default 3), averaged.
	Replicates int
	// Seed seeds the experiment.
	Seed uint64
	// Progress, when non-nil, receives one line per cell.
	Progress func(string)
}

func (c *ResilienceConfig) normalize() error {
	if len(c.Problems) == 0 {
		c.Problems = []problems.Problem{problems.NewDTLZ2(5), problems.NewUF11()}
	}
	if len(c.FailedFractions) == 0 {
		c.FailedFractions = []float64{0, 0.01, 0.05, 0.10}
	}
	for _, f := range c.FailedFractions {
		if f < 0 || f >= 1 {
			return fmt.Errorf("experiment: failed fraction %v outside [0,1)", f)
		}
	}
	if c.MTTR == 0 {
		c.MTTR = 0.5
	}
	if c.MTTR < 0 {
		return fmt.Errorf("experiment: negative MTTR")
	}
	if c.Processors == 0 {
		c.Processors = 64
	}
	if c.Processors < 2 {
		return fmt.Errorf("experiment: need at least 2 processors")
	}
	if c.Evaluations == 0 {
		c.Evaluations = 20000
	}
	if c.TFMean == 0 {
		c.TFMean = 0.01
	}
	if c.TFMean < 0 {
		return fmt.Errorf("experiment: negative TFMean")
	}
	if c.TFCV == 0 {
		c.TFCV = 0.1
	}
	if c.TAOverride == nil {
		c.TAOverride = stats.NewConstant(29e-6)
	}
	if c.Replicates == 0 {
		c.Replicates = 3
	}
	return nil
}

// ResilienceCell is one (problem, failed fraction) row: replicate-mean
// metrics for both drivers under the same failure process.
type ResilienceCell struct {
	Problem        string
	FailedFraction float64

	AsyncElapsed, SyncElapsed       float64
	AsyncEfficiency, SyncEfficiency float64
	// Replicate-mean resubmission / presumed-loss counts.
	AsyncResubmissions, SyncResubmissions float64
	AsyncLost, SyncLost                   float64
	// Completed is false if any replicate failed to finish its budget.
	AsyncCompleted, SyncCompleted bool
}

// ResilienceResult is the full table.
type ResilienceResult struct {
	Processors  int
	Evaluations uint64
	TFMean      float64
	MTTR        float64
	Cells       []ResilienceCell
}

// RunResilience runs the efficiency-vs-failure-rate sweep.
func RunResilience(cfg ResilienceConfig) (*ResilienceResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	res := &ResilienceResult{
		Processors:  cfg.Processors,
		Evaluations: cfg.Evaluations,
		TFMean:      cfg.TFMean,
		MTTR:        cfg.MTTR,
	}
	for _, prob := range cfg.Problems {
		for _, f := range cfg.FailedFractions {
			cell := ResilienceCell{
				Problem:        prob.Name(),
				FailedFraction: f,
				AsyncCompleted: true,
				SyncCompleted:  true,
			}
			for r := 0; r < cfg.Replicates; r++ {
				seed := cfg.Seed + uint64(r)*104729
				base := parallel.Config{
					Problem: prob,
					Algorithm: core.Config{
						Epsilons: core.UniformEpsilons(prob.NumObjs(), 0.15),
					},
					Processors:     cfg.Processors,
					Evaluations:    cfg.Evaluations,
					TF:             stats.GammaFromMeanCV(cfg.TFMean, cfg.TFCV),
					TA:             cfg.TAOverride,
					Seed:           seed,
					LeaseTimeout:   cfg.LeaseTimeout,
					BarrierTimeout: cfg.BarrierTimeout,
				}
				if f > 0 {
					// The same failure schedule hits both drivers.
					base.Fault = fault.FailedFractionPlan(f, cfg.MTTR, seed^0xf417)
				}
				ar, err := parallel.RunAsync(base)
				if err != nil {
					return nil, err
				}
				sr, err := parallel.RunSync(base)
				if err != nil {
					return nil, err
				}
				cell.AsyncElapsed += ar.ElapsedTime
				cell.SyncElapsed += sr.ElapsedTime
				cell.AsyncEfficiency += ar.Efficiency()
				cell.SyncEfficiency += sr.Efficiency()
				cell.AsyncResubmissions += float64(ar.Resubmissions)
				cell.SyncResubmissions += float64(sr.Resubmissions)
				cell.AsyncLost += float64(ar.LostEvaluations)
				cell.SyncLost += float64(sr.LostEvaluations)
				cell.AsyncCompleted = cell.AsyncCompleted && ar.Completed
				cell.SyncCompleted = cell.SyncCompleted && sr.Completed
			}
			k := float64(cfg.Replicates)
			cell.AsyncElapsed /= k
			cell.SyncElapsed /= k
			cell.AsyncEfficiency /= k
			cell.SyncEfficiency /= k
			cell.AsyncResubmissions /= k
			cell.SyncResubmissions /= k
			cell.AsyncLost /= k
			cell.SyncLost /= k
			res.Cells = append(res.Cells, cell)
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("%s f=%.2f async eff=%.3f sync eff=%.3f (resub %g/%g)",
					cell.Problem, f, cell.AsyncEfficiency, cell.SyncEfficiency,
					cell.AsyncResubmissions, cell.SyncResubmissions))
			}
		}
	}
	return res, nil
}

// WriteResilience renders the table as aligned text.
func WriteResilience(w io.Writer, r *ResilienceResult) error {
	_, err := fmt.Fprintf(w, "Resilience: P=%d N=%d TF=%g MTTR=%g (crash-recover, exponential)\n",
		r.Processors, r.Evaluations, r.TFMean, r.MTTR)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%-9s %7s | %9s %6s %7s %6s | %9s %6s %7s %6s\n",
		"Problem", "Failed",
		"AsyncT", "Eff", "Resub", "Done",
		"SyncT", "Eff", "Resub", "Done")
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 92)); err != nil {
		return err
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	prev := ""
	for _, c := range r.Cells {
		if prev != "" && prev != c.Problem {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", 92)); err != nil {
				return err
			}
		}
		prev = c.Problem
		_, err := fmt.Fprintf(w, "%-9s %6.1f%% | %9.2f %6.3f %7.1f %6s | %9.2f %6.3f %7.1f %6s\n",
			c.Problem, 100*c.FailedFraction,
			c.AsyncElapsed, c.AsyncEfficiency, c.AsyncResubmissions, yn(c.AsyncCompleted),
			c.SyncElapsed, c.SyncEfficiency, c.SyncResubmissions, yn(c.SyncCompleted))
		if err != nil {
			return err
		}
	}
	return nil
}
