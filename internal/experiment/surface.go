package experiment

import (
	"fmt"
	"math"

	"borgmoea/internal/model"
	"borgmoea/internal/stats"
)

// SurfaceConfig parameterizes the Figure 5 reproduction: predicted
// efficiency of the synchronous MOEA (Cantú-Paz's analytical model)
// against the asynchronous MOEA (the simulation model) over a log-log
// grid of T_F and P.
type SurfaceConfig struct {
	// TFValues is the T_F axis. Default: log-spaced 1e-4 .. 1 (13
	// points).
	TFValues []float64
	// PValues is the processor-count axis. Default: powers of two,
	// 2 .. 16384.
	PValues []int
	// TA and TC are fixed, as in the paper's Figure 5 (whose text
	// sets T_A = 0.000006 and T_C = 0.000060 — note the reversal of
	// the values used elsewhere in the paper; both are configurable).
	TA, TC float64
	// TFCV adds variability to the asynchronous simulation's T_F
	// (default 0.1, matching the experiment design).
	TFCV float64
	// EvaluationsPerPoint is the simulation budget per grid point.
	// Default max(4000, 40·P) so large machines reach steady state.
	EvaluationsPerPoint uint64
	// Seed seeds the simulations.
	Seed uint64
	// Progress receives one line per completed T_F row, when set.
	Progress func(string)
}

func (c *SurfaceConfig) normalize() {
	if len(c.TFValues) == 0 {
		for e := -4.0; e <= 0.01; e += 1.0 / 3 {
			c.TFValues = append(c.TFValues, math.Pow(10, e))
		}
	}
	if len(c.PValues) == 0 {
		for p := 2; p <= 16384; p *= 2 {
			c.PValues = append(c.PValues, p)
		}
	}
	if c.TA == 0 {
		c.TA = 0.000006
	}
	if c.TC == 0 {
		c.TC = 0.000060
	}
	if c.TFCV == 0 {
		c.TFCV = 0.1
	}
}

// Surface holds one efficiency grid: Eff[i][j] is the efficiency at
// TF[i], P[j].
type Surface struct {
	TF  []float64
	P   []int
	Eff [][]float64
}

// SurfaceResult pairs the synchronous and asynchronous surfaces.
type SurfaceResult struct {
	Sync  Surface
	Async Surface
	TA    float64
	TC    float64
}

// RunSurface computes the Figure 5 surfaces.
func RunSurface(cfg SurfaceConfig) (*SurfaceResult, error) {
	cfg.normalize()
	res := &SurfaceResult{TA: cfg.TA, TC: cfg.TC}
	res.Sync = Surface{TF: cfg.TFValues, P: cfg.PValues}
	res.Async = Surface{TF: cfg.TFValues, P: cfg.PValues}
	for i, tf := range cfg.TFValues {
		syncRow := make([]float64, len(cfg.PValues))
		asyncRow := make([]float64, len(cfg.PValues))
		for j, p := range cfg.PValues {
			times := model.Times{TF: tf, TA: cfg.TA, TC: cfg.TC}
			syncRow[j] = model.SyncEfficiency(p, times)

			// Budget must scale with P: with too few cycles per
			// worker the start-up stagger and final partial wave
			// dominate and understate steady-state efficiency.
			n := cfg.EvaluationsPerPoint
			if n == 0 {
				n = uint64(40 * p)
				if n < 4000 {
					n = 4000
				}
			}
			simCfg := model.SimConfig{
				Processors:  p,
				Evaluations: n,
				TF:          stats.GammaFromMeanCV(tf, cfg.TFCV),
				TA:          stats.NewConstant(cfg.TA),
				TC:          stats.NewConstant(cfg.TC),
				Seed:        cfg.Seed + uint64(i*1000+j),
			}
			sim, err := model.Simulate(simCfg)
			if err != nil {
				return nil, err
			}
			asyncRow[j] = model.SimEfficiency(simCfg, sim.Elapsed)
		}
		res.Sync.Eff = append(res.Sync.Eff, syncRow)
		res.Async.Eff = append(res.Async.Eff, asyncRow)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("TF=%.2e row done (async eff %.2f..%.2f)",
				tf, minOf(asyncRow), maxOf(asyncRow)))
		}
	}
	return res, nil
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}
