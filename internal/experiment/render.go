package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteTable2 renders cells in the paper's Table II layout.
func WriteTable2(w io.Writer, cells []Table2Cell) error {
	_, err := fmt.Fprintf(w, "%-9s %5s %10s %10s %8s %9s %5s | %9s %6s | %9s %6s\n",
		"Problem", "P", "TA", "TC", "TF", "Time", "Eff",
		"AnaTime", "AnaErr", "SimTime", "SimErr")
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 110)); err != nil {
		return err
	}
	prevKey := ""
	for _, c := range cells {
		key := fmt.Sprintf("%s-%g", c.Problem, c.TF)
		if prevKey != "" && key != prevKey {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		prevKey = key
		_, err := fmt.Fprintf(w, "%-9s %5d %10.6f %10.6f %8.3f %9.1f %5.2f | %9.1f %5.0f%% | %9.1f %5.0f%%\n",
			c.Problem, c.P, c.TA, c.TC, c.TF, c.Time, c.Efficiency,
			c.AnalyticalTime, 100*c.AnalyticalError,
			c.SimulationTime, 100*c.SimulationError)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable2CSV renders cells as CSV.
func WriteTable2CSV(w io.Writer, cells []Table2Cell) error {
	if _, err := fmt.Fprintln(w, "problem,p,ta,tc,tf,time,efficiency,analytical_time,analytical_error,simulation_time,simulation_error,fitted_ta"); err != nil {
		return err
	}
	for _, c := range cells {
		_, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%s\n",
			c.Problem, c.P, c.TA, c.TC, c.TF, c.Time, c.Efficiency,
			c.AnalyticalTime, c.AnalyticalError, c.SimulationTime, c.SimulationError, c.FittedTA)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteSpeedup renders one Figure 3/4 panel as a table: thresholds
// down the rows, one speedup column per processor count.
func WriteSpeedup(w io.Writer, r *SpeedupResult) error {
	if _, err := fmt.Fprintf(w, "%s  TF=%g  (attainable HV %.4f)\n", r.Problem, r.TFMean, r.AttainableHV); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s", "h"); err != nil {
		return err
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, " %8s", fmt.Sprintf("P=%d", s.P)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, f := range r.ThresholdFractions {
		if _, err := fmt.Fprintf(w, "%9.2f", f); err != nil {
			return err
		}
		for _, s := range r.Series {
			v := s.Speedup[i]
			if math.IsNaN(v) {
				if _, err := fmt.Fprintf(w, " %8s", "-"); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, " %8.1f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpeedupCSV renders a panel as CSV rows
// (problem,tf,p,threshold,speedup).
func WriteSpeedupCSV(w io.Writer, r *SpeedupResult) error {
	if _, err := fmt.Fprintln(w, "problem,tf,p,threshold_fraction,threshold_hv,speedup"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i, f := range r.ThresholdFractions {
			_, err := fmt.Fprintf(w, "%s,%g,%d,%g,%g,%g\n",
				r.Problem, r.TFMean, s.P, f, r.Thresholds[i], s.Speedup[i])
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// heatRunes maps efficiency in [0,1] to a shade ramp.
var heatRunes = []rune(" .:-=+*#%@")

// WriteSurface renders an efficiency surface as an ASCII heatmap
// (T_F down the rows, P across the columns), the textual analogue of
// the paper's Figure 5 color plots.
func WriteSurface(w io.Writer, title string, s Surface) error {
	if _, err := fmt.Fprintf(w, "%s (rows: TF, cols: P; ' '=0 .. '@'=1)\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s", ""); err != nil {
		return err
	}
	for _, p := range s.P {
		if _, err := fmt.Fprintf(w, "%7d", p); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, tf := range s.TF {
		if _, err := fmt.Fprintf(w, "%10.2e", tf); err != nil {
			return err
		}
		for j := range s.P {
			e := s.Eff[i][j]
			idx := int(e * float64(len(heatRunes)))
			if idx >= len(heatRunes) {
				idx = len(heatRunes) - 1
			}
			if idx < 0 {
				idx = 0
			}
			if _, err := fmt.Fprintf(w, "   %c%3.0f", heatRunes[idx], e*100); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteSurfaceCSV renders both surfaces as CSV rows
// (model,tf,p,efficiency).
func WriteSurfaceCSV(w io.Writer, r *SurfaceResult) error {
	if _, err := fmt.Fprintln(w, "model,tf,p,efficiency"); err != nil {
		return err
	}
	emit := func(name string, s Surface) error {
		for i, tf := range s.TF {
			for j, p := range s.P {
				if _, err := fmt.Fprintf(w, "%s,%g,%d,%g\n", name, tf, p, s.Eff[i][j]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := emit("sync", r.Sync); err != nil {
		return err
	}
	return emit("async", r.Async)
}

// WriteTimingReport renders a TimingReport with its fit ranking.
func WriteTimingReport(w io.Writer, r *TimingReport) error {
	if _, err := fmt.Fprintf(w, "T_A on %s: %s (CV %.2f)\n", r.Problem, r.Summary, r.Summary.CV()); err != nil {
		return err
	}
	for i, f := range r.Fits {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		_, err := fmt.Fprintf(w, "  %s %-30s loglik=%12.1f AIC=%12.1f\n",
			marker, f.Dist.String(), f.LogLikelihood, f.AIC)
		if err != nil {
			return err
		}
	}
	return nil
}
