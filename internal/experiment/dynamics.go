package experiment

import (
	"fmt"
	"io"

	"borgmoea/internal/core"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// DynamicsConfig parameterizes the algorithm-dynamics sweep of the
// paper's Section VI-A discussion: how parallelization (the processor
// count) reshapes the Borg MOEA's auto-adaptive machinery — operator
// probabilities, restart cadence, archive growth — on problems of
// different difficulty.
type DynamicsConfig struct {
	// Problem under study.
	Problem problems.Problem
	// Processors to sweep; 1 means the serial algorithm. Default
	// {1, 16, 128, 1024}.
	Processors []int
	// Evaluations per run. Default 50000.
	Evaluations uint64
	// TFMean/TFCV control the evaluation delay (default 0.01 / 0.1).
	TFMean, TFCV float64
	// TAOverride fixes the master algorithm time; nil measures.
	TAOverride stats.Distribution
	// Epsilon is the archive resolution. Default 0.15.
	Epsilon float64
	// Seed seeds the sweep.
	Seed uint64
}

func (c *DynamicsConfig) normalize() error {
	if c.Problem == nil {
		return fmt.Errorf("experiment: DynamicsConfig.Problem required")
	}
	if len(c.Processors) == 0 {
		c.Processors = []int{1, 16, 128, 1024}
	}
	if c.Evaluations == 0 {
		c.Evaluations = 50000
	}
	if c.TFMean == 0 {
		c.TFMean = 0.01
	}
	if c.TFCV == 0 {
		c.TFCV = 0.1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.15
	}
	return nil
}

// DynamicsRow summarizes one processor count's end-of-run state.
type DynamicsRow struct {
	P                     int
	Restarts              uint64
	ArchiveSize           int
	PopulationCapacity    int
	Improvements          uint64
	OperatorProbabilities []float64
	OperatorNames         []string
}

// RunDynamics sweeps processor counts and reports the final adaptive
// state of each run. The asynchronous algorithm sees results in a
// different (completion) order at each P, so its adaptation
// trajectory — and with it the operator mix — depends on the
// parallelization, the effect the paper's conclusion highlights
// ("the effectiveness of the auto-adaptive search is strongly shaped
// by parallel scalability and problem difficulty").
func RunDynamics(cfg DynamicsConfig) ([]DynamicsRow, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var rows []DynamicsRow
	for _, p := range cfg.Processors {
		algCfg := core.Config{
			Epsilons: core.UniformEpsilons(cfg.Problem.NumObjs(), cfg.Epsilon),
			Seed:     cfg.Seed + uint64(p),
		}
		var b *core.Borg
		if p <= 1 {
			b = core.MustNew(cfg.Problem, algCfg)
			b.Run(cfg.Evaluations, nil)
		} else {
			res, err := parallel.RunAsync(parallel.Config{
				Problem:     cfg.Problem,
				Algorithm:   algCfg,
				Processors:  p,
				Evaluations: cfg.Evaluations,
				TF:          stats.GammaFromMeanCV(cfg.TFMean, cfg.TFCV),
				TA:          cfg.TAOverride,
				Seed:        cfg.Seed + uint64(p),
			})
			if err != nil {
				return nil, err
			}
			b = res.Final
		}
		rows = append(rows, DynamicsRow{
			P:                     p,
			Restarts:              b.Restarts(),
			ArchiveSize:           b.Archive().Size(),
			PopulationCapacity:    b.Population().Capacity(),
			Improvements:          b.Archive().Improvements(),
			OperatorProbabilities: b.OperatorProbabilities(),
			OperatorNames:         b.OperatorNames(),
		})
	}
	return rows, nil
}

// WriteDynamics renders the sweep as a table.
func WriteDynamics(w io.Writer, rows []DynamicsRow) error {
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%6s %9s %8s %7s %8s", "P", "restarts", "archive", "popCap", "improv"); err != nil {
		return err
	}
	for _, n := range rows[0].OperatorNames {
		if _, err := fmt.Fprintf(w, " %8s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%6d %9d %8d %7d %8d",
			r.P, r.Restarts, r.ArchiveSize, r.PopulationCapacity, r.Improvements); err != nil {
			return err
		}
		for _, p := range r.OperatorProbabilities {
			if _, err := fmt.Fprintf(w, " %8.3f", p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
