// Package experiment is the reproduction harness: it re-runs the
// paper's evaluation — Table II (experiment vs analytical vs
// simulation model), Figures 3–4 (hypervolume-threshold speedup) and
// Figure 5 (synchronous vs asynchronous efficiency surfaces) — on the
// virtual cluster, and renders the same rows and series the paper
// reports. See DESIGN.md §4 for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiment

import (
	"fmt"

	"borgmoea/internal/core"
	"borgmoea/internal/model"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// Table2Config parameterizes the Table II reproduction.
type Table2Config struct {
	// Problems to test. Default: 5-objective DTLZ2 and UF11.
	Problems []problems.Problem
	// TFMeans are the controlled evaluation delays. Default:
	// {0.001, 0.01, 0.1} seconds.
	TFMeans []float64
	// TFCV is the delay coefficient of variation. Default 0.1.
	TFCV float64
	// Processors are the P values. Default {16, 32, ..., 1024}.
	Processors []int
	// Evaluations is N. Default 100000 (the paper's budget,
	// back-derived from Table II).
	Evaluations uint64
	// Replicates per cell (the paper used 50). Default 5.
	Replicates int
	// SimReplicates for the simulation model mean. Default 3.
	SimReplicates int
	// Epsilon is the archive resolution (uniform across the five
	// objectives). Default 0.15 (see normalize for the rationale).
	Epsilon float64
	// TAOverride, when set, replaces the measured master algorithm
	// time with a distribution — used by tests for speed and
	// determinism. Nil (default) measures the real Accept+Suggest
	// CPU time, reproducing the paper's instrumentation.
	TAOverride stats.Distribution
	// Seed seeds the whole experiment.
	Seed uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(string)
}

func (c *Table2Config) normalize() {
	if len(c.Problems) == 0 {
		c.Problems = []problems.Problem{problems.NewDTLZ2(5), problems.NewUF11()}
	}
	if len(c.TFMeans) == 0 {
		c.TFMeans = []float64{0.001, 0.01, 0.1}
	}
	if c.TFCV == 0 {
		c.TFCV = 0.1
	}
	if len(c.Processors) == 0 {
		c.Processors = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	if c.Evaluations == 0 {
		c.Evaluations = 100000
	}
	if c.Replicates == 0 {
		c.Replicates = 5
	}
	if c.SimReplicates == 0 {
		c.SimReplicates = 3
	}
	if c.Epsilon == 0 {
		// ε = 0.15 keeps 5-objective archives at the size implied by
		// the paper's measured T_A values (DTLZ2 a few hundred
		// members with T_A ≈ tens of µs, UF11 larger and costlier),
		// reproducing the T_A(UF11) > T_A(DTLZ2) ordering of
		// Table II.
		c.Epsilon = 0.15
	}
}

// Table2Cell is one row of the reproduced Table II.
type Table2Cell struct {
	Problem string
	P       int
	// Observed mean timings (seconds).
	TA, TC, TF float64
	// Experimental results.
	Time       float64
	Efficiency float64
	// Analytical model (Eq. 2) prediction and Eq. 5 relative error.
	AnalyticalTime  float64
	AnalyticalError float64
	// Simulation model prediction and error.
	SimulationTime  float64
	SimulationError float64
	// FittedTA names the distribution family selected for T_A by
	// log-likelihood (the paper's R workflow).
	FittedTA string
}

// RunTable2 executes the Table II experiment and returns one cell per
// (problem, T_F, P) combination, in the paper's row order.
func RunTable2(cfg Table2Config) ([]Table2Cell, error) {
	cfg.normalize()
	var cells []Table2Cell
	seed := cfg.Seed
	for _, prob := range cfg.Problems {
		for _, tfMean := range cfg.TFMeans {
			for _, p := range cfg.Processors {
				cell, err := runTable2Cell(&cfg, prob, tfMean, p, seed)
				if err != nil {
					return nil, fmt.Errorf("cell %s TF=%g P=%d: %w", prob.Name(), tfMean, p, err)
				}
				cells = append(cells, cell)
				seed += 10007
				if cfg.Progress != nil {
					cfg.Progress(fmt.Sprintf("%-8s TF=%-6g P=%-5d time=%8.2fs eff=%.2f errA=%3.0f%% errS=%3.0f%%",
						cell.Problem, tfMean, p, cell.Time, cell.Efficiency,
						100*cell.AnalyticalError, 100*cell.SimulationError))
				}
			}
		}
	}
	return cells, nil
}

func runTable2Cell(cfg *Table2Config, prob problems.Problem, tfMean float64, p int, seed uint64) (Table2Cell, error) {
	tf := stats.GammaFromMeanCV(tfMean, cfg.TFCV)
	var (
		sumTime, sumTA, sumTF, sumTC float64
		taSamples                    []float64
	)
	for r := 0; r < cfg.Replicates; r++ {
		pc := parallel.Config{
			Problem: prob,
			Algorithm: core.Config{
				Epsilons: core.UniformEpsilons(prob.NumObjs(), cfg.Epsilon),
			},
			Processors:     p,
			Evaluations:    cfg.Evaluations,
			TF:             tf,
			TA:             cfg.TAOverride,
			Seed:           seed + uint64(r)*7919,
			CaptureTimings: r == 0, // fit distributions from the first replicate
		}
		res, err := parallel.RunAsync(pc)
		if err != nil {
			return Table2Cell{}, err
		}
		sumTime += res.ElapsedTime
		sumTA += res.MeanTA
		sumTF += res.MeanTF
		sumTC += res.MeanTC
		if r == 0 {
			taSamples = res.TASamples
		}
	}
	n := float64(cfg.Replicates)
	cell := Table2Cell{
		Problem: prob.Name(),
		P:       p,
		TA:      sumTA / n,
		TF:      sumTF / n,
		TC:      sumTC / n,
		Time:    sumTime / n,
	}
	times := model.Times{TF: cell.TF, TA: cell.TA, TC: cell.TC}
	ts := model.SerialTime(cfg.Evaluations, times)
	cell.Efficiency = ts / (float64(p) * cell.Time)

	cell.AnalyticalTime = model.AsyncTime(cfg.Evaluations, p, times)
	cell.AnalyticalError = model.RelativeError(cell.Time, cell.AnalyticalTime)

	// Simulation model with the fitted T_A distribution (falling back
	// to the observed mean when fitting is impossible).
	taDist := fitOrConstant(taSamples, cell.TA)
	cell.FittedTA = taDist.Name()
	simTime, err := model.SimulateMean(model.SimConfig{
		Processors:  p,
		Evaluations: cfg.Evaluations,
		TF:          tf,
		TA:          taDist,
		TC:          stats.NewConstant(cell.TC),
		Seed:        seed ^ 0x5349,
	}, cfg.SimReplicates)
	if err != nil {
		return Table2Cell{}, err
	}
	cell.SimulationTime = simTime
	cell.SimulationError = model.RelativeError(cell.Time, simTime)
	return cell, nil
}

// fitOrConstant selects the best-fit distribution for the samples by
// log-likelihood, or a constant at the fallback mean when the sample
// is unusable.
func fitOrConstant(samples []float64, fallbackMean float64) stats.Distribution {
	if len(samples) >= 10 {
		if fit, err := stats.SelectBest(samples); err == nil {
			return fit.Dist
		}
	}
	return stats.NewConstant(fallbackMean)
}
