package experiment

import (
	"fmt"

	"borgmoea/internal/model"
	"borgmoea/internal/stats"
)

// HierarchyPlan is the output of PlanHierarchy: how to split a large
// machine into concurrently-running master-slave islands, the paper's
// Section VI recommendation for regimes where a single master
// saturates ("better resource utilization may be possible with
// hierarchical topologies ... Our parallel performance simulation
// model can be used to determine the size of these subsets to
// maximize efficiency").
type HierarchyPlan struct {
	// TotalProcessors available.
	TotalProcessors int
	// Islands is the recommended number of concurrent master-slave
	// instances.
	Islands int
	// IslandSize is the processor count per island.
	IslandSize int
	// IslandEfficiency is the simulated efficiency of one island.
	IslandEfficiency float64
	// SingleEfficiency is the simulated efficiency of one monolithic
	// master-slave instance using all processors — the baseline the
	// plan improves on.
	SingleEfficiency float64
	// Evaluated lists every candidate island size with its simulated
	// efficiency (diagnostics).
	Evaluated []CandidateIsland
}

// CandidateIsland is one evaluated split.
type CandidateIsland struct {
	Size       int
	Efficiency float64
}

func (p *HierarchyPlan) String() string {
	return fmt.Sprintf("%d processors → %d islands × %d processors (eff %.2f/island vs %.2f monolithic)",
		p.TotalProcessors, p.Islands, p.IslandSize, p.IslandEfficiency, p.SingleEfficiency)
}

// PlanHierarchy searches island sizes (powers of two from 4 up to
// total) with the simulation model and returns the split maximizing
// per-island efficiency. evaluations is the per-simulation budget
// (default 20000 when 0); timing parameters come from times and tfCV.
func PlanHierarchy(total int, times model.Times, tfCV float64, evaluations uint64, seed uint64) (*HierarchyPlan, error) {
	if total < 4 {
		return nil, fmt.Errorf("experiment: need at least 4 processors to plan, got %d", total)
	}
	if evaluations == 0 {
		evaluations = 20000
	}
	if tfCV <= 0 {
		tfCV = 0.1
	}
	eff := func(p int) (float64, error) {
		cfg := model.SimConfig{
			Processors:  p,
			Evaluations: evaluations,
			TF:          stats.GammaFromMeanCV(times.TF, tfCV),
			TA:          stats.NewConstant(times.TA),
			TC:          stats.NewConstant(times.TC),
			Seed:        seed + uint64(p),
		}
		sim, err := model.Simulate(cfg)
		if err != nil {
			return 0, err
		}
		return model.SimEfficiency(cfg, sim.Elapsed), nil
	}

	plan := &HierarchyPlan{TotalProcessors: total}
	var err error
	plan.SingleEfficiency, err = eff(total)
	if err != nil {
		return nil, err
	}

	best := CandidateIsland{Size: total, Efficiency: plan.SingleEfficiency}
	for size := 4; size <= total; size *= 2 {
		e, err := eff(size)
		if err != nil {
			return nil, err
		}
		plan.Evaluated = append(plan.Evaluated, CandidateIsland{Size: size, Efficiency: e})
		if e > best.Efficiency {
			best = CandidateIsland{Size: size, Efficiency: e}
		}
	}
	plan.IslandSize = best.Size
	plan.IslandEfficiency = best.Efficiency
	plan.Islands = total / best.Size
	return plan, nil
}
