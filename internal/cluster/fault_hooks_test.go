package cluster

import (
	"testing"

	"borgmoea/internal/des"
)

// Tests for the failure hooks used by internal/fault: Fail/Recover,
// epochs, suspensions, dead-sender drops and the message-loss hook.

func TestFailFlushesInboxAndBumpsEpoch(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2, Seed: 1})
	eng.Go("driver", func(p *des.Process) {
		c.Node(0).Send(1, 7, "a")
		c.Node(0).Send(1, 7, "b")
		p.Hold(1) // let deliveries land
		if got := c.Node(1).InboxLen(); got != 2 {
			t.Errorf("inbox = %d before failure, want 2", got)
		}
		c.Node(1).Fail()
		if got := c.Node(1).InboxLen(); got != 0 {
			t.Errorf("inbox = %d after failure, want 0 (flushed)", got)
		}
		if !c.Node(1).Failed() {
			t.Error("node not failed")
		}
		if e := c.Node(1).Epoch(); e != 1 {
			t.Errorf("epoch = %d, want 1", e)
		}
		c.Node(1).Fail() // idempotent
		if e := c.Node(1).Epoch(); e != 1 {
			t.Errorf("epoch = %d after double Fail, want 1", e)
		}
		if lost := c.MessagesLost(); lost != 2 {
			t.Errorf("messages lost = %d, want 2 (flushed inbox)", lost)
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestDeliveryToFailedNodeDrops(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2, Seed: 1})
	eng.Go("driver", func(p *des.Process) {
		c.Node(1).Fail()
		c.Node(0).Send(1, 7, "x")
		p.Hold(1)
		if got := c.Node(1).InboxLen(); got != 0 {
			t.Errorf("failed node received a message")
		}
		if lost := c.MessagesLost(); lost != 1 {
			t.Errorf("messages lost = %d, want 1", lost)
		}
		c.Node(1).Recover()
		if c.Node(1).Failed() {
			t.Error("node still failed after Recover")
		}
		c.Node(1).Recover() // idempotent
		c.Node(0).Send(1, 7, "y")
		p.Hold(1)
		if got := c.Node(1).InboxLen(); got != 1 {
			t.Errorf("recovered node did not receive; inbox = %d", got)
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestDeadSenderDrops(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2, Seed: 1})
	eng.Go("driver", func(p *des.Process) {
		c.Node(0).Fail()
		sentBefore := c.MessagesSent()
		c.Node(0).Send(1, 7, "x")
		p.Hold(1)
		if c.MessagesSent() != sentBefore {
			t.Error("dead sender's message counted as sent")
		}
		if lost := c.MessagesLost(); lost != 1 {
			t.Errorf("messages lost = %d, want 1", lost)
		}
		if c.Node(1).InboxLen() != 0 {
			t.Error("dead sender's message was delivered")
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestSuspendIsMonotone(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1, Seed: 1})
	n := c.Node(0)
	n.Suspend(5)
	if n.SuspendedUntil() != 5 {
		t.Fatalf("suspended until %v, want 5", n.SuspendedUntil())
	}
	n.Suspend(3) // must not shorten
	if n.SuspendedUntil() != 5 {
		t.Fatalf("suspension shortened to %v", n.SuspendedUntil())
	}
	n.Suspend(9)
	if n.SuspendedUntil() != 9 {
		t.Fatalf("suspension not extended: %v", n.SuspendedUntil())
	}
}

func TestSetDropFn(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2, Seed: 1})
	drops := 0
	c.SetDropFn(func(m *Message) bool {
		drops++
		return m.Tag == 13 // drop unlucky tags only
	})
	eng.Go("driver", func(p *des.Process) {
		c.Node(0).Send(1, 13, "lost")
		c.Node(0).Send(1, 7, "kept")
		p.Hold(1)
		if got := c.Node(1).InboxLen(); got != 1 {
			t.Errorf("inbox = %d, want 1 (selective drop)", got)
		}
		if drops != 2 {
			t.Errorf("drop fn consulted %d times, want 2", drops)
		}
		if lost := c.MessagesLost(); lost != 1 {
			t.Errorf("messages lost = %d, want 1", lost)
		}
	})
	eng.Run()
	eng.Shutdown()
}
