package cluster

import (
	"math"
	"testing"

	"borgmoea/internal/des"
	"borgmoea/internal/stats"
)

func TestSendRecvInstant(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	var got *Message
	var at des.Time
	eng.Go("recv", func(p *des.Process) {
		got = c.Node(1).Recv(p)
		at = p.Now()
	})
	eng.Go("send", func(p *des.Process) {
		p.Hold(2)
		c.Node(0).Send(1, 7, "hello")
	})
	eng.Run()
	if got == nil {
		t.Fatal("message never received")
	}
	if got.From != 0 || got.To != 1 || got.Tag != 7 || got.Payload.(string) != "hello" {
		t.Fatalf("message corrupted: %+v", got)
	}
	if at != 2 {
		t.Fatalf("received at %v, want 2 (zero transit)", at)
	}
}

func TestTransitLatency(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2, Transit: stats.NewConstant(0.5)})
	var at des.Time = -1
	eng.Go("recv", func(p *des.Process) {
		c.Node(1).Recv(p)
		at = p.Now()
	})
	eng.Go("send", func(p *des.Process) {
		c.Node(0).Send(1, 0, nil)
	})
	eng.Run()
	if at != 0.5 {
		t.Fatalf("received at %v, want 0.5", at)
	}
}

func TestRecvBeforeSendParks(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	order := []string{}
	eng.Go("recv", func(p *des.Process) {
		order = append(order, "recv-start")
		c.Node(1).Recv(p)
		order = append(order, "recv-done")
	})
	eng.GoAfter(1, "send", func(p *des.Process) {
		order = append(order, "send")
		c.Node(0).Send(1, 0, nil)
	})
	eng.Run()
	want := []string{"recv-start", "send", "recv-done"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInboxBuffersFIFO(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	eng.Go("send", func(p *des.Process) {
		for i := 0; i < 5; i++ {
			c.Node(0).Send(1, i, i)
		}
	})
	var tags []int
	eng.GoAfter(1, "recv", func(p *des.Process) {
		if c.Node(1).InboxLen() != 5 {
			t.Errorf("inbox len = %d, want 5", c.Node(1).InboxLen())
		}
		for i := 0; i < 5; i++ {
			tags = append(tags, c.Node(1).Recv(p).Tag)
		}
	})
	eng.Run()
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("messages out of FIFO order: %v", tags)
		}
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	var ok bool
	var at des.Time
	eng.Go("recv", func(p *des.Process) {
		_, ok = c.Node(0).RecvTimeout(p, 3)
		at = p.Now()
	})
	eng.Run()
	if ok {
		t.Fatal("RecvTimeout returned a message from an empty cluster")
	}
	if at != 3 {
		t.Fatalf("timeout fired at %v, want 3", at)
	}
}

func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	var ok bool
	eng.Go("recv", func(p *des.Process) {
		_, ok = c.Node(1).RecvTimeout(p, 3)
	})
	eng.GoAfter(1, "send", func(p *des.Process) {
		c.Node(0).Send(1, 0, nil)
	})
	eng.Run()
	if !ok {
		t.Fatal("message arriving before deadline was not received")
	}
}

func TestRecvTimeoutRaceAtSameInstant(t *testing.T) {
	// Delivery scheduled at exactly the deadline: whichever event runs
	// first wins, but the process must wake exactly once and the
	// outcome must be consistent (either (msg, true) or (nil, false)
	// with the message left in the inbox).
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	var ok bool
	eng.Go("recv", func(p *des.Process) {
		_, ok = c.Node(1).RecvTimeout(p, 1)
	})
	eng.Go("send", func(p *des.Process) {
		p.Hold(1)
		c.Node(0).Send(1, 0, nil)
	})
	eng.Run()
	if !ok && c.Node(1).InboxLen() != 1 {
		t.Fatal("timed out and lost the message")
	}
	if ok && c.Node(1).InboxLen() != 0 {
		t.Fatal("received but message still queued")
	}
}

func TestFailedNodeDropsMessages(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	c.Node(1).Fail()
	eng.Go("send", func(p *des.Process) {
		c.Node(0).Send(1, 0, nil)
	})
	eng.Run()
	if c.Node(1).InboxLen() != 0 {
		t.Fatal("failed node received a message")
	}
	if !c.Node(1).Failed() {
		t.Fatal("Failed() = false after Fail()")
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	var recovered any
	eng.Go("p", func(p *des.Process) {
		defer func() { recovered = recover() }()
		c.Node(0).Send(5, 0, nil)
	})
	eng.Run()
	if recovered == nil {
		t.Fatal("Send to invalid rank did not panic")
	}
}

func TestBusyAccounting(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	n := c.Node(0)
	eng.Go("p", func(p *des.Process) {
		n.HoldBusy(p, 2, "eval")
		p.Hold(2) // idle
		n.HoldBusy(p, 1, "comm")
	})
	eng.Run()
	if got := n.BusyTime(); math.Abs(got-3) > 1e-12 {
		t.Errorf("BusyTime = %v, want 3", got)
	}
	if got := n.Utilization(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.6", got)
	}
}

func TestBusyNesting(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	n := c.Node(0)
	eng.Go("p", func(p *des.Process) {
		n.BeginBusy()
		p.Hold(1)
		n.BeginBusy() // nested — must not double count
		p.Hold(1)
		n.EndBusy()
		p.Hold(1)
		n.EndBusy()
	})
	eng.Run()
	if got := n.BusyTime(); math.Abs(got-3) > 1e-12 {
		t.Errorf("nested BusyTime = %v, want 3", got)
	}
}

func TestBusyOpenIntervalCounted(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	n := c.Node(0)
	eng.Go("p", func(p *des.Process) {
		n.BeginBusy()
		p.Hold(5)
		// interval left open deliberately
	})
	eng.Run()
	if got := n.BusyTime(); math.Abs(got-5) > 1e-12 {
		t.Errorf("open-interval BusyTime = %v, want 5", got)
	}
}

func TestEndBusyPanicsWhenIdle(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("EndBusy on idle node did not panic")
		}
	}()
	c.Node(0).EndBusy()
}

func TestCounters(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	eng.Go("a", func(p *des.Process) {
		c.Node(0).Send(1, 0, nil)
		c.Node(0).Send(1, 0, nil)
	})
	eng.Go("b", func(p *des.Process) {
		c.Node(1).Recv(p)
		c.Node(1).Recv(p)
	})
	eng.Run()
	if s, _ := c.Node(0).Counters(); s != 2 {
		t.Errorf("node0 sent = %d, want 2", s)
	}
	if _, r := c.Node(1).Counters(); r != 2 {
		t.Errorf("node1 received = %d, want 2", r)
	}
	if c.MessagesSent() != 2 {
		t.Errorf("cluster messages = %d, want 2", c.MessagesSent())
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1})
	if u := c.Node(0).Utilization(); u != 0 {
		t.Fatalf("Utilization at t=0 = %v, want 0", u)
	}
}

// TestPingPongRoundTrip runs the paper's master/worker message pattern
// for one cycle and checks the Eq. 2 cost TF + 2*TC + TA.
func TestPingPongRoundTrip(t *testing.T) {
	const (
		tc = 0.000006
		ta = 0.000029
		tf = 0.01
	)
	eng := des.New()
	c := New(eng, Config{Nodes: 2})
	master, worker := c.Node(0), c.Node(1)
	var cycleEnd des.Time
	eng.Go("master", func(p *des.Process) {
		master.HoldBusy(p, tc, "comm") // send offspring
		master.Send(1, 0, "offspring")
		master.Recv(p) // wait for result
		master.HoldBusy(p, tc, "comm")
		master.HoldBusy(p, ta, "algo")
		cycleEnd = p.Now()
	})
	eng.Go("worker", func(p *des.Process) {
		worker.Recv(p)
		worker.HoldBusy(p, tf, "eval")
		worker.Send(0, 1, "result")
	})
	eng.Run()
	want := tf + 2*tc + ta
	if math.Abs(cycleEnd-want) > 1e-12 {
		t.Fatalf("one master/worker cycle took %v, want TF+2TC+TA = %v", cycleEnd, want)
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 nodes did not panic")
		}
	}()
	New(des.New(), Config{Nodes: 0})
}
