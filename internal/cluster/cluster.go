// Package cluster models a message-passing machine — the stand-in for
// TACC Ranger + OpenMPI — on top of the discrete-event engine in
// internal/des. A Cluster is a set of ranked nodes exchanging tagged
// messages; each node runs one process and accounts its busy time so
// per-node utilization (master saturation, worker idle fractions) can
// be reported after a run.
//
// Fidelity note: the paper measured communication as a round-trip cost
// 2·T_C that *occupies the master* (its simulation model holds the
// master for T_C + T_A + T_C per request, and Eq. 3's saturation bound
// is T_F/(2·T_C + T_A)). Accordingly the drivers in internal/parallel
// charge T_C as busy time on the communicating node, and Cluster's
// message transit latency defaults to zero. A nonzero Transit
// distribution is available to model pure wire delay in addition.
package cluster

import (
	"fmt"

	"borgmoea/internal/des"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// Message is one point-to-point datagram between nodes.
type Message struct {
	From, To int
	Tag      int
	Payload  any
	SentAt   des.Time
	ArriveAt des.Time
}

// Config configures a virtual cluster.
type Config struct {
	// Nodes is the number of nodes (P in the paper). Must be >= 1.
	Nodes int
	// Transit is the wire latency added to every message, sampled per
	// message. Nil means instantaneous delivery (the paper's model:
	// communication cost is charged as sender/receiver busy time by
	// the drivers instead).
	Transit stats.Distribution
	// Seed seeds the cluster's internal randomness (transit sampling).
	Seed uint64
}

// Cluster is a virtual message-passing machine bound to a DES engine.
type Cluster struct {
	eng     *des.Engine
	nodes   []*Node
	transit stats.Distribution
	rng     *rng.Source

	messagesSent uint64
	messagesLost uint64
	dropFn       func(*Message) bool
}

// New builds a cluster on the engine. It panics if cfg.Nodes < 1.
func New(eng *des.Engine, cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	c := &Cluster{
		eng:     eng,
		transit: cfg.Transit,
		rng:     rng.New(cfg.Seed ^ 0x636c7573746572), // "cluster"
	}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &Node{c: c, rank: i}
	}
	return c
}

// Engine returns the underlying DES engine.
func (c *Cluster) Engine() *des.Engine { return c.eng }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node with the given rank.
func (c *Cluster) Node(rank int) *Node {
	return c.nodes[rank]
}

// MessagesSent returns the number of messages sent so far.
func (c *Cluster) MessagesSent() uint64 { return c.messagesSent }

// MessagesLost returns the number of messages discarded by the drop
// hook or by delivery to a failed node.
func (c *Cluster) MessagesLost() uint64 { return c.messagesLost }

// SetDropFn installs a per-message loss hook consulted at delivery
// time: returning true discards the message. Used by internal/fault to
// model lossy links. A nil fn disables loss.
func (c *Cluster) SetDropFn(fn func(*Message) bool) { c.dropFn = fn }

// Node is one machine in the cluster. At most one process should
// receive on a node at a time (each node runs a single rank process,
// as in the paper's one-solution-per-worker setup).
type Node struct {
	c    *Cluster
	rank int

	inbox   []*Message
	waiting *des.Process
	failed  bool
	epoch   uint64
	suspend des.Time

	busyIntegral float64
	busySince    des.Time
	busyDepth    int
	recvCount    uint64
	sendCount    uint64
}

// Rank returns the node's rank (0 is the master by convention).
func (n *Node) Rank() int { return n.rank }

// Failed reports whether the node is currently failed.
func (n *Node) Failed() bool { return n.failed }

// Fail marks the node dead: its inbox is discarded (in-flight state is
// lost with the crash) and subsequent messages to it are dropped until
// Recover. The node's process is not interrupted; drivers model lost
// work by comparing Epoch before and after an evaluation — a crash
// during the interval bumps the epoch, so the stale result is never
// sent (see internal/parallel).
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.epoch++
	n.c.messagesLost += uint64(len(n.inbox))
	n.inbox = n.inbox[:0]
	n.c.eng.Emit("fail", n.label(), "")
}

// Recover marks a failed node alive again. Work it held before the
// failure stays lost (the epoch advanced); it simply becomes able to
// receive messages.
func (n *Node) Recover() {
	if !n.failed {
		return
	}
	n.failed = false
	n.c.eng.Emit("recover", n.label(), "")
}

// Epoch returns the node's incarnation counter: the number of failures
// it has suffered. Processes snapshot it before starting work and
// discard results if it changed, modeling work lost in a crash.
func (n *Node) Epoch() uint64 { return n.epoch }

// Suspend hangs the node until the given absolute virtual time:
// messages still arrive and queue, but a well-behaved node process
// defers responses past the suspension (via SuspendedUntil). Repeated
// suspensions extend, never shorten, the hang.
func (n *Node) Suspend(until des.Time) {
	if until > n.suspend {
		n.suspend = until
		n.c.eng.Emit("hang", n.label(), fmt.Sprintf("until=%g", until))
	}
}

// SuspendedUntil returns the end of the current hang (0, or a past
// time, when the node is responsive).
func (n *Node) SuspendedUntil() des.Time { return n.suspend }

// Send transmits a message from this node to rank dst. Delivery is
// after the cluster's transit latency (zero when unset). Sending does
// not consume the sender's time by itself; callers account the T_C
// communication cost with HoldBusy, following the paper's model.
func (n *Node) Send(dst, tag int, payload any) {
	if dst < 0 || dst >= len(n.c.nodes) {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", dst))
	}
	if n.failed {
		// A dead node cannot transmit; the message vanishes.
		n.c.messagesLost++
		n.c.eng.Emit("drop", n.label(), fmt.Sprintf("dead sender, to=%d tag=%d", dst, tag))
		return
	}
	lat := 0.0
	if n.c.transit != nil {
		lat = n.c.transit.Sample(n.c.rng)
		if lat < 0 {
			lat = 0
		}
	}
	msg := &Message{
		From:    n.rank,
		To:      dst,
		Tag:     tag,
		Payload: payload,
		SentAt:  n.c.eng.Now(),
	}
	n.sendCount++
	n.c.messagesSent++
	n.c.eng.Emit("send", n.label(), fmt.Sprintf("to=%d tag=%d", dst, tag))
	n.c.eng.Schedule(lat, func() { n.c.deliver(msg) })
}

func (c *Cluster) deliver(msg *Message) {
	dst := c.nodes[msg.To]
	if dst.failed {
		c.messagesLost++
		c.eng.Emit("drop", dst.label(), fmt.Sprintf("from=%d tag=%d", msg.From, msg.Tag))
		return
	}
	if c.dropFn != nil && c.dropFn(msg) {
		c.messagesLost++
		c.eng.Emit("loss", dst.label(), fmt.Sprintf("from=%d tag=%d", msg.From, msg.Tag))
		return
	}
	msg.ArriveAt = c.eng.Now()
	dst.inbox = append(dst.inbox, msg)
	if dst.waiting != nil {
		p := dst.waiting
		dst.waiting = nil
		p.WakeLater(0)
	}
}

// Recv blocks the calling process until a message is available and
// returns it (FIFO by arrival).
func (n *Node) Recv(p *des.Process) *Message {
	msg, ok := n.recv(p, 0, false)
	if !ok {
		panic("cluster: Recv returned without message") // unreachable
	}
	return msg
}

// RecvTimeout is Recv with a deadline: it returns (nil, false) if no
// message arrives within timeout units of virtual time.
func (n *Node) RecvTimeout(p *des.Process, timeout des.Time) (*Message, bool) {
	return n.recv(p, timeout, true)
}

func (n *Node) recv(p *des.Process, timeout des.Time, hasTimeout bool) (*Message, bool) {
	if len(n.inbox) == 0 {
		timedOut := false
		n.waiting = p
		var h des.Handle
		if hasTimeout {
			h = n.c.eng.Schedule(timeout, func() {
				if n.waiting == p {
					n.waiting = nil
					timedOut = true
					p.WakeLater(0)
				}
			})
		}
		p.Park()
		if timedOut {
			return nil, false
		}
		if hasTimeout {
			h.Cancel()
		}
	}
	msg := n.inbox[0]
	copy(n.inbox, n.inbox[1:])
	n.inbox[len(n.inbox)-1] = nil
	n.inbox = n.inbox[:len(n.inbox)-1]
	n.recvCount++
	n.c.eng.Emit("recv", n.label(), fmt.Sprintf("from=%d tag=%d", msg.From, msg.Tag))
	return msg, true
}

// InboxLen returns the number of delivered-but-unreceived messages.
func (n *Node) InboxLen() int { return len(n.inbox) }

// HoldBusy advances the process by d while accounting the interval as
// busy time on this node, tagged with kind for the trace ("eval",
// "comm", "algo", ...).
func (n *Node) HoldBusy(p *des.Process, d des.Time, kind string) {
	n.BeginBusy()
	n.c.eng.Emit(kind+".start", n.label(), "")
	p.Hold(d)
	n.c.eng.Emit(kind+".end", n.label(), "")
	n.EndBusy()
}

// BeginBusy marks the start of a busy interval. Busy intervals may
// nest; the node is busy while any interval is open.
func (n *Node) BeginBusy() {
	if n.busyDepth == 0 {
		n.busySince = n.c.eng.Now()
	}
	n.busyDepth++
}

// EndBusy closes the innermost busy interval. It panics if the node is
// not busy.
func (n *Node) EndBusy() {
	if n.busyDepth <= 0 {
		panic("cluster: EndBusy without BeginBusy")
	}
	n.busyDepth--
	if n.busyDepth == 0 {
		n.busyIntegral += n.c.eng.Now() - n.busySince
	}
}

// BusyTime returns total accumulated busy time, including any interval
// still open.
func (n *Node) BusyTime() des.Time {
	t := n.busyIntegral
	if n.busyDepth > 0 {
		t += n.c.eng.Now() - n.busySince
	}
	return t
}

// Utilization returns busy time divided by elapsed virtual time, or 0
// at time 0.
func (n *Node) Utilization() float64 {
	now := n.c.eng.Now()
	if now <= 0 {
		return 0
	}
	return n.BusyTime() / now
}

// Counters returns the node's message counts.
func (n *Node) Counters() (sent, received uint64) { return n.sendCount, n.recvCount }

func (n *Node) label() string {
	if n.rank == 0 {
		return "master"
	}
	return fmt.Sprintf("worker%d", n.rank)
}
