package des

import "fmt"

// killed is the panic payload used to unwind a process goroutine when
// the engine shuts down.
type killed struct{}

// Process is a simulated activity running as a goroutine in lock-step
// with the engine: while the process executes, the engine (and every
// other process) is parked, so process code may freely manipulate
// simulation state. Process methods must only be called from the
// process's own goroutine (the function passed to Engine.Go), except
// Name.
type Process struct {
	eng      *Engine
	name     string
	resume   chan struct{}
	finished bool
	killing  bool
}

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() Time { return p.eng.now }

// Go starts fn as a new process at the current virtual time. fn begins
// executing when the engine reaches the start event; it runs until it
// returns or is killed by Engine.Shutdown.
func (e *Engine) Go(name string, fn func(*Process)) *Process {
	return e.GoAfter(0, name, fn)
}

// GoAfter starts fn as a new process after delay units of virtual time.
func (e *Engine) GoAfter(delay Time, name string, fn func(*Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	go func() {
		<-p.resume // wait for the start event
		defer func() {
			p.finished = true
			delete(e.live, p)
			r := recover()
			// Hand control back before anything else so the waiting
			// domain (engine Run loop, or kill) is never deadlocked.
			e.park <- struct{}{}
			if r != nil {
				if _, ok := r.(killed); ok {
					return // orderly unwind requested by Shutdown
				}
				panic(r) // real bug: crash with the original payload
			}
		}()
		fn(p)
	}()
	e.Schedule(delay, p.wake)
	return p
}

// wake transfers control to the process and blocks until it parks
// again or finishes. It runs in the engine domain.
func (p *Process) wake() {
	if p.finished {
		return
	}
	delete(p.eng.live, p)
	p.resume <- struct{}{}
	<-p.eng.park
}

// parkSelf yields control back to the engine and blocks until woken.
// It must be called from the process goroutine.
func (p *Process) parkSelf() {
	p.eng.live[p] = struct{}{}
	p.eng.park <- struct{}{}
	<-p.resume
	if p.killing {
		panic(killed{})
	}
}

// Hold advances the process by d units of virtual time, yielding to
// the engine meanwhile. It panics on negative d.
func (p *Process) Hold(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("des: Hold(%v) with negative duration", d))
	}
	p.eng.Schedule(d, p.wake)
	p.parkSelf()
}

// Park blocks the process until some other simulation activity wakes
// it via a Signal, Resource grant, or a scheduled WakeLater.
func (p *Process) Park() { p.parkSelf() }

// WakeLater schedules this process to be woken after delay. It is the
// companion of Park for building custom synchronization: typically
// another process or event calls proc.WakeLater(0).
//
// Unlike most Process methods, WakeLater may be called from any
// simulation domain (the engine or another process).
func (p *Process) WakeLater(delay Time) { p.eng.Schedule(delay, p.wake) }

// kill resumes a parked process in kill mode and waits for its
// goroutine to unwind. Runs in the engine domain (from Shutdown).
func (p *Process) kill() {
	if p.finished {
		delete(p.eng.live, p)
		return
	}
	p.killing = true
	delete(p.eng.live, p)
	p.resume <- struct{}{}
	// The process panics with killed{}; its deferred handler signals
	// park once the goroutine has fully unwound.
	<-p.eng.park
}

// Signal is a broadcast condition: processes Wait on it and a Fire
// wakes every current waiter at the same virtual time.
type Signal struct {
	eng     *Engine
	waiters []*Process
}

// NewSignal returns a Signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait parks the calling process until the next Fire.
func (s *Signal) Wait(p *Process) {
	s.waiters = append(s.waiters, p)
	p.Park()
}

// Fire wakes all currently waiting processes. Processes that start
// waiting after Fire returns wait for the next Fire.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p.WakeLater(0)
	}
}

// Waiting returns the number of processes currently waiting.
func (s *Signal) Waiting() int { return len(s.waiters) }
