package des

import "testing"

func TestTimerFires(t *testing.T) {
	eng := New()
	fired := -1.0
	tm := eng.NewTimer(func() { fired = eng.Now() })
	tm.Reset(5)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	eng.Run()
	if fired != 5 {
		t.Fatalf("fired at %v, want 5", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerStopCancels(t *testing.T) {
	eng := New()
	fired := false
	tm := eng.NewTimer(func() { fired = true })
	tm.Reset(5)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	tm.Stop() // idempotent
	eng.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetReschedules(t *testing.T) {
	eng := New()
	var fires []Time
	tm := eng.NewTimer(nil)
	tm.fn = func() { fires = append(fires, eng.Now()) }
	tm.Reset(5)
	tm.Reset(9) // supersedes the first deadline
	eng.Run()
	if len(fires) != 1 || fires[0] != 9 {
		t.Fatalf("fires = %v, want exactly [9]", fires)
	}
	// Rearming after a firing works from scratch.
	tm.Reset(3)
	eng.Run()
	if len(fires) != 2 || fires[1] != 12 {
		t.Fatalf("fires = %v, want second firing at 12", fires)
	}
}
