package des

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of FIFO order: %v", got)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	e := New()
	last := -1.0
	// Events that schedule more events at random-ish offsets.
	var rec func(depth int)
	rec = func(depth int) {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		if depth < 5 {
			e.Schedule(0.5, func() { rec(depth + 1) })
			e.Schedule(0.1, func() { rec(depth + 1) })
		}
	}
	e.Schedule(0, func() { rec(0) })
	e.Run()
}

func TestScheduleZeroDelayRunsAtSameTime(t *testing.T) {
	e := New()
	var at Time = -1
	e.Schedule(2, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 2 {
		t.Fatalf("zero-delay event ran at %v, want 2", at)
	}
}

func TestSchedulePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtPanicsOnPast(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.Schedule(1, func() { ran = true })
	h.Cancel()
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
	if e.Pending() {
		t.Fatal("Pending() true after cancel + run")
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := New()
	h := e.Schedule(1, func() {})
	h.Cancel()
	h.Cancel() // must not panic
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []Time
	for _, d := range []Time{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(2.5)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(2.5) ran %v, want events at 1 and 2", ran)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock = %v after RunUntil(2.5)", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining events lost: %v", ran)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestProcessHold(t *testing.T) {
	e := New()
	var marks []Time
	e.Go("p", func(p *Process) {
		marks = append(marks, p.Now())
		p.Hold(1.5)
		marks = append(marks, p.Now())
		p.Hold(0.5)
		marks = append(marks, p.Now())
	})
	e.Run()
	want := []Time{0, 1.5, 2}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcessesInterleave(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Process) {
		order = append(order, "a0")
		p.Hold(2)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Process) {
		order = append(order, "b0")
		p.Hold(1)
		order = append(order, "b1")
		p.Hold(2)
		order = append(order, "b3")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGoAfter(t *testing.T) {
	e := New()
	var started Time = -1
	e.GoAfter(3, "late", func(p *Process) { started = p.Now() })
	e.Run()
	if started != 3 {
		t.Fatalf("GoAfter(3) started at %v", started)
	}
}

func TestHoldPanicsOnNegative(t *testing.T) {
	e := New()
	var recovered any
	e.Go("p", func(p *Process) {
		defer func() { recovered = recover() }()
		p.Hold(-1)
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Hold(-1) did not panic")
	}
}

func TestParkWake(t *testing.T) {
	e := New()
	var resumedAt Time = -1
	sleeper := e.Go("sleeper", func(p *Process) {
		p.Park()
		resumedAt = p.Now()
	})
	e.Go("waker", func(p *Process) {
		p.Hold(4)
		sleeper.WakeLater(0.5)
	})
	e.Run()
	if resumedAt != 4.5 {
		t.Fatalf("sleeper resumed at %v, want 4.5", resumedAt)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New()
	sig := NewSignal(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Process) {
			sig.Wait(p)
			woken++
		})
	}
	e.Go("firer", func(p *Process) {
		p.Hold(1)
		if sig.Waiting() != 5 {
			t.Errorf("Waiting() = %d, want 5", sig.Waiting())
		}
		sig.Fire()
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("Fire woke %d of 5 waiters", woken)
	}
}

func TestSignalDoesNotWakeLateWaiters(t *testing.T) {
	e := New()
	sig := NewSignal(e)
	lateWoken := false
	e.Go("firer", func(p *Process) { sig.Fire() })
	e.GoAfter(1, "late", func(p *Process) {
		sig.Wait(p)
		lateWoken = true
	})
	e.Run()
	if lateWoken {
		t.Fatal("waiter registered after Fire was woken by it")
	}
	e.Shutdown()
}

func TestShutdownTerminatesParked(t *testing.T) {
	e := New()
	cleanups := 0
	for i := 0; i < 3; i++ {
		e.Go("stuck", func(p *Process) {
			defer func() { cleanups++ }()
			p.Park() // never woken
		})
	}
	e.Run()
	e.Shutdown()
	if cleanups != 3 {
		t.Fatalf("Shutdown unwound %d of 3 processes (defers must run)", cleanups)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := New()
	res := NewResource(e, "master", 1)
	active := 0
	maxActive := 0
	for i := 0; i < 10; i++ {
		e.Go("w", func(p *Process) {
			res.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Hold(1)
			active--
			res.Release(p)
		})
	}
	end := e.Run()
	if maxActive != 1 {
		t.Fatalf("capacity-1 resource had %d simultaneous holders", maxActive)
	}
	if end != 10 {
		t.Fatalf("10 unit-time critical sections finished at %v, want 10", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New()
	res := NewResource(e, "r", 1)
	var grantOrder []int
	for i := 0; i < 8; i++ {
		i := i
		// Stagger arrivals so the queue order is well-defined.
		e.GoAfter(Time(i)*0.01, "w", func(p *Process) {
			res.Acquire(p)
			grantOrder = append(grantOrder, i)
			p.Hold(1)
			res.Release(p)
		})
	}
	e.Run()
	for i, v := range grantOrder {
		if v != i {
			t.Fatalf("grants out of FIFO order: %v", grantOrder)
		}
	}
}

func TestResourceCapacityN(t *testing.T) {
	e := New()
	res := NewResource(e, "pool", 3)
	active, maxActive := 0, 0
	for i := 0; i < 9; i++ {
		e.Go("w", func(p *Process) {
			res.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Hold(1)
			active--
			res.Release(p)
		})
	}
	end := e.Run()
	if maxActive != 3 {
		t.Fatalf("capacity-3 resource peaked at %d holders", maxActive)
	}
	if end != 3 {
		t.Fatalf("9 unit jobs on 3 servers finished at %v, want 3", end)
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	e := New()
	res := NewResource(e, "r", 1)
	var recovered any
	e.Go("p", func(p *Process) {
		defer func() { recovered = recover() }()
		res.Release(p)
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Release of idle resource did not panic")
	}
}

func TestResourceStats(t *testing.T) {
	e := New()
	res := NewResource(e, "m", 1)
	// One holder busy for 2 of 4 simulated seconds.
	e.Go("w", func(p *Process) {
		res.Acquire(p)
		p.Hold(2)
		res.Release(p)
		p.Hold(2)
	})
	e.Run()
	st := res.Stats()
	if math.Abs(st.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", st.Utilization)
	}
	if st.Grants != 1 {
		t.Errorf("grants = %d, want 1", st.Grants)
	}
	if st.MaxQueueLen != 0 {
		t.Errorf("maxQ = %d, want 0", st.MaxQueueLen)
	}
}

func TestResourceQueueStats(t *testing.T) {
	e := New()
	res := NewResource(e, "m", 1)
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Process) {
			res.Acquire(p)
			p.Hold(1)
			res.Release(p)
		})
	}
	e.Run()
	st := res.Stats()
	if st.MaxQueueLen != 2 {
		t.Errorf("maxQ = %d, want 2", st.MaxQueueLen)
	}
	// Queue length over time: 2 for [0,1), 1 for [1,2), 0 for [2,3):
	// mean = (2+1+0)/3 = 1.
	if math.Abs(st.MeanQueueLen-1) > 1e-9 {
		t.Errorf("meanQ = %v, want 1", st.MeanQueueLen)
	}
	if math.Abs(st.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", st.Utilization)
	}
}

func TestNewResourcePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(capacity=0) did not panic")
		}
	}()
	NewResource(New(), "bad", 0)
}

func TestTraceHook(t *testing.T) {
	e := New()
	var events []TraceEvent
	e.SetTrace(func(ev TraceEvent) { events = append(events, ev) })
	res := NewResource(e, "m", 1)
	e.Go("w", func(p *Process) {
		res.Acquire(p)
		e.Emit("work", p.Name(), "doing work")
		p.Hold(1)
		res.Release(p)
	})
	e.Run()
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"acquire", "work", "release"} {
		if !kinds[k] {
			t.Errorf("trace missing %q event; got %v", k, events)
		}
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// TestDeterministicReplay runs the same mixed workload twice and
// demands identical event interleaving — the property the whole
// experiment harness relies on for reproducibility.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		e := New()
		res := NewResource(e, "m", 2)
		var log []string
		for i := 0; i < 6; i++ {
			i := i
			e.GoAfter(Time(i%3)*0.5, "w", func(p *Process) {
				res.Acquire(p)
				log = append(log, p.Name()+"-acq")
				p.Hold(0.7)
				res.Release(p)
				log = append(log, p.Name()+"-rel")
				_ = i
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i)*1e-6, func() {})
	}
	e.Run()
}

func BenchmarkProcessHoldLoop(b *testing.B) {
	e := New()
	e.Go("p", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Hold(1e-6)
		}
	})
	e.Run()
}
