// Package des is a discrete-event simulation engine with SimPy-style
// processes, holds, and FIFO resources. It is the substrate for both
// the paper's "simulation model" (a queueing-only model of the
// master/worker interaction) and this repository's virtual cluster,
// which executes the real Borg MOEA under virtual time.
//
// The engine runs events from a priority queue ordered by virtual
// time (ties broken FIFO by scheduling order). Processes are
// goroutines that run in strict lock-step with the engine: exactly one
// of {engine, some process} is executing at any instant, so process
// code may touch engine and shared simulation state without locks.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break
	fn   func()
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. An Engine and everything
// scheduled on it must be used from a single simulation domain: either
// the engine's Run loop or a process it resumed.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	// park receives a token whenever a running process parks or
	// finishes, returning control to the engine (or to the process
	// event that woke it).
	park chan struct{}
	// live tracks parked processes so Shutdown can terminate them.
	live map[*Process]struct{}
	// processed counts executed events.
	processed uint64
	trace     func(TraceEvent)
}

// New returns an empty simulation at time 0.
func New() *Engine {
	return &Engine{
		park: make(chan struct{}),
		live: make(map[*Process]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetTrace installs a hook invoked for every trace event emitted via
// Emit (and by Resources and Processes). A nil hook disables tracing.
func (e *Engine) SetTrace(fn func(TraceEvent)) { e.trace = fn }

// Emit records a trace event at the current time if tracing is on.
func (e *Engine) Emit(kind, actor, detail string) {
	if e.trace != nil {
		e.trace(TraceEvent{At: e.now, Kind: kind, Actor: actor, Detail: detail})
	}
}

// TraceEvent is one entry in a simulation trace, used to render the
// paper's Figure 1/2-style timelines.
type TraceEvent struct {
	At     Time
	Kind   string // e.g. "send", "recv", "eval.start", "eval.end", "busy", "idle"
	Actor  string // e.g. "master", "worker3"
	Detail string
}

func (t TraceEvent) String() string {
	return fmt.Sprintf("%12.6f %-10s %-9s %s", t.At, t.Actor, t.Kind, t.Detail)
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ ev *event }

// Cancel prevents the event from running. Canceling an already-run or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// Schedule runs fn after delay units of virtual time. It panics on a
// negative or NaN delay.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: Schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not precede Now.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: At(%v) before now (%v)", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// Step executes the next pending event, advancing the clock. It
// reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain, then returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then sets the clock
// to t (if it advanced past the last event) and returns it.
func (e *Engine) RunUntil(t Time) Time {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
	return e.now
}

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].dead {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// Pending reports whether any live events remain.
func (e *Engine) Pending() bool {
	_, ok := e.peek()
	return ok
}

// Shutdown terminates all parked processes so their goroutines exit.
// Pending events are discarded. The engine remains usable for
// inspection but not for further scheduling of the killed processes.
func (e *Engine) Shutdown() {
	for len(e.live) > 0 {
		for p := range e.live {
			p.kill()
			break // map mutated by kill; restart iteration
		}
	}
	e.events = nil
}
