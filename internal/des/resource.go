package des

import "fmt"

// Resource is a SimPy-style server with fixed capacity and a FIFO
// request queue. In the paper's simulation model the master node is a
// Resource with capacity 1: workers "request" the master, "hold" it
// for 2*T_C + T_A, and "release" it. Contention for this resource is
// exactly the effect the analytical model cannot capture.
//
// Resource integrates busy-server time and queue length over time so
// utilization and mean queue length can be reported after a run.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Process

	// time-weighted statistics
	lastChange   Time
	busyIntegral float64 // ∫ inUse dt
	queueIntgrl  float64 // ∫ len(queue) dt
	grants       uint64
	maxQueue     int
}

// NewResource returns a resource with the given capacity (number of
// simultaneous holders). It panics if capacity < 1.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("des: NewResource requires capacity >= 1")
	}
	return &Resource{eng: e, name: name, capacity: capacity, lastChange: e.now}
}

// accumulate folds the elapsed interval into the time-weighted stats.
func (r *Resource) accumulate() {
	dt := r.eng.now - r.lastChange
	if dt > 0 {
		r.busyIntegral += float64(r.inUse) * dt
		r.queueIntgrl += float64(len(r.queue)) * dt
		r.lastChange = r.eng.now
	} else {
		r.lastChange = r.eng.now
	}
}

// Acquire blocks the calling process until a unit of the resource is
// available, honoring FIFO order among waiters.
func (r *Resource) Acquire(p *Process) {
	r.accumulate()
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		r.grants++
		r.eng.Emit("acquire", p.Name(), r.name)
		return
	}
	r.queue = append(r.queue, p)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	r.eng.Emit("enqueue", p.Name(), r.name)
	p.Park()
	// We were woken by Release, which transferred the unit to us
	// (inUse stays constant across the hand-off).
	r.eng.Emit("acquire", p.Name(), r.name)
}

// Release returns one unit of the resource, waking the next FIFO
// waiter if any. It panics if nothing is held.
func (r *Resource) Release(p *Process) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("des: Release of idle resource %q", r.name))
	}
	r.accumulate()
	r.eng.Emit("release", p.Name(), r.name)
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.grants++
		// Hand the unit directly to the next waiter at this instant.
		next.WakeLater(0)
		return
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// ResourceStats summarizes a resource's load over an interval.
type ResourceStats struct {
	Name          string
	Grants        uint64  // completed acquisitions
	Utilization   float64 // mean fraction of capacity in use
	MeanQueueLen  float64 // time-averaged waiter count
	MaxQueueLen   int
	ObservedSpan  Time // duration the statistics cover
	BusyTimeTotal Time // ∫ inUse dt
}

// Stats returns load statistics covering [start of sim, Now].
func (r *Resource) Stats() ResourceStats {
	r.accumulate()
	span := r.eng.now
	st := ResourceStats{
		Name:          r.name,
		Grants:        r.grants,
		MaxQueueLen:   r.maxQueue,
		ObservedSpan:  span,
		BusyTimeTotal: r.busyIntegral,
	}
	if span > 0 {
		st.Utilization = r.busyIntegral / (float64(r.capacity) * span)
		st.MeanQueueLen = r.queueIntgrl / span
	}
	return st
}

func (s ResourceStats) String() string {
	return fmt.Sprintf("%s: util=%.3f meanQ=%.3f maxQ=%d grants=%d",
		s.Name, s.Utilization, s.MeanQueueLen, s.MaxQueueLen, s.Grants)
}
