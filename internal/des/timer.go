package des

// Timer is a cancellable, reschedulable one-shot virtual-time timer.
// It wraps the engine's event handles so callers (e.g. the lease table
// in internal/parallel) can keep a single timer armed at a moving
// deadline without leaking dead events: Reset cancels any pending
// firing before scheduling the next one.
//
// Like all engine state, a Timer must be used from a single simulation
// domain (the engine's Run loop or a process it resumed).
type Timer struct {
	eng    *Engine
	fn     func()
	handle Handle
	armed  bool
}

// NewTimer returns an unarmed timer that will run fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Reset arms the timer to fire after delay units of virtual time,
// cancelling any previously scheduled firing.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.armed = true
	t.handle = t.eng.Schedule(delay, func() {
		t.armed = false
		t.fn()
	})
}

// Stop cancels a pending firing. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.armed {
		t.handle.Cancel()
		t.armed = false
	}
}

// Armed reports whether a firing is currently scheduled.
func (t *Timer) Armed() bool { return t.armed }
