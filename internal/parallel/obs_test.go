package parallel

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/obs"
	"borgmoea/internal/wire"
)

// TestAsyncMetricsAndTrace attaches the full telemetry kit to a
// virtual-time run and checks that the registry and journal see the
// protocol: N accepted evaluations, T_A/T_F/T_C and queue-wait timing
// observations, and a journal that exports to a valid Chrome trace.
func TestAsyncMetricsAndTrace(t *testing.T) {
	const n = 2000
	cfg := testConfig(8, n)
	cfg.Metrics = obs.NewRegistry()
	cfg.Events = obs.NewRecorder(0)

	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}

	if got := cfg.Metrics.Counter(mEvaluations).Value(); got != n {
		t.Fatalf("%s = %d, want %d", mEvaluations, got, n)
	}
	for _, name := range []string{mTA, mTC, mQueueWait, mTF} {
		h := cfg.Metrics.Histogram(name, nil)
		if h.Count() == 0 {
			t.Errorf("histogram %s saw no observations", name)
		}
	}
	// The T_A histogram mean must agree with the run's own accounting.
	ta := cfg.Metrics.Histogram(mTA, nil)
	if diff := ta.Mean() - res.MeanTA; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ta histogram mean %v != result MeanTA %v", ta.Mean(), res.MeanTA)
	}

	if cfg.Events.Len() == 0 {
		t.Fatal("journal recorded no events")
	}
	var buf bytes.Buffer
	if err := cfg.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	// The DES stream must carry per-worker eval spans and master sends.
	kinds := map[string]bool{}
	actors := map[string]bool{}
	for _, ev := range cfg.Events.Events() {
		kinds[ev.Kind] = true
		actors[ev.Actor] = true
	}
	for _, k := range []string{"send", "recv", "eval.start", "eval.end", "algo.start", "algo.end"} {
		if !kinds[k] {
			t.Errorf("journal missing %q events", k)
		}
	}
	if !actors["master"] || !actors["worker1"] {
		t.Errorf("journal missing expected actors, got %v", actors)
	}
}

// TestAsyncMetricsMatchFaultAccounting runs the crash-recover scenario
// and checks the registry's fault counters agree with the Result's own
// accounting, and that a metrics-enabled run does not perturb the
// search trajectory.
func TestAsyncMetricsMatchFaultAccounting(t *testing.T) {
	mk := func(reg *obs.Registry) Config {
		cfg := faultConfig(16, 5000)
		cfg.Fault = fault.FailedFractionPlan(0.02, 0.05, 7)
		cfg.Metrics = reg
		return cfg
	}
	reg := obs.NewRegistry()
	res, err := RunAsync(mk(reg))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(mResub).Value(); got != res.Resubmissions {
		t.Errorf("%s = %d, want %d", mResub, got, res.Resubmissions)
	}
	if got := reg.Counter(mDuplicates).Value(); got != res.DuplicateResults {
		t.Errorf("%s = %d, want %d", mDuplicates, got, res.DuplicateResults)
	}
	if exp := reg.Counter(mLeaseExpiry).Value(); exp > res.LostEvaluations {
		t.Errorf("%s = %d exceeds lost evaluations %d", mLeaseExpiry, exp, res.LostEvaluations)
	}

	// Telemetry must be observation-only: same seed without a registry
	// must reproduce the identical trajectory.
	bare, err := RunAsync(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	if bare.ElapsedTime != res.ElapsedTime || bare.Resubmissions != res.Resubmissions {
		t.Fatalf("metrics changed the run: elapsed %v vs %v, resub %d vs %d",
			res.ElapsedTime, bare.ElapsedTime, res.Resubmissions, bare.Resubmissions)
	}
}

// TestAsyncDiagnosticsCadence attaches core.Diagnostics through the
// parallel checkpoint hook — the supported way to observe algorithm
// dynamics under the parallel drivers — and checks the cadence.
func TestAsyncDiagnosticsCadence(t *testing.T) {
	const n, every = 5000, 500
	var d core.Diagnostics
	cfg := testConfig(8, n)
	cfg.CheckpointEvery = every
	cfg.OnCheckpoint = func(_ float64, b *core.Borg) { d.Observe(b) }

	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	if got, want := len(d.Records), n/every; got != want {
		t.Fatalf("got %d diagnostic records, want %d", got, want)
	}
	for i := 1; i < len(d.Records); i++ {
		if d.Records[i].Evaluations <= d.Records[i-1].Evaluations {
			t.Fatalf("record %d not monotone: %d after %d", i,
				d.Records[i].Evaluations, d.Records[i-1].Evaluations)
		}
	}
	if last := d.Records[len(d.Records)-1]; last.ArchiveSize == 0 {
		t.Fatal("final diagnostic snapshot has an empty archive")
	}
}

// TestDistributedObservability is the loopback acceptance test for the
// telemetry tentpole: a real-TCP run with metrics, journal and
// diagnostics attached must (a) keep the diagnostics cadence, (b)
// count evaluations and worker joins, (c) see wire frames on the
// shared registry, and (d) produce a -trace file that validates
// against the Chrome trace-event schema.
func TestDistributedObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test skipped in -short mode")
	}
	const n, every = 1000, 250
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	conn := fastConn
	conn.Metrics = obs.NewRegistry()
	for i := 0; i < 3; i++ {
		seed := uint64(i + 1)
		go wire.RunWorker(ctx, wire.WorkerConfig{
			Addr: l.Addr().String(),
			Seed: seed,
			Conn: conn,
		})
	}

	var d core.Diagnostics
	cfg := distConfig(n)
	cfg.Metrics = conn.Metrics
	cfg.Events = obs.NewRecorder(0)
	cfg.CheckpointEvery = every
	cfg.OnCheckpoint = func(_ float64, b *core.Borg) { d.Observe(b) }

	res, err := RunAsyncDistributed(cfg, DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         conn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run incomplete: %d/%d", res.Evaluations, n)
	}

	if got, want := len(d.Records), n/every; got != want {
		t.Fatalf("got %d diagnostic records, want %d", got, want)
	}
	reg := cfg.Metrics
	if got := reg.Counter(mEvaluations).Value(); got != n {
		t.Errorf("%s = %d, want %d", mEvaluations, got, n)
	}
	if joins := reg.Counter(mJoins).Value(); joins < 3 {
		t.Errorf("%s = %d, want >= 3", mJoins, joins)
	}
	if tf := reg.Histogram(mTF, nil).Count(); tf != n {
		t.Errorf("%s count = %d, want %d", mTF, tf, n)
	}
	// The wire layer shares the registry (master side by default, the
	// worker side explicitly above), so protocol frames must be there.
	if frames := reg.Counter(wire.MetricFramesRecv).Value(); frames == 0 {
		t.Error("wire layer recorded no received frames")
	}

	// Golden check: the exported trace validates and shows the
	// distributed-specific shapes (joins, reconstructed eval spans).
	var buf bytes.Buffer
	if err := cfg.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace fails schema validation: %v\n%s", err, firstKB(buf.Bytes()))
	}
	kinds := map[string]int{}
	for _, ev := range cfg.Events.Events() {
		kinds[ev.Kind]++
	}
	if kinds["worker.join"] < 3 {
		t.Errorf("journal has %d worker.join events, want >= 3", kinds["worker.join"])
	}
	if kinds["eval"] != n {
		t.Errorf("journal has %d eval spans, want %d", kinds["eval"], n)
	}
}

func firstKB(b []byte) string {
	if len(b) > 1024 {
		b = b[:1024]
	}
	return string(b)
}

// TestRealtimeMetrics smoke-checks the wall-clock executor's telemetry.
func TestRealtimeMetrics(t *testing.T) {
	cfg := testConfig(4, 300)
	cfg.TF = cfg.TC // keep sleeps tiny (6 µs)
	cfg.TA = nil
	cfg.Metrics = obs.NewRegistry()
	cfg.Events = obs.NewRecorder(0)
	res, err := RunAsyncRealtime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	if got := cfg.Metrics.Counter(mEvaluations).Value(); got != 300 {
		t.Fatalf("%s = %d, want 300", mEvaluations, got)
	}
	if cfg.Metrics.Histogram(mTA, nil).Count() != 300 {
		t.Fatal("realtime run missed T_A observations")
	}
	var buf bytes.Buffer
	if err := cfg.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("realtime trace invalid: %v", err)
	}
	if !strings.Contains(buf.String(), `"algo"`) {
		t.Error("realtime trace has no algo spans")
	}
}

// TestIslandsMetrics checks the multi-island driver shares the same
// metric vocabulary.
func TestIslandsMetrics(t *testing.T) {
	base := testConfig(4, 500)
	base.Metrics = obs.NewRegistry()
	res, err := RunIslands(IslandsConfig{Base: base, Islands: 2, MigrationEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := base.Metrics.Counter(mEvaluations).Value(), res.TotalEvaluations; got != want {
		t.Fatalf("%s = %d, want %d", mEvaluations, got, want)
	}
	if got, want := base.Metrics.Counter(mMigrants).Value(), res.Migrants; got != want {
		t.Fatalf("%s = %d, want %d", mMigrants, got, want)
	}
	if base.Metrics.Histogram(mTF, nil).Count() == 0 {
		t.Fatal("islands run missed T_F observations")
	}
}

// BenchmarkAsyncInstrumented is BenchmarkAsyncFaultFree with the full
// metrics registry attached — the CI benchmark job diffs the two to
// enforce the <5% instrumentation-overhead budget.
func BenchmarkAsyncInstrumented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 5000)
		cfg.Seed = uint64(i + 1)
		cfg.Metrics = obs.NewRegistry()
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncAdvised adds the live scalability advisor on top of the
// instrumented run — the CI benchmark job diffs it against
// BenchmarkAsyncFaultFree to enforce the same <5% overhead budget.
func BenchmarkAsyncAdvised(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 5000)
		cfg.Seed = uint64(i + 1)
		cfg.Metrics = obs.NewRegistry()
		cfg.Advisor = advisor.New(advisor.Config{
			SnapshotEvery: 0.1,
			Registry:      cfg.Metrics,
		})
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
