package parallel

import (
	"strings"
	"testing"

	"borgmoea/internal/fault"
	"borgmoea/internal/stats"
)

// TestWorkerStreamsDecorrelated: every wall-clock worker's timing
// stream must open with a distinct draw (split streams, not
// xor-scrambled copies of one seed), and reconstructing the streams
// from the same seed must reproduce them exactly.
func TestWorkerStreamsDecorrelated(t *testing.T) {
	const n = 16
	streams := workerStreams(1, n)
	if len(streams) != n {
		t.Fatalf("got %d streams, want %d", len(streams), n)
	}
	seen := make(map[uint64]int, n)
	first := make([]uint64, n)
	for i, s := range streams {
		v := s.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("workers %d and %d share their leading draw %#x", prev, i, v)
		}
		seen[v] = i
		first[i] = v
	}
	for i, s := range workerStreams(1, n) {
		if v := s.Uint64(); v != first[i] {
			t.Fatalf("worker %d stream not reproducible: %#x vs %#x", i, v, first[i])
		}
	}
	// A different run seed yields different streams.
	if v := workerStreams(2, 1)[0].Uint64(); v == first[0] {
		t.Fatal("seed 1 and seed 2 produced the same leading draw")
	}
}

// TestRealtimeFaultCheckBeforeNormalize: the fault-plan rejection is
// the cheap validation that runs first — a config that is *also*
// invalid for normalize (nil TF) must still get the fault error, and
// the message must point at the virtual-time drivers.
func TestRealtimeFaultCheckBeforeNormalize(t *testing.T) {
	cfg := testConfig(4, 100)
	cfg.TF = nil // would fail normalize
	cfg.Fault = &fault.Plan{Rules: []fault.Rule{{
		Ranks: []int{1},
		Model: fault.CrashStop{At: stats.NewConstant(1)},
	}}}
	_, err := RunAsyncRealtime(cfg)
	if err == nil {
		t.Fatal("fault plan accepted by realtime driver")
	}
	if !strings.Contains(err.Error(), "virtual-time driver") {
		t.Fatalf("fault check did not run first: %v", err)
	}
}
