package parallel

import (
	"testing"

	"borgmoea/internal/fault"
	"borgmoea/internal/stats"
)

// faultConfig is testConfig with a Gamma T_F (the paper's controlled
// delay) so lease deadlines interleave nontrivially with evaluations.
func faultConfig(p int, n uint64) Config {
	cfg := testConfig(p, n)
	cfg.TF = stats.GammaFromMeanCV(0.001, 0.1)
	return cfg
}

// TestAsyncCrashRecoverCompletes is the headline acceptance test: at
// P=64 on DTLZ2 with 1% of workers failed at any instant
// (crash-recover, exponential MTBF/MTTR), the asynchronous driver
// completes the full evaluation budget, reports resubmissions, and
// loses only a bounded slice of efficiency versus the fault-free run.
func TestAsyncCrashRecoverCompletes(t *testing.T) {
	const p, n = 64, 20000

	clean, err := RunAsync(faultConfig(p, n))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Completed {
		t.Fatal("fault-free run incomplete")
	}

	cfg := faultConfig(p, n)
	cfg.Fault = fault.FailedFractionPlan(0.01, 0.05, 42)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("faulty run incomplete: %d of %d evaluations", res.Evaluations, n)
	}
	if res.Evaluations != n {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, n)
	}
	if res.WorkerCrashes == 0 || res.WorkerRecoveries == 0 {
		t.Fatalf("no faults injected: %+v", res)
	}
	if res.Resubmissions == 0 {
		t.Fatal("crashes occurred but no work was resubmitted")
	}
	if res.LostEvaluations == 0 {
		t.Fatal("crashes occurred but no evaluations were counted lost")
	}
	// Efficiency bound: 1% failed workers plus lease-expiry latency
	// must not cost more than ~20% of fault-free efficiency at this
	// scale (the injected-failure bound with generous headroom for
	// resubmission latency).
	effClean, effFaulty := clean.Efficiency(), res.Efficiency()
	if effFaulty < 0.8*effClean {
		t.Fatalf("efficiency collapsed under 1%% failures: %.4f vs fault-free %.4f",
			effFaulty, effClean)
	}
	t.Logf("fault-free eff=%.4f faulty eff=%.4f crashes=%d recoveries=%d resub=%d lost=%d dup=%d msglost=%d",
		effClean, effFaulty, res.WorkerCrashes, res.WorkerRecoveries,
		res.Resubmissions, res.LostEvaluations, res.DuplicateResults, res.MessagesLost)
}

// TestSyncDeadWorkerCompletes: one permanently dead worker must not
// deadlock the generational barrier; the sync driver finishes the
// budget with the worker excluded after its first missed barrier.
func TestSyncDeadWorkerCompletes(t *testing.T) {
	cfg := faultConfig(8, 2000)
	cfg.Fault = &fault.Plan{
		Rules: []fault.Rule{{
			Ranks: []int{3},
			Model: fault.CrashStop{At: stats.NewConstant(0.05)},
		}},
		Seed: 9,
	}
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sync run deadlocked or aborted: %d of 2000 evaluations", res.Evaluations)
	}
	if res.WorkerCrashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.WorkerCrashes)
	}
	if res.LostEvaluations == 0 {
		t.Fatal("dead worker lost no evaluations")
	}
	if res.Resubmissions == 0 {
		t.Fatal("lost offspring were never re-scattered")
	}
}

// TestSyncCrashRecoverCompletes exercises the rejoin path: workers
// cycle in and out of the scatter set and the run still completes.
func TestSyncCrashRecoverCompletes(t *testing.T) {
	cfg := faultConfig(16, 4000)
	cfg.Fault = fault.FailedFractionPlan(0.05, 0.02, 3)
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sync crash-recover run incomplete: %d evaluations", res.Evaluations)
	}
	if res.WorkerRecoveries == 0 {
		t.Fatal("no recoveries observed")
	}
}

// TestAsyncAllWorkersCrashStop: with every worker permanently dead,
// the run cannot complete — it must end (SimTimeLimit) rather than
// hang, with Completed == false.
func TestAsyncAllWorkersCrashStop(t *testing.T) {
	cfg := faultConfig(4, 5000)
	cfg.Fault = &fault.Plan{
		Rules: []fault.Rule{{
			Fraction: 1,
			Model:    fault.CrashStop{At: stats.NewConstant(0.01)},
		}},
		Seed: 5,
	}
	cfg.SimTimeLimit = 2 // keep the aborted run short
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run claims completion with every worker dead")
	}
	if res.Evaluations >= cfg.Evaluations {
		t.Fatalf("evaluations = %d despite dead cluster", res.Evaluations)
	}
	if res.WorkerCrashes != 3 {
		t.Fatalf("crashes = %d, want 3", res.WorkerCrashes)
	}
}

// TestAsyncMessageLoss: lossy links lose results and requests; leases
// recover both directions.
func TestAsyncMessageLoss(t *testing.T) {
	cfg := faultConfig(8, 3000)
	cfg.Fault = &fault.Plan{MessageLoss: 0.01, Seed: 11}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with 1%% message loss incomplete: %d evaluations", res.Evaluations)
	}
	if res.MessagesLost == 0 {
		t.Fatal("no messages lost at p=0.01")
	}
	if res.Resubmissions == 0 {
		t.Fatal("lost messages but no resubmissions")
	}
}

// TestAsyncTransientHang: hung workers delay responses past the lease
// timeout; their late results must be deduplicated, never accepted
// twice (the chain invariant), and the run completes.
func TestAsyncTransientHang(t *testing.T) {
	cfg := faultConfig(8, 3000)
	cfg.Fault = &fault.Plan{
		Rules: []fault.Rule{{
			Fraction: 0.5,
			Model: fault.TransientHang{
				Every:    stats.NewExponential(1 / 0.05),
				Duration: stats.NewConstant(0.05), // ≫ default lease timeout (10·T_F = 0.01)
			},
		}},
		Seed: 13,
	}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("hang run incomplete: %d evaluations", res.Evaluations)
	}
	if res.HangsInjected == 0 {
		t.Fatal("no hangs injected")
	}
	if res.DuplicateResults == 0 {
		t.Fatal("hung workers' late results never arrived as duplicates")
	}
	if res.Evaluations != cfg.Evaluations {
		t.Fatalf("accepted %d evaluations, want exactly %d (no double-accepts)",
			res.Evaluations, cfg.Evaluations)
	}
}

// TestMasterFaultRejected: the paper's model has no master failure;
// targeting rank 0 is a configuration error.
func TestMasterFaultRejected(t *testing.T) {
	cfg := faultConfig(4, 100)
	cfg.Fault = &fault.Plan{
		Rules: []fault.Rule{{
			Ranks: []int{0},
			Model: fault.CrashStop{At: stats.NewConstant(1)},
		}},
	}
	if _, err := RunAsync(cfg); err == nil {
		t.Fatal("rank-0 fault target accepted")
	}
	if _, err := RunSync(cfg); err == nil {
		t.Fatal("rank-0 fault target accepted by sync")
	}
}

// TestRealtimeRejectsFaults: the wall-clock executor has no simulated
// cluster to fail.
func TestRealtimeRejectsFaults(t *testing.T) {
	cfg := testConfig(4, 100)
	cfg.TF = stats.NewConstant(0.0001)
	cfg.Fault = fault.FailedFractionPlan(0.1, 0.5, 1)
	if _, err := RunAsyncRealtime(cfg); err == nil {
		t.Fatal("realtime executor accepted a fault plan")
	}
}

// TestNegativeTimeoutsRejected covers the new Config validation.
func TestNegativeTimeoutsRejected(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.LeaseTimeout = -1 },
		func(c *Config) { c.BarrierTimeout = -1 },
		func(c *Config) { c.SimTimeLimit = -1 },
	} {
		cfg := testConfig(4, 100)
		mut(&cfg)
		if _, err := RunAsync(cfg); err == nil {
			t.Error("negative timeout accepted")
		}
	}
}

// BenchmarkAsyncFaultFree guards the fault-free overhead of the lease
// bookkeeping: with no plan and no timeout the driver must stay within
// a few percent of the pre-fault-tolerance driver (compare against
// BenchmarkAsyncCrashRecover for the faulted cost).
func BenchmarkAsyncFaultFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 5000)
		cfg.Seed = uint64(i + 1)
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncCrashRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 5000)
		cfg.Seed = uint64(i + 1)
		cfg.Fault = fault.FailedFractionPlan(0.01, 0.05, uint64(i+1))
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
