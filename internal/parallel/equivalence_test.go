package parallel

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/master"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// TestCrossTransportEquivalence: with a fixed seed and one worker, the
// DES, realtime and loopback-TCP drivers must drive the shared state
// machine through the byte-identical logical event sequence (canonical
// log: kinds, workers, lease ids — clocks and polling ticks excluded)
// and end with byte-identical archives. This is the tentpole property
// of the shared core: fault-tolerance and protocol semantics cannot
// drift between transports because there is only one implementation.
func TestCrossTransportEquivalence(t *testing.T) {
	const n = 300
	mk := func() Config {
		return Config{
			Problem:     problems.NewDTLZ2(5),
			Algorithm:   core.Config{Epsilons: core.UniformEpsilons(5, 0.15)},
			Processors:  2, // one worker: the result order is forced on every transport
			Evaluations: n,
			TF:          stats.NewConstant(1e-5),
			Seed:        42,
			Protocol:    master.NewLog(),
		}
	}

	desCfg := mk()
	desRes, err := RunAsync(desCfg)
	if err != nil {
		t.Fatal(err)
	}
	desLog, desArch := desCfg.Protocol.CanonicalBytes(), archiveBytes(t, desRes)

	rtCfg := mk()
	rtRes, err := RunAsyncRealtime(rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(desLog, rtCfg.Protocol.CanonicalBytes()) {
		t.Error("realtime: canonical event sequence differs from DES")
	}
	if !bytes.Equal(desArch, archiveBytes(t, rtRes)) {
		t.Error("realtime: final archive differs from DES")
	}

	if testing.Short() {
		t.Log("skipping the loopback-TCP leg in -short mode")
		return
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(ctx, l.Addr().String(), 1, nil)

	tcpCfg := mk()
	tcpRes, err := RunAsyncDistributed(tcpCfg, DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(desLog, tcpCfg.Protocol.CanonicalBytes()) {
		t.Error("TCP: canonical event sequence differs from DES")
	}
	if !bytes.Equal(desArch, archiveBytes(t, tcpRes)) {
		t.Error("TCP: final archive differs from DES")
	}
}

// TestReplayAsyncReproducesFaultyRun: a recorded DES run — including
// crashes, lease expiries, resubmissions and duplicates — replays
// off-line (through a serialization round trip) to the identical
// Result: same counters, same T_P, same archive bytes.
func TestReplayAsyncReproducesFaultyRun(t *testing.T) {
	cfg := testConfig(8, 3000)
	cfg.Fault = fault.FailedFractionPlan(0.05, 0.02, 21)
	cfg.Protocol = master.NewLog()
	orig, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Completed {
		t.Fatalf("faulty run did not complete: %d evaluations", orig.Evaluations)
	}
	if orig.Resubmissions == 0 {
		t.Fatal("fault plan injected no resubmissions; the replay test needs a non-trivial log")
	}

	var buf bytes.Buffer
	if _, err := cfg.Protocol.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := master.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayAsync(testConfig(8, 3000), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluations != orig.Evaluations || rep.Resubmissions != orig.Resubmissions ||
		rep.LostEvaluations != orig.LostEvaluations || rep.DuplicateResults != orig.DuplicateResults {
		t.Fatalf("replayed counters diverged:\n  original %+v\n  replay   %+v", orig, rep)
	}
	if rep.ElapsedTime != orig.ElapsedTime {
		t.Fatalf("replayed T_P %v != original %v", rep.ElapsedTime, orig.ElapsedTime)
	}
	if !bytes.Equal(archiveBytes(t, orig), archiveBytes(t, rep)) {
		t.Fatal("replayed archive differs from the original run's")
	}
}
