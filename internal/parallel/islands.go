package parallel

import (
	"fmt"

	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/federation"
	"borgmoea/internal/master"
	"borgmoea/internal/rng"
	"borgmoea/internal/wire"
)

// IslandsConfig parameterizes the hierarchical (multi-island) topology
// the paper's conclusion proposes as future work: several smaller
// asynchronous master-slave Borg instances running concurrently, each
// on its own processor subset, optionally exchanging archive members
// in a ring. Splitting avoids single-master saturation when T_F is
// small relative to 2·T_C + T_A (Eq. 3).
type IslandsConfig struct {
	// Base configures each island (Processors is the per-island P,
	// Evaluations the per-island budget). Checkpoint hooks, stragglers
	// and fault plans are not supported at the island level;
	// CaptureTimings is, and aggregates every island's T_A/T_F samples
	// into the merged result.
	Base Config
	// Islands is the number of concurrent instances (>= 1).
	Islands int
	// MigrationEvery exchanges one archive member to the next island
	// in the ring after every such number of accepted evaluations on
	// an island (0 disables migration). Migration follows the
	// synchronous epoch protocol shared with the TCP federation (see
	// internal/federation): send to the ring successor first, then
	// block for the predecessor's migrant of the same epoch and fold
	// it in as an EvMigrant event.
	MigrationEvery uint64
	// Logs, when non-nil, must have length Islands: island isl records
	// its BMEL event stream into Logs[isl]. MigrantLogs likewise
	// captures outgoing migrants per island. For the same seed these
	// match the TCP federation's logs canonically — the cross-
	// transport equivalence the federation tests pin down.
	Logs        []*master.Log
	MigrantLogs []*federation.MigrantLog
}

// IslandsResult summarizes a multi-island run.
type IslandsResult struct {
	// ElapsedTime is the virtual time at which the last island
	// finished its budget.
	ElapsedTime float64
	// TotalEvaluations across all islands.
	TotalEvaluations uint64
	// Islands holds each island's final Borg instance.
	Islands []*core.Borg
	// IslandElapsed is each island's own finish time.
	IslandElapsed []float64
	// Migrants is the number of archive members exchanged.
	Migrants uint64
	// MergedFront is the ε-nondominated union of all island
	// archives (objective vectors).
	MergedFront [][]float64

	// MeanTA and MeanTF are the observed timing means across all
	// islands; TASamples and TFSamples hold the raw samples (island-
	// major, then worker-rank order) when Base.CaptureTimings was set.
	MeanTA, MeanTF       float64
	TASamples, TFSamples []float64
}

// Efficiency returns T_S / (P_total · T_P) treating the union of
// islands as one machine, using the configured mean timings.
func (r *IslandsResult) Efficiency(meanTF, meanTA float64, totalProcessors int) float64 {
	if r.ElapsedTime == 0 || totalProcessors == 0 {
		return 0
	}
	ts := float64(r.TotalEvaluations) * (meanTF + meanTA)
	return ts / (float64(totalProcessors) * r.ElapsedTime)
}

// islandAlg adapts one island's Borg instance to the shared master
// state machine, charging a sampled T_A per critical section to the
// island's master node.
type islandAlg struct {
	b        *core.Borg
	p        *des.Process
	node     *cluster.Node
	sampleTA func() float64
}

func (a *islandAlg) Suggest() *core.Solution {
	s := a.b.Suggest()
	a.node.HoldBusy(a.p, a.sampleTA(), "algo")
	return s
}

func (a *islandAlg) Accept(s *core.Solution) {
	a.b.Accept(s)
	a.node.HoldBusy(a.p, a.sampleTA(), "algo")
}

func (a *islandAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	a.b.Accept(s)
	next := a.b.Suggest()
	a.node.HoldBusy(a.p, a.sampleTA(), "algo")
	return next
}

// RunIslands executes Islands concurrent asynchronous master-slave
// Borg instances under one virtual clock. Each island master runs its
// own instance of the shared state machine (internal/master) with
// worker ids local to the island; the driver maps them onto global
// cluster ranks. With migration enabled, island masters exchange
// migrants on the synchronous epoch protocol: at each boundary the
// master serializes a random archive member as a wire.Migrant frame
// (no Solution clone — the frame is the copy), sends it to the ring
// successor, then blocks for the predecessor's migrant of the same
// epoch and folds it in under an EvMigrant event — algorithm time
// charged, but no function evaluation. Recording those events makes
// migration part of the replayable BMEL stream instead of a side
// channel.
func RunIslands(cfg IslandsConfig) (*IslandsResult, error) {
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("parallel: need at least 1 island, got %d", cfg.Islands)
	}
	base := cfg.Base
	if err := base.normalize(); err != nil {
		return nil, err
	}
	if base.TA == nil {
		return nil, fmt.Errorf("parallel: RunIslands requires an explicit TA distribution (measured TA is ambiguous across concurrent masters)")
	}
	if base.CheckpointEvery != 0 || base.StragglerFraction != 0 {
		return nil, fmt.Errorf("parallel: RunIslands does not support checkpoints or stragglers")
	}
	if !base.Fault.Empty() {
		return nil, fmt.Errorf("parallel: RunIslands does not support fault injection; use RunAsync or RunSync")
	}
	if cfg.Logs != nil && len(cfg.Logs) != cfg.Islands {
		return nil, fmt.Errorf("parallel: Logs must have one entry per island")
	}
	if cfg.MigrantLogs != nil && len(cfg.MigrantLogs) != cfg.Islands {
		return nil, fmt.Errorf("parallel: MigrantLogs must have one entry per island")
	}

	k := cfg.Islands
	perP := base.Processors
	eng := des.New()
	installTrace(eng, &base)
	meters := master.NewMeters(base.Metrics)
	cl := cluster.New(eng, cluster.Config{Nodes: k * perP, Seed: base.Seed})

	res := &IslandsResult{
		Islands:       make([]*core.Borg, k),
		IslandElapsed: make([]float64, k),
	}

	// Migrant frames ride the mailbox outside the canonical protocol
	// vocabulary, as encoded wire bytes — the same bytes the TCP
	// federation puts on the network.
	const tagMigrant = 100

	// Per-process timing recorders: one T_A recorder per island master,
	// one T_F recorder per worker, merged in deterministic (island-
	// major, rank) order after the run — no shared counters are touched
	// from inside process closures.
	taRecs := make([]*tfRecorder, k)
	tfRecs := make([][]*tfRecorder, k)

	for isl := 0; isl < k; isl++ {
		isl := isl
		masterRank := isl * perP
		algCfg := base.Algorithm
		algCfg.Seed = federation.IslandAlgSeed(base.Seed, isl)
		b, err := core.New(base.Problem, algCfg)
		if err != nil {
			return nil, err
		}
		res.Islands[isl] = b

		mRng := rng.New(base.Seed ^ (uint64(isl+1) * 0x6d61)) // per-island master stream (T_A, T_C)
		migRng := federation.NewMigrationRNG(base.Seed, isl)  // emigrant selection, shared with TCP
		taRec := &tfRecorder{capture: base.CaptureTimings, hist: meters.TA}
		taRecs[isl] = taRec
		sampleTC := func() float64 {
			tc := base.TC.Sample(mRng)
			meters.TC.Observe(tc)
			return tc
		}
		sampleTA := func() float64 {
			ta := base.TA.Sample(mRng)
			taRec.record(ta)
			return ta
		}

		// Island workers.
		tfRecs[isl] = make([]*tfRecorder, perP-1)
		for w := 1; w < perP; w++ {
			rank := masterRank + w
			node := cl.Node(rank)
			tfRec := &tfRecorder{capture: base.CaptureTimings, hist: meters.TF}
			tfRecs[isl][w-1] = tfRec
			wRng := rng.New(base.Seed ^ (uint64(rank+1) * 0x9e3779b97f4a7c15))
			eng.Go(fmt.Sprintf("i%dworker%d", isl, w), func(p *des.Process) {
				for {
					msg := node.Recv(p)
					if msg.Tag == tagStop {
						return
					}
					item := msg.Payload.(*master.Item)
					core.EvaluateSolution(base.Problem, item.S)
					tf := base.TF.Sample(wRng)
					tfRec.record(tf)
					node.HoldBusy(p, tf, "eval")
					node.Send(masterRank, tagResult, item)
				}
			})
		}

		// Island master: a local instance of the shared state machine.
		// Worker ids inside the machine are island-local (1..perP−1);
		// the driver adds masterRank when touching the cluster.
		node := cl.Node(masterRank)
		nextMaster := ((isl + 1) % k) * perP
		var ilog *master.Log
		if cfg.Logs != nil {
			ilog = cfg.Logs[isl]
		}
		var mlog *federation.MigrantLog
		if cfg.MigrantLogs != nil {
			mlog = cfg.MigrantLogs[isl]
		}
		eng.Go(fmt.Sprintf("i%dmaster", isl), func(p *des.Process) {
			// staged carries the migrant solution into the OnMigrant
			// hook under Handle — the same injection point federation
			// replays resolve from the migrant sidecar log.
			var staged *core.Solution
			m := master.NewCore(master.Config{
				Budget: base.Evaluations,
				Policy: master.EagerOffspring,
				Alg:    &islandAlg{b: b, p: p, node: node, sampleTA: sampleTA},
				Meters: meters,
				Log:    ilog,
				OnMigrant: func(source int, epoch uint64) {
					if staged != nil {
						b.InjectEvaluated(staged)
						node.HoldBusy(p, sampleTA(), "algo")
						staged = nil
					}
				},
			})
			exec := func(acts []master.Action) {
				for _, a := range acts {
					switch a.Kind {
					case master.ActGrant:
						node.HoldBusy(p, sampleTC(), "comm")
						node.Send(masterRank+a.Worker, tagEvaluate, a.Item)
					case master.ActStop:
						node.Send(masterRank+a.Worker, tagStop, nil)
					case master.ActComplete:
						res.IslandElapsed[isl] = p.Now()
						ilog.SetElapsed(p.Now())
					}
				}
			}
			// recv charges the one-way T_C exactly once per message at
			// first receive; messages backlogged during a migration wait
			// are not re-charged when the main loop gets to them.
			recv := func() *cluster.Message {
				msg := node.Recv(p)
				node.HoldBusy(p, sampleTC(), "comm")
				return msg
			}
			var backlog []*cluster.Message
			pendingMig := make(map[uint64]*wire.Migrant)
			var lastEpoch uint64
			var migBuf []byte // frame scratch, reused per epoch
			decode := func(payload any) *wire.Migrant {
				mg, err := wire.DecodeFrame(payload.([]byte)[4:])
				if err != nil {
					panic(fmt.Sprintf("parallel: island %d migrant frame: %v", isl, err))
				}
				return mg.(*wire.Migrant)
			}
			// takeMigrant blocks until the predecessor's epoch-e migrant
			// arrives, buffering early migrants of later epochs and
			// backlogging every other message for the main loop.
			takeMigrant := func(epoch uint64) *wire.Migrant {
				if mg, ok := pendingMig[epoch]; ok {
					delete(pendingMig, epoch)
					return mg
				}
				for {
					msg := recv()
					if msg.Tag == tagMigrant {
						mg := decode(msg.Payload)
						if mg.Epoch == epoch {
							return mg
						}
						pendingMig[mg.Epoch] = mg
						continue
					}
					backlog = append(backlog, msg)
				}
			}
			// afterAccept is the synchronous epoch protocol at accept
			// count n: serialize the emigrant straight into the pooled
			// frame buffer (no Solution clone), send to the successor,
			// then — unless the budget just completed — wait for the
			// predecessor's migrant of the same epoch and fold it in as
			// an EvMigrant event. Send-before-wait keeps the ring
			// deadlock-free.
			afterAccept := func(n uint64, accepted *core.Solution) {
				if cfg.MigrationEvery == 0 || k <= 1 || n%cfg.MigrationEvery != 0 {
					return
				}
				epoch := n / cfg.MigrationEvery
				if epoch <= lastEpoch {
					return
				}
				lastEpoch = epoch
				mg := federation.Emigrant(isl, epoch, b.Archive(), migRng, accepted)
				migBuf = wire.AppendFrame(migBuf[:0], mg)
				node.HoldBusy(p, sampleTC(), "comm")
				node.Send(nextMaster, tagMigrant, append([]byte(nil), migBuf...))
				mlog.Record(mg)
				res.Migrants++
				meters.Migrants.Inc()
				if m.Done() {
					return
				}
				in := takeMigrant(epoch)
				staged = federation.MigrantSolution(in)
				exec(m.Handle(master.Event{Kind: master.EvMigrant, Worker: int(in.Island), Item: epoch, At: p.Now()}))
			}
			for w := 1; w < perP; w++ {
				exec(m.Handle(master.Event{Kind: master.EvJoin, Worker: w, At: p.Now()}))
			}
			for !m.Done() {
				var msg *cluster.Message
				if len(backlog) > 0 {
					msg = backlog[0]
					backlog = backlog[1:]
				} else {
					msg = recv()
				}
				switch msg.Tag {
				case tagMigrant:
					// Outside a boundary wait: the predecessor runs
					// ahead; hold its frame for the epoch we will reach.
					mg := decode(msg.Payload)
					pendingMig[mg.Epoch] = mg
				case tagResult:
					item := msg.Payload.(*master.Item)
					prev := m.Completed()
					exec(m.Handle(master.Event{
						Kind: master.EvResult, Worker: msg.From - masterRank, Item: item.ID, At: p.Now(),
					}))
					if n := m.Completed(); n > prev {
						afterAccept(n, item.S)
					}
				}
			}
		})
	}

	eng.Run()
	eng.Shutdown()

	for isl := 0; isl < k; isl++ {
		res.TotalEvaluations += res.Islands[isl].Evaluations()
		if res.IslandElapsed[isl] > res.ElapsedTime {
			res.ElapsedTime = res.IslandElapsed[isl]
		}
	}

	// Aggregate per-island timing observations (island-major order).
	taSum, taN := 0.0, uint64(0)
	tfSum, tfN := 0.0, uint64(0)
	for isl := 0; isl < k; isl++ {
		taSum += taRecs[isl].sum
		taN += taRecs[isl].n
		res.TASamples = append(res.TASamples, taRecs[isl].samples...)
		for _, r := range tfRecs[isl] {
			tfSum += r.sum
			tfN += r.n
			res.TFSamples = append(res.TFSamples, r.samples...)
		}
	}
	if taN > 0 {
		res.MeanTA = taSum / float64(taN)
	}
	if tfN > 0 {
		res.MeanTF = tfSum / float64(tfN)
	}

	// Merge: ε-nondominated union of all island archives, via the same
	// helper the federation (and its replays) use.
	res.MergedFront = federation.MergeArchives(base.Algorithm.Epsilons, res.Islands).Objectives()
	return res, nil
}
