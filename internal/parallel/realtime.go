package parallel

import (
	"fmt"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
)

// rtAlg adapts the Borg core to the shared master state machine for
// the wall-clock executor. Only the Accept+Suggest critical section is
// timed (the paper's T_A): seeding Suggest calls during worker join
// are protocol setup, not steady-state algorithm time.
type rtAlg struct {
	b      *core.Borg
	meters master.Meters
	events *obs.Recorder
	adv    *advisor.Advisor
	since  func() float64
	taSum  float64
	taN    uint64
}

func (a *rtAlg) Suggest() *core.Solution { return a.b.Suggest() }

func (a *rtAlg) Accept(s *core.Solution) { a.b.Accept(s) }

func (a *rtAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	t0 := time.Now()
	a.b.Accept(s)
	next := a.b.Suggest()
	ta := time.Since(t0).Seconds()
	a.taSum += ta
	a.taN++
	a.meters.TA.Observe(ta)
	a.adv.ObserveTA(ta)
	if a.events != nil {
		a.events.Record(obs.Event{TS: a.since() - ta, Dur: ta, Kind: "algo", Actor: "master"})
	}
	return next
}

// StageAccept is the cheap half of a deferred accept (Config.DeferArchive).
func (a *rtAlg) StageAccept(s *core.Solution) { a.b.StageAccept(s) }

// ApplyStaged is the deferred archive insertion, timed as T_A after
// the grant went out.
func (a *rtAlg) ApplyStaged() {
	t0 := time.Now()
	a.b.ApplyStaged()
	ta := time.Since(t0).Seconds()
	a.taSum += ta
	a.taN++
	a.meters.TA.Observe(ta)
	a.adv.ObserveTA(ta)
	if a.events != nil {
		a.events.Record(obs.Event{TS: a.since() - ta, Dur: ta, Kind: "algo", Actor: "master"})
	}
}

// rtResult carries an evaluated item back to the master goroutine.
type rtResult struct {
	worker int
	item   *master.Item
}

// RunAsyncRealtime executes the asynchronous master-slave Borg MOEA
// with real goroutines, channels and wall-clock delays — the Go
// equivalent of the paper's MPI implementation, used to cross-validate
// the virtual-time driver against actual concurrent execution.
// Evaluation delays are slept for real; keep N·TF/(P−1) small.
//
// The master is a single goroutine running the same shared state
// machine (internal/master) as the virtual-time and TCP drivers,
// preserving the paper's property that the algorithm's critical
// section is serial; workers communicate over channels (the MPI
// substitution — see DESIGN.md §2). Each worker has its own task
// channel so a grant addresses exactly the worker the state machine
// chose.
func RunAsyncRealtime(cfg Config) (*Result, error) {
	// Cheap validation first: reject configurations this driver can
	// never run before normalize touches distributions and long before
	// core.New allocates a full algorithm state.
	if !cfg.Fault.Empty() {
		return nil, fmt.Errorf("parallel: fault injection requires a virtual-time driver (RunAsync/RunSync); RunAsyncRealtime has no simulated cluster to fail")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.Processors - 1
	tasks := make([]chan *master.Item, workers)
	for i := range tasks {
		// Capacity 1: the eager protocol keeps at most one outstanding
		// item per worker, so a grant never blocks the master.
		tasks[i] = make(chan *master.Item, 1)
	}
	results := make(chan rtResult, workers)
	done := make(chan struct{})

	meters := master.NewMeters(cfg.Metrics)
	events := cfg.Events
	adv := cfg.Advisor
	adv.Configure(cfg.Processors, cfg.Evaluations)
	start := time.Now()
	since := func() float64 { return time.Since(start).Seconds() }

	streams := workerStreams(cfg.Seed, workers)
	for w := 0; w < workers; w++ {
		w := w
		wRng := streams[w]
		straggler := cfg.StragglerFraction > 0 &&
			float64(w) < cfg.StragglerFraction*float64(workers)
		actor := fmt.Sprintf("worker%d", w+1)
		in := tasks[w]
		go func() {
			for item := range in {
				t0 := since()
				core.EvaluateSolution(cfg.Problem, item.S)
				tf := cfg.TF.Sample(wRng)
				if straggler {
					tf *= cfg.StragglerFactor
				}
				time.Sleep(time.Duration(tf * float64(time.Second)))
				meters.TF.Observe(tf)
				adv.ObserveTF(w+1, tf)
				if events != nil {
					events.Record(obs.Event{TS: t0, Dur: since() - t0, Kind: "eval", Actor: actor})
				}
				select {
				case results <- rtResult{worker: w + 1, item: item}:
				case <-done:
					return
				}
			}
		}()
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	alg := &rtAlg{b: b, meters: meters, events: events, adv: adv, since: since}
	mcfg := master.Config{
		Budget:     cfg.Evaluations,
		Policy:     master.EagerOffspring,
		DeferApply: cfg.DeferArchive,
		Alg:        alg,
		Meters:     meters,
		Log:        cfg.Protocol,
		OnAccept: func(n uint64) {
			if cfg.CheckpointEvery > 0 && n%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
				meters.Checkpoints.Inc()
				cfg.OnCheckpoint(since(), b)
			}
		},
	}
	if adv != nil {
		mcfg.OnAcceptFrom = adv.ObserveAccept
	}
	if q := cfg.Quality; q != nil {
		q.Attach(b)
		mcfg.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	m := master.NewCore(mcfg)
	exec := func(acts []master.Action) {
		for _, a := range acts {
			switch a.Kind {
			case master.ActGrant:
				tasks[a.Worker-1] <- a.Item
			case master.ActStop:
				close(tasks[a.Worker-1])
			case master.ActComplete:
				res.ElapsedTime = since()
				cfg.Protocol.SetElapsed(res.ElapsedTime)
			}
		}
	}
	// Seed every worker, then translate results until the budget is met.
	for w := 1; w <= workers; w++ {
		exec(m.Handle(master.Event{Kind: master.EvJoin, Worker: w, At: since()}))
	}
	for !m.Done() {
		r := <-results
		exec(m.Handle(master.Event{Kind: master.EvResult, Worker: r.worker, Item: r.item.ID, At: since()}))
		// Deferred mode: the grant is already on its channel; fold the
		// staged result in now (no-op when DeferArchive is off).
		m.Flush()
		// Quality cadence: route the trigger through the master so the
		// sample point lands in the BMEL log (replayable).
		if q := cfg.Quality; q != nil && !m.Done() && q.Due(m.Completed(), since()) {
			exec(m.Handle(master.Event{Kind: master.EvQuality, Item: q.NextSeq(), At: since()}))
		}
	}
	close(done) // frees workers blocked on a result send

	res.Evaluations = m.Completed()
	res.Completed = true
	if alg.taN > 0 {
		res.MeanTA = alg.taSum / float64(alg.taN)
	}
	res.MeanTF = cfg.TF.Mean()
	res.MeanTC = 0 // channel transfers; not separately measurable here
	return res, nil
}

// workerStreams derives one timing-RNG stream per wall-clock worker by
// splitting a dedicated root, so worker streams are decorrelated by
// construction (each split reseeds through splitmix64) instead of by
// xor-scrambling the run seed. The root is offset from cfg.Seed so the
// streams are also independent of the master's algorithm randomness.
func workerStreams(seed uint64, n int) []*rng.Source {
	root := rng.New(seed ^ 0x7265616c74696d65) // "realtime"
	streams := make([]*rng.Source, n)
	for i := range streams {
		streams[i] = root.Split()
	}
	return streams
}
