package parallel

import (
	"fmt"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
)

// RunAsyncRealtime executes the asynchronous master-slave Borg MOEA
// with real goroutines, channels and wall-clock delays — the Go
// equivalent of the paper's MPI implementation, used to cross-validate
// the virtual-time driver against actual concurrent execution.
// Evaluation delays are slept for real; keep N·TF/(P−1) small.
//
// The master is a single goroutine, preserving the paper's property
// that the algorithm's critical section is serial; workers communicate
// over channels (the MPI substitution — see DESIGN.md §2).
func RunAsyncRealtime(cfg Config) (*Result, error) {
	// Cheap validation first: reject configurations this driver can
	// never run before normalize touches distributions and long before
	// core.New allocates a full algorithm state.
	if !cfg.Fault.Empty() {
		return nil, fmt.Errorf("parallel: fault injection requires a virtual-time driver (RunAsync/RunSync); RunAsyncRealtime has no simulated cluster to fail")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.Processors - 1
	tasks := make(chan *core.Solution, workers)
	results := make(chan *core.Solution, workers)
	done := make(chan struct{})

	meters := newRunMeters(cfg.Metrics)
	events := cfg.Events
	start := time.Now()
	since := func() float64 { return time.Since(start).Seconds() }

	streams := workerStreams(cfg.Seed, workers)
	for w := 0; w < workers; w++ {
		w := w
		wRng := streams[w]
		straggler := cfg.StragglerFraction > 0 &&
			float64(w) < cfg.StragglerFraction*float64(workers)
		actor := fmt.Sprintf("worker%d", w+1)
		go func() {
			for s := range tasks {
				t0 := since()
				core.EvaluateSolution(cfg.Problem, s)
				tf := cfg.TF.Sample(wRng)
				if straggler {
					tf *= cfg.StragglerFactor
				}
				time.Sleep(time.Duration(tf * float64(time.Second)))
				meters.tf.Observe(tf)
				if events != nil {
					events.Record(obs.Event{TS: t0, Dur: since() - t0, Kind: "eval", Actor: actor})
				}
				select {
				case results <- s:
				case <-done:
					return
				}
			}
		}()
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	taSum := 0.0
	var taN uint64
	for w := 0; w < workers; w++ {
		tasks <- b.Suggest()
	}
	for completed := uint64(0); completed < cfg.Evaluations; completed++ {
		s := <-results
		t0 := time.Now()
		b.Accept(s)
		next := b.Suggest()
		ta := time.Since(t0).Seconds()
		taSum += ta
		taN++
		meters.ta.Observe(ta)
		meters.evals.Inc()
		if events != nil {
			events.Record(obs.Event{TS: since() - ta, Dur: ta, Kind: "algo", Actor: "master"})
		}
		if cfg.CheckpointEvery > 0 && (completed+1)%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
			meters.checkpoints.Inc()
			cfg.OnCheckpoint(time.Since(start).Seconds(), b)
		}
		if completed+1 < cfg.Evaluations {
			tasks <- next
		}
	}
	res.ElapsedTime = time.Since(start).Seconds()
	close(done)
	close(tasks)

	res.Evaluations = cfg.Evaluations
	res.Completed = true
	res.MeanTA = taSum / float64(taN)
	res.MeanTF = cfg.TF.Mean()
	res.MeanTC = 0 // channel transfers; not separately measurable here
	return res, nil
}

// workerStreams derives one timing-RNG stream per wall-clock worker by
// splitting a dedicated root, so worker streams are decorrelated by
// construction (each split reseeds through splitmix64) instead of by
// xor-scrambling the run seed. The root is offset from cfg.Seed so the
// streams are also independent of the master's algorithm randomness.
func workerStreams(seed uint64, n int) []*rng.Source {
	root := rng.New(seed ^ 0x7265616c74696d65) // "realtime"
	streams := make([]*rng.Source, n)
	for i := range streams {
		streams[i] = root.Split()
	}
	return streams
}
