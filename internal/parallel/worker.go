package parallel

import (
	"fmt"

	"borgmoea/internal/advisor"
	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/fault"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
)

// tfRecorder accumulates one process's evaluation-time observations.
// Each worker process owns its recorder exclusively and the drivers
// merge them in rank order at teardown, so no shared counters are
// mutated from inside worker closures — the drivers stay clean under
// the race detector even if the DES engine's lock-step execution model
// ever changed.
type tfRecorder struct {
	worker  int
	sum     float64
	n       uint64
	capture bool
	samples []float64
	hist    *obs.Histogram   // optional shared telemetry sink (nil-safe, concurrent-safe)
	adv     *advisor.Advisor // optional advisor feed (nil-safe; attributes by worker)
}

func (r *tfRecorder) record(tf float64) {
	r.sum += tf
	r.n++
	if r.capture {
		r.samples = append(r.samples, tf)
	}
	r.hist.Observe(tf)
	r.adv.ObserveTF(r.worker, tf)
}

// recordTraced is record plus an exemplar: a sampled evaluation pins
// its trace id to the T_F histogram bucket it lands in, so /debug/
// metrics links a latency bucket to a concrete trace.
func (r *tfRecorder) recordTraced(tf float64, item *master.Item) {
	r.sum += tf
	r.n++
	if r.capture {
		r.samples = append(r.samples, tf)
	}
	r.hist.ObserveExemplar(tf, sampledTraceID(item))
	r.adv.ObserveTF(r.worker, tf)
}

// sampledTraceID returns the item's trace id when the evaluation is
// sampled, else 0 (ObserveExemplar treats 0 as "no exemplar").
func sampledTraceID(item *master.Item) uint64 {
	if item.Trace.Sampled() {
		return item.Trace.TraceID
	}
	return 0
}

// newRecorders returns one recorder per worker rank 1..P−1.
func newRecorders(cfg *Config) []*tfRecorder {
	hist := cfg.Metrics.Histogram(mTF, nil)
	recs := make([]*tfRecorder, cfg.Processors-1)
	for i := range recs {
		recs[i] = &tfRecorder{worker: i + 1, capture: cfg.CaptureTimings, hist: hist, adv: cfg.Advisor}
	}
	return recs
}

// mergeTF folds recorders into the result in the caller's (rank)
// order, making TFSamples deterministic.
func mergeTF(res *Result, recs ...*tfRecorder) {
	sum, n := 0.0, uint64(0)
	for _, r := range recs {
		sum += r.sum
		n += r.n
		res.TFSamples = append(res.TFSamples, r.samples...)
	}
	if n > 0 {
		res.MeanTF = sum / float64(n)
	}
}

// startWorkers launches the P−1 worker processes shared by the async
// and sync virtual-time drivers: receive a work item, evaluate it,
// hold T_F, echo the item to the master. Fault semantics: a crash
// during the evaluation bumps the node's epoch, so the result is never
// sent (the work died with the node); a transient hang defers the
// response until the node is responsive again.
func startWorkers(eng *des.Engine, cl *cluster.Cluster, cfg *Config, recs []*tfRecorder) {
	for w := 1; w < cfg.Processors; w++ {
		w := w
		node := cl.Node(w)
		rec := recs[w-1]
		wRng := rng.New(cfg.Seed ^ (uint64(w) * 0x9e3779b97f4a7c15))
		straggler := cfg.StragglerFraction > 0 &&
			float64(w-1) < cfg.StragglerFraction*float64(cfg.Processors-1)
		eng.Go(fmt.Sprintf("worker%d", w), func(p *des.Process) {
			for {
				msg := node.Recv(p)
				if msg.Tag == tagStop {
					return
				}
				item := msg.Payload.(*master.Item)
				epoch := node.Epoch()
				core.EvaluateSolution(cfg.Problem, item.S)
				tf := cfg.TF.Sample(wRng)
				if straggler {
					tf *= cfg.StragglerFactor
				}
				rec.recordTraced(tf, item)
				cfg.Trace.ObserveTF(item.ID, tf)
				node.HoldBusy(p, tf, "eval")
				if node.Failed() || node.Epoch() != epoch {
					continue // crashed mid-evaluation: the work is lost
				}
				if until := node.SuspendedUntil(); until > p.Now() {
					p.Hold(until - p.Now()) // hang delays the response
				}
				node.Send(0, tagResult, item)
			}
		})
	}
}

// attachFaults installs the run's fault plan on the cluster and wires
// the recovery protocol: when a worker node comes back from a crash it
// re-registers with the master via tagHello (its previous work and
// queued messages died with the crash). Returns the injector for
// statistics and teardown.
func attachFaults(cl *cluster.Cluster, cfg *Config) *fault.Injector {
	inj := fault.Attach(cl, cfg.Fault)
	inj.SetTransitionHook(func(rank int, up bool) {
		if up && rank != 0 {
			cl.Node(rank).Send(0, tagHello, rank)
		}
	})
	return inj
}

// runEngine drives the simulation to completion, honoring the optional
// virtual-time limit, and folds cluster/injector fault statistics into
// the result.
func runEngine(eng *des.Engine, cl *cluster.Cluster, inj *fault.Injector, cfg *Config, res *Result) {
	if cfg.SimTimeLimit > 0 {
		eng.RunUntil(cfg.SimTimeLimit)
	} else {
		eng.Run()
	}
	eng.Shutdown()
	st := inj.Stats()
	res.WorkerCrashes = st.Crashes
	res.WorkerRecoveries = st.Recoveries
	res.HangsInjected = st.Hangs
	res.MessagesLost = cl.MessagesLost()
}
