package parallel

import (
	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
)

// desAlg adapts the Borg core to the shared master state machine for
// the virtual-time driver: every critical section is metered (sampled
// or measured T_A) and charged to the master node as an "algo" hold,
// exactly as the paper instruments it.
type desAlg struct {
	b     *core.Borg
	p     *des.Process
	node  *cluster.Node
	meter *taMeter
	trace *obs.Collector // nil-safe
	// curItem is the lease id of the result being folded in: the master
	// loop stashes it before Handle(EvResult) so the accept critical
	// section can attribute its T_A to the evaluation's trace.
	curItem uint64
}

func (a *desAlg) Suggest() *core.Solution {
	var s *core.Solution
	ta := a.meter.measure(func() { s = a.b.Suggest() })
	a.node.HoldBusy(a.p, ta, "algo")
	return s
}

func (a *desAlg) Accept(s *core.Solution) {
	ta := a.meter.measure(func() { a.b.Accept(s) })
	a.node.HoldBusy(a.p, ta, "algo")
	a.trace.ObserveTA(a.curItem, ta)
}

func (a *desAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	var next *core.Solution
	ta := a.meter.measure(func() {
		a.b.Accept(s)
		next = a.b.Suggest()
	})
	a.node.HoldBusy(a.p, ta, "algo")
	a.trace.ObserveTA(a.curItem, ta)
	return next
}

// StageAccept is the cheap half of a deferred accept: an append, not
// worth a virtual-time charge (Config.DeferArchive).
func (a *desAlg) StageAccept(s *core.Solution) { a.b.StageAccept(s) }

// ApplyStaged is the deferred archive insertion, charged as T_A after
// the grant instead of before it.
func (a *desAlg) ApplyStaged() {
	ta := a.meter.measure(func() { a.b.ApplyStaged() })
	a.node.HoldBusy(a.p, ta, "algo")
	a.trace.ObserveTA(a.curItem, ta)
}

// RunAsync executes the asynchronous, master-slave Borg MOEA on the
// virtual cluster and returns its timing and search results.
//
// Protocol (Figure 2 of the paper): the master seeds every worker with
// one solution; thereafter, whenever a worker returns an evaluated
// solution the master is held for T_C (receive) + T_A (process result,
// generate next offspring) + T_C (send) and the worker immediately
// receives new work. Workers evaluate (T_F) and send back. The run
// ends when N evaluations have been accepted; T_P is the virtual time
// of the N-th acceptance.
//
// The protocol decisions — lease table, resubmission, duplicate
// suppression, worker lifecycle, probes, stop/drain — live in the
// shared state machine (internal/master); this driver only translates
// DES mailbox traffic into events and the machine's actions back into
// T_C holds and sends. A worker whose lease outlives
// Config.LeaseTimeout is presumed dead: its work is cloned and
// re-enqueued, the late original discarded as a duplicate by lease id.
// Recovered workers re-register via TagHello (pushed by the fault
// injector's transition hook) and rejoin the pool. The lease machinery
// consumes no randomness and adds no virtual-time charges, so with a
// nil fault plan and LeaseTimeout 0 it is pure bookkeeping.
func RunAsync(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New()
	installTrace(eng, &cfg)
	cl := cluster.New(eng, cluster.Config{Nodes: cfg.Processors, Seed: cfg.Seed})
	inj := attachFaults(cl, &cfg)

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	meters := master.NewMeters(cfg.Metrics)
	adv := cfg.Advisor
	adv.Configure(cfg.Processors, cfg.Evaluations)
	masterRng := rng.New(cfg.Seed ^ 0x6d617374) // "mast"
	meter := &taMeter{dist: cfg.TA, rng: masterRng, capture: cfg.CaptureTimings, hist: meters.TA, adv: adv}
	tcSum, tcN := 0.0, uint64(0)
	sampleTC := func() float64 {
		tc := cfg.TC.Sample(masterRng)
		tcSum += tc
		tcN++
		meters.TC.Observe(tc)
		adv.ObserveTC(tc)
		return tc
	}

	var elapsedAtN float64
	var m *master.Core

	recs := newRecorders(&cfg)
	startWorkers(eng, cl, &cfg, recs)

	// Master process: one shared state machine, one mailbox.
	node := cl.Node(0)
	eng.Go("master", func(p *des.Process) {
		alg := &desAlg{b: b, p: p, node: node, meter: meter, trace: cfg.Trace}
		mcfg := master.Config{
			Budget:       cfg.Evaluations,
			LeaseTimeout: cfg.LeaseTimeout,
			Policy:       master.EagerOffspring,
			DeferApply:   cfg.DeferArchive,
			Alg:          alg,
			Meters:       meters,
			Emit:         func(kind, detail string) { eng.Emit(kind, "master", detail) },
			Log:          cfg.Protocol,
			OnAccept: func(n uint64) {
				if cfg.CheckpointEvery > 0 && n%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
					meters.Checkpoints.Inc()
					cfg.OnCheckpoint(p.Now(), b)
				}
			},
		}
		if adv != nil {
			mcfg.OnAcceptFrom = adv.ObserveAccept
		}
		if cfg.Trace != nil {
			mcfg.Tracer = cfg.Trace
		}
		if q := cfg.Quality; q != nil {
			q.Attach(b)
			mcfg.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
		}
		m = master.NewCore(mcfg)
		exec := func(acts []master.Action) {
			for _, a := range acts {
				switch a.Kind {
				case master.ActGrant:
					tc := sampleTC()
					node.HoldBusy(p, tc, "comm")
					cfg.Trace.ObserveTCSend(a.Item.ID, tc)
					node.Send(a.Worker, tagEvaluate, a.Item)
				case master.ActStop:
					node.Send(a.Worker, tagStop, nil)
				case master.ActComplete:
					elapsedAtN = p.Now()
					cfg.Protocol.SetElapsed(elapsedAtN)
				}
			}
		}
		// receive blocks for the next message, ticking the machine when
		// a lease deadline passes while waiting. With no live leases
		// (or lease expiry disabled) it degenerates to a plain Recv.
		receive := func() *cluster.Message {
			for {
				dl, ok := m.NextDeadline()
				if !ok {
					return node.Recv(p)
				}
				if dl > p.Now() {
					if msg, got := node.RecvTimeout(p, dl-p.Now()); got {
						return msg
					}
				}
				exec(m.Handle(master.Event{Kind: master.EvTick, At: p.Now()}))
			}
		}

		// Seed every worker with an initial solution.
		for w := 1; w < cfg.Processors; w++ {
			exec(m.Handle(master.Event{Kind: master.EvJoin, Worker: w, At: p.Now()}))
		}
		// Steady state: receive, translate, execute.
		for !m.Done() {
			msg := receive()
			wait := p.Now() - msg.ArriveAt
			adv.ObserveQueueWait(wait)
			tc := sampleTC()
			node.HoldBusy(p, tc, "comm")
			if msg.Tag == tagHello {
				meters.QueueWait.Observe(wait)
				exec(m.Handle(master.Event{Kind: master.EvHello, Worker: msg.From, At: p.Now()}))
				continue
			}
			item := msg.Payload.(*master.Item)
			meters.QueueWait.ObserveExemplar(wait, sampledTraceID(item))
			cfg.Trace.ObserveQueueWait(item.ID, wait)
			cfg.Trace.ObserveTCRecv(item.ID, tc)
			alg.curItem = item.ID
			exec(m.Handle(master.Event{Kind: master.EvResult, Worker: msg.From, Item: item.ID, At: p.Now()}))
			// Deferred mode: the grant's T_C hold has been charged; fold
			// the staged result in now, charging its T_A after the send
			// (no-op when DeferArchive is off or nothing is staged).
			m.Flush()
			// Quality cadence: the trigger detours through the master so
			// the sample point lands in the BMEL log (replayable).
			if q := cfg.Quality; q != nil && !m.Done() && q.Due(m.Completed(), p.Now()) {
				exec(m.Handle(master.Event{Kind: master.EvQuality, Item: q.NextSeq(), At: p.Now()}))
			}
		}
		// Drain any in-flight results so the mailbox is empty.
		for w := 1; w < cfg.Processors; w++ {
			if node.InboxLen() == 0 {
				break
			}
			node.Recv(p)
		}
		inj.Stop()
	})

	runEngine(eng, cl, inj, &cfg, res)

	st := m.Stats()
	res.ElapsedTime = elapsedAtN
	res.Evaluations = st.Completed
	res.Completed = st.Completed >= cfg.Evaluations
	res.Resubmissions = st.Resubmissions
	res.LostEvaluations = st.Lost
	res.DuplicateResults = st.Duplicates
	res.MasterBusy = node.BusyTime()
	if elapsedAtN > 0 {
		res.MasterUtilization = res.MasterBusy / elapsedAtN
		sum := 0.0
		for w := 1; w < cfg.Processors; w++ {
			sum += cl.Node(w).BusyTime() / elapsedAtN
		}
		res.MeanWorkerUtilization = sum / float64(cfg.Processors-1)
	}
	res.MeanTA = meter.mean()
	res.TASamples = meter.samples
	mergeTF(res, recs...)
	if tcN > 0 {
		res.MeanTC = tcSum / float64(tcN)
	}
	return res, nil
}
