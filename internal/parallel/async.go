package parallel

import (
	"fmt"

	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/rng"
)

// Worker states tracked by the asynchronous master's lease table.
const (
	wsIdle int8 = iota
	wsBusy
	wsDead
)

// lease is one outstanding evaluation: the dispatched work item, the
// worker it was granted to, and the virtual-time deadline after which
// the master presumes the work lost and resubmits a clone. done marks
// leases settled (result accepted, or expired and reissued) so stale
// entries in the deadline queue are skipped.
type lease struct {
	item     *workItem
	worker   int
	deadline des.Time
	done     bool
}

// RunAsync executes the asynchronous, master-slave Borg MOEA on the
// virtual cluster and returns its timing and search results.
//
// Protocol (Figure 2 of the paper): the master seeds every worker with
// one solution; thereafter, whenever a worker returns an evaluated
// solution the master is held for T_C (receive) + T_A (process result,
// generate next offspring) + T_C (send) and the worker immediately
// receives new work. Workers evaluate (T_F) and send back. The run
// ends when N evaluations have been accepted; T_P is the virtual time
// of the N-th acceptance.
//
// Fault tolerance: every dispatched evaluation is tracked as a lease.
// When a lease outlives Config.LeaseTimeout the master presumes the
// worker dead, clones the unevaluated solution and re-enqueues it for
// the next live worker; the late original — if the worker was merely
// slow, hung, or its result got lost and resent — is recognized by its
// lease id and discarded as a duplicate, so each work chain is accepted
// at most once. Recovered workers re-register via tagHello (pushed by
// the fault injector's transition hook) and rejoin the pool. With a
// nil/empty fault plan and LeaseTimeout 0 the run is bit-for-bit
// identical to the original non-fault-tolerant driver: the lease table
// consumes no randomness and adds no virtual-time charges.
func RunAsync(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New()
	installTrace(eng, &cfg)
	cl := cluster.New(eng, cluster.Config{Nodes: cfg.Processors, Seed: cfg.Seed})
	inj := attachFaults(cl, &cfg)

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	meters := newRunMeters(cfg.Metrics)
	masterRng := rng.New(cfg.Seed ^ 0x6d617374) // "mast"
	meter := &taMeter{dist: cfg.TA, rng: masterRng, capture: cfg.CaptureTimings, hist: meters.ta}
	tcSum, tcN := 0.0, uint64(0)
	sampleTC := func() float64 {
		tc := cfg.TC.Sample(masterRng)
		tcSum += tc
		tcN++
		meters.tc.Observe(tc)
		return tc
	}

	var elapsedAtN float64
	completed := uint64(0)

	recs := newRecorders(&cfg)
	startWorkers(eng, cl, &cfg, recs)

	// Master process.
	master := cl.Node(0)
	eng.Go("master", func(p *des.Process) {
		// Lease table. Workers cycle idle → busy (one outstanding lease
		// each) → idle; a worker whose lease expires is presumed dead
		// until it shows a sign of life (a result, or a tagHello after
		// recovery). pending holds work awaiting a live worker; leaseQ
		// is FIFO with nondecreasing deadlines (the timeout is constant
		// and grants are time-ordered), so the front is always the next
		// expiry — no heap needed.
		state := make([]int8, cfg.Processors)
		leaseOf := make([]*lease, cfg.Processors)
		probes := make([]int8, cfg.Processors)
		var idleQ []int
		var pending []*workItem
		var leaseQ []*lease
		outstanding := make(map[uint64]*lease)
		var nextID uint64
		busyCount := 0
		// maxProbes bounds last-resort sends to presumed-dead workers
		// (below), so a run with permanently dead workers still
		// terminates instead of probing forever.
		const maxProbes = 2

		newItem := func(s *core.Solution) *workItem {
			nextID++
			return &workItem{id: nextID, s: s}
		}
		grant := func(w int, item *workItem) {
			master.HoldBusy(p, sampleTC(), "comm")
			master.Send(w, tagEvaluate, item)
			l := &lease{item: item, worker: w}
			leaseOf[w] = l
			state[w] = wsBusy
			outstanding[item.id] = l
			busyCount++
			if cfg.LeaseTimeout > 0 {
				l.deadline = p.Now() + cfg.LeaseTimeout
				leaseQ = append(leaseQ, l)
			}
		}
		release := func(l *lease) {
			if l.done {
				return
			}
			l.done = true
			delete(outstanding, l.item.id)
			if leaseOf[l.worker] == l {
				leaseOf[l.worker] = nil
			}
			busyCount--
		}
		// lose presumes a leased evaluation dead and re-enqueues a
		// clone under a fresh id. Removing the old id from outstanding
		// before the clone is granted is what makes double-accept
		// impossible: at most one id per work chain is ever live.
		lose := func(l *lease) {
			release(l)
			res.LostEvaluations++
			res.Resubmissions++
			meters.resub.Inc()
			pending = append(pending, newItem(l.item.s.Clone()))
		}
		markIdle := func(w int) {
			probes[w] = 0
			if state[w] == wsIdle {
				return
			}
			state[w] = wsIdle
			idleQ = append(idleQ, w)
		}
		dispatch := func() {
			for len(pending) > 0 && len(idleQ) > 0 {
				w := idleQ[0]
				idleQ = idleQ[1:]
				if state[w] != wsIdle {
					continue
				}
				item := pending[0]
				pending = pending[1:]
				grant(w, item)
			}
			// Last resort: work remains but every worker is presumed
			// dead. Probe them (bounded per death episode) in case a
			// recovery hello was lost to a lossy link.
			if cfg.LeaseTimeout > 0 && busyCount == 0 {
				for w := 1; w < cfg.Processors && len(pending) > 0; w++ {
					if state[w] == wsDead && probes[w] < maxProbes {
						probes[w]++
						item := pending[0]
						pending = pending[1:]
						grant(w, item)
					}
				}
			}
		}
		expireDue := func(now des.Time) {
			for len(leaseQ) > 0 {
				l := leaseQ[0]
				if l.done {
					leaseQ = leaseQ[1:]
					continue
				}
				if l.deadline > now {
					break
				}
				leaseQ = leaseQ[1:]
				w := l.worker
				meters.leaseExp.Inc()
				eng.Emit("lease.expire", "master", fmt.Sprintf("worker=%d id=%d", w, l.item.id))
				lose(l)
				state[w] = wsDead
			}
		}
		// receive blocks for the next message, expiring leases whose
		// deadlines pass while waiting. With no active leases (or lease
		// expiry disabled) it degenerates to a plain blocking Recv.
		receive := func() *cluster.Message {
			for {
				for len(leaseQ) > 0 && leaseQ[0].done {
					leaseQ = leaseQ[1:]
				}
				if cfg.LeaseTimeout <= 0 || len(leaseQ) == 0 {
					return master.Recv(p)
				}
				if dl := leaseQ[0].deadline; dl > p.Now() {
					if msg, ok := master.RecvTimeout(p, dl-p.Now()); ok {
						return msg
					}
				}
				expireDue(p.Now())
				dispatch()
			}
		}

		// Seed every worker with an initial solution.
		for w := 1; w < cfg.Processors; w++ {
			var s *core.Solution
			ta := meter.measure(func() { s = b.Suggest() })
			master.HoldBusy(p, ta, "algo")
			grant(w, newItem(s))
		}
		// Steady state: receive, process, resend.
		for completed < cfg.Evaluations {
			msg := receive()
			meters.queueWait.Observe(p.Now() - msg.ArriveAt)
			master.HoldBusy(p, sampleTC(), "comm")
			if msg.Tag == tagHello {
				meters.hellos.Inc()
				// A recovered worker re-registered: whatever it held
				// died with the crash.
				if l := leaseOf[msg.From]; l != nil && !l.done {
					lose(l)
				}
				markIdle(msg.From)
				dispatch()
				continue
			}
			item := msg.Payload.(*workItem)
			l, ok := outstanding[item.id]
			if !ok || l.worker != msg.From {
				// Late result of an expired (already reissued) lease.
				res.DuplicateResults++
				meters.dups.Inc()
				if state[msg.From] != wsBusy {
					markIdle(msg.From)
				}
				dispatch()
				continue
			}
			release(l)
			probes[msg.From] = 0
			var next *core.Solution
			ta := meter.measure(func() {
				b.Accept(item.s)
				next = b.Suggest()
			})
			master.HoldBusy(p, ta, "algo")
			completed++
			meters.evals.Inc()
			if cfg.CheckpointEvery > 0 && completed%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
				meters.checkpoints.Inc()
				cfg.OnCheckpoint(p.Now(), b)
			}
			if completed >= cfg.Evaluations {
				elapsedAtN = p.Now()
				break
			}
			// Fault-free, pending holds exactly the fresh offspring and
			// this reduces to the original "send next to msg.From".
			pending = append(pending, newItem(next))
			item2 := pending[0]
			pending = pending[1:]
			grant(msg.From, item2)
			dispatch()
		}
		// Tear down: stop every worker. Workers mid-evaluation will
		// see the stop after returning their (discarded) result.
		for w := 1; w < cfg.Processors; w++ {
			master.Send(w, tagStop, nil)
		}
		// Drain any in-flight results so the mailbox is empty.
		for w := 1; w < cfg.Processors; w++ {
			if master.InboxLen() == 0 {
				break
			}
			master.Recv(p)
		}
		inj.Stop()
	})

	runEngine(eng, cl, inj, &cfg, res)

	res.ElapsedTime = elapsedAtN
	res.Evaluations = completed
	res.Completed = completed >= cfg.Evaluations
	res.MasterBusy = master.BusyTime()
	if elapsedAtN > 0 {
		res.MasterUtilization = res.MasterBusy / elapsedAtN
		sum := 0.0
		for w := 1; w < cfg.Processors; w++ {
			sum += cl.Node(w).BusyTime() / elapsedAtN
		}
		res.MeanWorkerUtilization = sum / float64(cfg.Processors-1)
	}
	res.MeanTA = meter.mean()
	res.TASamples = meter.samples
	mergeTF(res, recs...)
	if tcN > 0 {
		res.MeanTC = tcSum / float64(tcN)
	}
	return res, nil
}
