package parallel

import (
	"fmt"

	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/rng"
)

// RunAsync executes the asynchronous, master-slave Borg MOEA on the
// virtual cluster and returns its timing and search results.
//
// Protocol (Figure 2 of the paper): the master seeds every worker with
// one solution; thereafter, whenever a worker returns an evaluated
// solution the master is held for T_C (receive) + T_A (process result,
// generate next offspring) + T_C (send) and the worker immediately
// receives new work. Workers evaluate (T_F) and send back. The run
// ends when N evaluations have been accepted; T_P is the virtual time
// of the N-th acceptance.
func RunAsync(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New()
	if cfg.TraceHook != nil {
		eng.SetTrace(func(ev des.TraceEvent) {
			cfg.TraceHook(ev.At, ev.Kind, ev.Actor, ev.Detail)
		})
	}
	cl := cluster.New(eng, cluster.Config{Nodes: cfg.Processors, Seed: cfg.Seed})

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	masterRng := rng.New(cfg.Seed ^ 0x6d617374) // "mast"
	meter := &taMeter{dist: cfg.TA, rng: masterRng, capture: cfg.CaptureTimings}
	tcSum, tcN := 0.0, uint64(0)
	sampleTC := func() float64 {
		tc := cfg.TC.Sample(masterRng)
		tcSum += tc
		tcN++
		return tc
	}

	var elapsedAtN float64
	completed := uint64(0)

	// Worker processes: evaluate, hold T_F, return.
	tfSum, tfN := 0.0, uint64(0)
	for w := 1; w < cfg.Processors; w++ {
		w := w
		node := cl.Node(w)
		wRng := rng.New(cfg.Seed ^ (uint64(w) * 0x9e3779b97f4a7c15))
		straggler := cfg.StragglerFraction > 0 &&
			float64(w-1) < cfg.StragglerFraction*float64(cfg.Processors-1)
		eng.Go(fmt.Sprintf("worker%d", w), func(p *des.Process) {
			for {
				msg := node.Recv(p)
				if msg.Tag == tagStop {
					return
				}
				s := msg.Payload.(*core.Solution)
				core.EvaluateSolution(cfg.Problem, s)
				tf := cfg.TF.Sample(wRng)
				if straggler {
					tf *= cfg.StragglerFactor
				}
				tfSum += tf
				tfN++
				if cfg.CaptureTimings {
					res.TFSamples = append(res.TFSamples, tf)
				}
				node.HoldBusy(p, tf, "eval")
				node.Send(0, tagResult, s)
			}
		})
	}

	// Master process.
	master := cl.Node(0)
	eng.Go("master", func(p *des.Process) {
		// Seed every worker with an initial solution.
		for w := 1; w < cfg.Processors; w++ {
			var s *core.Solution
			ta := meter.measure(func() { s = b.Suggest() })
			master.HoldBusy(p, ta, "algo")
			master.HoldBusy(p, sampleTC(), "comm")
			master.Send(w, tagEvaluate, s)
		}
		// Steady state: receive, process, resend.
		for completed < cfg.Evaluations {
			msg := master.Recv(p)
			master.HoldBusy(p, sampleTC(), "comm")
			s := msg.Payload.(*core.Solution)
			var next *core.Solution
			ta := meter.measure(func() {
				b.Accept(s)
				next = b.Suggest()
			})
			master.HoldBusy(p, ta, "algo")
			completed++
			if cfg.CheckpointEvery > 0 && completed%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
				cfg.OnCheckpoint(p.Now(), b)
			}
			if completed >= cfg.Evaluations {
				elapsedAtN = p.Now()
				break
			}
			master.HoldBusy(p, sampleTC(), "comm")
			master.Send(msg.From, tagEvaluate, next)
		}
		// Tear down: stop every worker. Workers mid-evaluation will
		// see the stop after returning their (discarded) result.
		for w := 1; w < cfg.Processors; w++ {
			master.Send(w, tagStop, nil)
		}
		// Drain any in-flight results so the mailbox is empty.
		for w := 1; w < cfg.Processors; w++ {
			if master.InboxLen() == 0 {
				break
			}
			master.Recv(p)
		}
	})

	eng.Run()
	eng.Shutdown()

	res.ElapsedTime = elapsedAtN
	res.Evaluations = completed
	res.MasterBusy = master.BusyTime()
	if elapsedAtN > 0 {
		res.MasterUtilization = res.MasterBusy / elapsedAtN
		sum := 0.0
		for w := 1; w < cfg.Processors; w++ {
			sum += cl.Node(w).BusyTime() / elapsedAtN
		}
		res.MeanWorkerUtilization = sum / float64(cfg.Processors-1)
	}
	res.MeanTA = meter.mean()
	res.TASamples = meter.samples
	if tfN > 0 {
		res.MeanTF = tfSum / float64(tfN)
	}
	if tcN > 0 {
		res.MeanTC = tcSum / float64(tcN)
	}
	return res, nil
}
