package parallel

import (
	"borgmoea/internal/des"
	"borgmoea/internal/obs"
)

// Metric names shared by all five drivers, so dashboards and the
// /debug/vars endpoint read the same keys regardless of transport.
const (
	mEvaluations = "master.evaluations"
	mResub       = "master.resubmissions"
	mLeaseExpiry = "master.lease_expiries"
	mDuplicates  = "master.duplicate_results"
	mHellos      = "master.worker_hellos"
	mJoins       = "master.worker_joins"
	mDeaths      = "master.worker_deaths"
	mWorkersLive = "master.workers_live"
	mTA          = "master.ta_seconds"
	mTC          = "master.tc_seconds"
	mQueueWait   = "master.queue_wait_seconds"
	mTF          = "worker.tf_seconds"
	mGenerations = "master.generations"
	mMigrants    = "master.migrants"
	mCheckpoints = "master.checkpoints"
)

// runMeters resolves every instrument a driver records into exactly
// once (registry lookups take a lock), so the master loop pays one
// predictable nil check per record. The zero value — from a nil
// registry — is fully inert.
type runMeters struct {
	evals, resub, leaseExp, dups, hellos *obs.Counter
	joins, deaths                        *obs.Counter
	generations, migrants, checkpoints   *obs.Counter
	live                                 *obs.Gauge
	ta, tc, tf, queueWait                *obs.Histogram
}

func newRunMeters(reg *obs.Registry) runMeters {
	return runMeters{
		evals:       reg.Counter(mEvaluations),
		resub:       reg.Counter(mResub),
		leaseExp:    reg.Counter(mLeaseExpiry),
		dups:        reg.Counter(mDuplicates),
		hellos:      reg.Counter(mHellos),
		joins:       reg.Counter(mJoins),
		deaths:      reg.Counter(mDeaths),
		generations: reg.Counter(mGenerations),
		migrants:    reg.Counter(mMigrants),
		checkpoints: reg.Counter(mCheckpoints),
		live:        reg.Gauge(mWorkersLive),
		ta:          reg.Histogram(mTA, nil),
		tc:          reg.Histogram(mTC, nil),
		tf:          reg.Histogram(mTF, nil),
		queueWait:   reg.Histogram(mQueueWait, nil),
	}
}

// installTrace wires the DES engine's trace stream into the run's
// sinks: the user's TraceHook and/or the obs event journal. With
// neither attached the engine keeps its nil hook and emits nothing.
func installTrace(eng *des.Engine, cfg *Config) {
	hook, rec := cfg.TraceHook, cfg.Events
	if hook == nil && rec == nil {
		return
	}
	eng.SetTrace(func(ev des.TraceEvent) {
		if hook != nil {
			hook(ev.At, ev.Kind, ev.Actor, ev.Detail)
		}
		rec.Record(obs.Event{TS: ev.At, Kind: ev.Kind, Actor: ev.Actor, Detail: ev.Detail})
	})
}
