package parallel

import (
	"borgmoea/internal/des"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
)

// Metric name aliases: the canonical vocabulary lives in
// internal/master (the protocol counters are recorded by the shared
// state machine); these short forms keep the drivers and tests
// readable.
const (
	mEvaluations = master.MetricEvaluations
	mResub       = master.MetricResub
	mLeaseExpiry = master.MetricLeaseExpiry
	mDuplicates  = master.MetricDuplicates
	mHellos      = master.MetricHellos
	mJoins       = master.MetricJoins
	mDeaths      = master.MetricDeaths
	mWorkersLive = master.MetricWorkersLive
	mTA          = master.MetricTA
	mTC          = master.MetricTC
	mQueueWait   = master.MetricQueueWait
	mTF          = master.MetricTF
	mGenerations = master.MetricGenerations
	mMigrants    = master.MetricMigrants
	mCheckpoints = master.MetricCheckpoints
)

// installTrace wires the DES engine's trace stream into the run's
// sinks: the user's TraceHook and/or the obs event journal. With
// neither attached the engine keeps its nil hook and emits nothing.
func installTrace(eng *des.Engine, cfg *Config) {
	hook, rec := cfg.TraceHook, cfg.Events
	if hook == nil && rec == nil {
		return
	}
	eng.SetTrace(func(ev des.TraceEvent) {
		if hook != nil {
			hook(ev.At, ev.Kind, ev.Actor, ev.Detail)
		}
		rec.Record(obs.Event{TS: ev.At, Kind: ev.Kind, Actor: ev.Actor, Detail: ev.Detail})
	})
}
