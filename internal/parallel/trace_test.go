package parallel

import (
	"bytes"
	"math"
	"testing"

	"borgmoea/internal/master"
	"borgmoea/internal/obs"
)

// traceForestJSON serializes a forest in its canonical byte-comparable
// form.
func traceForestJSON(t testing.TB, f obs.Forest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reconstructForest round-trips the BMEL log and trace sidecar through
// their on-disk serializations and rebuilds the forest offline — the
// exact path cmd/borgtrace takes.
func reconstructForest(t testing.TB, log *master.Log, col *obs.Collector) obs.Forest {
	t.Helper()
	var lb bytes.Buffer
	if _, err := log.WriteTo(&lb); err != nil {
		t.Fatal(err)
	}
	diskLog, err := master.ReadLog(&lb)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if _, err := col.TraceLog().WriteTo(&tb); err != nil {
		t.Fatal(err)
	}
	sidecar, err := obs.ReadTraceLog(&tb)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := obs.TracesFromLog(diskLog, sidecar)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

// TestAsyncTraceReconstruction runs the virtual-time driver with full
// tracing and pins the PR's replayability claim: the BMEL event log
// plus the trace sidecar reconstruct the live collector's forest
// byte-for-byte, and the per-term attribution reproduces the driver's
// configured model constants exactly (virtual time is noiseless).
func TestAsyncTraceReconstruction(t *testing.T) {
	const n = 3000
	cfg := testConfig(8, n)
	log := master.NewLog()
	col := obs.NewCollector(obs.CollectorConfig{RunID: cfg.Seed, Rate: 1})
	cfg.Protocol = log
	cfg.Trace = col

	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != n {
		t.Fatalf("completed %d evaluations, want %d", res.Evaluations, n)
	}

	live := col.Forest()
	att := live.Attribution()
	if att.Evals < n {
		t.Fatalf("attribution covers %d evals, want at least the budget %d", att.Evals, n)
	}
	// The DES samples every model term from constant distributions, so
	// the traced means must equal the configuration exactly.
	for _, tc := range []struct {
		name string
		term obs.TermStats
		want float64
	}{
		{"tf", att.TF, 0.001},
		{"ta", att.TA, 0.000023},
		{"tc.send", att.TCSend, 0.000006},
		{"tc.recv", att.TCRecv, 0.000006},
	} {
		if tc.term.N == 0 {
			t.Fatalf("%s never observed", tc.name)
		}
		if math.Abs(tc.term.Mean-tc.want) > 1e-12 {
			t.Fatalf("%s mean %v, want the configured constant %v", tc.name, tc.term.Mean, tc.want)
		}
	}
	if att.Wait.N == 0 {
		t.Fatal("queue wait never observed")
	}

	if got, want := traceForestJSON(t, reconstructForest(t, log, col)), traceForestJSON(t, live); !bytes.Equal(got, want) {
		t.Fatal("offline reconstruction differs from the live forest")
	}
}

// TestAsyncTraceSampling checks head-based sampling: a low rate emits
// a proportional subset of traces, emission is consistent between live
// and reconstructed forests, and attribution still covers every
// evaluation (sampling gates emission, not measurement).
func TestAsyncTraceSampling(t *testing.T) {
	const n = 2000
	cfg := testConfig(8, n)
	log := master.NewLog()
	col := obs.NewCollector(obs.CollectorConfig{RunID: cfg.Seed, Rate: 0.1})
	cfg.Protocol = log
	cfg.Trace = col
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}

	live := col.Forest()
	if len(live) == 0 || len(live) >= n/2 {
		t.Fatalf("rate 0.1 emitted %d of ~%d traces", len(live), n)
	}
	if att := live.Attribution(); att.Evals != len(live) {
		t.Fatalf("attribution saw %d evals for %d emitted roots", att.Evals, len(live))
	}
	if got, want := traceForestJSON(t, reconstructForest(t, log, col)), traceForestJSON(t, live); !bytes.Equal(got, want) {
		t.Fatal("sampled reconstruction differs from the live forest")
	}
}

// TestAsyncTraceDisabledUnchanged pins the zero-cost-off claim at the
// protocol level: a run with tracing disabled produces the identical
// canonical event sequence and final archive as one never configured
// for tracing (the Trace field changes measurement, never decisions).
func TestAsyncTraceDisabledUnchanged(t *testing.T) {
	const n = 1500
	plain := testConfig(8, n)
	plainLog := master.NewLog()
	plain.Protocol = plainLog
	plainRes, err := RunAsync(plain)
	if err != nil {
		t.Fatal(err)
	}

	traced := testConfig(8, n)
	tracedLog := master.NewLog()
	traced.Protocol = tracedLog
	traced.Trace = obs.NewCollector(obs.CollectorConfig{RunID: 42, Rate: 1})
	tracedRes, err := RunAsync(traced)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plainLog.CanonicalBytes(), tracedLog.CanonicalBytes()) {
		t.Fatal("tracing changed the canonical protocol sequence")
	}
	if plainRes.ElapsedTime != tracedRes.ElapsedTime {
		t.Fatalf("tracing changed virtual elapsed time: %v vs %v", plainRes.ElapsedTime, tracedRes.ElapsedTime)
	}
}

// BenchmarkAsyncTraced layers full-rate distributed tracing over the
// instrumented run — the CI bench-trace job diffs it against
// BenchmarkAsyncInstrumented to enforce the <5% overhead budget.
func BenchmarkAsyncTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 5000)
		cfg.Seed = uint64(i + 1)
		cfg.Metrics = obs.NewRegistry()
		cfg.Trace = obs.NewCollector(obs.CollectorConfig{RunID: cfg.Seed, Rate: 1})
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
