package parallel

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
	"borgmoea/internal/wire"
)

// DistributedConfig parameterizes the network side of a distributed
// master-slave run (the algorithm side stays in Config).
type DistributedConfig struct {
	// Listen is the TCP address the master binds ("":7070", or
	// "127.0.0.1:0" to pick a free port). Ignored when Listener is
	// set.
	Listen string
	// Listener, when non-nil, is a pre-bound listener the master
	// adopts (tests and in-process examples bind port 0 themselves to
	// learn the address before starting workers). The master closes
	// it at the end of the run either way.
	Listener net.Listener
	// LeaseTimeout bounds how long the master waits for a dispatched
	// evaluation before presuming it lost and resubmitting a clone —
	// the wall-clock analogue of Config.LeaseTimeout. 0 falls back to
	// Config.LeaseTimeout (seconds) and then to 30s; < 0 disables
	// lease expiry (a dead connection still resubmits immediately).
	LeaseTimeout time.Duration
	// Conn tunes handshake, heartbeat, idle and write timeouts shared
	// by every accepted connection.
	Conn wire.Options
	// WallLimit aborts an unfinishable run (e.g. every worker gone
	// for good) after this much wall time; 0 means no limit. A run
	// that hits it returns Completed == false.
	WallLimit time.Duration
	// Logf, when set, receives worker lifecycle messages.
	Logf func(format string, args ...any)
}

func (d *DistributedConfig) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// distSession is one live worker connection as the master sees it —
// pure transport state. Protocol state (lease, lifecycle, idle queue)
// lives in the shared state machine; the session only maps a worker id
// to the conn that currently speaks for it.
type distSession struct {
	id   uint64
	conn *wire.Conn
	gone bool // connection closed or replaced; terminal
}

type distEventKind uint8

const (
	distJoin distEventKind = iota
	distMsg
	distDead
)

type distEvent struct {
	kind distEventKind
	sess *distSession
	msg  wire.Message
	err  error
}

// distAlg adapts the Borg core for the distributed driver, metering
// Accept and Suggest separately (the lazy policy splits them across
// the result and dispatch paths); per completed evaluation they sum to
// the paper's T_A.
type distAlg struct {
	b     *core.Borg
	meter *taMeter
	trace *obs.Collector // nil-safe
	// curItem is the lease id of the result being folded in (see
	// desAlg.curItem); the lazy policy's dispatch-path Suggest is not
	// attributed to any one evaluation.
	curItem uint64
}

func (a *distAlg) Suggest() *core.Solution {
	var s *core.Solution
	a.meter.measure(func() { s = a.b.Suggest() })
	return s
}

func (a *distAlg) Accept(s *core.Solution) {
	ta := a.meter.measure(func() { a.b.Accept(s) })
	a.trace.ObserveTA(a.curItem, ta)
}

func (a *distAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	a.Accept(s)
	return a.Suggest()
}

// StageAccept is the cheap half of a deferred accept (Config.DeferArchive).
func (a *distAlg) StageAccept(s *core.Solution) { a.b.StageAccept(s) }

// ApplyStaged is the deferred archive insertion, metered as T_A after
// the grant frame went out.
func (a *distAlg) ApplyStaged() {
	ta := a.meter.measure(func() { a.b.ApplyStaged() })
	a.trace.ObserveTA(a.curItem, ta)
}

// RunAsyncDistributed executes the asynchronous master-slave Borg MOEA
// over real TCP: the master listens, borgd workers dial in, and the
// shared lease/resubmission protocol recovers evaluations lost to
// killed or partitioned workers. The master remains a single event
// loop — the paper's property that the algorithm's critical section is
// serial — running the same state machine (internal/master) as the
// virtual-time drivers, while the network layer feeds it joins,
// results and deaths.
//
// Differences from the virtual-time drivers: the worker pool is
// dynamic (Config.Processors is ignored; Result.Processors reports
// 1 + the peak concurrent worker count), T_F is whatever the workers
// actually take (plus any artificial delay configured worker-side),
// and faults are not injected — real workers fail for real. A worker
// that reconnects re-registers via its handshake Hello, which retires
// its old lease exactly like the virtual drivers' tagHello path.
func RunAsyncDistributed(cfg Config, dcfg DistributedConfig) (*Result, error) {
	if !cfg.Fault.Empty() {
		return nil, fmt.Errorf("parallel: fault injection requires a virtual-time driver (RunAsync/RunSync); distributed workers fail for real")
	}
	if cfg.Problem == nil {
		return nil, fmt.Errorf("parallel: Problem is required")
	}
	if cfg.Evaluations == 0 {
		return nil, fmt.Errorf("parallel: Evaluations must be positive")
	}
	if dcfg.Conn.Metrics == nil {
		// Connection telemetry lands in the run's registry by default.
		dcfg.Conn.Metrics = cfg.Metrics
	}
	adv := cfg.Advisor
	// P is dynamic here (inferred from live workers via SetLive); only
	// the budget is known up front.
	adv.Configure(0, cfg.Evaluations)
	if adv != nil && dcfg.Conn.OnRTT == nil {
		// Heartbeat RTTs stand in for T_C when there is no way to
		// observe one-way latency directly.
		dcfg.Conn.OnRTT = adv.ObserveRTT
	}
	leaseTimeout := dcfg.LeaseTimeout
	if leaseTimeout == 0 && cfg.LeaseTimeout > 0 {
		leaseTimeout = time.Duration(cfg.LeaseTimeout * float64(time.Second))
	}
	if leaseTimeout == 0 {
		leaseTimeout = 30 * time.Second
	}

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	listener := dcfg.Listener
	if listener == nil {
		if dcfg.Listen == "" {
			return nil, fmt.Errorf("parallel: distributed run needs a Listen address or a Listener")
		}
		listener, err = net.Listen("tcp", dcfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("parallel: listen: %w", err)
		}
	}
	defer listener.Close()

	welcome := wire.Welcome{
		Problem:         cfg.Problem.Name(),
		NumVars:         uint32(cfg.Problem.NumVars()),
		NumObjs:         uint32(cfg.Problem.NumObjs()),
		HeartbeatMillis: uint32(dcfg.Conn.Heartbeat.Milliseconds()),
	}

	events := make(chan distEvent, 256)
	done := make(chan struct{})
	defer close(done)
	push := func(e distEvent) {
		select {
		case events <- e:
		case <-done:
		}
	}

	// Accept loop: handshake each connection off the main loop, then
	// feed its messages to the master as events.
	var nextWorkerID atomic.Uint64
	go func() {
		for {
			nc, err := listener.Accept()
			if err != nil {
				return // listener closed: run over
			}
			go func() {
				var id uint64
				conn, _, err := wire.ServerHandshake(nc, dcfg.Conn, func(h wire.Hello) (*wire.Welcome, error) {
					w := welcome
					if h.WorkerID != 0 {
						w.WorkerID = h.WorkerID // reconnect keeps its identity
					} else {
						w.WorkerID = nextWorkerID.Add(1)
					}
					id = w.WorkerID
					return &w, nil
				})
				if err != nil {
					return
				}
				conn.StartHeartbeat(0)
				s := &distSession{id: id, conn: conn}
				push(distEvent{kind: distJoin, sess: s})
				for {
					m, err := conn.Recv()
					if err != nil {
						push(distEvent{kind: distDead, sess: s, err: err})
						return
					}
					push(distEvent{kind: distMsg, sess: s, msg: m})
				}
			}()
		}
	}()

	// Master side: the shared state machine on the wall clock, lazy
	// offspring generation (the worker pool is dynamic, so offspring
	// are suggested on demand at dispatch, bounded by the remaining
	// budget).
	res := &Result{Final: b}
	meters := master.NewMeters(cfg.Metrics)
	journal := cfg.Events
	meter := &taMeter{dist: cfg.TA, rng: rng.New(cfg.Seed ^ 0x6d617374), capture: cfg.CaptureTimings, hist: meters.TA, adv: adv}
	byID := make(map[uint64]*distSession)
	tfSum, tfN := 0.0, uint64(0)
	start := time.Now()
	var elapsedAtN float64
	since := func() float64 { return time.Since(start).Seconds() }
	record := func(ev obs.Event) {
		if journal != nil {
			ev.TS = since()
			journal.Record(ev)
		}
	}

	coreTimeout := 0.0
	if leaseTimeout > 0 {
		coreTimeout = leaseTimeout.Seconds()
	}
	alg := &distAlg{b: b, meter: meter, trace: cfg.Trace}
	mcfg := master.Config{
		Budget:       cfg.Evaluations,
		LeaseTimeout: coreTimeout,
		Policy:       master.LazyOffspring,
		DeferApply:   cfg.DeferArchive,
		// Workers hold deep copies of granted work (frames encode the
		// solution), so an expired lease's wrapper and Solution can be
		// reissued in place instead of cloned.
		ReuseOnResubmit: true,
		Alg:             alg,
		Meters:          meters,
		Emit:            func(kind, detail string) { record(obs.Event{Kind: kind, Actor: "master", Detail: detail}) },
		Log:             cfg.Protocol,
		OnAccept: func(n uint64) {
			if cfg.CheckpointEvery > 0 && n%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
				meters.Checkpoints.Inc()
				cfg.OnCheckpoint(since(), b)
			}
		},
	}
	if adv != nil {
		mcfg.OnAcceptFrom = adv.ObserveAccept
	}
	if cfg.Trace != nil {
		mcfg.Tracer = cfg.Trace
	}
	if q := cfg.Quality; q != nil {
		q.Attach(b)
		mcfg.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	m := master.NewCore(mcfg)

	// drop tears down a session's transport; the state machine hears
	// about the death separately (EvGone, or the retire inside a
	// replacing EvJoin).
	drop := func(s *distSession, why error) {
		if s.gone {
			return
		}
		s.gone = true
		record(obs.Event{Kind: "worker.dead", Actor: fmt.Sprintf("worker%d", s.id), Detail: fmt.Sprintf("%v", why)})
		s.conn.Close()
		if byID[s.id] == s {
			delete(byID, s.id)
		}
		adv.SetLive(len(byID))
		dcfg.logf("parallel: worker %d gone: %v", s.id, why)
	}
	var exec func(acts []master.Action)
	exec = func(acts []master.Action) {
		// Handle reuses its action slice; copy before executing, because
		// a failed grant send re-enters Handle mid-iteration.
		acts = append([]master.Action(nil), acts...)
		for _, a := range acts {
			switch a.Kind {
			case master.ActGrant:
				s := byID[uint64(a.Worker)]
				if s == nil || s.gone {
					continue
				}
				ev := &wire.Evaluate{
					Lease:    a.Item.ID,
					SolID:    a.Item.S.ID,
					Operator: int32(a.Item.S.Operator),
					Vars:     a.Item.S.Vars,
					Trace:    a.Item.Trace,
				}
				sendStart := time.Now()
				if err := s.conn.Send(ev); err != nil {
					drop(s, err)
					exec(m.Handle(master.Event{Kind: master.EvGone, Worker: a.Worker, At: since()}))
					continue
				}
				cfg.Trace.ObserveTCSend(a.Item.ID, time.Since(sendStart).Seconds())
			case master.ActStop:
				if s := byID[uint64(a.Worker)]; s != nil && !s.gone {
					_ = s.conn.Send(wire.Stop{})
				}
			case master.ActComplete:
				elapsedAtN = since()
				cfg.Protocol.SetElapsed(elapsedAtN)
			}
		}
	}

	var tickC <-chan time.Time
	if leaseTimeout > 0 {
		interval := leaseTimeout / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	var wallC <-chan time.Time
	if dcfg.WallLimit > 0 {
		wall := time.NewTimer(dcfg.WallLimit)
		defer wall.Stop()
		wallC = wall.C
	}

loop:
	for !m.Done() {
		select {
		case e := <-events:
			switch e.kind {
			case distJoin:
				if old := byID[e.sess.id]; old != nil && old != e.sess {
					// Reconnect-with-hello: the old incarnation's work
					// died with it; the machine retires it inside EvJoin.
					drop(old, fmt.Errorf("replaced by reconnect"))
				}
				byID[e.sess.id] = e.sess
				adv.SetLive(len(byID))
				record(obs.Event{Kind: "worker.join", Actor: fmt.Sprintf("worker%d", e.sess.id), Detail: e.sess.conn.RemoteAddr().String()})
				dcfg.logf("parallel: worker %d joined from %s (%d live)", e.sess.id, e.sess.conn.RemoteAddr(), len(byID))
				exec(m.Handle(master.Event{Kind: master.EvJoin, Worker: int(e.sess.id), At: since()}))
			case distDead:
				if e.sess.gone {
					break // already torn down (replaced, or send failure)
				}
				drop(e.sess, e.err)
				exec(m.Handle(master.Event{Kind: master.EvGone, Worker: int(e.sess.id), At: since()}))
			case distMsg:
				s := e.sess
				if s.gone {
					break
				}
				msg, ok := e.msg.(*wire.Result)
				if !ok {
					break // nothing else is expected after the handshake
				}
				// Fill in the solution and meter T_F only when the
				// machine will accept this result (a live lease granted
				// to this worker); late duplicates are discarded inside.
				if worker, item, live := m.Lease(msg.Lease); live && worker == int(s.id) {
					if len(msg.Objs) != cfg.Problem.NumObjs() {
						drop(s, fmt.Errorf("result with %d objectives, want %d", len(msg.Objs), cfg.Problem.NumObjs()))
						exec(m.Handle(master.Event{Kind: master.EvGone, Worker: int(s.id), At: since()}))
						break
					}
					sol := item.S
					sol.Objs = msg.Objs
					sol.Constrs = msg.Constrs
					evalSec := float64(msg.EvalNanos) / 1e9
					tfSum += evalSec
					tfN++
					meters.TF.ObserveExemplar(evalSec, sampledTraceID(item))
					adv.ObserveTF(int(s.id), evalSec)
					cfg.Trace.ObserveTF(item.ID, evalSec)
					alg.curItem = item.ID
					if journal != nil {
						// Reconstruct the worker's eval span master-side
						// from the reported duration.
						journal.Record(obs.Event{TS: since() - evalSec, Dur: evalSec, Kind: "eval", Actor: fmt.Sprintf("worker%d", s.id)})
					}
				}
				exec(m.Handle(master.Event{Kind: master.EvResult, Worker: int(s.id), Item: msg.Lease, At: since()}))
				// Deferred mode: the grant frame is on the wire; fold the
				// staged result in now (no-op when DeferArchive is off).
				m.Flush()
				// Quality cadence: route the trigger through the master
				// so the sample point lands in the BMEL log (replayable
				// even though this driver's clock is wall time).
				if q := cfg.Quality; q != nil && !m.Done() && q.Due(m.Completed(), since()) {
					exec(m.Handle(master.Event{Kind: master.EvQuality, Item: q.NextSeq(), At: since()}))
				}
			}
		case <-tickC:
			exec(m.Handle(master.Event{Kind: master.EvTick, At: since()}))
		case <-wallC:
			dcfg.logf("parallel: wall limit %v reached with %d/%d evaluations", dcfg.WallLimit, m.Completed(), cfg.Evaluations)
			break loop
		}
	}

	// Tear down: stop accepting, stop every worker. Stop is written
	// before the close, so a healthy worker reads it ahead of the FIN
	// and exits cleanly instead of reconnecting. (On a completed run
	// the machine's ActStop already said stop; the extra send on a
	// drained conn is harmless, and this sweep also covers wall-limit
	// exits.)
	listener.Close()
	for _, s := range byID {
		_ = s.conn.Send(wire.Stop{})
		s.conn.Close()
	}

	st := m.Stats()
	res.ElapsedTime = elapsedAtN
	if res.ElapsedTime == 0 {
		res.ElapsedTime = since()
	}
	res.Evaluations = st.Completed
	res.Completed = st.Completed >= cfg.Evaluations
	res.Resubmissions = st.Resubmissions
	res.LostEvaluations = st.Lost
	res.DuplicateResults = st.Duplicates
	res.Processors = m.Peak() + 1
	res.MasterBusy = meter.sum
	if res.ElapsedTime > 0 {
		res.MasterUtilization = res.MasterBusy / res.ElapsedTime
	}
	if st.Completed > 0 {
		// Accept and Suggest are metered separately here; per
		// completed evaluation they sum to the paper's T_A.
		res.MeanTA = meter.sum / float64(st.Completed)
	}
	res.TASamples = meter.samples
	if tfN > 0 {
		res.MeanTF = tfSum / float64(tfN)
	}
	return res, nil
}
