package parallel

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
	"borgmoea/internal/wire"
)

// DistributedConfig parameterizes the network side of a distributed
// master-slave run (the algorithm side stays in Config).
type DistributedConfig struct {
	// Listen is the TCP address the master binds ("":7070", or
	// "127.0.0.1:0" to pick a free port). Ignored when Listener is
	// set.
	Listen string
	// Listener, when non-nil, is a pre-bound listener the master
	// adopts (tests and in-process examples bind port 0 themselves to
	// learn the address before starting workers). The master closes
	// it at the end of the run either way.
	Listener net.Listener
	// LeaseTimeout bounds how long the master waits for a dispatched
	// evaluation before presuming it lost and resubmitting a clone —
	// the wall-clock analogue of Config.LeaseTimeout. 0 falls back to
	// Config.LeaseTimeout (seconds) and then to 30s; < 0 disables
	// lease expiry (a dead connection still resubmits immediately).
	LeaseTimeout time.Duration
	// Conn tunes handshake, heartbeat, idle and write timeouts shared
	// by every accepted connection.
	Conn wire.Options
	// WallLimit aborts an unfinishable run (e.g. every worker gone
	// for good) after this much wall time; 0 means no limit. A run
	// that hits it returns Completed == false.
	WallLimit time.Duration
	// Logf, when set, receives worker lifecycle messages.
	Logf func(format string, args ...any)
}

func (d *DistributedConfig) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// distSession is one live worker connection as the master sees it.
type distSession struct {
	id    uint64
	conn  *wire.Conn
	state int8 // wsIdle / wsBusy / wsDead (suspect: lease expired)
	lease *distLease
	gone  bool // connection declared dead; terminal
}

// distLease is one outstanding evaluation on the wall clock — the
// same invariants as the virtual-time lease table: at most one live
// lease id per work chain, FIFO nondecreasing deadlines, results
// accepted only from the leased worker.
type distLease struct {
	item     *workItem
	sess     *distSession
	deadline time.Time
	done     bool
}

type distEventKind uint8

const (
	distJoin distEventKind = iota
	distMsg
	distDead
)

type distEvent struct {
	kind distEventKind
	sess *distSession
	msg  wire.Message
	err  error
}

// RunAsyncDistributed executes the asynchronous master-slave Borg MOEA
// over real TCP: the master listens, borgd workers dial in, and the
// existing lease/resubmission protocol recovers evaluations lost to
// killed or partitioned workers. The master remains a single event
// loop — the paper's property that the algorithm's critical section is
// serial — while the network layer feeds it joins, results and deaths.
//
// Differences from the virtual-time drivers: the worker pool is
// dynamic (Config.Processors is ignored; Result.Processors reports
// 1 + the peak concurrent worker count), T_F is whatever the workers
// actually take (plus any artificial delay configured worker-side),
// and faults are not injected — real workers fail for real. A worker
// that reconnects re-registers via its handshake Hello, which retires
// its old lease exactly like the virtual drivers' tagHello path.
func RunAsyncDistributed(cfg Config, dcfg DistributedConfig) (*Result, error) {
	if !cfg.Fault.Empty() {
		return nil, fmt.Errorf("parallel: fault injection requires a virtual-time driver (RunAsync/RunSync); distributed workers fail for real")
	}
	if cfg.Problem == nil {
		return nil, fmt.Errorf("parallel: Problem is required")
	}
	if cfg.Evaluations == 0 {
		return nil, fmt.Errorf("parallel: Evaluations must be positive")
	}
	if dcfg.Conn.Metrics == nil {
		// Connection telemetry lands in the run's registry by default.
		dcfg.Conn.Metrics = cfg.Metrics
	}
	leaseTimeout := dcfg.LeaseTimeout
	if leaseTimeout == 0 && cfg.LeaseTimeout > 0 {
		leaseTimeout = time.Duration(cfg.LeaseTimeout * float64(time.Second))
	}
	if leaseTimeout == 0 {
		leaseTimeout = 30 * time.Second
	}

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	listener := dcfg.Listener
	if listener == nil {
		if dcfg.Listen == "" {
			return nil, fmt.Errorf("parallel: distributed run needs a Listen address or a Listener")
		}
		listener, err = net.Listen("tcp", dcfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("parallel: listen: %w", err)
		}
	}
	defer listener.Close()

	welcome := wire.Welcome{
		Problem:         cfg.Problem.Name(),
		NumVars:         uint32(cfg.Problem.NumVars()),
		NumObjs:         uint32(cfg.Problem.NumObjs()),
		HeartbeatMillis: uint32(dcfg.Conn.Heartbeat.Milliseconds()),
	}

	events := make(chan distEvent, 256)
	done := make(chan struct{})
	defer close(done)
	push := func(e distEvent) {
		select {
		case events <- e:
		case <-done:
		}
	}

	// Accept loop: handshake each connection off the main loop, then
	// feed its messages to the master as events.
	var nextWorkerID atomic.Uint64
	go func() {
		for {
			nc, err := listener.Accept()
			if err != nil {
				return // listener closed: run over
			}
			go func() {
				var id uint64
				conn, _, err := wire.ServerHandshake(nc, dcfg.Conn, func(h wire.Hello) (*wire.Welcome, error) {
					w := welcome
					if h.WorkerID != 0 {
						w.WorkerID = h.WorkerID // reconnect keeps its identity
					} else {
						w.WorkerID = nextWorkerID.Add(1)
					}
					id = w.WorkerID
					return &w, nil
				})
				if err != nil {
					return
				}
				conn.StartHeartbeat(0)
				// Born busy: markIdle on the join event is what enters
				// the session into the idle queue (wsIdle is the zero
				// state, so it cannot be the initial one).
				s := &distSession{id: id, conn: conn, state: wsBusy}
				push(distEvent{kind: distJoin, sess: s})
				for {
					m, err := conn.Recv()
					if err != nil {
						push(distEvent{kind: distDead, sess: s, err: err})
						return
					}
					push(distEvent{kind: distMsg, sess: s, msg: m})
				}
			}()
		}
	}()

	// Master state: the wall-clock twin of RunAsync's lease table.
	res := &Result{Final: b}
	meters := newRunMeters(cfg.Metrics)
	journal := cfg.Events
	meter := &taMeter{dist: cfg.TA, rng: rng.New(cfg.Seed ^ 0x6d617374), capture: cfg.CaptureTimings, hist: meters.ta}
	outstanding := make(map[uint64]*distLease)
	byID := make(map[uint64]*distSession)
	var leaseQ []*distLease
	var pending []*workItem
	var idleQ []*distSession
	var nextItemID uint64
	completed := uint64(0)
	tfSum, tfN := 0.0, uint64(0)
	live, peak := 0, 0
	start := time.Now()
	var elapsedAtN float64
	since := func() float64 { return time.Since(start).Seconds() }
	record := func(ev obs.Event) {
		if journal != nil {
			ev.TS = since()
			journal.Record(ev)
		}
	}

	newItem := func(s *core.Solution) *workItem {
		nextItemID++
		return &workItem{id: nextItemID, s: s}
	}
	release := func(l *distLease) {
		if l.done {
			return
		}
		l.done = true
		delete(outstanding, l.item.id)
		if l.sess.lease == l {
			l.sess.lease = nil
		}
	}
	// lose retires the lease id before re-enqueuing the clone, so a
	// late result and its resubmission can never both be accepted.
	lose := func(l *distLease) {
		if l.done {
			return
		}
		release(l)
		res.LostEvaluations++
		res.Resubmissions++
		meters.resub.Inc()
		pending = append(pending, newItem(l.item.s.Clone()))
	}
	kill := func(s *distSession, why error) {
		if s.gone {
			return
		}
		s.gone = true
		s.state = wsDead
		live--
		meters.deaths.Inc()
		meters.live.Set(float64(live))
		record(obs.Event{Kind: "worker.dead", Actor: fmt.Sprintf("worker%d", s.id), Detail: fmt.Sprintf("%v", why)})
		s.conn.Close()
		if s.lease != nil {
			lose(s.lease)
		}
		if byID[s.id] == s {
			delete(byID, s.id)
		}
		dcfg.logf("parallel: worker %d gone: %v", s.id, why)
	}
	markIdle := func(s *distSession) {
		if s.gone || s.state == wsIdle {
			return
		}
		s.state = wsIdle
		idleQ = append(idleQ, s)
	}
	grant := func(s *distSession, item *workItem) {
		l := &distLease{item: item, sess: s}
		s.lease = l
		s.state = wsBusy
		outstanding[item.id] = l
		if leaseTimeout > 0 {
			l.deadline = time.Now().Add(leaseTimeout)
			leaseQ = append(leaseQ, l)
		}
		ev := &wire.Evaluate{
			Lease:    item.id,
			SolID:    item.s.ID,
			Operator: int32(item.s.Operator),
			Vars:     item.s.Vars,
		}
		if err := s.conn.Send(ev); err != nil {
			kill(s, err)
		}
	}
	// dispatch pairs idle workers with work: resubmitted clones first,
	// then fresh offspring as long as live work chains stay within the
	// remaining budget (so the run never over-issues evaluations).
	dispatch := func() {
		for len(idleQ) > 0 {
			s := idleQ[0]
			if s.gone || s.state != wsIdle {
				idleQ = idleQ[1:]
				continue
			}
			var item *workItem
			if len(pending) > 0 {
				item = pending[0]
				pending = pending[1:]
			} else if completed+uint64(len(outstanding))+uint64(len(pending)) < cfg.Evaluations {
				var next *core.Solution
				meter.measure(func() { next = b.Suggest() })
				item = newItem(next)
			} else {
				break
			}
			idleQ = idleQ[1:]
			grant(s, item)
		}
	}
	expireDue := func(now time.Time) {
		for len(leaseQ) > 0 {
			l := leaseQ[0]
			if l.done {
				leaseQ = leaseQ[1:]
				continue
			}
			if l.deadline.After(now) {
				break
			}
			leaseQ = leaseQ[1:]
			s := l.sess
			meters.leaseExp.Inc()
			record(obs.Event{Kind: "lease.expire", Actor: "master", Detail: fmt.Sprintf("worker=%d id=%d", s.id, l.item.id)})
			lose(l)
			if !s.gone {
				// Suspect, not gone: a late result still marks it
				// idle again, exactly like the virtual-time master.
				s.state = wsDead
			}
		}
	}

	var tickC <-chan time.Time
	if leaseTimeout > 0 {
		interval := leaseTimeout / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	var wallC <-chan time.Time
	if dcfg.WallLimit > 0 {
		wall := time.NewTimer(dcfg.WallLimit)
		defer wall.Stop()
		wallC = wall.C
	}

loop:
	for completed < cfg.Evaluations {
		select {
		case e := <-events:
			switch e.kind {
			case distJoin:
				if old := byID[e.sess.id]; old != nil && old != e.sess {
					// Reconnect-with-hello: the old incarnation's work
					// died with it, same as the virtual tagHello path.
					kill(old, fmt.Errorf("replaced by reconnect"))
				}
				byID[e.sess.id] = e.sess
				live++
				if live > peak {
					peak = live
				}
				meters.joins.Inc()
				meters.live.Set(float64(live))
				record(obs.Event{Kind: "worker.join", Actor: fmt.Sprintf("worker%d", e.sess.id), Detail: e.sess.conn.RemoteAddr().String()})
				dcfg.logf("parallel: worker %d joined from %s (%d live)", e.sess.id, e.sess.conn.RemoteAddr(), live)
				markIdle(e.sess)
				dispatch()
			case distDead:
				kill(e.sess, e.err)
				dispatch()
			case distMsg:
				s := e.sess
				if s.gone {
					break
				}
				m, ok := e.msg.(*wire.Result)
				if !ok {
					break // nothing else is expected after the handshake
				}
				l, known := outstanding[m.Lease]
				if !known || l.sess != s {
					// Late result of an expired, already-reissued
					// lease: discard, but the worker proved alive.
					res.DuplicateResults++
					meters.dups.Inc()
					if s.lease == nil {
						markIdle(s)
					}
					dispatch()
					break
				}
				if len(m.Objs) != cfg.Problem.NumObjs() {
					kill(s, fmt.Errorf("result with %d objectives, want %d", len(m.Objs), cfg.Problem.NumObjs()))
					dispatch()
					break
				}
				release(l)
				sol := l.item.s
				sol.Objs = m.Objs
				sol.Constrs = m.Constrs
				evalSec := float64(m.EvalNanos) / 1e9
				tfSum += evalSec
				tfN++
				meters.tf.Observe(evalSec)
				if journal != nil {
					// Reconstruct the worker's eval span master-side from
					// the reported duration.
					journal.Record(obs.Event{TS: since() - evalSec, Dur: evalSec, Kind: "eval", Actor: fmt.Sprintf("worker%d", s.id)})
				}
				meter.measure(func() { b.Accept(sol) })
				completed++
				meters.evals.Inc()
				if cfg.CheckpointEvery > 0 && completed%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
					meters.checkpoints.Inc()
					cfg.OnCheckpoint(time.Since(start).Seconds(), b)
				}
				if completed >= cfg.Evaluations {
					elapsedAtN = time.Since(start).Seconds()
					break loop
				}
				markIdle(s)
				dispatch()
			}
		case <-tickC:
			expireDue(time.Now())
			dispatch()
		case <-wallC:
			dcfg.logf("parallel: wall limit %v reached with %d/%d evaluations", dcfg.WallLimit, completed, cfg.Evaluations)
			break loop
		}
	}

	// Tear down: stop accepting, stop every worker. Stop is written
	// before the close, so a healthy worker reads it ahead of the FIN
	// and exits cleanly instead of reconnecting.
	listener.Close()
	for _, s := range byID {
		_ = s.conn.Send(wire.Stop{})
		s.conn.Close()
	}

	res.ElapsedTime = elapsedAtN
	if res.ElapsedTime == 0 {
		res.ElapsedTime = time.Since(start).Seconds()
	}
	res.Evaluations = completed
	res.Completed = completed >= cfg.Evaluations
	res.Processors = peak + 1
	res.MasterBusy = meter.sum
	if res.ElapsedTime > 0 {
		res.MasterUtilization = res.MasterBusy / res.ElapsedTime
	}
	if completed > 0 {
		// Accept and Suggest are metered separately here; per
		// completed evaluation they sum to the paper's T_A.
		res.MeanTA = meter.sum / float64(completed)
	}
	res.TASamples = meter.samples
	if tfN > 0 {
		res.MeanTF = tfSum / float64(tfN)
	}
	return res, nil
}
