package parallel

import (
	"math"
	"testing"

	"borgmoea/internal/core"
	"borgmoea/internal/model"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// testConfig returns a small async configuration on 5-objective DTLZ2.
func testConfig(p int, n uint64) Config {
	return Config{
		Problem:     problems.NewDTLZ2(5),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(5, 0.1)},
		Processors:  p,
		Evaluations: n,
		TF:          stats.NewConstant(0.001),
		TA:          stats.NewConstant(0.000023),
		TC:          stats.NewConstant(0.000006),
		Seed:        1,
	}
}

func TestAsyncValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.Problem = nil },
		func(c *Config) { c.Processors = 1 },
		func(c *Config) { c.Evaluations = 0 },
		func(c *Config) { c.TF = nil },
		func(c *Config) { c.StragglerFraction = 2 },
	}
	for i, mutate := range bad {
		cfg := testConfig(4, 100)
		mutate(&cfg)
		if _, err := RunAsync(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAsyncCompletesBudget(t *testing.T) {
	cfg := testConfig(8, 2000)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 2000 {
		t.Fatalf("completed %d evaluations, want 2000", res.Evaluations)
	}
	if res.Final.Evaluations() != 2000 {
		t.Fatalf("Borg accepted %d evaluations", res.Final.Evaluations())
	}
	if res.Final.Archive().Size() == 0 {
		t.Fatal("archive empty after async run")
	}
	if res.ElapsedTime <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

// TestAsyncMatchesAnalyticalModel: with constant timing distributions
// and P well below saturation, the virtual-cluster run must land on
// Eq. 2 almost exactly — the validation the paper performs in
// Table II's low-P cells.
func TestAsyncMatchesAnalyticalModel(t *testing.T) {
	tm := model.Times{TF: 0.01, TA: 0.000023, TC: 0.000006}
	cfg := testConfig(16, 10000)
	cfg.TF = stats.NewConstant(tm.TF)
	cfg.TA = stats.NewConstant(tm.TA)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := model.AsyncTime(10000, 16, tm)
	if e := model.RelativeError(want, res.ElapsedTime); e > 0.02 {
		t.Fatalf("async T_P = %v, analytical %v (err %.1f%%)", res.ElapsedTime, want, 100*e)
	}
	// Efficiency per Table II's shape: ≈ 0.93 at P=16, TF=0.01.
	if eff := res.Efficiency(); math.Abs(eff-0.93) > 0.03 {
		t.Fatalf("efficiency = %v, want ≈ 0.93", eff)
	}
}

// TestAsyncSaturationShape: at TF=0.001 the master saturates well
// below P=64 (P_UB ≈ 28); elapsed time must be far above the
// analytical prediction and near the master service floor.
func TestAsyncSaturationShape(t *testing.T) {
	tm := model.Times{TF: 0.001, TA: 0.000023, TC: 0.000006}
	cfg := testConfig(64, 10000)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := model.AsyncTime(10000, 64, tm)
	if res.ElapsedTime < 1.5*analytic {
		t.Fatalf("expected saturation: T_P %v vs analytic %v", res.ElapsedTime, analytic)
	}
	if res.MasterUtilization < 0.9 {
		t.Fatalf("master utilization %v, want near 1 at saturation", res.MasterUtilization)
	}
}

func TestAsyncMeasuredTA(t *testing.T) {
	cfg := testConfig(8, 1000)
	cfg.TA = nil // measure the real Accept+Suggest cost
	cfg.CaptureTimings = true
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTA <= 0 {
		t.Fatal("measured TA not positive")
	}
	if len(res.TASamples) == 0 || len(res.TFSamples) == 0 {
		t.Fatal("CaptureTimings recorded no samples")
	}
	for _, ta := range res.TASamples {
		if ta < 0 {
			t.Fatal("negative TA sample")
		}
	}
}

func TestAsyncCheckpoints(t *testing.T) {
	cfg := testConfig(8, 1000)
	var times []float64
	var evals []uint64
	cfg.CheckpointEvery = 100
	cfg.OnCheckpoint = func(vt float64, b *core.Borg) {
		times = append(times, vt)
		evals = append(evals, b.Evaluations())
	}
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}
	if len(times) != 10 {
		t.Fatalf("got %d checkpoints, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("checkpoint times not increasing")
		}
		if evals[i] != evals[i-1]+100 {
			t.Fatalf("checkpoint evaluations not spaced by 100: %v", evals)
		}
	}
}

func TestAsyncDeterministicWithSampledTA(t *testing.T) {
	run := func() float64 {
		res, err := RunAsync(testConfig(8, 1500))
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("async run not deterministic: %v vs %v", a, b)
	}
}

func TestAsyncSearchQualityMatchesSerialBallpark(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence test skipped in -short mode")
	}
	// The async algorithm is a different search trajectory but must
	// still converge on DTLZ2.
	cfg := testConfig(16, 20000)
	cfg.Algorithm.Epsilons = core.UniformEpsilons(5, 0.1)
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist := 0.0
	objs := res.Final.Archive().Objectives()
	for _, f := range objs {
		n := 0.0
		for _, x := range f {
			n += x * x
		}
		dist += math.Abs(math.Sqrt(n) - 1)
	}
	dist /= float64(len(objs))
	if dist > 0.08 {
		t.Fatalf("async archive mean front distance = %v, want < 0.08", dist)
	}
}

func TestSyncCompletesBudget(t *testing.T) {
	cfg := testConfig(8, 2000)
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < 2000 {
		t.Fatalf("completed %d evaluations, want >= 2000", res.Evaluations)
	}
	if res.Generations == 0 {
		t.Fatal("no generations recorded")
	}
	wantGens := uint64(math.Ceil(2000.0 / 8))
	if res.Generations != wantGens {
		t.Fatalf("generations = %d, want %d (N/P)", res.Generations, wantGens)
	}
}

// TestSyncMatchesCantuPazModel validates the sync driver against
// Eq. 6 under constant distributions.
func TestSyncMatchesCantuPazModel(t *testing.T) {
	tm := model.Times{TF: 0.01, TA: 0.000023, TC: 0.000006}
	cfg := testConfig(16, 8000)
	cfg.TF = stats.NewConstant(tm.TF)
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := model.SyncTime(8000, 16, tm)
	if e := model.RelativeError(want, res.ElapsedTime); e > 0.05 {
		t.Fatalf("sync T_P = %v, Eq. 6 predicts %v (err %.1f%%)", res.ElapsedTime, want, 100*e)
	}
}

// TestStragglersHurtSyncMoreThanAsync quantifies the paper's §VI-B
// closing claim: highly variable TF degrades the synchronous model
// while the asynchronous model is barely affected.
func TestStragglersHurtSyncMoreThanAsync(t *testing.T) {
	mk := func(straggler bool) Config {
		cfg := testConfig(16, 4000)
		cfg.TF = stats.NewConstant(0.005)
		if straggler {
			cfg.StragglerFraction = 0.25
			cfg.StragglerFactor = 4
		}
		return cfg
	}
	asyncBase, err := RunAsync(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	asyncSlow, err := RunAsync(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	syncBase, err := RunSync(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	syncSlow, err := RunSync(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	asyncPenalty := asyncSlow.ElapsedTime / asyncBase.ElapsedTime
	syncPenalty := syncSlow.ElapsedTime / syncBase.ElapsedTime
	if syncPenalty <= asyncPenalty {
		t.Fatalf("stragglers should hurt sync more: async ×%.2f vs sync ×%.2f",
			asyncPenalty, syncPenalty)
	}
	// Sync pays ~the straggler factor every generation (barrier on
	// the slowest worker); async re-balances work.
	if syncPenalty < 2 {
		t.Fatalf("sync straggler penalty ×%.2f suspiciously small", syncPenalty)
	}
}

func TestResultDerivedQuantities(t *testing.T) {
	r := &Result{
		ElapsedTime: 10,
		Evaluations: 1000,
		Processors:  5,
		MeanTF:      0.04,
		MeanTA:      0.01,
	}
	if ts := r.SerialTime(); math.Abs(ts-50) > 1e-12 {
		t.Errorf("SerialTime = %v, want 50", ts)
	}
	if s := r.Speedup(); math.Abs(s-5) > 1e-12 {
		t.Errorf("Speedup = %v, want 5", s)
	}
	if e := r.Efficiency(); math.Abs(e-1) > 1e-12 {
		t.Errorf("Efficiency = %v, want 1", e)
	}
	zero := &Result{}
	if zero.Speedup() != 0 || zero.Efficiency() != 0 {
		t.Error("zero-result derived quantities should be 0")
	}
}

func TestRealtimeAgreesWithVirtual(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test skipped in -short mode")
	}
	// Small real run: 4 workers, 400 evals, 2ms each → ≈ 0.2s.
	cfg := testConfig(5, 400)
	cfg.TF = stats.NewConstant(0.002)
	cfg.TA = nil // realtime always measures
	real, err := RunAsyncRealtime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	virt, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock sleep jitter (timer resolution, scheduler) inflates
	// the real run; agreement within 50% validates the virtual model
	// end to end.
	if e := model.RelativeError(real.ElapsedTime, virt.ElapsedTime); e > 0.5 {
		t.Fatalf("virtual T_P %v vs wall-clock %v (err %.0f%%)",
			virt.ElapsedTime, real.ElapsedTime, 100*e)
	}
	if real.Final.Archive().Size() == 0 {
		t.Fatal("realtime run produced empty archive")
	}
}

func TestRealtimeValidation(t *testing.T) {
	cfg := testConfig(4, 10)
	cfg.TF = nil
	if _, err := RunAsyncRealtime(cfg); err == nil {
		t.Error("realtime accepted missing TF")
	}
}

func BenchmarkAsyncVirtual16x10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 10000)
		cfg.Seed = uint64(i)
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
