package parallel

import (
	"math"
	"testing"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/metrics"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

func islandBase(perP int, evals uint64) Config {
	return Config{
		Problem:     problems.NewDTLZ2(5),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(5, 0.15)},
		Processors:  perP,
		Evaluations: evals,
		TF:          stats.NewConstant(0.001),
		TA:          stats.NewConstant(0.000029),
		TC:          stats.NewConstant(0.000006),
		Seed:        1,
	}
}

func TestIslandsValidation(t *testing.T) {
	cfg := IslandsConfig{Base: islandBase(8, 100), Islands: 0}
	if _, err := RunIslands(cfg); err == nil {
		t.Error("zero islands accepted")
	}
	cfg = IslandsConfig{Base: islandBase(8, 100), Islands: 2}
	cfg.Base.TA = nil
	if _, err := RunIslands(cfg); err == nil {
		t.Error("measured TA accepted for islands")
	}
	cfg = IslandsConfig{Base: islandBase(8, 100), Islands: 2}
	cfg.Base.Fault = fault.FailedFractionPlan(0.1, 0.5, 1)
	if _, err := RunIslands(cfg); err == nil {
		t.Error("fault plan accepted for islands")
	}
}

// TestIslandsCaptureTimings verifies the aggregated per-island timing
// capture: every island's T_A samples and every worker's T_F samples
// land in the merged result.
func TestIslandsCaptureTimings(t *testing.T) {
	cfg := IslandsConfig{Base: islandBase(8, 500), Islands: 2}
	cfg.Base.CaptureTimings = true
	res, err := RunIslands(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each island records 7 seeding TAs plus one per accepted
	// evaluation (migration disabled → no migrant TAs).
	wantTA := 2 * (7 + 500)
	if len(res.TASamples) != wantTA {
		t.Fatalf("TA samples = %d, want %d", len(res.TASamples), wantTA)
	}
	// Every budgeted evaluation ran on some worker (the island master
	// does not evaluate in the async protocol); seeded solutions whose
	// results arrive after the budget are still sampled, so the count
	// is at least the total budget.
	if len(res.TFSamples) < 1000 {
		t.Fatalf("TF samples = %d, want >= 1000", len(res.TFSamples))
	}
	if res.MeanTA <= 0 || res.MeanTF <= 0 {
		t.Fatalf("mean timings not aggregated: TA=%v TF=%v", res.MeanTA, res.MeanTF)
	}
	if math.Abs(res.MeanTF-0.001) > 1e-12 || math.Abs(res.MeanTA-0.000029) > 1e-12 {
		t.Fatalf("constant-distribution means drifted: TA=%v TF=%v", res.MeanTA, res.MeanTF)
	}
}

func TestIslandsCompleteBudgets(t *testing.T) {
	cfg := IslandsConfig{Base: islandBase(8, 1000), Islands: 3}
	res, err := RunIslands(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations != 3000 {
		t.Fatalf("total evaluations = %d, want 3000", res.TotalEvaluations)
	}
	for i, b := range res.Islands {
		if b.Evaluations() != 1000 {
			t.Fatalf("island %d completed %d evaluations", i, b.Evaluations())
		}
		if res.IslandElapsed[i] <= 0 {
			t.Fatalf("island %d has no elapsed time", i)
		}
	}
	if len(res.MergedFront) == 0 {
		t.Fatal("merged front empty")
	}
}

func TestSingleIslandMatchesMonolithic(t *testing.T) {
	// One island must behave exactly like RunAsync with the same
	// parameters, modulo the per-island seed derivation.
	res, err := RunIslands(IslandsConfig{Base: islandBase(8, 2000), Islands: 1})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := RunAsync(islandBase(8, 2000))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic constant timings: both derive from the same Eq. 2
	// process, so elapsed times agree to within a cycle.
	if rel := math.Abs(res.ElapsedTime-mono.ElapsedTime) / mono.ElapsedTime; rel > 0.02 {
		t.Fatalf("single island %v vs monolithic %v (%.1f%% apart)",
			res.ElapsedTime, mono.ElapsedTime, 100*rel)
	}
}

// TestIslandsBeatSaturatedMonolith reproduces the paper's Section VI
// recommendation: when TF is too small for the processor count, many
// small islands finish the same total budget far sooner than one
// saturated master-slave instance.
func TestIslandsBeatSaturatedMonolith(t *testing.T) {
	const totalP = 128
	const totalEvals = 40000
	// Monolithic: one master, 127 workers, saturated (P_UB ≈ 24).
	mono, err := RunAsync(islandBase(totalP, totalEvals))
	if err != nil {
		t.Fatal(err)
	}
	// 8 islands × 16 processors, same machine, same total budget.
	cfg := IslandsConfig{Base: islandBase(16, totalEvals/8), Islands: 8}
	isl, err := RunIslands(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if isl.TotalEvaluations != totalEvals {
		t.Fatalf("island total = %d, want %d", isl.TotalEvaluations, totalEvals)
	}
	if isl.ElapsedTime >= mono.ElapsedTime {
		t.Fatalf("islands (%v) did not beat the saturated monolith (%v)",
			isl.ElapsedTime, mono.ElapsedTime)
	}
	speedup := mono.ElapsedTime / isl.ElapsedTime
	if speedup < 2 {
		t.Fatalf("island speedup over monolith only %.2f, expected substantial", speedup)
	}
	// And the merged front must still be a competent approximation.
	ref := make([]float64, 5)
	for i := range ref {
		ref[i] = 1.1
	}
	hvIslands := metrics.HypervolumeMC(isl.MergedFront, ref, 20000, 1)
	hvMono := metrics.HypervolumeMC(mono.Final.Archive().Objectives(), ref, 20000, 1)
	if hvIslands < 0.9*hvMono {
		t.Fatalf("island merged HV %v fell far below monolith %v", hvIslands, hvMono)
	}
}

func TestIslandsMigration(t *testing.T) {
	cfg := IslandsConfig{
		Base:           islandBase(8, 3000),
		Islands:        4,
		MigrationEvery: 500,
	}
	res, err := RunIslands(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrants == 0 {
		t.Fatal("migration enabled but no migrants exchanged")
	}
	// 4 islands × 3000 evals / 500 = 24 expected migrations.
	if res.Migrants != 24 {
		t.Fatalf("migrants = %d, want 24", res.Migrants)
	}
	if res.TotalEvaluations != 12000 {
		t.Fatalf("migrants were charged as evaluations: total = %d", res.TotalEvaluations)
	}
}

func TestIslandsMigrationOffByDefault(t *testing.T) {
	res, err := RunIslands(IslandsConfig{Base: islandBase(8, 1000), Islands: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrants != 0 {
		t.Fatalf("unexpected migrants: %d", res.Migrants)
	}
}

func TestIslandsEfficiencyHelper(t *testing.T) {
	res := &IslandsResult{ElapsedTime: 10, TotalEvaluations: 1000}
	// TS = 1000·(0.04+0.01) = 50; eff = 50/(5·10) = 1.
	if e := res.Efficiency(0.04, 0.01, 5); math.Abs(e-1) > 1e-12 {
		t.Fatalf("efficiency = %v, want 1", e)
	}
	if (&IslandsResult{}).Efficiency(1, 1, 4) != 0 {
		t.Fatal("zero-result efficiency should be 0")
	}
}
