package parallel

import (
	"fmt"

	"borgmoea/internal/core"
	"borgmoea/internal/master"
)

// replayAlg is the plain adapter for off-line replay: no holds, no
// meters, no clocks — the algorithm runs at full speed and the
// protocol decisions come from the recorded stream.
type replayAlg struct{ b *core.Borg }

func (a *replayAlg) Suggest() *core.Solution { return a.b.Suggest() }
func (a *replayAlg) Accept(s *core.Solution) { a.b.Accept(s) }
func (a *replayAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	a.b.Accept(s)
	return a.b.Suggest()
}

// StageAccept/ApplyStaged replay logs recorded with DeferApply on
// (master.Replay reads the mode from the log header); the split keeps
// the algorithm's call sequence — and so its RNG stream — identical to
// the live deferred run's.
func (a *replayAlg) StageAccept(s *core.Solution) { a.b.StageAccept(s) }
func (a *replayAlg) ApplyStaged()                 { a.b.ApplyStaged() }

// ReplayAsync re-executes a recorded asynchronous run off-line from
// its protocol event log (Config.Protocol, or a log deserialized with
// master.ReadLog). cfg must carry the original run's Problem,
// Algorithm configuration and Seed; the timing fields are ignored —
// no clock runs during a replay. The returned Result reproduces the
// original's search trajectory (archive, operator state) and protocol
// accounting exactly; ElapsedTime is the recorded T_P.
//
// Replay works for any transport's recording — DES, realtime, or a
// distributed TCP run whose nondeterminism (scheduling, packet timing,
// worker crashes) is fully captured in the event order.
func ReplayAsync(cfg Config, log *master.Log) (*Result, error) {
	if log == nil || len(log.Events) == 0 {
		return nil, fmt.Errorf("parallel: cannot replay an empty event log")
	}
	if cfg.Problem == nil {
		return nil, fmt.Errorf("parallel: Problem is required")
	}
	if cfg.Evaluations != 0 && cfg.Evaluations != log.Meta.Budget {
		return nil, fmt.Errorf("parallel: config budget %d does not match the log's %d", cfg.Evaluations, log.Meta.Budget)
	}
	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}
	rc := master.ReplayConfig{
		Alg:      &replayAlg{b: b},
		Evaluate: func(item *master.Item) { core.EvaluateSolution(cfg.Problem, item.S) },
		Meters:   master.NewMeters(cfg.Metrics),
	}
	if q := cfg.Quality; q != nil {
		// Re-trigger the recorded quality samples against the replayed
		// algorithm: the regenerated timeline (q.Log()) is
		// byte-identical to the live run's.
		q.Attach(b)
		rc.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	c, err := master.Replay(log, rc)
	if err != nil {
		return nil, err
	}
	st := c.Stats()
	return &Result{
		ElapsedTime:      log.Elapsed,
		Evaluations:      st.Completed,
		Processors:       c.Peak() + 1,
		Final:            b,
		Completed:        st.Completed >= log.Meta.Budget,
		Resubmissions:    st.Resubmissions,
		LostEvaluations:  st.Lost,
		DuplicateResults: st.Duplicates,
	}, nil
}
