// Package parallel implements the paper's parallel Borg MOEA drivers:
// the asynchronous master-slave algorithm (the paper's subject), the
// synchronous generational master-slave baseline (Cantú-Paz's model),
// and a wall-clock goroutine executor used to cross-validate the
// virtual-time results.
//
// The virtual-time drivers execute the *real* Borg MOEA — actual
// offspring, archives and restarts — on the virtual cluster in
// internal/cluster. Function-evaluation cost is a configurable
// distribution T_F (the paper's controlled delays), communication cost
// T_C is charged as master busy time (matching the paper's model where
// saturation occurs at T_F/(2·T_C + T_A)), and the master's algorithm
// time T_A is either sampled from a distribution or measured from the
// actual CPU time of the Go implementation's Accept+Suggest critical
// section — the latter reproduces the paper's methodology of fitting
// distributions to measured timings.
package parallel

import (
	"fmt"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// Message tags used by the master/worker protocol on the DES cluster:
// the canonical vocabulary from internal/master, as mailbox ints
// (internal/wire carries the same values in its frame headers).
const (
	tagEvaluate = int(master.TagEvaluate)
	tagResult   = int(master.TagResult)
	tagStop     = int(master.TagStop)
	tagHello    = int(master.TagHello)
)

// Config describes one parallel run.
type Config struct {
	// Problem is the optimization problem; workers evaluate it.
	Problem problems.Problem
	// Algorithm configures the Borg core run by the master.
	Algorithm core.Config
	// Processors is P: one master plus P−1 workers. Must be >= 2.
	Processors int
	// Evaluations is N, the total function-evaluation budget.
	Evaluations uint64
	// TF is the function-evaluation time distribution (required).
	// The paper's controlled delays are Gamma distributions with
	// coefficient of variation 0.1 (stats.GammaFromMeanCV).
	TF stats.Distribution
	// TC is the one-way communication cost charged to the master per
	// message. Default: constant 6 µs, the paper's measured value.
	TC stats.Distribution
	// TA is the master's per-result algorithm time. Nil measures the
	// actual CPU time of the core's Accept+Suggest critical section
	// and charges that, reproducing the paper's instrumentation.
	TA stats.Distribution
	// Seed seeds all random streams of the run.
	Seed uint64

	// DeferArchive splits the master's result handling in two: the
	// result is staged cheaply and the next grant goes out before the
	// ε-archive insertion runs (the apply is charged as T_A right
	// after the grant). This takes the archive-update half of T_A off
	// the grant's critical path, the lever that moves the paper's
	// saturation bound T_F/(2·T_C + T_A). Deferral reorders the
	// algorithm's RNG stream relative to the default path, so deferred
	// and non-deferred runs explore differently; the mode is recorded
	// in the protocol log (master.LogMeta.DeferApply) and honored by
	// ReplayAsync automatically. Honored by the async drivers
	// (RunAsync, RunAsyncRealtime, RunAsyncDistributed).
	DeferArchive bool

	// CheckpointEvery invokes OnCheckpoint after every k completed
	// evaluations (0 disables). Used for hypervolume trajectories.
	CheckpointEvery uint64
	// OnCheckpoint receives the current virtual time and the live
	// Borg instance. The callback must not retain the Borg pointer's
	// mutable state beyond the call.
	OnCheckpoint func(virtualTime float64, b *core.Borg)

	// CaptureTimings records every T_A and T_F sample into the
	// result, for distribution fitting.
	CaptureTimings bool

	// StragglerFraction marks the given fraction of workers as
	// stragglers whose evaluation times are multiplied by
	// StragglerFactor — the failure-injection extension used to
	// quantify the paper's §VI-B claim about T_F variability.
	StragglerFraction float64
	// StragglerFactor multiplies straggler evaluation times
	// (default 1, i.e. no effect).
	StragglerFactor float64

	// Fault attaches a fault-injection plan (crash-stop,
	// crash-recover, transient hangs, message loss — see
	// internal/fault) to the virtual cluster. Rank 0 (the master) must
	// not be a target. A nil or empty plan leaves the run bit-for-bit
	// identical to a fault-free run. Virtual-time drivers only.
	Fault *fault.Plan
	// LeaseTimeout bounds how long the asynchronous master waits for a
	// dispatched evaluation before presuming it lost: the expired work
	// is cloned and resubmitted to a live worker, and the late
	// original (if it ever arrives) is discarded as a duplicate.
	// 0 disables lease expiry unless Fault is non-empty, in which case
	// it defaults to 10× the mean evaluation time (scaled by
	// StragglerFactor).
	LeaseTimeout float64
	// BarrierTimeout bounds the synchronous master's per-generation
	// gather, so one dead worker no longer stalls the generation
	// forever: workers that miss the barrier are presumed dead and
	// their offspring are re-scattered next generation. Defaults like
	// LeaseTimeout.
	BarrierTimeout float64
	// SimTimeLimit aborts the run at this virtual time (0 = no limit
	// when fault-free). With a fault plan attached a generous default
	// is applied so that pathological schedules (e.g. every worker
	// crash-stopped while a recurring fault process keeps generating
	// events) cannot run the simulation forever; a run that hits the
	// limit ends with Result.Completed == false.
	SimTimeLimit float64

	// TraceHook, when set, receives every simulation trace event
	// (sends, receives, and the start/end of eval/comm/algo busy
	// intervals per node). Used to render Figure 1/2-style
	// timelines; it adds overhead, so leave nil for experiments.
	TraceHook func(at float64, kind, actor, detail string)

	// Metrics, when set, receives the run's telemetry: counters
	// (evaluations, resubmissions, lease expiries, duplicates),
	// gauges (live workers) and timing histograms (T_A, T_F, T_C,
	// master queue wait). All drivers honor it; nil (obs.Disabled)
	// keeps the hot path free of telemetry work.
	Metrics *obs.Registry
	// Events, when set, journals the run's protocol events — the
	// same stream TraceHook sees on the virtual-time drivers, plus
	// driver-level events (lease expiries, joins, deaths) — for
	// JSONL export and Chrome trace rendering (see internal/obs).
	// Like TraceHook it adds overhead; leave nil for experiments.
	Events *obs.Recorder
	// Protocol, when set, records the exact event stream the shared
	// master state machine consumed — the compact replay log. A
	// recorded log re-runs deterministically through ReplayAsync (any
	// transport, including TCP) and serializes with Log.WriteTo /
	// master.ReadLog. Honored by the async drivers (RunAsync,
	// RunAsyncRealtime, RunAsyncDistributed).
	Protocol *master.Log
	// Advisor, when set, receives the run's timing streams (T_A, T_F
	// per worker, T_C, queue waits) and acceptance events, fitting the
	// paper's analytical model live — predicted vs observed speedup,
	// processor bounds, drift and straggler detection (see
	// internal/advisor). Observation-only: it never steers the run.
	// Honored by the async drivers; nil disables at zero cost.
	Advisor *advisor.Advisor
	// Trace, when set, collects one distributed trace per evaluation:
	// the master mints span contexts at grant time, the drivers feed
	// the collector the paper's model terms (T_C send/recv, queue
	// wait, T_F, T_A) per item, and Collector.Forest assembles the
	// span trees (see internal/obs). The sidecar (Collector.TraceLog)
	// plus the Protocol log reconstruct the same forest offline via
	// obs.TracesFromLog. Honored by the async drivers; nil disables.
	Trace *obs.Collector
	// Quality, when set, samples the run's search health (incremental
	// hypervolume, ε-progress, operator adaptation — see
	// obs.QualitySampler) on the sampler's cadence. The driver
	// attaches it to the algorithm and routes each trigger through the
	// master as an EvQuality event, so with Protocol set the quality
	// timeline replays byte-identically offline (ReplayAsync re-feeds
	// the same sampler hooks). Honored by the async drivers; nil
	// disables at zero cost.
	Quality *obs.QualitySampler
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Problem == nil {
		return fmt.Errorf("parallel: Problem is required")
	}
	if c.Processors < 2 {
		return fmt.Errorf("parallel: need at least 2 processors (1 master + 1 worker), got %d", c.Processors)
	}
	if c.Evaluations == 0 {
		return fmt.Errorf("parallel: Evaluations must be positive")
	}
	if c.TF == nil {
		return fmt.Errorf("parallel: TF distribution is required")
	}
	if c.TC == nil {
		c.TC = stats.NewConstant(6e-6) // the paper's measured Ranger value
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 1
	}
	if c.StragglerFraction < 0 || c.StragglerFraction > 1 {
		return fmt.Errorf("parallel: straggler fraction %v outside [0,1]", c.StragglerFraction)
	}
	if c.LeaseTimeout < 0 || c.BarrierTimeout < 0 || c.SimTimeLimit < 0 {
		return fmt.Errorf("parallel: negative timeout")
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if !c.Fault.Empty() {
		for i, r := range c.Fault.Rules {
			for _, rank := range r.Ranks {
				if rank == 0 {
					return fmt.Errorf("parallel: fault rule %d targets rank 0; the master cannot be a fault target", i)
				}
			}
		}
		// Defaults that make an attached plan survivable: leases and
		// barriers expire after ~10 (straggler-scaled) evaluations,
		// and the simulation cannot outlive a generous serial bound.
		horizon := 10 * c.TF.Mean() * c.StragglerFactor
		if c.LeaseTimeout == 0 {
			c.LeaseTimeout = horizon
		}
		if c.BarrierTimeout == 0 {
			c.BarrierTimeout = horizon
		}
		if c.SimTimeLimit == 0 {
			c.SimTimeLimit = 10*float64(c.Evaluations)*c.TF.Mean()*c.StragglerFactor +
				100*c.LeaseTimeout
		}
	}
	return nil
}

// Result summarizes a parallel run.
type Result struct {
	// ElapsedTime is T_P: the virtual time at which the N-th
	// evaluation was accepted by the master (wall-clock seconds for
	// the realtime executor).
	ElapsedTime float64
	// Evaluations actually completed (== the configured budget).
	Evaluations uint64
	// Processors is P.
	Processors int

	// MasterBusy is the master's total busy time (T_C and T_A
	// holds); MasterUtilization = MasterBusy / ElapsedTime.
	MasterBusy        float64
	MasterUtilization float64
	// MeanWorkerUtilization averages busy/elapsed across workers.
	MeanWorkerUtilization float64

	// MeanTA, MeanTF, MeanTC are the observed means of the timing
	// processes during this run.
	MeanTA, MeanTF, MeanTC float64
	// TASamples and TFSamples hold raw samples when CaptureTimings
	// was set.
	TASamples, TFSamples []float64

	// Final is the Borg instance at the end of the run (archive,
	// operator probabilities, restart counts).
	Final *core.Borg

	// Generations is the number of synchronization barriers
	// (synchronous driver only).
	Generations uint64

	// Completed reports whether the full evaluation budget was
	// reached. A run whose workers all died permanently (or that hit
	// SimTimeLimit) ends early with Evaluations below the budget.
	Completed bool

	// Fault-tolerance accounting. Resubmissions counts work items
	// re-enqueued after a presumed loss (an expired lease, a missed
	// barrier, or a worker re-registration implying its work died
	// with it); LostEvaluations counts those presumed losses;
	// DuplicateResults counts late results the master discarded
	// because the work had already been reissued and deduplicated.
	Resubmissions    uint64
	LostEvaluations  uint64
	DuplicateResults uint64
	// WorkerCrashes, WorkerRecoveries and HangsInjected mirror the
	// fault injector's statistics; MessagesLost counts every message
	// the cluster discarded (dead senders, dead receivers, lossy
	// links, crash-flushed inboxes).
	WorkerCrashes    uint64
	WorkerRecoveries uint64
	HangsInjected    uint64
	MessagesLost     uint64
}

// SerialTime estimates T_S = N·(T̄F + T̄A) (Eq. 1) from this run's
// observed means, the quantity speedup and efficiency are measured
// against.
func (r *Result) SerialTime() float64 {
	return float64(r.Evaluations) * (r.MeanTF + r.MeanTA)
}

// Speedup returns S_P = T_S / T_P using the run's own timing means.
func (r *Result) Speedup() float64 {
	if r.ElapsedTime == 0 {
		return 0
	}
	return r.SerialTime() / r.ElapsedTime
}

// Efficiency returns E_P = T_S / (P·T_P).
func (r *Result) Efficiency() float64 {
	if r.ElapsedTime == 0 || r.Processors == 0 {
		return 0
	}
	return r.SerialTime() / (float64(r.Processors) * r.ElapsedTime)
}

// taMeter measures or samples the master's algorithm time.
type taMeter struct {
	dist    stats.Distribution
	rng     *rng.Source
	capture bool
	samples []float64
	sum     float64
	n       uint64
	hist    *obs.Histogram   // optional telemetry sink (nil-safe)
	adv     *advisor.Advisor // optional advisor feed (nil-safe)
}

// measure wraps the master critical section fn, returning the T_A
// charge: sampled from the distribution when set, otherwise the
// measured wall-clock duration of fn.
func (m *taMeter) measure(fn func()) float64 {
	var ta float64
	if m.dist != nil {
		fn()
		ta = m.dist.Sample(m.rng)
	} else {
		start := time.Now()
		fn()
		ta = time.Since(start).Seconds()
	}
	m.sum += ta
	m.n++
	if m.capture {
		m.samples = append(m.samples, ta)
	}
	m.hist.Observe(ta)
	m.adv.ObserveTA(ta)
	return ta
}

func (m *taMeter) mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}
