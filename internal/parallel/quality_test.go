package parallel

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/master"
	"borgmoea/internal/metrics"
	"borgmoea/internal/obs"
)

// qualityBytes serializes a sampler's timeline for byte comparison.
func qualityBytes(t testing.TB, s *obs.QualitySampler) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testQualityConfig() obs.QualityConfig {
	return obs.QualityConfig{
		Every: 100,
		Ref:   metrics.RefPointFor("DTLZ2", 5),
	}
}

// TestQualityCadenceDeferApply: in deferred-archive mode, quality
// samples must still fire on the evaluation cadence and observe the
// applied (post-flush) archive — the Handle-entry flush guarantees the
// sampler never sees a stale-by-one front.
func TestQualityCadenceDeferApply(t *testing.T) {
	const n, every = 2000, 100
	cfg := testConfig(8, n)
	cfg.DeferArchive = true
	qc := testQualityConfig()
	qc.Every = every
	cfg.Quality = obs.NewQualitySampler(qc)
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}
	log := cfg.Quality.Log()
	if len(log.Samples) < 2 {
		t.Fatalf("got %d samples, want at least 2", len(log.Samples))
	}
	// Roughly one sample per `every` accepts: the baseline fires on the
	// first accept, then one per cadence window.
	if got, max := len(log.Samples), int(n/every)+1; got > max {
		t.Errorf("got %d samples for budget %d at cadence %d, max expected %d", got, n, every, max)
	}
	for i, s := range log.Samples {
		if s.Seq != uint64(i) {
			t.Fatalf("sample %d has seq %d", i, s.Seq)
		}
		if s.ArchiveSize == 0 {
			t.Errorf("sample %d observed an empty archive (stale snapshot?)", i)
		}
		if i == 0 {
			continue
		}
		prev := log.Samples[i-1]
		if d := s.Evaluations - prev.Evaluations; d < every {
			t.Errorf("samples %d→%d only %d evaluations apart, cadence %d", i-1, i, d, every)
		}
		if s.EpsProgress < prev.EpsProgress || s.At < prev.At {
			t.Errorf("sample %d not monotone vs predecessor", i)
		}
	}
	last := log.Samples[len(log.Samples)-1]
	if last.Hypervolume <= 0 {
		t.Error("final sample has non-positive hypervolume")
	}
	if len(last.OperatorProbs) != len(log.Operators) || len(log.Operators) == 0 {
		t.Errorf("operator probabilities (%d) misaligned with names (%d)", len(last.OperatorProbs), len(log.Operators))
	}
}

// TestQualityTimelineReplayDES: a recorded DES run's quality timeline
// must reconstruct byte-identically offline from the BMEL log alone.
func TestQualityTimelineReplayDES(t *testing.T) {
	cfg := testConfig(8, 1500)
	cfg.Protocol = master.NewLog()
	cfg.Quality = obs.NewQualitySampler(testQualityConfig())
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}
	live := qualityBytes(t, cfg.Quality)
	if len(cfg.Quality.Log().Samples) == 0 {
		t.Fatal("live run produced no quality samples")
	}

	// Round-trip the event log through its serialization, then replay
	// with a fresh sampler.
	var buf bytes.Buffer
	if _, err := cfg.Protocol.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := master.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	repCfg := testConfig(8, 1500)
	repCfg.Quality = obs.NewQualitySampler(testQualityConfig())
	if _, err := ReplayAsync(repCfg, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, qualityBytes(t, repCfg.Quality)) {
		t.Fatal("replayed quality timeline differs from the live run's")
	}

	// And the sidecar itself round-trips.
	rt, err := obs.ReadQualityLog(bytes.NewReader(live))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Samples) != len(cfg.Quality.Log().Samples) {
		t.Fatalf("sidecar round trip lost samples: %d != %d", len(rt.Samples), len(cfg.Quality.Log().Samples))
	}
}

// TestQualityTimelineReplayTCP: same property over real sockets, with
// a wall-clock cadence in the mix — wall-triggered samples are
// nondeterministic live, but the EvQuality events pin them in the
// recorded stream, so the replayed timeline is still byte-identical.
func TestQualityTimelineReplayTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP in -short mode")
	}
	const n = 600
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(ctx, l.Addr().String(), 1, nil)
	startWorker(ctx, l.Addr().String(), 2, nil)

	cfg := testConfig(2, n)
	cfg.Protocol = master.NewLog()
	qc := testQualityConfig()
	qc.WallEvery = 0.05 // mix a wall-clock trigger in
	cfg.Quality = obs.NewQualitySampler(qc)
	if _, err := RunAsyncDistributed(cfg, DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	live := qualityBytes(t, cfg.Quality)
	if len(cfg.Quality.Log().Samples) == 0 {
		t.Fatal("TCP run produced no quality samples")
	}

	repCfg := testConfig(2, n)
	repCfg.Quality = obs.NewQualitySampler(testQualityConfig())
	if _, err := ReplayAsync(repCfg, cfg.Protocol); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, qualityBytes(t, repCfg.Quality)) {
		t.Fatal("replayed TCP quality timeline differs from the live run's")
	}
}

// TestQualityAdvisorWiring: OnSample → ObserveQuality wiring produces
// a search-health section in the scaling report from a real run.
func TestQualityAdvisorWiring(t *testing.T) {
	adv := advisor.New(advisor.Config{})
	cfg := testConfig(8, 1500)
	cfg.Advisor = adv
	qc := testQualityConfig()
	qc.OnSample = adv.ObserveQuality
	cfg.Quality = obs.NewQualitySampler(qc)
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}
	r := adv.Report()
	if r.Quality == nil {
		t.Fatal("scaling report has no quality section")
	}
	if got, want := r.Quality.Samples, uint64(len(cfg.Quality.Log().Samples)); got != want {
		t.Errorf("advisor saw %d samples, sampler logged %d", got, want)
	}
	if r.Quality.Hypervolume <= 0 {
		t.Error("advisor quality section has non-positive hypervolume")
	}
}

// BenchmarkAsyncQualitySampled is the overhead benchmark the CI
// bench-quality job diffs against BenchmarkAsyncVirtual16x10k
// (sampler on vs off, 5% budget). The cadence is the cmd/borg
// default — one sample per 1000 accepted evaluations — and the DES
// driver is the worst case for it: with zero simulated T_F, every
// microsecond of sampler work lands directly on the run time.
func BenchmarkAsyncQualitySampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, 10000)
		cfg.Seed = uint64(i + 1)
		cfg.Quality = obs.NewQualitySampler(obs.QualityConfig{
			Every: 1000,
			Ref:   metrics.RefPointFor("DTLZ2", 5),
		})
		if _, err := RunAsync(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
