package parallel

import (
	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/master"
	"borgmoea/internal/rng"
)

// RunSync executes the synchronous (generational) master-slave MOEA
// baseline of Cantú-Paz on the virtual cluster, using the same Borg
// core for search so the comparison isolates the coordination model.
//
// Protocol (Figure 1 of the paper): each generation the master
// generates P offspring (T_A each — the synchronous algorithm
// processes the whole generation, hence T_A^sync ≈ P·T_A), sends one
// to each of the P−1 workers (T_C each), evaluates one offspring
// itself (T_F), then waits for every worker's result (T_C per
// receive) before starting the next generation. The barrier makes the
// generation as slow as its slowest evaluation — the effect the
// asynchronous design removes.
//
// Worker lifecycle runs on the shared master.Registry (the same
// dispatch primitive behind the asynchronous state machine): workers
// that miss the barrier are marked suspect and excluded from scatter
// until a sign of life (a recovery tagHello or a late result) marks
// them idle again.
//
// Fault tolerance: the gather barrier is bounded by
// Config.BarrierTimeout, so a dead worker no longer stalls its
// generation forever. Suspects' unevaluated offspring are cloned into
// a backlog that fills the next generations' batches ahead of fresh
// Suggest calls. Results are stamped with their generation so stale
// stragglers are discarded as duplicates, and each generation accepts
// results in batch order — fault-free the trajectory is bit-for-bit
// the original driver's. With every worker dead the master degrades to
// evaluating one offspring per generation itself, so the run still
// completes.
func RunSync(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New()
	installTrace(eng, &cfg)
	cl := cluster.New(eng, cluster.Config{Nodes: cfg.Processors, Seed: cfg.Seed})
	inj := attachFaults(cl, &cfg)

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	meters := master.NewMeters(cfg.Metrics)
	masterRng := rng.New(cfg.Seed ^ 0x73796e63) // "sync"
	meter := &taMeter{dist: cfg.TA, rng: masterRng, capture: cfg.CaptureTimings, hist: meters.TA}
	tcSum, tcN := 0.0, uint64(0)
	sampleTC := func() float64 {
		tc := cfg.TC.Sample(masterRng)
		tcSum += tc
		tcN++
		meters.TC.Observe(tc)
		return tc
	}

	recs := newRecorders(&cfg)
	startWorkers(eng, cl, &cfg, recs)

	node := cl.Node(0)
	masterRec := &tfRecorder{capture: cfg.CaptureTimings, hist: meters.TF}
	masterTFRng := rng.New(cfg.Seed ^ 0x6d746600)
	completed := uint64(0)
	var elapsedAtN float64
	eng.Go("master", func(p *des.Process) {
		reg := master.NewRegistry()
		for w := 1; w < cfg.Processors; w++ {
			reg.Join(w)
		}
		got := make([]bool, cfg.Processors)
		var backlog []*core.Solution
		var gen uint64
		for completed < cfg.Evaluations {
			gen++
			alive := make([]int, 0, cfg.Processors-1)
			for _, w := range reg.Known() {
				if reg.State(w) != master.StateSuspect {
					alive = append(alive, w)
				}
			}
			// Build the generation's batch: resubmitted backlog first,
			// fresh offspring (T_A each) for the rest.
			batch := make([]*core.Solution, 1+len(alive))
			for i := range batch {
				if len(backlog) > 0 {
					batch[i] = backlog[0]
					backlog = backlog[1:]
					res.Resubmissions++
					meters.Resub.Inc()
					continue
				}
				var s *core.Solution
				ta := meter.measure(func() { s = b.Suggest() })
				node.HoldBusy(p, ta, "algo")
				batch[i] = s
			}
			// Scatter: one offspring per live worker.
			for i, w := range alive {
				node.HoldBusy(p, sampleTC(), "comm")
				node.Send(w, tagEvaluate, &master.Item{Gen: gen, S: batch[i+1]})
			}
			// The master evaluates one offspring itself.
			core.EvaluateSolution(cfg.Problem, batch[0])
			tf := cfg.TF.Sample(masterTFRng)
			masterRec.record(tf)
			node.HoldBusy(p, tf, "eval")
			// Gather: the synchronization barrier, bounded by
			// BarrierTimeout when set.
			for w := range got {
				got[w] = false
			}
			count, need := 0, len(alive)
			gatherMsg := func(msg *cluster.Message) {
				switch msg.Tag {
				case tagHello:
					// A recovered worker re-registered; it rejoins the
					// scatter next generation.
					meters.Hellos.Inc()
					reg.MarkIdle(msg.From)
				case tagResult:
					item := msg.Payload.(*master.Item)
					if item.Gen != gen || got[msg.From] {
						// Stale straggler from a generation that already
						// backlogged this work — but its sender is alive.
						res.DuplicateResults++
						meters.Dups.Inc()
						reg.MarkIdle(msg.From)
						return
					}
					got[msg.From] = true
					count++
				}
			}
			deadline := p.Now() + cfg.BarrierTimeout
			for count < need {
				var msg *cluster.Message
				if cfg.BarrierTimeout > 0 {
					remaining := deadline - p.Now()
					if remaining <= 0 {
						break
					}
					m, ok := node.RecvTimeout(p, remaining)
					if !ok {
						break
					}
					msg = m
				} else {
					msg = node.Recv(p)
				}
				node.HoldBusy(p, sampleTC(), "comm")
				gatherMsg(msg)
			}
			// Drain messages already delivered (recovery hellos, late
			// results that beat the timeout) so they don't leak into
			// the next generation's barrier.
			for node.InboxLen() > 0 {
				msg := node.Recv(p)
				node.HoldBusy(p, sampleTC(), "comm")
				gatherMsg(msg)
			}
			// Workers that missed the barrier are presumed dead; their
			// offspring go to the backlog for re-scatter.
			for i, w := range alive {
				if !got[w] {
					reg.MarkSuspect(w)
					res.LostEvaluations++
					backlog = append(backlog, batch[i+1].Clone())
				}
			}
			// Fold the evaluated part of the generation back in, in
			// batch order (fault-free: the whole batch, the original
			// fold order).
			for i, s := range batch {
				if i > 0 && !got[alive[i-1]] {
					continue
				}
				ta := meter.measure(func() { b.Accept(s) })
				node.HoldBusy(p, ta, "algo")
				completed++
				meters.Evals.Inc()
				if cfg.CheckpointEvery > 0 && completed%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
					meters.Checkpoints.Inc()
					cfg.OnCheckpoint(p.Now(), b)
				}
				if completed >= cfg.Evaluations {
					break
				}
			}
			res.Generations++
			meters.Generations.Inc()
		}
		elapsedAtN = p.Now()
		for w := 1; w < cfg.Processors; w++ {
			node.Send(w, tagStop, nil)
		}
		inj.Stop()
	})

	runEngine(eng, cl, inj, &cfg, res)

	res.ElapsedTime = elapsedAtN
	res.Evaluations = completed
	res.Completed = completed >= cfg.Evaluations
	res.MasterBusy = node.BusyTime()
	if elapsedAtN > 0 {
		res.MasterUtilization = res.MasterBusy / elapsedAtN
		sum := 0.0
		for w := 1; w < cfg.Processors; w++ {
			sum += cl.Node(w).BusyTime() / elapsedAtN
		}
		res.MeanWorkerUtilization = sum / float64(cfg.Processors-1)
	}
	res.MeanTA = meter.mean()
	res.TASamples = meter.samples
	mergeTF(res, append([]*tfRecorder{masterRec}, recs...)...)
	if tcN > 0 {
		res.MeanTC = tcSum / float64(tcN)
	}
	return res, nil
}
