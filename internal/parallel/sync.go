package parallel

import (
	"fmt"

	"borgmoea/internal/cluster"
	"borgmoea/internal/core"
	"borgmoea/internal/des"
	"borgmoea/internal/rng"
)

// RunSync executes the synchronous (generational) master-slave MOEA
// baseline of Cantú-Paz on the virtual cluster, using the same Borg
// core for search so the comparison isolates the coordination model.
//
// Protocol (Figure 1 of the paper): each generation the master
// generates P offspring (T_A each — the synchronous algorithm
// processes the whole generation, hence T_A^sync ≈ P·T_A), sends one
// to each of the P−1 workers (T_C each), evaluates one offspring
// itself (T_F), then waits for every worker's result (T_C per
// receive) before starting the next generation. The barrier makes the
// generation as slow as its slowest evaluation — the effect the
// asynchronous design removes.
func RunSync(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New()
	if cfg.TraceHook != nil {
		eng.SetTrace(func(ev des.TraceEvent) {
			cfg.TraceHook(ev.At, ev.Kind, ev.Actor, ev.Detail)
		})
	}
	cl := cluster.New(eng, cluster.Config{Nodes: cfg.Processors, Seed: cfg.Seed})

	algCfg := cfg.Algorithm
	algCfg.Seed = cfg.Seed
	b, err := core.New(cfg.Problem, algCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Processors: cfg.Processors, Final: b}
	masterRng := rng.New(cfg.Seed ^ 0x73796e63) // "sync"
	meter := &taMeter{dist: cfg.TA, rng: masterRng, capture: cfg.CaptureTimings}
	tcSum, tcN := 0.0, uint64(0)
	sampleTC := func() float64 {
		tc := cfg.TC.Sample(masterRng)
		tcSum += tc
		tcN++
		return tc
	}

	tfSum, tfN := 0.0, uint64(0)
	sampleTF := func(r *rng.Source, straggler bool) float64 {
		tf := cfg.TF.Sample(r)
		if straggler {
			tf *= cfg.StragglerFactor
		}
		tfSum += tf
		tfN++
		if cfg.CaptureTimings {
			res.TFSamples = append(res.TFSamples, tf)
		}
		return tf
	}

	// Workers: evaluate exactly one solution per generation.
	for w := 1; w < cfg.Processors; w++ {
		w := w
		node := cl.Node(w)
		wRng := rng.New(cfg.Seed ^ (uint64(w) * 0x9e3779b97f4a7c15))
		straggler := cfg.StragglerFraction > 0 &&
			float64(w-1) < cfg.StragglerFraction*float64(cfg.Processors-1)
		eng.Go(fmt.Sprintf("worker%d", w), func(p *des.Process) {
			for {
				msg := node.Recv(p)
				if msg.Tag == tagStop {
					return
				}
				s := msg.Payload.(*core.Solution)
				core.EvaluateSolution(cfg.Problem, s)
				node.HoldBusy(p, sampleTF(wRng, straggler), "eval")
				node.Send(0, tagResult, s)
			}
		})
	}

	master := cl.Node(0)
	masterTFRng := rng.New(cfg.Seed ^ 0x6d746600)
	completed := uint64(0)
	var elapsedAtN float64
	eng.Go("master", func(p *des.Process) {
		batch := make([]*core.Solution, cfg.Processors)
		for completed < cfg.Evaluations {
			// Generate the generation's P offspring.
			for i := range batch {
				var s *core.Solution
				ta := meter.measure(func() { s = b.Suggest() })
				master.HoldBusy(p, ta, "algo")
				batch[i] = s
			}
			// Scatter: one offspring per worker.
			for w := 1; w < cfg.Processors; w++ {
				master.HoldBusy(p, sampleTC(), "comm")
				master.Send(w, tagEvaluate, batch[w])
			}
			// The master evaluates one offspring itself.
			core.EvaluateSolution(cfg.Problem, batch[0])
			master.HoldBusy(p, sampleTF(masterTFRng, false), "eval")
			// Gather: the synchronization barrier.
			for w := 1; w < cfg.Processors; w++ {
				master.Recv(p)
				master.HoldBusy(p, sampleTC(), "comm")
			}
			// Fold the full generation back in.
			for _, s := range batch {
				ta := meter.measure(func() { b.Accept(s) })
				master.HoldBusy(p, ta, "algo")
				completed++
				if cfg.CheckpointEvery > 0 && completed%cfg.CheckpointEvery == 0 && cfg.OnCheckpoint != nil {
					cfg.OnCheckpoint(p.Now(), b)
				}
				if completed >= cfg.Evaluations {
					break
				}
			}
			res.Generations++
		}
		elapsedAtN = p.Now()
		for w := 1; w < cfg.Processors; w++ {
			master.Send(w, tagStop, nil)
		}
	})

	eng.Run()
	eng.Shutdown()

	res.ElapsedTime = elapsedAtN
	res.Evaluations = completed
	res.MasterBusy = master.BusyTime()
	if elapsedAtN > 0 {
		res.MasterUtilization = res.MasterBusy / elapsedAtN
		sum := 0.0
		for w := 1; w < cfg.Processors; w++ {
			sum += cl.Node(w).BusyTime() / elapsedAtN
		}
		res.MeanWorkerUtilization = sum / float64(cfg.Processors-1)
	}
	res.MeanTA = meter.mean()
	res.TASamples = meter.samples
	if tfN > 0 {
		res.MeanTF = tfSum / float64(tfN)
	}
	if tcN > 0 {
		res.MeanTC = tcSum / float64(tcN)
	}
	return res, nil
}
