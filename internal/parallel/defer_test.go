package parallel

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/master"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

// deferConfig is testConfig with the deferred archive-apply path on.
func deferConfig(p int, n uint64) Config {
	cfg := testConfig(p, n)
	cfg.DeferArchive = true
	return cfg
}

// TestDeferArchiveDeterministic: the deferred accept path must be as
// replayable as the eager one — same Config, same seed, byte-identical
// final archives on both virtual-time drivers that honor the flag.
func TestDeferArchiveDeterministic(t *testing.T) {
	a := runArchive(t, RunAsync, deferConfig(8, 3000))
	b := runArchive(t, RunAsync, deferConfig(8, 3000))
	if !bytes.Equal(a, b) {
		t.Error("deferred runs with identical configs produced different archives")
	}
}

// TestDeferArchiveChangesTrajectory: deferring the apply grants from a
// stale-by-one archive, so the search trajectory is a *different* valid
// Borg run, not a reordering of the eager one. Pin that so a future
// "optimization" that silently collapses the two paths back into one is
// caught — if they ever converge, the deferred path isn't deferring.
func TestDeferArchiveChangesTrajectory(t *testing.T) {
	eager := runArchive(t, RunAsync, testConfig(8, 3000))
	deferred := runArchive(t, RunAsync, deferConfig(8, 3000))
	if bytes.Equal(eager, deferred) {
		t.Error("deferred run produced the eager run's exact archive; the apply is not actually deferred")
	}
}

// TestDeferArchiveCrossTransport: with one worker and a fixed seed, the
// DES, realtime and loopback-TCP drivers in deferred mode must produce
// the byte-identical canonical event sequence and final archive —
// the two-phase result path lives in the shared state machine, so it
// cannot behave differently per transport.
func TestDeferArchiveCrossTransport(t *testing.T) {
	const n = 300
	mk := func() Config {
		return Config{
			Problem:      problems.NewDTLZ2(5),
			Algorithm:    core.Config{Epsilons: core.UniformEpsilons(5, 0.15)},
			Processors:   2,
			Evaluations:  n,
			TF:           stats.NewConstant(1e-5),
			Seed:         42,
			DeferArchive: true,
			Protocol:     master.NewLog(),
		}
	}

	desCfg := mk()
	desRes, err := RunAsync(desCfg)
	if err != nil {
		t.Fatal(err)
	}
	desLog, desArch := desCfg.Protocol.CanonicalBytes(), archiveBytes(t, desRes)
	if !desCfg.Protocol.Meta.DeferApply {
		t.Fatal("deferred run's log header does not carry the DeferApply bit")
	}

	rtCfg := mk()
	rtRes, err := RunAsyncRealtime(rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(desLog, rtCfg.Protocol.CanonicalBytes()) {
		t.Error("realtime: deferred canonical event sequence differs from DES")
	}
	if !bytes.Equal(desArch, archiveBytes(t, rtRes)) {
		t.Error("realtime: deferred final archive differs from DES")
	}

	if testing.Short() {
		t.Log("skipping the loopback-TCP leg in -short mode")
		return
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(ctx, l.Addr().String(), 1, nil)

	tcpCfg := mk()
	tcpRes, err := RunAsyncDistributed(tcpCfg, DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(desLog, tcpCfg.Protocol.CanonicalBytes()) {
		t.Error("TCP: deferred canonical event sequence differs from DES")
	}
	if !bytes.Equal(desArch, archiveBytes(t, tcpRes)) {
		t.Error("TCP: deferred final archive differs from DES")
	}
}

// TestDeferArchiveReplay: a deferred faulty DES run replays off-line
// through a log serialization round trip without the caller restating
// the mode — ReplayAsync picks DeferApply out of the BMEL header, so a
// log is self-describing about which accept discipline produced it.
func TestDeferArchiveReplay(t *testing.T) {
	cfg := deferConfig(8, 3000)
	cfg.Fault = fault.FailedFractionPlan(0.05, 0.02, 21)
	cfg.Protocol = master.NewLog()
	orig, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Resubmissions == 0 {
		t.Fatal("fault plan injected no resubmissions; the replay test needs a non-trivial log")
	}

	var buf bytes.Buffer
	if _, err := cfg.Protocol.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := master.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Meta.DeferApply {
		t.Fatal("serialized log lost the DeferApply bit")
	}

	// Note: the replay Config carries no DeferArchive flag — the log does.
	rep, err := ReplayAsync(testConfig(8, 3000), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluations != orig.Evaluations || rep.Resubmissions != orig.Resubmissions ||
		rep.LostEvaluations != orig.LostEvaluations || rep.DuplicateResults != orig.DuplicateResults {
		t.Fatalf("replayed counters diverged:\n  original %+v\n  replay   %+v", orig, rep)
	}
	if !bytes.Equal(archiveBytes(t, orig), archiveBytes(t, rep)) {
		t.Fatal("replayed archive differs from the deferred original's")
	}
}

// TestDeferArchiveLeaseTimeoutNeutral: lease bookkeeping without any
// faults must stay invisible in deferred mode too.
func TestDeferArchiveLeaseTimeoutNeutral(t *testing.T) {
	base := runArchive(t, RunAsync, deferConfig(8, 3000))
	timed := deferConfig(8, 3000)
	timed.LeaseTimeout = 10 // far beyond any constant-T_F evaluation
	if got := runArchive(t, RunAsync, timed); !bytes.Equal(base, got) {
		t.Error("deferred: lease timeout without faults changed the run")
	}
}
