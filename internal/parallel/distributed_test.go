package parallel

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

// distConfig is the acceptance scenario: 5-objective DTLZ2 to N
// evaluations.
func distConfig(n uint64) Config {
	return Config{
		Problem:     problems.NewDTLZ2(5),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(5, 0.15)},
		Evaluations: n,
		Seed:        42,
	}
}

// fastConn keeps handshakes and failure detection snappy in tests.
var fastConn = wire.Options{Heartbeat: 50 * time.Millisecond, IdleTimeout: 10 * time.Second}

// startWorker launches one in-process borgd-equivalent worker and
// returns its error channel.
func startWorker(ctx context.Context, addr string, seed uint64, delay stats.Distribution) chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- wire.RunWorker(ctx, wire.WorkerConfig{
			Addr:  addr,
			Seed:  seed,
			Delay: delay,
			Conn:  fastConn,
		})
	}()
	return errc
}

// TestDistributedLoopback: a master and three real-TCP workers run
// DTLZ2 (M=5) to N=2,000 evaluations and complete with a non-empty
// archive and no loss accounting.
func TestDistributedLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test skipped in -short mode")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		startWorker(ctx, l.Addr().String(), uint64(i+1), nil)
	}

	res, err := RunAsyncDistributed(distConfig(2000), DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Evaluations != 2000 {
		t.Fatalf("Completed=%v Evaluations=%d, want full budget", res.Completed, res.Evaluations)
	}
	if res.Final.Archive().Size() == 0 {
		t.Fatal("distributed run produced an empty archive")
	}
	if res.Processors < 4 {
		t.Fatalf("Processors=%d, want 1 master + >=3 workers observed", res.Processors)
	}
	if res.Resubmissions != 0 || res.DuplicateResults != 0 {
		t.Fatalf("healthy run recorded resubmissions=%d duplicates=%d", res.Resubmissions, res.DuplicateResults)
	}
	if res.ElapsedTime <= 0 || res.MasterBusy <= 0 {
		t.Fatalf("timing accounting missing: elapsed=%v busy=%v", res.ElapsedTime, res.MasterBusy)
	}
}

// TestDistributedWorkerKillResubmits hard-kills one worker mid-
// evaluation: its in-flight lease must be resubmitted to the surviving
// workers and the run must still complete the full budget.
func TestDistributedWorkerKillResubmits(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test skipped in -short mode")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Two healthy fast workers…
	startWorker(ctx, l.Addr().String(), 1, nil)
	startWorker(ctx, l.Addr().String(), 2, nil)
	// …and a victim whose evaluations take far longer than the run, so
	// it is guaranteed to hold an unfinished lease when killed.
	victimCtx, killVictim := context.WithCancel(ctx)
	victimErr := startWorker(victimCtx, l.Addr().String(), 3, stats.NewConstant(30))
	kill := time.AfterFunc(500*time.Millisecond, killVictim)
	defer kill.Stop()

	res, err := RunAsyncDistributed(distConfig(2000), DistributedConfig{
		Listener:     l,
		LeaseTimeout: 10 * time.Second,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Evaluations != 2000 {
		t.Fatalf("Completed=%v Evaluations=%d, want full budget despite the kill", res.Completed, res.Evaluations)
	}
	if res.Resubmissions == 0 || res.LostEvaluations == 0 {
		t.Fatalf("killed worker's lease was never resubmitted: resubmissions=%d lost=%d",
			res.Resubmissions, res.LostEvaluations)
	}
	if res.Final.Archive().Size() == 0 {
		t.Fatal("run with a killed worker produced an empty archive")
	}
	if err := <-victimErr; err != context.Canceled {
		t.Fatalf("victim exited with %v, want context.Canceled", err)
	}
}

// TestDistributedLeaseExpiryRecovers: with a short lease timeout and a
// worker that never answers (but keeps its connection alive via
// heartbeats), the deadline queue alone must recover the work.
func TestDistributedLeaseExpiryRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test skipped in -short mode")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(ctx, l.Addr().String(), 1, nil)
	startWorker(ctx, l.Addr().String(), 2, nil)
	// The hung worker heartbeats (live TCP) but sleeps through the
	// whole run, so only lease expiry can reclaim its work.
	startWorker(ctx, l.Addr().String(), 3, stats.NewConstant(30))

	res, err := RunAsyncDistributed(distConfig(500), DistributedConfig{
		Listener:     l,
		LeaseTimeout: 300 * time.Millisecond,
		Conn:         fastConn,
		WallLimit:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %d/%d", res.Evaluations, 500)
	}
	if res.Resubmissions == 0 {
		t.Fatal("expired lease was never resubmitted")
	}
}

// TestDistributedValidation mirrors the virtual drivers' error style.
func TestDistributedValidation(t *testing.T) {
	cfg := distConfig(100)
	cfg.Fault = &fault.Plan{Rules: []fault.Rule{{Ranks: []int{1}, Model: fault.CrashStop{At: stats.NewConstant(1)}}}}
	_, err := RunAsyncDistributed(cfg, DistributedConfig{Listen: "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "virtual-time driver") {
		t.Fatalf("fault plan accepted by distributed driver: %v", err)
	}

	cfg = distConfig(100)
	cfg.Problem = nil
	if _, err := RunAsyncDistributed(cfg, DistributedConfig{Listen: "127.0.0.1:0"}); err == nil {
		t.Error("nil problem accepted")
	}

	cfg = distConfig(0)
	if _, err := RunAsyncDistributed(cfg, DistributedConfig{Listen: "127.0.0.1:0"}); err == nil {
		t.Error("zero evaluations accepted")
	}

	if _, err := RunAsyncDistributed(distConfig(100), DistributedConfig{}); err == nil {
		t.Error("missing listen address accepted")
	}
}
