package parallel

import (
	"bytes"
	"testing"

	"borgmoea/internal/core"
	"borgmoea/internal/fault"
)

// archiveBytes serializes a run's final archive for byte-level
// comparison across runs.
func archiveBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveArchive(&buf, res.Final.Archive()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type runner func(Config) (*Result, error)

func runArchive(t *testing.T, run runner, cfg Config) []byte {
	t.Helper()
	res, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return archiveBytes(t, res)
}

// TestDeterministicReplay: the same Config and seed must produce
// byte-identical final archives on repeated DES runs, for both
// virtual-time drivers — the regression guard for any nondeterminism
// creeping into the engine, cluster or drivers.
func TestDeterministicReplay(t *testing.T) {
	for name, run := range map[string]runner{"async": RunAsync, "sync": RunSync} {
		a := runArchive(t, run, testConfig(8, 3000))
		b := runArchive(t, run, testConfig(8, 3000))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: identical configs produced different archives", name)
		}
	}
}

// TestEmptyFaultPlanIsIdentity: attaching a nil or empty fault.Plan
// must leave a fault-free run bit-for-bit unchanged — the subsystem's
// central no-overhead invariant.
func TestEmptyFaultPlanIsIdentity(t *testing.T) {
	for name, run := range map[string]runner{"async": RunAsync, "sync": RunSync} {
		base := runArchive(t, run, testConfig(8, 3000))

		withEmpty := testConfig(8, 3000)
		withEmpty.Fault = &fault.Plan{}
		if got := runArchive(t, run, withEmpty); !bytes.Equal(base, got) {
			t.Errorf("%s: empty fault plan changed the run", name)
		}
	}
}

// TestFaultyReplayIsDeterministic: a faulty run replays exactly — the
// fault RNG stream is seeded independently, so the same plan yields
// the same failure schedule and the same final archive.
func TestFaultyReplayIsDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(8, 3000)
		cfg.Fault = fault.FailedFractionPlan(0.05, 0.02, 21)
		return cfg
	}
	for name, run := range map[string]runner{"async": RunAsync, "sync": RunSync} {
		resA, err := run(mk())
		if err != nil {
			t.Fatal(err)
		}
		resB, err := run(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(archiveBytes(t, resA), archiveBytes(t, resB)) {
			t.Errorf("%s: identical fault plans produced different archives", name)
		}
		if resA.WorkerCrashes != resB.WorkerCrashes || resA.Resubmissions != resB.Resubmissions ||
			resA.ElapsedTime != resB.ElapsedTime {
			t.Errorf("%s: fault replay diverged: %+v vs %+v", name, resA, resB)
		}
	}
}

// TestLeaseTimeoutAloneIsNeutral: enabling lease/barrier timeouts
// without any faults must not change the trajectory — no lease ever
// expires, so the bookkeeping is pure overhead with no effect.
func TestLeaseTimeoutAloneIsNeutral(t *testing.T) {
	base := runArchive(t, RunAsync, testConfig(8, 3000))
	timed := testConfig(8, 3000)
	timed.LeaseTimeout = 10 // far beyond any constant-T_F evaluation
	if got := runArchive(t, RunAsync, timed); !bytes.Equal(base, got) {
		t.Error("async: lease timeout without faults changed the run")
	}

	baseSync := runArchive(t, RunSync, testConfig(8, 3000))
	timedSync := testConfig(8, 3000)
	timedSync.BarrierTimeout = 10
	if got := runArchive(t, RunSync, timedSync); !bytes.Equal(baseSync, got) {
		t.Error("sync: barrier timeout without faults changed the run")
	}
}
