package obs

import (
	"fmt"
	"math"
	"sort"
)

// Streaming estimators for the live scalability advisor
// (internal/advisor): constant-memory substitutes for the batch
// statistics in internal/stats, so per-evaluation timings can be
// summarized during a run without retaining samples. None of them are
// safe for concurrent use on their own; the advisor serializes access
// behind its mutex.

// Welford accumulates a running mean and variance with Welford's
// online algorithm — numerically stable where a naive sum-of-squares
// catastrophically cancels on the paper's microsecond-scale T_C
// against second-scale T_F. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe folds one value in.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased (n−1) sample variance, matching
// stats.Summarize; 0 with fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the coefficient of variation (0 when the mean is 0).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Stddev() / w.mean
}

// EWMA is an exponentially-weighted moving average with bias
// correction: early values are not dragged toward zero by the empty
// initial state, so a worker's decayed T_F is meaningful from its
// first few evaluations. Larger alpha forgets faster.
type EWMA struct {
	alpha float64
	n     uint64
	s     float64 // decayed sum
	w     float64 // decayed weight, converges to 1
}

// NewEWMA returns an estimator with the given decay factor
// (0 < alpha <= 1).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("obs: invalid EWMA alpha %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one value in.
func (e *EWMA) Observe(x float64) {
	e.n++
	e.s = (1-e.alpha)*e.s + e.alpha*x
	e.w = (1-e.alpha)*e.w + e.alpha
}

// Count returns the number of observations.
func (e *EWMA) Count() uint64 { return e.n }

// Value returns the bias-corrected decayed mean (0 with no
// observations).
func (e *EWMA) Value() float64 {
	if e.w == 0 {
		return 0
	}
	return e.s / e.w
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers tracked with parabolic
// interpolation, O(1) memory and time per observation. Unlike
// Histogram.Quantile it needs no pre-chosen bucket layout, so it
// adapts to whatever scale the run's timings actually have.
type P2Quantile struct {
	p   float64
	n   uint64
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the q-quantile p in [0, 1].
func NewP2Quantile(p float64) *P2Quantile {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("obs: invalid P2Quantile p %v", p))
	}
	return &P2Quantile{
		p:   p,
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Observe folds one value in.
func (e *P2Quantile) Observe(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.des = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++

	// Locate the cell k such that q[k] <= x < q[k+1], extending the
	// extreme markers when x falls outside them.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 5; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if qn := e.parabolic(i, s); e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	n0, n1, n2 := e.pos[i-1], e.pos[i], e.pos[i+1]
	return e.q[i] + s/(n2-n0)*
		((n1-n0+s)*(e.q[i+1]-e.q[i])/(n2-n1)+
			(n2-n1-s)*(e.q[i]-e.q[i-1])/(n1-n0))
}

// linear is the fallback marker update when the parabola overshoots a
// neighbor.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Count returns the number of observations.
func (e *P2Quantile) Count() uint64 { return e.n }

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates the sorted sample directly (the same
// convention as stats.Quantile); with none it returns 0.
func (e *P2Quantile) Value() float64 {
	switch {
	case e.n == 0:
		return 0
	case e.n < 5:
		sorted := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(sorted)
		if len(sorted) == 1 {
			return sorted[0]
		}
		pos := e.p * float64(len(sorted)-1)
		lo := int(pos)
		if lo >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return e.q[2]
}
