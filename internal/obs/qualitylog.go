package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// QualityLog is the QLOG sidecar: a run's full quality timeline in a
// compact binary format ("BQLG"), mirroring the BTRC trace sidecar.
// Replaying a recorded run regenerates the identical timeline, so a
// recorded QLOG file and a replay-produced one compare byte-for-byte —
// the property the offline tools (cmd/timeline -quality) and the
// replay tests pin.
//
// Layout (big-endian, like BMEL and BTRC):
//
//	"BQLG" | version u8 | M u16 | maxExact u32 | mcSamples u32 |
//	K u16 | M × ref f64 | K × (len u16, name bytes)
//
// followed by fixed-width records of 68+8K bytes:
//
//	seq u64 | at f64 | evals u64 | hv f64 | epsProgress u64 |
//	archive u32 | pop u32 | restarts u64 | tournament u32 |
//	spread f64 | K × prob f64
//
// A torn trailing record (crash or signal mid-write) is tolerated on
// read, like the other sidecars.
type QualityLog struct {
	Ref       []float64
	MaxExact  int
	MCSamples int
	Operators []string
	Samples   []QualitySample
}

const (
	qualityMagic   = "BQLG"
	qualityVersion = 1
)

// qualityRecSize is the fixed record width for K operators.
func qualityRecSize(k int) int { return 8 + 8 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 8*k }

// WriteTo serializes the log in BQLG format.
func (l *QualityLog) WriteTo(w io.Writer) (int64, error) {
	k := len(l.Operators)
	buf := make([]byte, 0, 4+1+2+4+4+2+8*len(l.Ref)+len(l.Samples)*qualityRecSize(k))
	buf = append(buf, qualityMagic...)
	buf = append(buf, qualityVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(l.Ref)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(l.MaxExact))
	buf = binary.BigEndian.AppendUint32(buf, uint32(l.MCSamples))
	buf = binary.BigEndian.AppendUint16(buf, uint16(k))
	for _, v := range l.Ref {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, name := range l.Operators {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	for i := range l.Samples {
		s := &l.Samples[i]
		buf = binary.BigEndian.AppendUint64(buf, s.Seq)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.At))
		buf = binary.BigEndian.AppendUint64(buf, s.Evaluations)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Hypervolume))
		buf = binary.BigEndian.AppendUint64(buf, s.EpsProgress)
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.ArchiveSize))
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.PopulationSize))
		buf = binary.BigEndian.AppendUint64(buf, s.Restarts)
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.TournamentSize))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.FrontSpread))
		for j := 0; j < k; j++ {
			var p float64
			if j < len(s.OperatorProbs) {
				p = s.OperatorProbs[j]
			}
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p))
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadQualityLog decodes a BQLG stream. A truncated trailing record is
// dropped silently (torn-tail tolerance); a malformed header or an
// unsupported version is an error.
func ReadQualityLog(r io.Reader) (*QualityLog, error) {
	var hdr [4 + 1 + 2 + 4 + 4 + 2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: quality log header: %w", err)
	}
	if string(hdr[:4]) != qualityMagic {
		return nil, fmt.Errorf("obs: not a quality log (magic %q)", hdr[:4])
	}
	if hdr[4] != qualityVersion {
		return nil, fmt.Errorf("obs: quality log version %d unsupported", hdr[4])
	}
	m := int(binary.BigEndian.Uint16(hdr[5:]))
	l := &QualityLog{
		MaxExact:  int(binary.BigEndian.Uint32(hdr[7:])),
		MCSamples: int(binary.BigEndian.Uint32(hdr[11:])),
	}
	k := int(binary.BigEndian.Uint16(hdr[15:]))
	if m > 0 {
		refBytes := make([]byte, 8*m)
		if _, err := io.ReadFull(r, refBytes); err != nil {
			return nil, fmt.Errorf("obs: quality log reference point: %w", err)
		}
		l.Ref = make([]float64, m)
		for i := range l.Ref {
			l.Ref[i] = math.Float64frombits(binary.BigEndian.Uint64(refBytes[8*i:]))
		}
	}
	if k > 0 {
		l.Operators = make([]string, k)
		for i := range l.Operators {
			var lb [2]byte
			if _, err := io.ReadFull(r, lb[:]); err != nil {
				return nil, fmt.Errorf("obs: quality log operator name: %w", err)
			}
			name := make([]byte, binary.BigEndian.Uint16(lb[:]))
			if _, err := io.ReadFull(r, name); err != nil {
				return nil, fmt.Errorf("obs: quality log operator name: %w", err)
			}
			l.Operators[i] = string(name)
		}
	}
	rec := make([]byte, qualityRecSize(k))
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return l, nil // torn tail: keep the complete prefix
			}
			return nil, fmt.Errorf("obs: quality log record: %w", err)
		}
		s := QualitySample{
			Seq:            binary.BigEndian.Uint64(rec[0:]),
			At:             math.Float64frombits(binary.BigEndian.Uint64(rec[8:])),
			Evaluations:    binary.BigEndian.Uint64(rec[16:]),
			Hypervolume:    math.Float64frombits(binary.BigEndian.Uint64(rec[24:])),
			EpsProgress:    binary.BigEndian.Uint64(rec[32:]),
			ArchiveSize:    int(binary.BigEndian.Uint32(rec[40:])),
			PopulationSize: int(binary.BigEndian.Uint32(rec[44:])),
			Restarts:       binary.BigEndian.Uint64(rec[48:]),
			TournamentSize: int(binary.BigEndian.Uint32(rec[56:])),
			FrontSpread:    math.Float64frombits(binary.BigEndian.Uint64(rec[60:])),
		}
		if k > 0 {
			s.OperatorProbs = make([]float64, k)
			for j := range s.OperatorProbs {
				s.OperatorProbs[j] = math.Float64frombits(binary.BigEndian.Uint64(rec[68+8*j:]))
			}
		}
		l.Samples = append(l.Samples, s)
	}
}
