package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Continuous profiling: a background loop that captures periodic
// pprof CPU and heap snapshots into a bounded on-disk ring, one pair
// of files per capture epoch. The epoch counter keys the snapshots to
// the run's trace timeline — borgtrace output and the /debug/profiles/
// listing both report epochs, so a latency regression seen in a trace
// window points at the profile captured during it.

// ProfileConfig configures StartProfiler.
type ProfileConfig struct {
	Dir    string        // snapshot directory (created if missing)
	Every  time.Duration // capture period (default 30s)
	CPU    time.Duration // CPU-profile window per capture (default 5s, capped at Every/2)
	Keep   int           // epochs retained on disk (default 8)
	Logf   func(format string, args ...any)
	Labels map[string]string // extra fields in the /debug/profiles/ index
}

// Profiler runs the capture loop. Close stops it and waits for the
// in-flight capture to finish.
type Profiler struct {
	cfg   ProfileConfig
	epoch atomic.Uint64
	stop  chan struct{}
	done  chan struct{}
}

// StartProfiler begins continuous profiling into cfg.Dir.
func StartProfiler(cfg ProfileConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating profile dir: %w", err)
	}
	if cfg.Every <= 0 {
		cfg.Every = 30 * time.Second
	}
	if cfg.CPU <= 0 {
		cfg.CPU = 5 * time.Second
	}
	if cfg.CPU > cfg.Every/2 {
		cfg.CPU = cfg.Every / 2
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	p := &Profiler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go p.loop()
	return p, nil
}

// Epoch returns the current capture epoch (0 before the first).
func (p *Profiler) Epoch() uint64 {
	if p == nil {
		return 0
	}
	return p.epoch.Load()
}

// Close stops the capture loop.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
}

func (p *Profiler) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Profiler) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.cfg.Every)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.capture()
		}
	}
}

func (p *Profiler) capture() {
	epoch := p.epoch.Add(1)
	if err := p.captureCPU(epoch); err != nil {
		p.logf("obs: cpu profile epoch %d: %v", epoch, err)
	}
	if err := p.captureHeap(epoch); err != nil {
		p.logf("obs: heap profile epoch %d: %v", epoch, err)
	}
	p.prune(epoch)
}

func profileName(kind string, epoch uint64) string {
	return fmt.Sprintf("%s-%08d.pprof", kind, epoch)
}

func (p *Profiler) captureCPU(epoch uint64) error {
	f, err := os.Create(filepath.Join(p.cfg.Dir, profileName("cpu", epoch)))
	if err != nil {
		return err
	}
	defer f.Close()
	// Another collector (e.g. /debug/pprof/profile) may hold the CPU
	// profiler; skip the window rather than fail the loop.
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	select {
	case <-time.After(p.cfg.CPU):
	case <-p.stop: // keep the partial window on shutdown
	}
	pprof.StopCPUProfile()
	return nil
}

func (p *Profiler) captureHeap(epoch uint64) error {
	f, err := os.Create(filepath.Join(p.cfg.Dir, profileName("heap", epoch)))
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// prune deletes snapshots older than the retention ring.
func (p *Profiler) prune(epoch uint64) {
	if epoch <= uint64(p.cfg.Keep) {
		return
	}
	floor := epoch - uint64(p.cfg.Keep)
	for _, kind := range []string{"cpu", "heap"} {
		for e := floor; e > 0; e-- {
			path := filepath.Join(p.cfg.Dir, profileName(kind, e))
			if err := os.Remove(path); err != nil {
				break // past the contiguous tail: nothing older remains
			}
		}
	}
}

// profileEntry is one row of the /debug/profiles/ index.
type profileEntry struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Epoch uint64 `json:"epoch"`
	Bytes int64  `json:"bytes"`
}

// parseProfileName splits "cpu-00000042.pprof" into its kind and
// epoch; ok is false for anything else.
func parseProfileName(name string) (kind string, epoch uint64, ok bool) {
	rest, found := strings.CutSuffix(name, ".pprof")
	if !found {
		return "", 0, false
	}
	kind, num, found := strings.Cut(rest, "-")
	if !found || (kind != "cpu" && kind != "heap") {
		return "", 0, false
	}
	for _, c := range num {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		epoch = epoch*10 + uint64(c-'0')
	}
	return kind, epoch, num != ""
}

// Handler serves the ring: the index as JSON at the mount root, the
// raw pprof files beneath it (go tool pprof can fetch them directly).
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:] // mounted under /debug/profiles/
		}
		if name != "" {
			if _, _, ok := parseProfileName(name); !ok {
				http.NotFound(w, r)
				return
			}
			http.ServeFile(w, r, filepath.Join(p.cfg.Dir, name))
			return
		}
		entries, err := os.ReadDir(p.cfg.Dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		index := struct {
			Epoch    uint64            `json:"epoch"`
			Labels   map[string]string `json:"labels,omitempty"`
			Profiles []profileEntry    `json:"profiles"`
		}{Epoch: p.Epoch(), Labels: p.cfg.Labels, Profiles: []profileEntry{}}
		for _, e := range entries {
			kind, epoch, ok := parseProfileName(e.Name())
			if !ok {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			index.Profiles = append(index.Profiles, profileEntry{
				Name: e.Name(), Kind: kind, Epoch: epoch, Bytes: info.Size(),
			})
		}
		sort.Slice(index.Profiles, func(i, j int) bool {
			a, b := index.Profiles[i], index.Profiles[j]
			if a.Epoch != b.Epoch {
				return a.Epoch < b.Epoch
			}
			return a.Kind < b.Kind
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(index)
	})
}
