package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func sampleQualityLog() *QualityLog {
	return &QualityLog{
		Ref:       []float64{1.1, 1.1, 1.1},
		MaxExact:  64,
		MCSamples: 4096,
		Operators: []string{"SBX", "DE", "PCX", "SPX", "UNDX", "UM"},
		Samples: []QualitySample{
			{Seq: 0, At: 0.5, Evaluations: 100, Hypervolume: 0.12, EpsProgress: 9,
				ArchiveSize: 9, PopulationSize: 100, Restarts: 0, TournamentSize: 2,
				FrontSpread: 0.4, OperatorProbs: []float64{0.2, 0.2, 0.15, 0.15, 0.15, 0.15}},
			{Seq: 1, At: 1.25, Evaluations: 200, Hypervolume: 0.31, EpsProgress: 22,
				ArchiveSize: 17, PopulationSize: 120, Restarts: 1, TournamentSize: 3,
				FrontSpread: 0.9, OperatorProbs: []float64{0.4, 0.1, 0.1, 0.1, 0.1, 0.2}},
		},
	}
}

func TestQualityLogRoundTrip(t *testing.T) {
	l := sampleQualityLog()
	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadQualityLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, l)
	}
}

func TestQualityLogTornTail(t *testing.T) {
	l := sampleQualityLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-write: every truncation length between
	// "second record gone entirely" and "one byte short" must yield the
	// one-sample prefix.
	rec := qualityRecSize(len(l.Operators))
	whole := buf.Bytes()
	for cut := 1; cut <= rec; cut += rec / 3 {
		got, err := ReadQualityLog(bytes.NewReader(whole[:len(whole)-cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got.Samples) != 1 {
			t.Fatalf("cut %d: got %d samples, want 1", cut, len(got.Samples))
		}
		if !reflect.DeepEqual(got.Samples[0], l.Samples[0]) {
			t.Fatalf("cut %d: surviving sample corrupted", cut)
		}
	}
}

func TestQualityLogRejectsGarbage(t *testing.T) {
	if _, err := ReadQualityLog(bytes.NewReader([]byte("BTRC\x01junkjunkjunkjunk"))); err == nil {
		t.Error("wrong magic accepted")
	}
	bad := append([]byte(qualityMagic), 99)
	bad = append(bad, make([]byte, 12)...)
	if _, err := ReadQualityLog(bytes.NewReader(bad)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := ReadQualityLog(bytes.NewReader([]byte("BQ"))); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestMeasureFrontDeterministic(t *testing.T) {
	front := [][]float64{{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}}
	ref := []float64{1.1, 1.1}
	a := MeasureFront(front, ref, 64, 4096, 7)
	b := MeasureFront(front, ref, 64, 4096, 7)
	if a != b || a <= 0 {
		t.Fatalf("exact measurement not deterministic: %v vs %v", a, b)
	}
	// Force the Monte-Carlo path (maxExact 0 < len(front)) — still
	// deterministic for a fixed seed.
	mc1 := MeasureFront(front, ref, 0, 4096, 7)
	mc2 := MeasureFront(front, ref, 0, 4096, 7)
	if mc1 != mc2 || mc1 <= 0 {
		t.Fatalf("MC measurement not deterministic: %v vs %v", mc1, mc2)
	}
	if MeasureFront(nil, ref, 64, 4096, 7) != 0 {
		t.Error("empty front should measure 0")
	}
}

func TestFrontSpread(t *testing.T) {
	if s := FrontSpread(nil); s != 0 {
		t.Errorf("empty front spread %v, want 0", s)
	}
	if s := FrontSpread([][]float64{{1, 2}}); s != 0 {
		t.Errorf("singleton front spread %v, want 0", s)
	}
	got := FrontSpread([][]float64{{0, 0}, {3, 4}})
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("spread %v, want 5 (3-4-5 diagonal)", got)
	}
}

func TestQualitySamplerUnattached(t *testing.T) {
	// A constructed-but-unattached sampler must be inert, and a nil
	// sampler safe everywhere — drivers call these paths unconditionally.
	s := NewQualitySampler(QualityConfig{Every: 10})
	if s.Due(100, 1.0) != true {
		t.Error("first Due should be true (baseline sample)")
	}
	_ = s.Sample(0, 1.0) // no algorithm attached: zero sample, no panic
	var nilS *QualitySampler
	if nilS.Due(1, 1) {
		t.Error("nil sampler reported due")
	}
	nilS.Sample(0, 0)
	if _, ok := nilS.Latest(); ok {
		t.Error("nil sampler has a latest sample")
	}
}

func TestQualityHandlerServesJSON(t *testing.T) {
	s := NewQualitySampler(QualityConfig{Every: 10, Ref: []float64{2, 2}})
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	body := rr.Body.String()
	// Latest/History carry omitempty, so only the always-present fields
	// appear on a sampler with no samples yet.
	for _, want := range []string{"\"ref\"", "\"eps_progress_rate\""} {
		if !strings.Contains(body, want) {
			t.Errorf("quality JSON missing %s: %s", want, body)
		}
	}
	if strings.Contains(body, "\"latest\"") {
		t.Errorf("sampler with no samples reported a latest sample: %s", body)
	}
}

// FuzzReadQualityLog is the CI fuzz-smoke target for the sidecar
// decoder: arbitrary bytes must never panic, and every accepted log
// must re-serialize and re-read to the same value (decode/encode
// fixpoint).
func FuzzReadQualityLog(f *testing.F) {
	var seed bytes.Buffer
	if _, err := sampleQualityLog().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(qualityMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadQualityLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Byte-level fixpoint (NaN-safe, unlike DeepEqual on floats):
		// re-encoding the accepted log and decoding it again must yield
		// the same bytes.
		var b1 bytes.Buffer
		if _, err := l.WriteTo(&b1); err != nil {
			t.Fatalf("re-encode of accepted log failed: %v", err)
		}
		l2, err := ReadQualityLog(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded log failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := l2.WriteTo(&b2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("decode/encode fixpoint violated")
		}
	})
}
