package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evals")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("evals") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("live")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestDisabledRegistryNoOps(t *testing.T) {
	// Everything on the nil registry and its nil instruments must be
	// callable and inert.
	r := Disabled
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 556.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Buckets: ≤1 → {0.5, 1}, ≤10 → {5}, ≤100 → {50}, overflow → {500}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// Median falls in the first bucket; p>0.99 lands near the top.
	if q := h.Quantile(0.5); q < 0 || q > 10 {
		t.Fatalf("p50 = %v outside [0,10]", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v, want overflow lower bound 100", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", nil)
	c := r.Counter("n")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each || c.Value() != workers*each {
		t.Fatalf("lost updates: hist=%d counter=%d, want %d", h.Count(), c.Value(), workers*each)
	}
	if got, want := h.Sum(), workers*each*0.001; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 3)
	if len(b) != 3 || b[0] != 1 || b[1] != 10 || b[2] != 100 {
		t.Fatalf("ExpBuckets = %v", b)
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ExpBuckets accepted")
				}
			}()
			bad()
		}()
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("master.evaluations").Add(42)
	r.Gauge("master.workers_live").Set(3)
	h := r.Histogram("master.ta_seconds", nil)
	h.Observe(1e-5)
	h.Observe(1e9) // overflow bucket: exercises the "+Inf" encoding

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"master.evaluations", "master.workers_live", "master.ta_seconds"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("metrics JSON missing %q", key)
		}
	}
	// The overflow bucket's bound encodes as the string "+Inf", so
	// decode loosely.
	var hs struct {
		Count   uint64           `json:"count"`
		Buckets []map[string]any `json:"buckets"`
	}
	if err := json.Unmarshal(out["master.ta_seconds"], &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Count != 2 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if le, ok := hs.Buckets[1]["le"].(string); !ok || le != "+Inf" {
		t.Fatalf("overflow bucket le = %v, want \"+Inf\"", hs.Buckets[1]["le"])
	}
}
