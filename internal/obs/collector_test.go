package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMintTraceIDDeterministicAndNonZero(t *testing.T) {
	if got, want := MintTraceID(7, 42), MintTraceID(7, 42); got != want {
		t.Fatalf("minting is not deterministic: %x vs %x", got, want)
	}
	if MintTraceID(7, 42) == MintTraceID(8, 42) {
		t.Fatal("different run ids minted the same trace id")
	}
	if MintTraceID(7, 42) == MintTraceID(7, 43) {
		t.Fatal("different keys minted the same trace id")
	}
	for key := uint64(0); key < 1000; key++ {
		if MintTraceID(0, key) == 0 {
			t.Fatalf("key %d minted trace id 0 (reserved for untraced)", key)
		}
	}
}

func TestSampleHead(t *testing.T) {
	id := MintTraceID(1, 1)
	if SampleHead(id, 0) {
		t.Fatal("rate 0 sampled a trace")
	}
	if !SampleHead(id, 1) {
		t.Fatal("rate 1 skipped a trace")
	}
	// The decision is a pure function of the id: stable across calls.
	if SampleHead(id, 0.5) != SampleHead(id, 0.5) {
		t.Fatal("sampling decision is not deterministic")
	}
	// Over many ids the sampled fraction approaches the rate.
	const n = 20000
	hits := 0
	for key := uint64(0); key < n; key++ {
		if SampleHead(MintTraceID(3, key), 0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("rate 0.3 sampled %.3f of traces", frac)
	}
}

// driveEval walks one evaluation through the collector's protocol and
// observation hooks with fixed durations.
func driveEval(c *Collector, worker int, item uint64, grantAt, endAt float64) SpanContext {
	ctx := c.TraceGrant(worker, item, grantAt)
	c.ObserveTCSend(item, 0.001)
	c.ObserveTF(item, 0.5)
	c.ObserveQueueWait(item, 0.01)
	c.ObserveTCRecv(item, 0.002)
	c.TraceResult(worker, item, endAt, true)
	c.ObserveTA(item, 0.003)
	return ctx
}

func TestCollectorAssemblesEvalTree(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: 9, Rate: 1})
	ctx := driveEval(c, 2, 1, 10.0, 11.0)
	if !ctx.Valid() || !ctx.Sampled() {
		t.Fatalf("rate-1 grant returned %+v, want a valid sampled context", ctx)
	}

	f := c.Forest()
	if len(f) != 1 {
		t.Fatalf("forest has %d roots, want 1", len(f))
	}
	root := f[0]
	if root.Name != "eval" || root.TraceID != ctx.TraceID || root.Worker != 2 {
		t.Fatalf("unexpected root span %+v", root)
	}
	if root.Start != 10.0 {
		t.Fatalf("root starts at %v, want grant time 10.0", root.Start)
	}
	// The root covers grant to archive-insert: result time plus T_A.
	if want := 11.0 + 0.003; math.Abs(root.End-want) > 1e-12 {
		t.Fatalf("root ends at %v, want %v", root.End, want)
	}
	wantOrder := []string{"tc.send", "tf", "queue.wait", "tc.recv", "ta"}
	if len(root.Children) != len(wantOrder) {
		t.Fatalf("root has %d children, want %d", len(root.Children), len(wantOrder))
	}
	for i, name := range wantOrder {
		ch := root.Children[i]
		if ch.Name != name {
			t.Fatalf("child %d is %q, want %q", i, ch.Name, name)
		}
		if ch.TraceID != root.TraceID || ch.Parent != root.SpanID {
			t.Fatalf("child %q not linked to root: %+v", name, ch)
		}
	}
	// tf is placed backwards from the result time through the queued
	// and inbound-transport delays.
	tf := root.Children[1]
	if want := 11.0 - 0.002 - 0.01 - 0.5; math.Abs(tf.Start-want) > 1e-12 {
		t.Fatalf("tf starts at %v, want %v", tf.Start, want)
	}

	att := f.Attribution()
	if att.Evals != 1 || att.Expired != 0 {
		t.Fatalf("attribution %+v, want 1 completed eval", att)
	}
	if att.TF.N != 1 || math.Abs(att.TF.Sum-0.5) > 1e-12 {
		t.Fatalf("attribution TF %+v, want one 0.5s sample", att.TF)
	}
	if att.Wall <= 0 || att.TF.Share <= 0 {
		t.Fatalf("attribution has no wall/share: %+v", att)
	}
}

func TestCollectorResubmitSharesTrace(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: 5, Rate: 1})
	parent := c.TraceGrant(1, 10, 0)
	c.TraceExpire(1, 10, 2.0)
	c.TraceResubmit(10, 11)
	clone := c.TraceGrant(3, 11, 2.5)
	c.TraceResult(3, 11, 3.0, true)

	if clone.TraceID != parent.TraceID {
		t.Fatalf("resubmitted clone minted trace %x, want parent's %x", clone.TraceID, parent.TraceID)
	}
	if clone.SpanID == parent.SpanID {
		t.Fatal("clone reused the parent's span id")
	}
	f := c.Forest()
	if len(f) != 2 {
		t.Fatalf("forest has %d roots, want expired parent + completed clone", len(f))
	}
	var expired int
	for _, s := range f {
		if s.TraceID != parent.TraceID {
			t.Fatalf("span %+v not in the lineage trace", s)
		}
		if s.Status == "expired" {
			expired++
		}
	}
	if expired != 1 {
		t.Fatalf("%d expired spans, want 1", expired)
	}
}

func TestCollectorEmissionForcing(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: 1, Rate: 0})
	driveEval(c, 1, 100, 0, 1)
	driveEval(c, 2, 101, 0, 1)
	if f := c.Forest(); len(f) != 0 {
		t.Fatalf("rate-0 forest has %d spans, want 0", len(f))
	}
	// Expiry forces emission regardless of the rate.
	c.TraceGrant(3, 102, 2)
	c.TraceExpire(3, 102, 4)
	// So does flagging a worker as a straggler.
	c.ForceWorker(2)
	f := c.Forest()
	if len(f) != 2 {
		t.Fatalf("forest has %d spans, want the expired eval and worker 2's", len(f))
	}
	for _, s := range f {
		if s.Worker != 2 && s.Status != "expired" {
			t.Fatalf("span %+v is neither forced nor expired", s)
		}
	}
}

func TestCollectorStaleResultIgnored(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: 1, Rate: 1})
	c.TraceGrant(1, 7, 0)
	c.TraceResult(1, 7, 1, false) // stale: lease already gone
	f := c.Forest()
	if len(f) != 1 || f[0].Status != "open" {
		t.Fatalf("stale result closed the span: %+v", f[0])
	}
}

func TestCollectorSpanLimit(t *testing.T) {
	c := NewCollector(CollectorConfig{RunID: 1, Rate: 1, Limit: 4})
	for i := uint64(1); i <= 10; i++ {
		c.TraceGrant(0, i, float64(i))
	}
	if c.Dropped() == 0 {
		t.Fatal("limit 4 dropped nothing across 10 grants")
	}
	if f := c.Forest(); len(f) != 4 {
		t.Fatalf("forest has %d spans, want the 4 under the limit", len(f))
	}
}

// replayProtocol re-feeds the same protocol hook sequence driveEval and
// friends produced — standing in for master.Log.ReplayTrace, which this
// package cannot import.
func TestSidecarReconstructsForest(t *testing.T) {
	protocol := func(tr ProtocolTracer) {
		tr.TraceGrant(1, 1, 0.5)
		tr.TraceResult(1, 1, 1.5, true)
		tr.TraceGrant(2, 2, 0.6)
		tr.TraceExpire(2, 2, 5.0)
		tr.TraceResubmit(2, 3)
		tr.TraceGrant(1, 3, 5.1)
		tr.TraceResult(1, 3, 6.0, true)
		tr.TraceMigrant(4, 1, 7.0)
	}
	live := NewCollector(CollectorConfig{RunID: 77, Rate: 0.5})
	protocol(live)
	// Live-only observations: durations, a forced worker, migration
	// links — exactly what the sidecar must carry.
	live.ObserveTCSend(1, 0.001)
	live.ObserveTF(1, 0.9)
	live.ObserveTA(1, 0.002)
	live.ObserveTF(3, 0.8)
	live.ForceWorker(1)
	live.LinkMigrant(1, SpanContext{TraceID: 0xabc, SpanID: 0xdef, Flags: FlagSampled})
	live.ObserveEmigrant(1, 6.5)

	var liveJSON bytes.Buffer
	if err := live.Forest().WriteJSONL(&liveJSON); err != nil {
		t.Fatal(err)
	}

	// Serialize the sidecar, read it back, replay the protocol.
	var disk bytes.Buffer
	if _, err := live.TraceLog().WriteTo(&disk); err != nil {
		t.Fatal(err)
	}
	tl, err := ReadTraceLog(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tl.RunID != 77 || tl.Rate != 0.5 {
		t.Fatalf("sidecar header %+v, want run 77 rate 0.5", tl)
	}
	recon := NewCollectorFromLog(tl)
	protocol(recon)
	var reconJSON bytes.Buffer
	if err := recon.Forest().WriteJSONL(&reconJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON.Bytes(), reconJSON.Bytes()) {
		t.Fatalf("reconstructed forest differs from live:\nlive:\n%s\nreconstructed:\n%s", &liveJSON, &reconJSON)
	}

	// A torn trailing record is tolerated and costs only itself.
	torn := disk.Bytes()[:disk.Len()-5]
	tl2, err := ReadTraceLog(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn sidecar rejected: %v", err)
	}
	if len(tl2.Recs) != len(tl.Recs)-1 {
		t.Fatalf("torn sidecar kept %d records, want %d", len(tl2.Recs), len(tl.Recs)-1)
	}

	// Garbage is rejected cleanly.
	if _, err := ReadTraceLog(bytes.NewReader([]byte("BOGUS sidecar"))); err == nil {
		t.Fatal("bogus magic accepted")
	}
}

func TestChromeForestExport(t *testing.T) {
	// Island A evaluates and emigrates; island B links the migrant in.
	a := NewCollector(CollectorConfig{RunID: 1, Rate: 1})
	driveEval(a, 1, 1, 0, 1)
	emCtx := a.ObserveEmigrant(1, 1.5)

	b := NewCollector(CollectorConfig{RunID: 2, Rate: 1})
	driveEval(b, 1, 1, 0, 1)
	b.LinkMigrant(1, emCtx)
	b.TraceMigrant(0, 1, 1.6)

	var buf bytes.Buffer
	if err := WriteChromeForests(&buf, []string{"isl-a", "isl-b"}, []Forest{a.Forest(), b.Forest()}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("export failed Chrome trace validation: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			PID   int     `json:"pid"`
			ID    string  `json:"id"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var flowStart, flowFinish string
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Name+"/"+e.Phase]++
		if e.Name == "migrate" && e.Phase == "s" {
			flowStart = e.ID
		}
		if e.Name == "migrate" && e.Phase == "f" {
			flowFinish = e.ID
		}
	}
	if counts["eval/X"] != 2 {
		t.Fatalf("export has %d eval slices, want 2 (one per island)", counts["eval/X"])
	}
	if counts["emigrant/i"] != 1 || counts["migrant/i"] != 1 {
		t.Fatalf("export lacks migration instants: %v", counts)
	}
	if counts["grant/s"] != 2 || counts["result/f"] != 2 {
		t.Fatalf("export lacks grant/result flow arrows: %v", counts)
	}
	if flowStart == "" || flowStart != flowFinish {
		t.Fatalf("emigrant flow id %q does not meet migrant flow id %q — the cross-island arrow is broken", flowStart, flowFinish)
	}
}

func TestProfilerRingAndHandler(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(ProfileConfig{
		Dir:    dir,
		Every:  30 * time.Millisecond,
		CPU:    5 * time.Millisecond,
		Keep:   2,
		Labels: map[string]string{"role": "test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Epoch() < 3 {
		if time.Now().After(deadline) {
			p.Close()
			t.Fatalf("profiler reached epoch %d within 10s, want 3", p.Epoch())
		}
		time.Sleep(10 * time.Millisecond)
	}
	epoch := p.Epoch()

	// The index lists the retained ring and carries the labels.
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/", nil))
	if rec.Code != 200 {
		t.Fatalf("index returned %d", rec.Code)
	}
	var index struct {
		Epoch    uint64            `json:"epoch"`
		Labels   map[string]string `json:"labels"`
		Profiles []struct {
			Name  string `json:"name"`
			Kind  string `json:"kind"`
			Epoch uint64 `json:"epoch"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &index); err != nil {
		t.Fatal(err)
	}
	if index.Epoch < 3 || index.Labels["role"] != "test" || len(index.Profiles) == 0 {
		t.Fatalf("unexpected index %+v", index)
	}

	// One raw snapshot serves as a file; junk names 404.
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/"+index.Profiles[0].Name, nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("snapshot %q returned %d with %d bytes", index.Profiles[0].Name, rec.Code, rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/../../etc/passwd", nil))
	if rec.Code != 404 {
		t.Fatalf("path traversal returned %d, want 404", rec.Code)
	}

	p.Close()

	// The ring pruned: with Keep=2 nothing older than epoch-2 remains,
	// and the newest epochs are on disk.
	for _, kind := range []string{"cpu", "heap"} {
		old := filepath.Join(dir, fmt.Sprintf("%s-%08d.pprof", kind, 1))
		if epoch > 3 {
			continue // a late capture may have raced the check; prune floor moved
		}
		if _, err := os.Stat(old); err == nil {
			t.Fatalf("epoch-1 %s snapshot survived a Keep=2 ring at epoch %d", kind, epoch)
		}
	}
	latest := filepath.Join(dir, fmt.Sprintf("heap-%08d.pprof", p.Epoch()))
	if _, err := os.Stat(latest); err != nil {
		t.Fatalf("latest heap snapshot missing: %v", err)
	}
}

var _ io.WriterTo = (*TraceLog)(nil)
