// Package obs is the run-telemetry subsystem of the reproduction: a
// lightweight metrics registry (counters, gauges, fixed-bucket
// histograms), a structured protocol event journal with a Chrome
// trace_event exporter (trace.go), a live HTTP debug endpoint
// (http.go) and the shared CLI logger (log.go).
//
// The paper's whole argument rests on timing internals — T_A, T_F,
// T_C, master utilization and the queueing dynamics of the
// asynchronous master (Sections IV–V) — so every parallel driver in
// internal/parallel and the TCP connection layer in internal/wire
// record into this package when a Registry/Recorder is attached.
//
// Design constraints, in order:
//
//   - Allocation-free hot path. Instruments are resolved by name once
//     (Registry.Counter/Gauge/Histogram, which take a lock) and then
//     recorded through lock-free atomics. Drivers resolve their
//     instruments before the master loop starts.
//   - Zero cost when disabled. All instrument methods are no-ops on a
//     nil receiver, and a nil *Registry (the Disabled sentinel) hands
//     out nil instruments — so an uninstrumented run pays one
//     predictable nil check per record and nothing else.
//   - Safe for concurrent use. Wall-clock drivers (realtime,
//     distributed, wire) record from many goroutines.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Disabled is the nil registry: it hands out nil instruments whose
// methods all no-op, so `cfg.Metrics = obs.Disabled` (or simply
// leaving the field nil) runs a driver without telemetry overhead.
var Disabled *Registry

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float64 value (queue depth, live workers).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by dv (CAS loop; safe concurrently). No-op on
// a nil gauge.
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + dv)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution of observations. Bucket i
// counts observations v <= bounds[i]; one implicit overflow bucket
// counts the rest. Observe is lock-free: a binary search over the
// (immutable) bounds plus two atomic adds.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last = overflow
	n       atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds, per bucket, the last sampled trace that landed
	// there — allocated lazily on the first ObserveExemplar, so plain
	// histograms pay nothing.
	exemplars atomic.Pointer[[]atomic.Pointer[exemplar]]
}

// exemplar links a histogram bucket to one concrete trace.
type exemplar struct {
	TraceID uint64
	Value   float64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers traceID as the
// bucket's exemplar, linking the latency distribution to a concrete
// trace (surfaced on /debug/vars and as OpenMetrics-style exemplars
// on /debug/metrics). Called on the sampled-trace path only; plain
// observations stay on Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == 0 {
		return
	}
	exs := h.exemplars.Load()
	if exs == nil {
		fresh := make([]atomic.Pointer[exemplar], len(h.counts))
		if !h.exemplars.CompareAndSwap(nil, &fresh) {
			exs = h.exemplars.Load()
		} else {
			exs = &fresh
		}
	}
	i := sort.SearchFloat64s(h.bounds, v)
	(*exs)[i].Store(&exemplar{TraceID: traceID, Value: v})
}

// bucketExemplar returns bucket i's exemplar, if any.
func (h *Histogram) bucketExemplar(i int) *exemplar {
	exs := h.exemplars.Load()
	if exs == nil {
		return nil
	}
	return (*exs)[i].Load()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly inside the selected bucket. The
// overflow bucket reports its lower bound. Returns 0 for nil or empty
// histograms.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous. It panics on a non-positive
// start, a factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// TimeBuckets is the default bucket layout for timing histograms:
// 100 ns to ~107 s in factor-2 steps, covering everything from the
// paper's 6 µs T_C to multi-second distributed evaluations.
func TimeBuckets() []float64 { return ExpBuckets(1e-7, 2, 31) }

// Registry is a named collection of instruments. Lookups
// (Counter/Gauge/Histogram) register on first use and are
// mutex-guarded; the instruments themselves are lock-free. All methods
// are safe on a nil receiver, returning nil instruments.
type Registry struct {
	mu      sync.Mutex
	names   []string // registration order, for deterministic export
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

func lookup[T any](r *Registry, name string, mk func() *T) *T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(*T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T, was %T", name, mk(), m))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	r.names = append(r.names, name)
	return t
}

// Counter returns the named counter, registering it on first use. It
// panics if the name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, registering it on first use
// with the given bucket bounds (nil means TimeBuckets). Bounds are
// fixed at registration; later calls reuse the existing buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return lookup(r, name, func() *Histogram {
		if bounds == nil {
			bounds = TimeBuckets()
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
		}
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	})
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Max     float64      `json:"max_bound"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// BucketSnap is one non-empty histogram bucket: the upper bound (its
// "less than or equal" edge; +Inf for the overflow bucket), count,
// and — when a sampled trace landed there — the exemplar trace id
// linking the bucket to a concrete trace.
type BucketSnap struct {
	LE       float64 `json:"le"`
	N        uint64  `json:"n"`
	Exemplar string  `json:"exemplar,omitempty"`
}

// MarshalJSON renders the overflow bucket's +Inf bound as the string
// "+Inf" (JSON numbers cannot express infinity).
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return json.Marshal(struct {
			LE       string `json:"le"`
			N        uint64 `json:"n"`
			Exemplar string `json:"exemplar,omitempty"`
		}{"+Inf", b.N, b.Exemplar})
	}
	type plain BucketSnap
	return json.Marshal(plain(b))
}

// Snapshot returns every registered metric keyed by name, in a form
// that marshals directly to the /debug/vars JSON: counters as uint64,
// gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		switch m := r.metrics[name].(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			hs := HistogramSnapshot{
				Count: m.Count(),
				Sum:   m.Sum(),
				Mean:  m.Mean(),
				P50:   m.Quantile(0.5),
				P99:   m.Quantile(0.99),
				Max:   m.bounds[len(m.bounds)-1],
			}
			for i := range m.counts {
				n := m.counts[i].Load()
				if n == 0 {
					continue
				}
				le := math.Inf(1)
				if i < len(m.bounds) {
					le = m.bounds[i]
				}
				b := BucketSnap{LE: le, N: n}
				if ex := m.bucketExemplar(i); ex != nil {
					b.Exemplar = fmt.Sprintf("%016x", ex.TraceID)
				}
				hs.Buckets = append(hs.Buckets, b)
			}
			out[name] = hs
		}
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON with keys in sorted
// order (encoding/json sorts map keys), the `-metrics-out` file
// format and the /debug/vars response body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
