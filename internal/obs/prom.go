package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), the /debug/metrics response
// body: counters and gauges as single samples, histograms as
// cumulative le-labelled buckets plus _sum and _count series. Metric
// names are sanitized to the Prometheus charset ('.' and other
// invalid runes become '_'). Instruments are read with the same
// atomic loads the JSON snapshot uses; a histogram scraped mid-update
// may be off by the in-flight observation, which scrapers tolerate by
// design. Nil registries write nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.names {
		pn := promName(name)
		switch m := r.metrics[name].(type) {
		case *Counter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Value()))
		case *Histogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			cum := uint64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d%s\n", pn, promFloat(bound), cum, promExemplar(m, i))
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d%s\n", pn, cum, promExemplar(m, len(m.bounds)))
			fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(m.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", pn, cum)
		}
	}
	return bw.Flush()
}

// promName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus parsers expect.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promExemplar renders bucket i's exemplar in the OpenMetrics
// `# {trace_id="…"} value` form; classic Prometheus parsers treat the
// suffix as a comment and ignore it.
func promExemplar(m *Histogram, i int) string {
	ex := m.bucketExemplar(i)
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex.TraceID, promFloat(ex.Value))
}
