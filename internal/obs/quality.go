package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"

	"borgmoea/internal/core"
	"borgmoea/internal/metrics"
)

// writeJSONValue best-effort encodes v, like writeJSONMap.
func writeJSONValue(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

// The quality sampler is the search-health half of the observability
// stack: where the timing layer (metrics/tracing/advisor) measures the
// paper's model terms, this layer measures whether the search is
// actually converging — incremental hypervolume, ε-progress, front
// spread, and Borg's adaptive state (operator probabilities, restarts,
// tournament size). Samples are triggered by the master as EvQuality
// events, so a recorded run replays its quality timeline offline,
// byte-identically (see QualityLog).

// Default sampler tuning. MaxExact bounds the archive size up to which
// the exact WFG hypervolume runs; larger archives fall back to a
// fixed-seed Monte Carlo estimate so a sample stays cheap and
// deterministic.
const (
	DefaultQualityMaxExact  = 64
	DefaultQualityMCSamples = 1024
	DefaultQualityHistory   = 256
)

// qualityMCSeed salts the per-sample Monte Carlo seed so estimates are
// reproducible run-over-run and replay-over-record.
const qualityMCSeed = 0x514c4f47 // "QLOG"

// QualityConfig configures a QualitySampler.
type QualityConfig struct {
	// Every samples once per this many accepted evaluations
	// (0 = no evaluation-count cadence).
	Every uint64
	// WallEvery samples once per this many seconds of driver time —
	// DES-virtual or wall-clock, whichever clock the driver stamps
	// events with (0 = no time cadence). Time-triggered samples stay
	// replayable because the trigger is recorded as an EvQuality
	// event in the BMEL log.
	WallEvery float64
	// Ref is the hypervolume reference point (required; use
	// metrics.RefPointFor for the shared convention).
	Ref []float64
	// MaxExact is the archive size up to which exact WFG hypervolume
	// is computed (default DefaultQualityMaxExact).
	MaxExact int
	// MCSamples is the Monte Carlo sample count used above MaxExact
	// (default DefaultQualityMCSamples).
	MCSamples int
	// HistoryCap bounds the in-memory sample window served by
	// Handler (default DefaultQualityHistory). The full timeline is
	// always kept in Log for sidecar writes.
	HistoryCap int
	// Metrics, when non-nil, mirrors the latest sample as
	// quality.* gauges.
	Metrics *Registry
	// GaugePrefix overrides the "quality." gauge namespace —
	// federation uses it to keep per-island series apart on a shared
	// registry.
	GaugePrefix string
	// OnSample, when non-nil, receives every sample synchronously on
	// the sampling goroutine (the advisor's stall detector hooks in
	// here).
	OnSample func(QualitySample)
}

// QualitySample is one point of a run's quality timeline. All fields
// are deterministic functions of the algorithm state at the trigger
// point, so replaying the recorded event log regenerates the identical
// sample.
type QualitySample struct {
	// Seq is the 0-based sample index within the run.
	Seq uint64 `json:"seq"`
	// At is the driver clock at the trigger (seconds).
	At float64 `json:"at"`
	// Evaluations completed when the sample was taken.
	Evaluations uint64 `json:"evaluations"`
	// Hypervolume of the ε-archive front relative to Ref (exact WFG
	// up to MaxExact points, fixed-seed Monte Carlo beyond).
	Hypervolume float64 `json:"hypervolume"`
	// EpsProgress is the cumulative ε-progress counter: how many
	// accepts opened a new nondominated ε-box (Borg's restart
	// trigger signal).
	EpsProgress uint64 `json:"eps_progress"`
	// ArchiveSize and PopulationSize snapshot the two populations.
	ArchiveSize    int `json:"archive_size"`
	PopulationSize int `json:"population_size"`
	// Restarts is the cumulative adaptive-restart count.
	Restarts uint64 `json:"restarts"`
	// TournamentSize is the current adapted tournament size.
	TournamentSize int `json:"tournament_size"`
	// FrontSpread is the Euclidean norm of the front's per-objective
	// extents — the bounding-box diagonal, a cheap diversity proxy.
	FrontSpread float64 `json:"front_spread"`
	// OperatorProbs are the auto-adapted operator selection
	// probabilities, aligned with the sampler's Operators().
	OperatorProbs []float64 `json:"operator_probs"`
}

// qualityGauges mirrors the latest sample onto a Registry. All fields
// are nil-safe no-ops when no registry is attached.
type qualityGauges struct {
	samples                            *Counter
	hv, epsProgress, epsRate           *Gauge
	archive, population, ratio, spread *Gauge
	restarts, tournament               *Gauge
	operators                          []*Gauge
}

func newQualityGauges(reg *Registry, prefix string, ops []string) qualityGauges {
	g := qualityGauges{
		samples:     reg.Counter(prefix + "samples"),
		hv:          reg.Gauge(prefix + "hypervolume"),
		epsProgress: reg.Gauge(prefix + "eps_progress"),
		epsRate:     reg.Gauge(prefix + "eps_progress_rate"),
		archive:     reg.Gauge(prefix + "archive_size"),
		population:  reg.Gauge(prefix + "population_size"),
		ratio:       reg.Gauge(prefix + "archive_population_ratio"),
		spread:      reg.Gauge(prefix + "front_spread"),
		restarts:    reg.Gauge(prefix + "restarts"),
		tournament:  reg.Gauge(prefix + "tournament_size"),
	}
	g.operators = make([]*Gauge, len(ops))
	for i, name := range ops {
		g.operators[i] = reg.Gauge(prefix + "operator_prob." + name)
	}
	return g
}

// QualitySampler snapshots one Borg instance's search health on a
// bounded cadence. Like the advisor and the trace collector it is
// caller-constructed (so a /debug/quality handler can be mounted
// before the run starts) and driver-attached to the algorithm. The
// driver asks Due after every accepted result and, when it fires,
// routes the trigger through the master as an EvQuality event whose
// handler calls Sample — that detour is what pins the sample point
// into the BMEL log for replay. A nil sampler is inert: Due always
// reports false and the other methods no-op.
type QualitySampler struct {
	cfg QualityConfig

	mu        sync.Mutex
	alg       *core.Borg
	ops       []string
	g         qualityGauges
	log       *QualityLog
	lastEvals uint64
	lastAt    float64
	rate      float64 // ε-progress per driver-second, latest inter-sample window
	started   bool
}

// NewQualitySampler builds an unattached sampler. Config zero values
// get defaults; a nil Ref disables hypervolume (reported as 0) but
// keeps every other series live.
func NewQualitySampler(cfg QualityConfig) *QualitySampler {
	if cfg.MaxExact == 0 {
		cfg.MaxExact = DefaultQualityMaxExact
	}
	if cfg.MCSamples == 0 {
		cfg.MCSamples = DefaultQualityMCSamples
	}
	if cfg.HistoryCap == 0 {
		cfg.HistoryCap = DefaultQualityHistory
	}
	if cfg.GaugePrefix == "" {
		cfg.GaugePrefix = "quality."
	}
	return &QualitySampler{
		cfg: cfg,
		log: &QualityLog{
			Ref:       append([]float64(nil), cfg.Ref...),
			MaxExact:  cfg.MaxExact,
			MCSamples: cfg.MCSamples,
		},
	}
}

// Attach binds the sampler to the algorithm it snapshots — the driver
// calls this once, before the first event. Nil-safe.
func (s *QualitySampler) Attach(alg *core.Borg) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alg = alg
	s.ops = alg.OperatorNames()
	s.g = newQualityGauges(s.cfg.Metrics, s.cfg.GaugePrefix, s.ops)
	s.log.Operators = s.ops
}

// Operators returns the operator names OperatorProbs aligns with
// (empty until Attach).
func (s *QualitySampler) Operators() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Due reports whether the cadence calls for a sample at (completed,
// at). It is a pure read — the bookkeeping advances only when Sample
// runs — so the driver can consult it after every accept for the cost
// of a mutex. The first accept always samples (baseline point).
func (s *QualitySampler) Due(completed uint64, at float64) bool {
	if s == nil || (s.cfg.Every == 0 && s.cfg.WallEvery == 0) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return true
	}
	if s.cfg.Every != 0 && completed >= s.lastEvals+s.cfg.Every {
		return true
	}
	if s.cfg.WallEvery != 0 && at >= s.lastAt+s.cfg.WallEvery {
		return true
	}
	return false
}

// NextSeq returns the sequence number the next Sample will take —
// the driver stamps it into the EvQuality event's Item field so
// recorded logs are self-describing.
func (s *QualitySampler) NextSeq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.log.Samples))
}

// Sample snapshots the algorithm now, appends the sample to the
// timeline, mirrors gauges, and notifies OnSample. The caller supplies
// the trigger point (seq from the EvQuality event's Item, at from its
// clock stamp); everything else is read from the algorithm, which on
// the master goroutine — live or replaying — is in the identical
// post-flush state, making the resulting timeline byte-reproducible.
func (s *QualitySampler) Sample(seq uint64, at float64) QualitySample {
	if s == nil {
		return QualitySample{}
	}
	s.mu.Lock()
	alg := s.alg
	s.mu.Unlock()
	if alg == nil {
		return QualitySample{}
	}
	arch := alg.Archive()
	front := arch.Objectives()
	sample := QualitySample{
		Seq:            seq,
		At:             at,
		Evaluations:    alg.Evaluations(),
		EpsProgress:    arch.Improvements(),
		ArchiveSize:    arch.Size(),
		PopulationSize: alg.Population().Size(),
		Restarts:       alg.Restarts(),
		TournamentSize: alg.TournamentSize(),
		FrontSpread:    FrontSpread(front),
		OperatorProbs:  alg.OperatorProbabilities(),
	}
	if len(s.cfg.Ref) > 0 {
		sample.Hypervolume = MeasureFront(front, s.cfg.Ref, s.cfg.MaxExact, s.cfg.MCSamples, qualityMCSeed^seq)
	}

	s.mu.Lock()
	if s.started {
		if dt := at - s.lastAt; dt > 0 {
			prev := s.log.Samples[len(s.log.Samples)-1]
			s.rate = float64(sample.EpsProgress-prev.EpsProgress) / dt
		}
	}
	s.started = true
	s.lastEvals = sample.Evaluations
	s.lastAt = at
	s.log.Samples = append(s.log.Samples, sample)
	rate := s.rate
	s.mu.Unlock()

	s.mirror(sample, rate)
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(sample)
	}
	return sample
}

// mirror publishes one sample onto the attached registry.
func (s *QualitySampler) mirror(q QualitySample, rate float64) {
	s.g.samples.Inc()
	s.g.hv.Set(q.Hypervolume)
	s.g.epsProgress.Set(float64(q.EpsProgress))
	s.g.epsRate.Set(rate)
	s.g.archive.Set(float64(q.ArchiveSize))
	s.g.population.Set(float64(q.PopulationSize))
	if q.PopulationSize > 0 {
		s.g.ratio.Set(float64(q.ArchiveSize) / float64(q.PopulationSize))
	}
	s.g.spread.Set(q.FrontSpread)
	s.g.restarts.Set(float64(q.Restarts))
	s.g.tournament.Set(float64(q.TournamentSize))
	for i, g := range s.g.operators {
		if i < len(q.OperatorProbs) {
			g.Set(q.OperatorProbs[i])
		}
	}
}

// Latest returns the most recent sample, if any.
func (s *QualitySampler) Latest() (QualitySample, bool) {
	if s == nil {
		return QualitySample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.log.Samples) == 0 {
		return QualitySample{}, false
	}
	return s.log.Samples[len(s.log.Samples)-1], true
}

// History returns a copy of the last HistoryCap samples.
func (s *QualitySampler) History() []QualitySample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.log.Samples)
	if n > s.cfg.HistoryCap {
		n = s.cfg.HistoryCap
	}
	return append([]QualitySample(nil), s.log.Samples[len(s.log.Samples)-n:]...)
}

// Log returns a snapshot of the full quality timeline for sidecar
// writes (QualityLog.WriteTo).
func (s *QualitySampler) Log() *QualityLog {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *s.log
	cp.Samples = append([]QualitySample(nil), s.log.Samples...)
	return &cp
}

// EpsProgressRate returns the latest inter-sample ε-progress rate
// (boxes opened per driver-second).
func (s *QualitySampler) EpsProgressRate() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}

// QualityReport is the /debug/quality JSON document.
type QualityReport struct {
	Operators       []string        `json:"operators"`
	Ref             []float64       `json:"ref,omitempty"`
	EpsProgressRate float64         `json:"eps_progress_rate"`
	Latest          *QualitySample  `json:"latest,omitempty"`
	History         []QualitySample `json:"history,omitempty"`
}

// Report assembles the endpoint document.
func (s *QualitySampler) Report() QualityReport {
	if s == nil {
		return QualityReport{}
	}
	rep := QualityReport{
		Operators:       s.Operators(),
		Ref:             s.cfg.Ref,
		EpsProgressRate: s.EpsProgressRate(),
		History:         s.History(),
	}
	if latest, ok := s.Latest(); ok {
		rep.Latest = &latest
	}
	return rep
}

// Handler serves the sampler's report as JSON — mount it on the debug
// server as /debug/quality via WithHandler.
func (s *QualitySampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeJSONValue(w, s.Report())
	})
}

// MeasureFront computes the deterministic hypervolume the sampler
// uses: exact WFG up to maxExact points, fixed-seed Monte Carlo
// beyond. It is exported so merged fronts (the federation root) are
// measured with the identical rule. The front must be mutually
// nondominated — true of every ε-archive front, which is where all
// callers get theirs — letting the MC path skip the O(n²) dominance
// filter without changing the estimate.
func MeasureFront(front [][]float64, ref []float64, maxExact, mcSamples int, seed uint64) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return 0
	}
	if maxExact <= 0 {
		maxExact = DefaultQualityMaxExact
	}
	if mcSamples <= 0 {
		mcSamples = DefaultQualityMCSamples
	}
	if len(front) <= maxExact {
		return metrics.Hypervolume(front, ref)
	}
	return metrics.HypervolumeMCNondominated(front, ref, mcSamples, seed)
}

// FrontSpread returns the Euclidean norm of the front's per-objective
// extents (the objective-space bounding-box diagonal): 0 for fewer
// than two points, growing as the front covers more of each objective.
func FrontSpread(front [][]float64) float64 {
	if len(front) < 2 {
		return 0
	}
	m := len(front[0])
	sum := 0.0
	for j := 0; j < m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range front {
			if p[j] < lo {
				lo = p[j]
			}
			if p[j] > hi {
				hi = p[j]
			}
		}
		d := hi - lo
		sum += d * d
	}
	return math.Sqrt(sum)
}
