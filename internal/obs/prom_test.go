package obs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.frames_sent").Add(7)
	reg.Gauge("master.workers_live").Set(3)
	h := reg.Histogram("master.tf_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // overflow bucket

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE wire_frames_sent counter",
		"wire_frames_sent 7",
		"# TYPE master_workers_live gauge",
		"master_workers_live 3",
		"# TYPE master_tf_seconds histogram",
		`master_tf_seconds_bucket{le="0.1"} 1`,
		`master_tf_seconds_bucket{le="1"} 2`,
		`master_tf_seconds_bucket{le="10"} 2`,
		`master_tf_seconds_bucket{le="+Inf"} 3`,
		"master_tf_seconds_sum 100.55",
		"master_tf_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative and every line's metric name
	// must be exposition-safe (dots sanitized to underscores).
	if strings.Contains(out, "master.tf") {
		t.Errorf("unsanitized metric name in exposition:\n%s", out)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var sb strings.Builder
	if err := Disabled.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

func TestDebugServerPrometheusEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.frames_sent").Add(2)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, fmt.Sprintf("http://%s/debug/metrics", srv.Addr()))
	if code != 200 {
		t.Fatalf("/debug/metrics = %d", code)
	}
	if !strings.Contains(string(body), "wire_frames_sent 2") {
		t.Fatalf("/debug/metrics body:\n%s", body)
	}
}

func TestDebugServerWithHandler(t *testing.T) {
	extra := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"hello":"scaling"}`)
	})
	srv, err := ServeDebug("127.0.0.1:0", nil, WithHandler("/debug/scaling", extra))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, fmt.Sprintf("http://%s/debug/scaling", srv.Addr()))
	if code != 200 || !strings.Contains(string(body), "scaling") {
		t.Fatalf("/debug/scaling = %d %q", code, body)
	}
	// The stock endpoints still work with options attached.
	if code, _ := get(t, fmt.Sprintf("http://%s/healthz", srv.Addr())); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
}

func TestReadinessSplitsFromLiveness(t *testing.T) {
	var reason error
	srv, err := ServeDebug("127.0.0.1:0", nil, WithReadiness(func() error { return reason }))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Ready and alive.
	if code, _ := get(t, fmt.Sprintf("http://%s/readyz", srv.Addr())); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	// Draining: readiness fails, liveness holds.
	reason = errors.New("draining: 3 jobs finishing")
	code, body := get(t, fmt.Sprintf("http://%s/readyz", srv.Addr()))
	if code != 503 || !strings.Contains(string(body), "draining") {
		t.Fatalf("/readyz while draining = %d %q, want 503 with reason", code, body)
	}
	if code, _ := get(t, fmt.Sprintf("http://%s/healthz", srv.Addr())); code != 200 {
		t.Fatalf("/healthz while draining = %d, want 200", code)
	}

	// Without the option, /readyz always succeeds.
	plain, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if code, _ := get(t, fmt.Sprintf("http://%s/readyz", plain.Addr())); code != 200 {
		t.Fatalf("default /readyz = %d, want 200", code)
	}
}

func TestDebugServerShutdownDrains(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The port is released: probes fail at the dial layer.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr())); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}
