package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// ProtocolTracer receives the master protocol's trace hooks. The
// master core calls these with the causing BMEL event's timestamp, so
// the identical calls replay from a recorded event log. Built from
// builtin types only: internal/master implements the caller side
// without this package importing it.
type ProtocolTracer interface {
	// TraceGrant mints and returns the span context stamped on the
	// granted item — the context that rides the Evaluate wire frame.
	TraceGrant(worker int, item uint64, at float64) SpanContext
	// TraceResult closes the evaluation. accepted=false marks a
	// duplicate/stale result whose lease was already gone.
	TraceResult(worker int, item uint64, at float64, accepted bool)
	// TraceExpire marks a lease expiry; expired traces are always
	// emitted regardless of the sampling rate.
	TraceExpire(worker int, item uint64, at float64)
	// TraceResubmit links a resubmitted clone to its parent, so the
	// clone inherits the parent's trace id (one lineage, one trace).
	TraceResubmit(parent, child uint64)
	// TraceMigrant records an incoming cross-island migrant applied at
	// migration epoch.
	TraceMigrant(source int, epoch uint64, at float64)
}

// LogSource is a recorded run that can replay its protocol events
// through a ProtocolTracer — master.Log implements it via ReplayTrace.
type LogSource interface {
	ReplayTrace(ProtocolTracer) error
}

// DefaultSpanLimit bounds the per-run trace state (items + sidecar
// records); beyond it new evaluations are dropped and counted.
const DefaultSpanLimit = 1 << 20

// CollectorConfig configures a Collector.
type CollectorConfig struct {
	RunID uint64  // salts trace ids; use the run seed (per island: seed^island)
	Rate  float64 // head-based sampling rate in [0,1]
	Limit int     // max tracked items (0 = DefaultSpanLimit)
}

// traceItem is one evaluation's accumulated state. Protocol hooks
// (grant/result/expire/resubmit — deterministic, from BMEL events)
// and driver observations (measured durations — live-only, persisted
// in the trace sidecar) merge here commutatively, so live collection
// and offline reconstruction reach the identical state regardless of
// arrival order.
type traceItem struct {
	worker   int
	root     uint64 // lineage root item id; trace id derives from it
	grantAt  float64
	endAt    float64 // result time, or expiry time
	granted  bool
	done     bool
	accepted bool
	expired  bool

	tcs, tcr, wait, tf, ta                float64
	hasTCS, hasTCR, hasWait, hasTF, hasTA bool
}

type traceMigrant struct {
	source int
	at     float64
	seen   bool // EvMigrant applied (vs link/emigrant record only)
	link   SpanContext
}

// Collector assembles per-evaluation spans from two feeds: the master
// core's protocol hooks (it implements ProtocolTracer) and the
// drivers' measured model-term durations (ObserveTF/TCSend/…). It is
// safe for concurrent use and all methods no-op on a nil receiver.
//
// The emission decision — head-sampled by rate, forced for lease
// expiries and advisor-flagged straggler workers — is taken at
// Forest() assembly time, not at record time, so every evaluation
// contributes to attribution while only the selected traces are
// exported.
type Collector struct {
	mu      sync.Mutex
	runID   uint64
	rate    float64
	limit   int
	items   map[uint64]*traceItem
	mig     map[uint64]*traceMigrant // keyed by migration epoch
	emig    map[uint64]float64       // outgoing emigrant send times
	forced  map[int]bool
	recs    []TraceRec
	dropped uint64
}

// NewCollector returns a Collector minting ids under cfg.RunID and
// sampling at cfg.Rate.
func NewCollector(cfg CollectorConfig) *Collector {
	limit := cfg.Limit
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Collector{
		runID:  cfg.RunID,
		rate:   cfg.Rate,
		limit:  limit,
		items:  make(map[uint64]*traceItem),
		mig:    make(map[uint64]*traceMigrant),
		emig:   make(map[uint64]float64),
		forced: make(map[int]bool),
	}
}

// RunID returns the id salting this collector's trace ids.
func (c *Collector) RunID() uint64 {
	if c == nil {
		return 0
	}
	return c.runID
}

// Rate returns the head-based sampling rate.
func (c *Collector) Rate() float64 {
	if c == nil {
		return 0
	}
	return c.rate
}

// Dropped returns the number of evaluations lost to the state limit.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// item returns the evaluation's state, creating it under the limit.
// Callers hold c.mu.
func (c *Collector) item(id uint64) *traceItem {
	if e, ok := c.items[id]; ok {
		return e
	}
	if len(c.items) >= c.limit {
		c.dropped++
		return nil
	}
	e := &traceItem{root: id}
	c.items[id] = e
	return e
}

// traceID derives the item's trace id from its lineage root.
func (c *Collector) traceID(e *traceItem) uint64 {
	return MintTraceID(c.runID, e.root)
}

// TraceGrant implements ProtocolTracer: it mints the span context the
// core stamps on the granted item.
func (c *Collector) TraceGrant(worker int, item uint64, at float64) SpanContext {
	if c == nil {
		return SpanContext{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.item(item)
	if e == nil {
		return SpanContext{}
	}
	e.worker, e.grantAt, e.granted = worker, at, true
	tid := c.traceID(e)
	ctx := SpanContext{TraceID: tid, SpanID: mintSpanID(tid, item, roleEval)}
	if SampleHead(tid, c.rate) {
		ctx.Flags |= FlagSampled
	}
	return ctx
}

// TraceResult implements ProtocolTracer.
func (c *Collector) TraceResult(worker int, item uint64, at float64, accepted bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.item(item)
	if e == nil || !accepted {
		return // stale/duplicate results don't close the span
	}
	e.done, e.accepted, e.endAt = true, true, at
}

// TraceExpire implements ProtocolTracer.
func (c *Collector) TraceExpire(worker int, item uint64, at float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.item(item); e != nil {
		e.expired, e.endAt = true, at
	}
}

// TraceResubmit implements ProtocolTracer: the clone joins its
// parent's lineage and therefore its trace.
func (c *Collector) TraceResubmit(parent, child uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	root := parent
	if p, ok := c.items[parent]; ok {
		root = p.root
	}
	if e := c.item(child); e != nil {
		e.root = root
	}
}

// TraceMigrant implements ProtocolTracer: an incoming migrant applied
// at the given migration epoch.
func (c *Collector) TraceMigrant(source int, epoch uint64, at float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.migrant(epoch)
	m.source, m.at, m.seen = source, at, true
}

// migrant returns the epoch's migrant state. Callers hold c.mu.
func (c *Collector) migrant(epoch uint64) *traceMigrant {
	m, ok := c.mig[epoch]
	if !ok {
		m = &traceMigrant{}
		c.mig[epoch] = m
	}
	return m
}

// record appends one sidecar record. Callers hold c.mu.
func (c *Collector) record(r TraceRec) {
	if len(c.recs) >= c.limit*recsPerItem {
		c.dropped++
		return
	}
	c.recs = append(c.recs, r)
}

// recsPerItem bounds the sidecar relative to the item limit: the five
// model terms plus slack for forced workers and migrant links.
const recsPerItem = 8

// observe stores one measured model-term duration for the evaluation
// and, when persist is set (live observation rather than sidecar
// replay), mirrors it into the sidecar record stream.
func (c *Collector) observe(kind uint8, item uint64, d float64, persist bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.item(item)
	if e == nil {
		return
	}
	switch kind {
	case recTCSend:
		e.tcs, e.hasTCS = d, true
	case recTCRecv:
		e.tcr, e.hasTCR = d, true
	case recWait:
		e.wait, e.hasWait = d, true
	case recTF:
		e.tf, e.hasTF = d, true
	case recTA:
		e.ta, e.hasTA = d, true
	}
	if persist {
		c.record(TraceRec{Kind: kind, A: item, C: f64bits(d)})
	}
}

// ObserveTCSend records the measured master→worker send time (T_C
// outbound) for the evaluation.
func (c *Collector) ObserveTCSend(item uint64, d float64) { c.observe(recTCSend, item, d, true) }

// ObserveTCRecv records the measured worker→master receive time (T_C
// inbound).
func (c *Collector) ObserveTCRecv(item uint64, d float64) { c.observe(recTCRecv, item, d, true) }

// ObserveQueueWait records the time the result sat queued before the
// master processed it.
func (c *Collector) ObserveQueueWait(item uint64, d float64) { c.observe(recWait, item, d, true) }

// ObserveTF records the worker's evaluation time (T_F).
func (c *Collector) ObserveTF(item uint64, d float64) { c.observe(recTF, item, d, true) }

// ObserveTA records the master's archive-insertion time (T_A).
func (c *Collector) ObserveTA(item uint64, d float64) { c.observe(recTA, item, d, true) }

// ForceWorker forces emission of every trace granted to worker w —
// the hook the drivers call for advisor-flagged stragglers. The
// decision persists in the sidecar so offline reconstruction emits
// the same forest.
func (c *Collector) ForceWorker(w int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.forced[w] {
		c.forced[w] = true
		c.record(TraceRec{Kind: recForce, A: uint64(w)})
	}
}

// LinkMigrant attaches the remote span context carried by an incoming
// Migrant frame to its migration epoch, preserving cross-island
// lineage (the Chrome export draws a flow arrow from the remote
// emigrant to the local apply).
func (c *Collector) LinkMigrant(epoch uint64, remote SpanContext) {
	if c == nil || !remote.Valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migrant(epoch).link = remote
	c.record(TraceRec{Kind: recMigLink, A: epoch, B: remote.TraceID, C: remote.SpanID, Flags: remote.Flags})
}

// ObserveEmigrant records an outgoing emigrant sent at time at and
// returns the span context to stamp on the Migrant wire frame, so the
// receiving island can link back to this trace.
func (c *Collector) ObserveEmigrant(epoch uint64, at float64) SpanContext {
	if c == nil {
		return SpanContext{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emig[epoch] = at
	c.record(TraceRec{Kind: recEmigrant, A: epoch, C: f64bits(at)})
	tid := MintTraceID(c.runID, emigrantKey(epoch))
	return SpanContext{
		TraceID: tid,
		SpanID:  mintSpanID(tid, epoch, roleEmigrant),
		Flags:   FlagSampled,
	}
}

// emigrantKey salts migration-epoch trace ids away from item ids.
func emigrantKey(epoch uint64) uint64 { return epoch ^ 0x6d696772616e7400 } // "migrant\0"

// Span is one node of the trace forest. An evaluation's root span
// ("eval") covers grant to archive-insert; its children are exactly
// the paper's model terms: "tc.send", "tf", "queue.wait", "tc.recv",
// "ta". Migration spans ("emigrant", "migrant") are instants carrying
// the cross-island link.
type Span struct {
	TraceID  uint64  `json:"trace_id"`
	SpanID   uint64  `json:"span_id"`
	Parent   uint64  `json:"parent,omitempty"`
	Name     string  `json:"name"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Worker   int     `json:"worker"`
	Item     uint64  `json:"item,omitempty"`
	Status   string  `json:"status,omitempty"` // "", "expired", "open"
	LinkID   uint64  `json:"link_trace,omitempty"`
	LinkSpan uint64  `json:"link_span,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Forest is a deterministic set of root spans: sorted by (start,
// trace id, span id), children in fixed model-term order — a pure
// function of the collector's accumulated state, so a live run and
// its offline reconstruction serialize byte-identically.
type Forest []*Span

// Forest assembles and returns the emitted trace forest: traces that
// are head-sampled, expired, or granted to a forced worker, plus all
// migration spans.
func (c *Collector) Forest() Forest {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var out Forest
	for id, e := range c.items {
		if !e.granted {
			continue
		}
		tid := c.traceID(e)
		if !(SampleHead(tid, c.rate) || e.expired || c.forced[e.worker]) {
			continue
		}
		out = append(out, c.buildEval(id, e, tid))
	}
	for epoch, m := range c.mig {
		if !m.seen {
			continue
		}
		tid := MintTraceID(c.runID, emigrantKey(epoch))
		s := &Span{
			TraceID: tid,
			SpanID:  mintSpanID(tid, epoch, roleMigrant),
			Name:    "migrant",
			Start:   m.at, End: m.at,
			Worker: m.source,
			Item:   epoch,
		}
		if m.link.Valid() {
			s.LinkID, s.LinkSpan = m.link.TraceID, m.link.SpanID
		}
		out = append(out, s)
	}
	for epoch, at := range c.emig {
		tid := MintTraceID(c.runID, emigrantKey(epoch))
		out = append(out, &Span{
			TraceID: tid,
			SpanID:  mintSpanID(tid, epoch, roleEmigrant),
			Name:    "emigrant",
			Start:   at, End: at,
			Item: epoch,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.SpanID < b.SpanID
	})
	return out
}

// buildEval assembles one evaluation's span tree. Child spans are
// placed backwards from the result time r: …|tf|queue.wait|tc.recv|r,
// then ta after r; tc.send sits forward from the grant. A model term
// the driver never measured is simply omitted.
func (c *Collector) buildEval(id uint64, e *traceItem, tid uint64) *Span {
	root := &Span{
		TraceID: tid,
		SpanID:  mintSpanID(tid, id, roleEval),
		Name:    "eval",
		Start:   e.grantAt,
		Worker:  e.worker,
		Item:    id,
	}
	switch {
	case e.done:
		root.End = e.endAt
		if e.hasTA {
			root.End += e.ta
		}
	case e.expired:
		root.End, root.Status = e.endAt, "expired"
	default:
		root.End, root.Status = e.grantAt, "open"
	}
	child := func(name string, role uint64, start, dur float64) {
		root.Children = append(root.Children, &Span{
			TraceID: tid,
			SpanID:  mintSpanID(tid, id, role),
			Parent:  root.SpanID,
			Name:    name,
			Start:   start, End: start + dur,
			Worker: e.worker,
			Item:   id,
		})
	}
	if e.hasTCS {
		child("tc.send", roleTCSend, e.grantAt, e.tcs)
	}
	if e.done {
		r := e.endAt
		back := 0.0
		if e.hasTCR {
			back += e.tcr
		}
		if e.hasWait {
			back += e.wait
		}
		if e.hasTF {
			child("tf", roleTF, r-back-e.tf, e.tf)
		}
		if e.hasWait {
			child("queue.wait", roleWait, r-back, e.wait)
			back -= e.wait
		}
		if e.hasTCR {
			child("tc.recv", roleTCRecv, r-back, e.tcr)
		}
		if e.hasTA {
			child("ta", roleTA, r, e.ta)
		}
	}
	return root
}

// WriteJSONL writes the forest as one span tree per line — the
// canonical byte-comparable serialization of a run's traces.
func (f Forest) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for _, s := range f {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TermStats aggregates one model term across a forest.
type TermStats struct {
	N    int     `json:"n"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	// Share is the term's fraction of total traced wall-clock — the
	// empirical critical-path attribution of Eq. 2.
	Share float64 `json:"share"`
}

func (t *TermStats) add(d float64) { t.N++; t.Sum += d }

func (t *TermStats) finish(wall float64) {
	if t.N > 0 {
		t.Mean = t.Sum / float64(t.N)
	}
	if wall > 0 {
		t.Share = t.Sum / wall
	}
}

// Attribution is the per-term breakdown of where traced evaluations
// spent their wall-clock: the measured counterpart of the advisor's
// fitted T_F/T_C/T_A estimates.
type Attribution struct {
	Evals    int       `json:"evals"`
	Expired  int       `json:"expired"`
	Migrants int       `json:"migrants"`
	Wall     float64   `json:"wall"` // total root-span seconds
	TF       TermStats `json:"tf"`
	TCSend   TermStats `json:"tc_send"`
	TCRecv   TermStats `json:"tc_recv"`
	Wait     TermStats `json:"queue_wait"`
	TA       TermStats `json:"ta"`
	Other    float64   `json:"other"` // wall not covered by any term
}

// Attribution computes the per-term critical-path breakdown of the
// forest.
func (f Forest) Attribution() Attribution {
	var a Attribution
	for _, root := range f {
		switch root.Name {
		case "migrant":
			a.Migrants++
			continue
		case "emigrant":
			continue
		}
		a.Evals++
		if root.Status == "expired" {
			a.Expired++
		}
		a.Wall += root.End - root.Start
		for _, ch := range root.Children {
			d := ch.End - ch.Start
			switch ch.Name {
			case "tf":
				a.TF.add(d)
			case "tc.send":
				a.TCSend.add(d)
			case "tc.recv":
				a.TCRecv.add(d)
			case "queue.wait":
				a.Wait.add(d)
			case "ta":
				a.TA.add(d)
			}
		}
	}
	covered := a.TF.Sum + a.TCSend.Sum + a.TCRecv.Sum + a.Wait.Sum + a.TA.Sum
	if a.Wall > covered {
		a.Other = a.Wall - covered
	}
	for _, t := range []*TermStats{&a.TF, &a.TCSend, &a.TCRecv, &a.Wait, &a.TA} {
		t.finish(a.Wall)
	}
	return a
}

// TracesFromLog reconstructs the trace forest of a recorded run: the
// trace sidecar replays the live-measured durations and forced
// workers, then the BMEL event log replays the protocol through a
// fresh collector. The result is byte-identical to the forest the
// live collector held — the repo's replayability invariant extended
// to traces.
func TracesFromLog(src LogSource, tl *TraceLog) (Forest, error) {
	c := NewCollectorFromLog(tl)
	if err := src.ReplayTrace(c); err != nil {
		return nil, err
	}
	return c.Forest(), nil
}
