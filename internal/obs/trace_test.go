package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// sampleRun records a miniature master/worker protocol exchange: the
// shapes every driver emits (paired .start/.end spans, complete spans
// with Dur, instant sends/receives).
func sampleRun(r *Recorder) {
	r.Record(Event{TS: 0.000, Kind: "send", Actor: "master", Detail: "to=1 tag=0"})
	r.Record(Event{TS: 0.000, Kind: "recv", Actor: "worker1", Detail: "from=0 tag=0"})
	r.Record(Event{TS: 0.000, Kind: "eval.start", Actor: "worker1"})
	r.Record(Event{TS: 0.010, Kind: "eval.end", Actor: "worker1"})
	r.Record(Event{TS: 0.010, Kind: "send", Actor: "worker1", Detail: "to=0 tag=1"})
	r.Record(Event{TS: 0.010, Kind: "recv", Actor: "master", Detail: "from=1 tag=1"})
	r.Record(Event{TS: 0.010, Dur: 0.0001, Kind: "algo", Actor: "master"})
}

func TestRecorderJournal(t *testing.T) {
	r := NewRecorder(0)
	sampleRun(r)
	if r.Len() != 7 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("journal line %d is not JSON: %v", lines, err)
		}
		if ev.Kind == "" || ev.Actor == "" {
			t.Fatalf("journal line %d missing kind/actor: %s", lines, sc.Text())
		}
		lines++
	}
	if lines != 7 {
		t.Fatalf("journal has %d lines, want 7", lines)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{TS: float64(i), Kind: "send", Actor: "master"})
	}
	if r.Len() != 3 || r.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d, want 3/7", r.Len(), r.Dropped())
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: "send", Actor: "master"})
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained state")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	r := NewRecorder(0)
	sampleRun(r)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exporter output fails its own schema: %v\n%s", err, buf.String())
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 2 thread_name metadata + 7 protocol events.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9", len(doc.TraceEvents))
	}
	// The master thread is tid 0 and named via metadata.
	meta := doc.TraceEvents[0]
	if meta.Phase != "M" || meta.Name != "thread_name" || meta.TID != 0 || meta.Args["name"] != "master" {
		t.Fatalf("first metadata event = %+v, want master thread_name on tid 0", meta)
	}
	// The worker's eval span becomes a B/E pair with µs timestamps.
	var sawB, sawE, sawX bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "B" && ev.Name == "eval":
			sawB = true
		case ev.Phase == "E":
			sawE = true
			if ev.TS != 0.010*1e6 {
				t.Fatalf("eval end ts = %v µs, want 10000", ev.TS)
			}
		case ev.Phase == "X" && ev.Name == "algo":
			sawX = true
			if ev.Dur != 0.0001*1e6 {
				t.Fatalf("algo dur = %v µs, want 100", ev.Dur)
			}
		}
	}
	if !sawB || !sawE || !sawX {
		t.Fatalf("missing span shapes: B=%v E=%v X=%v", sawB, sawE, sawX)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `[`,
		"no traceEvents": `{}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":0}]}`,
		"missing name":   `{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-5,"pid":1,"tid":0}]}`,
		"E without B":    `{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0},{"ph":"E","ts":1,"pid":1,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	// An unclosed B is a legal mid-flight capture.
	open := `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(open)); err != nil {
		t.Errorf("trace with open span rejected: %v", err)
	}
}
