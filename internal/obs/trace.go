package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event is one entry in a run's protocol journal. TS is seconds since
// the start of the run on whichever clock drives it — the DES virtual
// clock for the virtual-time drivers, the wall clock for the realtime
// and distributed ones. Span events carry a Dur; point events (sends,
// receives, joins, expiries) leave it zero. Kind follows the DES trace
// vocabulary: "send", "recv", "eval.start"/"eval.end" (paired spans),
// "eval" (complete span with Dur), "lease.expire", "join", "dead", …
type Event struct {
	TS     float64 `json:"ts"`
	Dur    float64 `json:"dur,omitempty"`
	Kind   string  `json:"kind"`
	Actor  string  `json:"actor"`
	Detail string  `json:"detail,omitempty"`
}

// Recorder collects protocol events, concurrency-safe, for JSONL
// journaling and Chrome trace export. All methods no-op on a nil
// receiver, so drivers record unconditionally. A retention limit
// bounds memory on long runs; events past it are counted, not kept.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped uint64
}

// NewRecorder returns a Recorder retaining up to limit events
// (0 or negative = DefaultEventLimit).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultEventLimit
	}
	return &Recorder{limit: limit}
}

// DefaultEventLimit bounds retained events per run. At roughly 10
// protocol events per evaluation this covers the paper's N=100,000
// runs with headroom.
const DefaultEventLimit = 2_000_000

// Record appends one event. No-op on a nil recorder; past the
// retention limit events are dropped and counted.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.limit {
		r.dropped++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns the number of events lost to the retention limit.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the retained events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// WriteJSONL writes the journal as one JSON object per line — the
// grep/jq-friendly raw form of the run.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace exports the journal in the Chrome trace_event JSON
// format, rendering the run as a per-actor timeline in
// chrome://tracing or Perfetto. The mapping: every actor becomes a
// named thread; "<kind>.start"/"<kind>.end" pairs become duration
// begin/end events; events with a Dur become complete ("X") events;
// everything else becomes an instant event. Timestamps are converted
// to microseconds (the format's unit), so one virtual second reads as
// one second on the tracing timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()

	// Stable actor → tid assignment: master first, then the rest in
	// first-appearance order.
	tids := map[string]int{}
	order := []string{}
	for _, ev := range events {
		if _, ok := tids[ev.Actor]; !ok {
			tids[ev.Actor] = 0 // placeholder
			order = append(order, ev.Actor)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		mi, mj := order[i] == "master", order[j] == "master"
		if mi != mj {
			return mi
		}
		return false // otherwise keep first-appearance order
	})
	for i, actor := range order {
		tids[actor] = i
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// json.Encoder appends a newline, which doubles as a row
		// separator inside the array.
		return enc.Encode(e)
	}

	const pid = 1
	for _, actor := range order {
		err := emit(chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tids[actor],
			Args: map[string]any{"name": actor},
		})
		if err != nil {
			return err
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			TS:  ev.TS * 1e6,
			PID: pid,
			TID: tids[ev.Actor],
			Cat: "protocol",
		}
		switch {
		case ev.Dur > 0:
			ce.Phase, ce.Name, ce.Dur, ce.Cat = "X", ev.Kind, ev.Dur*1e6, "busy"
		case strings.HasSuffix(ev.Kind, ".start"):
			ce.Phase, ce.Name, ce.Cat = "B", strings.TrimSuffix(ev.Kind, ".start"), "busy"
		case strings.HasSuffix(ev.Kind, ".end"):
			ce.Phase, ce.Name, ce.Cat = "E", strings.TrimSuffix(ev.Kind, ".end"), "busy"
		default:
			ce.Phase, ce.Name, ce.Scope = "i", ev.Kind, "t"
		}
		if ev.Detail != "" {
			ce.Args = map[string]any{"detail": ev.Detail}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one trace_event-format record. ID and BindPoint are
// only set on flow events ("s"/"t"/"f"), which the forest exporter
// uses to draw cross-process arrows.
type chromeEvent struct {
	Name      string         `json:"name"`
	Phase     string         `json:"ph"`
	TS        float64        `json:"ts"`
	Dur       float64        `json:"dur,omitempty"`
	PID       int            `json:"pid"`
	TID       int            `json:"tid"`
	Cat       string         `json:"cat,omitempty"`
	Scope     string         `json:"s,omitempty"`
	ID        string         `json:"id,omitempty"`
	BindPoint string         `json:"bp,omitempty"`
	Args      map[string]any `json:"args,omitempty"`
}

// ValidateChromeTrace checks data against the Chrome trace-event
// schema subset this package emits: a top-level object with a
// traceEvents array whose entries carry a name, a known phase, a
// non-negative timestamp, pid/tid, a non-negative dur on complete
// events — and whose E duration events each close an open B on their
// thread. Spans still open at the end of the trace are legal (a run
// captured mid-flight, or a journal truncated by its retention
// limit); Perfetto renders them as unterminated slices. It is the
// golden-test oracle for `-trace` output.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	depth := map[[2]int]int{} // (pid,tid) → open B events
	for i, raw := range doc.TraceEvents {
		var ev chromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("obs: traceEvents[%d]: %w", i, err)
		}
		switch ev.Phase {
		case "B", "E", "X", "i", "I", "M", "C":
		case "s", "t", "f": // flow events: cross-process arrows
			if ev.ID == "" {
				return fmt.Errorf("obs: traceEvents[%d]: flow event without id", i)
			}
		default:
			return fmt.Errorf("obs: traceEvents[%d]: unknown phase %q", i, ev.Phase)
		}
		if ev.Name == "" && ev.Phase != "E" {
			return fmt.Errorf("obs: traceEvents[%d]: missing name", i)
		}
		if ev.TS < 0 {
			return fmt.Errorf("obs: traceEvents[%d]: negative ts %v", i, ev.TS)
		}
		if ev.Phase == "X" && ev.Dur < 0 {
			return fmt.Errorf("obs: traceEvents[%d]: complete event with negative dur %v", i, ev.Dur)
		}
		key := [2]int{ev.PID, ev.TID}
		switch ev.Phase {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				return fmt.Errorf("obs: traceEvents[%d]: E without matching B on pid=%d tid=%d", i, ev.PID, ev.TID)
			}
		}
	}
	return nil
}
