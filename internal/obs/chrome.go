package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export of trace forests. Unlike the Recorder's
// single-process journal export (trace.go), a forest renders truly
// cross-process: each island's master is one pid, its worker fleet a
// second pid with one thread per worker, and flow events ("s"/"f")
// draw the grant → compute → result arrows across them — plus
// emigrant → migrant arrows between islands in a merged export.

// WriteChromeTrace exports a single forest (master pid 1, workers
// pid 2) in Chrome trace_event JSON.
func (f Forest) WriteChromeTrace(w io.Writer) error {
	return WriteChromeForests(w, []string{"island"}, []Forest{f})
}

// WriteChromeForests exports several forests — typically one per
// island — into one Chrome trace. Forest i's master is pid 2i+1, its
// workers pid 2i+2; migration links between forests connect as flow
// arrows because emigrant and migrant spans share the emigrant's
// trace id.
func WriteChromeForests(w io.Writer, labels []string, forests []Forest) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(e)
	}
	for i, f := range forests {
		label := fmt.Sprintf("island %d", i)
		if i < len(labels) {
			label = labels[i]
		}
		if err := emitForest(emit, f, 2*i+1, label); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func emitForest(emit func(chromeEvent) error, f Forest, masterPID int, label string) error {
	workerPID := masterPID + 1
	meta := []chromeEvent{
		{Name: "process_name", Phase: "M", PID: masterPID,
			Args: map[string]any{"name": label + " master"}},
		{Name: "process_name", Phase: "M", PID: workerPID,
			Args: map[string]any{"name": label + " workers"}},
	}
	workers := map[int]bool{}
	for _, s := range f {
		if s.Name == "eval" {
			workers[s.Worker] = true
		}
	}
	tids := make([]int, 0, len(workers))
	for w := range workers {
		tids = append(tids, w)
	}
	sort.Ints(tids)
	for _, w := range tids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: workerPID, TID: w,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	for _, e := range meta {
		if err := emit(e); err != nil {
			return err
		}
	}

	span := func(s *Span, pid, tid int, cat string) chromeEvent {
		start, dur := s.Start, s.End-s.Start
		if start < 0 { // wall-clock jitter can push a derived start past 0
			start = 0
		}
		if dur < 0 {
			dur = 0
		}
		ce := chromeEvent{
			Name: s.Name, TS: start * 1e6, PID: pid, TID: tid, Cat: cat,
			Args: map[string]any{
				"trace_id": fmt.Sprintf("%016x", s.TraceID),
				"item":     s.Item,
			},
		}
		if dur > 0 {
			ce.Phase, ce.Dur = "X", dur*1e6
		} else {
			ce.Phase, ce.Scope = "i", "t"
		}
		return ce
	}
	flow := func(phase, name, id string, ts float64, pid, tid int) chromeEvent {
		ce := chromeEvent{
			Name: name, Phase: phase, TS: ts * 1e6, PID: pid, TID: tid,
			Cat: "flow", ID: id,
		}
		if phase == "f" {
			ce.BindPoint = "e" // bind to the enclosing slice
		}
		return ce
	}

	for _, root := range f {
		switch root.Name {
		case "migrant":
			ce := span(root, masterPID, 0, "migration")
			ce.Args["source"] = root.Worker
			if err := emit(ce); err != nil {
				return err
			}
			if root.LinkID != 0 {
				err := emit(flow("f", "migrate", fmt.Sprintf("%016x", root.LinkID),
					root.Start, masterPID, 0))
				if err != nil {
					return err
				}
			}
			continue
		case "emigrant":
			if err := emit(span(root, masterPID, 0, "migration")); err != nil {
				return err
			}
			err := emit(flow("s", "migrate", fmt.Sprintf("%016x", root.TraceID),
				root.Start, masterPID, 0))
			if err != nil {
				return err
			}
			continue
		}

		// Evaluation tree: the root and tf live on the worker's
		// thread, the master-side terms on the master pid, with grant
		// and result flow arrows tying them together.
		if err := emit(span(root, workerPID, root.Worker, "eval")); err != nil {
			return err
		}
		var tf *Span
		for _, ch := range root.Children {
			pid, tid := masterPID, 0
			if ch.Name == "tf" {
				pid, tid, tf = workerPID, root.Worker, ch
			}
			if err := emit(span(ch, pid, tid, "eval")); err != nil {
				return err
			}
		}
		if tf != nil {
			id := fmt.Sprintf("%016x.%x", root.TraceID, root.Item)
			tfStart, tfEnd := tf.Start, tf.End
			if tfStart < 0 {
				tfStart = 0
			}
			if tfEnd < 0 {
				tfEnd = 0
			}
			for _, e := range []chromeEvent{
				flow("s", "grant", id+".g", root.Start, masterPID, 0),
				flow("f", "grant", id+".g", tfStart, workerPID, root.Worker),
				flow("s", "result", id+".r", tfEnd, workerPID, root.Worker),
				flow("f", "result", id+".r", root.End, masterPID, 0),
			} {
				if err := emit(e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
