package obs

import (
	"math"
	"sort"
	"testing"

	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// draw samples n values from dist into a slice.
func draw(t *testing.T, dist stats.Distribution, seed uint64, n int) []float64 {
	t.Helper()
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = dist.Sample(r)
	}
	return xs
}

// relErr is |a−b|/|b|.
func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// The streaming estimators exist to substitute for the batch
// statistics in internal/stats; these property tests pin the
// convergence on the same heavy-tailed shapes the paper's timing
// processes have (lognormal-ish T_A, exponential-ish failure gaps).
func TestWelfordMatchesSummarize(t *testing.T) {
	dists := map[string]stats.Distribution{
		"lognormal":   stats.NewLogNormal(0, 0.5),
		"exponential": stats.NewExponential(3),
	}
	for name, dist := range dists {
		xs := draw(t, dist, 42, 50000)
		var w Welford
		for _, x := range xs {
			w.Observe(x)
		}
		want := stats.Summarize(xs)
		if w.Count() != uint64(want.N) {
			t.Fatalf("%s: count %d, want %d", name, w.Count(), want.N)
		}
		// Welford is the numerically stable form of the same sums, so
		// agreement should be at floating-point precision.
		if e := relErr(w.Mean(), want.Mean); e > 1e-9 {
			t.Errorf("%s: mean %v vs %v (rel %v)", name, w.Mean(), want.Mean, e)
		}
		if e := relErr(w.Variance(), want.Variance); e > 1e-9 {
			t.Errorf("%s: variance %v vs %v (rel %v)", name, w.Variance(), want.Variance, e)
		}
		if e := relErr(w.CV(), want.CV()); e > 1e-9 {
			t.Errorf("%s: cv %v vs %v (rel %v)", name, w.CV(), want.CV(), e)
		}
	}
}

func TestP2QuantileConvergesToBatchQuantile(t *testing.T) {
	dists := map[string]stats.Distribution{
		"lognormal":   stats.NewLogNormal(0, 0.5),
		"exponential": stats.NewExponential(3),
	}
	quantiles := []struct {
		q   float64
		tol float64
	}{
		{0.50, 0.05},
		{0.90, 0.05},
		{0.99, 0.10}, // the tail needs more samples; allow a looser bound
	}
	for name, dist := range dists {
		xs := draw(t, dist, 7, 50000)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, tc := range quantiles {
			est := NewP2Quantile(tc.q)
			for _, x := range xs {
				est.Observe(x)
			}
			want := stats.Quantile(sorted, tc.q)
			if e := relErr(est.Value(), want); e > tc.tol {
				t.Errorf("%s p%.0f: P² %v vs batch %v (rel %v > %v)",
					name, 100*tc.q, est.Value(), want, e, tc.tol)
			}
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	// Below five observations the estimator interpolates the sorted
	// sample with the same convention as stats.Quantile.
	xs := []float64{5, 1, 4, 2}
	est := NewP2Quantile(0.5)
	for _, x := range xs {
		est.Observe(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got, want := est.Value(), stats.Quantile(sorted, 0.5); got != want {
		t.Fatalf("small-sample median %v, want %v", got, want)
	}
	if NewP2Quantile(0.9).Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
}

func TestEWMABiasCorrection(t *testing.T) {
	e := NewEWMA(0.05)
	e.Observe(10)
	// One observation must report the observation itself, not a value
	// dragged toward zero by the empty initial state.
	if got := e.Value(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("first value %v, want 10", got)
	}
	for i := 0; i < 500; i++ {
		e.Observe(2)
	}
	if got := e.Value(); math.Abs(got-2) > 1e-6 {
		t.Fatalf("converged value %v, want 2", got)
	}
	// A constant stream is reported exactly regardless of count.
	c := NewEWMA(0.3)
	for i := 0; i < 3; i++ {
		c.Observe(7)
	}
	if got := c.Value(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("constant stream %v, want 7", got)
	}
}

func TestEWMATracksRegimeChange(t *testing.T) {
	// The straggler detector relies on the decayed mean following a
	// worker that suddenly slows down.
	e := NewEWMA(0.05)
	for i := 0; i < 200; i++ {
		e.Observe(1)
	}
	for i := 0; i < 200; i++ {
		e.Observe(10)
	}
	if got := e.Value(); got < 9.9 {
		t.Fatalf("after regime change value %v, want ~10", got)
	}
}
