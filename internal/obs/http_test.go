package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.frames_sent").Add(7)
	reg.Histogram("master.tf_seconds", nil).Observe(0.25)

	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", srv.Addr())

	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if string(vars["wire.frames_sent"]) != "7" {
		t.Fatalf("frames_sent = %s, want 7", vars["wire.frames_sent"])
	}
	for _, key := range []string{"master.tf_seconds", "runtime.goroutines", "runtime.heap_alloc_bytes"} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("/debug/vars missing %q", key)
		}
	}

	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (no index)", code)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, fmt.Sprintf("http://%s/debug/vars", srv.Addr()))
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["runtime.goroutines"]; !ok {
		t.Fatal("runtime figures missing with nil registry")
	}
}
