package obs

import "math"

// SpanContext identifies one evaluation's trace as it crosses process
// boundaries: a 64-bit trace id shared by every span of the
// evaluation (and by lease-resubmitted clones, which inherit their
// parent's id so a lineage reads as one trace), a span id naming the
// position inside the trace, and a flags byte carrying the head-based
// sampling decision. The zero value is "not traced"; wire frames only
// grow the trace header when the context is Valid.
//
// Ids are minted deterministically — a splitmix64-style hash of
// (run id, lineage-root item id) — so an offline replay of the same
// BMEL event log re-mints the identical context for every evaluation.
// That is what lets TracesFromLog reproduce a live trace forest
// byte-for-byte without the ids ever being recorded.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// FlagSampled marks a trace selected by head-based sampling. Spans of
// unsampled traces are still collected (attribution wants every
// evaluation) but only sampled, expired, or straggler-forced traces
// are emitted by Collector.Forest.
const FlagSampled uint8 = 1 << 0

// Valid reports whether the context names a trace. Invalid contexts
// encode as version-1 wire frames with no trace header.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// Sampled reports the head-based sampling bit.
func (c SpanContext) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used for trace-id minting and sampling decisions.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MintTraceID derives the trace id for key under runID. Trace id 0
// means "untraced", so the hash is nudged away from zero.
func MintTraceID(runID, key uint64) uint64 {
	id := Mix64(runID ^ Mix64(key))
	if id == 0 {
		id = 1
	}
	return id
}

// Span-role salts for mintSpanID: every span of a trace gets a
// distinct, deterministic id from (trace id, item id, role).
const (
	roleEval uint64 = iota + 1
	roleTCSend
	roleTF
	roleWait
	roleTCRecv
	roleTA
	roleMigrant
	roleEmigrant
)

func mintSpanID(traceID, item, role uint64) uint64 {
	id := Mix64(traceID ^ Mix64(item<<8|role))
	if id == 0 {
		id = 1
	}
	return id
}

// SampleHead is the deterministic head-based sampling decision: a
// trace is sampled iff the hash of its id falls below rate. The same
// trace id always decides the same way, on every process and on
// replay.
func SampleHead(traceID uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return float64(Mix64(traceID^0xa0761d6478bd642f)) < rate*float64(math.MaxUint64)
}
