package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The trace sidecar ("BTRC") persists the half of a run's trace state
// that the BMEL event log cannot reproduce: live-measured model-term
// durations (exact float64 bits, so reconstruction is bit-exact),
// straggler-forced workers, and migration link contexts. Everything
// else — grants, results, expiries, resubmission lineage, migrant
// events and all their timestamps — replays from the BMEL log itself.
//
// Layout: a fixed header (magic "BTRC", version, run id, sampling
// rate), then 26-byte records until EOF. Like the BMEL log the tail
// is torn-write tolerant: a partial trailing record is ignored, so a
// crashed run keeps every complete record.

const (
	traceMagic   = "BTRC"
	traceVersion = 1

	// TraceHeaderSize and TraceRecSize are the on-disk sizes.
	TraceHeaderSize = 4 + 1 + 8 + 8
	TraceRecSize    = 1 + 8 + 8 + 8 + 1
)

// TraceRec sidecar record kinds.
const (
	recTCSend uint8 = iota + 1
	recTCRecv
	recWait
	recTF
	recTA
	recForce
	recMigLink
	recEmigrant
)

// TraceRec is one sidecar record. Field use by kind: duration records
// (tc.send/tc.recv/wait/tf/ta) carry A=item, C=float64 bits; force
// carries A=worker; miglink carries A=epoch, B=remote trace id,
// C=remote span id, Flags=remote flags; emigrant carries A=epoch,
// C=float64 bits of the send time.
type TraceRec struct {
	Kind  uint8
	A     uint64
	B     uint64
	C     uint64
	Flags uint8
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// TraceLog is the parsed sidecar: the collector configuration that
// minted the run's trace ids plus every record, in record order.
type TraceLog struct {
	RunID uint64
	Rate  float64
	Recs  []TraceRec
}

// TraceLog snapshots the collector's sidecar state for persistence.
func (c *Collector) TraceLog() *TraceLog {
	if c == nil {
		return &TraceLog{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := make([]TraceRec, len(c.recs))
	copy(recs, c.recs)
	return &TraceLog{RunID: c.runID, Rate: c.rate, Recs: recs}
}

// WriteTo serializes the sidecar.
func (l *TraceLog) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, TraceHeaderSize+len(l.Recs)*TraceRecSize)
	buf = append(buf, traceMagic...)
	buf = append(buf, traceVersion)
	buf = binary.BigEndian.AppendUint64(buf, l.RunID)
	buf = binary.BigEndian.AppendUint64(buf, f64bits(l.Rate))
	for _, r := range l.Recs {
		buf = append(buf, r.Kind)
		buf = binary.BigEndian.AppendUint64(buf, r.A)
		buf = binary.BigEndian.AppendUint64(buf, r.B)
		buf = binary.BigEndian.AppendUint64(buf, r.C)
		buf = append(buf, r.Flags)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadTraceLog parses a sidecar, tolerating a torn trailing record.
func ReadTraceLog(r io.Reader) (*TraceLog, error) {
	hdr := make([]byte, TraceHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("obs: reading trace sidecar header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("obs: not a trace sidecar (magic %q)", hdr[:4])
	}
	if hdr[4] != traceVersion {
		return nil, fmt.Errorf("obs: unsupported trace sidecar version %d", hdr[4])
	}
	l := &TraceLog{
		RunID: binary.BigEndian.Uint64(hdr[5:]),
		Rate:  math.Float64frombits(binary.BigEndian.Uint64(hdr[13:])),
	}
	rec := make([]byte, TraceRecSize)
	for {
		_, err := io.ReadFull(r, rec)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return l, nil // torn tail: keep every complete record
		}
		if err != nil {
			return nil, fmt.Errorf("obs: reading trace sidecar record: %w", err)
		}
		l.Recs = append(l.Recs, TraceRec{
			Kind:  rec[0],
			A:     binary.BigEndian.Uint64(rec[1:]),
			B:     binary.BigEndian.Uint64(rec[9:]),
			C:     binary.BigEndian.Uint64(rec[17:]),
			Flags: rec[25],
		})
	}
}

// NewCollectorFromLog builds a collector primed with a recorded
// sidecar's configuration and records; replaying the matching BMEL
// log through it (TracesFromLog) reconstructs the live forest.
func NewCollectorFromLog(tl *TraceLog) *Collector {
	c := NewCollector(CollectorConfig{RunID: tl.RunID, Rate: tl.Rate})
	c.Apply(tl.Recs)
	return c
}

// Apply replays sidecar records into the collector. Duration and link
// records merge into the same per-item/per-epoch state the live
// observations fed, so order against the protocol replay is
// irrelevant.
func (c *Collector) Apply(recs []TraceRec) {
	if c == nil {
		return
	}
	for _, r := range recs {
		switch r.Kind {
		case recTCSend, recTCRecv, recWait, recTF, recTA:
			c.observe(r.Kind, r.A, math.Float64frombits(r.C), false)
		case recForce:
			c.mu.Lock()
			c.forced[int(r.A)] = true
			c.mu.Unlock()
		case recMigLink:
			c.mu.Lock()
			c.migrant(r.A).link = SpanContext{TraceID: r.B, SpanID: r.C, Flags: r.Flags}
			c.mu.Unlock()
		case recEmigrant:
			c.mu.Lock()
			c.emig[r.A] = math.Float64frombits(r.C)
			c.mu.Unlock()
		}
	}
}
