package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger returns the shared CLI logger used by cmd/borg, cmd/borgd,
// cmd/table2 and the examples: leveled slog with key=value text output
// (machine-parseable, one event per line). verbose lowers the level to
// Debug — the cmds' -v flag.
func NewLogger(w io.Writer, verbose bool) *slog.Logger {
	lvl := slog.LevelInfo
	if verbose {
		lvl = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl}))
}

// Logf adapts a slog.Logger to the printf-style Logf callbacks on
// DistributedConfig and WorkerConfig, logging at Info level.
func Logf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
