package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SnapshotLine is one entry of a periodic metrics journal: the wall
// timestamp and the registry snapshot at that instant, one compact
// JSON object per line.
type SnapshotLine struct {
	TS      string         `json:"ts"`
	Metrics map[string]any `json:"metrics"`
}

// SnapshotWriter periodically appends one-line JSON registry
// snapshots to a writer — the worker-daemon side of `-advise-out`,
// where no master-side advisor exists but the wire and evaluation
// telemetry is still worth streaming to disk. Close flushes one final
// snapshot, so an interrupted run keeps everything up to the moment
// of the signal.
type SnapshotWriter struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	reg  *Registry
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// StartSnapshots begins writing a snapshot of reg to w every
// interval. Intervals below one second are raised to one second.
func StartSnapshots(w io.Writer, reg *Registry, every time.Duration) *SnapshotWriter {
	if every < time.Second {
		every = time.Second
	}
	s := &SnapshotWriter{bw: bufio.NewWriter(w), reg: reg, done: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				s.write()
			}
		}
	}()
	return s
}

// write appends one snapshot line, retaining the first error.
func (s *SnapshotWriter) write() {
	s.mu.Lock()
	defer s.mu.Unlock()
	line := SnapshotLine{
		TS:      time.Now().UTC().Format(time.RFC3339Nano),
		Metrics: s.reg.Snapshot(),
	}
	if err := json.NewEncoder(s.bw).Encode(line); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
}

// Close stops the ticker, writes a final snapshot and flushes. It is
// safe to call more than once; later calls return the first error.
func (s *SnapshotWriter) Close() error {
	s.once.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.write()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
