package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// writeJSONMap best-effort encodes m; a failed write mid-body leaves
// the client with a truncated response, which is all HTTP offers.
func writeJSONMap(w io.Writer, m map[string]any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m) //nolint:errcheck
}

// DebugServer is a live introspection endpoint for a running master or
// worker daemon:
//
//	/healthz        — liveness probe ("ok": the process serves HTTP)
//	/readyz         — readiness probe; reflects the WithReadiness
//	                check, so a draining job server can fail it while
//	                staying alive
//	/debug/vars     — the attached Registry's metrics as JSON
//	                (expvar-style), plus runtime goroutine/heap figures
//	/debug/metrics  — the same registry in Prometheus text exposition
//	                format, for standard scrapers
//	/debug/pprof/   — the standard Go profiling handlers
//
// It binds its own listener and mux, so importing this package never
// touches http.DefaultServeMux.
type DebugServer struct {
	ln    net.Listener
	srv   *http.Server
	ready func() error
}

// DebugOption extends a debug server at construction time.
type DebugOption func(s *DebugServer, mux *http.ServeMux)

// WithHandler mounts an extra handler on the debug mux — the hook the
// scalability advisor uses to serve /debug/scaling next to
// /debug/vars without obs depending on internal/advisor.
func WithHandler(pattern string, h http.Handler) DebugOption {
	return func(_ *DebugServer, mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// WithReadiness installs the /readyz check: nil means ready (200), an
// error is served as 503 with the reason. Without this option the
// server is always ready — liveness and readiness coincide, the
// pre-job-server behavior.
func WithReadiness(check func() error) DebugOption {
	return func(s *DebugServer, _ *http.ServeMux) { s.ready = check }
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060", or
// ":0" to pick a free port — see Addr). The registry may be nil, in
// which case /debug/vars reports only runtime figures and
// /debug/metrics is empty.
func ServeDebug(addr string, reg *Registry, opts ...DebugOption) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	s := &DebugServer{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.ready != nil {
			if err := s.ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := reg.Snapshot()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		snap["runtime.goroutines"] = runtime.NumGoroutine()
		snap["runtime.heap_alloc_bytes"] = ms.HeapAlloc
		snap["runtime.num_gc"] = ms.NumGC
		writeJSONMap(w, snap)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // best-effort, like /debug/vars
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(s, mux)
	}

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases its port.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Shutdown gracefully drains the server: the listener closes at once
// (readiness probes start failing at the LB), in-flight requests run
// to completion or until ctx expires.
func (s *DebugServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
