package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// writeJSONMap best-effort encodes m; a failed write mid-body leaves
// the client with a truncated response, which is all HTTP offers.
func writeJSONMap(w io.Writer, m map[string]any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m) //nolint:errcheck
}

// DebugServer is a live introspection endpoint for a running master or
// worker daemon:
//
//	/healthz        — liveness probe ("ok")
//	/debug/vars     — the attached Registry's metrics as JSON
//	                (expvar-style), plus runtime goroutine/heap figures
//	/debug/metrics  — the same registry in Prometheus text exposition
//	                format, for standard scrapers
//	/debug/pprof/   — the standard Go profiling handlers
//
// It binds its own listener and mux, so importing this package never
// touches http.DefaultServeMux.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugOption extends a debug server at construction time.
type DebugOption func(mux *http.ServeMux)

// WithHandler mounts an extra handler on the debug mux — the hook the
// scalability advisor uses to serve /debug/scaling next to
// /debug/vars without obs depending on internal/advisor.
func WithHandler(pattern string, h http.Handler) DebugOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060", or
// ":0" to pick a free port — see Addr). The registry may be nil, in
// which case /debug/vars reports only runtime figures and
// /debug/metrics is empty.
func ServeDebug(addr string, reg *Registry, opts ...DebugOption) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := reg.Snapshot()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		snap["runtime.goroutines"] = runtime.NumGoroutine()
		snap["runtime.heap_alloc_bytes"] = ms.HeapAlloc
		snap["runtime.num_gc"] = ms.NumGC
		writeJSONMap(w, snap)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // best-effort, like /debug/vars
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}

	s := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases its port.
func (s *DebugServer) Close() error { return s.srv.Close() }
