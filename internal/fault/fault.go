// Package fault injects composable failure models into the virtual
// cluster, driven by the discrete-event clock. It makes the paper's
// §VI graceful-degradation claim testable: the related master-slave
// systems this reproduction targets (enterprise clouds, lossy
// distributed islands) lose workers mid-run, and the drivers in
// internal/parallel must finish the evaluation budget anyway.
//
// A Plan is a set of Rules, each applying one failure Model to a set
// of node ranks, plus an optional message-loss probability. Attach
// compiles the plan into engine events on the cluster's clock:
//
//	plan := &fault.Plan{
//		Rules: []fault.Rule{{
//			Fraction: 0.25, // first quarter of the workers
//			Model:    fault.CrashRecover{MTBF: mtbf, MTTR: mttr},
//		}},
//		MessageLoss: 0.001,
//		Seed:        7,
//	}
//	inj := fault.Attach(cl, plan)
//	... run ...
//	inj.Stats() // crashes, recoveries, hangs injected
//
// All fault processes draw from a dedicated RNG stream seeded by
// Plan.Seed, so fault timelines are deterministic and independent of
// the algorithm's random streams: attaching an empty plan leaves a
// run bit-for-bit unchanged, and the same plan replays the same
// failure schedule across experiments.
package fault

import (
	"fmt"
	"math"

	"borgmoea/internal/cluster"
	"borgmoea/internal/des"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
)

// Model is one failure process applied to a single node. Implementations
// schedule their fault transitions on the injector's engine.
type Model interface {
	// Name identifies the model ("crash-stop", "crash-recover", ...).
	Name() string
	// install schedules the model's events for the node.
	install(inj *Injector, node *cluster.Node)
}

// CrashStop kills the node once, at a time sampled from At, and never
// recovers it. In-flight work and queued messages are lost.
type CrashStop struct {
	// At is the failure-time distribution (required).
	At stats.Distribution
}

// Name implements Model.
func (m CrashStop) Name() string { return "crash-stop" }

func (m CrashStop) install(inj *Injector, node *cluster.Node) {
	inj.eng.Schedule(nonNeg(m.At.Sample(inj.rng)), func() {
		inj.crash(node)
	})
}

// CrashRecover alternates the node between up and down states: up
// intervals are drawn from MTBF (mean time between failures), down
// intervals from MTTR (mean time to repair). With exponential
// distributions the steady-state failed fraction of affected nodes is
// MTTR.Mean() / (MTBF.Mean() + MTTR.Mean()).
type CrashRecover struct {
	// MTBF is the up-interval distribution (required).
	MTBF stats.Distribution
	// MTTR is the down-interval distribution (required).
	MTTR stats.Distribution
}

// Name implements Model.
func (m CrashRecover) Name() string { return "crash-recover" }

func (m CrashRecover) install(inj *Injector, node *cluster.Node) {
	var up func()
	up = func() {
		if inj.stopped {
			return
		}
		inj.eng.Schedule(nonNeg(m.MTBF.Sample(inj.rng)), func() {
			if inj.stopped {
				return
			}
			inj.crash(node)
			inj.eng.Schedule(nonNeg(m.MTTR.Sample(inj.rng)), func() {
				inj.recover(node)
				up()
			})
		})
	}
	up()
}

// TransientHang freezes the node for a bounded interval: it keeps its
// state and queued messages but stops responding until the hang ends.
// Hangs repeat with up intervals drawn from Every and hang lengths
// from Duration.
type TransientHang struct {
	// Every is the distribution of responsive intervals between hangs
	// (required).
	Every stats.Distribution
	// Duration is the hang-length distribution (required).
	Duration stats.Distribution
}

// Name implements Model.
func (m TransientHang) Name() string { return "transient-hang" }

func (m TransientHang) install(inj *Injector, node *cluster.Node) {
	var up func()
	up = func() {
		if inj.stopped {
			return
		}
		inj.eng.Schedule(nonNeg(m.Every.Sample(inj.rng)), func() {
			if inj.stopped {
				return
			}
			d := nonNeg(m.Duration.Sample(inj.rng))
			inj.hang(node, d)
			inj.eng.Schedule(d, up)
		})
	}
	up()
}

// Rule applies one Model to a set of node ranks.
type Rule struct {
	// Ranks are the explicit node ranks the model applies to. When
	// nil, Fraction selects ranks instead.
	Ranks []int
	// Fraction, used when Ranks is nil, applies the model to the first
	// ⌈Fraction·(P−1)⌉ worker ranks (1..P−1; rank 0, the master, is
	// never selected by Fraction — master failure is not part of the
	// paper's model).
	Fraction float64
	// Model is the failure process (required).
	Model Model
}

// Plan is a composable fault-injection schedule for one cluster run.
// The zero value (and nil) is the empty plan: attaching it is a no-op
// and leaves the run unchanged.
type Plan struct {
	// Rules lists the (ranks, model) pairs to install.
	Rules []Rule
	// MessageLoss drops each delivered message independently with this
	// probability (0 disables).
	MessageLoss float64
	// Seed seeds the dedicated fault RNG stream. Distinct from the
	// run's algorithm seed so fault timelines replay independently.
	Seed uint64
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Rules) == 0 && p.MessageLoss == 0)
}

// Validate checks distributions and parameters before a run.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.MessageLoss < 0 || p.MessageLoss >= 1 {
		return fmt.Errorf("fault: MessageLoss %v outside [0,1)", p.MessageLoss)
	}
	for i, r := range p.Rules {
		if r.Model == nil {
			return fmt.Errorf("fault: rule %d has no model", i)
		}
		if r.Ranks == nil && (r.Fraction <= 0 || r.Fraction > 1) {
			return fmt.Errorf("fault: rule %d fraction %v outside (0,1]", i, r.Fraction)
		}
		switch m := r.Model.(type) {
		case CrashStop:
			if m.At == nil {
				return fmt.Errorf("fault: rule %d crash-stop needs At", i)
			}
		case CrashRecover:
			if m.MTBF == nil || m.MTTR == nil {
				return fmt.Errorf("fault: rule %d crash-recover needs MTBF and MTTR", i)
			}
		case TransientHang:
			if m.Every == nil || m.Duration == nil {
				return fmt.Errorf("fault: rule %d transient-hang needs Every and Duration", i)
			}
		}
	}
	return nil
}

// Stats counts the fault events an Injector has delivered.
type Stats struct {
	// Crashes and Recoveries count node state transitions.
	Crashes, Recoveries uint64
	// Hangs counts transient-hang injections.
	Hangs uint64
	// MessagesDropped counts deliveries discarded by the loss hook.
	MessagesDropped uint64
}

// Injector is a plan attached to a cluster. It owns the fault RNG
// stream and the event counters.
type Injector struct {
	eng     *des.Engine
	rng     *rng.Source
	stats   Stats
	stopped bool
	onTrans func(rank int, up bool)
}

// Stats returns the fault events injected so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// SetTransitionHook registers a callback invoked after every node state
// transition (up=false on crash, up=true on recovery). The drivers use
// it to push re-registration messages from recovered workers. Must be
// set before Engine.Run.
func (inj *Injector) SetTransitionHook(fn func(rank int, up bool)) { inj.onTrans = fn }

// Stop deactivates the injector: recurring fault chains (crash-recover,
// transient-hang) stop rescheduling and pending fault events become
// no-ops. Drivers call it at teardown so an otherwise-infinite fault
// schedule cannot keep the simulation alive after the run finished.
func (inj *Injector) Stop() { inj.stopped = true }

func (inj *Injector) crash(n *cluster.Node) {
	if inj.stopped || n.Failed() {
		return
	}
	n.Fail()
	inj.stats.Crashes++
	if inj.onTrans != nil {
		inj.onTrans(n.Rank(), false)
	}
}

func (inj *Injector) recover(n *cluster.Node) {
	if inj.stopped || !n.Failed() {
		return
	}
	n.Recover()
	inj.stats.Recoveries++
	if inj.onTrans != nil {
		inj.onTrans(n.Rank(), true)
	}
}

func (inj *Injector) hang(n *cluster.Node, d des.Time) {
	if inj.stopped {
		return
	}
	n.Suspend(inj.eng.Now() + d)
	inj.stats.Hangs++
}

// Attach compiles the plan into fault events on the cluster's engine
// and returns the Injector tracking them. It must be called before
// Engine.Run, at cluster-construction time. Attaching a nil or empty
// plan returns a usable zero-stat Injector without touching the
// cluster. Attach panics on an invalid plan (use Validate first for
// error returns).
func Attach(cl *cluster.Cluster, p *Plan) *Injector {
	inj := &Injector{eng: cl.Engine()}
	if p.Empty() {
		return inj
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	inj.rng = rng.New(p.Seed ^ 0x6661756c74) // "fault"
	for _, r := range p.Rules {
		for _, rank := range r.ranks(cl.Size()) {
			if rank < 0 || rank >= cl.Size() {
				panic(fmt.Sprintf("fault: rule targets invalid rank %d", rank))
			}
			r.Model.install(inj, cl.Node(rank))
		}
	}
	if p.MessageLoss > 0 {
		loss := p.MessageLoss
		cl.SetDropFn(func(*cluster.Message) bool {
			if inj.rng.Float64() < loss {
				inj.stats.MessagesDropped++
				return true
			}
			return false
		})
	}
	return inj
}

// ranks resolves the rule's target ranks for a cluster of size p.
func (r Rule) ranks(p int) []int {
	if r.Ranks != nil {
		return r.Ranks
	}
	workers := p - 1
	n := int(math.Ceil(r.Fraction * float64(workers)))
	if n > workers {
		n = workers
	}
	out := make([]int, 0, n)
	for w := 1; w <= n; w++ {
		out = append(out, w)
	}
	return out
}

// nonNeg clamps sampled delays at zero (distributions such as Normal
// can go negative).
func nonNeg(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return x
}

// FailedFractionPlan is a convenience constructor for the resilience
// experiments: a crash-recover plan over all workers with exponential
// MTBF/MTTR chosen so the expected fraction of workers down at any
// instant is failedFraction, with mean repair time mttr seconds.
// failedFraction must lie in (0, 1).
func FailedFractionPlan(failedFraction, mttr float64, seed uint64) *Plan {
	if failedFraction <= 0 || failedFraction >= 1 {
		panic(fmt.Sprintf("fault: failed fraction %v outside (0,1)", failedFraction))
	}
	if mttr <= 0 {
		panic("fault: MTTR must be positive")
	}
	// f = MTTR/(MTBF+MTTR)  ⇒  MTBF = MTTR·(1−f)/f.
	mtbf := mttr * (1 - failedFraction) / failedFraction
	return &Plan{
		Rules: []Rule{{
			Fraction: 1,
			Model: CrashRecover{
				MTBF: stats.NewExponential(1 / mtbf),
				MTTR: stats.NewExponential(1 / mttr),
			},
		}},
		Seed: seed,
	}
}
