package fault

import (
	"strings"
	"testing"

	"borgmoea/internal/cluster"
	"borgmoea/internal/des"
	"borgmoea/internal/stats"
)

func newCluster(nodes int) (*des.Engine, *cluster.Cluster) {
	eng := des.New()
	return eng, cluster.New(eng, cluster.Config{Nodes: nodes, Seed: 1})
}

func TestEmptyPlanIsNoOp(t *testing.T) {
	_, cl := newCluster(4)
	for _, p := range []*Plan{nil, {}} {
		inj := Attach(cl, p)
		if inj == nil {
			t.Fatal("Attach returned nil injector")
		}
		if s := inj.Stats(); s != (Stats{}) {
			t.Fatalf("empty plan produced stats %+v", s)
		}
	}
}

func TestCrashStop(t *testing.T) {
	eng, cl := newCluster(3)
	inj := Attach(cl, &Plan{
		Rules: []Rule{{Ranks: []int{1}, Model: CrashStop{At: stats.NewConstant(5)}}},
		Seed:  1,
	})
	eng.RunUntil(10)
	if !cl.Node(1).Failed() {
		t.Fatal("node 1 did not crash")
	}
	if cl.Node(2).Failed() {
		t.Fatal("node 2 crashed but was not targeted")
	}
	st := inj.Stats()
	if st.Crashes != 1 || st.Recoveries != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 0 recoveries", st)
	}
	if e := cl.Node(1).Epoch(); e != 1 {
		t.Fatalf("epoch = %d after one crash, want 1", e)
	}
}

func TestCrashRecoverAlternates(t *testing.T) {
	eng, cl := newCluster(2)
	inj := Attach(cl, &Plan{
		Rules: []Rule{{Ranks: []int{1}, Model: CrashRecover{
			MTBF: stats.NewConstant(2),
			MTTR: stats.NewConstant(1),
		}}},
		Seed: 1,
	})
	// Cycle is 3s: down during [2,3), [5,6), ... Run 10s → 3 full
	// cycles plus a crash at t=8 (recovery at 9 fires before 10).
	eng.RunUntil(10)
	st := inj.Stats()
	if st.Crashes < 3 || st.Recoveries < 2 {
		t.Fatalf("stats = %+v, want >=3 crashes and >=2 recoveries over 10s", st)
	}
	if st.Recoveries != st.Crashes && st.Recoveries != st.Crashes-1 {
		t.Fatalf("recoveries %d inconsistent with crashes %d", st.Recoveries, st.Crashes)
	}
}

func TestTransientHangSuspends(t *testing.T) {
	eng, cl := newCluster(2)
	inj := Attach(cl, &Plan{
		Rules: []Rule{{Ranks: []int{1}, Model: TransientHang{
			Every:    stats.NewConstant(4),
			Duration: stats.NewConstant(1),
		}}},
		Seed: 1,
	})
	eng.RunUntil(4.5)
	if until := cl.Node(1).SuspendedUntil(); until != 5 {
		t.Fatalf("suspended until %v, want 5", until)
	}
	if cl.Node(1).Failed() {
		t.Fatal("hang must not mark the node failed")
	}
	if inj.Stats().Hangs != 1 {
		t.Fatalf("hangs = %d, want 1", inj.Stats().Hangs)
	}
}

func TestStopHaltsChains(t *testing.T) {
	eng, cl := newCluster(2)
	inj := Attach(cl, &Plan{
		Rules: []Rule{{Ranks: []int{1}, Model: CrashRecover{
			MTBF: stats.NewConstant(1),
			MTTR: stats.NewConstant(1),
		}}},
		Seed: 1,
	})
	eng.RunUntil(10)
	frozen := inj.Stats()
	inj.Stop()
	// With the injector stopped the recurring chain must not generate
	// unbounded further events: the engine drains and Run returns.
	eng.Run()
	if inj.Stats() != frozen {
		t.Fatalf("stats advanced after Stop: %+v -> %+v", frozen, inj.Stats())
	}
}

func TestTransitionHook(t *testing.T) {
	eng, cl := newCluster(2)
	inj := Attach(cl, &Plan{
		Rules: []Rule{{Ranks: []int{1}, Model: CrashRecover{
			MTBF: stats.NewConstant(2),
			MTTR: stats.NewConstant(1),
		}}},
		Seed: 1,
	})
	var events []bool
	inj.SetTransitionHook(func(rank int, up bool) {
		if rank != 1 {
			t.Fatalf("hook fired for rank %d", rank)
		}
		events = append(events, up)
	})
	eng.RunUntil(4) // crash at 2, recover at 3
	if len(events) < 2 || events[0] != false || events[1] != true {
		t.Fatalf("transition events = %v, want [down, up, ...]", events)
	}
}

func TestMessageLossDropsFraction(t *testing.T) {
	eng, cl := newCluster(2)
	inj := Attach(cl, &Plan{MessageLoss: 0.5, Seed: 1})
	const sends = 2000
	eng.Go("sender", func(p *des.Process) {
		for i := 0; i < sends; i++ {
			cl.Node(0).Send(1, 0, i)
			p.Hold(1)
		}
	})
	eng.Go("receiver", func(p *des.Process) {
		for {
			cl.Node(1).Recv(p)
		}
	})
	eng.RunUntil(float64(sends + 1))
	eng.Shutdown()
	dropped := inj.Stats().MessagesDropped
	if dropped < sends/3 || dropped > 2*sends/3 {
		t.Fatalf("dropped %d of %d at p=0.5", dropped, sends)
	}
	if cl.MessagesLost() != dropped {
		t.Fatalf("cluster lost %d, injector dropped %d", cl.MessagesLost(), dropped)
	}
}

func TestFractionSelectsWorkersOnly(t *testing.T) {
	r := Rule{Fraction: 0.5}
	got := r.ranks(9) // 8 workers → first 4
	if len(got) != 4 {
		t.Fatalf("ranks = %v, want 4 ranks", got)
	}
	for _, w := range got {
		if w == 0 {
			t.Fatal("fraction selected the master")
		}
	}
	if all := (Rule{Fraction: 1}).ranks(5); len(all) != 4 {
		t.Fatalf("fraction 1 selected %v, want all 4 workers", all)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{MessageLoss: -0.1},
		{MessageLoss: 1},
		{Rules: []Rule{{Fraction: 0.5}}}, // no model
		{Rules: []Rule{{Model: CrashStop{At: stats.NewConstant(1)}}}}, // no ranks, no fraction
		{Rules: []Rule{{Fraction: 0.5, Model: CrashStop{}}}},
		{Rules: []Rule{{Fraction: 0.5, Model: CrashRecover{}}}},
		{Rules: []Rule{{Fraction: 0.5, Model: TransientHang{}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but is invalid", i)
		}
	}
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestFailedFractionPlan(t *testing.T) {
	p := FailedFractionPlan(0.01, 0.5, 7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := p.Rules[0].Model.(CrashRecover)
	mtbf, mttr := m.MTBF.Mean(), m.MTTR.Mean()
	if f := mttr / (mtbf + mttr); f < 0.009 || f > 0.011 {
		t.Fatalf("steady-state failed fraction = %v, want 0.01", f)
	}
	if !strings.Contains(p.Rules[0].Model.Name(), "crash-recover") {
		t.Fatalf("unexpected model %q", p.Rules[0].Model.Name())
	}
}
