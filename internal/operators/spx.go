package operators

import (
	"math"

	"borgmoea/internal/rng"
)

// SPX is Tsutsui, Yamamura & Higuchi's simplex crossover: the parents
// span a simplex which is expanded about its centroid by Epsilon, and
// the offspring is sampled uniformly from the expanded simplex.
// Borg's defaults: 10 parents, epsilon 3.
type SPX struct {
	Parents int
	Epsilon float64
}

// NewSPX returns SPX with Borg's defaults.
func NewSPX() SPX { return SPX{Parents: 10, Epsilon: 3} }

func (op SPX) Name() string { return "spx" }
func (op SPX) Arity() int   { return op.Parents }

// Apply returns one offspring sampled from the expanded simplex.
func (op SPX) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	k := len(parents)
	n := len(parents[0])
	g := centroid(parents)

	// Expanded vertices y_i = g + ε(x_i − g).
	y := make([][]float64, k)
	for i, p := range parents {
		v := make([]float64, n)
		for j := range v {
			v[j] = g[j] + op.Epsilon*(p[j]-g[j])
		}
		y[i] = v
	}

	// Uniform sampling from the simplex via Tsutsui's recurrence:
	// c_0 = 0; c_i = r_{i-1}(y_{i-1} − y_i + c_{i-1}); child = y_{k-1} + c_{k-1},
	// with r_i = u^{1/(i+1)}.
	c := make([]float64, n)
	for i := 1; i < k; i++ {
		ri := math.Pow(r.Float64(), 1/float64(i))
		for j := 0; j < n; j++ {
			c[j] = ri * (y[i-1][j] - y[i][j] + c[j])
		}
	}
	child := make([]float64, n)
	for j := 0; j < n; j++ {
		child[j] = y[k-1][j] + c[j]
	}
	clamp(child, lo, hi)
	return [][]float64{child}
}
