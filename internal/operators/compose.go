package operators

import "borgmoea/internal/rng"

// WithPM wraps a recombination operator so that polynomial mutation is
// applied to every offspring, the composition Borg uses for SBX, DE,
// PCX, SPX and UNDX ("sbx+pm", "de+pm", ...).
type WithPM struct {
	Base     Operator
	Mutation PM
}

// NewWithPM composes base with Borg's default polynomial mutation.
func NewWithPM(base Operator) WithPM {
	return WithPM{Base: base, Mutation: NewPM()}
}

func (op WithPM) Name() string { return op.Base.Name() + "+pm" }
func (op WithPM) Arity() int   { return op.Base.Arity() }

// Apply runs the base operator and mutates each offspring in place.
func (op WithPM) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	children := op.Base.Apply(parents, lo, hi, r)
	for i, c := range children {
		children[i] = op.Mutation.Apply([][]float64{c}, lo, hi, r)[0]
	}
	return children
}

// BorgEnsemble returns the six operators of the Borg MOEA with their
// default parameterizations, recombinations composed with polynomial
// mutation, in the canonical order SBX, DE, PCX, SPX, UNDX, UM.
func BorgEnsemble() []Operator {
	return []Operator{
		NewWithPM(NewSBX()),
		NewWithPM(NewDE()),
		NewWithPM(NewPCX()),
		NewWithPM(NewSPX()),
		NewWithPM(NewUNDX()),
		NewUM(),
	}
}
