package operators

import (
	"math"

	"borgmoea/internal/rng"
)

// PCX is Deb, Joshi & Anand's parent-centric crossover. The offspring
// is distributed around the first parent (Borg centers variation on
// the solution selected from the archive), stretched along the
// parent-to-centroid direction by Zeta and spread across the
// orthogonal subspace by Eta, scaled by the mean perpendicular
// distance of the other parents. Borg's defaults: 10 parents,
// eta = zeta = 0.1.
type PCX struct {
	Parents int
	Eta     float64
	Zeta    float64
}

// NewPCX returns PCX with Borg's defaults.
func NewPCX() PCX { return PCX{Parents: 10, Eta: 0.1, Zeta: 0.1} }

func (op PCX) Name() string { return "pcx" }
func (op PCX) Arity() int   { return op.Parents }

// Apply returns one offspring centered on parents[0].
func (op PCX) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	n := len(parents[0])
	g := centroid(parents)

	// Principal direction: index parent minus centroid.
	d := sub(parents[0], g)
	dLen := norm(d)

	child := clone(parents[0])
	if dLen < 1e-12 {
		// Degenerate: parents collapsed onto the centroid along the
		// index direction; fall back to an isotropic Gaussian wobble
		// of Eta scale so the operator still explores.
		for i := range child {
			child[i] += r.Norm() * op.Eta * (hi[i] - lo[i]) * 0.01
		}
		clamp(child, lo, hi)
		return [][]float64{child}
	}

	dHat := clone(d)
	normalize(dHat)

	// Mean perpendicular distance of the other parents to the dHat
	// line through g.
	dBar := 0.0
	counted := 0
	for _, p := range parents[1:] {
		v := sub(p, g)
		along := dot(v, dHat)
		perp2 := dot(v, v) - along*along
		if perp2 > 0 {
			dBar += math.Sqrt(perp2)
		}
		counted++
	}
	if counted > 0 {
		dBar /= float64(counted)
	}

	// Orthonormal basis of the subspace perpendicular to dHat, built
	// by Gram-Schmidt from the remaining parent directions and, if
	// rank-deficient, random vectors.
	basis := [][]float64{dHat}
	for _, p := range parents[1:] {
		if len(basis) >= n {
			break
		}
		v := sub(p, g)
		if orthogonalize(v, basis) > 1e-10 && normalize(v) {
			basis = append(basis, v)
		}
	}
	for len(basis) < n {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm()
		}
		if orthogonalize(v, basis) > 1e-10 && normalize(v) {
			basis = append(basis, v)
		}
	}

	// Offspring = parent + wζ·d + Σ wη·D̄·e_j over the perpendicular
	// basis vectors.
	wz := r.Norm() * op.Zeta
	for i := range child {
		child[i] += wz * d[i]
	}
	for _, e := range basis[1:] {
		we := r.Norm() * op.Eta * dBar
		for i := range child {
			child[i] += we * e[i]
		}
	}
	clamp(child, lo, hi)
	return [][]float64{child}
}
