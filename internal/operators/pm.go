package operators

import (
	"math"

	"borgmoea/internal/rng"
)

// PM is Deb's polynomial mutation (bounded variant). Borg applies it
// after every recombination operator with probability 1/L and
// distribution index 20.
type PM struct {
	// Probability is the per-variable mutation probability. A zero
	// value means "use 1/L".
	Probability float64
	// DistributionIndex controls perturbation size (larger = smaller
	// steps).
	DistributionIndex float64
}

// NewPM returns PM with Borg's defaults (1/L, index 20).
func NewPM() PM { return PM{DistributionIndex: 20} }

func (PM) Name() string { return "pm" }
func (PM) Arity() int   { return 1 }

// Apply returns one mutated copy of the parent.
func (op PM) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	child := clone(parents[0])
	p := op.Probability
	if p == 0 {
		p = 1 / float64(len(child))
	}
	eta := op.DistributionIndex
	for i := range child {
		if r.Float64() > p {
			continue
		}
		x := child[i]
		lb, ub := lo[i], hi[i]
		if ub <= lb {
			continue
		}
		d1 := (x - lb) / (ub - lb)
		d2 := (ub - x) / (ub - lb)
		u := r.Float64()
		mpow := 1 / (eta + 1)
		var deltaq float64
		if u < 0.5 {
			xy := 1 - d1
			val := 2*u + (1-2*u)*math.Pow(xy, eta+1)
			deltaq = math.Pow(val, mpow) - 1
		} else {
			xy := 1 - d2
			val := 2*(1-u) + (2*u-1)*math.Pow(xy, eta+1)
			deltaq = 1 - math.Pow(val, mpow)
		}
		child[i] = x + deltaq*(ub-lb)
	}
	clamp(child, lo, hi)
	return [][]float64{child}
}
