package operators

import (
	"math"

	"borgmoea/internal/rng"
)

// SBX is Deb & Agrawal's simulated binary crossover (bounded variant).
// Borg's default parameterization is rate 1.0 and distribution index
// 15.
type SBX struct {
	// Rate is the probability the crossover is applied at all.
	Rate float64
	// DistributionIndex controls offspring spread (larger = closer to
	// parents).
	DistributionIndex float64
}

// NewSBX returns SBX with Borg's defaults (rate 1.0, index 15).
func NewSBX() SBX { return SBX{Rate: 1.0, DistributionIndex: 15} }

func (SBX) Name() string { return "sbx" }
func (SBX) Arity() int   { return 2 }

// Apply returns two offspring bracketing the parents.
func (op SBX) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	c1 := clone(parents[0])
	c2 := clone(parents[1])
	if r.Float64() > op.Rate {
		return [][]float64{c1, c2}
	}
	for i := range c1 {
		// Each variable participates with probability 0.5, the
		// standard per-variable gating.
		if r.Float64() > 0.5 {
			continue
		}
		x1, x2 := c1[i], c2[i]
		if math.Abs(x1-x2) < 1e-14 {
			continue
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		lb, ub := lo[i], hi[i]
		u := r.Float64()
		y1 := sbxChild(x1, x2, lb, ub, u, op.DistributionIndex, true)
		y2 := sbxChild(x1, x2, lb, ub, u, op.DistributionIndex, false)
		// Randomly swap which child gets which side, as in Deb's
		// reference implementation.
		if r.Float64() < 0.5 {
			y1, y2 = y2, y1
		}
		c1[i], c2[i] = y1, y2
	}
	clamp(c1, lo, hi)
	clamp(c2, lo, hi)
	return [][]float64{c1, c2}
}

// sbxChild computes one bounded-SBX child variable. lower selects the
// child on the x1 side.
func sbxChild(x1, x2, lb, ub, u, eta float64, lower bool) float64 {
	dx := x2 - x1
	var beta float64
	if lower {
		beta = 1 + 2*(x1-lb)/dx
	} else {
		beta = 1 + 2*(ub-x2)/dx
	}
	alpha := 2 - math.Pow(beta, -(eta+1))
	var betaq float64
	if u <= 1/alpha {
		betaq = math.Pow(u*alpha, 1/(eta+1))
	} else {
		betaq = math.Pow(1/(2-u*alpha), 1/(eta+1))
	}
	if lower {
		return 0.5 * ((x1 + x2) - betaq*dx)
	}
	return 0.5 * ((x1 + x2) + betaq*dx)
}
