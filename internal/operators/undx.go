package operators

import (
	"math"

	"borgmoea/internal/rng"
)

// UNDX is Kita, Ono & Kobayashi's multi-parental unimodal normal
// distribution crossover. The first k−1 parents define the primary
// search subspace around their centroid; the last parent sets the
// scale of the orthogonal-complement perturbation. Borg's defaults:
// 10 parents, zeta 0.5, eta 0.35 (eta is divided by sqrt(n) at
// sampling time, as in the reference implementation).
type UNDX struct {
	Parents int
	Zeta    float64
	Eta     float64
}

// NewUNDX returns UNDX with Borg's defaults.
func NewUNDX() UNDX { return UNDX{Parents: 10, Zeta: 0.5, Eta: 0.35} }

func (op UNDX) Name() string { return "undx" }
func (op UNDX) Arity() int   { return op.Parents }

// Apply returns one offspring centered on the centroid of the first
// k−1 parents.
func (op UNDX) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	k := len(parents)
	n := len(parents[0])
	m := k - 1 // parents spanning the primary subspace

	g := centroid(parents[:m])

	// Primary directions d_i = x_i − g, orthonormalized to a basis of
	// the primary subspace; each contributes a Gaussian component
	// scaled by its own length (classic UNDX-m).
	child := clone(g)
	basis := make([][]float64, 0, n)
	for _, p := range parents[:m] {
		d := sub(p, g)
		dLen := norm(d)
		if dLen < 1e-12 {
			continue
		}
		e := clone(d)
		if orthogonalize(e, basis) < 1e-10 || !normalize(e) {
			continue
		}
		basis = append(basis, e)
		w := r.Norm() * op.Zeta * dLen
		for i := range child {
			child[i] += w * e[i]
		}
	}

	// Orthogonal complement: scale D is the distance from the last
	// parent to the primary subspace.
	dLast := sub(parents[k-1], g)
	bigD := orthogonalize(dLast, basis)
	if bigD > 1e-12 && n > len(basis) {
		sigma := op.Eta / math.Sqrt(float64(n))
		for len(basis) < n {
			v := make([]float64, n)
			for i := range v {
				v[i] = r.Norm()
			}
			if orthogonalize(v, basis) < 1e-10 || !normalize(v) {
				continue
			}
			basis = append(basis, v)
			w := r.Norm() * sigma * bigD
			for i := range child {
				child[i] += w * v[i]
			}
		}
	}
	clamp(child, lo, hi)
	return [][]float64{child}
}
