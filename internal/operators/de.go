package operators

import "borgmoea/internal/rng"

// DE is differential evolution (rand/1/bin) as used inside Borg:
// crossover rate 0.1 and step size 0.5. The first parent is the base
// vector the trial is built on; the remaining three supply the
// difference. Borg's convention of centering variation on the
// selected parent is preserved by putting that parent first.
type DE struct {
	// CrossoverRate is the per-variable probability of taking the
	// mutant component (CR).
	CrossoverRate float64
	// StepSize scales the difference vector (F).
	StepSize float64
}

// NewDE returns DE with Borg's defaults (CR 0.1, F 0.5).
func NewDE() DE { return DE{CrossoverRate: 0.1, StepSize: 0.5} }

func (DE) Name() string { return "de" }
func (DE) Arity() int   { return 4 }

// Apply returns one trial vector.
func (op DE) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	base, a, b, c := parents[0], parents[1], parents[2], parents[3]
	child := clone(base)
	n := len(child)
	jrand := r.Intn(n)
	for i := range child {
		if r.Float64() <= op.CrossoverRate || i == jrand {
			child[i] = a[i] + op.StepSize*(b[i]-c[i])
		}
	}
	clamp(child, lo, hi)
	return [][]float64{child}
}
