package operators

import "borgmoea/internal/rng"

// UM is uniform mutation: each variable is redrawn uniformly from its
// bounds with the given probability. Borg applies it with probability
// 1/L (L = number of decision variables) both as a standalone operator
// in the adaptive ensemble and to diversify restart injections.
type UM struct {
	// Probability is the per-variable mutation probability. A zero
	// value means "use 1/L", resolved at Apply time.
	Probability float64
}

// NewUM returns UM with the 1/L default.
func NewUM() UM { return UM{} }

func (UM) Name() string { return "um" }
func (UM) Arity() int   { return 1 }

// Apply returns one mutated copy of the parent.
func (op UM) Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64 {
	checkParents(op, parents, lo, hi)
	child := clone(parents[0])
	p := op.Probability
	if p == 0 {
		p = 1 / float64(len(child))
	}
	for i := range child {
		if r.Float64() <= p {
			child[i] = r.Range(lo[i], hi[i])
		}
	}
	return [][]float64{child}
}
