// Package operators implements the six real-valued variation operators
// the Borg MOEA auto-adapts among — simulated binary crossover (SBX),
// differential evolution (DE), parent-centric crossover (PCX), simplex
// crossover (SPX), unimodal normal distribution crossover (UNDX), and
// uniform mutation (UM) — plus polynomial mutation (PM), which Borg
// applies after each recombination. Parameterizations follow the Borg
// paper's defaults (Hadka & Reed 2013 / MOEA Framework).
//
// Operators work on raw decision-variable vectors so they are usable
// both by the Borg core and standalone.
package operators

import (
	"fmt"
	"math"

	"borgmoea/internal/rng"
)

// Operator produces offspring decision vectors from parent vectors.
type Operator interface {
	// Name returns a short identifier, e.g. "sbx+pm".
	Name() string
	// Arity returns the number of parents required.
	Arity() int
	// Apply returns one or more offspring. Parents must contain
	// exactly Arity() vectors of equal length matching lo/hi; the
	// parents are not modified. Offspring are clamped to [lo, hi].
	Apply(parents [][]float64, lo, hi []float64, r *rng.Source) [][]float64
}

// clamp snaps each variable of x into [lo, hi].
func clamp(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		} else if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// checkParents validates the Apply contract; operators call it first.
func checkParents(op Operator, parents [][]float64, lo, hi []float64) {
	if len(parents) != op.Arity() {
		panic(fmt.Sprintf("operators: %s requires %d parents, got %d",
			op.Name(), op.Arity(), len(parents)))
	}
	n := len(lo)
	if len(hi) != n {
		panic("operators: bounds length mismatch")
	}
	for _, p := range parents {
		if len(p) != n {
			panic(fmt.Sprintf("operators: %s parent length %d != %d variables",
				op.Name(), len(p), n))
		}
	}
}

// clone returns a copy of x.
func clone(x []float64) []float64 {
	return append([]float64(nil), x...)
}

// centroid returns the mean of the vectors.
func centroid(vs [][]float64) []float64 {
	g := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			g[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range g {
		g[i] *= inv
	}
	return g
}

// sub returns a - b as a new vector.
func sub(a, b []float64) []float64 {
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return d
}

// dot returns the inner product.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// norm returns the Euclidean length.
func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

// orthogonalize removes from v its components along each unit vector
// in basis (modifying v in place) and returns v's remaining length.
func orthogonalize(v []float64, basis [][]float64) float64 {
	for _, e := range basis {
		c := dot(v, e)
		for i := range v {
			v[i] -= c * e[i]
		}
	}
	return norm(v)
}

// normalize scales v to unit length in place and reports success
// (false if v is ~zero).
func normalize(v []float64) bool {
	n := norm(v)
	if n < 1e-12 {
		return false
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return true
}
