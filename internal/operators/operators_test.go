package operators

import (
	"math"
	"testing"
	"testing/quick"

	"borgmoea/internal/rng"
)

// bounds returns simple [0,1]^n bounds.
func bounds(n int) (lo, hi []float64) {
	lo = make([]float64, n)
	hi = make([]float64, n)
	for i := range hi {
		hi[i] = 1
	}
	return lo, hi
}

// randomParents generates arity random parent vectors in [lo, hi].
func randomParents(r *rng.Source, arity, n int, lo, hi []float64) [][]float64 {
	ps := make([][]float64, arity)
	for i := range ps {
		v := make([]float64, n)
		for j := range v {
			v[j] = r.Range(lo[j], hi[j])
		}
		ps[i] = v
	}
	return ps
}

// allOps returns one instance of every operator with defaults.
func allOps() []Operator {
	return []Operator{
		NewSBX(), NewDE(), NewPCX(), NewSPX(), NewUNDX(), NewUM(), NewPM(),
		NewWithPM(NewSBX()), NewWithPM(NewPCX()),
	}
}

// TestOffspringWithinBounds is the master property test: every
// operator must emit offspring inside the box for arbitrary inputs.
func TestOffspringWithinBounds(t *testing.T) {
	const n = 11
	lo, hi := bounds(n)
	r := rng.New(1)
	for _, op := range allOps() {
		for trial := 0; trial < 200; trial++ {
			parents := randomParents(r, op.Arity(), n, lo, hi)
			children := op.Apply(parents, lo, hi, r)
			if len(children) == 0 {
				t.Fatalf("%s produced no offspring", op.Name())
			}
			for _, c := range children {
				if len(c) != n {
					t.Fatalf("%s offspring has %d vars, want %d", op.Name(), len(c), n)
				}
				for j, x := range c {
					if x < lo[j] || x > hi[j] {
						t.Fatalf("%s offspring var %d = %v outside [%v,%v]",
							op.Name(), j, x, lo[j], hi[j])
					}
					if math.IsNaN(x) {
						t.Fatalf("%s produced NaN", op.Name())
					}
				}
			}
		}
	}
}

// TestParentsNotModified verifies Apply leaves its inputs untouched.
func TestParentsNotModified(t *testing.T) {
	const n = 7
	lo, hi := bounds(n)
	r := rng.New(2)
	for _, op := range allOps() {
		parents := randomParents(r, op.Arity(), n, lo, hi)
		backup := make([][]float64, len(parents))
		for i, p := range parents {
			backup[i] = append([]float64(nil), p...)
		}
		op.Apply(parents, lo, hi, r)
		for i := range parents {
			for j := range parents[i] {
				if parents[i][j] != backup[i][j] {
					t.Fatalf("%s modified parent %d", op.Name(), i)
				}
			}
		}
	}
}

func TestArityMismatchPanics(t *testing.T) {
	lo, hi := bounds(3)
	r := rng.New(3)
	for _, op := range allOps() {
		op := op
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted wrong parent count", op.Name())
				}
			}()
			op.Apply(randomParents(r, op.Arity()+1, 3, lo, hi), lo, hi, r)
		}()
	}
}

func TestVariableLengthMismatchPanics(t *testing.T) {
	lo, hi := bounds(3)
	r := rng.New(4)
	op := NewSBX()
	defer func() {
		if recover() == nil {
			t.Fatal("SBX accepted mismatched variable counts")
		}
	}()
	op.Apply([][]float64{{0.1, 0.2}, {0.3, 0.4, 0.5}}, lo, hi, r)
}

func TestSBXMeanPreservation(t *testing.T) {
	// SBX children are symmetric about the parent mean per variable
	// (before clamping); with interior parents the average offspring
	// midpoint equals the parent midpoint.
	lo, hi := bounds(1)
	r := rng.New(5)
	op := NewSBX()
	p1, p2 := 0.3, 0.6
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		ch := op.Apply([][]float64{{p1}, {p2}}, lo, hi, r)
		sum += ch[0][0] + ch[1][0]
	}
	mean := sum / (2 * trials)
	if math.Abs(mean-0.45) > 0.005 {
		t.Fatalf("SBX offspring mean = %v, want ~0.45", mean)
	}
}

func TestSBXIdenticalParents(t *testing.T) {
	lo, hi := bounds(4)
	r := rng.New(6)
	p := []float64{0.2, 0.4, 0.6, 0.8}
	ch := NewSBX().Apply([][]float64{p, p}, lo, hi, r)
	for _, c := range ch {
		for i := range c {
			if c[i] != p[i] {
				t.Fatalf("SBX of identical parents changed variables: %v", c)
			}
		}
	}
}

func TestDEFormula(t *testing.T) {
	// With CR = 1 every variable takes the mutant value
	// a + F(b − c).
	op := DE{CrossoverRate: 1.0, StepSize: 0.5}
	lo := []float64{-10, -10}
	hi := []float64{10, 10}
	r := rng.New(7)
	base := []float64{0, 0}
	a := []float64{1, 2}
	b := []float64{3, 5}
	c := []float64{1, 1}
	ch := op.Apply([][]float64{base, a, b, c}, lo, hi, r)[0]
	want := []float64{1 + 0.5*(3-1), 2 + 0.5*(5-1)}
	for i := range want {
		if math.Abs(ch[i]-want[i]) > 1e-12 {
			t.Fatalf("DE child = %v, want %v", ch, want)
		}
	}
}

func TestDEAlwaysPerturbsOneVariable(t *testing.T) {
	// Even with CR=0, index jrand always takes the mutant value.
	op := DE{CrossoverRate: 0, StepSize: 0.5}
	lo := []float64{-10, -10, -10}
	hi := []float64{10, 10, 10}
	r := rng.New(8)
	base := []float64{0, 0, 0}
	a := []float64{1, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{0, 0, 0}
	ch := op.Apply([][]float64{base, a, b, c}, lo, hi, r)[0]
	changed := 0
	for _, x := range ch {
		if x != 0 {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("DE with CR=0 changed %d variables, want exactly 1 (jrand)", changed)
	}
}

func TestUMMutationRate(t *testing.T) {
	// With probability 1, every variable is redrawn uniformly.
	op := UM{Probability: 1}
	const n = 2
	lo, hi := bounds(n)
	r := rng.New(9)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		ch := op.Apply([][]float64{{0.9, 0.9}}, lo, hi, r)[0]
		sum += ch[0] + ch[1]
	}
	mean := sum / (2 * trials)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("UM(p=1) mean = %v, want ~0.5 (uniform redraw)", mean)
	}
}

func TestUMDefaultRateIsOneOverL(t *testing.T) {
	op := NewUM()
	const n = 20
	lo, hi := bounds(n)
	r := rng.New(10)
	parent := make([]float64, n)
	for i := range parent {
		parent[i] = 0.5
	}
	mutations := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		ch := op.Apply([][]float64{parent}, lo, hi, r)[0]
		for j := range ch {
			if ch[j] != parent[j] {
				mutations++
			}
		}
	}
	// Expect ~1 mutation per offspring.
	rate := float64(mutations) / trials
	if rate < 0.8 || rate > 1.2 {
		t.Fatalf("UM default mutated %.2f vars per child, want ~1", rate)
	}
}

func TestPMSmallPerturbations(t *testing.T) {
	// PM with a high distribution index produces small moves.
	op := PM{Probability: 1, DistributionIndex: 20}
	lo, hi := bounds(1)
	r := rng.New(11)
	const trials = 10000
	maxMove := 0.0
	sum := 0.0
	for i := 0; i < trials; i++ {
		ch := op.Apply([][]float64{{0.5}}, lo, hi, r)[0][0]
		move := math.Abs(ch - 0.5)
		sum += ch
		if move > maxMove {
			maxMove = move
		}
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("PM mean = %v, want ~0.5 (symmetric)", mean)
	}
	if maxMove > 0.5 {
		t.Fatalf("PM moved %v, out of bounds logic broken", maxMove)
	}
}

func TestPCXCentersOnFirstParent(t *testing.T) {
	// With tiny eta/zeta the offspring hugs the index parent.
	op := PCX{Parents: 5, Eta: 1e-6, Zeta: 1e-6}
	const n = 6
	lo, hi := bounds(n)
	r := rng.New(12)
	parents := randomParents(r, 5, n, lo, hi)
	ch := op.Apply(parents, lo, hi, r)[0]
	for i := range ch {
		if math.Abs(ch[i]-parents[0][i]) > 1e-3 {
			t.Fatalf("PCX with tiny spread strayed from index parent: %v vs %v", ch, parents[0])
		}
	}
}

func TestPCXDegenerateParents(t *testing.T) {
	// All parents identical: PCX must not NaN or panic.
	op := NewPCX()
	const n = 5
	lo, hi := bounds(n)
	r := rng.New(13)
	p := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	parents := make([][]float64, op.Arity())
	for i := range parents {
		parents[i] = p
	}
	ch := op.Apply(parents, lo, hi, r)[0]
	for _, x := range ch {
		if math.IsNaN(x) {
			t.Fatal("PCX produced NaN on degenerate parents")
		}
	}
}

func TestSPXCentroidPreservation(t *testing.T) {
	// SPX samples uniformly from the expanded simplex, whose mean is
	// the parent centroid.
	op := SPX{Parents: 4, Epsilon: 2}
	const n = 3
	lo := []float64{-10, -10, -10}
	hi := []float64{10, 10, 10}
	r := rng.New(14)
	parents := [][]float64{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 1},
	}
	g := centroid(parents)
	sum := make([]float64, n)
	const trials = 30000
	for i := 0; i < trials; i++ {
		ch := op.Apply(parents, lo, hi, r)[0]
		for j := range sum {
			sum[j] += ch[j]
		}
	}
	for j := range sum {
		if mean := sum[j] / trials; math.Abs(mean-g[j]) > 0.02 {
			t.Fatalf("SPX offspring mean[%d] = %v, want centroid %v", j, mean, g[j])
		}
	}
}

func TestUNDXDegenerateParents(t *testing.T) {
	op := NewUNDX()
	const n = 5
	lo, hi := bounds(n)
	r := rng.New(15)
	p := []float64{0.3, 0.3, 0.3, 0.3, 0.3}
	parents := make([][]float64, op.Arity())
	for i := range parents {
		parents[i] = p
	}
	ch := op.Apply(parents, lo, hi, r)[0]
	for i, x := range ch {
		if math.IsNaN(x) {
			t.Fatal("UNDX produced NaN on degenerate parents")
		}
		if math.Abs(x-p[i]) > 1e-12 {
			t.Fatalf("UNDX of identical parents should return the centroid, got %v", ch)
		}
	}
}

func TestUNDXCentroidCentered(t *testing.T) {
	op := NewUNDX()
	const n = 4
	lo, hi := bounds(n)
	r := rng.New(16)
	parents := randomParents(r, op.Arity(), n, lo, hi)
	g := centroid(parents[:op.Arity()-1])
	sum := make([]float64, n)
	const trials = 20000
	for i := 0; i < trials; i++ {
		ch := op.Apply(parents, lo, hi, r)[0]
		for j := range sum {
			sum[j] += ch[j]
		}
	}
	for j := range sum {
		if mean := sum[j] / trials; math.Abs(mean-g[j]) > 0.03 {
			t.Fatalf("UNDX offspring mean[%d] = %v, want ~centroid %v", j, mean, g[j])
		}
	}
}

func TestWithPMNameAndArity(t *testing.T) {
	op := NewWithPM(NewSBX())
	if op.Name() != "sbx+pm" {
		t.Errorf("Name = %q, want sbx+pm", op.Name())
	}
	if op.Arity() != 2 {
		t.Errorf("Arity = %d, want 2", op.Arity())
	}
}

func TestBorgEnsemble(t *testing.T) {
	ops := BorgEnsemble()
	if len(ops) != 6 {
		t.Fatalf("BorgEnsemble has %d operators, want 6", len(ops))
	}
	wantNames := []string{"sbx+pm", "de+pm", "pcx+pm", "spx+pm", "undx+pm", "um"}
	for i, op := range ops {
		if op.Name() != wantNames[i] {
			t.Errorf("ensemble[%d] = %s, want %s", i, op.Name(), wantNames[i])
		}
	}
}

// TestGramSchmidtHelpers exercises the vector utilities directly.
func TestGramSchmidtHelpers(t *testing.T) {
	v := []float64{3, 4}
	if !normalize(v) {
		t.Fatal("normalize of nonzero vector failed")
	}
	if math.Abs(norm(v)-1) > 1e-12 {
		t.Fatalf("normalize result has norm %v", norm(v))
	}
	zero := []float64{0, 0}
	if normalize(zero) {
		t.Fatal("normalize of zero vector claimed success")
	}
	// Orthogonalization removes the e1 component.
	e1 := []float64{1, 0}
	w := []float64{2, 5}
	orthogonalize(w, [][]float64{e1})
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[1]-5) > 1e-12 {
		t.Fatalf("orthogonalize result = %v, want [0 5]", w)
	}
}

// TestOperatorsAreDeterministicGivenSeed: identical seeds and inputs
// must reproduce identical offspring.
func TestOperatorsAreDeterministicGivenSeed(t *testing.T) {
	const n = 9
	lo, hi := bounds(n)
	for _, op := range allOps() {
		gen := rng.New(99)
		parents := randomParents(gen, op.Arity(), n, lo, hi)
		a := op.Apply(parents, lo, hi, rng.New(123))
		b := op.Apply(parents, lo, hi, rng.New(123))
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s nondeterministic under fixed seed", op.Name())
				}
			}
		}
	}
}

// TestQuickBoundsProperty fuzzes bounds geometry.
func TestQuickBoundsProperty(t *testing.T) {
	r := rng.New(100)
	err := quick.Check(func(seed uint64, shift int8) bool {
		n := 5
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range lo {
			lo[i] = float64(shift)
			hi[i] = float64(shift) + 2
		}
		for _, op := range []Operator{NewSBX(), NewDE(), NewUM(), NewPM()} {
			parents := randomParents(r, op.Arity(), n, lo, hi)
			for _, c := range op.Apply(parents, lo, hi, rng.New(seed)) {
				for j, x := range c {
					if x < lo[j] || x > hi[j] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSBX(b *testing.B)  { benchOp(b, NewWithPM(NewSBX())) }
func BenchmarkDE(b *testing.B)   { benchOp(b, NewWithPM(NewDE())) }
func BenchmarkPCX(b *testing.B)  { benchOp(b, NewWithPM(NewPCX())) }
func BenchmarkSPX(b *testing.B)  { benchOp(b, NewWithPM(NewSPX())) }
func BenchmarkUNDX(b *testing.B) { benchOp(b, NewWithPM(NewUNDX())) }
func BenchmarkUM(b *testing.B)   { benchOp(b, NewUM()) }

func benchOp(b *testing.B, op Operator) {
	const n = 14 // DTLZ2 M=5 size
	lo, hi := bounds(n)
	r := rng.New(1)
	parents := randomParents(r, op.Arity(), n, lo, hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(parents, lo, hi, r)
	}
}
