package federation

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/rng"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

// islandContext is everything one island master needs, assembled by
// Run before the island goroutines start.
type islandContext struct {
	cfg      *Config
	isl      int
	b        *core.Borg
	adv      *advisor.Advisor
	meters   master.Meters
	workerLn net.Listener
	peerLn   net.Listener
	succAddr string
	root     *Root
	log      *master.Log
	mlog     *MigrantLog
	trace    *obs.Collector      // nil disables tracing for this island
	quality  *obs.QualitySampler // nil disables quality sampling
}

// islandResult is one island's contribution to the federation Result.
type islandResult struct {
	elapsed  float64
	stats    master.Stats
	migrants uint64
	peak     int
}

type islandEventKind uint8

const (
	iJoin islandEventKind = iota
	iMsg
	iDead
	iMigrant
)

// islandEvent is one input to the island master loop: worker transport
// events exactly as in the distributed driver, plus migrant frames
// arriving on the peer listener.
type islandEvent struct {
	kind islandEventKind
	sess *islandSession
	msg  wire.Message
	mig  *wire.Migrant
	err  error
}

// islandSession is one live worker connection, as in the distributed
// driver.
type islandSession struct {
	id   uint64
	conn *wire.Conn
	gone bool
}

// fedAlg adapts the island's Borg instance to the shared state machine,
// measuring the wall-clock critical section as T_A and optionally
// stretching it with a sampled SimulateTA hold (the knob that drags the
// per-island P_UB into loopback-test range).
type fedAlg struct {
	b    *core.Borg
	adv  *advisor.Advisor
	ic   *islandContext
	sim  stats.Distribution
	simR *rng.Source
	busy float64
	n    uint64
	// curItem is the lease id of the result being folded in (stashed by
	// the island loop before Handle); the accept critical section
	// attributes its T_A to that evaluation's trace.
	curItem uint64
}

// section wraps one master critical section, charging its T_A.
func (a *fedAlg) section(fn func()) float64 {
	start := time.Now()
	fn()
	if a.sim != nil {
		time.Sleep(time.Duration(a.sim.Sample(a.simR) * float64(time.Second)))
	}
	ta := time.Since(start).Seconds()
	a.busy += ta
	a.n++
	a.ic.meters.TA.Observe(ta)
	a.adv.ObserveTA(ta)
	return ta
}

func (a *fedAlg) Suggest() *core.Solution {
	var s *core.Solution
	a.section(func() { s = a.b.Suggest() })
	return s
}

func (a *fedAlg) Accept(s *core.Solution) {
	ta := a.section(func() { a.b.Accept(s) })
	a.ic.trace.ObserveTA(a.curItem, ta)
}

func (a *fedAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	var next *core.Solution
	ta := a.section(func() {
		a.b.Accept(s)
		next = a.b.Suggest()
	})
	a.ic.trace.ObserveTA(a.curItem, ta)
	return next
}

// inject folds a migrant into the algorithm inside its own measured
// critical section — the live counterpart of the DES driver's
// "T_A but no function evaluation" migrant charge.
func (a *fedAlg) inject(s *core.Solution) {
	a.section(func() { a.b.InjectEvaluated(s) })
}

// dialPeer dials the ring successor's peer listener, retrying while the
// rest of the federation is still binding (Run binds every listener
// first, so in practice the first attempt succeeds).
func dialPeer(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		nc, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return nc, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("dial ring successor %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// runIsland is one island master: the shared state machine over a TCP
// worker pool, plus the synchronous migration-epoch protocol on the
// ring (see the package comment). It blocks until the island's budget
// completes or the run fails.
func runIsland(ic islandContext) (islandResult, error) {
	cfg := ic.cfg
	b := ic.b
	var ir islandResult

	ic.adv.Configure(0, cfg.Evaluations)

	events := make(chan islandEvent, 256)
	done := make(chan struct{})
	defer close(done)
	push := func(e islandEvent) {
		select {
		case events <- e:
		case <-done:
		}
	}

	connOpt := cfg.Conn
	if connOpt.OnRTT == nil {
		// Heartbeat RTTs stand in for T_C, as in the distributed driver.
		connOpt.OnRTT = ic.adv.ObserveRTT
	}

	welcome := wire.Welcome{
		Problem:         cfg.Problem.Name(),
		NumVars:         uint32(cfg.Problem.NumVars()),
		NumObjs:         uint32(cfg.Problem.NumObjs()),
		HeartbeatMillis: uint32(connOpt.Heartbeat.Milliseconds()),
	}

	// Worker accept loop: identical protocol to the distributed driver —
	// handshake off the main loop, then feed messages as events.
	var nextWorkerID atomic.Uint64
	go func() {
		for {
			nc, err := ic.workerLn.Accept()
			if err != nil {
				return // listener closed: run over
			}
			go func() {
				var id uint64
				conn, _, err := wire.ServerHandshake(nc, connOpt, func(h wire.Hello) (*wire.Welcome, error) {
					w := welcome
					if h.WorkerID != 0 {
						w.WorkerID = h.WorkerID
					} else {
						w.WorkerID = nextWorkerID.Add(1)
					}
					id = w.WorkerID
					return &w, nil
				})
				if err != nil {
					return
				}
				conn.StartHeartbeat(0)
				s := &islandSession{id: id, conn: conn}
				push(islandEvent{kind: iJoin, sess: s})
				for {
					m, err := conn.Recv()
					if err != nil {
						push(islandEvent{kind: iDead, sess: s, err: err})
						return
					}
					push(islandEvent{kind: iMsg, sess: s, msg: m})
				}
			}()
		}
	}()

	// Peer accept loop: raw migrant frames from the ring predecessor —
	// no handshake, no heartbeat, just length-prefixed CRC-checked
	// frames until the predecessor closes.
	var peerMu sync.Mutex
	var peerConns []net.Conn
	go func() {
		for {
			nc, err := ic.peerLn.Accept()
			if err != nil {
				return
			}
			peerMu.Lock()
			peerConns = append(peerConns, nc)
			peerMu.Unlock()
			go func() {
				br := bufio.NewReader(nc)
				var buf []byte // payload scratch; messages never alias it
				for {
					m, next, err := wire.ReadMessageBuf(br, buf)
					buf = next
					if err != nil {
						return
					}
					if mg, ok := m.(*wire.Migrant); ok {
						push(islandEvent{kind: iMigrant, mig: mg})
					}
				}
			}()
		}
	}()

	migrate := cfg.MigrationEvery > 0 && cfg.Islands > 1
	var succ net.Conn
	if migrate {
		var err error
		succ, err = dialPeer(ic.succAddr, time.Now().Add(cfg.migrationTimeout()))
		if err != nil {
			return ir, err
		}
		defer succ.Close()
	}
	var rootConn net.Conn
	if ic.root != nil && cfg.DeltaEvery > 0 {
		var err error
		rootConn, err = dialPeer(ic.root.Addr(), time.Now().Add(cfg.migrationTimeout()))
		if err != nil {
			return ir, err
		}
		defer rootConn.Close()
	}

	alg := &fedAlg{b: b, adv: ic.adv, ic: &ic, sim: cfg.SimulateTA}
	if alg.sim != nil {
		alg.simR = rng.New(cfg.Seed ^ (uint64(ic.isl+1) * 0x7461)) // "ta"
	}

	start := time.Now()
	since := func() float64 { return time.Since(start).Seconds() }
	var elapsedAt float64

	// staged carries the migrant solution from the driver into the
	// OnMigrant hook under Handle — the hook body is identical in
	// Replay, which stages from the migrant sidecar log instead.
	var staged *core.Solution
	coreTimeout := 0.0
	if cfg.LeaseTimeout > 0 {
		coreTimeout = cfg.LeaseTimeout.Seconds()
	}
	mcfg := master.Config{
		Budget:       cfg.Evaluations,
		LeaseTimeout: coreTimeout,
		Policy:       master.EagerOffspring,
		// Workers hold deep copies of granted work (wire frames encode
		// the solution), so expired-lease work is reissued in place.
		ReuseOnResubmit: true,
		Alg:             alg,
		Meters:          ic.meters,
		Log:             ic.log,
		OnAcceptFrom:    ic.adv.ObserveAccept,
		OnMigrant: func(source int, epoch uint64) {
			if staged != nil {
				alg.inject(staged)
				staged = nil
			}
		},
	}
	if ic.trace != nil {
		mcfg.Tracer = ic.trace
	}
	if q := ic.quality; q != nil {
		q.Attach(b)
		mcfg.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
	}
	m := master.NewCore(mcfg)

	byID := make(map[uint64]*islandSession)
	drop := func(s *islandSession, why error) {
		if s.gone {
			return
		}
		s.gone = true
		s.conn.Close()
		if byID[s.id] == s {
			delete(byID, s.id)
		}
		ic.adv.SetLive(len(byID))
		cfg.logf("federation: island %d worker %d gone: %v", ic.isl, s.id, why)
	}
	var exec func(acts []master.Action)
	exec = func(acts []master.Action) {
		// Handle reuses its action slice; copy before executing, because
		// a failed grant send re-enters Handle mid-iteration.
		acts = append([]master.Action(nil), acts...)
		for _, a := range acts {
			switch a.Kind {
			case master.ActGrant:
				s := byID[uint64(a.Worker)]
				if s == nil || s.gone {
					continue
				}
				ev := &wire.Evaluate{
					Lease:    a.Item.ID,
					SolID:    a.Item.S.ID,
					Operator: int32(a.Item.S.Operator),
					Vars:     a.Item.S.Vars,
					Trace:    a.Item.Trace,
				}
				sendStart := time.Now()
				if err := s.conn.Send(ev); err != nil {
					drop(s, err)
					exec(m.Handle(master.Event{Kind: master.EvGone, Worker: a.Worker, At: since()}))
					continue
				}
				if ic.trace != nil {
					// The measured send time is the direct T_C sample: it
					// feeds both the trace (per-evaluation attribution)
					// and the advisor fit, so borgtrace's per-term means
					// and /debug/scaling agree by construction.
					tc := time.Since(sendStart).Seconds()
					ic.trace.ObserveTCSend(a.Item.ID, tc)
					ic.adv.ObserveTC(tc)
				}
			case master.ActStop:
				if s := byID[uint64(a.Worker)]; s != nil && !s.gone {
					_ = s.conn.Send(wire.Stop{})
				}
			case master.ActComplete:
				elapsedAt = since()
				ic.log.SetElapsed(elapsedAt)
			}
		}
	}

	pred := (ic.isl - 1 + cfg.Islands) % cfg.Islands
	migRng := NewMigrationRNG(cfg.Seed, ic.isl)
	pendingMig := make(map[uint64]*wire.Migrant)
	var backlog []islandEvent
	var lastEpoch uint64
	var migBuf []byte // frame scratch, reused per send
	var deltaSeq uint64
	var migErr error

	writeFrame := func(nc net.Conn, msg wire.Message) error {
		migBuf = wire.AppendFrame(migBuf[:0], msg)
		if err := nc.SetWriteDeadline(time.Now().Add(cfg.migrationTimeout())); err != nil {
			return err
		}
		_, err := nc.Write(migBuf)
		return err
	}

	// takeMigrant blocks until the predecessor's epoch-e migrant
	// arrives, buffering early migrants of later epochs and backlogging
	// every non-migrant event for the main loop.
	takeMigrant := func(epoch uint64) (*wire.Migrant, error) {
		if mg, ok := pendingMig[epoch]; ok {
			delete(pendingMig, epoch)
			return mg, nil
		}
		timeout := time.NewTimer(cfg.migrationTimeout())
		defer timeout.Stop()
		for {
			select {
			case e := <-events:
				if e.kind == iMigrant {
					if e.mig.Epoch == epoch {
						return e.mig, nil
					}
					pendingMig[e.mig.Epoch] = e.mig
					continue
				}
				backlog = append(backlog, e)
			case <-timeout.C:
				return nil, fmt.Errorf("migration epoch %d: no migrant from island %d within %v", epoch, pred, cfg.migrationTimeout())
			}
		}
	}

	// afterAccept implements the synchronous epoch protocol at accept
	// count n, plus the root delta stream. Send-before-wait keeps the
	// ring deadlock-free; the fixed injection point keeps the event log
	// canonical across transports.
	afterAccept := func(n uint64, accepted *core.Solution) {
		if migrate && n > 0 && n%cfg.MigrationEvery == 0 {
			epoch := n / cfg.MigrationEvery
			if epoch > lastEpoch {
				lastEpoch = epoch
				mg := Emigrant(ic.isl, epoch, b.Archive(), migRng, accepted)
				// The emigrant span context rides the wire to the ring
				// successor, which links it into its own forest — the
				// cross-island flow arrow in a merged Chrome export.
				mg.Trace = ic.trace.ObserveEmigrant(epoch, since())
				if err := writeFrame(succ, mg); err != nil {
					migErr = fmt.Errorf("send migrant epoch %d: %w", epoch, err)
					return
				}
				ic.mlog.Record(mg)
				ir.migrants++
				ic.meters.Migrants.Inc()
				if !m.Done() {
					in, err := takeMigrant(epoch)
					if err != nil {
						migErr = err
						return
					}
					ic.trace.LinkMigrant(epoch, in.Trace)
					staged = MigrantSolution(in)
					exec(m.Handle(master.Event{Kind: master.EvMigrant, Worker: int(in.Island), Item: epoch, At: since()}))
				}
			}
		}
		if ic.trace != nil && n%stragglerCheckEvery == 0 {
			// Poll the straggler detector so flagged workers start
			// force-sampling even when nothing serves /debug/scaling.
			ic.adv.Report()
		}
		if rootConn != nil && n > 0 && n%cfg.DeltaEvery == 0 {
			deltaSeq++
			if err := writeFrame(rootConn, archiveDelta(ic.isl, deltaSeq, n, b.Archive())); err != nil {
				cfg.logf("federation: island %d delta: %v", ic.isl, err)
				rootConn.Close()
				rootConn = nil
			}
		}
	}

	var tickC <-chan time.Time
	if cfg.LeaseTimeout > 0 {
		interval := cfg.LeaseTimeout / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	wall := time.NewTimer(cfg.wallLimit())
	defer wall.Stop()

	for !m.Done() && migErr == nil {
		var e islandEvent
		if len(backlog) > 0 {
			e = backlog[0]
			backlog = backlog[1:]
		} else {
			select {
			case e = <-events:
			case <-tickC:
				exec(m.Handle(master.Event{Kind: master.EvTick, At: since()}))
				continue
			case <-wall.C:
				migErr = fmt.Errorf("wall limit %v reached with %d/%d evaluations", cfg.wallLimit(), m.Completed(), cfg.Evaluations)
			}
			if migErr != nil {
				break
			}
		}
		switch e.kind {
		case iJoin:
			if old := byID[e.sess.id]; old != nil && old != e.sess {
				drop(old, fmt.Errorf("replaced by reconnect"))
			}
			byID[e.sess.id] = e.sess
			ic.adv.SetLive(len(byID))
			cfg.logf("federation: island %d worker %d joined (%d live)", ic.isl, e.sess.id, len(byID))
			exec(m.Handle(master.Event{Kind: master.EvJoin, Worker: int(e.sess.id), At: since()}))
		case iDead:
			if e.sess.gone {
				break
			}
			drop(e.sess, e.err)
			exec(m.Handle(master.Event{Kind: master.EvGone, Worker: int(e.sess.id), At: since()}))
		case iMigrant:
			// A migrant outside a boundary wait: the predecessor runs
			// ahead; hold its frame for the epoch we will reach.
			pendingMig[e.mig.Epoch] = e.mig
		case iMsg:
			s := e.sess
			if s.gone {
				break
			}
			msg, ok := e.msg.(*wire.Result)
			if !ok {
				break
			}
			var accepted *core.Solution
			if worker, item, live := m.Lease(msg.Lease); live && worker == int(s.id) {
				if len(msg.Objs) != cfg.Problem.NumObjs() {
					drop(s, fmt.Errorf("result with %d objectives, want %d", len(msg.Objs), cfg.Problem.NumObjs()))
					exec(m.Handle(master.Event{Kind: master.EvGone, Worker: int(s.id), At: since()}))
					break
				}
				sol := item.S
				sol.Objs = msg.Objs
				sol.Constrs = msg.Constrs
				accepted = sol
				evalSec := float64(msg.EvalNanos) / 1e9
				ic.meters.TF.ObserveExemplar(evalSec, sampledTraceID(item))
				ic.adv.ObserveTF(int(s.id), evalSec)
				ic.trace.ObserveTF(item.ID, evalSec)
				alg.curItem = item.ID
			}
			prev := m.Completed()
			exec(m.Handle(master.Event{Kind: master.EvResult, Worker: int(s.id), Item: msg.Lease, At: since()}))
			if n := m.Completed(); n > prev {
				afterAccept(n, accepted)
				// Quality cadence: the trigger detours through the master
				// so the sample point lands in this island's BMEL log
				// (replayable via ReplayQuality).
				if q := ic.quality; q != nil && migErr == nil && !m.Done() && q.Due(n, since()) {
					exec(m.Handle(master.Event{Kind: master.EvQuality, Item: q.NextSeq(), At: since()}))
				}
			}
		}
	}

	// Tear down this island's transports. Stop is written before the
	// close so healthy workers exit instead of reconnecting.
	ic.workerLn.Close()
	ic.peerLn.Close()
	for _, s := range byID {
		_ = s.conn.Send(wire.Stop{})
		s.conn.Close()
	}
	peerMu.Lock()
	for _, nc := range peerConns {
		nc.Close()
	}
	peerMu.Unlock()

	ir.stats = m.Stats()
	ir.peak = m.Peak()
	ir.elapsed = elapsedAt
	if ir.elapsed == 0 {
		ir.elapsed = since()
	}
	return ir, migErr
}

// stragglerCheckEvery is how many accepts pass between polls of the
// advisor's straggler detector when tracing is on.
const stragglerCheckEvery = 64

// sampledTraceID returns the item's trace id when its evaluation is
// sampled, else 0 (ObserveExemplar treats 0 as "no exemplar").
func sampledTraceID(item *master.Item) uint64 {
	if item.Trace.Sampled() {
		return item.Trace.TraceID
	}
	return 0
}

// archiveDelta packages the most recent archive members (capped at
// deltaCap) as a root-bound Delta frame.
const deltaCap = 32

func archiveDelta(isl int, seq, completed uint64, arch *core.Archive) *wire.Delta {
	members := arch.Members()
	if len(members) > deltaCap {
		members = members[len(members)-deltaCap:]
	}
	d := &wire.Delta{Island: uint32(isl), Seq: seq, Completed: completed}
	for _, s := range members {
		d.Members = append(d.Members, wire.DeltaMember{
			Operator: int32(s.Operator),
			Vars:     s.Vars,
			Objs:     s.Objs,
			Constrs:  s.Constrs,
		})
	}
	return d
}
