package federation_test

import (
	"bytes"
	"testing"
	"time"

	"borgmoea/internal/core"
	"borgmoea/internal/federation"
	"borgmoea/internal/master"
	"borgmoea/internal/parallel"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

func archiveBytes(t testing.TB, a *core.Archive) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newLogs(k int) ([]*master.Log, []*federation.MigrantLog) {
	logs := make([]*master.Log, k)
	mlogs := make([]*federation.MigrantLog, k)
	for i := range logs {
		logs[i] = master.NewLog()
		mlogs[i] = federation.NewMigrantLog()
	}
	return logs, mlogs
}

// fastConn keeps loopback heartbeats snappy so RTT-derived T_C
// estimates exist early in short test runs.
var fastConn = wire.Options{Heartbeat: 50 * time.Millisecond, IdleTimeout: 10 * time.Second}

// TestFederationLoopback is the live half of the ISSUE's acceptance
// demonstration: a real two-island federation over loopback TCP, with
// a controlled T_F (20ms worker delay) and a stretched T_A (5ms
// simulated critical section) so the per-island ceiling P_UB =
// T_F/(2·T_C+T_A) sits near 4 — and the 2×4-worker federation's
// aggregate observed speedup sails past it. The run records BMEL and
// migrant sidecar logs and must replay offline to the byte-identical
// merged archive, with the root's live delta merge having tracked it.
func TestFederationLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback federation run takes ~2s of wall time")
	}
	const (
		islands = 2
		perIsl  = 200
		every   = 50
	)
	problem := problems.NewDTLZ2(3)
	algCfg := core.Config{Epsilons: core.UniformEpsilons(3, 0.1)}
	logs, mlogs := newLogs(islands)

	cfg := federation.Config{
		Problem:        problem,
		Algorithm:      algCfg,
		Seed:           42,
		Islands:        islands,
		Evaluations:    perIsl,
		MigrationEvery: every,
		Workers:        4,
		WorkerDelay:    stats.NewConstant(0.020),
		SimulateTA:     stats.NewConstant(0.005),
		Conn:           fastConn,
		DeltaEvery:     every,
		Root:           true,
		Logs:           logs,
		MigrantLogs:    mlogs,
	}
	res, err := federation.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.TotalEvaluations != islands*perIsl {
		t.Fatalf("completed %d evaluations, want %d", res.TotalEvaluations, islands*perIsl)
	}
	wantMigrants := uint64(islands * (perIsl / every))
	if res.Migrants != wantMigrants {
		t.Fatalf("sent %d migrants around the ring, want %d", res.Migrants, wantMigrants)
	}
	if res.Processors != islands*(1+cfg.Workers) {
		t.Fatalf("federation processors = %d, want %d", res.Processors, islands*(1+cfg.Workers))
	}
	if len(res.MergedFront) == 0 {
		t.Fatal("merged front is empty")
	}

	// The federated scalability roll-up: with T_F = 20ms and T_A >= 5ms
	// the single-master ceiling is ~4 processors; two islands running
	// concurrently must demonstrate aggregate speedup past it.
	fr := res.Federation.Report()
	if fr.Islands != islands {
		t.Fatalf("roll-up has %d islands, want %d", fr.Islands, islands)
	}
	if fr.SingleMasterPUB <= 0 || fr.SingleMasterPUB > 6 {
		t.Fatalf("pooled single-master P_UB = %.2f, want (0, 6] for TF=20ms TA>=5ms", fr.SingleMasterPUB)
	}
	if fr.AggregateObservedSpeedup <= 1.5*fr.SingleMasterPUB {
		t.Fatalf("aggregate observed speedup %.2f does not beat 1.5x the single-master P_UB %.2f",
			fr.AggregateObservedSpeedup, fr.SingleMasterPUB)
	}

	// The root saw live deltas and its merged view tracked real progress.
	if res.Root == nil || res.Root.Deltas() == 0 {
		t.Fatal("root merged no deltas")
	}
	if res.Root.Size() == 0 {
		t.Fatal("root's live merged archive is empty")
	}
	if res.Root.Completed() == 0 {
		t.Fatal("root never learned any island's completed count")
	}

	// Offline replay from the BMEL + migrant sidecar logs reproduces the
	// identical merged Result — after a serialization round trip, so the
	// on-disk form is what's proven replayable.
	for i := range logs {
		var lb, mb bytes.Buffer
		if _, err := logs[i].WriteTo(&lb); err != nil {
			t.Fatal(err)
		}
		if logs[i], err = master.ReadLog(&lb); err != nil {
			t.Fatal(err)
		}
		if _, err := mlogs[i].WriteTo(&mb); err != nil {
			t.Fatal(err)
		}
		if mlogs[i], err = federation.ReadMigrantLog(&mb); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := federation.Replay(problem, algCfg, cfg.Seed, logs, mlogs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Islands {
		if got, want := archiveBytes(t, rep.Islands[i].Archive()), archiveBytes(t, res.Islands[i].Archive()); !bytes.Equal(got, want) {
			t.Errorf("island %d: replayed archive differs from the live run's", i)
		}
	}
	if !bytes.Equal(archiveBytes(t, rep.MergedArchive), archiveBytes(t, res.MergedArchive)) {
		t.Fatal("replayed merged archive differs from the live run's")
	}
}

// TestCrossTransportIslandsEquivalence pins the federation's canonical-
// protocol claim: for the same seed, one worker per island and the same
// migration cadence, the DES islands driver (parallel.RunIslands) and
// the loopback-TCP federation drive every island's master through the
// byte-identical logical event sequence — EvMigrant injections
// included — and end with byte-identical per-island and merged
// archives. There is one migration protocol, not one per transport.
func TestCrossTransportIslandsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP leg skipped in -short mode")
	}
	const (
		islands = 2
		perIsl  = 400
		every   = 100
	)
	problem := problems.NewDTLZ2(5)
	algCfg := core.Config{Epsilons: core.UniformEpsilons(5, 0.15)}

	desLogs, desMlogs := newLogs(islands)
	desRes, err := parallel.RunIslands(parallel.IslandsConfig{
		Base: parallel.Config{
			Problem:     problem,
			Algorithm:   algCfg,
			Processors:  2, // one worker per island: result order is forced
			Evaluations: perIsl,
			TF:          stats.NewConstant(1e-5),
			TA:          stats.NewConstant(1e-6),
			Seed:        42,
		},
		Islands:        islands,
		MigrationEvery: every,
		Logs:           desLogs,
		MigrantLogs:    desMlogs,
	})
	if err != nil {
		t.Fatal(err)
	}

	tcpLogs, tcpMlogs := newLogs(islands)
	tcpRes, err := federation.Run(federation.Config{
		Problem:        problem,
		Algorithm:      algCfg,
		Seed:           42,
		Islands:        islands,
		Evaluations:    perIsl,
		MigrationEvery: every,
		Workers:        1,
		Conn:           fastConn,
		Logs:           tcpLogs,
		MigrantLogs:    tcpMlogs,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < islands; i++ {
		if !bytes.Equal(desLogs[i].CanonicalBytes(), tcpLogs[i].CanonicalBytes()) {
			t.Errorf("island %d: TCP canonical event sequence differs from DES", i)
		}
		if desMlogs[i].Len() != tcpMlogs[i].Len() {
			t.Errorf("island %d: %d migrants over TCP, %d over DES", i, tcpMlogs[i].Len(), desMlogs[i].Len())
		}
		if !bytes.Equal(archiveBytes(t, desRes.Islands[i].Archive()), archiveBytes(t, tcpRes.Islands[i].Archive())) {
			t.Errorf("island %d: TCP archive differs from DES", i)
		}
	}
	desMerged := federation.MergeArchives(algCfg.Epsilons, desRes.Islands)
	if !bytes.Equal(archiveBytes(t, desMerged), archiveBytes(t, tcpRes.MergedArchive)) {
		t.Error("TCP merged archive differs from DES")
	}
	if desRes.Migrants != tcpRes.Migrants {
		t.Errorf("TCP sent %d migrants, DES %d", tcpRes.Migrants, desRes.Migrants)
	}
}

// TestFederationValidation covers the config error paths.
func TestFederationValidation(t *testing.T) {
	problem := problems.NewDTLZ2(2)
	base := federation.Config{
		Problem:     problem,
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(2, 0.1)},
		Islands:     2,
		Evaluations: 10,
	}
	for name, mutate := range map[string]func(*federation.Config){
		"no problem":         func(c *federation.Config) { c.Problem = nil },
		"zero islands":       func(c *federation.Config) { c.Islands = 0 },
		"zero budget":        func(c *federation.Config) { c.Evaluations = 0 },
		"short logs":         func(c *federation.Config) { c.Logs = []*master.Log{master.NewLog()} },
		"short migrant logs": func(c *federation.Config) { c.MigrantLogs = []*federation.MigrantLog{nil} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := federation.Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", name)
		}
	}
}

// BenchmarkFederationLoopback measures a small end-to-end federation
// over loopback TCP — the protocol overhead benchmark CI tracks
// head-vs-base (see bench-federation in ci.yml).
func BenchmarkFederationLoopback(b *testing.B) {
	problem := problems.NewDTLZ2(3)
	for i := 0; i < b.N; i++ {
		res, err := federation.Run(federation.Config{
			Problem:        problem,
			Algorithm:      core.Config{Epsilons: core.UniformEpsilons(3, 0.1)},
			Seed:           uint64(42 + i),
			Islands:        2,
			Evaluations:    300,
			MigrationEvery: 75,
			Workers:        2,
			Conn:           fastConn,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalEvaluations != 600 {
			b.Fatalf("completed %d evaluations, want 600", res.TotalEvaluations)
		}
	}
	b.ReportMetric(600*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}
