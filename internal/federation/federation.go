package federation

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
	"borgmoea/internal/wire"
)

// Config parameterizes a TCP federation run: k islands in one process,
// each with its own worker listener (for borgd daemons or in-process
// workers), a ring peer link for migration, and optionally a root that
// merges archive deltas live.
type Config struct {
	// Problem and Algorithm configure each island's Borg instance;
	// island isl runs with seed IslandAlgSeed(Seed, isl).
	Problem   problems.Problem
	Algorithm core.Config
	Seed      uint64

	// Islands is the number of island masters (>= 1).
	Islands int
	// Evaluations is the per-island evaluation budget.
	Evaluations uint64
	// MigrationEvery exchanges one archive member with the ring
	// successor after every such number of accepted evaluations on an
	// island (0 disables migration).
	MigrationEvery uint64

	// Workers is the number of in-process workers spawned per island
	// (0 means external borgd daemons are expected to dial in; use
	// OnListen to learn the per-island addresses).
	Workers int
	// WorkerDelay is an artificial per-evaluation hold for in-process
	// workers — the controlled T_F of the paper's experiment design.
	WorkerDelay stats.Distribution
	// SimulateTA, when set, is sampled and slept inside every master
	// critical section on top of the real algorithm time — it drags
	// the per-island P_UB down to something a loopback test can
	// saturate.
	SimulateTA stats.Distribution

	// ListenAddrs optionally pins each island's worker listen address
	// (default 127.0.0.1:0). OnListen, when set, receives the bound
	// address of every island before workers are expected.
	ListenAddrs []string
	OnListen    func(island int, addr string)

	// LeaseTimeout bounds outstanding evaluations (0 disables expiry —
	// in-process fleets do not need the fault machinery).
	LeaseTimeout time.Duration
	// MigrationTimeout bounds the wait for a predecessor's migrant
	// (default 30s); expiring it fails the island rather than hanging
	// the ring.
	MigrationTimeout time.Duration
	// WallLimit aborts a run that makes no progress (default 5m).
	WallLimit time.Duration
	// Conn tunes every connection the federation makes.
	Conn wire.Options

	// DeltaEvery streams a batch of recent archive members to the root
	// after every such number of accepts (0 disables delta traffic).
	// Deltas feed live monitoring only; the final MergedFront is
	// always recomputed exactly from the island archives.
	DeltaEvery uint64
	// Root, when true, runs the merging root alongside the islands.
	Root bool

	// Logs, when non-nil, must have length Islands: island isl records
	// its BMEL event stream into Logs[isl]. MigrantLogs likewise
	// captures each island's outgoing migrants — together they make
	// the run replayable (see Replay).
	Logs        []*master.Log
	MigrantLogs []*MigrantLog

	// Tracers, when non-nil, must have length Islands (nil entries
	// disable tracing for that island): island isl mints one
	// distributed trace per evaluation into Tracers[isl] — span
	// contexts travel to workers on the wire, migrants carry their
	// sender's context around the ring, and the collector attributes
	// the paper's model terms (T_C, T_F, T_A) per evaluation. Each
	// island's advisor force-samples workers it flags as stragglers.
	// Paired with Logs, the collector's TraceLog sidecar reconstructs
	// the identical forest offline (obs.TracesFromLog).
	Tracers []*obs.Collector

	// Federation, when set, is the advisor roll-up the per-island
	// advisors attach to (serve its Handler while the run is live);
	// nil creates one, returned in Result.Federation.
	Federation *advisor.Federation

	// Quality, when non-nil, must have length Islands (nil entries
	// disable quality sampling for that island): island isl snapshots
	// its search quality (hypervolume, ε-progress, operator adaptation)
	// into Quality[isl] on the sampler's cadence. Give each sampler its
	// own GaugePrefix (e.g. "island0.") when they share a registry.
	// The sample points ride the island's BMEL log as EvQuality events,
	// so ReplayQuality regenerates every island's timeline byte for
	// byte. Merged-front quality is computed lazily from Root.Front()
	// by whoever serves it (see cmd/borgfed) — the steady-state run
	// pays nothing for it.
	Quality []*obs.QualitySampler

	// OnRoot, when set, receives the live merging root right after it
	// binds, before any island runs — a debug server can serve
	// merged-front quality while the run is in flight (Root.Front is
	// safe to call concurrently). Only fires when Root is true.
	OnRoot func(*Root)

	// Metrics receives the shared protocol counters of all islands.
	Metrics *obs.Registry
	// Logf, when set, receives lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Config) migrationTimeout() time.Duration {
	if c.MigrationTimeout > 0 {
		return c.MigrationTimeout
	}
	return 30 * time.Second
}

func (c *Config) wallLimit() time.Duration {
	if c.WallLimit > 0 {
		return c.WallLimit
	}
	return 5 * time.Minute
}

// Result summarizes a federation run.
type Result struct {
	// ElapsedTime is the wall time (seconds) at which the last island
	// completed its budget.
	ElapsedTime float64
	// TotalEvaluations across all islands (migrant injections are not
	// charged, exactly as in the DES islands driver).
	TotalEvaluations uint64
	// Islands holds each island's final Borg instance; IslandElapsed
	// and IslandStats each island's finish time and protocol counters.
	Islands       []*core.Borg
	IslandElapsed []float64
	IslandStats   []master.Stats
	// Processors is the federation-wide processor count: one master
	// plus the peak worker pool per island.
	Processors int
	// Migrants counts archive members sent around the ring.
	Migrants uint64
	// MergedFront is the ε-nondominated union of all island archives
	// (objective vectors), and MergedArchive the archive itself.
	MergedFront   [][]float64
	MergedArchive *core.Archive
	// Federation is the advisor roll-up with every island's advisor
	// attached — Report() gives the federated scalability analysis.
	Federation *advisor.Federation
	// Root holds the root's live merge state when Config.Root was set.
	Root *Root
}

// Run executes the federation: k island masters in this process, their
// ring peer links, optional in-process workers, and the optional
// merging root. It blocks until every island completes its budget (or
// fails), then computes the merged Result.
func Run(cfg Config) (*Result, error) {
	if cfg.Problem == nil {
		return nil, fmt.Errorf("federation: Problem is required")
	}
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("federation: need at least 1 island, got %d", cfg.Islands)
	}
	if cfg.Evaluations == 0 {
		return nil, fmt.Errorf("federation: Evaluations must be positive")
	}
	if cfg.Logs != nil && len(cfg.Logs) != cfg.Islands {
		return nil, fmt.Errorf("federation: Logs must have one entry per island")
	}
	if cfg.MigrantLogs != nil && len(cfg.MigrantLogs) != cfg.Islands {
		return nil, fmt.Errorf("federation: MigrantLogs must have one entry per island")
	}
	if cfg.Tracers != nil && len(cfg.Tracers) != cfg.Islands {
		return nil, fmt.Errorf("federation: Tracers must have one entry per island")
	}
	if cfg.Quality != nil && len(cfg.Quality) != cfg.Islands {
		return nil, fmt.Errorf("federation: Quality must have one entry per island")
	}
	if cfg.Conn.Metrics == nil {
		cfg.Conn.Metrics = cfg.Metrics
	}
	k := cfg.Islands

	fed := cfg.Federation
	if fed == nil {
		fed = advisor.NewFederation()
	}

	// Bind every listener before any island runs, so ring dials and
	// OnListen callbacks cannot race the startup order.
	workerLns := make([]net.Listener, k)
	peerLns := make([]net.Listener, k)
	peerAddrs := make([]string, k)
	closeAll := func() {
		for _, ln := range workerLns {
			if ln != nil {
				ln.Close()
			}
		}
		for _, ln := range peerLns {
			if ln != nil {
				ln.Close()
			}
		}
	}
	for isl := 0; isl < k; isl++ {
		addr := "127.0.0.1:0"
		if cfg.ListenAddrs != nil && cfg.ListenAddrs[isl] != "" {
			addr = cfg.ListenAddrs[isl]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("federation: island %d listen: %w", isl, err)
		}
		workerLns[isl] = ln
		pln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("federation: island %d peer listen: %w", isl, err)
		}
		peerLns[isl] = pln
		peerAddrs[isl] = pln.Addr().String()
	}

	var root *Root
	if cfg.Root {
		var err error
		root, err = startRoot(&cfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		defer root.Close()
		if cfg.OnRoot != nil {
			cfg.OnRoot(root)
		}
	}

	res := &Result{
		Islands:       make([]*core.Borg, k),
		IslandElapsed: make([]float64, k),
		IslandStats:   make([]master.Stats, k),
		Federation:    fed,
		Root:          root,
	}
	meters := master.NewMeters(cfg.Metrics)

	irs := make([]islandResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for isl := 0; isl < k; isl++ {
		algCfg := cfg.Algorithm
		algCfg.Seed = IslandAlgSeed(cfg.Seed, isl)
		b, err := core.New(cfg.Problem, algCfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		res.Islands[isl] = b

		advCfg := advisor.Config{Budget: cfg.Evaluations}
		var trace *obs.Collector
		if cfg.Tracers != nil {
			trace = cfg.Tracers[isl]
		}
		if trace != nil {
			// Advisor-flagged stragglers are always traced, whatever the
			// sampling rate says.
			advCfg.OnStraggler = trace.ForceWorker
		}
		adv := advisor.New(advCfg)
		fed.Attach(adv)

		ic := islandContext{
			cfg:      &cfg,
			isl:      isl,
			b:        b,
			adv:      adv,
			meters:   meters,
			workerLn: workerLns[isl],
			peerLn:   peerLns[isl],
			succAddr: peerAddrs[(isl+1)%k],
			root:     root,
			trace:    trace,
		}
		if cfg.Logs != nil {
			ic.log = cfg.Logs[isl]
		}
		if cfg.Quality != nil {
			ic.quality = cfg.Quality[isl]
		}
		if cfg.MigrantLogs != nil {
			ic.mlog = cfg.MigrantLogs[isl]
		}
		if cfg.OnListen != nil {
			cfg.OnListen(isl, workerLns[isl].Addr().String())
		}
		wg.Add(1)
		go func(isl int, ic islandContext) {
			defer wg.Done()
			irs[isl], errs[isl] = runIsland(ic)
		}(isl, ic)
	}

	// In-process worker fleet: Workers daemons per island, identical to
	// external borgd processes but cancelled when the run ends.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var workerWG sync.WaitGroup
	for isl := 0; isl < k && cfg.Workers > 0; isl++ {
		addr := workerLns[isl].Addr().String()
		for w := 0; w < cfg.Workers; w++ {
			workerWG.Add(1)
			go func(isl, w int, addr string) {
				defer workerWG.Done()
				wcfg := wire.WorkerConfig{
					Addr:  addr,
					Delay: cfg.WorkerDelay,
					Seed:  cfg.Seed ^ (uint64(isl*1024+w+1) * 0x9e3779b97f4a7c15),
					Conn:  cfg.Conn,
					Resolve: func(string) (problems.Problem, error) {
						return cfg.Problem, nil
					},
				}
				if err := wire.RunWorker(ctx, wcfg); err != nil && ctx.Err() == nil {
					cfg.logf("federation: island %d worker %d: %v", isl, w, err)
				}
			}(isl, w, addr)
		}
	}

	wg.Wait()
	cancel()
	workerWG.Wait()

	for isl := 0; isl < k; isl++ {
		if errs[isl] != nil {
			return nil, fmt.Errorf("federation: island %d: %w", isl, errs[isl])
		}
	}
	for isl := 0; isl < k; isl++ {
		res.TotalEvaluations += res.Islands[isl].Evaluations()
		res.IslandElapsed[isl] = irs[isl].elapsed
		res.IslandStats[isl] = irs[isl].stats
		res.Migrants += irs[isl].migrants
		res.Processors += 1 + irs[isl].peak
		if irs[isl].elapsed > res.ElapsedTime {
			res.ElapsedTime = irs[isl].elapsed
		}
	}
	res.MergedArchive = MergeArchives(cfg.Algorithm.Epsilons, res.Islands)
	res.MergedFront = res.MergedArchive.Objectives()
	return res, nil
}
