package federation

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"borgmoea/internal/core"
	"borgmoea/internal/wire"
)

// MigrantLog is the sidecar a BMEL event log needs to replay a
// federated run: the island's outgoing migrants, one per migration
// epoch, in epoch order. The BMEL log pins *where* each EvMigrant was
// injected into the accept stream; the predecessor island's MigrantLog
// holds *what* was injected. Together the k (log, sidecar) pairs
// reproduce the identical merged Result offline (see Replay).
//
// Serialized form: the migrants as ordinary wire frames, concatenated
// — versioned and CRC-checked like all wire traffic, readable with
// wire.ReadMessage until EOF.
type MigrantLog struct {
	mu       sync.Mutex
	migrants []*wire.Migrant
}

// NewMigrantLog returns an empty sidecar log.
func NewMigrantLog() *MigrantLog { return &MigrantLog{} }

// Record appends one outgoing migrant (nil-safe). The migrant is
// deep-copied: callers build frames referencing live archive-member
// slices, and the log must outlive them.
func (l *MigrantLog) Record(m *wire.Migrant) {
	if l == nil {
		return
	}
	cp := *m
	cp.Vars = append([]float64(nil), m.Vars...)
	cp.Objs = append([]float64(nil), m.Objs...)
	cp.Constrs = append([]float64(nil), m.Constrs...)
	l.mu.Lock()
	l.migrants = append(l.migrants, &cp)
	l.mu.Unlock()
}

// Len returns the number of recorded migrants.
func (l *MigrantLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.migrants)
}

// Solution returns the migrant recorded for the given epoch as a fresh
// evaluated solution, or false if the epoch was never recorded. Each
// call allocates its own slices, so concurrent replays cannot alias.
func (l *MigrantLog) Solution(epoch uint64) (*core.Solution, bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.migrants {
		if m.Epoch == epoch {
			s := MigrantSolution(m)
			s.Vars = append([]float64(nil), m.Vars...)
			s.Objs = append([]float64(nil), m.Objs...)
			s.Constrs = append([]float64(nil), m.Constrs...)
			return s, true
		}
	}
	return nil, false
}

// WriteTo serializes the log as concatenated wire frames. It
// implements io.WriterTo.
func (l *MigrantLog) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bw := bufio.NewWriter(w)
	var n int64
	var buf []byte
	for _, m := range l.migrants {
		buf = wire.AppendFrame(buf[:0], m)
		k, err := bw.Write(buf)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadMigrantLog deserializes a log written by WriteTo: wire frames
// until EOF, every one of which must decode to a Migrant.
func ReadMigrantLog(r io.Reader) (*MigrantLog, error) {
	br := bufio.NewReader(r)
	l := &MigrantLog{}
	var buf []byte // payload scratch; decoded migrants never alias it
	for {
		m, buf2, err := wire.ReadMessageBuf(br, buf)
		buf = buf2
		if err != nil {
			if errors.Is(err, io.EOF) {
				return l, nil
			}
			return nil, fmt.Errorf("federation: migrant log: %w", err)
		}
		mg, ok := m.(*wire.Migrant)
		if !ok {
			return nil, fmt.Errorf("federation: migrant log holds a %s frame", m.Tag())
		}
		l.migrants = append(l.migrants, mg)
	}
}
