package federation_test

import (
	"bytes"
	"testing"

	"borgmoea/internal/core"
	"borgmoea/internal/federation"
	"borgmoea/internal/master"
	"borgmoea/internal/metrics"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

func newQualitySamplers(k int, every uint64) []*obs.QualitySampler {
	qs := make([]*obs.QualitySampler, k)
	for i := range qs {
		qs[i] = obs.NewQualitySampler(obs.QualityConfig{
			Every: every,
			Ref:   metrics.RefPointFor("DTLZ2", 3),
		})
	}
	return qs
}

func qualityTimeline(t testing.TB, s *obs.QualitySampler) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Log().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFederationQualityReplay: a federated run with per-island quality
// samplers replays every island's quality timeline byte-identically
// from the BMEL + migrant logs — sample points ride the event stream
// through migrations, so the offline reconstruction sees the same
// archives at the same points.
func TestFederationQualityReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback federation run in -short mode")
	}
	const (
		islands = 2
		perIsl  = 300
		every   = 75
	)
	problem := problems.NewDTLZ2(3)
	algCfg := core.Config{Epsilons: core.UniformEpsilons(3, 0.1)}
	logs, mlogs := newLogs(islands)
	quality := newQualitySamplers(islands, 50)

	res, err := federation.Run(federation.Config{
		Problem:        problem,
		Algorithm:      algCfg,
		Seed:           42,
		Islands:        islands,
		Evaluations:    perIsl,
		MigrationEvery: every,
		Workers:        2,
		WorkerDelay:    stats.NewConstant(0.002),
		Conn:           fastConn,
		Logs:           logs,
		MigrantLogs:    mlogs,
		Quality:        quality,
	})
	if err != nil {
		t.Fatal(err)
	}
	live := make([][]byte, islands)
	for i, q := range quality {
		if len(q.Log().Samples) == 0 {
			t.Fatalf("island %d produced no quality samples", i)
		}
		last, _ := q.Latest()
		if last.Hypervolume <= 0 {
			t.Errorf("island %d final hypervolume %v, want > 0", i, last.Hypervolume)
		}
		live[i] = qualityTimeline(t, q)
	}

	// Serialization round trip first: the on-disk logs are what must
	// replay.
	for i := range logs {
		var lb, mb bytes.Buffer
		if _, err := logs[i].WriteTo(&lb); err != nil {
			t.Fatal(err)
		}
		if logs[i], err = master.ReadLog(&lb); err != nil {
			t.Fatal(err)
		}
		if _, err := mlogs[i].WriteTo(&mb); err != nil {
			t.Fatal(err)
		}
		if mlogs[i], err = federation.ReadMigrantLog(&mb); err != nil {
			t.Fatal(err)
		}
	}
	replayQ := newQualitySamplers(islands, 50)
	rep, err := federation.ReplayQuality(problem, algCfg, 42, logs, mlogs, replayQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := range replayQ {
		if !bytes.Equal(live[i], qualityTimeline(t, replayQ[i])) {
			t.Errorf("island %d: replayed quality timeline differs from the live run's", i)
		}
	}
	// Archive determinism is unaffected by riding EvQuality events.
	for i := range rep.Islands {
		if !bytes.Equal(archiveBytes(t, rep.Islands[i].Archive()), archiveBytes(t, res.Islands[i].Archive())) {
			t.Errorf("island %d: replayed archive differs from the live run's", i)
		}
	}

	// Plain Replay tolerates the recorded EvQuality events (no sampler:
	// they are no-ops) and still reconstructs the archives.
	rep2, err := federation.Replay(problem, algCfg, 42, logs, mlogs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(archiveBytes(t, rep2.MergedArchive), archiveBytes(t, res.MergedArchive)) {
		t.Error("quality-blind replay no longer reproduces the merged archive")
	}
}

// TestFederationQualityValidation: a Quality slice of the wrong length
// is rejected up front.
func TestFederationQualityValidation(t *testing.T) {
	_, err := federation.Run(federation.Config{
		Problem:     problems.NewDTLZ2(2),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(2, 0.1)},
		Islands:     2,
		Evaluations: 10,
		Quality:     newQualitySamplers(1, 10),
	})
	if err == nil {
		t.Fatal("Run accepted a short Quality slice")
	}
}
