package federation

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"borgmoea/internal/core"
	"borgmoea/internal/wire"
)

// Root is the hierarchical topology's merge point: islands stream
// archive Delta frames up to it, and it folds every member into a live
// ε-archive. The root is monitor-only — nothing flows back down, so it
// cannot perturb the islands' trajectories and the run replays without
// it. The exact merged Result is always recomputed from the final
// island archives (MergeArchives); the root's value is the *live* view
// of the federated front while a long run is still going.
type Root struct {
	ln net.Listener

	mu        sync.Mutex
	arch      *core.Archive
	deltas    uint64
	completed map[uint32]uint64
	conns     []net.Conn
}

// startRoot binds the root listener and starts its accept loop.
func startRoot(cfg *Config) (*Root, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("federation: root listen: %w", err)
	}
	r := &Root{
		ln:        ln,
		arch:      core.NewArchive(cfg.Algorithm.Epsilons, 0),
		completed: make(map[uint32]uint64),
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			r.mu.Lock()
			r.conns = append(r.conns, nc)
			r.mu.Unlock()
			go r.serve(nc)
		}
	}()
	return r, nil
}

// Addr returns the root's listen address, which islands dial.
func (r *Root) Addr() string { return r.ln.Addr().String() }

// serve reads one island's delta stream until it closes.
func (r *Root) serve(nc net.Conn) {
	br := bufio.NewReader(nc)
	var buf []byte // payload scratch; decoded messages never alias it
	for {
		m, next, err := wire.ReadMessageBuf(br, buf)
		buf = next
		if err != nil {
			return
		}
		d, ok := m.(*wire.Delta)
		if !ok {
			continue
		}
		r.merge(d)
	}
}

// merge folds one delta into the live archive. Decoder-fresh slices
// transfer without copies; re-sent members are deduplicated by the
// ε-archive itself.
func (r *Root) merge(d *wire.Delta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deltas++
	if d.Completed > r.completed[d.Island] {
		r.completed[d.Island] = d.Completed
	}
	for i := range d.Members {
		mb := &d.Members[i]
		r.arch.Add(&core.Solution{
			Vars:     mb.Vars,
			Objs:     mb.Objs,
			Constrs:  mb.Constrs,
			Operator: int(mb.Operator),
		})
	}
}

// Front returns a snapshot of the live merged front's objective
// vectors.
func (r *Root) Front() [][]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.arch.Objectives()
}

// Size returns the live merged archive's size.
func (r *Root) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.arch.Size()
}

// Deltas returns how many delta frames the root has merged.
func (r *Root) Deltas() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deltas
}

// Completed returns the sum of the latest per-island completed counts
// the deltas reported.
func (r *Root) Completed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, c := range r.completed {
		n += c
	}
	return n
}

// Close stops the accept loop and drops every island stream.
func (r *Root) Close() {
	r.ln.Close()
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	r.mu.Unlock()
	for _, nc := range conns {
		nc.Close()
	}
}
