// Package federation shards the serial master the paper's Eq. 4
// bounds: N islands, each a full asynchronous master-slave Borg
// instance running the shared state machine (internal/master) over its
// own worker pool, exchange ε-archive members in a ring over
// internal/wire and optionally report archive deltas up to a merging
// root. The single-master processor ceiling P_UB = T_F/(2·T_C + T_A)
// applies per island, so k islands raise the federation's useful
// processor count toward k·P_UB — the speedup-past-the-bound
// demonstration ROADMAP item 1 calls for.
//
// The migration protocol is deliberately synchronous on migration
// epochs: at its e-th migration boundary (accepted-evaluation count
// n = e·MigrationEvery) an island first sends its epoch-e emigrant to
// its ring successor, then — unless the budget completed on that very
// accept — blocks until the epoch-e migrant from its predecessor
// arrives, and folds it in as an EvMigrant event. Send-before-wait
// keeps the ring deadlock-free (every island can always produce its
// epoch-e emigrant without waiting), and pinning the injection to a
// fixed point in the accept stream makes the event logs canonical:
// the DES islands driver (parallel.RunIslands) and the TCP federation
// produce byte-identical logical event sequences for the same seed,
// and any federated run replays offline — BMEL logs plus migrant
// sidecar logs — to the identical merged Result.
package federation

import (
	"borgmoea/internal/core"
	"borgmoea/internal/rng"
	"borgmoea/internal/wire"
)

// IslandAlgSeed returns island isl's algorithm seed — the golden-ratio
// stride RunIslands has always used, shared here so the DES and TCP
// transports instantiate identical Borg streams.
func IslandAlgSeed(seed uint64, isl int) uint64 {
	return seed + uint64(isl)*0x9e3779b97f4a7c15
}

// NewMigrationRNG returns island isl's dedicated emigrant-selection
// stream. It is split from every other stream — the DES master's
// T_A/T_C sampling in particular — because both transports must draw
// from it at exactly the same points (one Intn per migration epoch)
// for the selected emigrant to be transport-independent.
func NewMigrationRNG(seed uint64, isl int) *rng.Source {
	return rng.New(seed ^ (uint64(isl+1) * 0x6d696772)) // "migr"
}

// Emigrant selects island isl's epoch-e emigrant: a random ε-archive
// member, or — if the archive is empty, possible under constrained
// problems with no feasible solution yet — the just-accepted solution,
// so the ring never stalls. The returned Migrant references the
// solution's slices; it must be serialized (or deep-copied) before
// the algorithm runs again.
func Emigrant(isl int, epoch uint64, arch *core.Archive, r *rng.Source, accepted *core.Solution) *wire.Migrant {
	s := accepted
	if n := arch.Size(); n > 0 {
		s = arch.Members()[r.Intn(n)]
	}
	return &wire.Migrant{
		Island:   uint32(isl),
		Epoch:    epoch,
		SolID:    s.ID,
		Operator: int32(s.Operator),
		Vars:     s.Vars,
		Objs:     s.Objs,
		Constrs:  s.Constrs,
	}
}

// MigrantSolution converts a decoded Migrant frame into an evaluated
// solution ready for Borg.InjectEvaluated. The frame's slices were
// freshly allocated by the decoder, so they transfer without copies.
func MigrantSolution(m *wire.Migrant) *core.Solution {
	return &core.Solution{
		Vars:     m.Vars,
		Objs:     m.Objs,
		Constrs:  m.Constrs,
		Operator: int(m.Operator),
		ID:       m.SolID,
	}
}

// MergeArchives returns the ε-nondominated union of the island
// archives, folded in island order — the canonical merged Result every
// transport (and Replay) computes identically.
func MergeArchives(epsilons []float64, islands []*core.Borg) *core.Archive {
	merged := core.NewArchive(epsilons, 0)
	for _, b := range islands {
		for _, m := range b.Archive().Members() {
			merged.Add(m)
		}
	}
	return merged
}
