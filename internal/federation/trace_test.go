package federation_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"borgmoea/internal/advisor"
	"borgmoea/internal/core"
	"borgmoea/internal/federation"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
	"borgmoea/internal/stats"
)

func forestJSON(t testing.TB, f obs.Forest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFederationTracing is the PR's acceptance run: a two-island
// federation over loopback TCP with sampling 1.0. It must (a) emit one
// trace per evaluation whose model-term children were measured on the
// real sockets, (b) reconstruct the byte-identical forest offline from
// the BMEL log + trace sidecar after a serialization round trip,
// (c) produce per-term attribution means that agree with the advisor's
// independently fitted T_F/T_C/T_A estimates within 10%, and (d) link
// ring migrations across islands so the merged Chrome export draws
// emigrant→migrant flow arrows.
func TestFederationTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback federation run takes ~2s of wall time")
	}
	const (
		islands = 2
		perIsl  = 200
		every   = 50
	)
	problem := problems.NewDTLZ2(3)
	algCfg := core.Config{Epsilons: core.UniformEpsilons(3, 0.1)}
	logs, mlogs := newLogs(islands)
	tracers := make([]*obs.Collector, islands)
	for i := range tracers {
		tracers[i] = obs.NewCollector(obs.CollectorConfig{RunID: 42 ^ uint64(i), Rate: 1})
	}

	cfg := federation.Config{
		Problem:        problem,
		Algorithm:      algCfg,
		Seed:           42,
		Islands:        islands,
		Evaluations:    perIsl,
		MigrationEvery: every,
		Workers:        4,
		WorkerDelay:    stats.NewConstant(0.020),
		SimulateTA:     stats.NewConstant(0.005),
		Conn:           fastConn,
		Logs:           logs,
		MigrantLogs:    mlogs,
		Tracers:        tracers,
	}
	res, err := federation.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvaluations != islands*perIsl {
		t.Fatalf("completed %d evaluations, want %d", res.TotalEvaluations, islands*perIsl)
	}
	fr := res.Federation.Report()

	var forests []obs.Forest
	for i := 0; i < islands; i++ {
		live := tracers[i].Forest()
		forests = append(forests, live)
		att := live.Attribution()

		// (a) Every evaluation traced, with real measured terms.
		if att.Evals < perIsl {
			t.Fatalf("island %d: %d traced evals, want >= %d", i, att.Evals, perIsl)
		}
		if att.TF.N == 0 || att.TCSend.N == 0 || att.TA.N == 0 {
			t.Fatalf("island %d: missing model terms in attribution %+v", i, att)
		}
		// A batch in flight at shutdown may not land, so migrations
		// received can trail the emigration cadence by one.
		if att.Migrants < perIsl/every-1 || att.Migrants > perIsl/every {
			t.Fatalf("island %d: %d migrant spans, want %d or %d", i, att.Migrants, perIsl/every-1, perIsl/every)
		}

		// (b) Offline reconstruction through the on-disk forms.
		var lb, tb bytes.Buffer
		if _, err := logs[i].WriteTo(&lb); err != nil {
			t.Fatal(err)
		}
		diskLog, err := master.ReadLog(&lb)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tracers[i].TraceLog().WriteTo(&tb); err != nil {
			t.Fatal(err)
		}
		sidecar, err := obs.ReadTraceLog(&tb)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := obs.TracesFromLog(diskLog, sidecar)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(forestJSON(t, recon), forestJSON(t, live)) {
			t.Fatalf("island %d: offline reconstruction differs from the live forest", i)
		}

		// (c) The traced means and the advisor's fit measure the same
		// run through independent pipelines; they must agree.
		fitted := fr.Reports[i].Times
		within := func(name string, traced, fitted float64) {
			if fitted <= 0 {
				t.Fatalf("island %d: advisor fitted no %s", i, name)
			}
			if rel := math.Abs(traced-fitted) / fitted; rel > 0.10 {
				t.Errorf("island %d: traced %s mean %.6fs vs advisor fit %.6fs (%.1f%% apart, want <= 10%%)",
					i, name, traced, fitted, 100*rel)
			}
		}
		within("T_F", att.TF.Mean, fitted.TF)
		within("T_C", att.TCSend.Mean, fitted.TC)
		within("T_A", att.TA.Mean, fitted.TA)
	}

	// (d) The merged Chrome export validates, and every migrant that
	// landed finishes a flow started by some island's emigrant span.
	var buf bytes.Buffer
	if err := obs.WriteChromeForests(&buf, []string{"island-0", "island-1"}, forests); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("merged export failed Chrome validation: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			ID    string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	starts, finishes := map[string]int{}, map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Name != "migrate" {
			continue
		}
		switch e.Phase {
		case "s":
			starts[e.ID]++
		case "f":
			finishes[e.ID]++
		}
	}
	var migrants int
	for _, f := range forests {
		a := f.Attribution()
		migrants += a.Migrants
	}
	if len(starts) == 0 || len(finishes) == 0 {
		t.Fatalf("export has %d flow starts and %d finishes; want migration arrows on both sides", len(starts), len(finishes))
	}
	if got := len(finishes); got != migrants {
		t.Fatalf("export has %d distinct flow finishes for %d migrant spans", got, migrants)
	}
	for id, n := range finishes {
		if n != 1 || starts[id] != 1 {
			t.Errorf("migrant flow %s: %d finishes, %d starts; want exactly 1 of each (cross-island arrow broken)", id, n, starts[id])
		}
	}
}

// TestFederationTracerValidation pins the Tracers length check.
func TestFederationTracerValidation(t *testing.T) {
	cfg := federation.Config{
		Problem:     problems.NewDTLZ2(3),
		Algorithm:   core.Config{Epsilons: core.UniformEpsilons(3, 0.1)},
		Islands:     2,
		Evaluations: 10,
		Tracers:     []*obs.Collector{nil},
	}
	if _, err := federation.Run(cfg); err == nil {
		t.Fatal("Run accepted a Tracers slice shorter than Islands")
	}
}

// TestFederationStragglerForcedTracing wires an advisor-driven
// OnStraggler → ForceWorker loop the way federation.Run does and
// checks the contract end to end at sampling rate 0: only the flagged
// worker's traces are emitted, live and after reconstruction.
func TestFederationStragglerForcedTracing(t *testing.T) {
	col := obs.NewCollector(obs.CollectorConfig{RunID: 7, Rate: 0})
	adv := advisor.New(advisor.Config{OnStraggler: col.ForceWorker})
	adv.SetLive(4)

	// Worker 3 is 10x slower than the fleet; everyone else is uniform.
	var item uint64
	for round := 0; round < 40; round++ {
		for w := 1; w <= 4; w++ {
			item++
			col.TraceGrant(w, item, float64(item))
			tf := 0.01
			if w == 3 {
				tf = 0.1
			}
			adv.ObserveTF(w, tf)
			col.ObserveTF(item, tf)
			col.TraceResult(w, item, float64(item)+tf, true)
			adv.ObserveAccept(w, item, float64(item)+tf)
		}
	}
	r := adv.Report()
	if len(r.Stragglers) == 0 {
		t.Fatal("advisor flagged no straggler for a 10x-slow worker")
	}

	f := col.Forest()
	if len(f) == 0 {
		t.Fatal("straggler flag forced no traces at rate 0")
	}
	for _, s := range f {
		if s.Worker != 3 {
			t.Fatalf("rate-0 forest emitted worker %d's span; only the straggler's should force", s.Worker)
		}
	}

	// The force decision persists in the sidecar: a fresh collector
	// primed from it emits the same forest for the same protocol.
	recon := obs.NewCollectorFromLog(col.TraceLog())
	item = 0
	for round := 0; round < 40; round++ {
		for w := 1; w <= 4; w++ {
			item++
			recon.TraceGrant(w, item, float64(item))
			tf := 0.01
			if w == 3 {
				tf = 0.1
			}
			recon.TraceResult(w, item, float64(item)+tf, true)
		}
	}
	if !bytes.Equal(forestJSON(t, recon.Forest()), forestJSON(t, f)) {
		t.Fatal("reconstructed straggler-forced forest differs from live")
	}
}
