package federation

import (
	"fmt"

	"borgmoea/internal/core"
	"borgmoea/internal/master"
	"borgmoea/internal/obs"
	"borgmoea/internal/problems"
)

// replayAlg is the timing-free optimizer adapter replays use: the
// recorded run's T_A holds shaped only the event *order*, which the log
// already pins, so replaying re-runs the algorithm bare.
type replayAlg struct{ b *core.Borg }

func (a replayAlg) Suggest() *core.Solution { return a.b.Suggest() }
func (a replayAlg) Accept(s *core.Solution) { a.b.Accept(s) }
func (a replayAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	a.b.Accept(s)
	return a.b.Suggest()
}

// ReplayResult is the offline reconstruction of a federated run.
type ReplayResult struct {
	// Islands holds each island's replayed Borg instance; its archive
	// and population match the live run's exactly.
	Islands []*core.Borg
	// MergedFront and MergedArchive are the recomputed federated
	// front, identical to the live Result's.
	MergedFront   [][]float64
	MergedArchive *core.Archive
}

// Replay reconstructs a federated run offline from its per-island BMEL
// event logs and migrant sidecar logs: each island's log replays
// through a fresh Core with the island's algorithm seed, and every
// recorded EvMigrant resolves against the *source* island's sidecar to
// re-inject the identical solution at the identical point in the
// accept stream. With a deterministic problem the replay reproduces
// every island archive — and therefore the merged front — byte for
// byte.
func Replay(problem problems.Problem, algCfg core.Config, seed uint64, logs []*master.Log, mlogs []*MigrantLog) (*ReplayResult, error) {
	return ReplayQuality(problem, algCfg, seed, logs, mlogs, nil)
}

// ReplayQuality is Replay with per-island quality samplers: island
// isl's recorded EvQuality points re-trigger quality[isl].Sample
// against the replayed algorithm, regenerating the live run's QLOG
// timeline byte for byte (construct each sampler with the live run's
// Ref/MaxExact/MCSamples). quality may be nil, shorter than logs, or
// hold nil entries — recorded EvQuality events without a sampler are
// no-ops and do not perturb the archive reconstruction.
func ReplayQuality(problem problems.Problem, algCfg core.Config, seed uint64, logs []*master.Log, mlogs []*MigrantLog, quality []*obs.QualitySampler) (*ReplayResult, error) {
	if problem == nil {
		return nil, fmt.Errorf("federation: replay needs the problem")
	}
	if len(logs) == 0 {
		return nil, fmt.Errorf("federation: replay needs at least one event log")
	}
	if mlogs != nil && len(mlogs) != len(logs) {
		return nil, fmt.Errorf("federation: %d migrant logs for %d event logs", len(mlogs), len(logs))
	}
	res := &ReplayResult{Islands: make([]*core.Borg, len(logs))}
	for isl, log := range logs {
		cfg := algCfg
		cfg.Seed = IslandAlgSeed(seed, isl)
		b, err := core.New(problem, cfg)
		if err != nil {
			return nil, err
		}
		res.Islands[isl] = b
		var injectErr error
		rc := master.ReplayConfig{
			Alg:      replayAlg{b: b},
			Evaluate: func(item *master.Item) { core.EvaluateSolution(problem, item.S) },
			OnMigrant: func(source int, epoch uint64) {
				if injectErr != nil {
					return
				}
				if source < 0 || source >= len(mlogs) {
					injectErr = fmt.Errorf("federation: island %d log names source island %d of %d", isl, source, len(mlogs))
					return
				}
				s, ok := mlogs[source].Solution(epoch)
				if !ok {
					injectErr = fmt.Errorf("federation: island %d needs epoch %d from island %d, not in its migrant log", isl, epoch, source)
					return
				}
				b.InjectEvaluated(s)
			},
		}
		if isl < len(quality) && quality[isl] != nil {
			q := quality[isl]
			q.Attach(b)
			rc.OnQuality = func(seq uint64, at float64) { q.Sample(seq, at) }
		}
		if _, err := master.Replay(log, rc); err != nil {
			return nil, fmt.Errorf("federation: island %d: %w", isl, err)
		}
		if injectErr != nil {
			return nil, injectErr
		}
	}
	res.MergedArchive = MergeArchives(algCfg.Epsilons, res.Islands)
	res.MergedFront = res.MergedArchive.Objectives()
	return res, nil
}
