package master

import "testing"

// FuzzCore drives the state machine with arbitrary event sequences and
// checks the lease-protocol invariants the drivers rely on:
//
//   - no double-accept: a result is accepted iff its lease id is live
//     and was granted to the sender (predictable via Lease before the
//     event); everything else is a duplicate;
//   - no lost work: every suggested offspring chain is exactly one of
//     completed, outstanding, or pending (conservation);
//   - the drain terminates: completion emits exactly one ActComplete
//     and at most one ActStop per worker, the machine goes inert
//     afterwards, and a cooperative worker can always finish the run.
func FuzzCore(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 2, 0, 2, 1})
	f.Add([]byte{1, 0, 1, 3, 2, 4, 5, 1, 2, 0, 9, 2, 3})
	f.Add([]byte{3, 0, 1, 1, 2, 4, 1, 3, 3, 0, 2, 7})
	f.Add([]byte{4, 0, 1, 0, 2, 2, 0, 5, 1, 6, 2, 0, 3, 5, 3, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		alg := &stubAlg{}
		pol := EagerOffspring
		switch {
		case data[0]&4 != 0:
			pol = ScheduledOffspring
		case data[0]&1 == 1:
			pol = LazyOffspring
		}
		timeout := 0.0
		if data[0]&2 != 0 {
			timeout = 4
		}
		const budget = 8
		c := NewCore(Config{Budget: budget, LeaseTimeout: timeout, Policy: pol, Alg: alg})

		now := 0.0
		var grants []Action // every grant ever issued, for result synthesis
		stops := make(map[int]int)
		completes := 0
		check := func(ev Event) {
			wasDone := c.Done()
			accept := false
			if ev.Kind == EvResult && !wasDone {
				if w, _, ok := c.Lease(ev.Item); ok && w == ev.Worker {
					accept = true
				}
			}
			before := c.Stats()
			acts := c.Handle(ev)
			after := c.Stats()
			if wasDone {
				if acts != nil {
					t.Fatalf("Handle after done returned %v", acts)
				}
				return
			}
			if ev.Kind == EvResult {
				if accept && (after.Completed != before.Completed+1 || after.Duplicates != before.Duplicates) {
					t.Fatalf("live lease result not accepted exactly once: %+v -> %+v", before, after)
				}
				if !accept && (after.Completed != before.Completed || after.Duplicates != before.Duplicates+1) {
					t.Fatalf("stale result not discarded as duplicate: %+v -> %+v", before, after)
				}
			}
			for _, a := range acts {
				switch a.Kind {
				case ActGrant:
					grants = append(grants, a)
				case ActStop:
					stops[a.Worker]++
				case ActComplete:
					completes++
				}
			}
			if !c.Done() {
				// Conservation: every suggested chain is accounted for.
				chains := int(after.Completed) + c.Outstanding() + c.PendingLen()
				if alg.suggested != chains {
					t.Fatalf("lost work: %d suggested, %d accounted (completed=%d outstanding=%d pending=%d)",
						alg.suggested, chains, after.Completed, c.Outstanding(), c.PendingLen())
				}
			}
		}

		for i := 1; i+1 < len(data) && !c.Done(); i += 2 {
			op, arg := data[i], data[i+1]
			worker := int(arg%5) + 1
			switch op % 7 {
			case 0:
				check(Event{Kind: EvJoin, Worker: worker, At: now})
			case 1:
				check(Event{Kind: EvHello, Worker: worker, At: now})
			case 2:
				// Replay one of the issued grants — possibly long-stale
				// (expired, reissued, its worker replaced), exercising
				// the duplicate path as well as the accept path.
				if len(grants) == 0 {
					continue
				}
				g := grants[int(arg)%len(grants)]
				check(Event{Kind: EvResult, Worker: g.Worker, Item: g.Item.ID, At: now})
			case 3:
				now += float64(arg) / 16
				check(Event{Kind: EvTick, At: now})
			case 4:
				check(Event{Kind: EvGone, Worker: worker, At: now})
			case 5:
				// Scheduler re-arms a (possibly parked) worker; inert
				// for unknown, gone or still-leased ones.
				check(Event{Kind: EvReady, Worker: worker, At: now})
			case 6:
				// Scheduler withdraws a worker gracefully.
				check(Event{Kind: EvLeave, Worker: worker, At: now})
			}
		}

		// Drain termination: a cooperative worker joins and faithfully
		// returns every outstanding grant; the run must complete within
		// a small bounded number of steps.
		for safety := 0; !c.Done(); safety++ {
			if safety > 64*budget {
				t.Fatalf("run did not terminate: %+v outstanding=%d pending=%d",
					c.Stats(), c.Outstanding(), c.PendingLen())
			}
			served := false
			for i := len(grants) - 1; i >= 0; i-- {
				g := grants[i]
				if w, _, ok := c.Lease(g.Item.ID); ok && w == g.Worker {
					check(Event{Kind: EvResult, Worker: g.Worker, Item: g.Item.ID, At: now})
					served = true
					break
				}
			}
			if !served {
				check(Event{Kind: EvJoin, Worker: 100 + safety, At: now})
			}
		}
		if completes != 1 {
			t.Fatalf("completion emitted %d times", completes)
		}
		for w, n := range stops {
			if n != 1 {
				t.Fatalf("worker %d stopped %d times", w, n)
			}
		}
		// The machine is inert after completion.
		if acts := c.Handle(Event{Kind: EvJoin, Worker: 999, At: now}); acts != nil {
			t.Fatalf("post-completion Handle returned %v", acts)
		}
	})
}
