package master

// lease is one outstanding evaluation: the dispatched work item, the
// worker it was granted to, and the deadline after which the master
// presumes the work lost and resubmits a clone. done marks leases
// settled (result accepted, or expired and reissued) so stale heap
// entries are skipped lazily. seq breaks deadline ties in grant order,
// keeping expiry processing deterministic.
type lease struct {
	item     *Item
	worker   int
	deadline float64
	seq      uint64
	done     bool
}

// leaseHeap is a binary min-heap of live leases ordered by (deadline,
// seq). It replaces the FIFO scan the drivers used when the timeout
// was a single constant: the heap stays O(log n) per grant/expiry even
// if per-worker or adaptive timeouts make deadlines non-monotonic, and
// peek is O(1) on the master's hot receive path.
type leaseHeap struct {
	q []*lease
}

func leaseLess(a, b *lease) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

func (h *leaseHeap) push(l *lease) {
	h.q = append(h.q, l)
	i := len(h.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !leaseLess(h.q[i], h.q[parent]) {
			break
		}
		h.q[i], h.q[parent] = h.q[parent], h.q[i]
		i = parent
	}
}

func (h *leaseHeap) pop() *lease {
	n := len(h.q)
	top := h.q[0]
	h.q[0] = h.q[n-1]
	h.q[n-1] = nil
	h.q = h.q[:n-1]
	h.siftDown(0)
	return top
}

func (h *leaseHeap) siftDown(i int) {
	n := len(h.q)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && leaseLess(h.q[l], h.q[min]) {
			min = l
		}
		if r < n && leaseLess(h.q[r], h.q[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.q[i], h.q[min] = h.q[min], h.q[i]
		i = min
	}
}

// peek returns the live lease with the earliest deadline, discarding
// settled leases lazily (release marks them done instead of searching
// the heap).
func (h *leaseHeap) peek() (*lease, bool) {
	for len(h.q) > 0 {
		if !h.q[0].done {
			return h.q[0], true
		}
		h.pop()
	}
	return nil, false
}

func (h *leaseHeap) len() int { return len(h.q) }
