package master

// WorkerState is one worker's lifecycle state as the master sees it.
type WorkerState int8

const (
	// StateIdle: registered, no outstanding lease, queued for work.
	StateIdle WorkerState = iota
	// StateBusy: holds a live lease.
	StateBusy
	// StateSuspect: a lease expired on it; presumed dead until it shows
	// a sign of life (a result, or a hello after recovery). Suspects
	// still receive stop messages and bounded last-resort probes.
	StateSuspect
	// StateGone: the transport declared it dead for good (connection
	// error). Terminal until the same identity rejoins.
	StateGone
)

func (s WorkerState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateSuspect:
		return "suspect"
	case StateGone:
		return "gone"
	}
	return "invalid"
}

// workerInfo is the registry's record for one worker.
type workerInfo struct {
	id     int
	state  WorkerState
	probes int
	lease  *lease // live lease, nil otherwise (cleared on release)
}

// Registry tracks worker identities, lifecycle states and the idle
// queue — the dispatch primitives shared by every master: the
// asynchronous Core embeds one, and the synchronous barrier master and
// the per-island masters use it directly. It is deterministic: Known
// iterates in join order and the idle queue is FIFO.
type Registry struct {
	byID  map[int]*workerInfo
	order []int
	idleQ []int
	live  int
	peak  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[int]*workerInfo)}
}

// lookup returns the record for id, or nil.
func (r *Registry) lookup(id int) *workerInfo { return r.byID[id] }

// join registers a new worker — or revives a gone one — born busy (the
// caller decides whether it seeds work or marks it idle; StateIdle is
// the zero state, so it cannot be the initial one without queueing).
func (r *Registry) join(id int) *workerInfo {
	w := r.byID[id]
	if w == nil {
		w = &workerInfo{id: id}
		r.byID[id] = w
		r.order = append(r.order, id)
	}
	w.state = StateBusy
	w.probes = 0
	w.lease = nil
	r.live++
	if r.live > r.peak {
		r.peak = r.live
	}
	return w
}

// Join registers a worker (exported form for the barrier and island
// masters). Re-joining an already-live worker is a no-op.
func (r *Registry) Join(id int) {
	if w := r.byID[id]; w != nil && w.state != StateGone {
		return
	}
	r.join(id)
}

// markGone records a terminal death. Reports whether the worker was
// alive (so the caller counts the death exactly once).
func (r *Registry) markGone(id int) bool {
	w := r.byID[id]
	if w == nil || w.state == StateGone {
		return false
	}
	w.state = StateGone
	r.live--
	return true
}

// MarkIdle resets the worker's probe budget and queues it for dispatch
// unless it is gone or already idle. Resetting probes even when the
// state does not change is deliberate: any sign of life refills the
// last-resort probe budget.
func (r *Registry) MarkIdle(id int) {
	w := r.byID[id]
	if w == nil || w.state == StateGone {
		return
	}
	w.probes = 0
	if w.state == StateIdle {
		return
	}
	w.state = StateIdle
	r.idleQ = append(r.idleQ, id)
}

// MarkSuspect presumes a worker dead (missed barrier, expired lease)
// until it shows a sign of life.
func (r *Registry) MarkSuspect(id int) {
	if w := r.byID[id]; w != nil && w.state != StateGone {
		w.state = StateSuspect
	}
}

// State returns the worker's lifecycle state (StateGone for unknown).
func (r *Registry) State(id int) WorkerState {
	if w := r.byID[id]; w != nil {
		return w.state
	}
	return StateGone
}

// popIdle pops the next genuinely idle worker, discarding stale queue
// entries (workers whose state moved on since they were queued).
func (r *Registry) popIdle() (*workerInfo, bool) {
	for len(r.idleQ) > 0 {
		id := r.idleQ[0]
		r.idleQ = r.idleQ[1:]
		w := r.byID[id]
		if w != nil && w.state == StateIdle {
			return w, true
		}
	}
	return nil, false
}

// Known returns every registered worker id in join order. The slice is
// the registry's own; callers must not mutate it.
func (r *Registry) Known() []int { return r.order }

// Live returns the number of workers not gone.
func (r *Registry) Live() int { return r.live }

// Peak returns the maximum concurrent live count seen.
func (r *Registry) Peak() int { return r.peak }
