package master

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"borgmoea/internal/core"
	"borgmoea/internal/obs"
)

// LogMeta is the configuration slice a recorded run carries with it:
// everything Replay needs to reconstruct the Core besides the problem,
// the seed and the algorithm (which the replaying caller supplies —
// the log deliberately holds protocol structure, not solutions).
type LogMeta struct {
	Policy       Policy
	Budget       uint64
	LeaseTimeout float64
	// DeferApply records whether the run staged accepts and applied
	// them deferred (Config.DeferApply). It changes where the
	// algorithm's RNG draws interleave, so Replay must run the same
	// mode. Encoded as the high bit of the header's policy byte, which
	// keeps the log format at version 1 (old logs read back false).
	DeferApply bool
}

// Log records the exact event stream a Core consumed. Because the
// Core is pure — no randomness, no clock reads — re-feeding the stream
// to a fresh Core with the same algorithm deterministically reproduces
// every decision of the original run, including one that happened over
// real TCP: the transport's nondeterminism (goroutine scheduling,
// packet timing, worker crashes) is fully captured in the event order
// and timestamps.
//
// Elapsed is the driver-recorded T_P (the completion timestamp on the
// driver's own clock); it is carried so a replayed Result reports the
// original run's elapsed time, which no event timestamp alone pins
// down (the DES drivers complete after a final T_A hold).
type Log struct {
	Meta    LogMeta
	Elapsed float64
	Events  []Event
	// OnRecord, when set, observes every event as it is recorded — the
	// hook a streaming LogWriter rides so checkpoints hit disk at event
	// granularity instead of waiting for a WriteTo at the end.
	OnRecord func(Event)
}

// NewLog returns an empty log ready to attach to a Config.
func NewLog() *Log { return &Log{} }

// record appends one event (nil-safe).
func (l *Log) record(ev Event) {
	if l != nil {
		l.Events = append(l.Events, ev)
		if l.OnRecord != nil {
			l.OnRecord(ev)
		}
	}
}

// setMeta stamps the recording Core's configuration (nil-safe).
func (l *Log) setMeta(m LogMeta) {
	if l != nil {
		l.Meta = m
	}
}

// SetElapsed records the run's T_P (nil-safe); drivers call it at
// completion.
func (l *Log) SetElapsed(t float64) {
	if l != nil {
		l.Elapsed = t
	}
}

// CanonicalBytes serializes the logical protocol sequence — event
// kinds, workers and lease ids, excluding timestamps and ticks — for
// cross-transport comparison: the DES, realtime and loopback-TCP
// drivers run different clocks (and only the TCP driver polls with
// ticks), but for the same seed they must drive the shared Core
// through the identical logical sequence.
func (l *Log) CanonicalBytes() []byte {
	if l == nil {
		return nil
	}
	out := make([]byte, 0, 10*len(l.Events))
	for _, ev := range l.Events {
		// Ticks are transport pacing, and quality samples follow the
		// (possibly wall-clock) sampling cadence — neither is part of
		// the logical protocol sequence the transports must agree on.
		if ev.Kind == EvTick || ev.Kind == EvQuality {
			continue
		}
		out = append(out, byte(ev.Kind))
		out = binary.AppendUvarint(out, uint64(ev.Worker))
		out = binary.AppendUvarint(out, ev.Item)
	}
	return out
}

// Binary log format: magic, version, meta, then fixed-width events.
// Everything big-endian; floats as IEEE 754 bits.
const (
	logMagic   = "BMEL"
	logVersion = 1
	// logEventSize is the fixed record width: kind, worker, item, at.
	logEventSize = 1 + 4 + 8 + 8
	// logDeferFlag marks DeferApply in the header's policy byte; the
	// low bits stay the Policy value.
	logDeferFlag = 0x80
)

// streamCount is the header event-count sentinel of a streamed log: a
// LogWriter cannot know the count up front, so readers of such a log
// consume events until EOF instead.
const streamCount = ^uint64(0)

func appendLogHeader(dst []byte, meta LogMeta, elapsed float64, count uint64) []byte {
	dst = append(dst, logMagic...)
	pol := byte(meta.Policy)
	if meta.DeferApply {
		pol |= logDeferFlag
	}
	dst = append(dst, logVersion, pol)
	dst = binary.BigEndian.AppendUint64(dst, meta.Budget)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(meta.LeaseTimeout))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(elapsed))
	return binary.BigEndian.AppendUint64(dst, count)
}

func appendLogEvent(dst []byte, ev Event) []byte {
	dst = append(dst, byte(ev.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(ev.Worker))
	dst = binary.BigEndian.AppendUint64(dst, ev.Item)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.At))
}

// WriteTo serializes the log. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	if err := put(appendLogHeader(nil, l.Meta, l.Elapsed, uint64(len(l.Events)))); err != nil {
		return n, err
	}
	var buf []byte
	for _, ev := range l.Events {
		buf = appendLogEvent(buf[:0], ev)
		if err := put(buf); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LogWriter streams a BMEL log as events are recorded, instead of
// serializing a finished Log in one WriteTo pass. It writes the header
// immediately with the streaming count sentinel, then one fixed-width
// record per Record call — append-only, so a process crash costs at
// most the trailing partial record, which ReadLog tolerates. Wire it
// to a recording Log through the OnRecord hook; the job server's
// per-job checkpoints are written this way.
type LogWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewLogWriter writes the streaming header for meta and returns the
// writer. A streamed log's Elapsed is unknown up front and reads back
// as 0.
func NewLogWriter(w io.Writer, meta LogMeta) (*LogWriter, error) {
	if _, err := w.Write(appendLogHeader(nil, meta, 0, streamCount)); err != nil {
		return nil, fmt.Errorf("master: stream log header: %w", err)
	}
	return &LogWriter{w: w}, nil
}

// Record appends one event. After a write error every later call
// returns the same error; the caller decides whether the run goes on
// without durability.
func (lw *LogWriter) Record(ev Event) error {
	if lw.err != nil {
		return lw.err
	}
	lw.buf = appendLogEvent(lw.buf[:0], ev)
	if _, err := lw.w.Write(lw.buf); err != nil {
		lw.err = fmt.Errorf("master: stream log event: %w", err)
	}
	return lw.err
}

// Err returns the first write error, if any.
func (lw *LogWriter) Err() error { return lw.err }

// ResumeLogWriter returns a LogWriter that appends to an existing
// streamed log without writing a fresh header. The caller must have
// positioned w at the end of the last complete record (truncating any
// crash-torn partial record first), so the resumed stream stays
// readable by ReadLog.
func ResumeLogWriter(w io.Writer) *LogWriter { return &LogWriter{w: w} }

// HeaderSize is the byte length of a BMEL log header, and EventSize
// that of one fixed-width event record — what a resuming reader needs
// to compute the last consistent length of a crash-interrupted
// streamed log: HeaderSize + n*EventSize.
const (
	HeaderSize = len(logMagic) + 2 + 4*8
	EventSize  = logEventSize
)

// ReadLog deserializes a log written by WriteTo. Malformed input —
// wrong magic or version, truncated streams, an absurd event count —
// returns a clean error, never a panic.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(logMagic)+2+4*8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("master: short log header: %w", err)
	}
	if string(hdr[:4]) != logMagic {
		return nil, fmt.Errorf("master: not an event log (magic %q)", hdr[:4])
	}
	if hdr[4] != logVersion {
		return nil, fmt.Errorf("master: log version %d, want %d", hdr[4], logVersion)
	}
	l := &Log{Meta: LogMeta{
		Policy:       Policy(hdr[5] &^ logDeferFlag),
		DeferApply:   hdr[5]&logDeferFlag != 0,
		Budget:       binary.BigEndian.Uint64(hdr[6:]),
		LeaseTimeout: math.Float64frombits(binary.BigEndian.Uint64(hdr[14:])),
	}}
	l.Elapsed = math.Float64frombits(binary.BigEndian.Uint64(hdr[22:]))
	count := binary.BigEndian.Uint64(hdr[30:])
	streaming := count == streamCount
	const maxEvents = 1 << 28 // ~5.6 GiB of events; far beyond any real run
	if !streaming && count > maxEvents {
		return nil, fmt.Errorf("master: log claims %d events (limit %d)", count, maxEvents)
	}
	if !streaming {
		l.Events = make([]Event, 0, count)
	}
	rec := make([]byte, logEventSize)
	for i := uint64(0); streaming || i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			if streaming && (err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF)) {
				// A streamed log ends wherever the writer stopped; a
				// crash mid-record costs exactly that partial record.
				break
			}
			return nil, fmt.Errorf("master: truncated log at event %d/%d: %w", i, count, err)
		}
		l.Events = append(l.Events, Event{
			Kind:   EventKind(rec[0]),
			Worker: int(binary.BigEndian.Uint32(rec[1:])),
			Item:   binary.BigEndian.Uint64(rec[5:]),
			At:     math.Float64frombits(binary.BigEndian.Uint64(rec[13:])),
		})
	}
	return l, nil
}

// traceStubAlg is the throwaway Algorithm ReplayTrace replays with:
// the Core's protocol decisions — and therefore its tracer calls — do
// not depend on solution contents, so empty suggestions suffice.
type traceStubAlg struct{}

func (traceStubAlg) Suggest() *core.Solution { return &core.Solution{} }
func (traceStubAlg) Accept(*core.Solution)   {}
func (traceStubAlg) AcceptSuggest(*core.Solution) *core.Solution {
	return &core.Solution{}
}
func (traceStubAlg) StageAccept(*core.Solution) {}
func (traceStubAlg) ApplyStaged()               {}

// ReplayTrace re-feeds the recorded event stream through a fresh Core
// with only the tracer attached, re-deriving the exact tracer-call
// sequence of the live run (span contexts are minted deterministically
// from event data). It implements obs.LogSource, so
// obs.TracesFromLog(log, sidecar) reconstructs a run's trace forest
// entirely offline.
func (l *Log) ReplayTrace(t obs.ProtocolTracer) error {
	_, err := Replay(l, ReplayConfig{Alg: traceStubAlg{}, Tracer: t})
	return err
}

// ReplayConfig parameterizes Replay.
type ReplayConfig struct {
	// Alg is the optimizer adapter, seeded exactly as the recorded run
	// was (required).
	Alg Algorithm
	// Evaluate re-computes a solution's objectives when its result
	// event is about to be accepted — the replay stand-in for the
	// worker's function evaluation. Deterministic problems make the
	// replayed trajectory bit-identical to the original.
	Evaluate func(item *Item)
	// MaxProbes must match the recorded run's (0 = DefaultMaxProbes).
	MaxProbes int
	// Meters/OnAccept/OnAcceptFrom optionally re-instrument the
	// replay; the hooks stay attached afterwards, so a driver that
	// resumes the returned Core live (the job server's checkpoint
	// restore) keeps its accept-time instrumentation.
	Meters       Meters
	OnAccept     func(completed uint64)
	OnAcceptFrom func(worker int, completed uint64, at float64)
	// OnMigrant re-injects federated migrants at their recorded epochs:
	// the replaying caller resolves (source, epoch) against the migrant
	// sidecar log the original run kept and folds the same solution
	// back into the algorithm.
	OnMigrant func(source int, epoch uint64)
	// OnQuality re-triggers the recorded quality samples: a sampler
	// attached here observes the replayed algorithm at the identical
	// points in the accept stream, regenerating the original run's
	// quality timeline byte-for-byte (parallel.ReplayAsync rides
	// this).
	OnQuality func(seq uint64, at float64)
	// Tracer re-derives the recorded run's trace hooks: because the
	// Core mints span contexts deterministically from event data, the
	// replayed hooks are identical to the live ones (obs.TracesFromLog
	// rides this).
	Tracer obs.ProtocolTracer
}

// Replay re-feeds a recorded event stream to a fresh Core and returns
// it, deterministically reproducing the original run's protocol
// decisions and — with the same algorithm seed and a deterministic
// problem — its exact search trajectory.
func Replay(log *Log, rc ReplayConfig) (*Core, error) {
	if log == nil || len(log.Events) == 0 {
		return nil, fmt.Errorf("master: cannot replay an empty event log")
	}
	if rc.Alg == nil {
		return nil, fmt.Errorf("master: Replay needs an Algorithm")
	}
	c := NewCore(Config{
		Budget:       log.Meta.Budget,
		LeaseTimeout: log.Meta.LeaseTimeout,
		Policy:       log.Meta.Policy,
		DeferApply:   log.Meta.DeferApply,
		MaxProbes:    rc.MaxProbes,
		Alg:          rc.Alg,
		Meters:       rc.Meters,
		OnAccept:     rc.OnAccept,
		OnAcceptFrom: rc.OnAcceptFrom,
		OnMigrant:    rc.OnMigrant,
		OnQuality:    rc.OnQuality,
		Tracer:       rc.Tracer,
	})
	for _, ev := range log.Events {
		if ev.Kind == EvResult && rc.Evaluate != nil {
			// The original worker evaluated before sending; reproduce
			// that for results the core will accept. Late duplicates
			// carry no live lease and their solutions were discarded.
			if worker, item, ok := c.Lease(ev.Item); ok && worker == ev.Worker {
				rc.Evaluate(item)
			}
		}
		c.Handle(ev)
	}
	return c, nil
}
