package master

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// LogMeta is the configuration slice a recorded run carries with it:
// everything Replay needs to reconstruct the Core besides the problem,
// the seed and the algorithm (which the replaying caller supplies —
// the log deliberately holds protocol structure, not solutions).
type LogMeta struct {
	Policy       Policy
	Budget       uint64
	LeaseTimeout float64
}

// Log records the exact event stream a Core consumed. Because the
// Core is pure — no randomness, no clock reads — re-feeding the stream
// to a fresh Core with the same algorithm deterministically reproduces
// every decision of the original run, including one that happened over
// real TCP: the transport's nondeterminism (goroutine scheduling,
// packet timing, worker crashes) is fully captured in the event order
// and timestamps.
//
// Elapsed is the driver-recorded T_P (the completion timestamp on the
// driver's own clock); it is carried so a replayed Result reports the
// original run's elapsed time, which no event timestamp alone pins
// down (the DES drivers complete after a final T_A hold).
type Log struct {
	Meta    LogMeta
	Elapsed float64
	Events  []Event
}

// NewLog returns an empty log ready to attach to a Config.
func NewLog() *Log { return &Log{} }

// record appends one event (nil-safe).
func (l *Log) record(ev Event) {
	if l != nil {
		l.Events = append(l.Events, ev)
	}
}

// setMeta stamps the recording Core's configuration (nil-safe).
func (l *Log) setMeta(m LogMeta) {
	if l != nil {
		l.Meta = m
	}
}

// SetElapsed records the run's T_P (nil-safe); drivers call it at
// completion.
func (l *Log) SetElapsed(t float64) {
	if l != nil {
		l.Elapsed = t
	}
}

// CanonicalBytes serializes the logical protocol sequence — event
// kinds, workers and lease ids, excluding timestamps and ticks — for
// cross-transport comparison: the DES, realtime and loopback-TCP
// drivers run different clocks (and only the TCP driver polls with
// ticks), but for the same seed they must drive the shared Core
// through the identical logical sequence.
func (l *Log) CanonicalBytes() []byte {
	if l == nil {
		return nil
	}
	out := make([]byte, 0, 10*len(l.Events))
	for _, ev := range l.Events {
		if ev.Kind == EvTick {
			continue
		}
		out = append(out, byte(ev.Kind))
		out = binary.AppendUvarint(out, uint64(ev.Worker))
		out = binary.AppendUvarint(out, ev.Item)
	}
	return out
}

// Binary log format: magic, version, meta, then fixed-width events.
// Everything big-endian; floats as IEEE 754 bits.
const (
	logMagic   = "BMEL"
	logVersion = 1
)

// WriteTo serializes the log. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		return err
	}
	var hdr []byte
	hdr = append(hdr, logMagic...)
	hdr = append(hdr, logVersion, byte(l.Meta.Policy))
	hdr = binary.BigEndian.AppendUint64(hdr, l.Meta.Budget)
	hdr = binary.BigEndian.AppendUint64(hdr, math.Float64bits(l.Meta.LeaseTimeout))
	hdr = binary.BigEndian.AppendUint64(hdr, math.Float64bits(l.Elapsed))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(l.Events)))
	if err := put(hdr); err != nil {
		return n, err
	}
	var buf []byte
	for _, ev := range l.Events {
		buf = buf[:0]
		buf = append(buf, byte(ev.Kind))
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.Worker))
		buf = binary.BigEndian.AppendUint64(buf, ev.Item)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ev.At))
		if err := put(buf); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadLog deserializes a log written by WriteTo. Malformed input —
// wrong magic or version, truncated streams, an absurd event count —
// returns a clean error, never a panic.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(logMagic)+2+4*8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("master: short log header: %w", err)
	}
	if string(hdr[:4]) != logMagic {
		return nil, fmt.Errorf("master: not an event log (magic %q)", hdr[:4])
	}
	if hdr[4] != logVersion {
		return nil, fmt.Errorf("master: log version %d, want %d", hdr[4], logVersion)
	}
	l := &Log{Meta: LogMeta{
		Policy:       Policy(hdr[5]),
		Budget:       binary.BigEndian.Uint64(hdr[6:]),
		LeaseTimeout: math.Float64frombits(binary.BigEndian.Uint64(hdr[14:])),
	}}
	l.Elapsed = math.Float64frombits(binary.BigEndian.Uint64(hdr[22:]))
	count := binary.BigEndian.Uint64(hdr[30:])
	const maxEvents = 1 << 28 // ~5.6 GiB of events; far beyond any real run
	if count > maxEvents {
		return nil, fmt.Errorf("master: log claims %d events (limit %d)", count, maxEvents)
	}
	l.Events = make([]Event, 0, count)
	rec := make([]byte, 1+4+8+8)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("master: truncated log at event %d/%d: %w", i, count, err)
		}
		l.Events = append(l.Events, Event{
			Kind:   EventKind(rec[0]),
			Worker: int(binary.BigEndian.Uint32(rec[1:])),
			Item:   binary.BigEndian.Uint64(rec[5:]),
			At:     math.Float64frombits(binary.BigEndian.Uint64(rec[13:])),
		})
	}
	return l, nil
}

// ReplayConfig parameterizes Replay.
type ReplayConfig struct {
	// Alg is the optimizer adapter, seeded exactly as the recorded run
	// was (required).
	Alg Algorithm
	// Evaluate re-computes a solution's objectives when its result
	// event is about to be accepted — the replay stand-in for the
	// worker's function evaluation. Deterministic problems make the
	// replayed trajectory bit-identical to the original.
	Evaluate func(item *Item)
	// MaxProbes must match the recorded run's (0 = DefaultMaxProbes).
	MaxProbes int
	// Meters/OnAccept optionally re-instrument the replay.
	Meters   Meters
	OnAccept func(completed uint64)
}

// Replay re-feeds a recorded event stream to a fresh Core and returns
// it, deterministically reproducing the original run's protocol
// decisions and — with the same algorithm seed and a deterministic
// problem — its exact search trajectory.
func Replay(log *Log, rc ReplayConfig) (*Core, error) {
	if log == nil || len(log.Events) == 0 {
		return nil, fmt.Errorf("master: cannot replay an empty event log")
	}
	if rc.Alg == nil {
		return nil, fmt.Errorf("master: Replay needs an Algorithm")
	}
	c := NewCore(Config{
		Budget:       log.Meta.Budget,
		LeaseTimeout: log.Meta.LeaseTimeout,
		Policy:       log.Meta.Policy,
		MaxProbes:    rc.MaxProbes,
		Alg:          rc.Alg,
		Meters:       rc.Meters,
		OnAccept:     rc.OnAccept,
	})
	for _, ev := range log.Events {
		if ev.Kind == EvResult && rc.Evaluate != nil {
			// The original worker evaluated before sending; reproduce
			// that for results the core will accept. Late duplicates
			// carry no live lease and their solutions were discarded.
			if worker, item, ok := c.Lease(ev.Item); ok && worker == ev.Worker {
				rc.Evaluate(item)
			}
		}
		c.Handle(ev)
	}
	return c, nil
}
