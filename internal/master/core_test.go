package master

import (
	"testing"

	"borgmoea/internal/core"
)

// stubAlg is a deterministic stand-in optimizer: Suggest hands out
// solutions numbered 1, 2, 3, … in Vars[0]; Accept records what came
// back, in order.
type stubAlg struct {
	suggested int
	accepted  []float64
}

func (a *stubAlg) Suggest() *core.Solution {
	a.suggested++
	return &core.Solution{Vars: []float64{float64(a.suggested)}}
}

func (a *stubAlg) Accept(s *core.Solution) { a.accepted = append(a.accepted, s.Vars[0]) }

func (a *stubAlg) AcceptSuggest(s *core.Solution) *core.Solution {
	a.Accept(s)
	return a.Suggest()
}

func wantGrant(t *testing.T, acts []Action, i, worker int, item uint64) {
	t.Helper()
	if i >= len(acts) {
		t.Fatalf("want action %d to be a grant, have only %d actions", i, len(acts))
	}
	a := acts[i]
	if a.Kind != ActGrant || a.Worker != worker || a.Item.ID != item {
		t.Fatalf("action %d = {%v worker=%d item=%d}, want grant worker=%d item=%d",
			i, a.Kind, a.Worker, a.Item.ID, worker, item)
	}
}

func TestEagerSeedAndSteadyState(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 4, Policy: EagerOffspring, Alg: alg})

	// Each join seeds its worker with one fresh offspring.
	acts := c.Handle(Event{Kind: EvJoin, Worker: 1})
	wantGrant(t, acts, 0, 1, 1)
	acts = c.Handle(Event{Kind: EvJoin, Worker: 2})
	wantGrant(t, acts, 0, 2, 2)

	// Each result grants the next offspring straight back.
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	wantGrant(t, acts, 0, 1, 3)
	acts = c.Handle(Event{Kind: EvResult, Worker: 2, Item: 2})
	wantGrant(t, acts, 0, 2, 4)
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 3})
	wantGrant(t, acts, 0, 1, 5)
	if c.Completed() != 3 || c.Done() {
		t.Fatalf("completed=%d done=%v, want 3 and running", c.Completed(), c.Done())
	}

	// The budget-reaching result completes the run: T_P stamp first,
	// then one stop per non-gone worker in join order, and no grant.
	acts = c.Handle(Event{Kind: EvResult, Worker: 2, Item: 4})
	if len(acts) != 3 || acts[0].Kind != ActComplete ||
		acts[1] != (Action{Kind: ActStop, Worker: 1}) ||
		acts[2] != (Action{Kind: ActStop, Worker: 2}) {
		t.Fatalf("completion actions = %v, want [complete stop(1) stop(2)]", acts)
	}
	if !c.Done() || c.Completed() != 4 {
		t.Fatalf("done=%v completed=%d, want done with 4", c.Done(), c.Completed())
	}
	// After completion the machine is inert.
	if acts := c.Handle(Event{Kind: EvResult, Worker: 1, Item: 5}); acts != nil {
		t.Fatalf("Handle after done = %v, want nil", acts)
	}
}

func TestLazyNeverOverIssues(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 2, Policy: LazyOffspring, Alg: alg})

	acts := c.Handle(Event{Kind: EvJoin, Worker: 1})
	wantGrant(t, acts, 0, 1, 1)
	acts = c.Handle(Event{Kind: EvJoin, Worker: 2})
	wantGrant(t, acts, 0, 2, 2)

	// First accept: one chain done, one live — issuing more would
	// overshoot the budget, so worker 1 stays idle.
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	if len(acts) != 0 {
		t.Fatalf("actions after non-final accept at full budget = %v, want none", acts)
	}
	acts = c.Handle(Event{Kind: EvResult, Worker: 2, Item: 2})
	if len(acts) != 3 || acts[0].Kind != ActComplete {
		t.Fatalf("completion actions = %v", acts)
	}
	if alg.suggested != 2 {
		t.Fatalf("suggested %d offspring for a budget of 2", alg.suggested)
	}
}

func TestHelloLosesLeaseAndResubmits(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 3, Policy: EagerOffspring, Alg: alg})
	c.Handle(Event{Kind: EvJoin, Worker: 1}) // grants item 1

	// The worker crashed and recovered: its lease died with it; the
	// clone is reissued immediately (the worker is idle again).
	acts := c.Handle(Event{Kind: EvHello, Worker: 1})
	wantGrant(t, acts, 0, 1, 2)
	st := c.Stats()
	if st.Lost != 1 || st.Resubmissions != 1 || st.Hellos != 1 {
		t.Fatalf("stats after hello = %+v, want 1 lost/resub/hello", st)
	}

	// The late original is a duplicate: the chain already has a new id.
	c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	if st := c.Stats(); st.Duplicates != 1 || st.Completed != 0 {
		t.Fatalf("stats after late original = %+v, want 1 duplicate, 0 completed", st)
	}
	// The clone's result is the real one, and it carries the same
	// solution content (Vars) as the lost original.
	if _, item, ok := c.Lease(2); !ok || item.S.Vars[0] != 1 {
		t.Fatalf("lease 2 = (%v, %v), want the clone of offspring 1", item, ok)
	}
	c.Handle(Event{Kind: EvResult, Worker: 1, Item: 2})
	if st := c.Stats(); st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
	if alg.accepted[0] != 1 {
		t.Fatalf("accepted %v, want the original offspring's content", alg.accepted)
	}
}

func TestExpiryMarksSuspectAndProbes(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 4, LeaseTimeout: 10, Policy: EagerOffspring, Alg: alg, MaxProbes: 1})
	c.Handle(Event{Kind: EvJoin, Worker: 1, At: 0}) // item 1, deadline 10
	c.Handle(Event{Kind: EvJoin, Worker: 2, At: 1}) // item 2, deadline 11

	if dl, ok := c.NextDeadline(); !ok || dl != 10 {
		t.Fatalf("NextDeadline = (%v, %v), want (10, true)", dl, ok)
	}

	// Both leases expire; with every worker suspect and no live work,
	// the clones go out as bounded last-resort probes, in join order.
	acts := c.Handle(Event{Kind: EvTick, At: 12})
	st := c.Stats()
	if st.Expiries != 2 || st.Lost != 2 {
		t.Fatalf("stats after tick = %+v, want 2 expiries and losses", st)
	}
	wantGrant(t, acts, 0, 1, 3)
	wantGrant(t, acts, 1, 2, 4)

	// Probe budget is spent: another expiry round has nowhere to go.
	acts = c.Handle(Event{Kind: EvTick, At: 30})
	if len(acts) != 0 || c.PendingLen() != 2 {
		t.Fatalf("acts=%v pending=%d, want no actions and 2 stranded items", acts, c.PendingLen())
	}

	// A sign of life refills the probe budget: the late original result
	// is discarded as a duplicate, but its sender is alive and idle
	// again, so a stranded item is dispatched to it normally.
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	if st := c.Stats(); st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate", st)
	}
	wantGrant(t, acts, 0, 1, 5)
}

func TestGoneRetiresAndDrainStops(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 2, Policy: EagerOffspring, Alg: alg})
	c.Handle(Event{Kind: EvJoin, Worker: 1}) // item 1
	c.Handle(Event{Kind: EvJoin, Worker: 2}) // item 2

	// Worker 1's transport died: its chain is cloned, but worker 2 is
	// busy, so the clone waits in pending.
	acts := c.Handle(Event{Kind: EvGone, Worker: 1})
	if len(acts) != 0 || c.PendingLen() != 1 {
		t.Fatalf("acts=%v pending=%d after gone", acts, c.PendingLen())
	}
	if st := c.Stats(); st.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", st.Deaths)
	}

	// Worker 2's result dispatches the clone ahead of fresh offspring.
	acts = c.Handle(Event{Kind: EvResult, Worker: 2, Item: 2})
	wantGrant(t, acts, 0, 2, 3)
	acts = c.Handle(Event{Kind: EvResult, Worker: 2, Item: 3})
	// Completion stops only the surviving worker.
	if len(acts) != 2 || acts[0].Kind != ActComplete || acts[1] != (Action{Kind: ActStop, Worker: 2}) {
		t.Fatalf("completion actions = %v, want [complete stop(2)]", acts)
	}
}

func TestReconnectReplaceRetiresOldIncarnation(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 4, Policy: EagerOffspring, Alg: alg})
	c.Handle(Event{Kind: EvJoin, Worker: 7}) // item 1

	// The same identity joins again (TCP reconnect): the old
	// incarnation's work died with it, and the new one is seeded.
	acts := c.Handle(Event{Kind: EvJoin, Worker: 7})
	st := c.Stats()
	if st.Deaths != 1 || st.Joins != 2 || st.Lost != 1 {
		t.Fatalf("stats after replace = %+v", st)
	}
	wantGrant(t, acts, 0, 7, 3) // fresh seed (id 2 is the clone in pending)
	if c.PendingLen() != 1 {
		t.Fatalf("pending = %d, want the lost chain's clone", c.PendingLen())
	}
}

func TestLeaseHeapOrdering(t *testing.T) {
	h := &leaseHeap{}
	deadlines := []float64{5, 1, 3, 1, 9, 2, 7}
	leases := make([]*lease, len(deadlines))
	for i, d := range deadlines {
		leases[i] = &lease{deadline: d, seq: uint64(i)}
		h.push(leases[i])
	}
	leases[2].done = true // settled before expiry: peek must skip it

	want := []struct {
		deadline float64
		seq      uint64
	}{{1, 1}, {1, 3}, {2, 5}, {5, 0}, {7, 6}, {9, 4}}
	for i, w := range want {
		l, ok := h.peek()
		if !ok {
			t.Fatalf("peek %d: heap empty early", i)
		}
		if l.deadline != w.deadline || l.seq != w.seq {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)", i, l.deadline, l.seq, w.deadline, w.seq)
		}
		h.pop()
	}
	if _, ok := h.peek(); ok || h.len() != 0 {
		t.Fatalf("heap not drained: len=%d", h.len())
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Join(1)
	r.Join(2)
	r.Join(1) // live re-join is a no-op
	if r.Live() != 2 || r.Peak() != 2 {
		t.Fatalf("live=%d peak=%d, want 2/2", r.Live(), r.Peak())
	}
	if got := r.Known(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Known() = %v, want join order [1 2]", got)
	}
	r.MarkSuspect(1)
	if r.State(1) != StateSuspect || r.State(2) != StateBusy {
		t.Fatalf("states = %v/%v", r.State(1), r.State(2))
	}
	r.MarkIdle(1) // sign of life revives a suspect
	if r.State(1) != StateIdle {
		t.Fatalf("state after revive = %v", r.State(1))
	}
	if r.markGone(2); r.Live() != 1 {
		t.Fatalf("live after gone = %d", r.Live())
	}
	if r.State(99) != StateGone {
		t.Fatalf("unknown worker state = %v, want gone", r.State(99))
	}
}

func TestOnAcceptFromReportsAcceptedResults(t *testing.T) {
	for _, policy := range []Policy{EagerOffspring, LazyOffspring} {
		type accept struct {
			worker    int
			completed uint64
			at        float64
		}
		var got []accept
		alg := &stubAlg{}
		c := NewCore(Config{Budget: 3, Policy: policy, Alg: alg,
			OnAcceptFrom: func(worker int, completed uint64, at float64) {
				got = append(got, accept{worker, completed, at})
			}})
		c.Handle(Event{Kind: EvJoin, Worker: 1, At: 0}) // item 1
		c.Handle(Event{Kind: EvJoin, Worker: 2, At: 0}) // item 2

		c.Handle(Event{Kind: EvResult, Worker: 2, Item: 2, At: 1.5})
		c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1, At: 2.0})
		// A duplicate id must not be reported as an accept.
		c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1, At: 2.1})

		want := []accept{{2, 1, 1.5}, {1, 2, 2.0}}
		// Eager policy has a third chain in flight; finish the run and
		// confirm the final accept is reported too.
		if policy == EagerOffspring {
			c.Handle(Event{Kind: EvResult, Worker: 2, Item: 3, At: 3.0})
			want = append(want, accept{2, 3, 3.0})
		}
		if len(got) != len(want) {
			t.Fatalf("policy %v: %d accepts reported, want %d: %v", policy, len(got), len(want), got)
		}
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("policy %v: accept %d = %+v, want %+v", policy, i, got[i], w)
			}
		}
	}
}

func TestScheduledParkAndReady(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 4, Policy: ScheduledOffspring, Alg: alg})

	// Joining grants immediately: the scheduler only joins a worker it
	// wants serving this run.
	acts := c.Handle(Event{Kind: EvJoin, Worker: 1})
	wantGrant(t, acts, 0, 1, 1)

	// A result is accepted but the worker parks — no re-grant until the
	// scheduler speaks for it.
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	if len(acts) != 0 {
		t.Fatalf("result actions = %v, want none (worker parks)", acts)
	}
	if c.Completed() != 1 || c.Outstanding() != 0 {
		t.Fatalf("completed=%d outstanding=%d, want 1 and 0", c.Completed(), c.Outstanding())
	}

	// Ready re-arms the parked worker.
	acts = c.Handle(Event{Kind: EvReady, Worker: 1})
	wantGrant(t, acts, 0, 1, 2)

	// Ready while leased, or for an unknown worker, is ignored.
	if acts := c.Handle(Event{Kind: EvReady, Worker: 1}); len(acts) != 0 {
		t.Fatalf("ready on a leased worker issued %v", acts)
	}
	if acts := c.Handle(Event{Kind: EvReady, Worker: 9}); len(acts) != 0 {
		t.Fatalf("ready on an unknown worker issued %v", acts)
	}
}

func TestScheduledLeaveResubmitsAndCompletes(t *testing.T) {
	alg := &stubAlg{}
	c := NewCore(Config{Budget: 4, Policy: ScheduledOffspring, Alg: alg})
	c.Handle(Event{Kind: EvJoin, Worker: 1}) // grants item 1
	c.Handle(Event{Kind: EvJoin, Worker: 2}) // grants item 2

	// Leaving with a live lease presumes it lost: the clone is pended,
	// counted as a graceful leave, not a death.
	if acts := c.Handle(Event{Kind: EvLeave, Worker: 2}); len(acts) != 0 {
		t.Fatalf("leave with no idle workers issued %v", acts)
	}
	st := c.Stats()
	if st.Leaves != 1 || st.Deaths != 0 || st.Resubmissions != 1 {
		t.Fatalf("stats after leave = %+v, want 1 leave, 0 deaths, 1 resubmission", st)
	}
	if c.PendingLen() != 1 {
		t.Fatalf("pending=%d, want the lost clone", c.PendingLen())
	}

	// The parked worker's next ready picks the resubmitted clone first.
	c.Handle(Event{Kind: EvResult, Worker: 1, Item: 1})
	acts := c.Handle(Event{Kind: EvReady, Worker: 1})
	wantGrant(t, acts, 0, 1, 3)

	// The departed worker rejoins and serves again.
	acts = c.Handle(Event{Kind: EvJoin, Worker: 2})
	wantGrant(t, acts, 0, 2, 4)
	c.Handle(Event{Kind: EvLeave, Worker: 2})
	if got := c.Stats().Leaves; got != 2 {
		t.Fatalf("leaves=%d, want 2", got)
	}
	// Leaving an already-gone worker is a no-op.
	c.Handle(Event{Kind: EvLeave, Worker: 2})
	if got := c.Stats().Leaves; got != 2 {
		t.Fatalf("leaves=%d after redundant leave, want 2", got)
	}

	// Worker 1 carries the run home; completion stops it (worker 2 is
	// gone) with the usual complete-then-stop ordering.
	c.Handle(Event{Kind: EvResult, Worker: 1, Item: 3})
	c.Handle(Event{Kind: EvReady, Worker: 1}) // grants the clone of item 4
	c.Handle(Event{Kind: EvResult, Worker: 1, Item: 5})
	c.Handle(Event{Kind: EvReady, Worker: 1}) // grants fresh item 6
	acts = c.Handle(Event{Kind: EvResult, Worker: 1, Item: 6})
	if len(acts) != 2 || acts[0].Kind != ActComplete || acts[1] != (Action{Kind: ActStop, Worker: 1}) {
		t.Fatalf("completion actions = %v, want [complete stop(1)]", acts)
	}
	if !c.Done() || c.Completed() != 4 {
		t.Fatalf("done=%v completed=%d, want done with 4", c.Done(), c.Completed())
	}
}
